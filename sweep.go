package minflo

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/lagrange"
	"minflo/internal/sta"
	"minflo/internal/tilos"
)

// TradeoffPoint is one point of an area–delay curve (Figure 7): the
// delay axis is T/Dmin, the area axes are normalized to the
// minimum-sized circuit's area.
type TradeoffPoint struct {
	Frac        float64 // T / Dmin
	TargetPS    float64 // absolute target (ps)
	TilosRatio  float64 // TILOS area / min area (0 when infeasible)
	MinfloRatio float64 // MINFLOTRANSIT area / min area (0 when infeasible)
	Feasible    bool
}

// Sweep produces the area–delay trade-off curves for the circuit at the
// given delay fractions (of Dmin), running both TILOS and
// MINFLOTRANSIT per point — the harness behind Figure 7.  Points are
// independent and run concurrently (the problem instance is read-only
// during optimization); results are deterministic regardless of
// scheduling.  The Sizer's FlowEngine config selects the D-phase flow
// backend for every point (each point owns a private flow network, so
// engine state is never shared across goroutines).
func (s *Sizer) Sweep(c *Circuit, fracs []float64) ([]TradeoffPoint, error) {
	p, err := s.problem(c)
	if err != nil {
		return nil, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return nil, err
	}
	dmin := tm.CP
	minArea := p.MinAreaValue()
	points := make([]TradeoffPoint, len(fracs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, f := range fracs {
		i, f := i, f
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			pt := TradeoffPoint{Frac: f, TargetPS: f * dmin}
			res, err := core.Size(p, pt.TargetPS, s.jobCoreOptions())
			if err == nil {
				pt.Feasible = true
				pt.TilosRatio = res.TilosArea / minArea
				pt.MinfloRatio = res.Area / minArea
			}
			points[i] = pt
		}()
	}
	wg.Wait()
	return points, nil
}

// TableRow is one row of the Table 1 reproduction.
type TableRow struct {
	Circuit     string
	Gates       int
	DelaySpec   float64 // fraction of Dmin
	DminPS      float64
	TilosArea   float64
	MinfloArea  float64
	SavingsPct  float64
	TilosTime   time.Duration
	MinfloExtra time.Duration // time beyond TILOS (the paper's 2nd CPU column reports total; see EXPERIMENTS.md)
	Iterations  int
	AreaRatio   float64 // MINFLOTRANSIT area / minimum-size area
}

// jobCoreOptions returns the per-job optimizer options for the
// across-runs harnesses (Sweep, RunTable): when the Config leaves
// Parallelism at its GOMAXPROCS default, each concurrent job runs
// serially — the job fan-out already saturates the machine, and
// nesting a per-run worker pool under GOMAXPROCS in-flight jobs would
// oversubscribe cores quadratically.  An explicit Config.Parallelism
// is honored per job (that is how the benchdir golden test drives the
// parallel paths deterministically).
func (s *Sizer) jobCoreOptions() core.Options {
	opt := s.coreOptions()
	if opt.Parallelism == 0 {
		opt.Parallelism = 1
	}
	return opt
}

// RunTableRow sizes one benchmark at spec·Dmin with both optimizers and
// reports the Table 1 quantities.  A standalone call uses the full
// intra-run Parallelism default; RunTable's concurrent jobs use
// jobCoreOptions.
func (s *Sizer) RunTableRow(c *Circuit, spec float64) (*TableRow, error) {
	return s.runTableRow(c, spec, s.coreOptions())
}

func (s *Sizer) runTableRow(c *Circuit, spec float64, opt core.Options) (*TableRow, error) {
	p, err := s.problem(c)
	if err != nil {
		return nil, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return nil, err
	}
	target := spec * tm.CP

	t0 := time.Now()
	tr, err := tilos.Size(p, target, nil, tilos.Options{Bump: s.cfg.TilosBump})
	if err != nil {
		return nil, fmt.Errorf("minflo: TILOS on %s at %.2f·Dmin: %w", c.Name, spec, err)
	}
	tilosTime := time.Since(t0)

	t1 := time.Now()
	res, err := core.Size(p, target, opt)
	if err != nil {
		return nil, fmt.Errorf("minflo: MINFLOTRANSIT on %s at %.2f·Dmin: %w", c.Name, spec, err)
	}
	minfloTime := time.Since(t1)
	extra := minfloTime - tilosTime
	if extra < 0 {
		extra = 0
	}

	return &TableRow{
		Circuit:     c.Name,
		Gates:       c.NumGates(),
		DelaySpec:   spec,
		DminPS:      tm.CP,
		TilosArea:   tr.Area,
		MinfloArea:  res.Area,
		SavingsPct:  100 * (1 - res.Area/tr.Area),
		TilosTime:   tilosTime,
		MinfloExtra: extra,
		Iterations:  res.Iterations,
		AreaRatio:   res.Area / p.MinAreaValue(),
	}, nil
}

// TableJob names one row of a multi-circuit table sweep: a circuit and
// its delay spec as a fraction of Dmin.
type TableJob struct {
	Circuit *Circuit
	Spec    float64
}

// RunTable runs one RunTableRow per job, with the jobs distributed
// across GOMAXPROCS workers the way Sweep parallelizes Figure 7 points
// (each job's problem instance is private, so rows are independent).
// rows[i] and errs[i] report job i: exactly one of them is non-nil.
// Note the per-row CPU-time columns are wall-clock and stretch under
// contention; use serial RunTableRow calls when timing fidelity
// matters more than throughput.
func (s *Sizer) RunTable(jobs []TableJob) (rows []*TableRow, errs []error) {
	rows = make([]*TableRow, len(jobs))
	errs = make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, job := range jobs {
		i, job := i, job
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rows[i], errs[i] = s.runTableRow(job.Circuit, job.Spec, s.jobCoreOptions())
		}()
	}
	wg.Wait()
	return rows, errs
}

// DeviceSizing is the outcome of transistor-level optimization: one
// entry per transistor.
type DeviceSizing struct {
	Labels     []string
	Sizes      []float64
	Area       float64 // Σ x_i over devices (the paper's objective)
	CP         float64
	TilosArea  float64
	Iterations int
}

// MinflotransitTransistors runs true transistor sizing (paper §2.1):
// every device is an independent variable on the per-transistor DAG.
func (s *Sizer) MinflotransitTransistors(c *Circuit, T float64) (*DeviceSizing, error) {
	p, err := dag.TransistorLevel(c, s.model)
	if err != nil {
		return nil, err
	}
	r, err := core.Size(p, T, s.coreOptions())
	if err != nil {
		return nil, err
	}
	return &DeviceSizing{
		Labels:     p.Labels[:p.NumSizable],
		Sizes:      r.X,
		Area:       r.Area,
		CP:         r.CP,
		TilosArea:  r.TilosArea,
		Iterations: r.Iterations,
	}, nil
}

// TransistorMinDelay returns Dmin for the transistor-level DAG.
func (s *Sizer) TransistorMinDelay(c *Circuit) (float64, error) {
	p, err := dag.TransistorLevel(c, s.model)
	if err != nil {
		return 0, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return 0, err
	}
	return tm.CP, nil
}

// WireParams re-exports the sizable-wire model (paper §2.1).
type WireParams = dag.WireParams

// DefaultWireParams returns a plausible global-wire model.
func DefaultWireParams() WireParams { return dag.DefaultWireParams() }

// WireSizing is the outcome of joint gate+wire sizing.
type WireSizing struct {
	GateSizes  []float64
	WireWidths []float64
	WireLabels []string
	Area       float64
	CP         float64
	TilosArea  float64
	Iterations int
}

// MinflotransitWithWires runs joint gate and wire sizing toward target
// T, modelling every gate→gate connection as a sizable wire.
func (s *Sizer) MinflotransitWithWires(c *Circuit, T float64, wp WireParams) (*WireSizing, error) {
	p, err := dag.GateLevelWithWires(c, s.model, wp)
	if err != nil {
		return nil, err
	}
	r, err := core.Size(p.Problem, T, s.coreOptions())
	if err != nil {
		return nil, err
	}
	return &WireSizing{
		GateSizes:  r.X[:p.NumGates],
		WireWidths: r.X[p.NumGates:],
		WireLabels: p.WireLabel,
		Area:       r.Area,
		CP:         r.CP,
		TilosArea:  r.TilosArea,
		Iterations: r.Iterations,
	}, nil
}

// WiredMinDelay returns Dmin for the gate+wire problem.
func (s *Sizer) WiredMinDelay(c *Circuit, wp WireParams) (float64, error) {
	p, err := dag.GateLevelWithWires(c, s.model, wp)
	if err != nil {
		return 0, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return 0, err
	}
	return tm.CP, nil
}

// LagrangianRelaxation sizes the circuit with the Chen–Chu–Wong style
// Lagrangian-relaxation optimizer (the paper's reference [8], its exact
// competitor) — useful for cross-checking MINFLOTRANSIT's solutions.
func (s *Sizer) LagrangianRelaxation(c *Circuit, T float64) (*Sizing, error) {
	p, err := s.problem(c)
	if err != nil {
		return nil, err
	}
	r, err := lagrange.Size(p, T, lagrange.Options{})
	if err != nil {
		if errors.Is(err, lagrange.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if err := p.ApplyToCircuit(c, r.X); err != nil {
		return nil, err
	}
	return &Sizing{
		Sizes:      r.X,
		Area:       r.Area,
		CP:         r.CP,
		MinArea:    p.MinAreaValue(),
		Iterations: r.Iters,
	}, nil
}

// TimingReport writes an STA report (critical path listing, slack
// histogram) for the circuit at its current sizes. target may be 0.
func (s *Sizer) TimingReport(w io.Writer, c *Circuit, target float64) error {
	p, err := s.problem(c)
	if err != nil {
		return err
	}
	d := p.Delays(c.Sizes())
	tm, err := sta.Analyze(p.G, d)
	if err != nil {
		return err
	}
	rep := sta.NewReport(p.G, d, tm, target)
	rep.Write(w, d, func(v int) string { return p.Labels[v] })
	return nil
}
