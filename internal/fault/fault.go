// Package fault registers a deterministic fault-injecting wrapper
// engine ("fault") in the mcmf backend registry, for driving the
// solver's robustness guarantees — panic recovery, engine fallback,
// abort rollback, budget enforcement — from tests without touching
// production code paths.
//
// The wrapper delegates Solve/Resolve to a configured inner backend
// and, while the inner engine runs, occupies the solver's poll hook to
// count abort-funnel operations (augmentations, discharges,
// Bellman–Ford rounds — exactly the points where a real engine can be
// interrupted) and fire the configured fault at the Nth one: a
// returned error, a panic, an injected wall-clock delay, or a caller
// callback (typically canceling the context governing the solve).
// Operation counting is deterministic for deterministic engines, so a
// failure "at operation 17" reproduces exactly.
//
// Importing this package (for its registration side effect) is meant
// for test binaries only; the engine never registers in production
// builds because nothing there imports it.
//
// The wrapper owns the solver's poll hook for the duration of a
// Solve/Resolve call — callers must not install their own hook on the
// same solver while the "fault" engine is active.  Context, deadline
// and work-budget abort sources compose normally (the funnel checks
// them on the same polls that feed the wrapper's counter).
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minflo/internal/mcmf"
)

// Mode selects what the wrapper injects at the trigger operation.
type Mode int

const (
	// None injects nothing: the wrapper is a transparent proxy that
	// still counts operations (see Ops) — the probe mode tests use to
	// measure a run's length before choosing injection points.
	None Mode = iota
	// Error makes the poll hook return Plan.Err (ErrInjected when nil),
	// surfacing from the inner engine like any mid-solve failure.
	Error
	// Panic panics from the poll hook, exercising the solver's
	// recover-and-classify path (mcmf.ErrEngineFailed).
	Panic
	// Delay sleeps Plan.Delay at the trigger (and, with Repeat, at
	// every later operation) — for driving wall-clock deadline tests.
	Delay
	// Cancel invokes Plan.OnCancel at the trigger, typically canceling
	// the context the solve runs under.
	Cancel
)

// ErrInjected is the default payload of Error-mode injections.
var ErrInjected = errors.New("fault: injected failure")

// Plan configures the next runs of every "fault" engine instance.
type Plan struct {
	// Inner is the wrapped backend's registry name ("ssp" when empty).
	Inner string
	// Mode selects the fault; None counts operations only.
	Mode Mode
	// Op is the 1-based operation the fault fires at.
	Op int64
	// Repeat fires at every operation ≥ Op instead of only the Op-th.
	Repeat bool
	// Err overrides the Error-mode payload (ErrInjected when nil).
	Err error
	// Delay is the Delay-mode sleep per trigger.
	Delay time.Duration
	// OnCancel is the Cancel-mode callback.
	OnCancel func()
}

var (
	planMu  sync.Mutex
	plan    Plan
	lastOps atomic.Int64
)

// SetPlan installs the plan governing subsequent Solve/Resolve calls
// of every "fault" engine.
func SetPlan(p Plan) {
	planMu.Lock()
	plan = p
	planMu.Unlock()
}

// Reset clears the plan (equivalent to SetPlan(Plan{})).
func Reset() { SetPlan(Plan{}) }

func currentPlan() Plan {
	planMu.Lock()
	defer planMu.Unlock()
	return plan
}

// Ops reports how many abort-funnel operations the most recently
// finished fault-engine run observed — the probe measurement tests use
// to place injection points inside a run deterministically.
func Ops() int64 { return lastOps.Load() }

// engine is the registered wrapper.  The inner engine persists across
// calls (its adaptive state and counters behave like a directly
// installed backend) and is rebuilt only when the plan names a
// different backend.
type engine struct {
	inner     mcmf.Engine
	innerName string
}

func (e *engine) Name() string { return "fault" }

func (e *engine) Solve(s *mcmf.Solver) (float64, error) {
	return e.run(s, func(in mcmf.Engine) (float64, error) { return in.Solve(s) })
}

func (e *engine) Resolve(s *mcmf.Solver, changed []int32) (float64, error) {
	return e.run(s, func(in mcmf.Engine) (float64, error) { return in.Resolve(s, changed) })
}

func (e *engine) run(s *mcmf.Solver, call func(mcmf.Engine) (float64, error)) (float64, error) {
	p := currentPlan()
	name := p.Inner
	if name == "" {
		name = "ssp"
	}
	if e.inner == nil || e.innerName != name {
		in, err := mcmf.NewEngine(name)
		if err != nil {
			return 0, err
		}
		e.inner, e.innerName = in, name
	}
	var ops int64
	s.SetPollHook(func() error {
		ops++
		lastOps.Store(ops)
		if p.Mode == None || ops < p.Op || (ops > p.Op && !p.Repeat) {
			return nil
		}
		switch p.Mode {
		case Error:
			if p.Err != nil {
				return p.Err
			}
			return ErrInjected
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at op %d", ops))
		case Delay:
			time.Sleep(p.Delay)
		case Cancel:
			if p.OnCancel != nil {
				p.OnCancel()
			}
		}
		return nil
	})
	// Cleared even when the inner engine panics (the solver's recover
	// sits above this frame), so a fallback attempt or a later solve
	// never runs with a stale injection hook.
	defer s.SetPollHook(nil)
	return call(e.inner)
}

func (e *engine) Stats() mcmf.Stats {
	if e.inner == nil {
		return mcmf.Stats{}
	}
	return e.inner.Stats()
}

// attemptStateKeeper mirrors the solver's optional abort-rollback
// interface (structural match on the exported method names).
type attemptStateKeeper interface {
	SaveAttemptState()
	RestoreAttemptState()
}

// SaveAttemptState / RestoreAttemptState forward the abort-rollback
// protocol to the inner engine, so e.g. a wrapped "dial" keeps its
// bit-identical-after-abort guarantee under injection.
func (e *engine) SaveAttemptState() {
	if k, ok := e.inner.(attemptStateKeeper); ok {
		k.SaveAttemptState()
	}
}

func (e *engine) RestoreAttemptState() {
	if k, ok := e.inner.(attemptStateKeeper); ok {
		k.RestoreAttemptState()
	}
}

// ResetWorkCounters forwards the per-problem counter reset.
func (e *engine) ResetWorkCounters() {
	if r, ok := e.inner.(interface{ ResetWorkCounters() }); ok {
		r.ResetWorkCounters()
	}
}

func init() {
	mcmf.Register("fault", func() mcmf.Engine { return &engine{} })
}
