// The robustness gate: every guarantee the hardened pipeline makes —
// fallback bit-identical to ssp, panics surfacing as typed errors,
// abort rollback, budget enforcement — exercised by deterministic
// fault injection at points sampled across whole runs.  CI runs this
// package under -race.
package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"minflo/internal/mcmf"
)

// grid returns the standard deterministic workload.
func grid() *mcmf.Solver { return mcmf.NewGridInstance(12, 24, 7) }

type state struct {
	cost  float64
	flows []int64
	pots  []int64
}

func capture(s *mcmf.Solver, cost float64) state {
	st := state{cost: cost}
	for id := 0; id < s.NumArcs(); id++ {
		st.flows = append(st.flows, s.Flow(id))
	}
	for v := 0; v < s.N(); v++ {
		st.pots = append(st.pots, s.Potential(v))
	}
	return st
}

func diff(t *testing.T, tag string, want, got state) {
	t.Helper()
	if want.cost != got.cost {
		t.Fatalf("%s: cost %v != reference %v", tag, got.cost, want.cost)
	}
	for i := range want.flows {
		if want.flows[i] != got.flows[i] {
			t.Fatalf("%s: arc %d flow %d != reference %d", tag, i, got.flows[i], want.flows[i])
		}
	}
	for v := range want.pots {
		if want.pots[v] != got.pots[v] {
			t.Fatalf("%s: node %d potential %d != reference %d", tag, v, got.pots[v], want.pots[v])
		}
	}
}

// probeOps measures the abort-funnel operation count of one full solve
// with the given inner engine (probe mode: nothing injected).
func probeOps(t *testing.T, inner string) int64 {
	t.Helper()
	defer Reset()
	s := grid()
	if err := s.SetEngine("fault"); err != nil {
		t.Fatal(err)
	}
	SetPlan(Plan{Inner: inner})
	if _, err := s.Solve(); err != nil {
		t.Fatalf("probe solve (%s): %v", inner, err)
	}
	ops := Ops()
	if ops == 0 {
		t.Fatalf("probe solve (%s) observed no operations", inner)
	}
	return ops
}

// samplePoints spreads injection points across a run of length ops.
func samplePoints(ops int64) []int64 {
	return []int64{1, ops / 4, ops / 2, 3 * ops / 4, ops}
}

// sspReference solves the grid with the ssp reference engine.
func sspReference(t *testing.T) state {
	t.Helper()
	ref := grid()
	cost, err := ref.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return capture(ref, cost)
}

// TestInjectedFailureFallsBackToSSP is the degradation gate: an engine
// failing — by error or by panic — at ANY point of its run must be
// rescued by the ssp fallback with the final state bit-identical to a
// pure-ssp twin, the failure recorded, never a crash.
func TestInjectedFailureFallsBackToSSP(t *testing.T) {
	defer Reset()
	want := sspReference(t)
	for _, inner := range []string{"ssp", "dial", "costscaling", "cspar", "parallel"} {
		ops := probeOps(t, inner)
		for _, mode := range []Mode{Error, Panic} {
			for _, op := range samplePoints(ops) {
				s := grid()
				if err := s.SetEngine("fault"); err != nil {
					t.Fatal(err)
				}
				s.SetEngineFallback(true)
				SetPlan(Plan{Inner: inner, Mode: mode, Op: op})
				cost, err := s.Solve()
				Reset()
				tag := func() string {
					return inner + "/" + map[Mode]string{Error: "error", Panic: "panic"}[mode]
				}()
				if err != nil {
					t.Fatalf("%s op %d/%d: fallback did not rescue: %v", tag, op, ops, err)
				}
				if got := s.EngineFailures(); got != 1 {
					t.Fatalf("%s op %d: EngineFailures = %d, want 1", tag, op, got)
				}
				lf := s.LastEngineFailure()
				if mode == Error && !errors.Is(lf, ErrInjected) {
					t.Fatalf("%s op %d: LastEngineFailure = %v, want ErrInjected", tag, op, lf)
				}
				if mode == Panic && !errors.Is(lf, mcmf.ErrEngineFailed) {
					t.Fatalf("%s op %d: LastEngineFailure = %v, want ErrEngineFailed", tag, op, lf)
				}
				if name := s.EngineName(); name != "ssp" {
					t.Fatalf("%s op %d: degraded to %q, want ssp", tag, op, name)
				}
				diff(t, tag, want, capture(s, cost))
				if err := s.Verify(); err != nil {
					t.Fatalf("%s op %d: Verify after fallback: %v", tag, op, err)
				}
			}
		}
	}
}

// TestInjectedPanicWithoutFallback: with degradation off, a panicking
// engine surfaces as a typed ErrEngineFailed — never a crash — and the
// solver remains usable: the next clean solve reaches the optimum.
func TestInjectedPanicWithoutFallback(t *testing.T) {
	defer Reset()
	want := sspReference(t)
	s := grid()
	if err := s.SetEngine("fault"); err != nil {
		t.Fatal(err)
	}
	SetPlan(Plan{Inner: "dial", Mode: Panic, Op: 5})
	if _, err := s.Solve(); !errors.Is(err, mcmf.ErrEngineFailed) {
		t.Fatalf("Solve = %v, want ErrEngineFailed", err)
	}
	SetPlan(Plan{Inner: "dial"})
	cost, err := s.Solve()
	if err != nil {
		t.Fatalf("re-solve after recovered panic: %v", err)
	}
	if cost != want.cost {
		t.Fatalf("re-solve cost %v != optimum %v", cost, want.cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify after recovered panic: %v", err)
	}
}

// TestInjectedCancelRollsBack: a context canceled deep inside a run
// returns ErrCanceled with the pre-solve state restored, so the next
// clean solve is bit-identical to a never-canceled twin running the
// same inner engine.
func TestInjectedCancelRollsBack(t *testing.T) {
	defer Reset()
	ops := probeOps(t, "dial")
	ref := grid()
	if err := ref.SetEngine("dial"); err != nil {
		t.Fatal(err)
	}
	refCost, err := ref.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := capture(ref, refCost)
	for _, op := range samplePoints(ops) {
		s := grid()
		if err := s.SetEngine("fault"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.SetContext(ctx)
		SetPlan(Plan{Inner: "dial", Mode: Cancel, Op: op, OnCancel: cancel})
		if _, err := s.Solve(); !errors.Is(err, mcmf.ErrCanceled) {
			cancel()
			t.Fatalf("op %d/%d: Solve = %v, want ErrCanceled", op, ops, err)
		}
		cancel()
		s.SetContext(nil)
		SetPlan(Plan{Inner: "dial"})
		cost, err := s.Solve()
		if err != nil {
			t.Fatalf("op %d: re-solve after cancel: %v", op, err)
		}
		diff(t, "re-solve after injected cancel", want, capture(s, cost))
		Reset()
	}
}

// TestInjectedDelayHitsDeadline: a wrapper-injected stall makes the
// wall-clock deadline fire mid-solve with ErrBudgetExhausted, the
// state rolls back, and clearing the deadline re-solves bit-identical
// to an undisturbed ssp twin.
func TestInjectedDelayHitsDeadline(t *testing.T) {
	defer Reset()
	want := sspReference(t)
	s := grid()
	if err := s.SetEngine("fault"); err != nil {
		t.Fatal(err)
	}
	s.SetDeadline(time.Now().Add(10 * time.Millisecond))
	SetPlan(Plan{Inner: "ssp", Mode: Delay, Op: 1, Repeat: true, Delay: 2 * time.Millisecond})
	if _, err := s.Solve(); !errors.Is(err, mcmf.ErrBudgetExhausted) {
		t.Fatalf("Solve = %v, want ErrBudgetExhausted", err)
	}
	s.SetDeadline(time.Time{})
	SetPlan(Plan{Inner: "ssp"})
	cost, err := s.Solve()
	if err != nil {
		t.Fatalf("re-solve after deadline: %v", err)
	}
	diff(t, "re-solve after deadline", want, capture(s, cost))
}

// TestWorkBudgetExhaustion: the flow-work budget cuts a solve short
// deterministically, rolls back, and lifting it re-solves clean.
func TestWorkBudgetExhaustion(t *testing.T) {
	defer Reset()
	want := sspReference(t)
	s := grid()
	if err := s.SetEngine("fault"); err != nil {
		t.Fatal(err)
	}
	SetPlan(Plan{Inner: "ssp"})
	s.SetWorkBudget(10)
	if _, err := s.Solve(); !errors.Is(err, mcmf.ErrBudgetExhausted) {
		t.Fatalf("Solve = %v, want ErrBudgetExhausted", err)
	}
	s.SetWorkBudget(0)
	cost, err := s.Solve()
	if err != nil {
		t.Fatalf("re-solve after work budget: %v", err)
	}
	diff(t, "re-solve after work budget", want, capture(s, cost))
}

// TestInjectedErrorDuringResolve: failure injected into the
// incremental path degrades to ssp and still reaches the optimum of
// the mutated instance (certified by Verify and a fresh-twin cost).
func TestInjectedErrorDuringResolve(t *testing.T) {
	defer Reset()
	s := grid()
	if err := s.SetEngine("fault"); err != nil {
		t.Fatal(err)
	}
	s.SetEngineFallback(true)
	SetPlan(Plan{Inner: "dial"})
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	changed := []int32{0, 7, 31}
	for _, id := range changed {
		s.SetCost(int(id), s.Cost(int(id))+250)
	}
	SetPlan(Plan{Inner: "dial", Mode: Error, Op: 2})
	cost, err := s.ResolveChanged(changed)
	Reset()
	if err != nil {
		t.Fatalf("resolve under injection: %v", err)
	}
	if got := s.EngineFailures(); got != 1 {
		t.Fatalf("EngineFailures = %d, want 1", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify after degraded resolve: %v", err)
	}
	// The optimum is unique even when optimal flows are not: a fresh
	// twin with the same mutations must agree on cost.
	twin := grid()
	for _, id := range changed {
		twin.SetCost(int(id), twin.Cost(int(id))+250)
	}
	wantCost, err := twin.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != wantCost {
		t.Fatalf("degraded resolve cost %v != fresh optimum %v", cost, wantCost)
	}
}
