// Package lagrange implements a Lagrangian-relaxation gate sizer in the
// style of Chen, Chu and Wong ("Fast and Exact Simultaneous Gate and
// Wire Sizing by Lagrangian Relaxation", ICCAD 1998) — reference [8] of
// the MINFLOTRANSIT paper and the exact-optimization competitor it is
// measured against.  Having an independent optimizer lets the test
// suite cross-check MINFLOTRANSIT's solutions: two different exact
// methods must land on (nearly) the same area.
//
// Formulation.  Minimize Σ w_i·x_i subject to the arrival-time
// constraints finish(u) + d(v) ≤ finish(v) on every timing edge and
// finish(po) ≤ T.  Relaxing the timing constraints with multipliers λ
// that satisfy per-vertex flow conservation (Σ_in λ = Σ_out λ, the
// Karush–Kuhn–Tucker condition on the arrival variables) collapses the
// Lagrangian subproblem to
//
//	minimize  Σ_i [ w_i·x_i + Λ_i·d_i(x) ],    Λ_i = Σ λ into i,
//
// a posynomial minimized by cyclic coordinate descent: with the Elmore
// decomposition d_i = Self_i + L_i(x_{-i})/x_i the optimal own-size is
//
//	x_i = sqrt( Λ_i·L_i / (w_i + Σ_u Λ_u·a_ui/x_u) ),
//
// clamped to the size bounds.  The outer loop updates λ by projected
// subgradient (step ∝ 1/k) and renormalizes for flow conservation.
package lagrange

import (
	"errors"
	"fmt"
	"math"

	"minflo/internal/dag"
	"minflo/internal/smp"
	"minflo/internal/sta"
	"minflo/internal/tilos"
)

// ErrInfeasible mirrors tilos.ErrInfeasible for unreachable targets.
var ErrInfeasible = errors.New("lagrange: delay target unreachable")

// Options tune the solver. Zero values select defaults.
type Options struct {
	// MaxIters bounds outer (multiplier-update) iterations. Default 250.
	MaxIters int
	// InnerSweeps bounds coordinate-descent sweeps per subproblem.
	// Default 30.
	InnerSweeps int
	// Step0 is the initial subgradient step. Default 0.5.
	Step0 float64
	// Tol is the relative area-change convergence tolerance. Default 1e-5.
	Tol float64
}

// Result is the final sizing.
type Result struct {
	X     []float64
	Area  float64
	CP    float64
	Iters int
	// Repaired reports whether a TILOS patch pass was needed to restore
	// feasibility after the multipliers converged.
	Repaired bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 250
	}
	if o.InnerSweeps == 0 {
		o.InnerSweeps = 30
	}
	if o.Step0 == 0 {
		o.Step0 = 0.5
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	return o
}

// Size runs the Lagrangian-relaxation sizer toward critical-path target
// T on the gate-level problem p.
func Size(p *dag.Problem, T float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumSizable
	g := p.G
	// One persistent W-phase solver over the problem's cached coupling
	// structure for the per-iteration feasibility projections.
	wSolver := smp.NewSolver(p.CSR())

	// Edge multipliers, indexed by edge ID; sinkMu plays the PO-arc role.
	lambda := make([]float64, g.M())
	// Initialize with a conservative flow: unit out of the sink spread
	// backward over the graph (reverse topo, in-edges share the vertex's
	// out-flow equally).
	outFlow := make([]float64, g.N())
	order := p.Topo()
	outFlow[p.Sink] = 1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if v != p.Sink && g.OutDegree(v) == 0 {
			outFlow[v] = 0
		}
		ins := g.In(v)
		if len(ins) == 0 {
			continue
		}
		share := outFlow[v] / float64(len(ins))
		for _, e := range ins {
			lambda[e] = share
			outFlow[g.Edge(e).From] += share
		}
	}

	// Reverse coupling index: for vertex i, who loads it (a_ui terms).
	type loadRef struct {
		u int
		a float64
	}
	loads := make([][]loadRef, n)
	for u := 0; u < n; u++ {
		for _, t := range p.Coeffs[u].Terms {
			if t.J != u {
				loads[t.J] = append(loads[t.J], loadRef{u, t.A})
			}
		}
	}

	x := p.InitialSizes()
	bestX := append([]float64(nil), x...)
	bestFeasibleArea := math.Inf(1)
	haveFeasible := false
	prevArea := math.Inf(1)
	iters := 0

	vertexLambda := make([]float64, g.N())
	for k := 1; k <= opt.MaxIters; k++ {
		iters = k
		// Λ per vertex: flow into the vertex.
		for v := range vertexLambda {
			vertexLambda[v] = 0
		}
		for _, e := range g.Edges() {
			vertexLambda[e.To] += lambda[e.ID]
		}

		// --- Lagrangian subproblem: coordinate descent on x. ---
		for sweep := 0; sweep < opt.InnerSweeps; sweep++ {
			maxRel := 0.0
			for _, v := range order {
				if v >= n {
					continue
				}
				li := p.Coeffs[v].LoadAt(x)
				denom := p.AreaW[v]
				for _, lr := range loads[v] {
					denom += vertexLambda[lr.u] * lr.a / x[lr.u]
				}
				num := vertexLambda[v] * li
				nx := p.MinSize
				if num > 0 && denom > 0 {
					nx = math.Sqrt(num / denom)
				}
				if nx < p.MinSize {
					nx = p.MinSize
				}
				if nx > p.MaxSize {
					nx = p.MaxSize
				}
				if rel := math.Abs(nx-x[v]) / x[v]; rel > maxRel {
					maxRel = rel
				}
				x[v] = nx
			}
			if maxRel < 1e-6 {
				break
			}
		}

		// --- Timing and multiplier update. ---
		d := p.Delays(x)
		tm, err := sta.Analyze(g, d)
		if err != nil {
			return nil, err
		}
		area := p.Area(x)
		if tm.CP <= T && area < bestFeasibleArea {
			bestFeasibleArea = area
			copy(bestX, x)
			haveFeasible = true
		}

		// Feasibility projection: the subproblem solution's *delay
		// profile* is useful even when it misses T.  Scaling every
		// vertex budget by T/CP keeps all path sums ≤ T; the W-phase
		// least-fixed-point then recovers the cheapest sizes realizing
		// that profile.  This yields a feasible candidate per iteration.
		if tm.CP > T {
			if xf, ok := projectFeasible(p, wSolver, d, T, tm.CP); ok {
				df := p.Delays(xf)
				tf, err := sta.Analyze(g, df)
				if err == nil && tf.CP <= T*(1+1e-9) {
					if a := p.Area(xf); a < bestFeasibleArea {
						bestFeasibleArea = a
						copy(bestX, xf)
						haveFeasible = true
					}
				}
			}
		}

		if math.Abs(area-prevArea) < opt.Tol*area && tm.CP <= T*(1+1e-6) {
			break
		}
		prevArea = area

		// Multiplicative subgradient on the edge multipliers: edges with
		// little slack (relative to the target) grow, slack-rich edges
		// decay.  Step ∝ 1/√k (standard diminishing schedule).
		step := opt.Step0 / math.Sqrt(float64(k))
		scaleT := 1 / T
		for _, e := range g.Edges() {
			u, v := e.From, e.To
			slack := tm.RT[v] - tm.AT[u] - d[u] // edge slack vs CP
			slack += T - tm.CP                  // shift to target
			lambda[e.ID] *= math.Exp(-step * slack * scaleT)
			if lambda[e.ID] < 1e-12 {
				lambda[e.ID] = 1e-12
			}
		}
		// Project back to flow conservation: forward topological pass
		// scaling each vertex's outgoing multipliers to match inflow.
		projectConservation(p, lambda)
	}

	if !haveFeasible {
		// Multipliers never produced a feasible point: patch with TILOS
		// from the current sizes.
		tr, err := tilos.Size(p, T, x, tilos.Options{})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return &Result{X: tr.X, Area: tr.Area, CP: tr.CP, Iters: iters, Repaired: true}, nil
	}
	d := p.Delays(bestX)
	tm, err := sta.Analyze(g, d)
	if err != nil {
		return nil, err
	}
	return &Result{X: bestX, Area: bestFeasibleArea, CP: tm.CP, Iters: iters}, nil
}

// projectFeasible scales the achieved delay profile to the target and
// solves the W-phase SMP for the cheapest sizes meeting it.  Budgets
// are floored above each vertex's intrinsic delay; flooring can break
// the path-sum guarantee, so the caller re-times the result.
func projectFeasible(p *dag.Problem, ws *smp.Solver, d []float64, T, cp float64) ([]float64, bool) {
	n := p.NumSizable
	scale := T / cp
	budgets := make([]float64, n)
	for i := 0; i < n; i++ {
		b := d[i] * scale
		if min := p.Coeffs[i].Self * (1 + 1e-9); b <= min {
			b = min + 1e-12
		}
		budgets[i] = b
	}
	w, err := ws.SolveInto(make([]float64, n), budgets, p.MinSize, p.MaxSize, smp.Options{})
	if err != nil {
		return nil, false
	}
	return w.X, true
}

// projectConservation rescales multipliers so that at every internal
// vertex the outgoing flow equals the incoming flow (PIs source flow,
// the sink absorbs it).  Forward topological pass.
func projectConservation(p *dag.Problem, lambda []float64) {
	g := p.G
	for _, v := range p.Topo() {
		if v == p.Sink {
			continue
		}
		outs := g.Out(v)
		if len(outs) == 0 {
			continue
		}
		var in float64
		for _, e := range g.In(v) {
			in += lambda[e]
		}
		if g.InDegree(v) == 0 {
			// Sources pass their current out-flow through unchanged.
			continue
		}
		var out float64
		for _, e := range outs {
			out += lambda[e]
		}
		if out <= 0 {
			share := in / float64(len(outs))
			for _, e := range outs {
				lambda[e] = share
			}
			continue
		}
		f := in / out
		for _, e := range outs {
			lambda[e] *= f
		}
	}
}
