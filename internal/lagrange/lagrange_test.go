package lagrange

import (
	"testing"

	"minflo/internal/circuit"
	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

func mustProblem(t *testing.T, ckt *circuit.Circuit) *dag.Problem {
	t.Helper()
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(ckt, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func dmin(t *testing.T, p *dag.Problem) float64 {
	t.Helper()
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	return tm.CP
}

func TestMeetsTargetChain(t *testing.T) {
	p := mustProblem(t, gen.InverterChain(10))
	d0 := dmin(t, p)
	for _, frac := range []float64{0.9, 0.7, 0.55} {
		T := frac * d0
		r, err := Size(p, T, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if r.CP > T*(1+1e-9) {
			t.Fatalf("frac %.2f: CP %g > %g", frac, r.CP, T)
		}
		for i, xi := range r.X {
			if xi < p.MinSize-1e-9 || xi > p.MaxSize+1e-9 {
				t.Fatalf("size[%d] = %g out of bounds", i, xi)
			}
		}
	}
}

func TestMeetsTargetSuite(t *testing.T) {
	for _, tc := range []struct {
		name string
		ckt  *circuit.Circuit
		frac float64
	}{
		{"c17", gen.C17(), 0.5},
		{"fork", gen.Fork(), 0.7},
		{"adder8", gen.RippleAdder(8, gen.FAXor), 0.55},
		{"c432s", gen.C432(), 0.45},
	} {
		p := mustProblem(t, tc.ckt)
		T := tc.frac * dmin(t, p)
		r, err := Size(p, T, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.CP > T*(1+1e-9) {
			t.Fatalf("%s: CP %g > target %g", tc.name, r.CP, T)
		}
		if r.Area < p.MinAreaValue()-1e-9 {
			t.Fatalf("%s: area below minimum", tc.name)
		}
	}
}

// TestCrossCheckAgainstMinflotransit: two independent optimizers attack
// the same convex program (the paper presents both [8] and
// MINFLOTRANSIT as exact methods); their areas must agree closely.
func TestCrossCheckAgainstMinflotransit(t *testing.T) {
	for _, tc := range []struct {
		name string
		ckt  *circuit.Circuit
	}{
		{"c17", gen.C17()},
		{"c432s", gen.C432()},
		{"adder8", gen.RippleAdder(8, gen.FAXor)},
	} {
		p := mustProblem(t, tc.ckt)
		T := 0.5 * dmin(t, p)
		lr, err := Size(p, T, Options{})
		if err != nil {
			t.Fatalf("%s: LR: %v", tc.name, err)
		}
		mf, err := core.Size(p, T, core.Options{})
		if err != nil {
			t.Fatalf("%s: MINFLO: %v", tc.name, err)
		}
		ratio := lr.Area / mf.Area
		t.Logf("%s: LR area %.1f (%d iters, repaired=%v) vs MINFLO %.1f (%d iters) — ratio %.3f",
			tc.name, lr.Area, lr.Iters, lr.Repaired, mf.Area, mf.Iterations, ratio)
		if ratio > 1.15 || ratio < 0.85 {
			t.Errorf("%s: optimizers disagree by %.1f%%", tc.name, 100*(ratio-1))
		}
	}
}

func TestInfeasibleTarget(t *testing.T) {
	p := mustProblem(t, gen.InverterChain(8))
	if _, err := Size(p, 0.01*dmin(t, p), Options{}); err == nil {
		t.Fatal("impossible target accepted")
	}
}

func TestDeterministic(t *testing.T) {
	p := mustProblem(t, gen.C17())
	T := 0.55 * dmin(t, p)
	a, err := Size(p, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Size(p, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Area != b.Area || a.CP != b.CP {
		t.Fatalf("nondeterministic: %g/%g vs %g/%g", a.Area, a.CP, b.Area, b.CP)
	}
}
