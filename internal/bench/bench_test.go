package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"minflo/internal/gen"
)

const c17Bench = `
# c17 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)

OUTPUT(G22)
OUTPUT(G23)

G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	c, err := Parse(strings.NewReader(c17Bench), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 6 || c.NumPIs() != 5 || len(c.POs) != 2 {
		t.Fatalf("c17 shape: %d gates, %d PIs, %d POs", c.NumGates(), c.NumPIs(), len(c.POs))
	}
	// Must be functionally identical to the generated c17.
	ref := gen.C17()
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for b := 0; b < 5; b++ {
			in[b] = v>>b&1 == 1
		}
		got, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("input %05b: parsed %v vs generated %v", v, got, want)
			}
		}
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = NAND(a, a)
`
	c, err := Parse(strings.NewReader(src), "ooo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Evaluate([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true { // NOT(NAND(1,1)) = NOT(0) = 1
		t.Fatalf("got %v", out)
	}
}

func TestParseAllOperators(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
OUTPUT(o5)
OUTPUT(o6)
OUTPUT(o7)
OUTPUT(o8)
o1 = AND(a, b, c)
o2 = OR(a, b)
o3 = NAND(a, b)
o4 = NOR(a, b, c)
o5 = XOR(a, b)
o6 = XNOR(a, b)
o7 = NOT(a)
o8 = BUFF(b)
`
	c, err := Parse(strings.NewReader(src), "ops")
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Evaluate([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false, true, false, false, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output %d: got %v want %v (all: %v)", i, out[i], want[i], out)
		}
	}
}

func TestParseWideFanin(t *testing.T) {
	// 7-input NAND must decompose into library cells and stay correct.
	var sb strings.Builder
	sb.WriteString("OUTPUT(y)\n")
	for i := 0; i < 7; i++ {
		sb.WriteString("INPUT(i")
		sb.WriteByte(byte('0' + i))
		sb.WriteString(")\n")
	}
	sb.WriteString("y = NAND(i0, i1, i2, i3, i4, i5, i6)\n")
	c, err := Parse(strings.NewReader(sb.String()), "wide")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		in := make([]bool, 7)
		all := true
		for i := range in {
			in[i] = rng.Intn(2) == 1
			all = all && in[i]
		}
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != !all {
			t.Fatalf("NAND7%v = %v", in, out[0])
		}
	}
}

func TestParseWideXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = XOR(a, b, c, d, e)
`
	c, err := Parse(strings.NewReader(src), "widexor")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		par := false
		for b := 0; b < 5; b++ {
			in[b] = v>>b&1 == 1
			par = par != in[b]
		}
		out, _ := c.Evaluate(in)
		if out[0] != par {
			t.Fatalf("XOR5(%05b) = %v, want %v", v, out[0], par)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined signal", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, zz)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, w)\nw = NAND(a, y)\n"},
		{"double definition", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"},
		{"dff", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n"},
		{"unknown op", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"},
		{"bad decl", "INPUT a\nOUTPUT(y)\ny = NOT(a)\n"},
		{"missing parens", "INPUT(a)\nOUTPUT(y)\ny = NOT a\n"},
		{"empty operand", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, )\n"},
		{"unknown output", "INPUT(a)\nOUTPUT(nope)\nq = NOT(a)\n"},
		{"not arity", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src), c.name); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	circuits := []interface {
		Evaluate([]bool) ([]bool, error)
	}{}
	_ = circuits
	for _, mk := range []func() interface{}{} {
		_ = mk
	}
	orig := gen.RippleAdder(4, gen.FAXor)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != orig.NumGates() {
		t.Fatalf("round trip changed gate count: %d -> %d", orig.NumGates(), back.NumGates())
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 64; trial++ {
		in := make([]bool, orig.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a, err := orig.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		// PO order may differ (Write sorts outputs); compare as multisets
		// keyed by name instead.
		if len(a) != len(b) {
			t.Fatal("PO count mismatch")
		}
		am := map[string]bool{}
		for i, po := range orig.POs {
			am[orig.SignalName(po)] = a[i]
		}
		for i, po := range back.POs {
			if am[back.SignalName(po)] != b[i] {
				t.Fatalf("trial %d: PO %s differs", trial, back.SignalName(po))
			}
		}
	}
}

func TestWriteRejectsNonBenchCells(t *testing.T) {
	// AOI21 has no .bench operator.
	c := gen.C17()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("c17 should be writable: %v", err)
	}
}
