// Package bench reads and writes the ISCAS85 ".bench" netlist format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//
// Supported operators: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR.
// Fan-ins above the library maximum of 4 (2 for XOR/XNOR) are
// decomposed into logically equivalent trees.  Sequential elements
// (DFF) are rejected — the sizer targets combinational circuits.
//
// The parser exists so the real ISCAS85 benchmark files can be dropped
// into the experiment harness unchanged; the bundled experiments use
// the structurally equivalent synthetic circuits from internal/gen
// (see DESIGN.md §4).
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"minflo/internal/cell"
	"minflo/internal/circuit"
)

// ParseError describes a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg) }

type rawGate struct {
	name string
	op   string
	ins  []string
	line int
}

// Parse reads a .bench netlist into a Circuit named name.  Malformed
// input of any kind — including inputs that defeat the semantic
// pre-checks and trip a circuit-builder invariant — returns a
// *ParseError, never a panic.
func Parse(r io.Reader, name string) (c *circuit.Circuit, err error) {
	// The circuit builders (AddPI/AddGate) enforce their invariants by
	// panicking: right for programmatic construction, wrong for a
	// parser fed arbitrary bytes.  The duplicate/arity pre-checks above
	// the builder calls catch everything fuzzing has surfaced so far
	// except name collisions with decomposition sub-gates emitted for
	// OTHER gates (uniqueName only protects a gate's own sub-names);
	// rather than enumerate such corners, convert any builder panic
	// into a ParseError.
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, &ParseError{0, fmt.Sprintf("invalid netlist: %v", r)}
		}
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var inputs, outputs []string
	var gates []rawGate
	// Map, not a slice scan: fuzzing found the per-line duplicate check
	// made parsing quadratic in the input count.
	seenInput := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			sig, err := insideParens(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			if seenInput[sig] {
				return nil, &ParseError{lineNo, fmt.Sprintf("duplicate INPUT(%s)", sig)}
			}
			seenInput[sig] = true
			inputs = append(inputs, sig)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			sig, err := insideParens(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("expected assignment, got %q", line)}
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op, args, err := splitCall(rhs)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			gates = append(gates, rawGate{name: lhs, op: strings.ToUpper(op), ins: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	c = circuit.New(name)
	for _, in := range inputs {
		c.AddPI(in)
	}

	// Topologically order raw gates (definitions may appear in any order).
	isPI := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		isPI[in] = true
	}
	defined := make(map[string]bool, len(gates))
	for _, g := range gates {
		if defined[g.name] {
			return nil, &ParseError{g.line, fmt.Sprintf("signal %q defined twice", g.name)}
		}
		if isPI[g.name] {
			return nil, &ParseError{g.line, fmt.Sprintf("gate %q collides with an INPUT", g.name)}
		}
		defined[g.name] = true
	}
	emitted := make(map[string]bool, len(gates))
	pending := gates
	for len(pending) > 0 {
		progress := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, in := range g.ins {
				if !isPI[in] && !emitted[in] {
					if !defined[in] {
						return nil, &ParseError{g.line, fmt.Sprintf("gate %q reads undefined signal %q", g.name, in)}
					}
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			if err := emitGate(c, g); err != nil {
				return nil, err
			}
			emitted[g.name] = true
			progress = true
		}
		if !progress {
			return nil, &ParseError{pending[0].line, "combinational cycle involving " + pending[0].name}
		}
		pending = next
	}

	for _, out := range outputs {
		r, ok := c.Lookup(out)
		if !ok {
			return nil, &ParseError{0, fmt.Sprintf("OUTPUT(%s) is not a defined signal", out)}
		}
		c.MarkPO(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// emitGate adds g (decomposing wide fan-ins) to the circuit.
func emitGate(c *circuit.Circuit, g rawGate) error {
	refs := make([]circuit.Ref, len(g.ins))
	for i, in := range g.ins {
		r, ok := c.Lookup(in)
		if !ok {
			return &ParseError{g.line, fmt.Sprintf("gate %q reads unknown signal %q", g.name, in)}
		}
		refs[i] = r
	}
	switch g.op {
	case "NOT", "INV":
		if len(refs) != 1 {
			return &ParseError{g.line, "NOT takes exactly one input"}
		}
		c.AddGate(g.name, cell.Inv, refs[0])
	case "BUF", "BUFF":
		if len(refs) != 1 {
			return &ParseError{g.line, "BUF takes exactly one input"}
		}
		c.AddGate(g.name, cell.Buf, refs[0])
	case "AND", "NAND", "OR", "NOR":
		if len(refs) < 2 {
			return &ParseError{g.line, g.op + " needs at least two inputs"}
		}
		emitWide(c, g.name, g.op, refs)
	case "XOR", "XNOR":
		if len(refs) < 2 {
			return &ParseError{g.line, g.op + " needs at least two inputs"}
		}
		emitXorChain(c, g.name, g.op, refs)
	case "DFF", "DFFSR", "LATCH":
		return &ParseError{g.line, "sequential element " + g.op + " not supported (combinational sizing only)"}
	default:
		return &ParseError{g.line, "unknown operator " + g.op}
	}
	return nil
}

// emitWide builds an AND/OR/NAND/NOR of arbitrary fan-in from library
// cells of fan-in ≤ 4.  Reduction: group the leading inputs with
// AND/OR cells, apply the (possibly inverting) operator at the final
// level.
func emitWide(c *circuit.Circuit, name, op string, refs []circuit.Ref) {
	inner := "AND"
	if op == "OR" || op == "NOR" {
		inner = "OR"
	}
	level := 0
	for len(refs) > 4 {
		var nextRefs []circuit.Ref
		for i := 0; i < len(refs); i += 4 {
			j := i + 4
			if j > len(refs) {
				j = i + (len(refs) - i)
			}
			chunk := refs[i:j]
			if len(chunk) == 1 {
				nextRefs = append(nextRefs, chunk[0])
				continue
			}
			var k cell.Kind
			var ok bool
			if inner == "AND" {
				k, ok = cell.AndFor(len(chunk))
			} else {
				k, ok = cell.OrFor(len(chunk))
			}
			if !ok {
				panic("bench: internal chunking error")
			}
			sub := uniqueName(c, fmt.Sprintf("%s$%s%d_%d", name, strings.ToLower(inner), level, i/4))
			nextRefs = append(nextRefs, c.AddGate(sub, k, chunk...))
		}
		refs = nextRefs
		level++
	}
	var k cell.Kind
	var ok bool
	switch op {
	case "AND":
		k, ok = cell.AndFor(len(refs))
	case "OR":
		k, ok = cell.OrFor(len(refs))
	case "NAND":
		k, ok = cell.NandFor(len(refs))
	case "NOR":
		k, ok = cell.NorFor(len(refs))
	}
	if !ok {
		// len(refs) could be 1 after reduction of, e.g., 5 inputs to
		// chunks (4,1): apply a buffer/inverter as the final level.
		if op == "NAND" || op == "NOR" {
			c.AddGate(name, cell.Inv, refs[0])
		} else {
			c.AddGate(name, cell.Buf, refs[0])
		}
		return
	}
	c.AddGate(name, k, refs...)
}

// emitXorChain builds a wide XOR/XNOR as a balanced tree of XOR2 with an
// XNOR2 (or XOR2) root to set output polarity.
func emitXorChain(c *circuit.Circuit, name, op string, refs []circuit.Ref) {
	level := 0
	for len(refs) > 2 {
		var next []circuit.Ref
		for i := 0; i+1 < len(refs); i += 2 {
			sub := uniqueName(c, fmt.Sprintf("%s$x%d_%d", name, level, i/2))
			next = append(next, c.AddGate(sub, cell.Xor2, refs[i], refs[i+1]))
		}
		if len(refs)%2 == 1 {
			next = append(next, refs[len(refs)-1])
		}
		refs = next
		level++
	}
	if op == "XOR" {
		c.AddGate(name, cell.Xor2, refs[0], refs[1])
	} else {
		c.AddGate(name, cell.Xnor2, refs[0], refs[1])
	}
}

// uniqueName returns base, or base with a numeric suffix if the signal
// already exists (decomposition sub-gates must never collide with user
// names — fuzzing found inputs that do).
func uniqueName(c *circuit.Circuit, base string) string {
	name := base
	for i := 2; ; i++ {
		if _, taken := c.Lookup(name); !taken {
			return name
		}
		name = fmt.Sprintf("%s_%d", base, i)
	}
}

func insideParens(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : close])
	if sig == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return sig, nil
}

func splitCall(rhs string) (op string, args []string, err error) {
	open := strings.Index(rhs, "(")
	close := strings.LastIndex(rhs, ")")
	if open < 0 || close < open {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.TrimSpace(rhs[:open])
	for _, a := range strings.Split(rhs[open+1:close], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty operand in %q", rhs)
		}
		args = append(args, a)
	}
	if op == "" {
		return "", nil, fmt.Errorf("missing operator in %q", rhs)
	}
	return op, args, nil
}

// opFor maps library kinds back to .bench operators.
func opFor(k cell.Kind) (string, bool) {
	switch k {
	case cell.Inv:
		return "NOT", true
	case cell.Buf:
		return "BUFF", true
	case cell.Nand2, cell.Nand3, cell.Nand4:
		return "NAND", true
	case cell.Nor2, cell.Nor3, cell.Nor4:
		return "NOR", true
	case cell.And2, cell.And3, cell.And4:
		return "AND", true
	case cell.Or2, cell.Or3, cell.Or4:
		return "OR", true
	case cell.Xor2:
		return "XOR", true
	case cell.Xnor2:
		return "XNOR", true
	}
	return "", false
}

// Write emits the circuit in .bench format. Gates whose cells have no
// .bench operator (AOI/OAI) produce an error.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s — generated by minflo\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n\n", len(c.PIs), len(c.POs), len(c.Gates))
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", pi)
	}
	bw.WriteString("\n")
	poNames := make([]string, 0, len(c.POs))
	for _, po := range c.POs {
		poNames = append(poNames, c.SignalName(po))
	}
	sort.Strings(poNames)
	for _, n := range poNames {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n)
	}
	bw.WriteString("\n")
	order, err := c.Levelize()
	if err != nil {
		return err
	}
	for _, gi := range order {
		g := &c.Gates[gi]
		op, ok := opFor(g.Kind)
		if !ok {
			return fmt.Errorf("bench: cell %s (gate %q) has no .bench operator", g.Kind, g.Name)
		}
		names := make([]string, len(g.Ins))
		for i, in := range g.Ins {
			names[i] = c.SignalName(in)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, op, strings.Join(names, ", "))
	}
	return bw.Flush()
}
