package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// FuzzParse hammers the .bench parser with arbitrary input: it must
// never panic or hang, and anything it accepts must be a valid,
// re-writable circuit.
func FuzzParse(f *testing.F) {
	f.Add(c17Bench)
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n# comment\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b, a)\n")
	f.Add("y = FROB(\n")
	f.Add("INPUT()\nOUTPUT(])\n= ()\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		// Accepted circuits must round-trip through the writer.
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // cells without .bench operators are fine to reject
		}
		if _, err := Parse(bytes.NewReader(buf.Bytes()), "fuzz2"); err != nil {
			t.Fatalf("writer output unparseable: %v\n%s", err, buf.String())
		}
	})
}

// FuzzParseBench feeds arbitrary bytes to the parser, seeded from the
// bundled ISCAS85-style example netlists.  Two properties: Parse
// never panics — it must return *ParseError for any malformed input,
// the hostile-input contract behind minflo.ParseBench — and any input
// it accepts survives a Parse→Write→Parse round trip with the
// re-parsed circuit matching shape for shape and the second write
// emitting exactly the first write's statements (as sets — the
// levelization may legally order independent gates differently).
func FuzzParseBench(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "iscas85", "*.bench"))
	if len(paths) == 0 {
		f.Fatal("no example .bench seeds found (examples/iscas85 moved?)")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Corners the unit tests know to be tricky: wide fan-ins
	// (decomposed into trees), out-of-order definitions, and a user
	// name colliding with the decomposition sub-gate namespace.
	f.Add([]byte("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" +
		"z = AND(y, a)\ny = NOR(a, b, c, d, e)\nOUTPUT(z)\n"))
	f.Add([]byte("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" +
		"y$or0_0 = OR(a, b)\ny = NOR(a, b, c, d, e)\nOUTPUT(y)\n"))
	f.Add([]byte("y = DFF(a)\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := Parse(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejecting hostile input is the point
		}
		var b1 bytes.Buffer
		if err := Write(&b1, c1); err != nil {
			return // cells without .bench operators are fine to reject
		}
		c2, err := Parse(bytes.NewReader(b1.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("re-Parse of written netlist: %v\n%s", err, b1.String())
		}
		if c1.NumPIs() != c2.NumPIs() || c1.NumGates() != c2.NumGates() || len(c1.POs) != len(c2.POs) {
			t.Fatalf("round trip changed shape: PIs %d→%d gates %d→%d POs %d→%d",
				c1.NumPIs(), c2.NumPIs(), c1.NumGates(), c2.NumGates(), len(c1.POs), len(c2.POs))
		}
		var b2 bytes.Buffer
		if err := Write(&b2, c2); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if s1, s2 := sortedStatements(b1.String()), sortedStatements(b2.String()); s1 != s2 {
			t.Fatalf("round trip changed statements:\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	})
}

// sortedStatements reduces a written netlist to its statement lines
// (declarations and assignments, comments and blanks dropped) in
// sorted order, the order-independent form the round-trip compares.
func sortedStatements(src string) string {
	var stmts []string
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		stmts = append(stmts, line)
	}
	sort.Strings(stmts)
	return strings.Join(stmts, "\n")
}
