package bench

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hammers the .bench parser with arbitrary input: it must
// never panic or hang, and anything it accepts must be a valid,
// re-writable circuit.
func FuzzParse(f *testing.F) {
	f.Add(c17Bench)
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n# comment\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b, a)\n")
	f.Add("y = FROB(\n")
	f.Add("INPUT()\nOUTPUT(])\n= ()\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		// Accepted circuits must round-trip through the writer.
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // cells without .bench operators are fine to reject
		}
		if _, err := Parse(bytes.NewReader(buf.Bytes()), "fuzz2"); err != nil {
			t.Fatalf("writer output unparseable: %v\n%s", err, buf.String())
		}
	})
}
