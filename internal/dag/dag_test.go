package dag

import (
	"strings"
	"testing"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/tech"
)

func model() *delay.Model { return delay.NewModel(tech.Default013()) }

func TestGateLevelStructure(t *testing.T) {
	c := gen.C17()
	p, err := GateLevel(c, model())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSizable != 6 {
		t.Fatalf("sizable %d", p.NumSizable)
	}
	if p.G.N() != 6+5+1 {
		t.Fatalf("vertices %d, want 12", p.G.N())
	}
	if len(p.PIs) != 5 {
		t.Fatalf("PIs %d", len(p.PIs))
	}
	if p.Kind[p.Sink] != KindSink {
		t.Fatal("sink kind")
	}
	for _, pi := range p.PIs {
		if p.Kind[pi] != KindPI {
			t.Fatal("PI kind")
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two POs -> two edges into the sink.
	if got := p.G.InDegree(p.Sink); got != 2 {
		t.Fatalf("sink in-degree %d, want 2", got)
	}
}

func TestGateLevelRejectsDangling(t *testing.T) {
	c := circuit.New("dangle")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Inv, a)
	c.AddGate("g2", cell.Inv, a) // drives nothing
	c.MarkPO(g1)
	_, err := GateLevel(c, model())
	if err == nil || !strings.Contains(err.Error(), "drives neither") {
		t.Fatalf("expected dangling error, got %v", err)
	}
}

func TestDelaysVectorShape(t *testing.T) {
	p, err := GateLevel(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	d := p.Delays(p.InitialSizes())
	if len(d) != p.G.N() {
		t.Fatalf("delay vector %d", len(d))
	}
	for i := 0; i < p.NumSizable; i++ {
		if d[i] <= 0 {
			t.Fatalf("gate %d has non-positive delay", i)
		}
	}
	for i := p.NumSizable; i < p.G.N(); i++ {
		if d[i] != 0 {
			t.Fatalf("non-sizable vertex %d has delay %g", i, d[i])
		}
	}
}

func TestAreaAccounting(t *testing.T) {
	p, err := GateLevel(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	x := p.InitialSizes()
	if a, want := p.Area(x), p.MinAreaValue(); a != want {
		t.Fatalf("area %g != min %g", a, want)
	}
	x[0] = 2
	if p.Area(x) <= p.MinAreaValue() {
		t.Fatal("area did not grow")
	}
}

func TestApplyToCircuit(t *testing.T) {
	c := gen.C17()
	p, err := GateLevel(c, model())
	if err != nil {
		t.Fatal(err)
	}
	x := p.InitialSizes()
	x[3] = 4.5
	if err := p.ApplyToCircuit(c, x); err != nil {
		t.Fatal(err)
	}
	if c.Gates[3].Size != 4.5 {
		t.Fatal("size not applied")
	}
}

func TestAugment(t *testing.T) {
	p, err := GateLevel(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Augment()
	if a.G.N() != p.G.N()+p.NumSizable {
		t.Fatalf("augmented vertices %d", a.G.N())
	}
	if a.G.M() != p.G.M()+p.NumSizable {
		t.Fatalf("augmented edges %d, want %d", a.G.M(), p.G.M()+p.NumSizable)
	}
	// Every sizable vertex now has exactly one outgoing edge: to its dummy.
	for i := 0; i < p.NumSizable; i++ {
		if a.G.OutDegree(i) != 1 {
			t.Fatalf("vertex %d out-degree %d after augmentation", i, a.G.OutDegree(i))
		}
		e := a.G.Edge(a.G.Out(i)[0])
		if e.To != a.DmyOf[i] {
			t.Fatalf("vertex %d does not point at its dummy", i)
		}
		if a.Kind[a.DmyOf[i]] != KindDummy {
			t.Fatal("dummy kind wrong")
		}
		if a.G.Edge(a.SelfEdge[i]).From != i {
			t.Fatal("self edge bookkeeping wrong")
		}
	}
	// Former fanout edges must now leave the dummies.
	for _, e := range a.G.Edges() {
		if e.From < p.NumSizable && e.To != a.DmyOf[e.From] {
			t.Fatalf("sizable %d still has direct fanout to %d", e.From, e.To)
		}
	}
	if !a.G.IsDAG() {
		t.Fatal("augmented graph not a DAG")
	}
	// Delay vector: dummies zero.
	d := a.Delays(p.InitialSizes())
	for i := p.G.N(); i < a.G.N(); i++ {
		if d[i] != 0 {
			t.Fatal("dummy has delay")
		}
	}
}

func TestValidateCatchesBadCoupling(t *testing.T) {
	p, err := GateLevel(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	p.Coeffs[0].Terms = append(p.Coeffs[0].Terms, delay.Term{J: 999, A: 1})
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range coupling accepted")
	}
}

func TestTopoCached(t *testing.T) {
	p, err := GateLevel(gen.RippleAdder(4, gen.FAXor), model())
	if err != nil {
		t.Fatal(err)
	}
	order := p.Topo()
	if len(order) != p.G.N() {
		t.Fatalf("topo length %d", len(order))
	}
	pos := make([]int, p.G.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range p.G.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatal("cached topo order invalid")
		}
	}
}
