// Package dag builds the sizing DAG the optimizer operates on
// (paper §2.1–2.2): one vertex per sizing variable (gate in gate-sizing
// mode, transistor in transistor-sizing mode), plus vertices for the
// primary inputs and a single dummy sink O collecting all primary
// outputs (Corollary 1), and the dummy-vertex augmentation used by the
// D-phase (Figure 5).
package dag

import (
	"fmt"
	"sync"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/graph"
)

// VertexKind classifies vertices of the sizing DAG.
type VertexKind int8

const (
	// KindSizable vertices carry a sizing variable and a delay.
	KindSizable VertexKind = iota
	// KindPI vertices model primary inputs (zero delay, pinned in the
	// D-phase).
	KindPI
	// KindSink is the dummy output collector O (zero delay, pinned).
	KindSink
	// KindDummy marks D-phase dummy vertices Dmy(i) in augmented graphs.
	KindDummy
)

// Problem is a sizing problem instance: the DAG, the simple-monotonic
// delay coefficients of every sizable vertex, area weights, and bounds.
type Problem struct {
	Name string
	// G has vertices [0,NumSizable) sizable, then PIs, then the sink.
	G          *graph.Digraph
	Kind       []VertexKind
	NumSizable int
	Sink       int
	PIs        []int
	// Coeffs[i] describes delay(i); Term.J indexes sizable vertices.
	Coeffs []delay.Coeffs
	// AreaW[i] is the area weight of sizable vertex i (area = Σ w_i·x_i).
	AreaW            []float64
	MinSize, MaxSize float64
	Labels           []string

	// FixedDelay, when non-nil (length G.N()), assigns a constant delay
	// to non-sizable vertices instead of the usual zero.  Cone-scoped
	// subproblems use it to encode frozen boundary timing: a virtual PI
	// carries the frozen finish time of an out-of-cone fanin, and a pad
	// vertex carries the slack to an out-of-cone fanout's required
	// arrival (see ExtractCone).  Entries below NumSizable are ignored.
	FixedDelay []float64

	topo []int      // cached topological order of G
	csr  *delay.CSR // build-once flattened coupling structure
}

// buildScratch holds the reusable construction buffers of GateLevel —
// per-source dedup stamps and degree-bound counters — pooled so repeat
// table sweeps reuse them instead of reallocating per problem.
type buildScratch struct {
	lastTarget []int32 // dedup: lastTarget[u] == current target marker
	outDeg     []int32
	inDeg      []int32
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

func (sc *buildScratch) sized(n int) (lastTarget, outDeg, inDeg []int32) {
	if cap(sc.lastTarget) < n {
		sc.lastTarget = make([]int32, n)
		sc.outDeg = make([]int32, n)
		sc.inDeg = make([]int32, n)
	}
	lastTarget = sc.lastTarget[:n]
	outDeg = sc.outDeg[:n]
	inDeg = sc.inDeg[:n]
	for i := 0; i < n; i++ {
		lastTarget[i] = -1
		outDeg[i] = 0
		inDeg[i] = 0
	}
	return lastTarget, outDeg, inDeg
}

// GateLevel builds the gate-sizing problem for a circuit: one sizable
// vertex per gate with equivalent-inverter Elmore coefficients.
//
// Construction is arena-based: adjacency is reserved up front from
// degree bounds, edge dedup runs on pooled stamp arrays instead of a
// map, and the coefficient terms share one backing slice (see
// delay.GateCoeffs) — repeat RunTable sweeps reuse the pooled scratch.
func GateLevel(c *circuit.Circuit, m *delay.Model) (*Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// A gate driving nothing has no x-dependent delay (its budget would
	// equal its intrinsic delay exactly, making eq. 6 singular); such
	// netlists are malformed for sizing purposes.
	fan, po := c.FanoutCounts()
	for gi := range c.Gates {
		if fan[gi]+po[gi] == 0 {
			return nil, fmt.Errorf("dag: gate %q drives neither a gate nor a PO", c.Gates[gi].Name)
		}
	}
	coeffs, err := m.GateCoeffs(c)
	if err != nil {
		return nil, err
	}
	n := c.NumGates()
	g := graph.New(n + c.NumPIs() + 1)
	sink := n + c.NumPIs()
	kind := make([]VertexKind, g.N())
	labels := make([]string, g.N())
	pis := make([]int, c.NumPIs())
	for i := 0; i < n; i++ {
		kind[i] = KindSizable
		labels[i] = c.Gates[i].Name
	}
	for i := 0; i < c.NumPIs(); i++ {
		v := n + i
		kind[v] = KindPI
		labels[v] = c.PIs[i]
		pis[i] = v
	}
	kind[sink] = KindSink
	labels[sink] = "$O"

	// Dedup (u, target) pairs with a stamp per source vertex: the edge
	// loops below visit one target at a time, so lastTarget[u] == the
	// target's marker means u→target was already added.  Two passes:
	// the first counts deduped degrees so the adjacency is reserved
	// exactly, the second inserts.
	sc := buildPool.Get().(*buildScratch)
	lastTarget, outDeg, inDeg := sc.sized(g.N())
	src := func(ref circuit.Ref) int32 {
		if ref.Kind == circuit.RefPI {
			return int32(n + ref.Index)
		}
		return int32(ref.Index)
	}
	edges := 0
	forEachEdge := func(add func(u int32, target int)) {
		for gi := range c.Gates {
			for _, in := range c.Gates[gi].Ins {
				if u := src(in); lastTarget[u] != int32(gi) {
					lastTarget[u] = int32(gi)
					add(u, gi)
				}
			}
		}
		for _, po := range c.POs {
			if u := src(po); lastTarget[u] != int32(sink) {
				lastTarget[u] = int32(sink)
				add(u, sink)
			}
		}
	}
	forEachEdge(func(u int32, target int) {
		outDeg[u]++
		inDeg[target]++
		edges++
	})
	g.Reserve(outDeg, inDeg, edges)
	for i := range lastTarget {
		lastTarget[i] = -1
	}
	forEachEdge(func(u int32, target int) { g.AddEdge(int(u), target) })
	buildPool.Put(sc)

	areaW := make([]float64, n)
	for gi := range c.Gates {
		areaW[gi] = cell.Get(c.Gates[gi].Kind).UnitArea
	}
	p := &Problem{
		Name:       c.Name,
		G:          g,
		Kind:       kind,
		NumSizable: n,
		Sink:       sink,
		PIs:        pis,
		Coeffs:     coeffs,
		AreaW:      areaW,
		MinSize:    m.Tech.MinSize,
		MaxSize:    m.Tech.MaxSize,
		Labels:     labels,
	}
	if p.topo, err = g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("dag: %w", err)
	}
	p.csr = delay.NewCSR(p.Coeffs)
	return p, nil
}

// Topo returns the cached topological order of G.
func (p *Problem) Topo() []int { return p.topo }

// CSR returns the flattened coupling structure shared by every solver
// operating on the problem (delay evaluation, the W-phase SMP, the
// D-phase sensitivity solves, TILOS's incremental retiming).  It is
// built once at construction and read-only thereafter, so concurrent
// optimizer runs over one Problem remain race-free.
func (p *Problem) CSR() *delay.CSR { return p.csr }

// InitialSizes returns the all-minimum size vector.
func (p *Problem) InitialSizes() []float64 {
	x := make([]float64, p.NumSizable)
	for i := range x {
		x[i] = p.MinSize
	}
	return x
}

// Delays returns the per-vertex delay vector over all of G's vertices
// (zero for PI/sink vertices).
func (p *Problem) Delays(x []float64) []float64 {
	return p.DelaysInto(make([]float64, p.G.N()), x)
}

// DelaysInto fills d (length G.N()) with the per-vertex delays at sizes
// x and returns it — the allocation-free variant for iteration loops.
func (p *Problem) DelaysInto(d, x []float64) []float64 {
	p.csr.DelaysInto(d, x)
	if p.FixedDelay != nil {
		for i := p.NumSizable; i < len(d); i++ {
			d[i] = p.FixedDelay[i]
		}
		return d
	}
	for i := p.NumSizable; i < len(d); i++ {
		d[i] = 0
	}
	return d
}

// Area returns Σ w_i·x_i.
func (p *Problem) Area(x []float64) float64 {
	var a float64
	for i := 0; i < p.NumSizable; i++ {
		a += p.AreaW[i] * x[i]
	}
	return a
}

// MinAreaValue returns the area of the all-minimum solution.
func (p *Problem) MinAreaValue() float64 {
	var a float64
	for i := 0; i < p.NumSizable; i++ {
		a += p.AreaW[i] * p.MinSize
	}
	return a
}

// ApplyToCircuit writes a gate-level size vector back into the circuit.
func (p *Problem) ApplyToCircuit(c *circuit.Circuit, x []float64) error {
	if p.NumSizable != c.NumGates() {
		return fmt.Errorf("dag: %d sizable vertices but %d gates", p.NumSizable, c.NumGates())
	}
	c.SetSizes(x[:p.NumSizable])
	return nil
}

// Validate checks invariants: DAG-ness, kinds, coefficient sanity.
func (p *Problem) Validate() error {
	if !p.G.IsDAG() {
		return fmt.Errorf("dag: graph has a cycle")
	}
	if len(p.Coeffs) != p.NumSizable || len(p.AreaW) != p.NumSizable {
		return fmt.Errorf("dag: coefficient/area arrays mismatch NumSizable")
	}
	for i := range p.Coeffs {
		if err := p.Coeffs[i].Validate(); err != nil {
			return fmt.Errorf("dag: vertex %d (%s): %w", i, p.Labels[i], err)
		}
		for _, t := range p.Coeffs[i].Terms {
			if t.J < 0 || t.J >= p.NumSizable {
				return fmt.Errorf("dag: vertex %d couples to non-sizable %d", i, t.J)
			}
		}
	}
	for i := 0; i < p.NumSizable; i++ {
		if p.Kind[i] != KindSizable {
			return fmt.Errorf("dag: vertex %d should be sizable", i)
		}
	}
	if p.Kind[p.Sink] != KindSink {
		return fmt.Errorf("dag: sink kind wrong")
	}
	if p.FixedDelay != nil && len(p.FixedDelay) != p.G.N() {
		return fmt.Errorf("dag: FixedDelay length %d != %d vertices", len(p.FixedDelay), p.G.N())
	}
	return nil
}

// Augmented is the D-phase graph: every sizable vertex i gains a dummy
// vertex Dmy(i) placed on its output; all former fanout edges of i are
// re-rooted at Dmy(i) (paper Figure 5).
type Augmented struct {
	Base *Problem
	G    *graph.Digraph
	Kind []VertexKind
	// DmyOf[i] is the dummy vertex of sizable vertex i.
	DmyOf []int
	// SelfEdge[i] is the edge id of i→Dmy(i).
	SelfEdge []int
}

// Augment constructs the dummy-augmented graph.  The augmented
// adjacency is reserved exactly (the degree of every vertex is known
// from the base graph), so construction is a handful of allocations
// instead of per-edge slice growth — Augment was the dominant
// allocator of a problem build before.
func (p *Problem) Augment() *Augmented {
	n := p.G.N()
	g := graph.New(n + p.NumSizable)
	kind := make([]VertexKind, g.N())
	copy(kind, p.Kind)
	dmy := make([]int, p.NumSizable)
	self := make([]int, p.NumSizable)
	for i := 0; i < p.NumSizable; i++ {
		dmy[i] = n + i
		kind[n+i] = KindDummy
	}
	// Exact augmented degrees: sizable i keeps in-degree plus the new
	// self edge out; its former out-edges move to Dmy(i).
	outDeg := make([]int32, g.N())
	inDeg := make([]int32, g.N())
	for i := 0; i < p.NumSizable; i++ {
		outDeg[i] = 1 // i → Dmy(i)
		inDeg[dmy[i]] = 1
		outDeg[dmy[i]] = int32(p.G.OutDegree(i))
	}
	for v := p.NumSizable; v < n; v++ {
		outDeg[v] = int32(p.G.OutDegree(v))
	}
	for v := 0; v < n; v++ {
		inDeg[v] += int32(p.G.InDegree(v))
	}
	g.Reserve(outDeg, inDeg, p.NumSizable+p.G.M())
	for i := 0; i < p.NumSizable; i++ {
		self[i] = g.AddEdge(i, dmy[i])
	}
	for _, e := range p.G.Edges() {
		from := e.From
		if from < p.NumSizable {
			from = dmy[from] // re-root at the dummy
		}
		g.AddEdge(from, e.To)
	}
	return &Augmented{Base: p, G: g, Kind: kind, DmyOf: dmy, SelfEdge: self}
}

// Delays returns the augmented-graph delay vector (dummies have zero
// delay).
func (a *Augmented) Delays(x []float64) []float64 {
	return a.DelaysInto(make([]float64, a.G.N()), x)
}

// DelaysInto fills d (length G.N()) with the augmented-graph delays at
// sizes x and returns it — the allocation-free variant for iteration
// loops.
func (a *Augmented) DelaysInto(d, x []float64) []float64 {
	a.Base.csr.DelaysInto(d, x)
	if fd := a.Base.FixedDelay; fd != nil {
		// Base vertices beyond NumSizable keep their fixed delay; the
		// appended dummy vertices (indices ≥ len(fd)) stay zero.
		for i := a.Base.NumSizable; i < len(d); i++ {
			if i < len(fd) {
				d[i] = fd[i]
			} else {
				d[i] = 0
			}
		}
		return d
	}
	for i := a.Base.NumSizable; i < len(d); i++ {
		d[i] = 0
	}
	return d
}
