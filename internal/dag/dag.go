// Package dag builds the sizing DAG the optimizer operates on
// (paper §2.1–2.2): one vertex per sizing variable (gate in gate-sizing
// mode, transistor in transistor-sizing mode), plus vertices for the
// primary inputs and a single dummy sink O collecting all primary
// outputs (Corollary 1), and the dummy-vertex augmentation used by the
// D-phase (Figure 5).
package dag

import (
	"fmt"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/graph"
)

// VertexKind classifies vertices of the sizing DAG.
type VertexKind int8

const (
	// KindSizable vertices carry a sizing variable and a delay.
	KindSizable VertexKind = iota
	// KindPI vertices model primary inputs (zero delay, pinned in the
	// D-phase).
	KindPI
	// KindSink is the dummy output collector O (zero delay, pinned).
	KindSink
	// KindDummy marks D-phase dummy vertices Dmy(i) in augmented graphs.
	KindDummy
)

// Problem is a sizing problem instance: the DAG, the simple-monotonic
// delay coefficients of every sizable vertex, area weights, and bounds.
type Problem struct {
	Name string
	// G has vertices [0,NumSizable) sizable, then PIs, then the sink.
	G          *graph.Digraph
	Kind       []VertexKind
	NumSizable int
	Sink       int
	PIs        []int
	// Coeffs[i] describes delay(i); Term.J indexes sizable vertices.
	Coeffs []delay.Coeffs
	// AreaW[i] is the area weight of sizable vertex i (area = Σ w_i·x_i).
	AreaW            []float64
	MinSize, MaxSize float64
	Labels           []string

	topo []int      // cached topological order of G
	csr  *delay.CSR // build-once flattened coupling structure
}

// GateLevel builds the gate-sizing problem for a circuit: one sizable
// vertex per gate with equivalent-inverter Elmore coefficients.
func GateLevel(c *circuit.Circuit, m *delay.Model) (*Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// A gate driving nothing has no x-dependent delay (its budget would
	// equal its intrinsic delay exactly, making eq. 6 singular); such
	// netlists are malformed for sizing purposes.
	fan, po := c.Fanouts()
	for gi := range c.Gates {
		if len(fan[gi])+po[gi] == 0 {
			return nil, fmt.Errorf("dag: gate %q drives neither a gate nor a PO", c.Gates[gi].Name)
		}
	}
	coeffs, err := m.GateCoeffs(c)
	if err != nil {
		return nil, err
	}
	n := c.NumGates()
	g := graph.New(n + c.NumPIs() + 1)
	sink := n + c.NumPIs()
	kind := make([]VertexKind, g.N())
	labels := make([]string, g.N())
	pis := make([]int, c.NumPIs())
	for i := 0; i < n; i++ {
		kind[i] = KindSizable
		labels[i] = c.Gates[i].Name
	}
	for i := 0; i < c.NumPIs(); i++ {
		v := n + i
		kind[v] = KindPI
		labels[v] = c.PIs[i]
		pis[i] = v
	}
	kind[sink] = KindSink
	labels[sink] = "$O"

	seen := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		key := [2]int{u, v}
		if !seen[key] {
			seen[key] = true
			g.AddEdge(u, v)
		}
	}
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == circuit.RefPI {
				addEdge(n+in.Index, gi)
			} else {
				addEdge(in.Index, gi)
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == circuit.RefPI {
			addEdge(n+po.Index, sink)
		} else {
			addEdge(po.Index, sink)
		}
	}

	areaW := make([]float64, n)
	for gi := range c.Gates {
		areaW[gi] = cell.Get(c.Gates[gi].Kind).UnitArea
	}
	p := &Problem{
		Name:       c.Name,
		G:          g,
		Kind:       kind,
		NumSizable: n,
		Sink:       sink,
		PIs:        pis,
		Coeffs:     coeffs,
		AreaW:      areaW,
		MinSize:    m.Tech.MinSize,
		MaxSize:    m.Tech.MaxSize,
		Labels:     labels,
	}
	if p.topo, err = g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("dag: %w", err)
	}
	p.csr = delay.NewCSR(p.Coeffs)
	return p, nil
}

// Topo returns the cached topological order of G.
func (p *Problem) Topo() []int { return p.topo }

// CSR returns the flattened coupling structure shared by every solver
// operating on the problem (delay evaluation, the W-phase SMP, the
// D-phase sensitivity solves, TILOS's incremental retiming).  It is
// built once at construction and read-only thereafter, so concurrent
// optimizer runs over one Problem remain race-free.
func (p *Problem) CSR() *delay.CSR { return p.csr }

// InitialSizes returns the all-minimum size vector.
func (p *Problem) InitialSizes() []float64 {
	x := make([]float64, p.NumSizable)
	for i := range x {
		x[i] = p.MinSize
	}
	return x
}

// Delays returns the per-vertex delay vector over all of G's vertices
// (zero for PI/sink vertices).
func (p *Problem) Delays(x []float64) []float64 {
	return p.DelaysInto(make([]float64, p.G.N()), x)
}

// DelaysInto fills d (length G.N()) with the per-vertex delays at sizes
// x and returns it — the allocation-free variant for iteration loops.
func (p *Problem) DelaysInto(d, x []float64) []float64 {
	p.csr.DelaysInto(d, x)
	for i := p.NumSizable; i < len(d); i++ {
		d[i] = 0
	}
	return d
}

// Area returns Σ w_i·x_i.
func (p *Problem) Area(x []float64) float64 {
	var a float64
	for i := 0; i < p.NumSizable; i++ {
		a += p.AreaW[i] * x[i]
	}
	return a
}

// MinAreaValue returns the area of the all-minimum solution.
func (p *Problem) MinAreaValue() float64 {
	var a float64
	for i := 0; i < p.NumSizable; i++ {
		a += p.AreaW[i] * p.MinSize
	}
	return a
}

// ApplyToCircuit writes a gate-level size vector back into the circuit.
func (p *Problem) ApplyToCircuit(c *circuit.Circuit, x []float64) error {
	if p.NumSizable != c.NumGates() {
		return fmt.Errorf("dag: %d sizable vertices but %d gates", p.NumSizable, c.NumGates())
	}
	c.SetSizes(x[:p.NumSizable])
	return nil
}

// Validate checks invariants: DAG-ness, kinds, coefficient sanity.
func (p *Problem) Validate() error {
	if !p.G.IsDAG() {
		return fmt.Errorf("dag: graph has a cycle")
	}
	if len(p.Coeffs) != p.NumSizable || len(p.AreaW) != p.NumSizable {
		return fmt.Errorf("dag: coefficient/area arrays mismatch NumSizable")
	}
	for i := range p.Coeffs {
		if err := p.Coeffs[i].Validate(); err != nil {
			return fmt.Errorf("dag: vertex %d (%s): %w", i, p.Labels[i], err)
		}
		for _, t := range p.Coeffs[i].Terms {
			if t.J < 0 || t.J >= p.NumSizable {
				return fmt.Errorf("dag: vertex %d couples to non-sizable %d", i, t.J)
			}
		}
	}
	for i := 0; i < p.NumSizable; i++ {
		if p.Kind[i] != KindSizable {
			return fmt.Errorf("dag: vertex %d should be sizable", i)
		}
	}
	if p.Kind[p.Sink] != KindSink {
		return fmt.Errorf("dag: sink kind wrong")
	}
	return nil
}

// Augmented is the D-phase graph: every sizable vertex i gains a dummy
// vertex Dmy(i) placed on its output; all former fanout edges of i are
// re-rooted at Dmy(i) (paper Figure 5).
type Augmented struct {
	Base *Problem
	G    *graph.Digraph
	Kind []VertexKind
	// DmyOf[i] is the dummy vertex of sizable vertex i.
	DmyOf []int
	// SelfEdge[i] is the edge id of i→Dmy(i).
	SelfEdge []int
}

// Augment constructs the dummy-augmented graph.
func (p *Problem) Augment() *Augmented {
	n := p.G.N()
	g := graph.New(n + p.NumSizable)
	kind := make([]VertexKind, g.N())
	copy(kind, p.Kind)
	dmy := make([]int, p.NumSizable)
	self := make([]int, p.NumSizable)
	for i := 0; i < p.NumSizable; i++ {
		dmy[i] = n + i
		kind[n+i] = KindDummy
	}
	for i := 0; i < p.NumSizable; i++ {
		self[i] = g.AddEdge(i, dmy[i])
	}
	for _, e := range p.G.Edges() {
		from := e.From
		if from < p.NumSizable {
			from = dmy[from] // re-root at the dummy
		}
		g.AddEdge(from, e.To)
	}
	return &Augmented{Base: p, G: g, Kind: kind, DmyOf: dmy, SelfEdge: self}
}

// Delays returns the augmented-graph delay vector (dummies have zero
// delay).
func (a *Augmented) Delays(x []float64) []float64 {
	return a.DelaysInto(make([]float64, a.G.N()), x)
}

// DelaysInto fills d (length G.N()) with the augmented-graph delays at
// sizes x and returns it — the allocation-free variant for iteration
// loops.
func (a *Augmented) DelaysInto(d, x []float64) []float64 {
	a.Base.csr.DelaysInto(d, x)
	for i := a.Base.NumSizable; i < len(d); i++ {
		d[i] = 0
	}
	return d
}
