package dag

import (
	"testing"

	"minflo/internal/gen"
	"minflo/internal/sta"
)

func TestWiredProblemStructure(t *testing.T) {
	c := gen.C17()
	wp, err := GateLevelWithWires(c, model(), DefaultWireParams())
	if err != nil {
		t.Fatal(err)
	}
	// c17: 6 gates; gate→gate connections: G16(G11), G19(G11),
	// G22(G10,G16), G23(G16,G19) = 6 wires.
	if wp.NumGates != 6 {
		t.Fatalf("gates %d", wp.NumGates)
	}
	if wp.NumSizable != 6+6 {
		t.Fatalf("sizable %d, want 12", wp.NumSizable)
	}
	if len(wp.WireLabel) != 6 {
		t.Fatalf("wire labels %d", len(wp.WireLabel))
	}
	if err := wp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drivers couple to wires, wires couple to sinks.
	for gi := 0; gi < wp.NumGates; gi++ {
		for _, tm := range wp.Coeffs[gi].Terms {
			if tm.J < wp.NumGates {
				t.Fatalf("gate %d couples directly to gate %d (should go via wire)", gi, tm.J)
			}
		}
	}
	for wi := wp.NumGates; wi < wp.NumSizable; wi++ {
		for _, tm := range wp.Coeffs[wi].Terms {
			if tm.J >= wp.NumGates {
				t.Fatalf("wire %d couples to non-gate %d", wi, tm.J)
			}
		}
	}
}

func TestWiredProblemTiming(t *testing.T) {
	c := gen.RippleAdder(4, gen.FAXor)
	wp, err := GateLevelWithWires(c, model(), DefaultWireParams())
	if err != nil {
		t.Fatal(err)
	}
	x := wp.InitialSizes()
	tm, err := sta.Analyze(wp.G, wp.Delays(x))
	if err != nil {
		t.Fatal(err)
	}
	if tm.CP <= 0 || !tm.Safe(1e-9) {
		t.Fatalf("bad initial timing: CP=%g", tm.CP)
	}
	// Widening a wire must speed its own stage and slow its driver.
	wi := wp.NumGates // first wire vertex
	before := wp.Coeffs[wi].Delay(x[wi], x)
	x2 := append([]float64(nil), x...)
	x2[wi] = 4
	after := wp.Coeffs[wi].Delay(x2[wi], x2)
	if after >= before {
		t.Fatalf("wider wire did not speed up: %g -> %g", before, after)
	}
}

func TestWireParamsValidate(t *testing.T) {
	bad := []WireParams{
		{RUnit: 0, CUnit: 1, AreaWeight: 1},
		{RUnit: 1, CUnit: 0, AreaWeight: 1},
		{RUnit: 1, CUnit: 1, AreaWeight: 0},
		{RUnit: 1, CUnit: 1, CFringe: -1, AreaWeight: 1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultWireParams().Validate(); err != nil {
		t.Fatal(err)
	}
}
