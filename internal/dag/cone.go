// Cone extraction for ECO re-sizing: after an accepted edit batch only
// a small region of the DAG has stale sizing, so the D/W loop should
// run on a subproblem whose vertex count scales with the edit, not the
// circuit.  ExtractCone builds that subproblem against *frozen
// boundary timing*: everything outside the cone keeps its current
// sizes and delays, and the boundary is encoded with two kinds of
// fixed-delay terminals (Problem.FixedDelay):
//
//   - a virtual PI per out-of-cone fanin u, whose delay is u's frozen
//     finish time — cone gates see exactly the arrival they see today;
//   - a pad per cone gate v with an out-of-cone fanout w, whose delay
//     is T − RA(w) where RA(w) is w's required arrival under frozen
//     out-of-cone delays — the cone may consume slack up to, and no
//     further than, what the frozen downstream logic leaves it.
//
// Membership is the forward cone Reachable(seeds) closed under the
// coupling CSR's transpose: resizing a cone gate changes the delay of
// every row mentioning its size (its drivers), so those rows join the
// cone as sizable members ("the ring").  The closure is taken once,
// not to a fixed point — a ring gate's own drivers stay frozen — so a
// cone solve is an approximation whose residual error shows up as a
// boundary-arrival drift.  Callers MUST reconcile: re-time the full
// graph at the merged sizes and fall back (widen, or full re-size)
// when the target is missed (see internal/core's cone session).
package dag

import (
	"fmt"
	"math"
	"sort"

	"minflo/internal/delay"
	"minflo/internal/graph"
)

// Cone is a cone-scoped subproblem plus the index maps needed to seed
// it from, and merge it back into, the full problem's size vector.
type Cone struct {
	// Sub is the cone-scoped problem: vertices [0, NumSizable) are the
	// cone's gates, then one virtual PI per distinct out-of-cone fanin
	// (ascending full-graph order), then one pad per escaping gate,
	// then the sink.  Sub.FixedDelay carries the frozen boundary
	// timing; Sub.PIs lists only the virtual PIs — pads deliberately
	// float in the D-phase, constrained by their edges alone.
	Sub *Problem
	// Members maps cone-local sizable index → full-problem sizable
	// index, ascending.
	Members []int
}

// ConeMembers returns the sizable members of the cone around seeds —
// the forward-reachable sizable set plus one transpose ring (every row
// whose delay mentions a cone member's size) — in ascending order.
// It is the cheap membership-only prefix of ExtractCone, so callers
// can apply size-based fallback policies before building anything.
func (p *Problem) ConeMembers(seeds []int) []int {
	n := p.NumSizable
	reach := p.G.Reachable(seeds)
	inSub := make([]bool, n)
	for i := 0; i < n; i++ {
		if reach[i] {
			inSub[i] = true
		}
	}
	return p.closeCone(inSub)
}

// ConeMembersTimed is ConeMembers grown backward over the timing-moved
// region: starting from members whose frozen finish time is off their
// required finish at target T, sizable fanins that are themselves
// moved join the cone transitively.  "Moved" is two-sided:
//
//   - violated (finish > RF): some gate on every violated path MUST
//     speed up, and freezing those out makes the cone shoulder repairs
//     a full re-size would spread across the whole path;
//   - freed (RF − finish beyond a macroscopic tolerance): at a
//     converged seed every above-minimum gate sits on a near-critical
//     path, so macroscopic slack marks gates an edit just relaxed —
//     the ones a full re-size downsizes to recover area.  Freezing
//     them out leaves the cone answer with slack it cannot sell.
//
// These are the vertices a full re-size actually touches — their
// absence was the dominant cone-vs-full area gap in both directions.
// x and finish are the frozen sizes and full-graph finish times
// ExtractCone will be called with.
func (p *Problem) ConeMembersTimed(seeds []int, x, finish []float64, T float64) []int {
	n := p.NumSizable
	reach := p.G.Reachable(seeds)
	inSub := make([]bool, n)
	for i := 0; i < n; i++ {
		if reach[i] {
			inSub[i] = true
		}
	}
	d := p.Delays(x)
	rf := p.requiredFinish(d, T)
	tol := 1e-9 * math.Abs(T)
	freeTol := coneFreedSlackTol * math.Abs(T)
	moved := func(v int) bool {
		return finish[v]-rf[v] > tol || rf[v]-finish[v] > freeTol
	}
	var queue []int
	for v := 0; v < n; v++ {
		if inSub[v] && moved(v) {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range p.G.In(v) {
			u := p.G.Edge(e).From
			if u < n && !inSub[u] && moved(u) {
				inSub[u] = true
				queue = append(queue, u)
			}
		}
	}
	return p.closeCone(inSub)
}

// coneFreedSlackTol is the relative slack (vs the target) beyond which
// a vertex counts as freed by an edit rather than sitting at a
// converged answer's residual slack.  Converged D/W answers leave
// above-minimum gates within a hair of critical; an edit's relaxation
// is macroscopic.
const coneFreedSlackTol = 5e-4

// closeCone adds one transpose ring to a member mask — every row whose
// delay mentions a member's size joins as sizable — and returns the
// ascending member list.  Ring gates (and backward-grown members) can
// have out-of-cone fanouts; their residual couplings are what
// reconciliation checks.
func (p *Problem) closeCone(inSub []bool) []int {
	n := p.NumSizable
	base := append([]bool(nil), inSub...)
	for j := 0; j < n; j++ {
		if !base[j] {
			continue
		}
		rows, _ := p.csr.Incoming(j)
		for _, i := range rows {
			if int(i) < n && !inSub[i] {
				inSub[i] = true
			}
		}
	}
	members := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if inSub[i] {
			members = append(members, i)
		}
	}
	return members
}

// requiredFinish runs the backward required-finish pass over the full
// graph at frozen delays d: RF[sink] = T, RF[v] = min over fanouts w of
// RF[w] − d[w].
func (p *Problem) requiredFinish(d []float64, T float64) []float64 {
	rf := make([]float64, p.G.N())
	for i := range rf {
		rf[i] = math.Inf(1)
	}
	rf[p.Sink] = T
	topo := p.topo
	for k := len(topo) - 1; k >= 0; k-- {
		v := topo[k]
		if v == p.Sink {
			continue
		}
		best := math.Inf(1)
		for _, e := range p.G.Out(v) {
			w := p.G.Edge(e).To
			if ra := rf[w] - d[w]; ra < best {
				best = ra
			}
		}
		rf[v] = best
	}
	return rf
}

// WidenMembers grows a member set by one fanin layer and re-closes it
// (forward cone + ring) — the deterministic reconciliation retry step.
// The result is a strict superset of members.
func (p *Problem) WidenMembers(members []int) []int {
	n := p.NumSizable
	seed := make([]bool, n)
	for _, v := range members {
		seed[v] = true
	}
	for _, v := range members {
		for _, e := range p.G.In(v) {
			if u := p.G.Edge(e).From; u < n {
				seed[u] = true
			}
		}
	}
	seeds := make([]int, 0, len(members)*2)
	for i := 0; i < n; i++ {
		if seed[i] {
			seeds = append(seeds, i)
		}
	}
	return p.ConeMembers(seeds)
}

// ExtractCone builds the cone-scoped subproblem over members (as
// returned by ConeMembers or WidenMembers) at frozen sizes x, frozen
// full-graph finish times (sta.Arrivals.FinishSlice), and critical-path
// target T.  The construction is a pure function of its arguments —
// ascending orders throughout — so replay determinism is preserved.
func (p *Problem) ExtractCone(members []int, x, finish []float64, T float64) (*Cone, error) {
	n := p.NumSizable
	if len(x) != n {
		return nil, fmt.Errorf("dag: ExtractCone sizes length %d != %d sizable", len(x), n)
	}
	if len(finish) != p.G.N() {
		return nil, fmt.Errorf("dag: ExtractCone finish length %d != %d vertices", len(finish), p.G.N())
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("dag: ExtractCone with no members")
	}
	loc := make([]int, n)
	for i := range loc {
		loc[i] = -1
	}
	for lv, v := range members {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("dag: cone member %d out of sizable range", v)
		}
		loc[v] = lv
	}
	nSub := len(members)

	// Frozen delays and the backward required-finish pass for the pads —
	// over CONE-AVOIDING paths only: RF[sink] = T, RF[v] = min over
	// out-of-cone fanouts w of RF[w] − d[w].  A path that re-enters the
	// cone is represented inside the subproblem (the re-entry vertex's
	// virtual PI carries its frozen arrival), so letting it constrain a
	// pad too would double-count the very violation the cone is being
	// solved to fix — the pre-fix failure mode was pads tightened by the
	// edited gate's own stale delay, forcing the cone to over-size
	// against a requirement it was about to repair.  The frozen re-entry
	// arrival is stale when the cone slows a re-entrant path's source;
	// the caller's full-graph reconciliation is the authoritative check.
	d := p.Delays(x)
	inConeMask := make([]bool, p.G.N())
	for _, v := range members {
		inConeMask[v] = true
	}
	rf := make([]float64, p.G.N())
	for i := range rf {
		rf[i] = math.Inf(1)
	}
	rf[p.Sink] = T
	topo := p.topo
	for k := len(topo) - 1; k >= 0; k-- {
		v := topo[k]
		if v == p.Sink {
			continue
		}
		best := math.Inf(1)
		for _, e := range p.G.Out(v) {
			w := p.G.Edge(e).To
			if w != p.Sink && inConeMask[w] {
				continue
			}
			if ra := rf[w] - d[w]; ra < best {
				best = ra
			}
		}
		rf[v] = best
	}

	// Boundary terminals.  Virtual PIs: one per distinct out-of-cone
	// fanin, ascending full-graph order.  Pads: one per cone gate with
	// a finite escape requirement, in member order.
	inCone := func(v int) bool { return v < n && loc[v] >= 0 }
	seen := make([]bool, p.G.N())
	var vpiSrc []int
	for _, v := range members {
		for _, e := range p.G.In(v) {
			if u := p.G.Edge(e).From; !inCone(u) && !seen[u] {
				seen[u] = true
				vpiSrc = append(vpiSrc, u)
			}
		}
	}
	sort.Ints(vpiSrc)
	nVPI := len(vpiSrc)
	vpiLoc := make(map[int]int, nVPI)
	for i, u := range vpiSrc {
		vpiLoc[u] = nSub + i
	}

	minRA := make([]float64, nSub)
	var padOf []int // member-local indices that escape, ascending
	for lv, v := range members {
		best := math.Inf(1)
		for _, e := range p.G.Out(v) {
			w := p.G.Edge(e).To
			if inCone(w) {
				continue
			}
			var ra float64
			if w == p.Sink {
				ra = T
			} else {
				ra = rf[w] - d[w]
			}
			if ra < best {
				best = ra
			}
		}
		minRA[lv] = best
		if !math.IsInf(best, 1) {
			padOf = append(padOf, lv)
		}
	}
	nPad := len(padOf)

	padBase := nSub + nVPI
	sink := padBase + nPad
	total := sink + 1
	g := graph.New(total)
	kind := make([]VertexKind, total)
	labels := make([]string, total)
	fd := make([]float64, total)
	pis := make([]int, nVPI)
	for lv, v := range members {
		kind[lv] = KindSizable
		labels[lv] = p.Labels[v]
	}
	for i, u := range vpiSrc {
		lv := nSub + i
		kind[lv] = KindPI
		labels[lv] = "$in:" + p.Labels[u]
		fd[lv] = finish[u]
		pis[i] = lv
	}
	for i, lv := range padOf {
		pv := padBase + i
		// Pads get KindPI (fixed-delay, non-sizable) but are NOT
		// listed in PIs: the D-phase pins PIs at zero retardation,
		// while a pad must float so its edges alone cap the escaping
		// gate's finish at RA.
		kind[pv] = KindPI
		labels[pv] = "$out:" + p.Labels[members[lv]]
		pd := T - minRA[lv]
		if pd < 0 {
			pd = 0 // fp guard: RA ≤ T by construction
		}
		fd[pv] = pd
	}
	kind[sink] = KindSink
	labels[sink] = "$O"

	// Edges: intra-cone in full-edge order, then virtual-PI fanins,
	// then the pad chains v → pad → sink.
	for lv, v := range members {
		for _, e := range p.G.Out(v) {
			if w := p.G.Edge(e).To; inCone(w) {
				g.AddEdge(lv, loc[w])
			}
		}
	}
	for lv, v := range members {
		for _, e := range p.G.In(v) {
			if u := p.G.Edge(e).From; !inCone(u) {
				g.AddEdge(vpiLoc[u], lv)
			}
		}
	}
	for i, lv := range padOf {
		g.AddEdge(lv, padBase+i)
		g.AddEdge(padBase+i, sink)
	}

	// Coefficients: couplings to cone members are remapped to local
	// indices; couplings to frozen gates fold A·x_frozen into Const.
	subCo := make([]delay.Coeffs, nSub)
	areaW := make([]float64, nSub)
	for lv, v := range members {
		c := p.Coeffs[v]
		nc := delay.Coeffs{Self: c.Self, Const: c.Const}
		for _, t := range c.Terms {
			if inCone(t.J) {
				nc.Terms = append(nc.Terms, delay.Term{J: loc[t.J], A: t.A})
			} else {
				nc.Const += t.A * x[t.J]
			}
		}
		subCo[lv] = nc
		areaW[lv] = p.AreaW[v]
	}

	sub := &Problem{
		Name:       p.Name + "#cone",
		G:          g,
		Kind:       kind,
		NumSizable: nSub,
		Sink:       sink,
		PIs:        pis,
		Coeffs:     subCo,
		AreaW:      areaW,
		MinSize:    p.MinSize,
		MaxSize:    p.MaxSize,
		Labels:     labels,
		FixedDelay: fd,
	}
	var err error
	if sub.topo, err = g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("dag: cone subgraph: %w", err)
	}
	sub.csr = delay.NewCSR(sub.Coeffs)
	return &Cone{Sub: sub, Members: members}, nil
}

// SeedSizes fills the cone-local seed vector from the full sizes.
func (c *Cone) SeedSizes(xFull []float64) []float64 {
	xs := make([]float64, len(c.Members))
	for lv, v := range c.Members {
		xs[lv] = xFull[v]
	}
	return xs
}

// MergeSizes writes the cone-local solution back into the full size
// vector; gates outside the cone are untouched.
func (c *Cone) MergeSizes(xFull, xSub []float64) {
	for lv, v := range c.Members {
		xFull[v] = xSub[lv]
	}
}
