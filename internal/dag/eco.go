// ECO netlist edits (engineering change orders): patch the resident
// sizing problem in place instead of rebuilding it from the netlist.
//
// The contract that makes in-place patching safe is *state-patch
// exactness*: after Apply, every delay coefficient row equals
// delay.Model.GateCoeff at the final circuit state bit-for-bit — the
// same inner computation GateLevel runs — so a session that applied a
// batch of edits holds exactly the state a fresh build plus replay of
// those edits would hold.  Value edits (retype, load) preserve the
// coupling sparsity pattern (every circuit coefficient is strictly
// positive) and patch delay.CSR rows and their transpose entries in
// place; structural edits (rewire) change the DAG itself and rebuild
// the Problem, re-applying the extra-load state on top.
package dag

import (
	"fmt"
	"math"
	"sort"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
)

// EditOp selects the kind of one netlist edit.
type EditOp uint8

const (
	// EditRetype swaps a gate's library cell — a drive-strength or
	// function swap of equal arity.  Value-only: the DAG is unchanged;
	// the gate's own row, the rows of its fanin gates (their coupling
	// to its input cap), and its area weight are recomputed.  Any
	// sticky what-if area weight on the gate is reset to the new cell's
	// unit area.
	EditRetype EditOp = iota
	// EditLoad sets the extra fixed capacitive load on a gate's output,
	// in fF.  The value is absolute state, not a delta — re-sending 0
	// restores the pristine load — so replaying an edit log is
	// idempotent.  Value-only: touches just the gate's Const term.
	EditLoad
	// EditRewire reconnects one input pin of a gate to a new driver
	// signal.  Structural: the DAG changes, so the Problem is rebuilt
	// (the batch stays atomic — a rewire that creates a cycle or leaves
	// the old driver driving nothing is rejected with no state change).
	EditRewire
	// EditAdd instantiates a new gate (Name, Cell, Ins; PO marks its
	// output as a primary output).  Structural, and it changes the gate
	// set: later edits in the same batch may reference the new gate —
	// by the index NumGates-at-that-point or via a rewire Driver — and
	// the whole batch is applied to a clone, committed only if the
	// edited netlist rebuilds cleanly (an added gate must end the batch
	// driving a gate or a PO).  The gate starts at minimum size with
	// zero extra load.
	EditAdd
	// EditRemove deletes gate Gate.  The gate's output must be dead by
	// the time this edit applies (no gate reads it, no PO) — remove
	// consumers first, in the same batch.  Gate indices above it shift
	// down by one; later edits in the batch see the shifted indices.
	EditRemove
)

// Edit is one netlist edit delta.  Gate indexes the edited gate for
// all ops; the remaining fields are per-op (see EditOp).
type Edit struct {
	Op   EditOp
	Gate int
	// Cell is the new library cell (EditRetype); its input count must
	// match the gate's current arity.
	Cell cell.Kind
	// LoadFF is the new extra fixed output load in fF (EditLoad).
	LoadFF float64
	// Pin and Driver identify the rewired input (EditRewire): pin index
	// into the gate's inputs, and the new driver signal.
	Pin    int
	Driver circuit.Ref
	// Name and Ins define an added gate (EditAdd); PO marks its output
	// as a primary output.  Gate is ignored for adds.
	Name string
	Ins  []circuit.Ref
	PO   bool
}

// EditDelta reports what an Apply changed.
type EditDelta struct {
	// Structural marks a batch that changed the DAG (a rewire, add or
	// remove): the Problem — graph, topo order, coupling CSR — was
	// rebuilt, and P points at a new value.  Value-only batches patch
	// in place.
	Structural bool
	// GateSetChanged marks a batch containing adds or removes.  Even a
	// count-neutral remove+add batch remaps gate indices, so resident
	// size vectors and warm seeds are meaningless afterwards; ChangedRows
	// and Seeds are nil for such batches (the damage is global).
	GateSetChanged bool
	// ChangedRows lists the sizable vertices whose delay coefficients
	// changed (sorted ascending, unique).
	ChangedRows []int
	// Seeds is ChangedRows plus the rewired gates themselves — their
	// own coefficients may be unchanged but their arrival times move,
	// so they root the downstream invalidation cone.
	Seeds []int
	// MaxWRel is the largest relative area-weight change of the batch
	// (|new−old|/old over every weight the batch touched — including
	// sticky what-if weights reset by a structural rebuild).  Sessions
	// fold it into the trust-region perturbation ledger.
	MaxWRel float64
}

// Eco binds a Problem to its source netlist and delay model so edit
// deltas can patch the resident state.  The circuit is owned by the
// Eco once constructed — callers must not mutate it directly.
type Eco struct {
	C *circuit.Circuit
	M *delay.Model
	// P is the resident problem.  Structural edits replace it; value
	// edits mutate it in place.  Callers holding the old pointer across
	// an Apply must re-read it.
	P *Problem
	// Extra[g] is the extra fixed output load of gate g in fF — the
	// EditLoad state, all zeros for a pristine netlist.
	Extra []float64
}

// NewEco builds the sizing problem for c and wraps it for editing.
func NewEco(c *circuit.Circuit, m *delay.Model) (*Eco, error) {
	p, err := GateLevel(c, m)
	if err != nil {
		return nil, err
	}
	return &Eco{C: c, M: m, P: p, Extra: make([]float64, c.NumGates())}, nil
}

// NewEcoWithExtra rebuilds an Eco from a previously edited netlist and
// its extra-load state — the serve layer's snapshot-compaction path.
// By state-patch exactness the result is bit-identical to a fresh
// NewEco plus replay of the edit history that produced c and extra, so
// a compacted history (snapshot + suffix) replays to the same state as
// the full one.  The circuit is owned by the Eco once constructed.
func NewEcoWithExtra(c *circuit.Circuit, m *delay.Model, extra []float64) (*Eco, error) {
	if len(extra) != c.NumGates() {
		return nil, fmt.Errorf("dag: extra-load length %d != %d gates", len(extra), c.NumGates())
	}
	p, err := buildWithExtra(c, m, extra)
	if err != nil {
		return nil, err
	}
	return &Eco{C: c, M: m, P: p, Extra: append([]float64(nil), extra...)}, nil
}

// undoEntry records one netlist mutation for batch rollback.
type undoEntry struct {
	op   EditOp
	gate int
	kind cell.Kind   // EditRetype: previous cell
	load float64     // EditLoad: previous extra load
	pin  int         // EditRewire
	ref  circuit.Ref // EditRewire: previous driver
}

// Apply applies an edit batch atomically: the whole batch is validated
// first and nothing is mutated on error — including structural errors
// like a rewire that creates a combinational cycle, which are detected
// after tentative application and rolled back.  On success the
// resident Problem reflects the edited netlist (see the package doc
// for the state-patch exactness contract) and the returned EditDelta
// describes the damage.
func (e *Eco) Apply(edits []Edit) (*EditDelta, error) {
	if len(edits) == 0 {
		return nil, fmt.Errorf("dag: empty edit batch")
	}
	// Gate-set batches (adds/removes) change indices mid-batch, so
	// upfront validation against the current netlist is meaningless —
	// they take the clone-and-commit path with per-edit validation
	// against the evolving clone.
	for k := range edits {
		if edits[k].Op == EditAdd || edits[k].Op == EditRemove {
			return e.applyGateSet(edits)
		}
	}
	structural := false
	for k := range edits {
		if err := validateEdit(e.C, &edits[k]); err != nil {
			return nil, fmt.Errorf("dag: edit %d: %w", k, err)
		}
		if edits[k].Op == EditRewire {
			structural = true
		}
	}

	// Apply to the netlist, recording undo entries and the vertices
	// each edit semantically touches.
	undo := make([]undoEntry, 0, len(edits))
	rows := map[int]struct{}{}  // sizable rows whose coefficients change
	seeds := map[int]struct{}{} // rows ∪ rewired gates (cone roots)
	for k := range edits {
		ed := &edits[k]
		g := &e.C.Gates[ed.Gate]
		switch ed.Op {
		case EditRetype:
			undo = append(undo, undoEntry{op: EditRetype, gate: ed.Gate, kind: g.Kind})
			g.Kind = ed.Cell
			// The gate's own row (drive, parasitic, loads scale with the
			// cell) and every fanin gate's coupling to its input cap.
			rows[ed.Gate] = struct{}{}
			for _, in := range g.Ins {
				if in.Kind == circuit.RefGate {
					rows[in.Index] = struct{}{}
				}
			}
		case EditLoad:
			undo = append(undo, undoEntry{op: EditLoad, gate: ed.Gate, load: e.Extra[ed.Gate]})
			e.Extra[ed.Gate] = ed.LoadFF
			rows[ed.Gate] = struct{}{}
		case EditRewire:
			old := g.Ins[ed.Pin]
			undo = append(undo, undoEntry{op: EditRewire, gate: ed.Gate, pin: ed.Pin, ref: old})
			g.Ins[ed.Pin] = ed.Driver
			// Both drivers' fanout sets change (wire load, coupling to
			// this gate); the rewired gate's own delay row is unchanged
			// but its arrivals move.
			if old.Kind == circuit.RefGate {
				rows[old.Index] = struct{}{}
			}
			if ed.Driver.Kind == circuit.RefGate {
				rows[ed.Driver.Index] = struct{}{}
			}
			seeds[ed.Gate] = struct{}{}
		}
	}
	rollback := func() {
		for k := len(undo) - 1; k >= 0; k-- {
			u := &undo[k]
			switch u.op {
			case EditRetype:
				e.C.Gates[u.gate].Kind = u.kind
			case EditLoad:
				e.Extra[u.gate] = u.load
			case EditRewire:
				e.C.Gates[u.gate].Ins[u.pin] = u.ref
			}
		}
	}

	delta := &EditDelta{Structural: structural}
	changed := make([]int, 0, len(rows))
	for v := range rows {
		changed = append(changed, v)
	}
	sort.Ints(changed)
	delta.ChangedRows = changed
	for v := range rows {
		seeds[v] = struct{}{}
	}
	delta.Seeds = make([]int, 0, len(seeds))
	for v := range seeds {
		delta.Seeds = append(delta.Seeds, v)
	}
	sort.Ints(delta.Seeds)

	if structural {
		if err := e.rebuild(delta); err != nil {
			rollback()
			return nil, err
		}
		return delta, nil
	}

	// Value-only batch: recompute every touched row at the final
	// netlist state, then commit — computing all rows before writing
	// any keeps the batch atomic if a recomputation fails (it cannot
	// with a valid cell library, but the rollback is cheap insurance).
	fanPtr, fanIdx, poCount := e.C.FanoutsCSR()
	fresh := make([]delay.Coeffs, len(changed))
	for k, gi := range changed {
		fo := fanIdx[fanPtr[gi]:fanPtr[gi+1]]
		kc, err := e.M.GateCoeff(e.C, gi, fo, poCount[gi], e.Extra[gi])
		if err != nil {
			rollback()
			return nil, fmt.Errorf("dag: edit recompute: %w", err)
		}
		fresh[k] = kc
	}
	// Value edits never change the sparsity pattern (coefficients are
	// strictly positive, fanout sets untouched); if one somehow did,
	// fall back to the full rebuild rather than corrupt the CSR.
	for k, gi := range changed {
		if !sameShape(e.P.Coeffs[gi].Terms, fresh[k].Terms) {
			if err := e.rebuild(delta); err != nil {
				rollback()
				return nil, err
			}
			delta.Structural = true
			return delta, nil
		}
	}
	for k, gi := range changed {
		dst := &e.P.Coeffs[gi]
		dst.Self = fresh[k].Self
		dst.Const = fresh[k].Const
		for t := range fresh[k].Terms {
			dst.Terms[t].A = fresh[k].Terms[t].A
		}
		if !e.P.csr.PatchRow(gi, dst) {
			// Unreachable given sameShape above; rebuild defensively.
			e.P.csr = delay.NewCSR(e.P.Coeffs)
		}
		if w := cell.Get(e.C.Gates[gi].Kind).UnitArea; w != e.P.AreaW[gi] {
			delta.noteWRel(e.P.AreaW[gi], w)
			e.P.AreaW[gi] = w
		}
	}
	return delta, nil
}

// applyGateSet applies a batch containing gate adds/removes.  The whole
// batch is applied sequentially to a clone of the netlist — each edit
// validated against the evolving clone, so an add-then-wire-then-remove
// sequence sees exactly the indices it created — and the resident state
// is swapped only after the edited netlist rebuilds cleanly.  Atomicity
// needs no rollback: failure leaves the clone to the collector.
func (e *Eco) applyGateSet(edits []Edit) (*EditDelta, error) {
	c := e.C.Clone()
	extra := append([]float64(nil), e.Extra...)
	for k := range edits {
		ed := &edits[k]
		if err := validateEdit(c, ed); err != nil {
			return nil, fmt.Errorf("dag: edit %d: %w", k, err)
		}
		switch ed.Op {
		case EditRetype:
			c.Gates[ed.Gate].Kind = ed.Cell
		case EditLoad:
			extra[ed.Gate] = ed.LoadFF
		case EditRewire:
			c.Gates[ed.Gate].Ins[ed.Pin] = ed.Driver
		case EditAdd:
			r := c.AddGate(ed.Name, ed.Cell, ed.Ins...)
			if ed.PO {
				c.MarkPO(r)
			}
			extra = append(extra, 0)
		case EditRemove:
			if err := c.RemoveGate(ed.Gate); err != nil {
				return nil, fmt.Errorf("dag: edit %d: %w", k, err)
			}
			extra = append(extra[:ed.Gate], extra[ed.Gate+1:]...)
		}
	}
	p, err := buildWithExtra(c, e.M, extra)
	if err != nil {
		return nil, err
	}
	e.C = c
	e.Extra = extra
	e.P = p
	// Sticky what-if weights are reset by the rebuild, but with the
	// gate set remapped there is no per-index old/new weight pairing to
	// fold into MaxWRel — GateSetChanged itself forces seed invalidation
	// downstream, which subsumes any perturbation accounting.
	return &EditDelta{Structural: true, GateSetChanged: true}, nil
}

// buildWithExtra builds the sizing problem for c and re-applies the
// extra-load state on top — the shared core of rebuild, NewEcoWithExtra
// and the gate-set commit path.
func buildWithExtra(c *circuit.Circuit, m *delay.Model, extra []float64) (*Problem, error) {
	p, err := GateLevel(c, m)
	if err != nil {
		return nil, err
	}
	fanPtr, fanIdx, poCount := c.FanoutsCSR()
	for gi, x := range extra {
		if x == 0 {
			continue
		}
		fo := fanIdx[fanPtr[gi]:fanPtr[gi+1]]
		kc, err := m.GateCoeff(c, gi, fo, poCount[gi], x)
		if err != nil {
			return nil, fmt.Errorf("dag: extra-load replay: %w", err)
		}
		dst := &p.Coeffs[gi]
		dst.Self = kc.Self
		dst.Const = kc.Const
		for t := range kc.Terms {
			dst.Terms[t].A = kc.Terms[t].A
		}
		if !p.csr.PatchRow(gi, dst) {
			p.csr = delay.NewCSR(p.Coeffs)
		}
	}
	return p, nil
}

// rebuild replaces the resident Problem with a fresh build of the
// edited netlist and re-applies the extra-load state.  Sticky what-if
// area weights do not survive — GateLevel resets AreaW to the cells'
// unit areas — so the per-weight relative change is folded into
// delta.MaxWRel for the trust-region ledger, and the reset itself is
// part of the deterministic replay contract (a twin replaying the same
// history resets at the same point).
func (e *Eco) rebuild(delta *EditDelta) error {
	oldW := e.P.AreaW
	p, err := buildWithExtra(e.C, e.M, e.Extra)
	if err != nil {
		return err
	}
	if len(oldW) == len(p.AreaW) {
		for i := range oldW {
			delta.noteWRel(oldW[i], p.AreaW[i])
		}
	}
	e.P = p
	return nil
}

func (d *EditDelta) noteWRel(old, new float64) {
	if old == new || old <= 0 {
		return
	}
	if rel := math.Abs(new-old) / old; rel > d.MaxWRel {
		d.MaxWRel = rel
	}
}

func sameShape(a, b []delay.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if a[t].J != b[t].J || (a[t].A == 0) != (b[t].A == 0) {
			return false
		}
	}
	return true
}

// validateEdit checks one edit against netlist c without mutating it.
// Structural soundness of rewires — acyclicity, the old driver still
// driving something — is re-checked by the rebuild and rolled back on
// failure.  Gate-set batches call this per edit against the evolving
// clone, so index checks see the gate set as of that point.
func validateEdit(c *circuit.Circuit, ed *Edit) error {
	if ed.Op != EditAdd && (ed.Gate < 0 || ed.Gate >= c.NumGates()) {
		return fmt.Errorf("gate %d out of range [0,%d)", ed.Gate, c.NumGates())
	}
	switch ed.Op {
	case EditRetype:
		if int(ed.Cell) < 0 || int(ed.Cell) >= cell.NumKinds {
			return fmt.Errorf("unknown cell kind %d", ed.Cell)
		}
		g := &c.Gates[ed.Gate]
		if want := cell.Get(ed.Cell).NumInputs; want != len(g.Ins) {
			return fmt.Errorf("retype %q: cell %s wants %d inputs, gate has %d",
				g.Name, ed.Cell, want, len(g.Ins))
		}
	case EditLoad:
		if math.IsNaN(ed.LoadFF) || math.IsInf(ed.LoadFF, 0) || ed.LoadFF < 0 {
			return fmt.Errorf("load %g fF: must be finite and non-negative", ed.LoadFF)
		}
	case EditRewire:
		g := &c.Gates[ed.Gate]
		if ed.Pin < 0 || ed.Pin >= len(g.Ins) {
			return fmt.Errorf("rewire %q: pin %d out of range [0,%d)", g.Name, ed.Pin, len(g.Ins))
		}
		if err := validateDriver(c, ed.Driver); err != nil {
			return fmt.Errorf("rewire %q: %w", g.Name, err)
		}
		if ed.Driver.Kind == circuit.RefGate && ed.Driver.Index == ed.Gate {
			return fmt.Errorf("rewire %q: self-loop", g.Name)
		}
	case EditAdd:
		if ed.Name == "" {
			return fmt.Errorf("add: empty gate name")
		}
		if _, dup := c.Lookup(ed.Name); dup {
			return fmt.Errorf("add %q: duplicate signal name", ed.Name)
		}
		if int(ed.Cell) < 0 || int(ed.Cell) >= cell.NumKinds {
			return fmt.Errorf("add %q: unknown cell kind %d", ed.Name, ed.Cell)
		}
		if want := cell.Get(ed.Cell).NumInputs; want != len(ed.Ins) {
			return fmt.Errorf("add %q: cell %s wants %d inputs, got %d",
				ed.Name, ed.Cell, want, len(ed.Ins))
		}
		for pin, in := range ed.Ins {
			if err := validateDriver(c, in); err != nil {
				return fmt.Errorf("add %q pin %d: %w", ed.Name, pin, err)
			}
		}
	case EditRemove:
		// Liveness (no remaining readers) is checked by RemoveGate at
		// application time, against the batch-evolved netlist.
	default:
		return fmt.Errorf("unknown edit op %d", ed.Op)
	}
	return nil
}

// validateDriver checks that r resolves to an existing signal of c.
func validateDriver(c *circuit.Circuit, r circuit.Ref) error {
	switch r.Kind {
	case circuit.RefPI:
		if r.Index < 0 || r.Index >= c.NumPIs() {
			return fmt.Errorf("dangling PI driver %d", r.Index)
		}
	case circuit.RefGate:
		if r.Index < 0 || r.Index >= c.NumGates() {
			return fmt.Errorf("dangling gate driver %d", r.Index)
		}
	default:
		return fmt.Errorf("bad driver kind %d", r.Kind)
	}
	return nil
}
