package dag

import (
	"testing"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/gen"
	"minflo/internal/sta"
)

// nand3Chain: two 3-input NANDs in series — the paper's Figure 2.
func nand3Chain() *circuit.Circuit {
	c := circuit.New("fig2")
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	g1 := c.AddGate("g1", cell.Nand3, a, b, d)
	g2 := c.AddGate("g2", cell.Nand3, g1, b, d)
	c.MarkPO(g2)
	return c
}

func TestTransistorLevelFigure2(t *testing.T) {
	c := nand3Chain()
	p, err := TransistorLevel(c, model())
	if err != nil {
		t.Fatal(err)
	}
	// Two NAND3s: 6 transistors each.
	if p.NumSizable != 12 {
		t.Fatalf("sizable %d, want 12", p.NumSizable)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The NAND3 pulldown is a 3-stack: a 2-edge chain per gate; the
	// pullup is parallel: no intra edges.  Inter-gate: pulldown leaf of
	// g1 → pullup roots of g2 (3 of them, all parallel PMOS roots
	// gated by pin 0... only those components containing pin 0).
	// Just verify global structure: DAG, single sink reachable.
	if !p.G.IsDAG() {
		t.Fatal("not a DAG")
	}
	co := p.G.CoReachable([]int{p.Sink})
	for _, pi := range p.PIs {
		if !co[pi] {
			t.Fatalf("PI %d cannot reach the sink", pi)
		}
	}
	// Worst-case gate delay must match the full Elmore sum: the path
	// through the pulldown stack has 3 vertices whose delays sum to the
	// three-term expression of eq. (3).  Sanity: every pulldown vertex
	// of g1 has positive delay; the stack root carries the fanout load
	// coupling terms.
	x := p.InitialSizes()
	d := p.Delays(x)
	for i := 0; i < p.NumSizable; i++ {
		if d[i] <= 0 {
			t.Fatalf("transistor %s has non-positive delay", p.Labels[i])
		}
	}
}

func TestTransistorLevelElmoreByHand(t *testing.T) {
	// Single inverter driving a PO: delay(n0) = R·(Cd·(x_n0+x_p0) +
	// wire + POLoad)/x ... self terms fold to constants.
	c := circuit.New("inv1")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Inv, a)
	c.MarkPO(g1)
	m := model()
	p, err := TransistorLevel(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSizable != 2 {
		t.Fatalf("inverter has %d devices", p.NumSizable)
	}
	// NMOS vertex 0: Self = R·Cd (own drain), one coupling to the PMOS
	// drain, Const = R·(wire + POLoad).
	k := p.Coeffs[0]
	r := m.Tech.RUnit
	if k.Self != r*m.Tech.CDiff {
		t.Errorf("NMOS Self = %g, want %g", k.Self, r*m.Tech.CDiff)
	}
	if len(k.Terms) != 1 || k.Terms[0].A != r*m.Tech.CDiff {
		t.Errorf("NMOS terms %v", k.Terms)
	}
	wantConst := r * (m.Tech.CWire + m.POLoad)
	if k.Const != wantConst {
		t.Errorf("NMOS const %g, want %g", k.Const, wantConst)
	}
	// PMOS vertex: same structure scaled by PMOSRatio.
	k2 := p.Coeffs[1]
	if k2.Self != r*m.Tech.PMOSRatio*m.Tech.CDiff {
		t.Errorf("PMOS Self = %g", k2.Self)
	}
}

func TestTransistorLevelStackCoefficients(t *testing.T) {
	// NAND2 driving a PO: pulldown stack n1(root)-n0(rail).  The rail
	// transistor's delay must include the internal node cap (both stack
	// devices) AND the output node caps — eq. (3)'s x1 term.
	c := circuit.New("nand2")
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.AddGate("g1", cell.Nand2, a, b)
	c.MarkPO(g1)
	m := model()
	p, err := TransistorLevel(c, m)
	if err != nil {
		t.Fatal(err)
	}
	// Find pulldown root and leaf: the intra-gate edge runs root→leaf.
	var root, leaf = -1, -1
	for _, e := range p.G.Edges() {
		if e.From < p.NumSizable && e.To < p.NumSizable {
			root, leaf = e.From, e.To
		}
	}
	if root == -1 {
		t.Fatal("no intra-gate edge found")
	}
	// Leaf (rail side) sees more capacitance than root: its coefficient
	// sum must be strictly larger at equal sizes.
	x := p.InitialSizes()
	if p.Coeffs[leaf].Delay(1, x) <= p.Coeffs[root].Delay(1, x) {
		t.Errorf("rail transistor delay %g not above root %g (Elmore ladder violated)",
			p.Coeffs[leaf].Delay(1, x), p.Coeffs[root].Delay(1, x))
	}
}

func TestTransistorLevelWorstGateDelayMatchesElmore(t *testing.T) {
	// For the Figure-2 chain, the DAG's critical path delay through a
	// gate's pulldown equals the sum of the stack's per-vertex delays
	// (the full Elmore delay of the discharging path).
	c := nand3Chain()
	p, err := TransistorLevel(c, model())
	if err != nil {
		t.Fatal(err)
	}
	x := p.InitialSizes()
	d := p.Delays(x)
	tm, err := sta.Analyze(p.G, d)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CP <= 0 {
		t.Fatal("zero critical path")
	}
	if !tm.Safe(1e-9) {
		t.Fatal("fresh analysis unsafe")
	}
}

func TestTransistorLevelOnXorAoi(t *testing.T) {
	// Cells with parallel-of-series networks (XOR2, AOI21) must build
	// valid problems too.
	c := circuit.New("mixed")
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	x1 := c.AddGate("x1", cell.Xor2, a, b)
	o1 := c.AddGate("o1", cell.Aoi21, x1, b, d)
	c.MarkPO(o1)
	p, err := TransistorLevel(c, model())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// XOR2: 4+4 devices; AOI21: 3+3.
	if p.NumSizable != 8+6 {
		t.Fatalf("device count %d, want 14", p.NumSizable)
	}
}

func TestTransistorLevelC17(t *testing.T) {
	p, err := TransistorLevel(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	// 6 NAND2 gates: 4 transistors each.
	if p.NumSizable != 24 {
		t.Fatalf("device count %d, want 24", p.NumSizable)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Area weights: Σ x_i with unit weights.
	if a := p.Area(p.InitialSizes()); a != 24 {
		t.Fatalf("min area %g, want 24", a)
	}
}
