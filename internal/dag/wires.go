// Wire sizing support (paper §2.1): "if wire sizing were also to be
// performed together with transistor sizing, then we could model the
// problem by augmenting the DAG corresponding to a gate by adding
// vertices corresponding to each wire."  Every gate→gate connection
// gains a sizable wire vertex; its width scales the wire's capacitance
// up (loading the driver) and its resistance down (speeding its own
// stage), giving the same simple monotonic shape as a transistor.
package dag

import (
	"fmt"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/graph"
)

// WireParams describes the sizable-wire model.
type WireParams struct {
	// RUnit is the resistance of a unit-width wire segment (kΩ); a
	// width-w wire has resistance RUnit/w.
	RUnit float64
	// CUnit is the capacitance a unit-width wire adds to its driver
	// (fF); a width-w wire carries CUnit·w.
	CUnit float64
	// CFringe is the width-independent fringing capacitance the wire
	// itself must drive in addition to the sink's input cap. (fF)
	CFringe float64
	// AreaWeight is the area cost per unit wire width, in the same
	// units as transistor widths (metal is cheaper than silicon).
	AreaWeight float64
}

// DefaultWireParams returns a plausible global-wire model.
func DefaultWireParams() WireParams {
	return WireParams{RUnit: 4.0, CUnit: 3.0, CFringe: 2.0, AreaWeight: 0.25}
}

// Validate checks the wire model.
func (w WireParams) Validate() error {
	if w.RUnit <= 0 || w.CUnit <= 0 || w.CFringe < 0 || w.AreaWeight <= 0 {
		return fmt.Errorf("dag: invalid wire params %+v", w)
	}
	return nil
}

// GateLevelWithWires builds a joint gate+wire sizing problem: one
// sizable vertex per gate plus one per gate→gate connection.  Vertex
// layout: [gates][wires][PIs][sink].  WireOf maps a connection (driver
// gate, sink gate, pin) to its wire vertex.
type WiredProblem struct {
	*Problem
	// NumGates is the count of gate vertices (wire vertices follow).
	NumGates int
	// WireLabel[i] describes wire vertex NumGates+i.
	WireLabel []string
}

// GateLevelWithWires constructs the joint problem.
func GateLevelWithWires(c *circuit.Circuit, m *delay.Model, wp WireParams) (*WiredProblem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := m.Tech.Validate(); err != nil {
		return nil, err
	}
	if err := wp.Validate(); err != nil {
		return nil, err
	}
	fan, poCount := c.Fanouts()
	for gi := range c.Gates {
		if len(fan[gi])+poCount[gi] == 0 {
			return nil, fmt.Errorf("dag: gate %q drives neither a gate nor a PO", c.Gates[gi].Name)
		}
	}
	nG := c.NumGates()
	// One wire per gate→gate pin connection.
	type conn struct{ src, dst, pin int }
	var wires []conn
	for gi := range c.Gates {
		for pin, in := range c.Gates[gi].Ins {
			if in.Kind == circuit.RefGate {
				wires = append(wires, conn{in.Index, gi, pin})
			}
		}
	}
	nW := len(wires)
	g := graph.New(nG + nW + c.NumPIs() + 1)
	sink := nG + nW + c.NumPIs()
	kind := make([]VertexKind, g.N())
	labels := make([]string, g.N())
	pis := make([]int, c.NumPIs())
	for i := 0; i < nG+nW; i++ {
		kind[i] = KindSizable
	}
	for gi := range c.Gates {
		labels[gi] = c.Gates[gi].Name
	}
	wireLabels := make([]string, nW)
	for wi, w := range wires {
		labels[nG+wi] = fmt.Sprintf("w:%s->%s.%d", c.Gates[w.src].Name, c.Gates[w.dst].Name, w.pin)
		wireLabels[wi] = labels[nG+wi]
	}
	for i := 0; i < c.NumPIs(); i++ {
		v := nG + nW + i
		kind[v] = KindPI
		labels[v] = c.PIs[i]
		pis[i] = v
	}
	kind[sink] = KindSink
	labels[sink] = "$O"

	// Edges: PI → gate stays direct; gate → wire → gate; PO edges.
	seen := map[[2]int]bool{}
	addEdge := func(u, v int) {
		k := [2]int{u, v}
		if !seen[k] {
			seen[k] = true
			g.AddEdge(u, v)
		}
	}
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == circuit.RefPI {
				addEdge(pis[in.Index], gi)
			}
		}
	}
	for wi, w := range wires {
		addEdge(w.src, nG+wi)
		addEdge(nG+wi, w.dst)
	}
	for _, po := range c.POs {
		if po.Kind == circuit.RefPI {
			addEdge(pis[po.Index], sink)
		} else {
			addEdge(po.Index, sink)
		}
	}

	// Coefficients.
	coeffs := make([]delay.Coeffs, nG+nW)
	areaW := make([]float64, nG+nW)
	for gi := range c.Gates {
		cc := cell.Get(c.Gates[gi].Kind)
		r := m.Tech.RUnit * cc.Drive
		k := delay.Coeffs{
			Self:  r * m.Tech.CDiff * cc.Parasitic,
			Const: r * m.POLoad * float64(poCount[gi]),
		}
		areaW[gi] = cc.UnitArea
		// The driver now sees the wire caps instead of the sink gates.
		for wi, w := range wires {
			if w.src == gi {
				k.Terms = append(k.Terms, delay.Term{J: nG + wi, A: r * wp.CUnit})
			}
		}
		coeffs[gi] = k
	}
	for wi, w := range wires {
		hc := cell.Get(c.Gates[w.dst].Kind)
		// Wire stage: R_w/x_w drives the sink's input cap + fringe; its
		// own distributed cap folds to a constant (½·RUnit·CUnit).
		coeffs[nG+wi] = delay.Coeffs{
			Self:  0.5 * wp.RUnit * wp.CUnit,
			Terms: []delay.Term{{J: w.dst, A: wp.RUnit * m.Tech.CGate * hc.InputCap}},
			Const: wp.RUnit * wp.CFringe,
		}
		areaW[nG+wi] = wp.AreaWeight
	}
	for i := range coeffs {
		if err := coeffs[i].Validate(); err != nil {
			return nil, fmt.Errorf("dag: wire problem coeff %d: %w", i, err)
		}
	}

	p := &Problem{
		Name:       c.Name + "+wires",
		G:          g,
		Kind:       kind,
		NumSizable: nG + nW,
		Sink:       sink,
		PIs:        pis,
		Coeffs:     coeffs,
		AreaW:      areaW,
		MinSize:    m.Tech.MinSize,
		MaxSize:    m.Tech.MaxSize,
		Labels:     labels,
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p.topo = topo
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.csr = delay.NewCSR(p.Coeffs)
	return &WiredProblem{Problem: p, NumGates: nG, WireLabel: wireLabels}, nil
}
