// Transistor-level problem construction (paper §2.1–2.2, Figures 1–2):
// one DAG vertex per transistor, edges directed from the transistor
// higher up in the charging/discharging path to the one lower down,
// per-gate pull-up and pull-down components, and inter-gate edges from
// the leaf vertices of one gate's network to the root vertices of the
// opposite-polarity network components of the driven gate.
package dag

import (
	"fmt"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/graph"
)

// xtor describes one transistor vertex during construction.
type xtor struct {
	gate   int  // owning gate
	pin    int  // input pin index gating this device
	pmos   bool // pull-up network member
	vertex int  // vertex id in the problem graph
}

// netInfo holds the flattened structure of one pull network instance.
type netInfo struct {
	paths  [][]int // conduction paths as vertex ids, output side first
	roots  []int   // vertices adjacent to the gate output
	leaves []int   // vertices adjacent to the supply rail
	comp   map[int]int
	all    []int
}

// flatten expands a series/parallel network into conduction paths over
// freshly allocated vertex ids.  alloc is called once per transistor
// leaf and returns its vertex id.
func flatten(n *cell.Network, alloc func(pin int) int) *netInfo {
	paths := enumerate(n, alloc)
	info := &netInfo{paths: paths}
	seenRoot := map[int]bool{}
	seenLeaf := map[int]bool{}
	seenAll := map[int]bool{}
	for _, p := range paths {
		if !seenRoot[p[0]] {
			seenRoot[p[0]] = true
			info.roots = append(info.roots, p[0])
		}
		last := p[len(p)-1]
		if !seenLeaf[last] {
			seenLeaf[last] = true
			info.leaves = append(info.leaves, last)
		}
		for _, v := range p {
			if !seenAll[v] {
				seenAll[v] = true
				info.all = append(info.all, v)
			}
		}
	}
	// Connected components via union-find over path adjacency.
	parent := map[int]int{}
	var find func(int) int
	find = func(v int) int {
		if parent[v] == v {
			return v
		}
		parent[v] = find(parent[v])
		return parent[v]
	}
	for _, v := range info.all {
		parent[v] = v
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			parent[find(p[i])] = find(p[i+1])
		}
	}
	info.comp = map[int]int{}
	for _, v := range info.all {
		info.comp[v] = find(v)
	}
	return info
}

// enumerate returns the conduction paths of the network with vertices
// allocated once per leaf (shared across the paths that reuse a leaf).
func enumerate(n *cell.Network, alloc func(pin int) int) [][]int {
	switch n.Op {
	case cell.Leaf:
		return [][]int{{alloc(n.Pin)}}
	case cell.Parallel:
		var out [][]int
		for _, k := range n.Kids {
			out = append(out, enumerate(k, alloc)...)
		}
		return out
	case cell.Series:
		// Cross product, child 0 nearest the output.
		acc := [][]int{nil}
		for _, k := range n.Kids {
			sub := enumerate(k, alloc)
			var next [][]int
			for _, a := range acc {
				for _, s := range sub {
					path := append(append([]int{}, a...), s...)
					next = append(next, path)
				}
			}
			acc = next
		}
		return acc
	}
	panic("dag: bad network op")
}

// TransistorLevel builds the true transistor-sizing problem: every
// transistor is an independent sizing variable (paper §2.1).
func TransistorLevel(c *circuit.Circuit, m *delay.Model) (*Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := m.Tech.Validate(); err != nil {
		return nil, err
	}
	fan, poCount := c.Fanouts()
	for gi := range c.Gates {
		if len(fan[gi])+poCount[gi] == 0 {
			return nil, fmt.Errorf("dag: gate %q drives neither a gate nor a PO", c.Gates[gi].Name)
		}
	}

	var devices []xtor
	labels := []string{}
	pulldown := make([]*netInfo, c.NumGates())
	pullup := make([]*netInfo, c.NumGates())
	// Pin-indexed transistor lists per gate (for load coupling and
	// inter-gate edges).
	pinDevs := make([][][]int, c.NumGates()) // gate -> pin -> vertex ids
	for gi := range c.Gates {
		cc := cell.Get(c.Gates[gi].Kind)
		pinDevs[gi] = make([][]int, cc.NumInputs)
		mk := func(pmos bool) func(pin int) int {
			return func(pin int) int {
				v := len(devices)
				devices = append(devices, xtor{gate: gi, pin: pin, pmos: pmos, vertex: v})
				side := "n"
				if pmos {
					side = "p"
				}
				labels = append(labels, fmt.Sprintf("%s.%s%d.%d", c.Gates[gi].Name, side, pin, len(pinDevs[gi][pin])))
				pinDevs[gi][pin] = append(pinDevs[gi][pin], v)
				return v
			}
		}
		pulldown[gi] = flatten(cc.Pulldown, mk(false))
		pullup[gi] = flatten(cc.Pullup, mk(true))
	}
	numSizable := len(devices)

	g := graph.New(numSizable + c.NumPIs() + 1)
	sink := numSizable + c.NumPIs()
	kind := make([]VertexKind, g.N())
	pis := make([]int, c.NumPIs())
	for i := 0; i < numSizable; i++ {
		kind[i] = KindSizable
	}
	for i := 0; i < c.NumPIs(); i++ {
		v := numSizable + i
		kind[v] = KindPI
		labels = append(labels, c.PIs[i])
		pis[i] = v
	}
	kind[sink] = KindSink
	labels = append(labels, "$O")

	seen := map[[2]int]bool{}
	addEdge := func(u, v int) {
		k := [2]int{u, v}
		if !seen[k] && u != v {
			seen[k] = true
			g.AddEdge(u, v)
		}
	}

	// Intra-gate edges: consecutive transistors along each conduction
	// path, directed output side → rail side.
	for gi := range c.Gates {
		for _, net := range []*netInfo{pulldown[gi], pullup[gi]} {
			for _, p := range net.paths {
				for i := 0; i+1 < len(p); i++ {
					addEdge(p[i], p[i+1])
				}
			}
		}
	}

	// rootsForPin returns the roots of the components of net containing
	// a transistor gated by pin p.
	rootsForPin := func(net *netInfo, gi, pin int) []int {
		var comps = map[int]bool{}
		for _, v := range pinDevs[gi][pin] {
			if cmp, ok := net.comp[v]; ok {
				comps[cmp] = true
			}
		}
		var out []int
		for _, r := range net.roots {
			if comps[net.comp[r]] {
				out = append(out, r)
			}
		}
		return out
	}

	// Inter-gate and PI edges.
	for gi := range c.Gates {
		for pin, in := range c.Gates[gi].Ins {
			switch in.Kind {
			case circuit.RefPI:
				for _, r := range rootsForPin(pulldown[gi], gi, pin) {
					addEdge(pis[in.Index], r)
				}
				for _, r := range rootsForPin(pullup[gi], gi, pin) {
					addEdge(pis[in.Index], r)
				}
			case circuit.RefGate:
				src := in.Index
				// Falling source output (pulldown leaves) drives the
				// pull-up of this gate; rising drives the pulldown.
				for _, leaf := range pulldown[src].leaves {
					for _, r := range rootsForPin(pullup[gi], gi, pin) {
						addEdge(leaf, r)
					}
				}
				for _, leaf := range pullup[src].leaves {
					for _, r := range rootsForPin(pulldown[gi], gi, pin) {
						addEdge(leaf, r)
					}
				}
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == circuit.RefPI {
			addEdge(pis[po.Index], sink)
			continue
		}
		for _, leaf := range pulldown[po.Index].leaves {
			addEdge(leaf, sink)
		}
		for _, leaf := range pullup[po.Index].leaves {
			addEdge(leaf, sink)
		}
	}

	// Delay coefficients.  For transistor τ at position k of its worst
	// conduction path, delay(τ) = R_τ/x_τ · Σ_{i≤k} Cap(node_i), where
	// node_0 is the gate output and node_i sits between path positions
	// i−1 and i.  Self-caps become constants (the paper's "+3AB" trick).
	p := &Problem{
		Name:       c.Name + "+transistors",
		G:          g,
		Kind:       kind,
		NumSizable: numSizable,
		Sink:       sink,
		PIs:        pis,
		Coeffs:     make([]delay.Coeffs, numSizable),
		AreaW:      make([]float64, numSizable),
		MinSize:    m.Tech.MinSize,
		MaxSize:    m.Tech.MaxSize,
		Labels:     labels,
	}
	for i := range p.AreaW {
		p.AreaW[i] = 1 // the paper's objective: Σ x_i over transistors
	}

	for gi := range c.Gates {
		// Output-node load shared by both networks:
		//   drains of all roots + wire/PO constants + fanout gate caps.
		var outTerms []delay.Term
		var outConst float64
		for _, net := range []*netInfo{pulldown[gi], pullup[gi]} {
			for _, r := range net.roots {
				outTerms = append(outTerms, delay.Term{J: r, A: m.Tech.CDiff})
			}
		}
		outConst += m.Tech.CWire * float64(len(fan[gi])+poCount[gi])
		outConst += m.POLoad * float64(poCount[gi])
		for _, h := range fan[gi] {
			for pin, in := range c.Gates[h].Ins {
				if in.Kind == circuit.RefGate && in.Index == gi {
					for _, v := range pinDevs[h][pin] {
						outTerms = append(outTerms, delay.Term{J: v, A: m.Tech.CGate})
					}
				}
			}
		}

		for _, net := range []*netInfo{pulldown[gi], pullup[gi]} {
			assignNetCoeffs(p, m, net, outTerms, outConst, devices)
		}
	}

	topo, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("dag: transistor DAG cyclic: %w", err)
	}
	p.topo = topo
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.csr = delay.NewCSR(p.Coeffs)
	return p, nil
}

// assignNetCoeffs fills the Coeffs of every transistor in the network.
// For transistors on several conduction paths, the path with the larger
// minimum-size delay wins (worst case, fixed coefficient structure).
func assignNetCoeffs(p *Problem, m *delay.Model, net *netInfo, outTerms []delay.Term, outConst float64, devices []xtor) {
	type cand struct {
		coeff delay.Coeffs
		score float64
	}
	best := map[int]cand{}
	for _, path := range net.paths {
		// Accumulate cap terms from the output node downward.
		cum := append([]delay.Term{}, outTerms...)
		cumConst := outConst
		for k, v := range path {
			if k > 0 {
				// node_k between path[k-1] and path[k]: source of upper,
				// drain of lower.
				cum = append(cum, delay.Term{J: path[k-1], A: m.Tech.CDiff})
				cum = append(cum, delay.Term{J: v, A: m.Tech.CDiff})
			}
			rho := m.Tech.RUnit
			if devices[v].pmos {
				rho *= m.Tech.PMOSRatio
			}
			var k2 delay.Coeffs
			for _, t := range cum {
				if t.J == v {
					// Own cap: R/x · C·x = constant.
					k2.Self += rho * t.A
					continue
				}
				k2.Terms = append(k2.Terms, delay.Term{J: t.J, A: rho * t.A})
			}
			k2.Const = rho * cumConst
			k2.Terms = mergeTerms(k2.Terms)
			// Score at all-minimum sizes.
			score := k2.Self + k2.Const/p.MinSize
			for _, t := range k2.Terms {
				score += t.A
			}
			if prev, ok := best[v]; !ok || score > prev.score {
				best[v] = cand{coeff: k2, score: score}
			}
		}
	}
	for v, c := range best {
		p.Coeffs[v] = c.coeff
	}
}

// mergeTerms combines duplicate couplings to the same variable.
func mergeTerms(terms []delay.Term) []delay.Term {
	sum := map[int]float64{}
	order := []int{}
	for _, t := range terms {
		if _, ok := sum[t.J]; !ok {
			order = append(order, t.J)
		}
		sum[t.J] += t.A
	}
	out := make([]delay.Term, 0, len(order))
	for _, j := range order {
		out = append(out, delay.Term{J: j, A: sum[j]})
	}
	return out
}
