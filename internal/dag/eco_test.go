package dag

import (
	"math"
	"math/rand"
	"testing"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/delay"
	"minflo/internal/gen"
)

// ecoSnapshot captures everything an Apply may mutate, for atomicity
// checks on rejected batches.
type ecoSnapshot struct {
	c     *circuit.Circuit
	extra []float64
	self  []float64
	konst []float64
	terms [][]delay.Term
	areaW []float64
	p     *Problem
}

func snapshotEco(e *Eco) *ecoSnapshot {
	s := &ecoSnapshot{
		c:     e.C.Clone(),
		extra: append([]float64(nil), e.Extra...),
		areaW: append([]float64(nil), e.P.AreaW...),
		p:     e.P,
	}
	for _, k := range e.P.Coeffs {
		s.self = append(s.self, k.Self)
		s.konst = append(s.konst, k.Const)
		s.terms = append(s.terms, append([]delay.Term(nil), k.Terms...))
	}
	return s
}

func (s *ecoSnapshot) check(t *testing.T, e *Eco) {
	t.Helper()
	if e.P != s.p {
		t.Fatal("rejected batch replaced the Problem")
	}
	for gi, g := range e.C.Gates {
		w := s.c.Gates[gi]
		if g.Kind != w.Kind {
			t.Fatalf("gate %d kind changed on rejected batch", gi)
		}
		for pin := range g.Ins {
			if g.Ins[pin] != w.Ins[pin] {
				t.Fatalf("gate %d pin %d changed on rejected batch", gi, pin)
			}
		}
	}
	for gi := range e.Extra {
		if e.Extra[gi] != s.extra[gi] {
			t.Fatalf("extra load %d changed on rejected batch", gi)
		}
	}
	for gi, k := range e.P.Coeffs {
		if k.Self != s.self[gi] || k.Const != s.konst[gi] {
			t.Fatalf("coeff row %d changed on rejected batch", gi)
		}
		for tt := range k.Terms {
			if k.Terms[tt] != s.terms[gi][tt] {
				t.Fatalf("coeff row %d term %d changed on rejected batch", gi, tt)
			}
		}
		if e.P.AreaW[gi] != s.areaW[gi] {
			t.Fatalf("area weight %d changed on rejected batch", gi)
		}
	}
}

// checkExactness asserts the state-patch contract: every resident
// coefficient row is bit-identical to Model.GateCoeff at the final
// circuit state, and the resident CSR evaluates bit-identically to a
// CSR freshly built from those rows.
func checkExactness(t *testing.T, e *Eco, rng *rand.Rand) {
	t.Helper()
	if err := e.P.Validate(); err != nil {
		t.Fatalf("post-edit problem invalid: %v", err)
	}
	fanPtr, fanIdx, poCount := e.C.FanoutsCSR()
	fresh := make([]delay.Coeffs, e.C.NumGates())
	for gi := 0; gi < e.C.NumGates(); gi++ {
		fo := fanIdx[fanPtr[gi]:fanPtr[gi+1]]
		kc, err := e.M.GateCoeff(e.C, gi, fo, poCount[gi], e.Extra[gi])
		if err != nil {
			t.Fatalf("GateCoeff(%d): %v", gi, err)
		}
		fresh[gi] = kc
		got := &e.P.Coeffs[gi]
		if got.Self != kc.Self || got.Const != kc.Const {
			t.Fatalf("row %d: resident (self=%.17g const=%.17g) != fresh (%.17g, %.17g)",
				gi, got.Self, got.Const, kc.Self, kc.Const)
		}
		if len(got.Terms) != len(kc.Terms) {
			t.Fatalf("row %d: term count %d != %d", gi, len(got.Terms), len(kc.Terms))
		}
		for tt := range kc.Terms {
			if got.Terms[tt] != kc.Terms[tt] {
				t.Fatalf("row %d term %d: %+v != %+v", gi, tt, got.Terms[tt], kc.Terms[tt])
			}
		}
		if want := cell.Get(e.C.Gates[gi].Kind).UnitArea; e.P.AreaW[gi] != want {
			t.Fatalf("row %d: area weight %g != unit area %g", gi, e.P.AreaW[gi], want)
		}
	}
	// The in-place-patched CSR (values and transpose) must evaluate
	// bit-identically to one rebuilt from scratch.
	twin := delay.NewCSR(fresh)
	x := make([]float64, e.C.NumGates())
	for i := range x {
		x[i] = 1 + 3*rng.Float64()
	}
	for v := 0; v < e.P.NumSizable; v++ {
		if a, b := e.P.CSR().Delay(v, x[v], x), twin.Delay(v, x[v], x); a != b {
			t.Fatalf("CSR row %d: patched delay %.17g != fresh %.17g", v, a, b)
		}
	}
}

// randomBatch builds 1–4 random edits against the current netlist.
// Rewires pick lower-indexed drivers (gen circuits are built in topo
// order, so acyclicity holds); batches may still be validly rejected
// when a rewire leaves the old driver dangling.
func randomBatch(e *Eco, rng *rand.Rand) []Edit {
	n := 1 + rng.Intn(4)
	batch := make([]Edit, 0, n)
	for len(batch) < n {
		gi := rng.Intn(e.C.NumGates())
		g := &e.C.Gates[gi]
		switch rng.Intn(3) {
		case 0: // retype to a random same-arity cell
			var opts []cell.Kind
			for k := 0; k < cell.NumKinds; k++ {
				if cell.Get(cell.Kind(k)).NumInputs == len(g.Ins) {
					opts = append(opts, cell.Kind(k))
				}
			}
			if len(opts) == 0 {
				continue
			}
			batch = append(batch, Edit{Op: EditRetype, Gate: gi, Cell: opts[rng.Intn(len(opts))]})
		case 1: // set/clear extra load
			load := 0.0
			if rng.Intn(4) != 0 {
				load = 20 * rng.Float64()
			}
			batch = append(batch, Edit{Op: EditLoad, Gate: gi, LoadFF: load})
		default: // rewire one pin to a PI or a lower-indexed gate
			pin := rng.Intn(len(g.Ins))
			var d circuit.Ref
			if gi == 0 || rng.Intn(2) == 0 {
				d = circuit.PIRef(rng.Intn(e.C.NumPIs()))
			} else {
				d = circuit.GateRef(rng.Intn(gi))
			}
			batch = append(batch, Edit{Op: EditRewire, Gate: gi, Pin: pin, Driver: d})
		}
	}
	return batch
}

// TestEcoStateConformance is the ISSUE's state-patch conformance
// harness: 110 random netlists, each absorbing a sequence of random
// edit batches; after every accepted batch the resident state must be
// bit-identical to a fresh build of the final netlist, and every
// rejected batch must leave the state untouched.
func TestEcoStateConformance(t *testing.T) {
	m := model()
	accepted, rejected := 0, 0
	for inst := 0; inst < 110; inst++ {
		rng := rand.New(rand.NewSource(int64(7000 + inst)))
		c := gen.RandomLogic(4+rng.Intn(6), 12+rng.Intn(30), int64(inst))
		e, err := NewEco(c, m)
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}
		for round := 0; round < 4; round++ {
			batch := randomBatch(e, rng)
			snap := snapshotEco(e)
			if _, err := e.Apply(batch); err != nil {
				snap.check(t, e)
				rejected++
				continue
			}
			accepted++
			checkExactness(t, e, rng)
		}
	}
	if accepted == 0 {
		t.Fatal("harness applied no batches")
	}
	t.Logf("conformance: %d batches accepted, %d rejected (state verified unchanged)", accepted, rejected)
}

// TestEcoValuePatchInPlace asserts value-only batches patch the
// resident Problem without replacing it (the warm-state contract).
func TestEcoValuePatchInPlace(t *testing.T) {
	e, err := NewEco(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	p0 := e.P
	delta, err := e.Apply([]Edit{
		{Op: EditLoad, Gate: 2, LoadFF: 5},
		{Op: EditRetype, Gate: 3, Cell: cell.Nor2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Structural {
		t.Fatal("value batch marked structural")
	}
	if e.P != p0 {
		t.Fatal("value batch replaced the Problem")
	}
	if len(delta.ChangedRows) == 0 {
		t.Fatal("no changed rows")
	}
	// Replaying load 0 restores the pristine coefficients bit-for-bit
	// (absolute state, not a delta).
	if _, err := e.Apply([]Edit{
		{Op: EditLoad, Gate: 2, LoadFF: 0},
		{Op: EditRetype, Gate: 3, Cell: cell.Nand2},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := NewEco(gen.C17().Clone(), model())
	if err != nil {
		t.Fatal(err)
	}
	for gi := range e.P.Coeffs {
		a, b := e.P.Coeffs[gi], f.P.Coeffs[gi]
		if a.Self != b.Self || a.Const != b.Const {
			t.Fatalf("row %d not restored bit-identically", gi)
		}
	}
}

// TestEcoRewireCycleRejected asserts a cycle-creating rewire is
// rejected atomically after tentative application.
func TestEcoRewireCycleRejected(t *testing.T) {
	c := circuit.New("cyc")
	a := c.AddPI("a")
	g0 := c.AddGate("g0", cell.Nand2, a, a)
	g1 := c.AddGate("g1", cell.Nand2, g0, a)
	g2 := c.AddGate("g2", cell.Nand2, g1, a)
	c.MarkPO(g2)
	c.MarkPO(g0)
	e, err := NewEco(c, model())
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotEco(e)
	// g0 <- g2 closes g0→g1→g2→g0.
	_, err = e.Apply([]Edit{{Op: EditRewire, Gate: 0, Pin: 0, Driver: circuit.GateRef(2)}})
	if err == nil {
		t.Fatal("cycle-creating rewire accepted")
	}
	snap.check(t, e)
}

// TestEcoValidation covers the static rejections.
func TestEcoValidation(t *testing.T) {
	e, err := NewEco(gen.C17(), model())
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Edit{
		nil, // empty batch
		{{Op: EditRetype, Gate: -1, Cell: cell.Inv}},
		{{Op: EditRetype, Gate: 0, Cell: cell.Kind(999)}},
		{{Op: EditRetype, Gate: 0, Cell: cell.Inv}}, // arity mismatch (NAND2 gate)
		{{Op: EditLoad, Gate: 0, LoadFF: -1}},
		{{Op: EditLoad, Gate: 0, LoadFF: math.NaN()}},
		{{Op: EditRewire, Gate: 0, Pin: 9, Driver: circuit.PIRef(0)}},
		{{Op: EditRewire, Gate: 0, Pin: 0, Driver: circuit.PIRef(99)}},
		{{Op: EditRewire, Gate: 0, Pin: 0, Driver: circuit.GateRef(0)}}, // self-loop
		{{Op: EditOp(42), Gate: 0}},
	}
	for i, batch := range bad {
		snap := snapshotEco(e)
		if _, err := e.Apply(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		snap.check(t, e)
	}
	// A batch whose *last* edit is invalid must not half-apply the
	// earlier valid ones.
	snap := snapshotEco(e)
	if _, err := e.Apply([]Edit{
		{Op: EditLoad, Gate: 1, LoadFF: 7},
		{Op: EditRetype, Gate: 2, Cell: cell.Nor2},
		{Op: EditLoad, Gate: 0, LoadFF: -3},
	}); err == nil {
		t.Fatal("batch with trailing invalid edit accepted")
	}
	snap.check(t, e)
}

// TestEcoGateSetAdd covers EditAdd: an accepted add is bit-identical to
// a fresh build of the grown netlist (checkExactness) and to the
// snapshot-compaction path (NewEcoWithExtra on the evolved state), and
// in-batch references to the new gate resolve.
func TestEcoGateSetAdd(t *testing.T) {
	m := model()
	e, err := NewEco(gen.C17(), m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	n0 := e.C.NumGates()
	// One batch: add an inverter on gate 0's output and immediately
	// rewire an existing consumer pin onto it (the added gate's future
	// index is the pre-add gate count).
	delta, err := e.Apply([]Edit{
		{Op: EditAdd, Name: "eco_inv", Cell: cell.Inv, Ins: []circuit.Ref{circuit.GateRef(0)}},
		{Op: EditRewire, Gate: 2, Pin: 0, Driver: circuit.GateRef(n0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Structural || !delta.GateSetChanged {
		t.Fatalf("add batch delta %+v: want structural + gate-set change", delta)
	}
	if e.C.NumGates() != n0+1 || e.P.NumSizable != n0+1 || len(e.Extra) != n0+1 {
		t.Fatalf("gate count after add: C=%d P=%d extra=%d, want %d", e.C.NumGates(), e.P.NumSizable, len(e.Extra), n0+1)
	}
	checkExactness(t, e, rng)
	// Snapshot-compaction contract: rebuilding from the evolved netlist
	// and extra-load state reproduces the resident rows bit-for-bit.
	twin, err := NewEcoWithExtra(e.C.Clone(), m, e.Extra)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range e.P.Coeffs {
		a, b := e.P.Coeffs[gi], twin.P.Coeffs[gi]
		if a.Self != b.Self || a.Const != b.Const || len(a.Terms) != len(b.Terms) {
			t.Fatalf("row %d: resident != NewEcoWithExtra twin", gi)
		}
		for tt := range a.Terms {
			if a.Terms[tt] != b.Terms[tt] {
				t.Fatalf("row %d term %d: resident != twin", gi, tt)
			}
		}
	}
}

// TestEcoGateSetRemove covers EditRemove: removal demands a dead gate
// (consumers must be detached first, in the same batch), later edits
// see the shifted index space, and the result matches a fresh build.
func TestEcoGateSetRemove(t *testing.T) {
	mk := func() *Eco {
		c := circuit.New("rm")
		a := c.AddPI("a")
		b := c.AddPI("b")
		g0 := c.AddGate("g0", cell.Nand2, a, b)
		g1 := c.AddGate("g1", cell.Nand2, g0, b)
		_ = g1
		c.MarkPO(circuit.GateRef(1))
		e, err := NewEco(c, model())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	rng := rand.New(rand.NewSource(42))

	// Detach the only reader, then remove; the trailing load edit uses
	// the post-shift index (old g1 is gate 0 after the removal).
	e := mk()
	delta, err := e.Apply([]Edit{
		{Op: EditRewire, Gate: 1, Pin: 0, Driver: circuit.PIRef(0)},
		{Op: EditRemove, Gate: 0},
		{Op: EditLoad, Gate: 0, LoadFF: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.GateSetChanged || e.C.NumGates() != 1 {
		t.Fatalf("remove batch: delta %+v, %d gates", delta, e.C.NumGates())
	}
	if e.C.Gates[0].Name != "g1" || e.Extra[0] != 4 {
		t.Fatalf("post-shift state: gate %q extra %g", e.C.Gates[0].Name, e.Extra[0])
	}
	checkExactness(t, e, rng)

	// Liveness: removing a gate something still reads, or a PO gate,
	// rejects the whole batch atomically.
	for _, batch := range [][]Edit{
		{{Op: EditRemove, Gate: 0}}, // g0 still read by g1
		{{Op: EditRewire, Gate: 1, Pin: 0, Driver: circuit.PIRef(0)}, {Op: EditRemove, Gate: 1}}, // g1 is a PO
		{{Op: EditRemove, Gate: 7}}, // out of range
	} {
		e := mk()
		snap := snapshotEco(e)
		if _, err := e.Apply(batch); err == nil {
			t.Fatalf("batch %v accepted", batch)
		}
		snap.check(t, e)
	}

	// A batch that passes per-edit validation but breaks the netlist at
	// rebuild (the add leaves the new gate driving nothing) also rolls
	// back whole.
	e = mk()
	snap := snapshotEco(e)
	if _, err := e.Apply([]Edit{
		{Op: EditAdd, Name: "dangling", Cell: cell.Inv, Ins: []circuit.Ref{circuit.PIRef(0)}},
	}); err == nil {
		t.Fatal("dangling add accepted")
	}
	snap.check(t, e)
}
