package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"minflo/internal/fault"
)

// trOpt is the trust-region configuration the seed tests share: a
// pinned serial engine (bit-reproducible trajectories) and the 5%
// region the server defaults to.
func trOpt(engine string) Options {
	return Options{FlowEngine: engine, Parallelism: 1, TrustRegion: 0.05}
}

// TestSessionTrustRegionReplay is the renegotiated determinism
// contract: with seeding on, a session's answers are a deterministic
// function of the query sequence — a serial twin replaying the same
// small-refinement mix answers bit-identically — while the seeded
// answers stay feasible and within 2e-2 relative area of a
// seeding-off session's answers.
func TestSessionTrustRegionReplay(t *testing.T) {
	for _, engine := range []string{"ssp", "dial"} {
		t.Run(engine, func(t *testing.T) {
			warm, err := NewSession(mustProblem(t, "adder16"), trOpt(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer warm.Close()
			twin, err := NewSession(mustProblem(t, "adder16"), trOpt(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()
			off, err := NewSession(mustProblem(t, "adder16"),
				Options{FlowEngine: engine, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer off.Close()

			tmin := minCP(t, warm.p)
			// The latency harness's small-refinement mix: a cold anchor
			// then targets within ±0.7% of it.
			targets := []float64{0.6, 0.602, 0.598, 0.601, 0.599, 0.6}
			for qi, f := range targets {
				T := f * tmin
				rw, err := warm.Resize(context.Background(), T, Budgets{})
				if err != nil {
					t.Fatalf("query %d: %v", qi, err)
				}
				rt, err := twin.Resize(context.Background(), T, Budgets{})
				if err != nil {
					t.Fatalf("twin query %d: %v", qi, err)
				}
				if !bitEqual(rw.X, rt.X) || rw.Area != rt.Area || rw.CP != rt.CP ||
					rw.Iterations != rt.Iterations || rw.Seed != rt.Seed {
					t.Fatalf("query %d (T=%g): seeded session diverged from replaying twin\nwarm: area %.17g seed %q iters %d\ntwin: area %.17g seed %q iters %d",
						qi, T, rw.Area, rw.Seed, rw.Iterations, rt.Area, rt.Seed, rt.Iterations)
				}
				wantSeed := SeedWarm
				if qi == 0 {
					wantSeed = SeedTilos
				}
				if rw.Seed != wantSeed {
					t.Fatalf("query %d: Seed = %q, want %q", qi, rw.Seed, wantSeed)
				}
				if rw.CP > T*(1+1e-9) {
					t.Fatalf("query %d: seeded CP %g violates target %g", qi, rw.CP, T)
				}
				ro, err := off.Resize(context.Background(), T, Budgets{})
				if err != nil {
					t.Fatalf("seeding-off query %d: %v", qi, err)
				}
				if rel := math.Abs(rw.Area-ro.Area) / ro.Area; rel > 2e-2 {
					t.Fatalf("query %d: seeded area %.17g vs cold-path %.17g (rel %g) beyond tolerance",
						qi, rw.Area, ro.Area, rel)
				}
			}
			if got, want := warm.TrustRegionSeeded(), len(targets)-1; got != want {
				t.Fatalf("TrustRegionSeeded = %d, want %d", got, want)
			}
			if got := warm.TrustRegionFallbacks(); got != 0 {
				t.Fatalf("TrustRegionFallbacks = %d, want 0", got)
			}
			// Seed provenance threads into the per-iteration stats too.
			last := warm // any clean seeded result: re-run the final target
			rw, err := last.Resize(context.Background(), targets[len(targets)-1]*tmin, Budgets{})
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range rw.Stats {
				if st.Seed != SeedWarm {
					t.Fatalf("iteration %d: Seed = %q, want %q", st.Iter, st.Seed, SeedWarm)
				}
			}
		})
	}
}

// TestSessionTrustRegionFallbackBeyondDelta: a target jump beyond δ
// re-seeds from TILOS (no fallback counted — the policy never armed),
// and the session recovers warm seeding around the new anchor.
func TestSessionTrustRegionFallbackBeyondDelta(t *testing.T) {
	sess, err := NewSession(mustProblem(t, "adder16"), trOpt("dial"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tmin := minCP(t, sess.p)

	r0, err := sess.Resize(context.Background(), 0.6*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r0.Seed != SeedTilos {
		t.Fatalf("first query Seed = %q, want %q", r0.Seed, SeedTilos)
	}
	// 0.6 → 0.75 is a 25% move: far outside δ=5%.
	r1, err := sess.Resize(context.Background(), 0.75*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seed != SeedTilos || r1.SeedFallback {
		t.Fatalf("beyond-δ query: Seed = %q SeedFallback = %v, want cold with no fallback",
			r1.Seed, r1.SeedFallback)
	}
	if sess.TrustRegionSeeded() != 0 || sess.TrustRegionFallbacks() != 0 {
		t.Fatalf("counters moved on cold queries: seeded %d fallbacks %d",
			sess.TrustRegionSeeded(), sess.TrustRegionFallbacks())
	}
	// A small move around the NEW anchor seeds warm.
	r2, err := sess.Resize(context.Background(), 0.752*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seed != SeedWarm {
		t.Fatalf("near-anchor query Seed = %q, want %q", r2.Seed, SeedWarm)
	}
}

// TestSessionTrustRegionFallbackOnWeightEdit: an area-weight edit
// beyond δ invalidates the seed for the next Resize; the clean answer
// that follows re-arms seeding (perturbation resets per clean answer).
func TestSessionTrustRegionFallbackOnWeightEdit(t *testing.T) {
	sess, err := NewSession(mustProblem(t, "adder16"), trOpt("dial"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tmin := minCP(t, sess.p)
	T := 0.6 * tmin

	if _, err := sess.Resize(context.Background(), T, Budgets{}); err != nil {
		t.Fatal(err)
	}
	// 50% weight perturbation: the previous optimum is stale.
	if err := sess.SetAreaWeight(0, 1.5*sess.AreaWeight(0)); err != nil {
		t.Fatal(err)
	}
	r1, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seed != SeedTilos {
		t.Fatalf("post-edit query Seed = %q, want %q", r1.Seed, SeedTilos)
	}
	// The clean answer above reset the perturbation tracker; a small
	// (within-δ) edit does not break seeding.
	if err := sess.SetAreaWeight(0, 1.01*sess.AreaWeight(0)); err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seed != SeedWarm {
		t.Fatalf("within-δ edit query Seed = %q, want %q", r2.Seed, SeedWarm)
	}
}

// TestSessionTrustRegionBlowoutFallback drives the EWMA gate
// white-box: with the session's EWMA forced tiny (and the floor
// lowered), a seeded attempt trips the 3×-EWMA iteration cap, is
// abandoned, and the cold path answers with SeedFallback set.
func TestSessionTrustRegionBlowoutFallback(t *testing.T) {
	oldFloor := seedIterFloor
	seedIterFloor = 1
	defer func() { seedIterFloor = oldFloor }()

	sess, err := NewSession(mustProblem(t, "adder16"), trOpt("dial"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tmin := minCP(t, sess.p)

	if _, err := sess.Resize(context.Background(), 0.6*tmin, Budgets{}); err != nil {
		t.Fatal(err)
	}
	// Pretend the session's runs converge in a fraction of an
	// iteration: cap = max(floor, ceil(3·0.1)) = 1, which no real D/W
	// run satisfies, so the seeded attempt must blow out.
	sess.ewmaIters = 0.1
	r, err := sess.Resize(context.Background(), 0.601*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != SeedTilos || !r.SeedFallback {
		t.Fatalf("blowout query: Seed = %q SeedFallback = %v, want TILOS fallback", r.Seed, r.SeedFallback)
	}
	if got := sess.TrustRegionFallbacks(); got != 1 {
		t.Fatalf("TrustRegionFallbacks = %d, want 1", got)
	}
	if r.CP > 0.601*tmin*(1+1e-9) {
		t.Fatalf("fallback answer CP %g violates target", r.CP)
	}
	// The fallback's clean answer re-anchors the EWMA; the next small
	// move seeds warm again (real iteration counts pass their own gate).
	r2, err := sess.Resize(context.Background(), 0.602*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seed != SeedWarm || r2.SeedFallback {
		t.Fatalf("post-blowout query: Seed = %q SeedFallback = %v, want clean warm seed", r2.Seed, r2.SeedFallback)
	}
}

// TestSessionTrustRegionAbortedSeedReusable: a seeded resize canceled
// mid-flow (fault-engine cancel at a deterministic operation) answers
// partial, does NOT update the seed state, and leaves the session
// reusable — a twin replaying the same sequence (including the same
// injected cancel) answers every query bit-identically.
func TestSessionTrustRegionAbortedSeedReusable(t *testing.T) {
	opt := Options{FlowEngine: "fault", Parallelism: 1, TrustRegion: 0.05}
	run := func(t *testing.T, label string) (r0, r1, r2 *Result) {
		sess, err := NewSession(mustProblem(t, "adder16"), opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		tmin := minCP(t, sess.p)

		// The wrapper rebuilds its inner backend when the plan names a
		// different one — keep Inner pinned to "dial" across the whole
		// sequence so the warm flow state persists like production.
		fault.SetPlan(fault.Plan{Inner: "dial"})
		r0, err = sess.Resize(context.Background(), 0.6*tmin, Budgets{})
		if err != nil {
			t.Fatalf("%s anchor: %v", label, err)
		}

		// Cancel at the 5th abort-funnel operation of the seeded
		// attempt's first D-phase — deterministic for the serial inner
		// engine, so the twin's injection lands on the same operation.
		ctx, cancel := context.WithCancel(context.Background())
		fault.SetPlan(fault.Plan{Inner: "dial", Mode: fault.Cancel, Op: 5, OnCancel: cancel})
		r1, err = sess.Resize(ctx, 0.601*tmin, Budgets{})
		fault.SetPlan(fault.Plan{Inner: "dial"})
		defer fault.Reset()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s injected cancel: err = %v, want ErrCanceled", label, err)
		}
		if r1 == nil || !r1.Partial || r1.Seed != SeedWarm {
			t.Fatalf("%s injected cancel: partial seeded best-so-far missing (r=%+v)", label, r1)
		}

		// The aborted attempt must not have become the seed: the retry
		// still seeds from query 0's answer and completes cleanly.
		if sess.seedT != 0.6*tmin {
			t.Fatalf("%s: aborted resize updated seedT to %g", label, sess.seedT)
		}
		r2, err = sess.Resize(context.Background(), 0.601*tmin, Budgets{})
		if err != nil {
			t.Fatalf("%s retry after cancel: %v", label, err)
		}
		if r2.Seed != SeedWarm {
			t.Fatalf("%s retry Seed = %q, want %q", label, r2.Seed, SeedWarm)
		}
		return r0, r1, r2
	}

	a0, a1, a2 := run(t, "session")
	b0, b1, b2 := run(t, "twin")
	if !bitEqual(a0.X, b0.X) || !bitEqual(a1.X, b1.X) || !bitEqual(a2.X, b2.X) {
		t.Fatal("twin replaying the aborted-seed sequence diverged")
	}
	if a2.Area != b2.Area || a2.CP != b2.CP || a2.Iterations != b2.Iterations {
		t.Fatalf("post-abort answers differ: area %.17g/%.17g cp %.17g/%.17g",
			a2.Area, b2.Area, a2.CP, b2.CP)
	}
}
