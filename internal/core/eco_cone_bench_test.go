package core

import (
	"context"
	"fmt"
	"testing"

	"minflo/internal/circuit"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/tech"
)

// BenchmarkEcoConeResize is the cone-local re-sizing perf contract:
// after a value-only edit batch, answering the next in-trust-region
// query from a cone-scoped subproblem against frozen boundary arrivals
// (the "cone" rows) must beat re-running the full warm D/W loop (the
// "full" rows).  Each iteration decreases the extra load on a sink
// gate — monotone decreases keep the cone tiny (the slack freed by the
// edit never violates upstream paths, so recruitment stops at the
// forward closure), which is the regime the cone path exists for.  The
// decrement is scaled by b.N so the load stays in [18, 20) fF however
// long the loop runs: the whole sweep spans 2 fF, because one huge
// decrease frees enough slack along mesh10k's 199-level paths to
// recruit past the cone budget.  The acceptance bar is cone ≥5× faster
// than full
// on mesh10k; a fallback in a cone row is a behavioral regression and
// fails the benchmark outright.
//
// mesh10k runs at a loose 0.9·tmin spec so the seed solve stays
// sub-second; the cone/full gap is about path depth, not how tight the
// target is.
func BenchmarkEcoConeResize(b *testing.B) {
	cases := []struct {
		name  string
		build func() *circuit.Circuit
		gate  func(c *circuit.Circuit) int
		spec  float64
	}{
		{"adder16", func() *circuit.Circuit { return gen.RippleAdder(16, gen.FABuffered) }, func(c *circuit.Circuit) int { return c.POs[0].Index }, 0.6},
		{"mult8", func() *circuit.Circuit { return gen.ArrayMultiplier(8) }, func(c *circuit.Circuit) int { return c.POs[0].Index }, 0.6},
		{"mesh10k", func() *circuit.Circuit { return gen.Mesh(100, 100) }, func(c *circuit.Circuit) int { return 99*100 + 99 }, 0.9},
	}
	m := delay.NewModel(tech.Default013())

	for _, tc := range cases {
		for _, mode := range []string{"cone", "full"} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, mode), func(b *testing.B) {
				c := tc.build()
				e, err := dag.NewEco(c, m)
				if err != nil {
					b.Fatal(err)
				}
				opt := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.1, EditConeResize: mode == "cone"}
				sess, err := NewEcoSession(e, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer sess.Close()
				tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
				T := tc.spec * tmin
				gate := tc.gate(c)
				ctx := context.Background()
				// Pre-load the sink and solve once so every timed
				// iteration is a warm, in-trust-region re-size.
				if _, err := sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: gate, LoadFF: 20}}); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Resize(ctx, T, Budgets{}); err != nil {
					b.Fatal(err)
				}
				step := 2.0 / float64(b.N)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					load := 20 - step*float64(i+1)
					if _, err := sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: gate, LoadFF: load}}); err != nil {
						b.Fatal(err)
					}
					if _, err := sess.Resize(ctx, T, Budgets{}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if mode == "cone" && sess.ConeFallbacks() > 0 {
					b.Fatalf("cone mode fell back %d/%d iterations", sess.ConeFallbacks(), b.N)
				}
			})
		}
	}
}
