package core

import (
	"math/rand"
	"runtime"
	"testing"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/mcmf"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

// sizeOnce runs the optimizer on problem p at spec·Dmin with the given
// flow engine and worker budget, returning the full result.
func sizeOnce(t *testing.T, p *dag.Problem, spec float64, engine string, parallelism int) *Result {
	t.Helper()
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Size(p, spec*tm.CP, Options{FlowEngine: engine, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diffResults demands bit-identical outcomes: sizes, area, CP,
// iteration count, and the per-iteration trajectory (objective, area,
// CP, clamp counts, window schedule, flow-resolve counts).  The
// engine name is the one intentional difference between a serial
// "ssp" run and a "parallel" run, so it is excluded.
func diffResults(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if got.Area != want.Area || got.CP != want.CP || got.Iterations != want.Iterations {
		t.Fatalf("%s: area/CP/iters %v/%v/%d, serial %v/%v/%d",
			tag, got.Area, got.CP, got.Iterations, want.Area, want.CP, want.Iterations)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("%s: x[%d] = %v, serial %v", tag, i, got.X[i], want.X[i])
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d iterations traced, serial %d", tag, len(got.Stats), len(want.Stats))
	}
	for i := range want.Stats {
		w, g := want.Stats[i], got.Stats[i]
		if g.Area != w.Area || g.CP != w.CP || g.Objective != w.Objective ||
			g.Window != w.Window || g.Clamped != w.Clamped || g.Repaired != w.Repaired ||
			g.FlowResolves != w.FlowResolves {
			t.Fatalf("%s: iteration %d diverged: %+v, serial %+v", tag, i+1, g, w)
		}
	}
}

// TestParallelMatchesSerialRandom is the end-to-end determinism gate
// of the intra-run parallelism work: across 100+ random logic
// instances and GOMAXPROCS ∈ {1, 2, 4, 8}, a fully parallel core.Size
// (parallel flow backend, level-parallel W-phase and sensitivity
// solves) must be bit-identical to the serial "ssp" run — same areas,
// same iteration counts, same sizes, same per-iteration trajectory.
func TestParallelMatchesSerialRandom(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	count := 0
	for seed := int64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ckt := gen.RandomLogic(4+rng.Intn(6), 30+rng.Intn(40), seed)
		p, err := dag.GateLevel(ckt, m)
		if err != nil {
			t.Fatal(err)
		}
		spec := 0.55 + 0.3*rng.Float64()
		want := sizeOnce(t, p, spec, "ssp", 1)
		for _, procs := range []int{1, 2, 4, 8} {
			old := runtime.GOMAXPROCS(procs)
			got := sizeOnce(t, p, spec, "parallel", procs)
			runtime.GOMAXPROCS(old)
			diffResults(t, ckt.Name, want, got)
		}
		count++
	}
	if count < 100 {
		t.Fatalf("only %d instances exercised, want >= 100", count)
	}
}

// TestParallelMatchesSerialLarge covers the regime the random suite
// cannot: problems big enough that every parallel path really engages
// (the flow engine's speculation rounds, and — on the wide tree — the
// level-parallel W-phase above its 128-block floor).  The transistor
// problem adds SCC blocks (dense-block sensitivity path).
func TestParallelMatchesSerialLarge(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	cases := []struct {
		name string
		mk   func() (*dag.Problem, error)
		spec float64
	}{
		{"mesh1600", func() (*dag.Problem, error) { return dag.GateLevel(gen.Mesh(40, 40), m) }, 0.9},
		{"tree4k", func() (*dag.Problem, error) { return dag.GateLevel(gen.BalancedTree(1<<12), m) }, 0.9},
		{"adder64T", func() (*dag.Problem, error) {
			return dag.TransistorLevel(gen.RippleAdder(64, gen.FABuffered), m)
		}, 0.7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			want := sizeOnce(t, p, tc.spec, "ssp", 1)
			for _, procs := range []int{2, 4, 8} {
				got := sizeOnce(t, p, tc.spec, "parallel", procs)
				diffResults(t, tc.name, want, got)
				if got.Stats[0].FlowEngine != "parallel" {
					t.Fatalf("flow engine %q, want parallel", got.Stats[0].FlowEngine)
				}
			}
		})
	}
}

// TestResolveFlowEngineAuto pins the auto policy: ""/"auto" defer to
// the startup calibration probe (empty name, CalibrationEngines as
// candidates — which never include the opt-in "parallel" backend),
// explicit names pass through, and unknown names are rejected.
func TestResolveFlowEngineAuto(t *testing.T) {
	for _, name := range []string{"", "auto"} {
		for _, tc := range []struct{ n, par int }{{64, 1}, {1024, 8}, {200_000, 8}} {
			got, err := ResolveFlowEngine(name, tc.n, tc.par)
			if err != nil {
				t.Fatal(err)
			}
			if got != "" {
				t.Errorf("ResolveFlowEngine(%q, n=%d, par=%d) = %q, want \"\" (calibrate)", name, tc.n, tc.par, got)
			}
		}
	}
	cands := CalibrationEngines()
	if len(cands) < 2 {
		t.Fatalf("calibration candidates %v, want at least dial and cspar", cands)
	}
	hasCspar := false
	for _, c := range cands {
		if c == "parallel" {
			t.Fatalf("calibration candidates %v include the opt-in parallel backend", cands)
		}
		if !mcmf.ValidEngine(c) {
			t.Fatalf("calibration candidate %q is not a registered engine", c)
		}
		if c == "cspar" {
			hasCspar = true
		}
	}
	if !hasCspar {
		t.Fatalf("calibration candidates %v do not include cspar", cands)
	}
	for _, name := range []string{"ssp", "dial", "cspar", "costscaling", "parallel"} {
		got, err := ResolveFlowEngine(name, 10, 1)
		if err != nil || got != name {
			t.Fatalf("explicit %q: got %q, err %v", name, got, err)
		}
	}
	if _, err := ResolveFlowEngine("nope", 10, 1); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
