package core

import (
	"context"
	"errors"
	"testing"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/tech"
)

func mustProblem(t testing.TB, name string) *dag.Problem {
	t.Helper()
	m := delay.NewModel(tech.Default013())
	var p *dag.Problem
	var err error
	switch name {
	case "adder16":
		p, err = dag.GateLevel(gen.RippleAdder(16, gen.FABuffered), m)
	case "adder32":
		p, err = dag.GateLevel(gen.RippleAdder(32, gen.FABuffered), m)
	case "c17":
		p, err = dag.GateLevel(gen.C17(), m)
	case "mult8":
		p, err = dag.GateLevel(gen.ArrayMultiplier(8), m)
	default:
		t.Fatalf("unknown problem %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionReplayDeterminism is the contract the serving layer
// stands on: a session's answers are a deterministic function of the
// query sequence served since its last cold build.  A serial twin
// session replaying the same sequence answers every query
// bit-identically — which is exactly how the server's soak test
// checks concurrent sessions, and why a cold-rebuilt (evicted or
// quarantined) session is trustworthy: it answers like a fresh twin
// replaying the post-rebuild sequence.
//
// Warm answers are NOT bitwise-identical to one-shot cold answers of
// the same query: the incremental re-flow lands on an equally optimal
// but different dual solution than a fresh solve (degenerate LP), so
// the D/W trajectory drifts at the last-bits level.  The second half
// of the test bounds that drift — warm and cold answers agree on
// feasibility and on area to 1e-3 relative — so the warm path can
// never silently trade answer quality for speed.
func TestSessionReplayDeterminism(t *testing.T) {
	for _, engine := range []string{"ssp", "dial", "costscaling"} {
		t.Run(engine, func(t *testing.T) {
			opt := Options{FlowEngine: engine, Parallelism: 1}
			pWarm := mustProblem(t, "adder16")
			warm, err := NewSession(pWarm, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer warm.Close()
			pTwin := mustProblem(t, "adder16")
			twin, err := NewSession(pTwin, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()

			// Dmin from the problem's minimum sizes.
			tmin := minCP(t, pWarm)
			targets := []float64{0.6 * tmin, 0.5 * tmin, 0.75 * tmin, 0.55 * tmin, 0.75 * tmin}

			for qi, T := range targets {
				rw, err := warm.Resize(context.Background(), T, Budgets{})
				if err != nil {
					t.Fatalf("warm query %d: %v", qi, err)
				}
				rt, err := twin.Resize(context.Background(), T, Budgets{})
				if err != nil {
					t.Fatalf("twin query %d: %v", qi, err)
				}
				if !bitEqual(rw.X, rt.X) || rw.Area != rt.Area || rw.CP != rt.CP || rw.Iterations != rt.Iterations {
					t.Fatalf("query %d (T=%g): session answer diverged from replaying twin\nwarm: area %.17g cp %.17g iters %d\ntwin: area %.17g cp %.17g iters %d",
						qi, T, rw.Area, rw.CP, rw.Iterations, rt.Area, rt.CP, rt.Iterations)
				}

				// One-shot cold run: must agree on feasibility and area
				// within tolerance (equally optimal, not bit-equal).
				pCold := mustProblem(t, "adder16")
				cold, err := NewSession(pCold, opt)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := cold.Resize(context.Background(), T, Budgets{})
				cold.Close()
				if err != nil {
					t.Fatalf("cold query %d: %v", qi, err)
				}
				if rw.CP > T*(1+1e-9) {
					t.Fatalf("query %d: warm CP %g violates target %g", qi, rw.CP, T)
				}
				if rel := (rw.Area - rc.Area) / rc.Area; rel > 1e-3 || rel < -1e-3 {
					t.Fatalf("query %d: warm area %.17g vs cold %.17g (rel %g) beyond tolerance",
						qi, rw.Area, rc.Area, rel)
				}
			}

			// The warm path must actually be warm: one network build for
			// the whole session and incremental re-flows across queries.
			if got := warm.sc.sys.Builds(); got != 1 {
				t.Fatalf("session built the flow network %d times, want 1", got)
			}
			if engine != "costscaling" && warm.FlowResolves() == 0 {
				t.Fatalf("no incremental D-phase resolves across %d warm queries", len(targets))
			}
		})
	}
}

// minCP returns the minimum-size critical path of p.
func minCP(t testing.TB, p *dag.Problem) float64 {
	t.Helper()
	s, err := NewSession(p, Options{FlowEngine: "ssp", Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The arrivals engine is seeded at minimum sizes; retime reports it.
	return s.sc.retime(p, p.InitialSizes())
}

// TestSessionWhatIfCost drives the warm what-if path: scaling a
// gate's area weight re-prices the objective through the same warm
// constraint system (no rebuild) and matches a cold session built
// with the same weights.
func TestSessionWhatIfCost(t *testing.T) {
	opt := Options{FlowEngine: "dial", Parallelism: 1}
	p := mustProblem(t, "adder16")
	sess, err := NewSession(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	T := 0.6 * minCP(t, p)
	r0, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}

	// What-if: gate 0's area suddenly costs 10×.
	w0 := sess.AreaWeight(0)
	if err := sess.SetAreaWeight(0, 10*w0); err != nil {
		t.Fatal(err)
	}
	r1, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Area == r0.Area && bitEqual(r1.X, r0.X) {
		t.Fatalf("10x cost change produced an identical sizing (area %g)", r1.Area)
	}

	// Replaying twin: the same sequence — resize, reweight, resize —
	// on a fresh session answers bit-identically at every step.
	pt := mustProblem(t, "adder16")
	twin, err := NewSession(pt, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	rt0, err := twin.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(rt0.X, r0.X) {
		t.Fatal("twin replay step 0 diverged")
	}
	if err := twin.SetAreaWeight(0, 10*w0); err != nil {
		t.Fatal(err)
	}
	rt1, err := twin.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(rt1.X, r1.X) {
		t.Fatalf("twin replay of the what-if diverged: area %.17g vs %.17g", rt1.Area, r1.Area)
	}
	if sess.sc.sys.Builds() != 1 {
		t.Fatalf("what-if rebuilt the network (%d builds)", sess.sc.sys.Builds())
	}

	// Restoring the weight restores the original answer to within the
	// warm-path optimality tolerance (equally optimal dual solutions
	// drift at the last-bits level; see TestSessionReplayDeterminism).
	if err := sess.SetAreaWeight(0, w0); err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := (r2.Area - r0.Area) / r0.Area; rel > 1e-3 || rel < -1e-3 {
		t.Fatalf("restoring the area weight moved the answer beyond tolerance: %.17g vs %.17g", r2.Area, r0.Area)
	}
}

// TestSessionPerCallBudgets: each Resize gets its own flow-work
// allowance — earlier spend must not starve later calls (the budget
// composes with the solver's cumulative work counter).
func TestSessionPerCallBudgets(t *testing.T) {
	p := mustProblem(t, "adder32")
	sess, err := NewSession(p, Options{FlowEngine: "ssp", Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	T := 0.55 * minCP(t, p)

	// Generous budget: completes.
	if _, err := sess.Resize(context.Background(), T, Budgets{FlowWorkBudget: 1 << 40}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	// Tiny budget: must exhaust (partial), not silently complete.
	r, err := sess.Resize(context.Background(), T, Budgets{FlowWorkBudget: 1})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("tiny budget: err = %v, want ErrBudgetExhausted", err)
	}
	if r == nil || !r.Partial {
		t.Fatalf("tiny budget: partial best-so-far missing (r=%v)", r)
	}
	// And a later generous call gets its own allowance again.
	r2, err := sess.Resize(context.Background(), T, Budgets{FlowWorkBudget: 1 << 40})
	if err != nil {
		t.Fatalf("post-exhaustion budget did not reset per call: %v", err)
	}
	if r2.Partial {
		t.Fatal("post-exhaustion resize still partial")
	}
}

// TestSessionCanceledThenClean: an abort mid-query leaves the warm
// state reusable — the next identical query answers bit-identically
// to a never-canceled twin (the mcmf abort rollback, surfaced at the
// session level).
func TestSessionCanceledThenClean(t *testing.T) {
	opt := Options{FlowEngine: "dial", Parallelism: 1}
	p := mustProblem(t, "adder16")
	sess, err := NewSession(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	T := 0.6 * minCP(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Resize(ctx, T, Budgets{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled resize: err = %v, want ErrCanceled", err)
	}

	r, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	pc := mustProblem(t, "adder16")
	cold, err := NewSession(pc, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	rc, err := cold.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(r.X, rc.X) {
		t.Fatal("post-cancel warm answer diverged from never-canceled cold twin")
	}
}

// TestSessionMemoryBytes: the footprint estimate is positive, stable
// across queries (warm state does not grow per query) and scales with
// problem size.
func TestSessionMemoryBytes(t *testing.T) {
	small := mustProblem(t, "c17")
	big := mustProblem(t, "mult8")
	ss, err := NewSession(small, Options{Parallelism: 1, FlowEngine: "ssp"})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sb, err := NewSession(big, Options{Parallelism: 1, FlowEngine: "ssp"})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if ss.MemoryBytes() <= 0 || sb.MemoryBytes() <= 0 {
		t.Fatalf("non-positive estimates: %d, %d", ss.MemoryBytes(), sb.MemoryBytes())
	}
	if sb.MemoryBytes() < 10*ss.MemoryBytes() {
		t.Fatalf("mult8 (%d gates) estimate %d not ≫ c17 (%d gates) estimate %d",
			big.NumSizable, sb.MemoryBytes(), small.NumSizable, ss.MemoryBytes())
	}
	before := sb.MemoryBytes()
	if _, err := sb.Resize(context.Background(), 0.6*minCP(t, big), Budgets{}); err != nil {
		t.Fatal(err)
	}
	if after := sb.MemoryBytes(); after != before {
		t.Fatalf("estimate moved across a query: %d -> %d", before, after)
	}
}
