package core

import (
	"fmt"
	"testing"

	"minflo/internal/circuit"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/tech"
)

// BenchmarkEcoEdit is the tentpole's perf contract: absorbing a
// single-gate netlist edit into a warm session (the "edit" rows) must
// beat tearing the session down and rebuilding it from the netlist
// (the "rebuild" rows — problem build plus D-phase scratch, which is
// what serving an edit cost before the ECO path existed).  The edit
// rows alternate a near-output gate's extra load between two values so
// every iteration patches real state; the acceptance bar is edit ≥3×
// faster than rebuild on adder16 and mult8.
func BenchmarkEcoEdit(b *testing.B) {
	cases := []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"adder16", func() *circuit.Circuit { return gen.RippleAdder(16, gen.FABuffered) }},
		{"mult8", func() *circuit.Circuit { return gen.ArrayMultiplier(8) }},
		{"mesh10k", func() *circuit.Circuit { return gen.Mesh(100, 100) }},
	}
	m := delay.NewModel(tech.Default013())
	opt := Options{FlowEngine: "ssp", Parallelism: 1}

	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/edit", tc.name), func(b *testing.B) {
			e, err := dag.NewEco(tc.build(), m)
			if err != nil {
				b.Fatal(err)
			}
			sess, err := NewEcoSession(e, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			lg := e.C.NumGates() - 1
			loads := [2]float64{5, 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: lg, LoadFF: loads[i%2]}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/rebuild", tc.name), func(b *testing.B) {
			c := tc.build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := dag.NewEco(c, m)
				if err != nil {
					b.Fatal(err)
				}
				sess, err := NewEcoSession(e, opt)
				if err != nil {
					b.Fatal(err)
				}
				sess.Close()
			}
		})
	}
}
