// Cone-local ECO re-sizing (Options.EditConeResize): answer the Resize
// after a value-only edit batch from a cone-scoped subproblem instead
// of the full circuit, so edit→re-size latency scales with the cone,
// not the netlist.
//
// The pipeline: ApplyEdits arms the pending cone (the edit seeds);
// Resize, when the query sits inside the trust region, extracts the
// cone against frozen boundary timing (dag.ExtractCone — virtual PIs
// carry the boundary's frozen finish times, pads its frozen required
// arrivals), runs the full D/W loop on the subproblem warm-seeded from
// the resident sizing, and merges the cone's answer back.  The frozen
// boundary is an approximation — ring gates couple to frozen
// out-of-cone rows — so a deterministic reconciliation re-times the
// whole graph at the merged sizes: a missed target widens the cone by
// one fanin layer and retries once, then falls back to the full warm
// re-size.  Every decision (membership, widening, fallback) is a pure
// function of the session's served history, so the replay-determinism
// contract — a twin replaying the same sequence answers bit-identically
// — extends to cone-answered queries.
package core

import (
	"errors"

	"minflo/internal/tilos"
)

// errConeBoundary reports (internally) that a cone solve converged but
// the full-graph reconciliation missed the target: boundary arrivals
// drifted beyond what the frozen terminals promised (a ring gate's
// resize moved an out-of-cone driver's delay, or an out-of-cone gate
// coupled into the ring).
var errConeBoundary = errors.New("core: cone boundary reconciliation failed")

// resizeCone answers a Resize from the cone around the armed edit
// seeds.  Returns errSeedRejected when the full warm path should take
// over; coneFallbacks is counted here, at the decision site.
func (s *Session) resizeCone(seeds []int, T float64, checkAbort func() error) (*Result, error) {
	p := s.p
	// Frozen state: the resident seed sizes and their full-graph finish
	// times.  The retime is idempotent when the arrival engine already
	// sits at the seed (the common case after ApplyEdits' cone repair).
	x := append([]float64(nil), s.seedX...)
	s.sc.retime(p, x)
	finish := append([]float64(nil), s.sc.arr.FinishSlice()...)

	// Membership: forward cone of the edit, grown backward over the
	// vertices the new target forces to speed up — freezing those out
	// makes the cone shoulder repairs a full re-size would spread
	// across the whole violated path, which is where the cone-vs-full
	// area gap comes from.
	members := p.ConeMembersTimed(seeds, x, finish, T)
	// A cone covering most of the circuit solves nearly the full
	// problem plus extraction overhead — no win to chase.
	if 2*len(members) > p.NumSizable {
		s.coneFallbacks++
		return nil, errSeedRejected
	}

	res, err := s.coneAttempt(members, x, finish, T, checkAbort)
	if errors.Is(err, errConeBoundary) {
		// Deterministic reconciliation: widen once (members ∪ their
		// fanins, re-closed), then give up on the cone.
		s.coneWidenings++
		members = p.WidenMembers(members)
		if 2*len(members) > p.NumSizable {
			s.coneFallbacks++
			return nil, errSeedRejected
		}
		res, err = s.coneAttempt(members, x, finish, T, checkAbort)
	}
	if errors.Is(err, errConeBoundary) || errors.Is(err, errSeedRejected) {
		s.coneFallbacks++
		return nil, errSeedRejected
	}
	if err == nil && res != nil {
		// Boundary refinement (one Gauss–Seidel sweep): the first pass
		// solved against arrivals frozen BEFORE the cone moved, so once
		// in-cone ancestors speed up, re-entrant virtual-PI arrivals are
		// stale-pessimistic and the merged answer carries slack it could
		// not sell.  Re-extract against the merged timing (coneAttempt
		// left the arrival engine at res.X) and re-solve seeded from the
		// merged sizes; keep the refinement only when it is feasible and
		// strictly cheaper.  Aborts surface with the pass-1 answer as
		// the best-so-far partial, per the Resize contract.
		finish2 := append([]float64(nil), s.sc.arr.FinishSlice()...)
		// Membership is recomputed at the merged timing: the first pass
		// may have exposed macroscopic slack in a region it could not
		// touch, and the freed-slack recruitment only sees that region
		// once the new finish times are in.
		members2 := p.ConeMembersTimed(seeds, res.X, finish2, T)
		if 2*len(members2) > p.NumSizable {
			return res, err
		}
		res2, err2 := s.coneAttempt(members2, res.X, finish2, T, checkAbort)
		switch {
		case err2 == nil && res2 != nil && res2.Area < res.Area:
			res2.Iterations += res.Iterations
			res = res2
		case err2 != nil && (isAbortErr(err2) || errors.Is(err2, ErrEngineFailed)):
			res.Partial = true
			return res, err2
		}
	}
	return res, err
}

// coneAttempt extracts, solves and reconciles one cone.  On success the
// returned Result is in full-problem coordinates (merged sizes,
// full-graph CP and area).  errConeBoundary asks for a widened retry,
// errSeedRejected for the full warm fallback; abort errors return the
// merged best-so-far as a partial Result per the Resize contract.
func (s *Session) coneAttempt(members []int, xFull, finish []float64, T float64, checkAbort func() error) (*Result, error) {
	p := s.p
	cone, err := p.ExtractCone(members, xFull, finish, T)
	if err != nil {
		return nil, errSeedRejected
	}
	subOpt := s.opt
	subOpt.EditConeResize = false
	subOpt.Parallelism = s.sc.par
	// Pin the sub-session to the parent's resolved flow engine: a
	// calibration probe inside the cone would decide on wall time and
	// break replay determinism.  A seeded session has solved at least
	// once, so the resolved name exists; bail out rather than risk an
	// unpinned probe if it somehow doesn't.
	subOpt.FlowEngine = s.sc.sys.FlowEngineName()
	if subOpt.FlowEngine == "" {
		subOpt.FlowEngine = s.sc.engine
	}
	if subOpt.FlowEngine == "" {
		return nil, errSeedRejected
	}
	sub, err := NewSession(cone.Sub, subOpt)
	if err != nil {
		return nil, errSeedRejected
	}
	defer sub.Close()
	// Inject the warm seed — the cone's slice of the resident sizing at
	// the same target — and the parent's EWMA so the blowout gate
	// judges the cone against the session's usual iteration counts.
	copy(sub.seedX, cone.SeedSizes(xFull))
	sub.seedT = T
	sub.seedValid = true
	// The edit's perturbation (folded into the parent's trust-region
	// ledger by ApplyEdits) sizes the sub-solve's budget window: with it
	// left at zero the window opens at the floor and the greedy TILOS
	// repair of the violated seed is never walked back — measured ~1%
	// area above the cone's own restricted optimum.
	sub.seedWPerturb = s.seedWPerturb
	sub.ewmaIters, sub.ewmaSeeded = s.ewmaIters, s.ewmaSeeded
	// Thread the parent's abort sources.  The flow-work budget stays
	// disarmed: its cumulative counter belongs to the parent's system.
	sub.sc.ctx = s.sc.ctx
	sub.sc.deadline = s.sc.deadline

	subRes, serr := sub.resizeSeeded(T, checkAbort)
	if serr != nil && !isAbortErr(serr) && !errors.Is(serr, ErrEngineFailed) {
		// errSeedRejected or a numerical corner: the cone could not
		// refine from the resident sizing.
		return nil, errSeedRejected
	}
	if subRes == nil {
		return nil, serr
	}
	// Merge into the full vector and reconcile.  The authoritative
	// check is the full-graph re-time at the merged sizes — it sees
	// every residual coupling the frozen boundary approximated away.
	xm := append([]float64(nil), xFull...)
	cone.MergeSizes(xm, subRes.X)
	cp := s.sc.retime(p, xm)
	for k := range subRes.Stats {
		subRes.Stats[k].Seed = SeedCone
	}
	out := &Result{
		X:          xm,
		Area:       p.Area(xm),
		CP:         cp,
		Iterations: subRes.Iterations,
		Stats:      subRes.Stats,
		Seed:       SeedCone,
		ConeGates:  len(members),
	}
	if serr != nil {
		// Abort or engine failure mid-cone: the merged best-so-far
		// answer with the typed error, per the Resize contract.
		out.Partial = true
		return out, serr
	}
	if cp > T*(1+1e-9) {
		if cp > T*(1+coneDriftTol) {
			// A real miss — typically the cone slowed a gate whose
			// arrival a re-entrant out-of-cone path depends on, beyond
			// what the frozen virtual-PI arrivals promised.  Patching it
			// with greedy full-graph TILOS bumps costs measurably more
			// area than a wider cone's balanced answer: escalate.
			return nil, errConeBoundary
		}
		// Micro-drift: re-sized ring gates perturbed out-of-cone rows
		// coupled to them (delay(i) includes a_ij·x_j for in-cone
		// fanouts j), so the full graph lands a hair past T even though
		// the cone met its own target.  Repair with TILOS moves from the
		// merged sizes — the same deterministic repair a violating warm
		// seed gets — and escalate only if even that misses.
		tr, terr := tilos.SizeWith(p, T, xm, s.opt.Tilos, s.sc.arr, s.sc.dBase)
		if terr != nil {
			return nil, errConeBoundary
		}
		xm = tr.X
		cp = s.sc.retime(p, xm)
		out.X = xm
		out.Area = p.Area(xm)
		out.CP = cp
		if cp > T*(1+1e-9) {
			return nil, errConeBoundary
		}
	}
	return out, nil
}

// coneDriftTol separates repairable micro-drift (residual ring→row
// coupling: the merged sizes land within a hair of the target and a
// few TILOS bumps close it) from a real reconciliation miss that needs
// a wider cone.  Relative to the target.
const coneDriftTol = 5e-4
