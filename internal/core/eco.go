// ECO edits on warm sessions: apply netlist edit deltas to the
// resident optimizer state instead of tearing the session down and
// rebuilding from source.
//
// The layering: dag.Eco patches the problem (coefficients, CSR, graph)
// with state-patch exactness — the patched state is bit-identical to a
// fresh build plus replay of the edit history — and this file decides
// what the *session* keeps across the patch.  Value edits (retype,
// load) leave the DAG alone, so the flow network, constraint topology
// and solvers stay warm and only the arrival engine is repaired
// cone-locally (sta.SetDelays repropagates exactly the forward cone of
// the changed rows; arrivals outside it are untouched — the "frozen
// boundary" this machinery realizes).  Structural edits (rewire)
// change the DAG, which the dcs constraint system cannot re-topologize
// in place, so the D-phase scratch is rebuilt; the trust-region seed
// (the previous converged sizing) survives either way, with the edit's
// critical-path and area-weight perturbation folded into the same
// ledger that gates seeding — unless the edit's timing cone exceeds
// Options.EditConeBudget, in which case the seed is dropped and the
// next Resize runs cold (the counted "edit fallback").
//
// Determinism: every decision here — cone size, budget comparison,
// perturbation folding — is a pure function of the session's served
// history (queries + edits), never of wall time, so the Session replay
// contract extends verbatim to histories containing edits: a twin
// session replaying the same sequence answers every query
// bit-identically.  Edit-then-Resize is additionally bit-identical to
// rebuild-then-Resize on a cold session (no prior queries): both sides
// hold bit-identical problem state by the exactness contract and both
// run the cold TILOS path (TestEcoEditResizeColdConformance).
package core

import (
	"errors"
	"math"

	"minflo/internal/dag"
)

// NewEcoSession builds a warm session over an editable netlist: a
// NewSession on e.P whose ApplyEdits patches the resident state in
// place.  The Eco (and its circuit) is owned by the session — callers
// must not mutate either directly.
func NewEcoSession(e *dag.Eco, opt Options) (*Session, error) {
	s, err := NewSession(e.P, opt)
	if err != nil {
		return nil, err
	}
	s.eco = e
	return s, nil
}

// EditReport describes one ApplyEdits outcome.
type EditReport struct {
	// Structural marks a batch containing a rewire: the problem's DAG
	// changed and was rebuilt.
	Structural bool
	// Rebuilt marks batches that rebuilt the D-phase scratch (flow
	// network, constraint system, solvers): every structural batch, and
	// value batches only when the cone-budget fallback fired.
	Rebuilt bool
	// Fallback marks a batch whose timing cone exceeded
	// Options.EditConeBudget: the trust-region seed was dropped and the
	// scratch rebuilt, so the next Resize runs the cold path.
	Fallback bool
	// SeedKept reports whether the trust-region seed survived.
	SeedKept bool
	// GateSetChanged marks a batch containing gate adds/removes: gate
	// indices remapped, resident sizes and the warm seed are void, and
	// the cone covers everything (ConeFrac is 1).
	GateSetChanged bool
	// ConeGates counts the sizable vertices inside the forward timing
	// cone of the edit (the vertices whose arrivals may move);
	// ConeFrac is that count over all sizable vertices.
	ConeGates int
	ConeFrac  float64
	// ChangedRows counts the delay-coefficient rows the batch touched.
	ChangedRows int
	// ConeResizePending reports that the batch armed a cone-local
	// re-size (Options.EditConeResize): the next in-trust-region Resize
	// will be answered from the cone subproblem around the accumulated
	// edit seeds.
	ConeResizePending bool
	// CP is the post-edit critical path at the session's current sizes
	// (the previous converged sizing, or minimum sizes before any).
	CP float64
}

// Edits reports how many successful ApplyEdits batches the session has
// absorbed; EditFallbacks counts those that exceeded the cone budget
// and dropped the warm seed.
func (s *Session) Edits() int         { return s.editCount }
func (s *Session) EditFallbacks() int { return s.editFallbacks }

// ApplyEdits applies a netlist edit batch to the resident state.  The
// batch is atomic: validation failures (unknown cell, arity mismatch,
// dangling driver, a rewire creating a cycle or leaving a gate driving
// nothing) return an error with the session bit-identical to never
// having received the batch.  On success the report describes what was
// invalidated and whether the next Resize still runs warm.
func (s *Session) ApplyEdits(edits []dag.Edit) (*EditReport, error) {
	if s.closed {
		return nil, errors.New("core: ApplyEdits on closed Session")
	}
	if s.eco == nil {
		return nil, errors.New("core: session has no editable netlist (use NewEcoSession)")
	}
	cpBefore := s.sc.arr.CP()
	// Current sizes: the seed when one exists, else minimum — captured
	// before the problem pointer can change under a structural rebuild.
	x := s.p.InitialSizes()
	if s.seedValid {
		copy(x, s.seedX)
	}

	delta, err := s.eco.Apply(edits)
	if err != nil {
		return nil, err
	}
	s.editCount++
	s.p = s.eco.P // identical pointer unless the batch was structural

	if delta.GateSetChanged {
		// Adds/removes remap gate indices: the captured sizes and the
		// warm seed are meaningless in the new index space.  Restart
		// the resident state from minimum sizes and invalidate the
		// seed regardless of any cone budget.
		x = s.p.InitialSizes()
		s.seedX = make([]float64, s.p.NumSizable)
		s.seedValid = false
	}

	// Forward timing cone of the edited vertices: the arrivals (and
	// hence the re-sizing pressure) outside it cannot move.  A gate-set
	// change has no per-row delta — the damage is honestly global.
	cone := s.p.NumSizable
	if !delta.GateSetChanged {
		reach := s.p.G.Reachable(delta.Seeds)
		cone = 0
		for v := 0; v < s.p.NumSizable; v++ {
			if reach[v] {
				cone++
			}
		}
	}
	rep := &EditReport{
		Structural:     delta.Structural,
		GateSetChanged: delta.GateSetChanged,
		ConeGates:      cone,
		ConeFrac:       float64(cone) / float64(maxInt(1, s.p.NumSizable)),
		ChangedRows:    len(delta.ChangedRows),
	}
	rep.Fallback = s.opt.EditConeBudget > 0 && rep.ConeFrac > s.opt.EditConeBudget

	if delta.Structural || rep.Fallback {
		// The constraint system has no API to move constraint endpoints
		// (structural), and an over-budget cone invalidates most of the
		// warm flow state anyway: rebuild the D-phase scratch on the
		// current problem.  Auto-engine sessions recalibrate here (the
		// same non-reproducibility "auto" is documented to have);
		// pinned engines stay pinned.
		s.aug = s.p.Augment()
		sc2, serr := newIterScratch(s.p, s.aug, x, s.sc.engine, s.sc.par)
		if serr != nil {
			return nil, serr
		}
		s.sc.close()
		s.sc = sc2
		rep.Rebuilt = true
	} else {
		// Cone-local arrival repair: recompute the changed rows' delays
		// at the current sizes and repropagate only their forward cone —
		// arrivals on the boundary and beyond stay frozen.
		csr := s.p.CSR()
		dv := make([]float64, len(delta.ChangedRows))
		for k, v := range delta.ChangedRows {
			dv[k] = csr.Delay(v, x[v], x)
		}
		s.sc.arr.SetDelays(delta.ChangedRows, dv)
	}

	if rep.Fallback {
		s.seedValid = false
		s.editFallbacks++
	} else if s.seedValid {
		// The seed survives; fold the edit's perturbation — timing move
		// at the seed sizes, plus any area-weight change (retype, or a
		// structural rebuild resetting sticky weights) — into the same
		// ledger weight edits use, so the trust-region admission check
		// and the seeded window scaling see edits with no extra policy.
		rel := delta.MaxWRel
		if cpBefore > 0 {
			if r := math.Abs(s.sc.arr.CP()-cpBefore) / cpBefore; r > rel {
				rel = r
			}
		}
		if rel > s.seedWPerturb {
			s.seedWPerturb = rel
		}
	}
	// Arm (or disarm) the cone-local re-size.  Only a value-only batch
	// that kept the seed leaves the frozen-boundary premise intact:
	// structural rebuilds and fallbacks moved timing globally, and a
	// gate-set change voided the index space.  Seeds accumulate across
	// batches (sorted union) so several small edits before one query
	// still resolve to a single cone.
	if s.opt.EditConeResize && !delta.Structural && !rep.Fallback && s.seedValid {
		s.pendingCone = mergeSortedInts(s.pendingCone, delta.Seeds)
		rep.ConeResizePending = true
	} else {
		s.pendingCone = nil
	}
	rep.SeedKept = s.seedValid
	rep.CP = s.sc.arr.CP()
	return rep, nil
}

// mergeSortedInts returns the sorted union of two ascending slices.
func mergeSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
