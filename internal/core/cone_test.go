package core

import (
	"context"
	"math/rand"
	"testing"

	"minflo/internal/circuit"
	"minflo/internal/dag"
	"minflo/internal/gen"
	"minflo/internal/sta"
)

// valueOnlyBatch generates 1–2 load edits biased toward high-indexed
// (near-output) gates, whose forward cones are small — the regime
// cone-local re-sizing exists for.
func valueOnlyBatch(c *circuit.Circuit, rng *rand.Rand) []dag.Edit {
	n := 1 + rng.Intn(2)
	batch := make([]dag.Edit, 0, n)
	for len(batch) < n {
		// Bias toward the last quarter of the index space.
		span := c.NumGates()/4 + 1
		gi := c.NumGates() - 1 - rng.Intn(span)
		batch = append(batch, dag.Edit{Op: dag.EditLoad, Gate: gi, LoadFF: 0.3 + 1.2*rng.Float64()})
	}
	return batch
}

// TestConeResizeConformance is the ISSUE's acceptance suite for the
// tentpole: across 110 random netlists, a session answering post-edit
// queries from the cone subproblem (EditConeResize) must
//   - meet the timing spec under an independent full STA of the merged
//     sizes (boundary arrivals honored — no frozen-boundary cheating),
//   - land within coneAreaTol relative area of the full warm re-size,
//   - answer bit-identically to a twin replaying the same history
//     (replay determinism extends to cone-answered queries).
//
// Cones covering more than half the circuit fall back to the full warm
// path by design; the suite asserts the cone path actually fired on a
// healthy fraction so the checks above exercise real cone answers.
//
// The area tolerance sits above the seedless drift bound (1e-3): both
// sides here are *seeded* trajectories, and the session contract bounds
// seeded warm-vs-cold drift at 2e-2 (see the session.go header).  The
// measured cone-vs-full gap distributes within ±5e-3 — with the cone
// strictly cheaper on some instances — even when both answer from a
// bit-identical resident seed, so the residue is mutual trajectory
// drift of two approximate seeded solvers, not a cone-scoping loss.
func TestConeResizeConformance(t *testing.T) {
	const coneAreaTol = 5e-3
	optCone := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.1, EditConeResize: true}
	optFull := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.1}

	coneAnswered, verified := 0, 0
	for inst := 0; inst < 110; inst++ {
		rng := rand.New(rand.NewSource(int64(9100 + inst)))
		c := gen.RandomLogic(4+rng.Intn(5), 12+rng.Intn(24), int64(inst))

		mk := func(opt Options) *Session {
			s, err := NewEcoSession(mustEco(t, c.Clone()), opt)
			if err != nil {
				t.Fatalf("inst %d: %v", inst, err)
			}
			return s
		}
		sess, twin, full := mk(optCone), mk(optCone), mk(optFull)

		tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
		T := 0.75 * tmin
		seeded := true
		for _, s := range []*Session{sess, twin, full} {
			if _, err := s.Resize(context.Background(), T, Budgets{}); err != nil {
				seeded = false
			}
		}
		if !seeded {
			sess.Close()
			twin.Close()
			full.Close()
			continue // infeasible at this target; rare and uninteresting here
		}

		// Two edit rounds per instance: seeds accumulate realistically.
		for round := 0; round < 2; round++ {
			batch := valueOnlyBatch(c, rng)
			for _, s := range []*Session{sess, twin, full} {
				if _, err := s.ApplyEdits(batch); err != nil {
					t.Fatalf("inst %d round %d: %v", inst, round, err)
				}
			}
			ra, errA := sess.Resize(context.Background(), T, Budgets{})
			rb, errB := twin.Resize(context.Background(), T, Budgets{})
			rf, errF := full.Resize(context.Background(), T, Budgets{})
			if (errA == nil) != (errB == nil) {
				t.Fatalf("inst %d round %d: twin error divergence: %v vs %v", inst, round, errA, errB)
			}
			if errF != nil {
				// The edit made the target infeasible for the full path
				// too; the cone side must agree rather than fabricate an
				// answer from a frozen boundary.
				if errA == nil {
					t.Fatalf("inst %d round %d: cone answered (seed %q) where full path failed: %v",
						inst, round, ra.Seed, errF)
				}
				continue
			}
			if errA != nil {
				t.Fatalf("inst %d round %d: cone session failed where full succeeded: %v", inst, round, errA)
			}

			// Replay determinism across cone answers.
			if !bitEqual(ra.X, rb.X) || ra.Area != rb.Area || ra.CP != rb.CP || ra.Iterations != rb.Iterations {
				t.Fatalf("inst %d round %d: twin replay diverged (seed %q vs %q)", inst, round, ra.Seed, rb.Seed)
			}

			// Independent full STA at the merged sizes: the answer must
			// meet spec on the whole graph, not just inside the cone.
			tm, err := sta.Analyze(sess.p.G, sess.p.Delays(ra.X))
			if err != nil {
				t.Fatalf("inst %d round %d: %v", inst, round, err)
			}
			if tm.CP > T*(1+1e-9) {
				t.Fatalf("inst %d round %d: cone answer (seed %q) violates spec: full-STA CP %.17g > target %.17g",
					inst, round, ra.Seed, tm.CP, T)
			}
			if tm.CP != ra.CP {
				t.Fatalf("inst %d round %d: reported CP %.17g disagrees with independent STA %.17g",
					inst, round, ra.CP, tm.CP)
			}

			// Area within coneAreaTol relative of the full warm re-size.
			if rel := (ra.Area - rf.Area) / rf.Area; rel > coneAreaTol || rel < -coneAreaTol {
				t.Fatalf("inst %d round %d: cone area %.17g vs full warm %.17g (rel %+g) beyond %g",
					inst, round, ra.Area, rf.Area, rel, coneAreaTol)
			}
			verified++
			if ra.Seed == SeedCone {
				coneAnswered++
			}
		}
		sess.Close()
		twin.Close()
		full.Close()
	}
	if verified < 150 {
		t.Fatalf("suite verified only %d rounds", verified)
	}
	if coneAnswered < 40 {
		t.Fatalf("cone path answered only %d/%d rounds — the suite is not exercising cone answers", coneAnswered, verified)
	}
	t.Logf("cone conformance: %d rounds verified, %d answered from the cone", verified, coneAnswered)
}

// TestConeResizeCounters walks the observable cone lifecycle on one
// netlist: arming on a value edit, a cone-answered query with counters
// and Result fields set, disarming by a weight change (re-pricing
// voids the frozen-boundary premise), and no arming when the feature
// is off.
func TestConeResizeCounters(t *testing.T) {
	opt := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.1, EditConeResize: true}
	sess, err := NewEcoSession(mustEco(t, gen.RippleAdder(16, gen.FABuffered)), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
	T := 0.6 * tmin
	if _, err := sess.Resize(context.Background(), T, Budgets{}); err != nil {
		t.Fatal(err)
	}

	// A load bump on the bit-0 sum output: its forward cone is just the
	// driver itself, and the ample slack on that shallow path absorbs
	// the bump without violating upstream vertices — so the membership
	// growth (which honestly recruits the whole carry chain for an edit
	// on the critical output) stays local here.
	gate := sess.eco.C.POs[0].Index
	rep, err := sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: gate, LoadFF: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConeResizePending {
		t.Fatalf("value edit did not arm the cone: %+v", rep)
	}
	r, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != SeedCone {
		t.Fatalf("expected cone-answered query, got seed %q (fallbacks %d)", r.Seed, sess.ConeFallbacks())
	}
	if r.ConeGates <= 0 || r.ConeGates > sess.NumSizable()/2 {
		t.Fatalf("cone size %d out of range (sizable %d)", r.ConeGates, sess.NumSizable())
	}
	if sess.ConeResizes() != 1 {
		t.Fatalf("ConeResizes %d, want 1", sess.ConeResizes())
	}
	// The cone is consumed: an immediate repeat runs the plain warm path.
	r2, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seed == SeedCone {
		t.Fatal("cone answered twice from one arming")
	}

	// A weight change between edit and query disarms the cone.
	rep, err = sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: gate, LoadFF: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConeResizePending {
		t.Fatalf("second value edit did not arm: %+v", rep)
	}
	if err := sess.SetAreaWeight(0, 2); err != nil {
		t.Fatal(err)
	}
	r3, err := sess.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Seed == SeedCone {
		t.Fatal("weight change did not disarm the pending cone")
	}

	// Feature off: same edit shape never arms.
	off, err := NewEcoSession(mustEco(t, gen.RippleAdder(16, gen.FABuffered)),
		Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Resize(context.Background(), T, Budgets{}); err != nil {
		t.Fatal(err)
	}
	repOff, err := off.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: gate, LoadFF: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if repOff.ConeResizePending {
		t.Fatal("cone armed with EditConeResize off")
	}
	rOff, err := off.Resize(context.Background(), T, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.Seed == SeedCone || off.ConeResizes() != 0 {
		t.Fatalf("cone path ran with the feature off (seed %q)", rOff.Seed)
	}
}
