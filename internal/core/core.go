// Package core implements the MINFLOTRANSIT optimizer (paper §2.4):
// an initial TILOS sizing followed by alternating D-phases (delay
// budget redistribution via the min-cost-flow dual of an FSDU
// displacement LP) and W-phases (minimum-area sizing for the budgets
// via a Simple Monotonic Program), iterated until the area improvement
// is negligible.
//
// The D-phase constraint network has a fixed topology for the life of a
// problem (one window-constraint pair and one objective term per
// sizable vertex, one causality constraint per non-self edge of the
// augmented DAG), so Size builds the dcs.System exactly once and each
// iteration only rewrites weights and coefficients in place — the
// flow network underneath is likewise built once and warm-started
// (see internal/dcs and internal/mcmf).  Per-iteration scratch
// (delay vectors, budgets, windows) is preallocated, and the post-
// W-phase retiming runs on a persistent incremental sta.Arrivals
// engine instead of a full analysis per iteration.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"minflo/internal/balance"
	"minflo/internal/dag"
	"minflo/internal/dcs"
	"minflo/internal/lin"
	"minflo/internal/mcmf"
	"minflo/internal/par"
	"minflo/internal/smp"
	"minflo/internal/sta"
	"minflo/internal/tilos"
)

// calibrationEngines are the candidates the "auto" policy probes on a
// problem's first D-phase solve (dcs hands them to
// mcmf.CalibrateEngines; ties break toward earlier entries, so the
// previously measured serial winner "dial" leads).  The speculative
// "parallel" backend stays opt-in — its measured ~8% warm speculation
// survival (EXPERIMENTS.md "Intra-run parallelism") makes it a poor
// default probe — while "cspar", whose bulk-synchronous phases are
// order-insensitive, competes in the probe at whatever worker budget
// the run configured.
var calibrationEngines = []string{"dial", "ssp", "cspar"}

// CalibrationEngines returns the engines the auto policy probes
// (a copy; the order encodes the tie-break prior).
func CalibrationEngines() []string {
	return append([]string(nil), calibrationEngines...)
}

// ResolveFlowEngine maps an Options.FlowEngine value to a concrete
// mcmf backend name.  "" and "auto" return "" — the caller runs the
// startup calibration probe (CalibrationEngines timed on the first
// D-phase solve, winner kept per problem) instead of the PR-3 era
// hardwired 128-vertex dial floor; anything else must be a registered
// engine and is pinned for the whole run.  n and par are accepted so
// the policy can consult problem size and worker budget again if
// measurements ever justify a static shortcut.
func ResolveFlowEngine(name string, n, par int) (string, error) {
	_, _ = n, par
	switch name {
	case "", "auto":
		return "", nil
	default:
		if !mcmf.ValidEngine(name) {
			return "", fmt.Errorf("core: unknown flow engine %q (have auto, %v)", name, mcmf.EngineNames())
		}
		return name, nil
	}
}

// ErrInfeasible is returned when no sizing meets the delay target.
var ErrInfeasible = errors.New("core: delay target unreachable")

// Abort taxonomy, aliased from the flow layer so errors.Is works
// across layers: SizeCtx returns these (possibly wrapped) when a run
// is cut short, always together with a best-so-far partial Result.
var (
	// ErrCanceled reports that the SizeCtx context was canceled.
	ErrCanceled = mcmf.ErrCanceled
	// ErrBudgetExhausted reports that Options.Budget (wall clock) or
	// Options.FlowWorkBudget (flow work) ran out.
	ErrBudgetExhausted = mcmf.ErrBudgetExhausted
	// ErrEngineFailed wraps a flow-engine panic that could not be
	// recovered by the ssp fallback chain.
	ErrEngineFailed = mcmf.ErrEngineFailed
)

// isAbortErr reports whether err cut the run short on behalf of the
// caller (cancellation or an exhausted budget, at any layer) — the
// errors Size answers with a partial best-so-far Result.
func isAbortErr(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options tune the optimizer. Zero values select defaults.
type Options struct {
	// Window is the relative budget window η: each D-phase may move a
	// vertex's delay budget by at most ±η·delay (paper §2.3.1 step 3
	// requires MINΔD/MAXΔD "small" for Taylor validity — the first-order
	// area prediction misses by O(η²), so large windows overshoot).
	// Default 0.1.
	Window float64
	// MinWindow is the smallest window the adaptive schedule may shrink
	// to; the window halves after a non-improving iteration (the
	// first-order model overshot) and relaxes back on success.
	// Default Window/32.
	MinWindow float64
	// MaxIters bounds the D/W iterations (paper §3 reports "a few tens",
	// ≤100 on the steepest curve segments). Default 100.
	MaxIters int
	// Patience stops after this many consecutive non-improving
	// iterations. Default 3.
	Patience int
	// AreaTol is the relative area improvement considered negligible
	// (the paper's stopping rule). Default 1e-4.
	AreaTol float64
	// CostScale / SupplyScale integerize the D-phase flow (paper's
	// power-of-10 scaling). Defaults 1e6 / 1e4.
	CostScale, SupplyScale float64
	// FlowEngine selects the D-phase min-cost-flow backend by mcmf
	// registry name ("ssp", "dial", "costscaling", "cspar",
	// "parallel").  Empty or "auto" runs the startup calibration
	// probe instead: the first D-phase solve times one cold solve per
	// candidate (CalibrationEngines) and keeps the per-problem winner
	// — IterStats.FlowEngine reports it.  The probe decides on wall
	// time, so auto runs on a noisy host may keep different (equally
	// optimal) backends across repetitions; pin an engine when the
	// exact solution trajectory must be reproducible (the speculative
	// "parallel" backend is opt-in, see ResolveFlowEngine).
	FlowEngine string
	// Parallelism is the intra-run worker budget: the W-phase level
	// sweeps, the sensitivity solves and the "parallel" flow backend
	// all draw from it.  0 defaults to GOMAXPROCS; 1 forces a fully
	// serial run.  Results are bit-identical at every setting — the
	// parallel paths are pinned to their serial twins by the
	// determinism suite — and small problems fall back to serial
	// below measured size floors regardless.
	Parallelism int
	// Budget, when positive, bounds the wall-clock time of the whole
	// run: the deadline is sampled between iterations and inside the
	// flow engines' poll loops, and exceeding it returns the
	// best-so-far sizing as a partial Result with ErrBudgetExhausted.
	Budget time.Duration
	// FlowWorkBudget, when positive, caps the cumulative D-phase flow
	// work (in mcmf poll operations — augmentations, discharges,
	// Bellman–Ford rounds) across the run; exceeding it returns a
	// partial Result with ErrBudgetExhausted.
	FlowWorkBudget int64
	// NoEngineFallback disables the flow layer's graceful degradation
	// (retrying a failed engine's solve on the ssp reference backend):
	// an unrecovered engine failure then surfaces as ErrEngineFailed
	// with a best-so-far partial Result instead of being absorbed.
	// Long-lived session owners (internal/serve) use this in fault
	// drills to exercise their quarantine-and-rebuild path; the
	// default (false) keeps the PR-6 always-fallback behavior.
	NoEngineFallback bool
	// TrustRegion, when positive, enables warm seeding on Session
	// Resize: a query whose target moved at most TrustRegion relative
	// to the previous clean answer (and whose area weights were edited
	// by at most TrustRegion relative since) starts the D/W loop from
	// that answer instead of a TILOS restart.  Result.Seed reports the
	// start point taken; non-convergence (iteration blowout vs the
	// session's EWMA) falls back to the cold path transparently.  With
	// seeding on, answers are deterministic given the session's query
	// history rather than per-query — see the Session docs.  0 (the
	// default) keeps the per-query cold contract.  One-shot SizeCtx
	// runs have no history, so the field only matters for Sessions.
	TrustRegion float64
	// EditConeBudget bounds how much of the circuit an ECO edit batch
	// (Session.ApplyEdits) may invalidate while keeping the warm start:
	// when the forward timing cone of the edited vertices exceeds this
	// fraction of the sizable vertices, the session drops its
	// trust-region seed and rebuilds the D-phase scratch cold — a cone
	// that wide invalidates most of the resident state anyway, and the
	// stale seed would mispredict across it.  Default 0.25; negative
	// disables the fallback (edits never drop the seed).  Only consulted
	// on sessions with an editable netlist (NewEcoSession).
	EditConeBudget float64
	// EditConeResize, when set on a session with an editable netlist,
	// answers the Resize after a value-only edit batch from a
	// cone-scoped subproblem instead of the full circuit: the edit's
	// forward cone (closed under the coupling transpose) is extracted
	// against frozen boundary arrivals (dag.ExtractCone), solved with
	// the full D/W loop warm-seeded from the resident sizing, and
	// merged back.  A deterministic reconciliation re-times the full
	// graph at the merged sizes; a missed target widens the cone once
	// and then falls back to the full warm re-size.  Requires
	// TrustRegion > 0 (the cone solve is a refinement of the resident
	// answer; without a seed there is nothing to freeze against).
	// Result.Seed reports SeedCone when the cone answered.  All
	// decisions are pure functions of session history, preserving the
	// replay-determinism contract.
	EditConeResize bool
	// Tilos configures the initial-guess run.
	Tilos tilos.Options
	// SkipTilos starts from minimum sizes when the target is already met
	// there (used by tests); otherwise TILOS provides the start point.
	SkipTilos bool
	// OnIteration, when non-nil, receives per-iteration statistics.
	OnIteration func(IterStats)
}

// IterStats traces one D/W iteration.
type IterStats struct {
	Iter      int
	Area      float64 // area after the W-phase
	CP        float64 // critical path after the W-phase
	Objective float64 // D-phase LP objective (predicted first-order gain)
	Window    float64 // budget window η used this iteration
	Clamped   int     // W-phase vertices pinned at MaxSize
	Repaired  bool    // TILOS repair pass was needed
	// NetBuilds is the cumulative number of D-phase flow-network
	// constructions so far — 1 on every iteration when the build-once
	// reuse path is working (asserted by tests).
	NetBuilds int
	// FlowEngine is the mcmf backend the D-phase ran on this problem.
	FlowEngine string
	// FlowCalibrated reports whether that backend was chosen by the
	// startup calibration probe (Options.FlowEngine empty or "auto")
	// rather than pinned by the caller.
	FlowCalibrated bool
	// FlowResolves is the cumulative number of D-phase solves served by
	// the incremental re-flow (mcmf ResolveChanged repairing the
	// previous optimum) rather than a from-scratch solve — every
	// iteration after the first when the delta path is working
	// (asserted by tests).
	FlowResolves int
	// FlowFallbacks is the cumulative number of D-phase ResolveChanged
	// calls the engine served with a full solve instead (work-estimate
	// gate, missing prior flow, or price-range refusal).
	FlowFallbacks int
	// FlowEngineFailures is the cumulative number of flow-engine
	// failures (panics, price-range refusals) the fallback chain
	// recovered by degrading to the ssp reference engine (see mcmf
	// abort.go); 0 on every healthy run.
	FlowEngineFailures int
	// Seed is the start-point provenance of the run this iteration
	// belongs to: SeedTilos or SeedWarm (trust-region seeded).
	Seed string
}

// Start-point provenance values for Result.Seed / IterStats.Seed.
const (
	// SeedTilos marks a run started from the TILOS sizing (cold path —
	// the only start point before trust-region seeding existed).
	SeedTilos = "tilos"
	// SeedWarm marks a run started from the session's previous
	// converged sizing under the trust-region policy.
	SeedWarm = "warm"
	// SeedCone marks a Resize answered by a cone-scoped subproblem
	// solve against frozen boundary arrivals (Options.EditConeResize).
	SeedCone = "cone"
)

// Result is the final sizing.
type Result struct {
	X          []float64
	Area       float64
	CP         float64
	Iterations int
	// TilosX/TilosArea/TilosCP describe the initial TILOS solution the
	// optimizer started from (the paper's comparison baseline).
	TilosX    []float64
	TilosArea float64
	TilosCP   float64
	Stats     []IterStats
	// Partial marks a run cut short by cancellation or an exhausted
	// budget: X/Area/CP describe the best sizing from the last
	// completed D/W iteration (or the TILOS seed when none completed),
	// returned alongside the abort error.
	Partial bool
	// Seed reports the start point the run took: SeedTilos for the
	// cold path, SeedWarm for a trust-region-seeded Session Resize.
	// For warm runs TilosX/TilosArea/TilosCP describe the (possibly
	// TILOS-repaired) seed start point rather than a minimum-size
	// TILOS solution.
	Seed string
	// SeedFallback marks a cold run that first attempted a trust-
	// region seed and abandoned it (repair failure or EWMA iteration
	// blowout).
	SeedFallback bool
	// ConeGates counts the sizable vertices of the cone subproblem
	// when Seed == SeedCone (0 otherwise).
	ConeGates int
	// ConeFallback marks a run that attempted a cone-scoped re-size
	// and fell back to a full-circuit path (cone too wide, extraction
	// failure, or reconciliation missing the target after widening).
	ConeFallback bool
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 0.1
	}
	if o.MinWindow == 0 {
		o.MinWindow = o.Window / 32
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Patience == 0 {
		o.Patience = 5
	}
	if o.AreaTol == 0 {
		o.AreaTol = 1e-4
	}
	if o.EditConeBudget == 0 {
		o.EditConeBudget = 0.25
	}
	return o
}

// iterScratch holds everything the D/W iteration reuses across rounds:
// the build-once D-phase constraint system with its constraint and
// objective IDs, the timing engines, the persistent W-phase and
// sensitivity solvers (all three sharing the problem's delay.CSR), and
// all per-iteration buffers — so a steady-state iterate call performs
// zero heap allocations (asserted by TestIterateSteadyStateZeroAlloc).
type iterScratch struct {
	analyzer *sta.Analyzer // full timing over aug.G (balance needs RT)
	arr      *sta.Arrivals // incremental arrivals over p.G (post-W CP)
	allV     []int         // 0..p.G.N()-1, the SetDelays index vector

	balancer *balance.Balancer // FSDU configurations over aug.G
	smp      *smp.Solver       // W-phase engine over p.CSR()
	lin      *lin.Solver       // sensitivity engine over p.CSR()

	sys    *dcs.System
	engine string    // resolved mcmf backend name ("" = calibrate)
	calib  []string  // calibration candidates when engine == ""
	par    int       // intra-run worker budget (≥1, resolved)
	pool   *par.Pool // W-phase/sensitivity worker pool (nil when par == 1)
	loID   []int     // constraint r_i − r_dm ≤ …, per sizable vertex
	hiID   []int     // constraint r_dm − r_i ≤ …, per sizable vertex
	objID  []int     // objective term per sizable vertex
	edgeID []int     // constraint per augmented edge (-1 for self edges)

	selfEdge []bool // per augmented edge: is it i→Dmy(i)?

	// Abort plumbing (set by SizeCtx): the cancellation context and
	// wall-clock deadline threaded into the timing and flow layers,
	// and the cumulative flow-work budget.  Zero values disarm them.
	ctx        context.Context
	deadline   time.Time
	flowBudget int64

	dAug      []float64 // aug.G delay vector
	dBase     []float64 // p.G delay vector
	budgets   []float64
	minD      []float64
	newBudget []float64
	sens      []float64 // area sensitivities C_i
	newX      []float64 // W-phase output sizes
}

// newIterScratch builds the constraint-network topology once and
// preallocates the iteration buffers.  x0 seeds the incremental
// arrival engine.
func newIterScratch(p *dag.Problem, aug *dag.Augmented, x0 []float64, engine string, parallelism int) (*iterScratch, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	n := p.NumSizable
	sc := &iterScratch{
		engine:    engine,
		par:       parallelism,
		balancer:  balance.NewBalancer(aug.G),
		smp:       smp.NewSolver(p.CSR()),
		lin:       lin.NewSolver(p.CSR()),
		loID:      make([]int, n),
		hiID:      make([]int, n),
		objID:     make([]int, n),
		edgeID:    make([]int, aug.G.M()),
		selfEdge:  make([]bool, aug.G.M()),
		dAug:      make([]float64, aug.G.N()),
		dBase:     make([]float64, p.G.N()),
		budgets:   make([]float64, n),
		minD:      make([]float64, n),
		newBudget: make([]float64, n),
		sens:      make([]float64, n),
		newX:      make([]float64, n),
		allV:      make([]int, p.G.N()),
	}
	for v := range sc.allV {
		sc.allV[v] = v
	}
	if engine == "" {
		// Auto policy: the first D-phase solve runs the calibration
		// probe and keeps the per-problem winner.
		sc.calib = calibrationEngines
	}
	var err error
	if sc.analyzer, err = sta.NewAnalyzer(aug.G); err != nil {
		return nil, err
	}
	if sc.arr, err = sta.NewArrivals(p.G, p.DelaysInto(sc.dBase, x0)); err != nil {
		return nil, err
	}

	// D-phase constraint topology (weights are rewritten every round).
	sys := dcs.NewSystem(aug.G.N())
	for _, pi := range p.PIs {
		sys.Pin(pi)
	}
	sys.Pin(p.Sink)
	for i := 0; i < n; i++ {
		dm := aug.DmyOf[i]
		sc.selfEdge[aug.SelfEdge[i]] = true
		sc.loID[i] = sys.AddConstraint(i, dm, 0) // r_i − r_dm ≤ FSDU − MINΔD
		sc.hiID[i] = sys.AddConstraint(dm, i, 0) // r_dm − r_i ≤ MAXΔD − FSDU
		sc.objID[i] = sys.AddObjective(dm, i, 0)
	}
	for _, e := range aug.G.Edges() {
		if sc.selfEdge[e.ID] {
			sc.edgeID[e.ID] = -1
			continue
		}
		sc.edgeID[e.ID] = sys.AddConstraint(e.From, e.To, 0)
	}
	sc.sys = sys
	if sc.par > 1 {
		// One pool serves both level-parallel solvers.  Created last —
		// after every fallible step — so error returns above never
		// leak its parked worker goroutines; Size closes it (sc.close)
		// when the run finishes.
		sc.pool = par.New(sc.par)
		sc.smp.SetParallel(sc.pool)
		sc.lin.SetParallel(sc.pool)
	}
	return sc, nil
}

// close releases the scratch's worker pool (no-op for serial runs).
func (sc *iterScratch) close() { sc.pool.Close() }

// retime updates the incremental arrival engine to sizes x and returns
// the critical path.
func (sc *iterScratch) retime(p *dag.Problem, x []float64) float64 {
	sc.arr.SetDelays(sc.allV, p.DelaysInto(sc.dBase, x))
	return sc.arr.CP()
}

// Size runs MINFLOTRANSIT on problem p with critical-path target T.
func Size(p *dag.Problem, T float64, opt Options) (*Result, error) {
	return SizeCtx(context.Background(), p, T, opt)
}

// SizeCtx is Size with cancellation and budgets: the context and the
// Options.Budget deadline are polled between iterations and threaded
// into the timing and flow layers (per-augmentation granularity, see
// mcmf abort.go).  A run cut short returns the best sizing reached so
// far — the last completed D/W iteration, or the TILOS seed when none
// completed — as a Result with Partial set, together with ErrCanceled
// or ErrBudgetExhausted; only a run aborted before the TILOS seed
// exists returns a nil Result.
//
// SizeCtx is the one-shot form of a warm Session (session.go): it
// builds the session state, runs a single Resize and tears the state
// down.  Long-lived callers answering many queries on one problem
// keep the Session instead.
func SizeCtx(ctx context.Context, p *dag.Problem, T float64, opt Options) (*Result, error) {
	sess, err := NewSession(p, opt)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.Resize(ctx, T, Budgets{Budget: opt.Budget, FlowWorkBudget: opt.FlowWorkBudget})
}

// iterate performs one D-phase + W-phase round from sizes x with the
// given budget window, reusing the scratch's constraint network,
// persistent solvers and buffers; the round's sizes are left in
// sc.newX.  Steady-state rounds (no TILOS repair) allocate nothing.
func iterate(p *dag.Problem, aug *dag.Augmented, sc *iterScratch, x []float64, T, window float64, opt Options) (IterStats, error) {
	n := p.NumSizable
	d := aug.DelaysInto(sc.dAug, x)
	tm, err := sc.analyzer.AnalyzeCtx(sc.ctx, d)
	if err != nil {
		return IterStats{}, err
	}
	if tm.CP > T*(1+1e-9) {
		return IterStats{}, fmt.Errorf("core: entering D-phase with infeasible CP %g > %g", tm.CP, T)
	}
	// Make the slack window the distance to the target, not the current
	// CP, so the optimizer can trade slack right up to T.
	slackToTarget := T - tm.CP

	// D-phase (1): delay-balance the augmented DAG.
	cfg, err := sc.balancer.Balance(d, tm, balance.ALAP)
	if err != nil {
		return IterStats{}, err
	}
	// The sink collects all slack to the target: path potentials may
	// grow by up to slackToTarget beyond CP. Model it by adding the
	// spare slack onto the sink's incoming FSDUs.
	for _, e := range aug.G.In(aug.Base.Sink) {
		cfg.FSDU[e] += slackToTarget
	}

	// D-phase (2): area sensitivities C_i (eq. 7).
	budgets := sc.budgets
	copy(budgets, d[:n])
	C := sc.sens
	if err := sc.lin.SensitivitiesInto(C, x, budgets, p.AreaW); err != nil {
		return IterStats{}, err
	}

	// D-phase (3)-(5): window constraints, causality, min-cost-flow
	// dual — weights and coefficients rewritten in place on the
	// build-once system.
	sys := sc.sys
	minD := sc.minD
	csr := p.CSR()
	for i := 0; i < n; i++ {
		se := aug.SelfEdge[i]
		selfF := cfg.FSDU[se]

		maxD := window * d[i]
		if maxD < selfF {
			maxD = selfF // keep r = 0 feasible
		}
		floor := csr.FloorAt(i, x, p.MaxSize)
		lo := floor - d[i] // most the budget may shrink and stay attainable
		if w := -window * d[i]; w > lo {
			lo = w
		}
		if lo > 0 {
			lo = 0
		}
		minD[i] = lo
		sys.SetWeight(sc.loID[i], selfF-lo)   // r_i − r_dm ≤ FSDU − MINΔD
		sys.SetWeight(sc.hiID[i], maxD-selfF) // r_dm − r_i ≤ MAXΔD − FSDU
		sys.SetObjectiveCoeff(sc.objID[i], C[i])
	}
	for _, e := range aug.G.Edges() {
		if id := sc.edgeID[e.ID]; id >= 0 {
			sys.SetWeight(id, cfg.FSDU[e.ID])
		}
	}
	sol, err := sys.SolveCtx(sc.ctx, dcs.Options{
		CostScale: opt.CostScale, SupplyScale: opt.SupplyScale,
		Engine: sc.engine, Calibrate: sc.calib, Parallelism: sc.par,
		Deadline: sc.deadline, WorkBudget: sc.flowBudget,
		// A flow-engine failure (panic, price-range refusal) degrades
		// to the ssp reference engine instead of killing the run;
		// IterStats.FlowEngineFailures counts the rescues.  Session
		// owners may disable the rescue to surface ErrEngineFailed.
		EngineFallback: !opt.NoEngineFallback,
	})
	if err != nil {
		return IterStats{}, fmt.Errorf("core: D-phase: %w", err)
	}

	// New budgets: ΔD_i = FSDU_r(i→Dmy(i)).
	newBudget := sc.newBudget
	for i := 0; i < n; i++ {
		dd := cfg.FSDU[aug.SelfEdge[i]] + sol.R[aug.DmyOf[i]] - sol.R[i]
		if dd < minD[i] {
			dd = minD[i] // numerical guard; constraints enforce this
		}
		newBudget[i] = d[i] + dd
		// Never let a budget drop to (or below) the intrinsic delay.
		if min := csr.Self[i] * (1 + 1e-9); newBudget[i] <= min {
			newBudget[i] = min + 1e-12
		}
	}

	// W-phase: minimum-area sizes for the new budgets.
	w, err := sc.smp.SolveInto(sc.newX, newBudget, p.MinSize, p.MaxSize, smp.Options{})
	if err != nil {
		return IterStats{}, fmt.Errorf("core: W-phase: %w", err)
	}
	newX := w.X

	// Re-time incrementally; repair with TILOS if MaxSize clamping broke
	// the target.
	st := IterStats{
		Objective:      sol.Objective,
		Clamped:        len(w.Clamped),
		NetBuilds:      sys.Builds(),
		FlowEngine:     sys.FlowEngineName(),
		FlowCalibrated: len(sc.calib) > 0,
		FlowResolves:   sys.FlowEngineStats().Resolves,
		FlowFallbacks:  sys.FlowEngineStats().FullFallbacks,
	}
	st.FlowEngineFailures = sys.FlowEngineFailures()
	cp := sc.retime(p, newX)
	if cp > T*(1+1e-9) {
		// Repair on the resident arrival engine (retime just left it at
		// newX's delays; SizeWith's bulk reseed is a no-op rewrite) —
		// bit-identical to a fresh tilos.Size, minus the engine build.
		tr, rerr := tilos.SizeWith(p, T, newX, opt.Tilos, sc.arr, sc.dBase)
		if rerr != nil {
			return IterStats{}, fmt.Errorf("core: repair failed: %w", rerr)
		}
		copy(sc.newX, tr.X)
		cp = sc.retime(p, sc.newX)
		st.Repaired = true
	}
	st.Area = p.Area(sc.newX)
	st.CP = cp
	return st, nil
}
