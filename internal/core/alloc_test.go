package core

import (
	"testing"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
	"minflo/internal/tilos"
)

// TestIterateSteadyStateZeroAlloc asserts the headline property of the
// W-phase/coupling-structure overhaul: once the per-problem scratch is
// built, a full D-phase + W-phase round (timing, balancing,
// sensitivities, min-cost-flow dual, SMP re-solve, incremental retime)
// performs zero heap allocations — on both SSP-family flow engines,
// now including the incremental ResolveChanged D-phase path.
func TestIterateSteadyStateZeroAlloc(t *testing.T) {
	for _, engine := range []string{"ssp", "dial"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			m := delay.NewModel(tech.Default013())
			p, err := dag.GateLevel(gen.C432(), m)
			if err != nil {
				t.Fatal(err)
			}
			tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
			if err != nil {
				t.Fatal(err)
			}
			T := 0.5 * tm.CP
			tr, err := tilos.Size(p, T, nil, tilos.Options{})
			if err != nil {
				t.Fatal(err)
			}
			x := tr.X
			aug := p.Augment()
			sc, err := newIterScratch(p, aug, x, engine, 1)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{}.withDefaults()

			// Warm up: let every reused slice reach steady-state capacity
			// (for dial this includes the bucket ring).
			for i := 0; i < 3; i++ {
				st, err := iterate(p, aug, sc, x, T, opt.Window, opt)
				if err != nil {
					t.Fatal(err)
				}
				if st.Repaired {
					t.Fatal("repair path hit during warmup; pick a workload without MaxSize clamping")
				}
			}

			allocs := testing.AllocsPerRun(10, func() {
				if _, err := iterate(p, aug, sc, x, T, opt.Window, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state D/W iteration allocates %.1f objects per round, want 0", allocs)
			}
			if st := sc.sys.FlowEngineStats(); st.Resolves == 0 {
				t.Fatal("steady-state iterations never took the incremental re-flow path")
			}
		})
	}
}

// TestIterateZeroAllocTransistorLevel repeats the assertion on a
// transistor-level problem, where the SMP blocks are non-trivial and
// the dense in-place LU path of lin is exercised.
func TestIterateZeroAllocTransistorLevel(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.TransistorLevel(gen.RippleAdder(4, gen.FAXor), m)
	if err != nil {
		t.Fatal(err)
	}
	if p.CSR().MaxBlock() < 2 {
		t.Fatal("expected non-trivial SCC blocks at transistor level")
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	T := 0.6 * tm.CP
	tr, err := tilos.Size(p, T, nil, tilos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tr.X
	aug := p.Augment()
	sc, err := newIterScratch(p, aug, x, "ssp", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}.withDefaults()
	repaired := false
	for i := 0; i < 3; i++ {
		st, err := iterate(p, aug, sc, x, T, opt.Window, opt)
		if err != nil {
			t.Fatal(err)
		}
		repaired = st.Repaired
	}
	if repaired {
		t.Skip("repair path active at this operating point; steady state not reachable")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := iterate(p, aug, sc, x, T, opt.Window, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("transistor-level D/W iteration allocates %.1f objects per round, want 0", allocs)
	}
}
