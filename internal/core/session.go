// Warm sizing sessions: the persistent-state form of SizeCtx.
//
// A Session pins everything that is expensive to build and reusable
// across optimization runs of ONE problem — the augmented DAG, the
// build-once D-phase constraint system with its cached (and
// warm-started) flow network, the persistent W-phase/sensitivity/
// timing solvers and every iteration buffer — so a long-lived caller
// (the minflod server, internal/serve) answers repeated re-sizing
// queries without paying problem setup again.  The first Resize on a
// session behaves exactly like SizeCtx (it IS SizeCtx: that function
// is now a one-shot session); later Resizes reuse the warm state, and
// their D-phase solves run through mcmf.ResolveChanged against the
// previous optimum instead of from-scratch solves.
//
// Trust-region warm seeding (Options.TrustRegion): by default every
// Resize re-seeds from TILOS, so warm state accelerates the solve but
// never changes the trajectory.  With a trust region δ configured, a
// Resize whose target moved at most δ relative to the previous clean
// answer (and whose area weights moved at most δ since it) skips the
// TILOS restart and starts the D/W loop from the previous converged
// sizing instead: the resident flow network is already priced near
// the new optimum, so the first D-phase is a local ResolveChanged
// repair and the loop converges in a few iterations instead of a few
// tens.  A seeded run also swaps the window schedule: the budget
// window opens scaled to the actual target move (not the cold-start
// Options.Window) and decays monotonically — a run that starts at the
// optimum is all endgame, and the cold schedule's regrow-on-
// improvement rule would zigzag around the answer for many iterations
// before settling.  A seeded attempt that misses the new (tighter) target first
// repairs the seed with TILOS moves *from the prior sizes*
// (tilos.SizeWith on the session's resident arrival engine); big
// jumps, weight edits beyond δ, repair failures and iteration
// blowouts (vs an EWMA of the session's clean iteration counts) all
// fall back to the cold TILOS path.  Result.Seed records which path
// answered.
//
// Determinism contract: a session's answers are a deterministic
// function of the query sequence served since its last cold build — a
// serial twin session replaying the same sequence answers every query
// bit-identically (TestSessionReplayDeterminism; the server's soak
// test leans on this per session generation).  Trust-region seeding
// deliberately renegotiates the stronger PR-7 property (identical
// no-matter-the-history warm answers) down to exactly this
// "deterministic given session history" contract: the seeding
// decision, the seed point, and the EWMA blowout gate are all pure
// functions of the served sequence, never of wall time.  Warm answers
// are NOT bitwise equal to one-shot cold answers of the same query:
// the incremental re-flow recovers an equally optimal but different
// dual solution than a fresh solve (the D-phase LP is degenerate), and
// a seeded resize additionally starts from a different (equally
// feasible) point, so the trajectory drifts.  Every answer is feasible
// and optimal to the same tolerances either way — the tests bound the
// warm-vs-cold area drift at 1e-3 relative with seeding off and at
// 2e-2 with seeding on.
//
// A Session is single-client: calls must be externally serialized
// (the server runs one worker goroutine per session).  Distinct
// Sessions share nothing mutable and run concurrently.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"minflo/internal/dag"
	"minflo/internal/sta"
	"minflo/internal/tilos"
)

// Budgets caps one Resize call.  Zero values disarm a cap.  Unlike
// Options.Budget/FlowWorkBudget — which bound a whole SizeCtx run —
// these are per-call: each Resize gets its own wall-clock window and
// its own flow-work allowance on top of the work already spent.
type Budgets struct {
	// Budget bounds the wall clock of this call.
	Budget time.Duration
	// FlowWorkBudget caps the D-phase flow work (mcmf poll operations)
	// this call may add.
	FlowWorkBudget int64
}

// Session holds the warm optimizer state of one sizing problem.
type Session struct {
	p   *dag.Problem
	aug *dag.Augmented
	opt Options
	sc  *iterScratch

	resizes int
	closed  bool

	// Trust-region warm-seed state (Options.TrustRegion): the last
	// clean converged sizing and the target/weight bookkeeping that
	// decides whether the next Resize may start from it.  seedX is
	// preallocated at build time so MemoryBytes stays query-stable.
	seedX        []float64
	seedT        float64
	seedValid    bool
	seedWPerturb float64 // max relative area-weight change since seedX

	// ewmaIters tracks the session's clean Resize iteration counts
	// (α=0.25) — the blowout gate abandons a seeded attempt running
	// past 3× this (floored at seedIterFloor) and falls back to TILOS.
	ewmaIters  float64
	ewmaSeeded bool

	seeded        int // Resizes answered from the trust-region seed
	seedFallbacks int // trust-region attempts that fell back to TILOS

	// ECO state (NewEcoSession only): the editable netlist wrapper and
	// the edit counters (eco.go).
	eco           *dag.Eco
	editCount     int
	editFallbacks int

	// Cone-local re-size state (Options.EditConeResize): pendingCone
	// holds the union of edit seeds armed by value-only ApplyEdits
	// batches since the last Resize — the next Resize inside the trust
	// region answers from a cone-scoped subproblem around them
	// (cone.go).  Weight edits, structural batches and fallbacks clear
	// it: they move timing or costs outside the cone, voiding the
	// frozen-boundary premise.
	pendingCone   []int
	coneResizes   int // Resizes answered by a cone subproblem
	coneWidenings int // reconciliation retries with a widened cone
	coneFallbacks int // cone attempts that fell back to a full path
}

// NewSession builds the warm state for problem p: augmented DAG,
// constraint-system topology, solvers and buffers.  The problem is
// retained by reference — the caller must not mutate it except
// through the Session (SetAreaWeight).
func NewSession(p *dag.Problem, opt Options) (*Session, error) {
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	parallelism := opt.Parallelism
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	engine, err := ResolveFlowEngine(opt.FlowEngine, p.G.N(), parallelism)
	if err != nil {
		return nil, err
	}
	aug := p.Augment()
	sc, err := newIterScratch(p, aug, p.InitialSizes(), engine, parallelism)
	if err != nil {
		return nil, err
	}
	return &Session{p: p, aug: aug, opt: opt, sc: sc, seedX: make([]float64, p.NumSizable)}, nil
}

// Close releases the session's worker pool.  Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.sc.close()
}

// Resizes reports how many Resize calls the session has served.
func (s *Session) Resizes() int { return s.resizes }

// NumSizable returns the number of sizable vertices of the problem.
func (s *Session) NumSizable() int { return s.p.NumSizable }

// AreaWeight returns the area weight of sizable vertex i.
func (s *Session) AreaWeight(i int) float64 { return s.p.AreaW[i] }

// SetAreaWeight updates the area weight (the objective cost) of
// sizable vertex i in place — the warm "what-if cost change" path:
// the next Resize prices the new weight through the same warm
// constraint system, no rebuild.  The change is sticky; callers
// wanting a transient what-if restore the old weight afterwards.
// Weight edits accumulate against the trust region: once the largest
// relative change since the last clean answer exceeds
// Options.TrustRegion, the next Resize re-seeds from TILOS.
func (s *Session) SetAreaWeight(i int, w float64) error {
	if i < 0 || i >= s.p.NumSizable {
		return fmt.Errorf("core: SetAreaWeight(%d) out of range [0,%d)", i, s.p.NumSizable)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("core: SetAreaWeight(%d, %g): weight must be finite and positive", i, w)
	}
	old := s.p.AreaW[i]
	s.p.AreaW[i] = w
	if rel := math.Abs(w-old) / old; rel > s.seedWPerturb {
		s.seedWPerturb = rel
	}
	// A cost change re-prices gates the pending cone froze out, so a
	// cone-scoped solve could no longer match the full problem's
	// optimum: disarm it (an honest negative recorded in
	// EXPERIMENTS.md — interleaving what-if weights with edits forfeits
	// the cone win).
	s.pendingCone = nil
	return nil
}

// SetAreaWeights applies a batch of area-weight edits atomically: the
// whole batch is validated first (the SetAreaWeight range and
// finite-positive checks) and applied only when every entry passes, so
// a rejected batch leaves the session bit-identical to never having
// received it — no weights written, no trust-region perturbation
// recorded.  Duplicate gates collapse to the last entry (last-wins,
// matching the server's canonical-query semantics), and the
// perturbation ledger sees only the surviving per-gate values —
// intermediate duplicates never widen the trust region.
func (s *Session) SetAreaWeights(gates []int, weights []float64) error {
	if len(gates) != len(weights) {
		return fmt.Errorf("core: SetAreaWeights: %d gates but %d weights", len(gates), len(weights))
	}
	for k := range gates {
		i, w := gates[k], weights[k]
		if i < 0 || i >= s.p.NumSizable {
			return fmt.Errorf("core: SetAreaWeight(%d) out of range [0,%d)", i, s.p.NumSizable)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("core: SetAreaWeight(%d, %g): weight must be finite and positive", i, w)
		}
	}
	for k := range gates {
		last := true
		for j := k + 1; j < len(gates); j++ {
			if gates[j] == gates[k] {
				last = false
				break
			}
		}
		if !last {
			continue // a later entry wins for this gate
		}
		if err := s.SetAreaWeight(gates[k], weights[k]); err != nil {
			return err // unreachable: validated above
		}
	}
	return nil
}

// ConeResizes reports how many Resize calls were answered by a
// cone-scoped subproblem solve (Options.EditConeResize).
func (s *Session) ConeResizes() int { return s.coneResizes }

// ConeWidenings reports how many cone attempts needed the widened
// reconciliation retry before answering or falling back.
func (s *Session) ConeWidenings() int { return s.coneWidenings }

// ConeFallbacks reports how many armed cone attempts fell back to a
// full-circuit path (cone too wide, extraction failure, or
// reconciliation missing the target after widening).
func (s *Session) ConeFallbacks() int { return s.coneFallbacks }

// TrustRegionSeeded reports how many Resize calls were answered from
// the trust-region warm seed (the previous converged sizing) instead
// of a TILOS restart.
func (s *Session) TrustRegionSeeded() int { return s.seeded }

// TrustRegionFallbacks reports how many Resize calls matched the
// trust region but fell back to the cold TILOS path anyway (seed
// repair failure or iteration blowout vs the session's EWMA).
func (s *Session) TrustRegionFallbacks() int { return s.seedFallbacks }

// FlowEngineName reports the mcmf backend the session's D-phase runs
// on ("" before the first solve; stable afterwards — the calibration
// probe, when configured, runs once per session, not once per query).
func (s *Session) FlowEngineName() string { return s.sc.sys.FlowEngineName() }

// FlowResolves reports how many D-phase solves the session served
// incrementally (mcmf ResolveChanged) over its lifetime — the
// observable warm-path counter the serving tests assert on.
func (s *Session) FlowResolves() int { return s.sc.sys.FlowEngineStats().Resolves }

// FlowEngineFailures reports the lifetime count of flow-engine
// failures the fallback chain recovered (see Options.NoEngineFallback
// for surfacing them instead).
func (s *Session) FlowEngineFailures() int { return s.sc.sys.FlowEngineFailures() }

// MemoryBytes estimates the resident footprint of the warm state in
// bytes: the problem's coupling CSR and coefficient arena, both DAGs,
// the timing/balancing/W-phase solvers, the D-phase constraint system
// with its cached flow network, and the iteration buffers.  It is an
// estimate from element counts (within ~2× of measured heap growth on
// the benchmark circuits, see serve's accounting test), determinstic
// for a given problem, and cheap — the server's watermark eviction
// only needs relative, stable numbers.
func (s *Session) MemoryBytes() int64 {
	const word = 8
	n := int64(s.p.G.N())
	m := int64(s.p.G.M())
	an := int64(s.aug.G.N())
	am := int64(s.aug.G.M())
	var nnz int64
	for i := range s.p.Coeffs {
		nnz += int64(len(s.p.Coeffs[i].Terms))
	}
	cons := int64(s.sc.sys.NumConstraints())
	objs := int64(s.sc.sys.NumObjectives())
	arcs := cons + 2*int64(len(s.p.PIs)+1)

	var b int64
	b += n*10*word + nnz*3*word // coupling CSR: rows, transpose, block/level maps
	b += n*4*word + nnz*2*word  // coefficient arena (Self/Const + 12B terms)
	b += (n+m)*3*word + (an+am)*3*word
	b += an*8*word + am*2*word    // analyzer + balancer
	b += n*6*word + m*2*word      // incremental arrivals
	b += (cons + objs) * 4 * word // dcs constraint/objective tables + cost diff state
	b += arcs * 16 * word         // flow network: arc pairs, CSR index, attempt snapshots
	b += an * 14 * word           // iteration buffers, W-phase/sensitivity scratch
	// Trust-region warm-seed state: the retained previous sizing vector
	// plus the target/EWMA bookkeeping (preallocated at build time, so
	// the estimate is identical before and after the first query).
	b += int64(len(s.seedX))*word + 8*word
	if s.eco != nil {
		// Editable-netlist state: the retained circuit (name header,
		// input refs, size per gate) and the extra-load vector.
		var pins int64
		for gi := range s.eco.C.Gates {
			pins += int64(len(s.eco.C.Gates[gi].Ins))
		}
		b += int64(len(s.eco.C.Gates))*6*word + pins*2*word
		b += int64(len(s.eco.Extra)) * word
	}
	b += int64(cap(s.pendingCone)) * word // armed cone seeds
	return b
}

// seedIterFloor is the minimum iteration allowance of a trust-region-
// seeded attempt before the EWMA blowout gate may abandon it.  A
// package variable so the fallback path is testable without crafting
// a pathological circuit; production code never changes it.
var seedIterFloor = 8

// seedIterCap bounds a seeded attempt's iterations: 3× the session's
// EWMA of clean iteration counts, floored at seedIterFloor, capped at
// the configured MaxIters (at which point the gate is moot — the cold
// path would stop there too).
func seedIterCap(ewma float64, maxIters int) int {
	c := int(math.Ceil(3 * ewma))
	if c < seedIterFloor {
		c = seedIterFloor
	}
	if ewma <= 0 || c > maxIters {
		c = maxIters
	}
	return c
}

// errSeedRejected reports (internally) that a trust-region-seeded
// attempt was abandoned — seed repair failure, a numerical corner, or
// the EWMA blowout gate — and the caller should run the cold path.
var errSeedRejected = errors.New("core: trust-region seed rejected")

// Resize runs the full MINFLOTRANSIT optimization to critical-path
// target T on the session's warm state, under ctx and the per-call
// budgets.  The contract is SizeCtx's: a run cut short returns the
// best-so-far sizing as a partial Result together with ErrCanceled /
// ErrBudgetExhausted; an unrecovered flow-engine failure returns the
// best-so-far partial Result with ErrEngineFailed (callers holding
// warm state should treat the session as suspect and rebuild — the
// server quarantines on it); an abort before any sizing exists
// returns (nil, error).
//
// Without Options.TrustRegion the answer is bit-identical to a cold
// run of the same query on a fresh session.  With a trust region
// configured, a query close to the previous clean answer starts from
// that answer instead of a TILOS restart (Result.Seed reports which),
// and answers are deterministic given the session's query history —
// a twin session replaying the same sequence answers bit-identically.
func (s *Session) Resize(ctx context.Context, T float64, bud Budgets) (*Result, error) {
	if s.closed {
		return nil, errors.New("core: Resize on closed Session")
	}
	s.resizes++
	opt := s.opt
	sc := s.sc
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancelable: keep the flow layer's unarmed fast path
	}
	var deadline time.Time
	if bud.Budget > 0 {
		deadline = time.Now().Add(bud.Budget)
	}
	checkAbort := func() error {
		if ctx != nil && ctx.Err() != nil {
			return ErrCanceled
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrBudgetExhausted
		}
		return nil
	}

	// Arm the per-call abort sources.  The flow-work budget is spent
	// from the solver's cumulative counter, so a per-call allowance
	// sits on top of whatever earlier Resizes already used (including
	// a seeded attempt this same call later abandons).
	sc.ctx = ctx
	sc.deadline = deadline
	sc.flowBudget = 0
	if bud.FlowWorkBudget > 0 {
		sc.flowBudget = sc.sys.FlowWorkDone() + bud.FlowWorkBudget
	}

	// Trust-region policy: seed from the previous clean answer when
	// the target moved at most δ relative and no weight edit since
	// exceeded δ.  Every input here is session history — never wall
	// time — so a twin replaying the sequence makes the same choice.
	// An armed cone (value-only edits since the last answer,
	// Options.EditConeResize) is consumed here whatever happens: it
	// describes exactly the edits between the previous answer and this
	// query, so it cannot carry over to a later one.
	coneSeeds := s.pendingCone
	s.pendingCone = nil
	fellBack := false
	coneFellBack := false
	if opt.TrustRegion > 0 && s.seedValid && s.seedT > 0 &&
		math.Abs(T-s.seedT) <= opt.TrustRegion*s.seedT &&
		s.seedWPerturb <= opt.TrustRegion {
		if opt.EditConeResize && len(coneSeeds) > 0 {
			res, err := s.resizeCone(coneSeeds, T, checkAbort)
			if !errors.Is(err, errSeedRejected) {
				s.coneResizes++
				return s.recordCone(T, res, err)
			}
			coneFellBack = true // coneFallbacks counted at the decision site
		}
		res, err := s.resizeSeeded(T, checkAbort)
		if !errors.Is(err, errSeedRejected) {
			s.seeded++
			if res != nil {
				res.ConeFallback = coneFellBack
			}
			return s.recordSeed(T, res, err)
		}
		s.seedFallbacks++
		fellBack = true
	}
	res, err := s.resizeCold(T, checkAbort)
	if res != nil {
		res.SeedFallback = fellBack
		res.ConeFallback = coneFellBack
	}
	return s.recordSeed(T, res, err)
}

// recordCone finishes a cone-answered Resize: the merged full sizing
// becomes the next trust-region seed, but the cone's iteration count
// deliberately stays out of the EWMA — a handful of cone-sized
// iterations would shrink the blowout gate the next full-circuit
// seeded run is judged against.
func (s *Session) recordCone(T float64, res *Result, err error) (*Result, error) {
	if err != nil || res == nil {
		return res, err
	}
	copy(s.seedX, res.X)
	s.seedT = T
	s.seedValid = true
	s.seedWPerturb = 0
	return res, err
}

// recordSeed finishes a Resize: a clean answer becomes the next
// trust-region seed and feeds the iteration-count EWMA.
func (s *Session) recordSeed(T float64, res *Result, err error) (*Result, error) {
	if err != nil || res == nil {
		return res, err
	}
	copy(s.seedX, res.X)
	s.seedT = T
	s.seedValid = true
	s.seedWPerturb = 0
	it := float64(res.Iterations)
	if !s.ewmaSeeded {
		s.ewmaIters, s.ewmaSeeded = it, true
	} else {
		s.ewmaIters += 0.25 * (it - s.ewmaIters)
	}
	return res, err
}

// resizeSeeded is the trust-region warm path: start the D/W loop from
// the previous converged sizing.  A seed that misses the (tighter) new
// target is first repaired with TILOS moves from the prior sizes on
// the session's resident arrival engine — still far cheaper than the
// minimum-size restart.  Returns errSeedRejected when the cold path
// should take over.
func (s *Session) resizeSeeded(T float64, checkAbort func() error) (*Result, error) {
	p, sc, opt := s.p, s.sc, s.opt
	res := &Result{Seed: SeedWarm}
	x := append([]float64(nil), s.seedX...)
	cp := sc.retime(p, x)
	if cp > T {
		tr, err := tilos.SizeWith(p, T, x, opt.Tilos, sc.arr, sc.dBase)
		if err != nil {
			// Repair could not reach the target from here; let the cold
			// path (minimum-size TILOS restart) decide feasibility.
			return nil, errSeedRejected
		}
		x = tr.X
		cp = tr.CP
	}
	res.TilosX = append([]float64(nil), x...)
	res.TilosArea = p.Area(x)
	res.TilosCP = cp
	if aerr := checkAbort(); aerr != nil {
		res.X = append([]float64(nil), x...)
		res.Area = res.TilosArea
		res.CP = cp
		res.Partial = true
		return res, aerr
	}
	// The seed sits within the trust region of the new optimum, so the
	// D/W loop's budget window opens at a few times the actual move
	// instead of the full cold-start Window — starting wide from a
	// near-optimal point just burns iterations walking the window back
	// down (measured: 13+ iterations at full Window vs ~5 scaled, same
	// final area to within the drift bound).  Both inputs are session
	// history, so twin replays compute the same window.
	rel := math.Abs(T-s.seedT) / s.seedT
	if s.seedWPerturb > rel {
		rel = s.seedWPerturb
	}
	w0 := 8 * rel
	if w0 < 4*opt.MinWindow {
		w0 = 4 * opt.MinWindow
	}
	if w0 > opt.Window {
		w0 = opt.Window
	}
	return s.dwLoop(res, x, T, seedIterCap(s.ewmaIters, opt.MaxIters), w0)
}

// resizeCold is the PR-7 path: TILOS from minimum sizes, then the D/W
// loop — byte-for-byte the trajectory a fresh session would produce.
func (s *Session) resizeCold(T float64, checkAbort func() error) (*Result, error) {
	p, opt := s.p, s.opt
	res := &Result{Seed: SeedTilos}
	var x []float64
	if opt.SkipTilos {
		x = p.InitialSizes()
		d := p.Delays(x)
		tm, err := sta.Analyze(p.G, d)
		if err != nil {
			return nil, err
		}
		if tm.CP > T {
			return nil, fmt.Errorf("%w: minimum-size CP %g exceeds target %g (SkipTilos)", ErrInfeasible, tm.CP, T)
		}
		res.TilosX = append([]float64(nil), x...)
		res.TilosArea = p.Area(x)
		res.TilosCP = tm.CP
	} else {
		tr, err := tilos.SizeWith(p, T, nil, opt.Tilos, s.sc.arr, s.sc.dBase)
		if err != nil {
			if errors.Is(err, tilos.ErrInfeasible) {
				return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
			}
			return nil, err
		}
		x = tr.X
		res.TilosX = append([]float64(nil), x...)
		res.TilosArea = tr.Area
		res.TilosCP = tr.CP
	}

	// An abort between the seed and the first iteration still has a
	// usable answer: the TILOS sizing itself.
	if aerr := checkAbort(); aerr != nil {
		res.X = append([]float64(nil), x...)
		res.Area = p.Area(x)
		res.CP = res.TilosCP
		res.Partial = true
		return res, aerr
	}
	return s.dwLoop(res, x, T, opt.MaxIters, opt.Window)
}

// dwLoop alternates D-phase and W-phase from start point x until the
// area improvement is negligible or capIters is reached.  The budget
// window starts at window0 (Options.Window for cold runs; scaled to
// the target move for seeded ones) and adapts like a trust region:
// halve after an iteration whose first-order prediction overshot
// (area got worse), relax back on success.  iterate leaves the
// round's sizes in sc.newX; x and bestX are stable buffers owned by
// this loop.
//
// For seeded runs (res.Seed == SeedWarm) capIters is the EWMA blowout
// gate: a run still going when it trips returns errSeedRejected so
// Resize can fall back to the cold path; a non-abort iterate failure
// does the same.  Cold runs accept both outcomes as-is.
func (s *Session) dwLoop(res *Result, x []float64, T float64, capIters int, window0 float64) (*Result, error) {
	p, sc, opt := s.p, s.sc, s.opt
	seeded := res.Seed == SeedWarm
	bestX := append([]float64(nil), x...)
	bestArea := p.Area(x)
	noImprove := 0
	window := window0
	converged := false

	checkAbort := func() error {
		if sc.ctx != nil && sc.ctx.Err() != nil {
			return ErrCanceled
		}
		if !sc.deadline.IsZero() && !time.Now().Before(sc.deadline) {
			return ErrBudgetExhausted
		}
		return nil
	}
	// finishPartial answers an abort with the best-so-far sizing.
	finishPartial := func(aerr error) (*Result, error) {
		res.X = bestX
		res.Area = bestArea
		res.CP = sc.retime(p, bestX)
		res.Partial = true
		return res, aerr
	}

	x = append([]float64(nil), x...)
	for it := 1; it <= capIters; it++ {
		if aerr := checkAbort(); aerr != nil {
			return finishPartial(aerr)
		}
		st, err := iterate(p, s.aug, sc, x, T, window, opt)
		if err != nil {
			if isAbortErr(err) {
				// Cut short mid-iteration (canceled context or an
				// exhausted wall-clock/flow-work budget surfacing from
				// the timing or flow layers): answer with the last
				// completed iteration's best and the typed error.
				return finishPartial(err)
			}
			if errors.Is(err, ErrEngineFailed) {
				// An engine failure the fallback chain did not (or was
				// configured not to) recover: the warm flow state is
				// suspect.  Hand back the best-so-far answer with the
				// typed error so session owners can quarantine and
				// rebuild instead of trusting this state again.
				return finishPartial(err)
			}
			if seeded {
				// A numerical corner starting from the warm seed: let
				// the cold path answer from its own trajectory.
				return nil, errSeedRejected
			}
			// A failed iteration is not fatal: the current best solution
			// stands (this triggers only on numerical corner cases).
			converged = true
			break
		}
		st.Iter = it
		st.Window = window
		st.Seed = res.Seed
		res.Stats = append(res.Stats, st)
		res.Iterations = it
		if opt.OnIteration != nil {
			opt.OnIteration(st)
		}
		// Stop when the area improvement is negligible.
		if st.Area < bestArea*(1-opt.AreaTol) {
			bestArea = st.Area
			copy(bestX, sc.newX)
			copy(x, sc.newX)
			noImprove = 0
			if seeded {
				// Endgame schedule: a seeded run starts near the optimum,
				// so the window decays monotonically.  Re-inflating it on
				// success (the cold rule below) just buys the next
				// overshoot and a halve-back — a zigzag that stretches a
				// refinement to cold-run iteration counts for sub-0.1%
				// area gains.
				window /= 2
			} else if window < opt.Window {
				window = math.Min(opt.Window, window*1.5)
			}
		} else {
			if st.Area < bestArea {
				bestArea = st.Area
				copy(bestX, sc.newX)
				copy(x, sc.newX)
			} else {
				// Overshoot: back to the best point with a tighter window.
				copy(x, bestX)
			}
			window /= 2
			noImprove++
			if noImprove >= opt.Patience || window < opt.MinWindow {
				converged = true
				break
			}
		}
		// Seeded runs can also decay past the floor on an improving
		// iteration (cold runs never shrink the window there).
		if window < opt.MinWindow {
			converged = true
			break
		}
	}
	if seeded && !converged && capIters < opt.MaxIters {
		// Blowout: the seeded attempt burned 3× the session's usual
		// iteration budget without settling — the seed was a bad start
		// point despite the small target move.  Cold path takes over.
		return nil, errSeedRejected
	}

	res.X = bestX
	res.Area = bestArea
	res.CP = sc.retime(p, bestX)
	return res, nil
}
