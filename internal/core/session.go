// Warm sizing sessions: the persistent-state form of SizeCtx.
//
// A Session pins everything that is expensive to build and reusable
// across optimization runs of ONE problem — the augmented DAG, the
// build-once D-phase constraint system with its cached (and
// warm-started) flow network, the persistent W-phase/sensitivity/
// timing solvers and every iteration buffer — so a long-lived caller
// (the minflod server, internal/serve) answers repeated re-sizing
// queries without paying problem setup again.  The first Resize on a
// session behaves exactly like SizeCtx (it IS SizeCtx: that function
// is now a one-shot session); later Resizes reuse the warm state, and
// their D-phase solves run through mcmf.ResolveChanged against the
// previous optimum instead of from-scratch solves.
//
// Determinism contract: a session's answers are a deterministic
// function of the query sequence served since its last cold build — a
// serial twin session replaying the same sequence answers every query
// bit-identically (TestSessionReplayDeterminism; the server's soak
// test leans on this per session generation).  Warm answers are NOT
// bitwise equal to one-shot cold answers of the same query: the
// incremental re-flow recovers an equally optimal but different dual
// solution than a fresh solve (the D-phase LP is degenerate), so the
// trajectory drifts at the last-bits level.  Every answer is feasible
// and optimal to the same tolerances either way — the test bounds the
// warm-vs-cold area drift at 1e-3 relative.
//
// A Session is single-client: calls must be externally serialized
// (the server runs one worker goroutine per session).  Distinct
// Sessions share nothing mutable and run concurrently.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"minflo/internal/dag"
	"minflo/internal/sta"
	"minflo/internal/tilos"
)

// Budgets caps one Resize call.  Zero values disarm a cap.  Unlike
// Options.Budget/FlowWorkBudget — which bound a whole SizeCtx run —
// these are per-call: each Resize gets its own wall-clock window and
// its own flow-work allowance on top of the work already spent.
type Budgets struct {
	// Budget bounds the wall clock of this call.
	Budget time.Duration
	// FlowWorkBudget caps the D-phase flow work (mcmf poll operations)
	// this call may add.
	FlowWorkBudget int64
}

// Session holds the warm optimizer state of one sizing problem.
type Session struct {
	p   *dag.Problem
	aug *dag.Augmented
	opt Options
	sc  *iterScratch

	resizes int
	closed  bool
}

// NewSession builds the warm state for problem p: augmented DAG,
// constraint-system topology, solvers and buffers.  The problem is
// retained by reference — the caller must not mutate it except
// through the Session (SetAreaWeight).
func NewSession(p *dag.Problem, opt Options) (*Session, error) {
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	parallelism := opt.Parallelism
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	engine, err := ResolveFlowEngine(opt.FlowEngine, p.G.N(), parallelism)
	if err != nil {
		return nil, err
	}
	aug := p.Augment()
	sc, err := newIterScratch(p, aug, p.InitialSizes(), engine, parallelism)
	if err != nil {
		return nil, err
	}
	return &Session{p: p, aug: aug, opt: opt, sc: sc}, nil
}

// Close releases the session's worker pool.  Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.sc.close()
}

// Resizes reports how many Resize calls the session has served.
func (s *Session) Resizes() int { return s.resizes }

// NumSizable returns the number of sizable vertices of the problem.
func (s *Session) NumSizable() int { return s.p.NumSizable }

// AreaWeight returns the area weight of sizable vertex i.
func (s *Session) AreaWeight(i int) float64 { return s.p.AreaW[i] }

// SetAreaWeight updates the area weight (the objective cost) of
// sizable vertex i in place — the warm "what-if cost change" path:
// the next Resize prices the new weight through the same warm
// constraint system, no rebuild.  The change is sticky; callers
// wanting a transient what-if restore the old weight afterwards.
func (s *Session) SetAreaWeight(i int, w float64) error {
	if i < 0 || i >= s.p.NumSizable {
		return fmt.Errorf("core: SetAreaWeight(%d) out of range [0,%d)", i, s.p.NumSizable)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("core: SetAreaWeight(%d, %g): weight must be finite and positive", i, w)
	}
	s.p.AreaW[i] = w
	return nil
}

// FlowEngineName reports the mcmf backend the session's D-phase runs
// on ("" before the first solve; stable afterwards — the calibration
// probe, when configured, runs once per session, not once per query).
func (s *Session) FlowEngineName() string { return s.sc.sys.FlowEngineName() }

// FlowResolves reports how many D-phase solves the session served
// incrementally (mcmf ResolveChanged) over its lifetime — the
// observable warm-path counter the serving tests assert on.
func (s *Session) FlowResolves() int { return s.sc.sys.FlowEngineStats().Resolves }

// FlowEngineFailures reports the lifetime count of flow-engine
// failures the fallback chain recovered (see Options.NoEngineFallback
// for surfacing them instead).
func (s *Session) FlowEngineFailures() int { return s.sc.sys.FlowEngineFailures() }

// MemoryBytes estimates the resident footprint of the warm state in
// bytes: the problem's coupling CSR and coefficient arena, both DAGs,
// the timing/balancing/W-phase solvers, the D-phase constraint system
// with its cached flow network, and the iteration buffers.  It is an
// estimate from element counts (within ~2× of measured heap growth on
// the benchmark circuits, see serve's accounting test), determinstic
// for a given problem, and cheap — the server's watermark eviction
// only needs relative, stable numbers.
func (s *Session) MemoryBytes() int64 {
	const word = 8
	n := int64(s.p.G.N())
	m := int64(s.p.G.M())
	an := int64(s.aug.G.N())
	am := int64(s.aug.G.M())
	var nnz int64
	for i := range s.p.Coeffs {
		nnz += int64(len(s.p.Coeffs[i].Terms))
	}
	cons := int64(s.sc.sys.NumConstraints())
	objs := int64(s.sc.sys.NumObjectives())
	arcs := cons + 2*int64(len(s.p.PIs)+1)

	var b int64
	b += n*10*word + nnz*3*word // coupling CSR: rows, transpose, block/level maps
	b += n*4*word + nnz*2*word  // coefficient arena (Self/Const + 12B terms)
	b += (n+m)*3*word + (an+am)*3*word
	b += an*8*word + am*2*word    // analyzer + balancer
	b += n*6*word + m*2*word      // incremental arrivals
	b += (cons + objs) * 4 * word // dcs constraint/objective tables + cost diff state
	b += arcs * 16 * word         // flow network: arc pairs, CSR index, attempt snapshots
	b += an * 14 * word           // iteration buffers, W-phase/sensitivity scratch
	return b
}

// Resize runs the full MINFLOTRANSIT optimization to critical-path
// target T on the session's warm state, under ctx and the per-call
// budgets.  The contract is SizeCtx's: a run cut short returns the
// best-so-far sizing as a partial Result together with ErrCanceled /
// ErrBudgetExhausted; an unrecovered flow-engine failure returns the
// best-so-far partial Result with ErrEngineFailed (callers holding
// warm state should treat the session as suspect and rebuild — the
// server quarantines on it); an abort before any sizing exists
// returns (nil, error).  The answer is bit-identical to a cold run of
// the same query on a fresh session.
func (s *Session) Resize(ctx context.Context, T float64, bud Budgets) (*Result, error) {
	if s.closed {
		return nil, errors.New("core: Resize on closed Session")
	}
	s.resizes++
	opt := s.opt
	p, sc := s.p, s.sc
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancelable: keep the flow layer's unarmed fast path
	}
	var deadline time.Time
	if bud.Budget > 0 {
		deadline = time.Now().Add(bud.Budget)
	}
	checkAbort := func() error {
		if ctx != nil && ctx.Err() != nil {
			return ErrCanceled
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrBudgetExhausted
		}
		return nil
	}

	// Step 1: size the circuit to meet delay requirements using TILOS.
	// Every Resize reseeds from scratch — the warm state accelerates
	// the answer, it never changes it.
	var x []float64
	res := &Result{}
	if opt.SkipTilos {
		x = p.InitialSizes()
		d := p.Delays(x)
		tm, err := sta.Analyze(p.G, d)
		if err != nil {
			return nil, err
		}
		if tm.CP > T {
			return nil, fmt.Errorf("%w: minimum-size CP %g exceeds target %g (SkipTilos)", ErrInfeasible, tm.CP, T)
		}
		res.TilosX = append([]float64(nil), x...)
		res.TilosArea = p.Area(x)
		res.TilosCP = tm.CP
	} else {
		tr, err := tilos.Size(p, T, nil, opt.Tilos)
		if err != nil {
			if errors.Is(err, tilos.ErrInfeasible) {
				return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
			}
			return nil, err
		}
		x = tr.X
		res.TilosX = append([]float64(nil), x...)
		res.TilosArea = tr.Area
		res.TilosCP = tr.CP
	}

	// An abort between the seed and the first iteration still has a
	// usable answer: the TILOS sizing itself.
	if aerr := checkAbort(); aerr != nil {
		res.X = append([]float64(nil), x...)
		res.Area = p.Area(x)
		res.CP = res.TilosCP
		res.Partial = true
		return res, aerr
	}

	// Arm the per-call abort sources.  The flow-work budget is spent
	// from the solver's cumulative counter, so a per-call allowance
	// sits on top of whatever earlier Resizes already used.
	sc.ctx = ctx
	sc.deadline = deadline
	sc.flowBudget = 0
	if bud.FlowWorkBudget > 0 {
		sc.flowBudget = sc.sys.FlowWorkDone() + bud.FlowWorkBudget
	}
	bestX := append([]float64(nil), x...)
	bestArea := p.Area(x)
	noImprove := 0
	window := opt.Window

	// finishPartial answers an abort with the best-so-far sizing.
	finishPartial := func(aerr error) (*Result, error) {
		res.X = bestX
		res.Area = bestArea
		res.CP = sc.retime(p, bestX)
		res.Partial = true
		return res, aerr
	}

	// Step 2: alternate D-phase and W-phase.  The budget window adapts
	// like a trust region: halve after an iteration whose first-order
	// prediction overshot (area got worse), relax back on success.
	// iterate leaves the round's sizes in sc.newX; x and bestX are
	// stable buffers owned by this loop.
	x = append([]float64(nil), x...)
	for it := 1; it <= opt.MaxIters; it++ {
		if aerr := checkAbort(); aerr != nil {
			return finishPartial(aerr)
		}
		st, err := iterate(p, s.aug, sc, x, T, window, opt)
		if err != nil {
			if isAbortErr(err) {
				// Cut short mid-iteration (canceled context or an
				// exhausted wall-clock/flow-work budget surfacing from
				// the timing or flow layers): answer with the last
				// completed iteration's best and the typed error.
				return finishPartial(err)
			}
			if errors.Is(err, ErrEngineFailed) {
				// An engine failure the fallback chain did not (or was
				// configured not to) recover: the warm flow state is
				// suspect.  Hand back the best-so-far answer with the
				// typed error so session owners can quarantine and
				// rebuild instead of trusting this state again.
				return finishPartial(err)
			}
			// A failed iteration is not fatal: the current best solution
			// stands (this triggers only on numerical corner cases).
			break
		}
		st.Iter = it
		st.Window = window
		res.Stats = append(res.Stats, st)
		res.Iterations = it
		if opt.OnIteration != nil {
			opt.OnIteration(st)
		}
		// Step 3: stop when the area improvement is negligible.
		if st.Area < bestArea*(1-opt.AreaTol) {
			bestArea = st.Area
			copy(bestX, sc.newX)
			copy(x, sc.newX)
			noImprove = 0
			if window < opt.Window {
				window = math.Min(opt.Window, window*1.5)
			}
		} else {
			if st.Area < bestArea {
				bestArea = st.Area
				copy(bestX, sc.newX)
				copy(x, sc.newX)
			} else {
				// Overshoot: back to the best point with a tighter window.
				copy(x, bestX)
			}
			window /= 2
			noImprove++
			if noImprove >= opt.Patience || window < opt.MinWindow {
				break
			}
		}
	}

	res.X = bestX
	res.Area = bestArea
	res.CP = sc.retime(p, bestX)
	return res, nil
}
