package core

import (
	"context"
	"math/rand"
	"testing"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/tech"
)

func mustEco(t testing.TB, c *circuit.Circuit) *dag.Eco {
	t.Helper()
	e, err := dag.NewEco(c, delay.NewModel(tech.Default013()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// twinOfEdited builds a cold session over a fresh build of e's current
// (post-edit) netlist: a clone of the edited circuit goes through
// GateLevel from scratch, with only the extra-load state re-applied.
// This is the independent oracle — none of the in-place patching that
// produced e's resident state runs on this side.
func twinOfEdited(t testing.TB, e *dag.Eco, opt Options) *Session {
	t.Helper()
	te := mustEco(t, e.C.Clone())
	var loads []dag.Edit
	for gi, x := range e.Extra {
		if x != 0 {
			loads = append(loads, dag.Edit{Op: dag.EditLoad, Gate: gi, LoadFF: x})
		}
	}
	s, err := NewEcoSession(te, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) > 0 {
		if _, err := s.ApplyEdits(loads); err != nil {
			s.Close()
			t.Fatal(err)
		}
	}
	return s
}

// randomCoreBatch mirrors the dag-level harness generator: 1–3 random
// edits, rewires restricted to lower-indexed drivers so gen circuits
// stay acyclic (rejection from dangling old drivers is still possible
// and fine — the caller retries).
func randomCoreBatch(c *circuit.Circuit, rng *rand.Rand) []dag.Edit {
	n := 1 + rng.Intn(3)
	batch := make([]dag.Edit, 0, n)
	for len(batch) < n {
		gi := rng.Intn(c.NumGates())
		g := &c.Gates[gi]
		switch rng.Intn(3) {
		case 0:
			var opts []cell.Kind
			for k := 0; k < cell.NumKinds; k++ {
				if cell.Get(cell.Kind(k)).NumInputs == len(g.Ins) {
					opts = append(opts, cell.Kind(k))
				}
			}
			if len(opts) == 0 {
				continue
			}
			batch = append(batch, dag.Edit{Op: dag.EditRetype, Gate: gi, Cell: opts[rng.Intn(len(opts))]})
		case 1:
			batch = append(batch, dag.Edit{Op: dag.EditLoad, Gate: gi, LoadFF: 15 * rng.Float64()})
		default:
			pin := rng.Intn(len(g.Ins))
			var d circuit.Ref
			if gi == 0 || rng.Intn(2) == 0 {
				d = circuit.PIRef(rng.Intn(c.NumPIs()))
			} else {
				d = circuit.GateRef(rng.Intn(gi))
			}
			batch = append(batch, dag.Edit{Op: dag.EditRewire, Gate: gi, Pin: pin, Driver: d})
		}
	}
	return batch
}

// TestEcoEditResizeColdConformance is the ISSUE's acceptance harness:
// across 110 random netlists, applying an edit batch to a cold session
// and resizing answers bit-identically to a twin session built cold
// from the already-edited netlist — edit-then-resize ≡
// rebuild-then-resize, per the state-patch exactness contract.
func TestEcoEditResizeColdConformance(t *testing.T) {
	opt := Options{FlowEngine: "ssp", Parallelism: 1}
	applied := 0
	for inst := 0; inst < 110; inst++ {
		rng := rand.New(rand.NewSource(int64(9100 + inst)))
		c := gen.RandomLogic(4+rng.Intn(5), 12+rng.Intn(24), int64(inst))
		e := mustEco(t, c)
		sess, err := NewEcoSession(e, opt)
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}

		var rep *EditReport
		for try := 0; try < 8 && rep == nil; try++ {
			rep, _ = sess.ApplyEdits(randomCoreBatch(e.C, rng))
		}
		if rep == nil {
			sess.Close()
			continue // every random batch was validly rejected; rare
		}
		applied++

		twin := twinOfEdited(t, e, opt)
		T := 0.6 * rep.CP
		ra, errA := sess.Resize(context.Background(), T, Budgets{})
		rb, errB := twin.Resize(context.Background(), T, Budgets{})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("inst %d: error divergence: edited %v vs rebuilt %v", inst, errA, errB)
		}
		if errA == nil {
			if !bitEqual(ra.X, rb.X) || ra.Area != rb.Area || ra.CP != rb.CP || ra.Iterations != rb.Iterations {
				t.Fatalf("inst %d: edit-then-resize diverged from rebuild-then-resize\nedited:  area %.17g cp %.17g iters %d\nrebuilt: area %.17g cp %.17g iters %d",
					inst, ra.Area, ra.CP, ra.Iterations, rb.Area, rb.CP, rb.Iterations)
			}
		}
		twin.Close()
		sess.Close()
	}
	if applied < 80 {
		t.Fatalf("harness applied only %d/110 batches", applied)
	}
	t.Logf("cold conformance: %d/110 instances verified bit-identical", applied)
}

// TestEcoSessionReplayDeterminism extends the session replay contract
// to histories containing edits: a twin replaying the same interleaved
// query/edit/weight sequence answers every query bit-identically —
// including across a structural rewire (which resets sticky weights on
// both sides at the same point).
func TestEcoSessionReplayDeterminism(t *testing.T) {
	opt := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.05}
	build := func() *Session {
		e := mustEco(t, gen.RippleAdder(16, gen.FABuffered))
		s, err := NewEcoSession(e, opt)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sess, twin := build(), build()
	defer sess.Close()
	defer twin.Close()

	tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
	type step struct {
		edits  []dag.Edit
		wGates []int
		wVals  []float64
		target float64
	}
	steps := []step{
		{target: 0.6 * tmin},
		{edits: []dag.Edit{{Op: dag.EditLoad, Gate: 5, LoadFF: 8}}, target: 0.6 * tmin},
		{wGates: []int{3, 3}, wVals: []float64{4, 2}, target: 0.62 * tmin}, // duplicate: last wins
		{edits: []dag.Edit{{Op: dag.EditRetype, Gate: 7, Cell: retypeTarget(t, sess.eco, 7)}}, target: 0.62 * tmin},
		{edits: []dag.Edit{validRewire(t, sess.eco)}, target: 0.64 * tmin},
		{target: 0.6 * tmin},
	}
	for i, st := range steps {
		for _, s := range []*Session{sess, twin} {
			if st.edits != nil {
				if _, err := s.ApplyEdits(st.edits); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			if st.wGates != nil {
				if err := s.SetAreaWeights(st.wGates, st.wVals); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		}
		ra, errA := sess.Resize(context.Background(), st.target, Budgets{})
		rb, errB := twin.Resize(context.Background(), st.target, Budgets{})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: error divergence %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !bitEqual(ra.X, rb.X) || ra.Area != rb.Area || ra.CP != rb.CP || ra.Iterations != rb.Iterations {
			t.Fatalf("step %d: twin replay diverged (seed %q vs %q)", i, ra.Seed, rb.Seed)
		}
	}
	if sess.Edits() != 3 {
		t.Fatalf("edit count %d, want 3", sess.Edits())
	}
}

// validRewire finds a structural edit that survives validation: a
// gate pin whose current driver keeps other fanout (no dangling), and
// a new lower-indexed gate driver (no cycle: gen circuits are built in
// topological index order).
func validRewire(t testing.TB, e *dag.Eco) dag.Edit {
	t.Helper()
	fanPtr, _, poCount := e.C.FanoutsCSR()
	fanout := func(r circuit.Ref) int {
		if r.Kind != circuit.RefGate {
			return 2 // PIs never dangle
		}
		return int(fanPtr[r.Index+1]-fanPtr[r.Index]) + int(poCount[r.Index])
	}
	for gi := e.C.NumGates() - 1; gi > 1; gi-- {
		g := &e.C.Gates[gi]
		for pin, in := range g.Ins {
			if fanout(in) < 2 {
				continue
			}
			for d := 0; d < gi; d++ {
				ref := circuit.GateRef(d)
				if ref != in {
					return dag.Edit{Op: dag.EditRewire, Gate: gi, Pin: pin, Driver: ref}
				}
			}
		}
	}
	t.Fatal("no valid rewire found")
	return dag.Edit{}
}

// retypeTarget picks a different same-arity cell for gate gi.
func retypeTarget(t testing.TB, e *dag.Eco, gi int) cell.Kind {
	t.Helper()
	g := &e.C.Gates[gi]
	for k := 0; k < cell.NumKinds; k++ {
		kk := cell.Kind(k)
		if kk != g.Kind && cell.Get(kk).NumInputs == len(g.Ins) {
			return kk
		}
	}
	t.Fatalf("no retype target for gate %d", gi)
	return 0
}

// TestEcoConeBudget drives the fallback policy: a tiny budget forces
// any edit over it (seed dropped, scratch rebuilt, counted), a
// negative budget disables the check entirely.
func TestEcoConeBudget(t *testing.T) {
	e := mustEco(t, gen.RippleAdder(16, gen.FABuffered))
	sess, err := NewEcoSession(e, Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.5, EditConeBudget: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
	if _, err := sess.Resize(context.Background(), 0.6*tmin, Budgets{}); err != nil {
		t.Fatal(err)
	}
	// Gate 0 feeds downstream logic: its cone can't fit in 1e-6.
	rep, err := sess.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: 0, LoadFF: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fallback || !rep.Rebuilt || rep.SeedKept {
		t.Fatalf("expected cone-budget fallback, got %+v", rep)
	}
	if sess.EditFallbacks() != 1 {
		t.Fatalf("fallback count %d, want 1", sess.EditFallbacks())
	}
	// The seed was dropped: the next in-region query runs cold.
	r, err := sess.Resize(context.Background(), 0.6*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != SeedTilos {
		t.Fatalf("post-fallback resize seeded %q, want cold", r.Seed)
	}

	// Negative budget: the same edit keeps the seed warm.
	e2 := mustEco(t, gen.RippleAdder(16, gen.FABuffered))
	s2, err := NewEcoSession(e2, Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.5, EditConeBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Resize(context.Background(), 0.6*tmin, Budgets{}); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: 0, LoadFF: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fallback || rep2.Rebuilt || !rep2.SeedKept {
		t.Fatalf("disabled budget still fell back: %+v", rep2)
	}
	if s2.EditFallbacks() != 0 {
		t.Fatalf("fallback count %d, want 0", s2.EditFallbacks())
	}
}

// TestSessionAtomicWeights is the ISSUE's acceptance check for the
// batch-weights bugfix: a rejected weight batch (valid entries before
// an invalid one) leaves the session bit-identical to never having
// received it, proven by a serial twin that never saw the batch.
func TestSessionAtomicWeights(t *testing.T) {
	opt := Options{FlowEngine: "ssp", Parallelism: 1}
	p1 := mustProblem(t, "adder16")
	sess, err := NewSession(p1, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p2 := mustProblem(t, "adder16")
	twin, err := NewSession(p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()

	tmin := minCP(t, mustProblem(t, "adder16"))
	for _, s := range []*Session{sess, twin} {
		if _, err := s.Resize(context.Background(), 0.6*tmin, Budgets{}); err != nil {
			t.Fatal(err)
		}
	}

	// Batch with two valid entries before an out-of-range one: must be
	// rejected with NOTHING applied.
	err = sess.SetAreaWeights([]int{0, 1, 10_000_000}, []float64{5, 5, 5})
	if err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if sess.AreaWeight(0) != twin.AreaWeight(0) || sess.AreaWeight(1) != twin.AreaWeight(1) {
		t.Fatal("rejected batch left weights half-applied")
	}
	// And one failing on a non-finite weight mid-batch.
	if err := sess.SetAreaWeights([]int{2, 3}, []float64{4, -1}); err == nil {
		t.Fatal("negative-weight batch accepted")
	}

	// The replay proof: both sessions now serve the same next query
	// bit-identically — the rejected batches left no trace.
	ra, err := sess.Resize(context.Background(), 0.55*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := twin.Resize(context.Background(), 0.55*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(ra.X, rb.X) || ra.Area != rb.Area || ra.CP != rb.CP || ra.Iterations != rb.Iterations {
		t.Fatalf("rejected weight batches perturbed the session: area %.17g vs twin %.17g", ra.Area, rb.Area)
	}

	// Last-wins duplicate collapse: [g:5, g:2] ends at 2 on both the
	// batch API and the serial single-set path.
	if err := sess.SetAreaWeights([]int{4, 4}, []float64{5, 2}); err != nil {
		t.Fatal(err)
	}
	if err := twin.SetAreaWeight(4, 2); err != nil {
		t.Fatal(err)
	}
	if sess.AreaWeight(4) != 2 || sess.AreaWeight(4) != twin.AreaWeight(4) {
		t.Fatalf("duplicate collapse: weight %g, want 2", sess.AreaWeight(4))
	}
	ra, err = sess.Resize(context.Background(), 0.6*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err = twin.Resize(context.Background(), 0.6*tmin, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(ra.X, rb.X) {
		t.Fatal("batch vs serial weight application diverged")
	}
}

// FuzzApplyEdits interleaves random edits, queries, cancellations, and
// weight batches against one session and replays the accepted prefix
// on a serial twin; any divergence, panic, or state leak from a
// rejected operation fails the target.  Run under -race in CI.
func FuzzApplyEdits(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3})
	f.Add(int64(2), []byte{5, 5, 5, 5, 5, 5})
	f.Add(int64(3), []byte{9, 0, 9, 1, 9, 2, 9})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		if len(program) > 12 {
			program = program[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		opt := Options{FlowEngine: "ssp", Parallelism: 1, TrustRegion: 0.05}
		c := gen.RandomLogic(4, 16, seed)
		sess, err := NewEcoSession(mustEco(t, c), opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		twin, err := NewEcoSession(mustEco(t, c.Clone()), opt)
		if err != nil {
			t.Fatal(err)
		}
		defer twin.Close()

		tmin := sess.sc.retime(sess.p, sess.p.InitialSizes())
		for _, op := range program {
			switch op % 4 {
			case 0: // query, replayed on the twin
				T := (0.55 + 0.01*float64(op%16)) * tmin
				ra, errA := sess.Resize(context.Background(), T, Budgets{})
				rb, errB := twin.Resize(context.Background(), T, Budgets{})
				if (errA == nil) != (errB == nil) {
					t.Fatalf("error divergence: %v vs %v", errA, errB)
				}
				if errA == nil && (!bitEqual(ra.X, rb.X) || ra.Iterations != rb.Iterations) {
					t.Fatal("twin replay diverged")
				}
			case 1: // edit batch, applied to both or neither
				batch := randomCoreBatch(sess.eco.C, rng)
				_, errA := sess.ApplyEdits(batch)
				_, errB := twin.ApplyEdits(batch)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("edit acceptance divergence: %v vs %v", errA, errB)
				}
			case 2: // canceled query: leaves no residue on either side
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				_, _ = sess.Resize(ctx, 0.6*tmin, Budgets{})
				_, _ = twin.Resize(ctx, 0.6*tmin, Budgets{})
			default: // weight batch, possibly invalid — atomic either way
				gates := []int{int(op) % sess.NumSizable(), int(op/2) % sess.NumSizable()}
				ws := []float64{1 + float64(op%5), 1 + float64(op%3)}
				if op%7 == 0 {
					ws[1] = -1 // rejected: must leave no trace
				}
				errA := sess.SetAreaWeights(gates, ws)
				errB := twin.SetAreaWeights(gates, ws)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("weight acceptance divergence: %v vs %v", errA, errB)
				}
			}
		}
	})
}
