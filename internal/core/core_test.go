package core

import (
	"math"
	"math/rand"
	"testing"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

func TestSizeC17(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C17(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	T := 0.5 * tm.CP
	res, err := Size(p, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > T*(1+1e-9) {
		t.Fatalf("target violated: CP %g > %g", res.CP, T)
	}
	if res.Area > res.TilosArea*(1+1e-9) {
		t.Fatalf("MINFLOTRANSIT worse than TILOS: %g > %g", res.Area, res.TilosArea)
	}
	if res.Iterations == 0 || res.Iterations > 100 {
		t.Fatalf("implausible iteration count %d", res.Iterations)
	}
}

// TestSingleNetworkBuildPerProblem asserts the build-once D-phase path:
// no matter how many D/W iterations run, the dcs constraint network is
// constructed exactly once and all later iterations go through the
// in-place SetWeight/SetObjectiveCoeff update path.
func TestSingleNetworkBuildPerProblem(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Size(p, 0.5*tm.CP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("need a multi-iteration run to exercise reuse, got %d", res.Iterations)
	}
	for _, st := range res.Stats {
		if st.NetBuilds != 1 {
			t.Fatalf("iteration %d reports %d network builds, want 1", st.Iter, st.NetBuilds)
		}
	}
}

func TestSizeMeetsTargetAcrossSpecs(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.RippleAdder(8, gen.FAXor), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	for _, frac := range []float64{0.9, 0.7, 0.5} {
		T := frac * tm.CP
		res, err := Size(p, T, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if res.CP > T*(1+1e-9) {
			t.Fatalf("frac %.2f: CP %g > target %g", frac, res.CP, T)
		}
		if res.Area > res.TilosArea*(1+1e-9) {
			t.Fatalf("frac %.2f: area regression vs TILOS", frac)
		}
		// Sizes must respect the bounds.
		for i, x := range res.X {
			if x < p.MinSize-1e-9 || x > p.MaxSize+1e-9 {
				t.Fatalf("frac %.2f: size[%d]=%g out of bounds", frac, i, x)
			}
		}
	}
}

func TestSizeInfeasibleTarget(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.InverterChain(16), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if _, err := Size(p, 0.01*tm.CP, Options{}); err == nil {
		t.Fatal("expected infeasibility error for 0.01*Dmin")
	}
}

func TestSizeTrivialTarget(t *testing.T) {
	// Target equal to Dmin: minimum sizes are already optimal; the area
	// must stay at (or extremely near) the minimum.
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.InverterChain(8), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	res, err := Size(p, tm.CP*1.0000001, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Area > p.MinAreaValue()*(1+1e-6) {
		t.Fatalf("area %g above minimum %g at trivial target", res.Area, p.MinAreaValue())
	}
}

func TestSizeExample1ForkBeatsOrMatchesTilos(t *testing.T) {
	// The paper's Example 1: global budgeting should never lose to the
	// greedy on the fork circuit, across a range of specs.
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.Fork(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	for _, frac := range []float64{0.85, 0.7, 0.6} {
		res, err := Size(p, frac*tm.CP, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if res.Area > res.TilosArea*(1+1e-9) {
			t.Fatalf("frac %.2f: MINFLO %g > TILOS %g", frac, res.Area, res.TilosArea)
		}
	}
}

func TestSizeRandomCircuits(t *testing.T) {
	// Property-style: on random DAG circuits the optimizer always meets
	// the target, never loses to TILOS, and never violates bounds.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ckt := gen.RandomLogic(4+rng.Intn(6), 30+rng.Intn(40), seed)
		m := delay.NewModel(tech.Default013())
		p, err := dag.GateLevel(ckt, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
		T := 0.6 * tm.CP
		res, err := Size(p, T, Options{})
		if err != nil {
			// Some random circuits cannot reach 0.6·Dmin; that is a
			// legitimate infeasibility, not a failure.
			continue
		}
		if res.CP > T*(1+1e-9) {
			t.Fatalf("seed %d: CP %g > T %g", seed, res.CP, T)
		}
		if res.Area > res.TilosArea*(1+1e-9) {
			t.Fatalf("seed %d: area %g > TILOS %g", seed, res.Area, res.TilosArea)
		}
	}
}

func TestIterationStatsMonotoneBest(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	var areas []float64
	res, err := Size(p, 0.4*tm.CP, Options{
		OnIteration: func(st IterStats) { areas = append(areas, st.Area) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != res.Iterations {
		t.Fatalf("callback count %d != iterations %d", len(areas), res.Iterations)
	}
	// The running best must equal the final area.
	best := areas[0]
	for _, a := range areas {
		if a < best {
			best = a
		}
	}
	if best < res.TilosArea && res.Area != best {
		t.Fatalf("final area %g != best observed %g", res.Area, best)
	}
	// And the final result must never exceed the TILOS baseline.
	if res.Area > res.TilosArea {
		t.Fatalf("final %g worse than TILOS %g", res.Area, res.TilosArea)
	}
}

func TestSavingsShapeByCircuitClass(t *testing.T) {
	// Paper §3: ripple-carry adders gain ≈nothing (single dominant
	// path); reconvergent circuits gain several percent.
	if testing.Short() {
		t.Skip("long")
	}
	m := delay.NewModel(tech.Default013())

	adder, err := dag.GateLevel(gen.RippleAdder(16, gen.FABuffered), m)
	if err != nil {
		t.Fatal(err)
	}
	atm, _ := sta.Analyze(adder.G, adder.Delays(adder.InitialSizes()))
	ares, err := Size(adder, 0.5*atm.CP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adderSaving := 1 - ares.Area/ares.TilosArea

	ctrl, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		t.Fatal(err)
	}
	ctm, _ := sta.Analyze(ctrl.G, ctrl.Delays(ctrl.InitialSizes()))
	cres, err := Size(ctrl, 0.4*ctm.CP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrlSaving := 1 - cres.Area/cres.TilosArea

	if adderSaving > 0.05 {
		t.Errorf("adder saving %.1f%% unexpectedly large", 100*adderSaving)
	}
	if ctrlSaving < 0.01 {
		t.Errorf("controller saving %.2f%% unexpectedly small (paper: ~9%%)", 100*ctrlSaving)
	}
	if ctrlSaving < adderSaving {
		t.Errorf("shape inverted: controller %.2f%% < adder %.2f%%", 100*ctrlSaving, 100*adderSaving)
	}
}

func TestSizeTransistorLevel(t *testing.T) {
	// True transistor sizing (paper §2.1): every device its own variable.
	m := delay.NewModel(tech.Default013())
	p, err := dag.TransistorLevel(gen.C17(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	T := 0.55 * tm.CP
	res, err := Size(p, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > T*(1+1e-9) {
		t.Fatalf("target violated: %g > %g", res.CP, T)
	}
	if res.Area > res.TilosArea*(1+1e-9) {
		t.Fatalf("transistor-level MINFLO worse than TILOS: %g > %g", res.Area, res.TilosArea)
	}
}

func TestTransistorVsGateSizing(t *testing.T) {
	// Per-transistor freedom can only help: at the same target the
	// transistor-level area (in Σx_i terms over devices) should not
	// exceed the gate-level solution expanded to devices... the two
	// objectives differ in weights, so compare achieved delay targets
	// instead: both modes must meet the same spec on the same netlist.
	m := delay.NewModel(tech.Default013())
	for _, build := range []func() (*dag.Problem, error){
		func() (*dag.Problem, error) { return dag.GateLevel(gen.C17(), m) },
		func() (*dag.Problem, error) { return dag.TransistorLevel(gen.C17(), m) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
		res, err := Size(p, 0.6*tm.CP, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.CP > 0.6*tm.CP*(1+1e-9) {
			t.Fatalf("%s: spec missed", p.Name)
		}
	}
}

// TestGlobalOptimalityTinyCircuits grid-searches the full size space of
// tiny circuits and confirms MINFLOTRANSIT lands near the true optimum
// (Theorem 3 claims optimal sizing; the convex program's optimum is
// unique, so a fine grid brackets it).
func TestGlobalOptimalityTinyCircuits(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	for _, tc := range []struct {
		name string
		mk   func() *dag.Problem
	}{
		{"chain3", func() *dag.Problem {
			p, err := dag.GateLevel(gen.InverterChain(3), m)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"fork", func() *dag.Problem {
			p, err := dag.GateLevel(gen.Fork(), m)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	} {
		p := tc.mk()
		tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
		T := 0.65 * tm.CP
		res, err := Size(p, T, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Brute force over a geometric grid per gate.
		grid := []float64{}
		for x := 1.0; x <= 16.0001; x *= 1.04 {
			grid = append(grid, x)
		}
		n := p.NumSizable
		x := make([]float64, n)
		best := math.Inf(1)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				d := p.Delays(x)
				tmm, err := sta.Analyze(p.G, d)
				if err != nil || tmm.CP > T {
					return
				}
				if a := p.Area(x); a < best {
					best = a
				}
				return
			}
			for _, v := range grid {
				x[i] = v
				// Prune: partial area already above best.
				partial := 0.0
				for k := 0; k <= i; k++ {
					partial += p.AreaW[k] * x[k]
				}
				for k := i + 1; k < n; k++ {
					partial += p.AreaW[k] * p.MinSize
				}
				if partial >= best {
					continue
				}
				rec(i + 1)
			}
		}
		rec(0)
		if math.IsInf(best, 1) {
			t.Fatalf("%s: brute force found no feasible point", tc.name)
		}
		// The grid optimum is within ~4% quantization of the continuous
		// optimum; MINFLO must not be worse than grid-best by more than
		// a few percent.
		if res.Area > best*1.05 {
			t.Errorf("%s: MINFLO area %.2f vs grid optimum %.2f (+%.1f%%)",
				tc.name, res.Area, best, 100*(res.Area/best-1))
		}
		t.Logf("%s: MINFLO %.2f vs grid optimum %.2f", tc.name, res.Area, best)
	}
}

// TestEveryIterationFeasible: the D/W loop must never leave the
// feasible region — each iteration's post-W critical path stays at or
// below the target (budget safety, Corollary 1 plus the repair path).
func TestEveryIterationFeasible(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	for seed := int64(0); seed < 5; seed++ {
		ckt := gen.RandomLogic(5, 40+int(seed)*17, seed+100)
		p, err := dag.GateLevel(ckt, m)
		if err != nil {
			t.Fatal(err)
		}
		tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
		T := 0.55 * tm.CP
		ok := true
		res, err := Size(p, T, Options{OnIteration: func(st IterStats) {
			if st.CP > T*(1+1e-9) {
				ok = false
			}
		}})
		if err != nil {
			continue // infeasible target for this random circuit
		}
		if !ok {
			t.Fatalf("seed %d: an intermediate iteration violated the target", seed)
		}
		if res.CP > T*(1+1e-9) {
			t.Fatalf("seed %d: final CP violates target", seed)
		}
	}
}

// TestTransistorLevelAdder runs true transistor sizing on a multi-gate
// datapath — exercises the SCC block solves in lin at a larger scale.
func TestTransistorLevelAdder(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.TransistorLevel(gen.RippleAdder(4, gen.FAXor), m)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSizable < 80 {
		t.Fatalf("expected ≥80 devices, got %d", p.NumSizable)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.6 * tm.CP
	res, err := Size(p, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > T*(1+1e-9) {
		t.Fatalf("CP %g > %g", res.CP, T)
	}
	if res.Area > res.TilosArea*(1+1e-9) {
		t.Fatal("worse than TILOS at transistor level")
	}
	// N and P devices of the same gate should not be forced equal —
	// check that at least one gate has visibly asymmetric sizing.
	asym := false
	for i := 0; i+1 < p.NumSizable; i++ {
		if p.Labels[i][:len(p.Labels[i])-5] == p.Labels[i+1][:len(p.Labels[i+1])-5] {
			continue
		}
		_ = i
	}
	for i := range res.X {
		for j := range res.X {
			if i < j && res.X[i] > 1.2*res.X[j]+0.5 {
				asym = true
			}
		}
	}
	if !asym {
		t.Log("warning: no asymmetric device sizing observed (not fatal)")
	}
}
