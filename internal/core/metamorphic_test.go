// Metamorphic tests for the sizing loop: transformations of the input
// that must not change the optimizer's answer at all.  Unlike the
// equivalence-vs-reference gates (which compare two implementations on
// one input), these catch order- and scale-dependence bugs — a result
// that silently depends on gate input order, edge insertion order or
// the absolute magnitude of the load units would pass every
// twin-implementation test and still be irreproducible in practice.
//
// Two families:
//
//   - Load scaling: multiplying every capacitive load by a power of
//     two scales every delay by exactly that factor in IEEE floats, so
//     running with the delay target scaled identically — and the
//     integerization scales adjusted inversely, which leaves every
//     integerized flow cost and supply bit-identical — must reproduce
//     the exact same sizes, areas and iteration trajectory.
//
//   - Input permutation: reversing the input pin order of every gate
//     permutes construction order (edge insertion, coupling-term
//     order) without changing the problem, so sizes, areas and
//     iteration counts must be bit-identical.
package core

import (
	"testing"

	"minflo/internal/circuit"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

// metamorphicOptions pins the flow engine: the metamorphic invariants
// quantify over one exact trajectory, and the auto policy's timing
// probe is free to land on a different (equally optimal) backend per
// run.
func metamorphicOptions(costScale, supplyScale float64) Options {
	return Options{FlowEngine: "dial", Parallelism: 1, CostScale: costScale, SupplyScale: supplyScale}
}

// sizeProblem runs the optimizer at spec·Dmin and returns the result.
func sizeProblem(t *testing.T, p *dag.Problem, spec float64, opt Options) (*Result, float64) {
	t.Helper()
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Size(p, spec*tm.CP, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, tm.CP
}

func diffOutcome(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d != %d", tag, b.Iterations, a.Iterations)
	}
	if a.Area != b.Area {
		t.Fatalf("%s: area %v != %v (diff %g)", tag, b.Area, a.Area, b.Area-a.Area)
	}
	if a.TilosArea != b.TilosArea {
		t.Fatalf("%s: TILOS area %v != %v", tag, b.TilosArea, a.TilosArea)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: size vectors %d vs %d entries", tag, len(b.X), len(a.X))
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("%s: size[%d] %v != %v", tag, i, b.X[i], a.X[i])
		}
	}
	for i := range a.Stats {
		if a.Stats[i].Objective != b.Stats[i].Objective {
			t.Fatalf("%s: iteration %d objective %v != %v", tag, i+1,
				b.Stats[i].Objective, a.Stats[i].Objective)
		}
	}
}

// scaleTech multiplies every capacitive load parameter by k (drive
// resistances and size bounds untouched), scaling every gate delay by
// exactly k.
func scaleTech(p tech.Params, k float64) tech.Params {
	p.CGate *= k
	p.CDiff *= k
	p.CWire *= k
	return p
}

// TestMetamorphicLoadScaling sizes the same circuit under the base
// load model and under all loads scaled by 4 (a power of two, so the
// scaling is exact in floating point), with the delay target scaled
// by 4 and the integerization scales adjusted inversely — CostScale/4
// keeps every integerized arc cost bit-identical (⌊4w·S/4⌋ = ⌊w·S⌋),
// SupplyScale·4 does the same for the supplies.  Sizes, areas and the
// whole iteration trajectory must be bit-identical; the critical path
// must scale by exactly 4.
func TestMetamorphicLoadScaling(t *testing.T) {
	const k = 4.0
	base := tech.Default013()
	circuits := map[string]func() *dag.Problem{
		"c432": func() *dag.Problem {
			p, err := dag.GateLevel(gen.C432(), delay.NewModel(base))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"c432/scaled": func() *dag.Problem {
			p, err := dag.GateLevel(gen.C432(), delay.NewModel(scaleTech(base, k)))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"adder16+wires": func() *dag.Problem {
			wp, err := dag.GateLevelWithWires(gen.RippleAdder(16, gen.FABuffered),
				delay.NewModel(base), dag.DefaultWireParams())
			if err != nil {
				t.Fatal(err)
			}
			return wp.Problem
		},
		"adder16+wires/scaled": func() *dag.Problem {
			w := dag.DefaultWireParams()
			w.CUnit *= k
			w.CFringe *= k
			wp, err := dag.GateLevelWithWires(gen.RippleAdder(16, gen.FABuffered),
				delay.NewModel(scaleTech(base, k)), w)
			if err != nil {
				t.Fatal(err)
			}
			return wp.Problem
		},
	}
	for _, name := range []string{"c432", "adder16+wires"} {
		name := name
		t.Run(name, func(t *testing.T) {
			resA, cpA := sizeProblem(t, circuits[name](), 0.6, metamorphicOptions(1e6, 1e4))
			resB, cpB := sizeProblem(t, circuits[name+"/scaled"](), 0.6, metamorphicOptions(1e6/k, 1e4*k))
			if cpB != k*cpA {
				t.Fatalf("minimum-size CP did not scale exactly: %v vs %v·%v", cpB, k, cpA)
			}
			if resB.CP != k*resA.CP {
				t.Fatalf("final CP did not scale exactly: %v vs %v·%v", resB.CP, k, resA.CP)
			}
			diffOutcome(t, name, resA, resB)
		})
	}
}

// permuteInputs returns a clone of the circuit with every gate's input
// pin order reversed — same netlist, different construction order.
func permuteInputs(c *circuit.Circuit) *circuit.Circuit {
	p := c.Clone()
	for gi := range p.Gates {
		ins := p.Gates[gi].Ins
		for i, j := 0, len(ins)-1; i < j; i, j = i+1, j-1 {
			ins[i], ins[j] = ins[j], ins[i]
		}
	}
	return p
}

// TestMetamorphicInputPermutation sizes a circuit and its
// input-permuted twin: gate input order drives edge insertion order,
// coupling-term order and flow-arc numbering, none of which may leak
// into the result.  Areas, sizes and iteration counts must be
// bit-identical.
func TestMetamorphicInputPermutation(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	for _, tc := range []struct {
		name string
		ckt  *circuit.Circuit
	}{
		{"adder16", gen.RippleAdder(16, gen.FABuffered)},
		{"c432", gen.C432()},
		{"random", gen.RandomLogic(12, 160, 7)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			build := func(c *circuit.Circuit) *dag.Problem {
				p, err := dag.GateLevel(c, m)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			resA, _ := sizeProblem(t, build(tc.ckt), 0.55, metamorphicOptions(0, 0))
			resB, _ := sizeProblem(t, build(permuteInputs(tc.ckt)), 0.55, metamorphicOptions(0, 0))
			diffOutcome(t, tc.name, resA, resB)
		})
	}
}
