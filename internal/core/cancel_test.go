// SizeCtx abort semantics: cancellation and budgets return the
// best-so-far sizing tagged Partial together with the typed error, and
// an aborted run leaves no residue — re-running on the same problem is
// bit-identical to a run on a never-touched twin.
package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

// cancelProblem builds the standard abort-test workload and a target
// that forces a multi-iteration optimization.
func cancelProblem(t *testing.T) (*dag.Problem, float64) {
	t.Helper()
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	return p, 0.5 * tm.CP
}

// pinned returns deterministic options (fixed engine, serial) so twin
// runs are bit-comparable.
func pinned() Options {
	return Options{FlowEngine: "dial", Parallelism: 1}
}

func TestSizeCtxCancelBetweenIterations(t *testing.T) {
	p, T := cancelProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := pinned()
	opt.OnIteration = func(st IterStats) {
		if st.Iter == 2 {
			cancel()
		}
	}
	res, err := SizeCtx(ctx, p, T, opt)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SizeCtx = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want a partial result, got %+v", res)
	}
	if res.Iterations < 2 {
		t.Fatalf("want ≥2 completed iterations before the cancel, got %d", res.Iterations)
	}
	// The partial answer must be a real answer: feasible at the target.
	if res.CP > T*(1+1e-9) {
		t.Fatalf("partial result infeasible: CP %g > %g", res.CP, T)
	}
	if res.Area > res.TilosArea*(1+1e-9) {
		t.Fatalf("partial result worse than its own TILOS seed: %g > %g", res.Area, res.TilosArea)
	}
}

func TestSizeCtxPreCanceled(t *testing.T) {
	p, T := cancelProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SizeCtx(ctx, p, T, pinned())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SizeCtx = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want the TILOS seed as a partial result, got %+v", res)
	}
	if res.Iterations != 0 {
		t.Fatalf("no iteration should have run, got %d", res.Iterations)
	}
	if res.Area != res.TilosArea || res.CP != res.TilosCP {
		t.Fatalf("pre-cancel partial should be the TILOS seed: area %g vs %g, CP %g vs %g",
			res.Area, res.TilosArea, res.CP, res.TilosCP)
	}
}

func TestSizeCtxWallClockBudget(t *testing.T) {
	p, T := cancelProblem(t)
	opt := pinned()
	opt.Budget = time.Nanosecond // expires during/right after the seed
	res, err := SizeCtx(context.Background(), p, T, opt)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("SizeCtx = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want a partial result, got %+v", res)
	}
	if res.CP > T*(1+1e-9) {
		t.Fatalf("partial result infeasible: CP %g > %g", res.CP, T)
	}
}

func TestSizeCtxFlowWorkBudget(t *testing.T) {
	p, T := cancelProblem(t)
	opt := pinned()
	opt.FlowWorkBudget = 1 // the first D-phase augmentation exhausts it
	res, err := SizeCtx(context.Background(), p, T, opt)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("SizeCtx = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want a partial result, got %+v", res)
	}
	if res.Iterations != 0 {
		t.Fatalf("no full iteration can fit in one flow operation, got %d", res.Iterations)
	}
	if res.CP > T*(1+1e-9) {
		t.Fatalf("partial (TILOS) result infeasible: CP %g > %g", res.CP, T)
	}
}

// TestSizeCtxNoResidueAfterCancel: an aborted optimization leaves the
// problem reusable — a fresh uncanceled Size on the same problem is
// bit-identical to a run on a never-touched twin problem.
func TestSizeCtxNoResidueAfterCancel(t *testing.T) {
	p, T := cancelProblem(t)
	twin, _ := cancelProblem(t)
	want, err := Size(twin, T, pinned())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := pinned()
	opt.OnIteration = func(st IterStats) {
		if st.Iter == 1 {
			cancel()
		}
	}
	if _, err := SizeCtx(ctx, p, T, opt); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SizeCtx = %v, want ErrCanceled", err)
	}

	got, err := Size(p, T, pinned())
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != want.Area || got.CP != want.CP || got.Iterations != want.Iterations {
		t.Fatalf("post-cancel run diverged: area %g vs %g, CP %g vs %g, iters %d vs %d",
			got.Area, want.Area, got.CP, want.CP, got.Iterations, want.Iterations)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("post-cancel run diverged at x[%d]: %g vs %g", i, got.X[i], want.X[i])
		}
	}
}

// TestSizeHealthyRunReportsNoFailures: the failure counter stays zero
// on an undisturbed run (the fallback chain is dormant, not active).
func TestSizeHealthyRunReportsNoFailures(t *testing.T) {
	p, T := cancelProblem(t)
	res, err := Size(p, T, pinned())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("healthy run marked Partial")
	}
	for _, st := range res.Stats {
		if st.FlowEngineFailures != 0 {
			t.Fatalf("iteration %d reports %d engine failures on a healthy run", st.Iter, st.FlowEngineFailures)
		}
	}
}
