// Package circuit provides the combinational netlist model: primary
// inputs, single-output gates drawn from the cell library, and primary
// output markers.  It supports structural validation, levelization,
// functional simulation, and area accounting, and is the substrate on
// which the DAG, timing, and sizing layers operate.
package circuit

import (
	"errors"
	"fmt"

	"minflo/internal/cell"
	"minflo/internal/graph"
)

// RefKind distinguishes the two driver classes a gate input can see.
type RefKind int8

const (
	// RefPI refers to a primary input.
	RefPI RefKind = iota
	// RefGate refers to a gate output.
	RefGate
)

// Ref identifies a signal driver: a primary input or a gate output.
type Ref struct {
	Kind  RefKind
	Index int
}

// PIRef and GateRef are convenience constructors.
func PIRef(i int) Ref   { return Ref{RefPI, i} }
func GateRef(i int) Ref { return Ref{RefGate, i} }

// Gate is one instance of a library cell.
type Gate struct {
	Name string
	Kind cell.Kind
	Ins  []Ref
	// Size is the gate's sizing variable x (unit = minimum size 1.0).
	Size float64
}

// Circuit is a combinational netlist.
type Circuit struct {
	Name   string
	PIs    []string
	Gates  []Gate
	POs    []Ref
	byName map[string]Ref
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]Ref)}
}

// NumGates returns the gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumPIs returns the primary-input count.
func (c *Circuit) NumPIs() int { return len(c.PIs) }

// AddPI declares a primary input and returns its Ref.
func (c *Circuit) AddPI(name string) Ref {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate signal name %q", name))
	}
	r := PIRef(len(c.PIs))
	c.PIs = append(c.PIs, name)
	c.byName[name] = r
	return r
}

// AddGate instantiates a cell driven by ins and returns its output Ref.
// The gate starts at minimum size 1.0.
func (c *Circuit) AddGate(name string, kind cell.Kind, ins ...Ref) Ref {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate signal name %q", name))
	}
	cc := cell.Get(kind)
	if len(ins) != cc.NumInputs {
		panic(fmt.Sprintf("circuit: gate %q: cell %s wants %d inputs, got %d",
			name, cc.Name, cc.NumInputs, len(ins)))
	}
	r := GateRef(len(c.Gates))
	c.Gates = append(c.Gates, Gate{Name: name, Kind: kind, Ins: append([]Ref(nil), ins...), Size: 1.0})
	c.byName[name] = r
	return r
}

// MarkPO declares a signal as a primary output.
func (c *Circuit) MarkPO(r Ref) { c.POs = append(c.POs, r) }

// RemoveGate deletes gate g.  It fails if the gate's output is still
// read — by another gate or a primary output — since splicing a live
// driver would leave dangling refs.  Gate indices above g shift down
// by one; callers holding external index-based references own the
// remap.
func (c *Circuit) RemoveGate(g int) error {
	if g < 0 || g >= len(c.Gates) {
		return fmt.Errorf("circuit: RemoveGate index %d out of range [0,%d)", g, len(c.Gates))
	}
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate && in.Index == g {
				return fmt.Errorf("circuit: gate %q still drives gate %q", c.Gates[g].Name, c.Gates[gi].Name)
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == RefGate && po.Index == g {
			return fmt.Errorf("circuit: gate %q still drives a primary output", c.Gates[g].Name)
		}
	}
	delete(c.byName, c.Gates[g].Name)
	c.Gates = append(c.Gates[:g], c.Gates[g+1:]...)
	for gi := range c.Gates {
		ins := c.Gates[gi].Ins
		for k := range ins {
			if ins[k].Kind == RefGate && ins[k].Index > g {
				ins[k].Index--
			}
		}
	}
	for k := range c.POs {
		if c.POs[k].Kind == RefGate && c.POs[k].Index > g {
			c.POs[k].Index--
		}
	}
	for name, r := range c.byName {
		if r.Kind == RefGate && r.Index > g {
			c.byName[name] = Ref{RefGate, r.Index - 1}
		}
	}
	return nil
}

// Lookup resolves a signal name.
func (c *Circuit) Lookup(name string) (Ref, bool) {
	r, ok := c.byName[name]
	return r, ok
}

// SignalName returns the name of the driver r.
func (c *Circuit) SignalName(r Ref) string {
	if r.Kind == RefPI {
		return c.PIs[r.Index]
	}
	return c.Gates[r.Index].Name
}

// Sizes returns a copy of all gate sizes, indexed by gate.
func (c *Circuit) Sizes() []float64 {
	s := make([]float64, len(c.Gates))
	for i := range c.Gates {
		s[i] = c.Gates[i].Size
	}
	return s
}

// SetSizes overwrites all gate sizes.
func (c *Circuit) SetSizes(s []float64) {
	if len(s) != len(c.Gates) {
		panic(fmt.Sprintf("circuit: SetSizes length %d != %d gates", len(s), len(c.Gates)))
	}
	for i := range c.Gates {
		c.Gates[i].Size = s[i]
	}
}

// ResetSizes sets every gate to the given size.
func (c *Circuit) ResetSizes(x float64) {
	for i := range c.Gates {
		c.Gates[i].Size = x
	}
}

// Area returns Σ_g UnitArea(cell)·x_g — the paper's objective (total
// transistor width; in gate sizing every transistor of a gate scales
// with the gate's x).
func (c *Circuit) Area() float64 {
	var a float64
	for i := range c.Gates {
		a += cell.Get(c.Gates[i].Kind).UnitArea * c.Gates[i].Size
	}
	return a
}

// MinArea returns the area of the minimum-sized circuit.
func (c *Circuit) MinArea(minSize float64) float64 {
	var a float64
	for i := range c.Gates {
		a += cell.Get(c.Gates[i].Kind).UnitArea * minSize
	}
	return a
}

// GateGraph builds the gate-connectivity DAG (vertex per gate, edge
// g→h when h reads g's output). PIs are not vertices.
func (c *Circuit) GateGraph() *graph.Digraph {
	g := graph.New(len(c.Gates))
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate {
				g.AddEdge(in.Index, gi)
			}
		}
	}
	return g
}

// Levelize returns the gates in topological order (inputs before
// outputs). It fails on combinational cycles.
func (c *Circuit) Levelize() ([]int, error) {
	order, err := c.GateGraph().TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("circuit %q: %w", c.Name, err)
	}
	return order, nil
}

// Fanouts returns, for each gate, the indices of gates reading its
// output, plus how many POs it drives directly.
func (c *Circuit) Fanouts() (fan [][]int, poCount []int) {
	fan = make([][]int, len(c.Gates))
	poCount = make([]int, len(c.Gates))
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate {
				fan[in.Index] = append(fan[in.Index], gi)
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == RefGate {
			poCount[po.Index]++
		}
	}
	return fan, poCount
}

// FanoutCounts returns, in one pass and two allocations, the number of
// driven gate pins and primary outputs per gate — the degrees-only
// companion of FanoutsCSR for callers that never walk the fanout lists
// (e.g. the drives-nothing validation in dag.GateLevel).
func (c *Circuit) FanoutCounts() (fanCount, poCount []int32) {
	fanCount = make([]int32, len(c.Gates))
	poCount = make([]int32, len(c.Gates))
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate {
				fanCount[in.Index]++
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == RefGate {
			poCount[po.Index]++
		}
	}
	return fanCount, poCount
}

// FanoutsCSR is the flat-array variant of Fanouts for construction hot
// paths: the gates driven by gate g (with multiplicity, one entry per
// driven pin) are fanIdx[fanPtr[g]:fanPtr[g+1]], and poCount[g] counts
// the primary outputs g drives.  Three allocations total, against
// Fanouts' one-growing-slice-per-gate.
func (c *Circuit) FanoutsCSR() (fanPtr, fanIdx []int32, poCount []int32) {
	n := len(c.Gates)
	fanPtr = make([]int32, n+1)
	poCount = make([]int32, n)
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate {
				fanPtr[in.Index+1]++
			}
		}
	}
	for g := 0; g < n; g++ {
		fanPtr[g+1] += fanPtr[g]
	}
	fanIdx = make([]int32, fanPtr[n])
	cursor := append([]int32(nil), fanPtr[:n]...)
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate {
				fanIdx[cursor[in.Index]] = int32(gi)
				cursor[in.Index]++
			}
		}
	}
	for _, po := range c.POs {
		if po.Kind == RefGate {
			poCount[po.Index]++
		}
	}
	return fanPtr, fanIdx, poCount
}

// Validate checks structural well-formedness: valid refs, correct cell
// arity, at least one PO, no combinational cycles, every gate reachable
// from some PI or constant-free, and every PO driven.
func (c *Circuit) Validate() error {
	if len(c.POs) == 0 {
		return errors.New("circuit: no primary outputs")
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		cc := cell.Get(g.Kind)
		if len(g.Ins) != cc.NumInputs {
			return fmt.Errorf("circuit: gate %q arity %d != cell %s arity %d",
				g.Name, len(g.Ins), cc.Name, cc.NumInputs)
		}
		if g.Size <= 0 {
			return fmt.Errorf("circuit: gate %q has non-positive size %g", g.Name, g.Size)
		}
		for _, in := range g.Ins {
			if err := c.checkRef(in); err != nil {
				return fmt.Errorf("circuit: gate %q: %w", g.Name, err)
			}
		}
	}
	for _, po := range c.POs {
		if err := c.checkRef(po); err != nil {
			return fmt.Errorf("circuit: PO: %w", err)
		}
	}
	if _, err := c.Levelize(); err != nil {
		return err
	}
	return nil
}

func (c *Circuit) checkRef(r Ref) error {
	switch r.Kind {
	case RefPI:
		if r.Index < 0 || r.Index >= len(c.PIs) {
			return fmt.Errorf("dangling PI ref %d", r.Index)
		}
	case RefGate:
		if r.Index < 0 || r.Index >= len(c.Gates) {
			return fmt.Errorf("dangling gate ref %d", r.Index)
		}
	default:
		return fmt.Errorf("bad ref kind %d", r.Kind)
	}
	return nil
}

// Evaluate simulates the circuit on the given PI assignment and returns
// the PO values in declaration order.
func (c *Circuit) Evaluate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.PIs) {
		return nil, fmt.Errorf("circuit: Evaluate got %d inputs, want %d", len(inputs), len(c.PIs))
	}
	order, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	val := make([]bool, len(c.Gates))
	scratch := make([]bool, 8)
	for _, gi := range order {
		g := &c.Gates[gi]
		in := scratch[:0]
		for _, r := range g.Ins {
			if r.Kind == RefPI {
				in = append(in, inputs[r.Index])
			} else {
				in = append(in, val[r.Index])
			}
		}
		val[gi] = cell.Get(g.Kind).Eval(in)
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		if po.Kind == RefPI {
			out[i] = inputs[po.Index]
		} else {
			out[i] = val[po.Index]
		}
	}
	return out, nil
}

// Stats summarizes the circuit for reporting.
type Stats struct {
	Gates, PIs, POs int
	Levels          int
	MaxFanout       int
	Transistors     int
}

// ComputeStats derives summary statistics (logic depth in gate levels,
// max fanout, transistor count).
func (c *Circuit) ComputeStats() (Stats, error) {
	st := Stats{Gates: len(c.Gates), PIs: len(c.PIs), POs: len(c.POs)}
	order, err := c.Levelize()
	if err != nil {
		return st, err
	}
	level := make([]int, len(c.Gates))
	for _, gi := range order {
		lv := 1
		for _, in := range c.Gates[gi].Ins {
			if in.Kind == RefGate && level[in.Index]+1 > lv {
				lv = level[in.Index] + 1
			}
		}
		level[gi] = lv
		if lv > st.Levels {
			st.Levels = lv
		}
	}
	fan, po := c.Fanouts()
	for gi := range c.Gates {
		if f := len(fan[gi]) + po[gi]; f > st.MaxFanout {
			st.MaxFanout = f
		}
		cc := cell.Get(c.Gates[gi].Kind)
		st.Transistors += cc.Pulldown.CountTransistors() + cc.Pullup.CountTransistors()
	}
	return st, nil
}

// Clone returns a deep copy (sizes included).
func (c *Circuit) Clone() *Circuit {
	n := New(c.Name)
	n.PIs = append([]string(nil), c.PIs...)
	n.POs = append([]Ref(nil), c.POs...)
	n.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		n.Gates[i] = Gate{Name: g.Name, Kind: g.Kind, Ins: append([]Ref(nil), g.Ins...), Size: g.Size}
	}
	for name, r := range c.byName {
		n.byName[name] = r
	}
	return n
}
