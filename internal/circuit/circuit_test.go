package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/cell"
)

// half adder: sum = a⊕b, carry = a·b.
func mkHalfAdder() *Circuit {
	c := New("ha")
	a := c.AddPI("a")
	b := c.AddPI("b")
	sum := c.AddGate("sum", cell.Xor2, a, b)
	carry := c.AddGate("carry", cell.And2, a, b)
	c.MarkPO(sum)
	c.MarkPO(carry)
	return c
}

func TestBuildAndValidate(t *testing.T) {
	c := mkHalfAdder()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 || c.NumPIs() != 2 {
		t.Fatalf("counts: %d gates %d PIs", c.NumGates(), c.NumPIs())
	}
}

func TestEvaluateHalfAdder(t *testing.T) {
	c := mkHalfAdder()
	for _, tc := range []struct {
		a, b, sum, carry bool
	}{
		{false, false, false, false},
		{true, false, true, false},
		{false, true, true, false},
		{true, true, false, true},
	} {
		out, err := c.Evaluate([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.sum || out[1] != tc.carry {
			t.Errorf("HA(%v,%v) = %v", tc.a, tc.b, out)
		}
	}
}

func TestEvaluateWrongArity(t *testing.T) {
	if _, err := mkHalfAdder().Evaluate([]bool{true}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	c := New("dup")
	c.AddPI("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	c.AddPI("x")
}

func TestWrongGateArityPanics(t *testing.T) {
	c := New("bad")
	a := c.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	c.AddGate("g", cell.Nand2, a) // NAND2 needs two inputs
}

func TestValidateNoPOs(t *testing.T) {
	c := New("nopo")
	a := c.AddPI("a")
	c.AddGate("g", cell.Inv, a)
	if err := c.Validate(); err == nil {
		t.Fatal("expected error: no POs")
	}
}

func TestValidateBadSize(t *testing.T) {
	c := mkHalfAdder()
	c.Gates[0].Size = -1
	if err := c.Validate(); err == nil {
		t.Fatal("expected error: negative size")
	}
}

func TestValidateDanglingRef(t *testing.T) {
	c := mkHalfAdder()
	c.Gates[0].Ins[0] = GateRef(99)
	if err := c.Validate(); err == nil {
		t.Fatal("expected error: dangling ref")
	}
}

func TestLevelizeCycle(t *testing.T) {
	c := New("cyc")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Nand2, a, a)
	_ = g1
	// Introduce a cycle by hand.
	c.Gates[0].Ins[1] = GateRef(0)
	c.MarkPO(GateRef(0))
	if _, err := c.Levelize(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic netlists")
	}
}

func TestAreaAndSizes(t *testing.T) {
	c := mkHalfAdder()
	base := c.Area()
	want := cell.Get(cell.Xor2).UnitArea + cell.Get(cell.And2).UnitArea
	if base != want {
		t.Fatalf("min area %g, want %g", base, want)
	}
	c.SetSizes([]float64{2, 3})
	scaled := c.Area()
	want = 2*cell.Get(cell.Xor2).UnitArea + 3*cell.Get(cell.And2).UnitArea
	if scaled != want {
		t.Fatalf("scaled area %g, want %g", scaled, want)
	}
	s := c.Sizes()
	if s[0] != 2 || s[1] != 3 {
		t.Fatalf("sizes %v", s)
	}
	c.ResetSizes(1)
	if c.Area() != base {
		t.Fatal("ResetSizes failed")
	}
	if c.MinArea(1) != base {
		t.Fatalf("MinArea %g != %g", c.MinArea(1), base)
	}
}

func TestSetSizesWrongLengthPanics(t *testing.T) {
	c := mkHalfAdder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SetSizes([]float64{1})
}

func TestFanouts(t *testing.T) {
	c := New("fan")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Inv, a)
	g2 := c.AddGate("g2", cell.Inv, g1)
	g3 := c.AddGate("g3", cell.Inv, g1)
	_ = g2
	c.MarkPO(g3)
	c.MarkPO(g2)
	c.MarkPO(g1)
	fan, po := c.Fanouts()
	if len(fan[0]) != 2 {
		t.Fatalf("g1 fanout %v", fan[0])
	}
	if po[0] != 1 || po[1] != 1 || po[2] != 1 {
		t.Fatalf("po counts %v", po)
	}
}

func TestLookupAndSignalName(t *testing.T) {
	c := mkHalfAdder()
	r, ok := c.Lookup("sum")
	if !ok || r.Kind != RefGate {
		t.Fatalf("Lookup(sum) = %v %v", r, ok)
	}
	if c.SignalName(r) != "sum" {
		t.Fatalf("SignalName round trip failed")
	}
	if c.SignalName(PIRef(0)) != "a" {
		t.Fatalf("PI name wrong")
	}
	if _, ok := c.Lookup("zzz"); ok {
		t.Fatal("Lookup invented a signal")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := mkHalfAdder()
	d := c.Clone()
	d.Gates[0].Size = 7
	if c.Gates[0].Size == 7 {
		t.Fatal("clone shares gate storage")
	}
	out1, _ := c.Evaluate([]bool{true, true})
	out2, _ := d.Evaluate([]bool{true, true})
	if out1[0] != out2[0] || out1[1] != out2[1] {
		t.Fatal("clone changed logic")
	}
}

func TestComputeStats(t *testing.T) {
	c := mkHalfAdder()
	st, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gates != 2 || st.PIs != 2 || st.POs != 2 || st.Levels != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Transistors == 0 {
		t.Fatal("no transistors counted")
	}
}

// Property: for random chain circuits, levelization respects input
// order and Evaluate matches a direct recursive evaluation.
func TestQuickLevelizeRespectsDeps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("q")
		pool := []Ref{c.AddPI("i0"), c.AddPI("i1")}
		n := 3 + rng.Intn(20)
		for g := 0; g < n; g++ {
			in1 := pool[rng.Intn(len(pool))]
			in2 := pool[rng.Intn(len(pool))]
			pool = append(pool, c.AddGate(nameOf(g), cell.Nand2, in1, in2))
		}
		c.MarkPO(pool[len(pool)-1])
		order, err := c.Levelize()
		if err != nil {
			return false
		}
		pos := make([]int, len(c.Gates))
		for i, gi := range order {
			pos[gi] = i
		}
		for gi := range c.Gates {
			for _, in := range c.Gates[gi].Ins {
				if in.Kind == RefGate && pos[in.Index] >= pos[gi] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func nameOf(g int) string { return "g" + string(rune('A'+g%26)) + string(rune('0'+g/26)) }
