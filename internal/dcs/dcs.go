// Package dcs solves the D-phase linear program of MINFLOTRANSIT:
//
//	maximize   Σ objective terms  c·(r(p) − r(m))
//	subject to r(u) − r(v) ≤ w(u,v)          (difference constraints)
//	           r(v) = 0 for pinned v          (PIs and the dummy sink O)
//
// via its dual, a minimum-cost network flow (paper §2.3.1, ref [14]).
//
// Each difference constraint becomes an uncapacitated arc u→v of cost w;
// each objective term contributes supply +c at p and demand −c at m
// (balance is preserved by construction, mirroring the paper's
// Σ C_i·(r(Dmy(i)) − r(i)) objective).  Pinned variables are tied to a
// ground node with a pair of zero-cost constraints.  The optimal r is
// recovered from the node potentials of the flow solver, and strong
// duality (primal objective == dual flow cost) is checked before
// returning, so every solution is certified optimal.
//
// A System separates build-once topology from per-iteration data.  The
// constraint endpoints, objective endpoints and pins define the flow
// network, which is built once and cached (arc IDs recorded per
// constraint); SetWeight and SetObjectiveCoeff update costs and
// supplies in place, so the D/W iteration of internal/core re-solves
// the same network dozens of times without reconstructing it — each
// re-solve also warm-starts the flow solver from the previous duals.
//
// Re-solves are incremental: Solve diffs every constraint's integerized
// cost against the value currently priced into the flow network and
// hands exactly the changed-arc set to mcmf's ResolveChanged, which
// repairs the previous optimal flow (drain-and-reroute) instead of
// rerouting every supply.  Supply deltas are diffed inside mcmf, and
// arc capacities use a stable doubling bound (capBound) so they only
// count as changed when the bound actually grows.  Options.Engine
// selects the flow backend ("ssp", "dial", "costscaling", "cspar",
// "parallel"), or Options.Calibrate probes a candidate list on the
// first solve and keeps the fastest; engines can change between Solve
// calls without losing the cached network.
//
// Costs and supplies are integerized by scaling (the paper's
// "multiply by a power of 10 and round" step); Options selects the
// scales.
package dcs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"minflo/internal/mcmf"
)

// ErrInfeasible is returned when the constraint system has no solution
// (a negative-weight cycle in the constraint graph).
var ErrInfeasible = errors.New("dcs: constraint system infeasible (negative cycle)")

// ErrUnbounded is returned when the objective can be improved without
// bound (should not occur for well-formed D-phase instances, where r=0
// is feasible and all displacement windows are finite).
var ErrUnbounded = errors.New("dcs: objective unbounded")

type constraint struct {
	u, v int
	w    float64
}

type objTerm struct {
	plus, minus int
	coeff       float64
}

// System accumulates a difference-constraint LP and owns the cached
// min-cost-flow network its Solve calls reuse.
type System struct {
	n      int
	cons   []constraint
	obj    []objTerm
	pinned []int

	// Cached flow network.  Valid while builtVersion == topoVersion;
	// adding constraints, objectives or pins bumps topoVersion and
	// forces a rebuild on the next Solve.
	flow         *mcmf.Solver
	consArc      []int    // flow arc ID per constraint
	pinArc       [][2]int // flow arc pair per pin
	topoVersion  int
	builtVersion int
	builds       int

	// Incremental-re-solve state: the integerized cost currently priced
	// into the flow network per constraint (valid when priced), the
	// stable capacity bound on the uncapacitated arcs, and the reused
	// changed-arc buffer handed to ResolveChanged.
	lastCost []int64
	priced   bool
	capBound int64
	changed  []int32
	// pending accumulates the arcs re-priced since the last flow solve
	// that actually completed: SetCost applies immediately, so a
	// canceled or failed solve leaves its cost edits in the network
	// while the engine's rolled-back optimum still prices the OLD
	// costs.  The next ResolveChanged must therefore list those arcs
	// too, or it repairs against stale potentials and the optimality
	// certificate fails.  pendingIn dedups arcs across retries.
	pending   []int32
	pendingIn []bool
	// lastChanged records how many arcs the most recent Solve handed
	// to the incremental re-flow — the observable locality of a
	// re-solve (an externally-seeded warm start whose costs barely
	// moved shows up as a small changed set here).
	lastChanged int
	// calibrated records that the cached network's engine was chosen
	// by the Options.Calibrate startup probe (reset on rebuild).
	calibrated bool
	// degraded latches once the flow solver's fallback chain replaced
	// a failed engine with ssp (see mcmf abort.go): while set, Solve
	// stops re-pinning Options.Engine, so the failed backend is not
	// reinstalled on the next iteration.  Reset on rebuild.
	degraded bool

	// sol is the reused Solution storage: Solve rewrites it in place so
	// steady-state re-solves allocate nothing.
	sol Solution
}

// NewSystem creates a system over n variables r(0..n-1).
func NewSystem(n int) *System {
	return &System{n: n, builtVersion: -1}
}

// NumVars returns the number of variables.
func (s *System) NumVars() int { return s.n }

// NumConstraints returns the number of difference constraints added.
func (s *System) NumConstraints() int { return len(s.cons) }

// NumObjectives returns the number of objective terms added.
func (s *System) NumObjectives() int { return len(s.obj) }

// Builds returns how many times the flow network has been constructed —
// a correctly reused System reports 1 no matter how many Solve calls it
// served (asserted by the core optimizer tests).
func (s *System) Builds() int { return s.builds }

// AddConstraint adds r(u) − r(v) ≤ w and returns the constraint's ID
// for later SetWeight updates.
func (s *System) AddConstraint(u, v int, w float64) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic(fmt.Sprintf("dcs: AddConstraint(%d,%d) out of range [0,%d)", u, v, s.n))
	}
	checkWeight(w)
	s.cons = append(s.cons, constraint{u, v, w})
	s.topoVersion++
	return len(s.cons) - 1
}

// SetWeight updates the right-hand side of constraint id in place:
// r(u) − r(v) ≤ w with the original endpoints.  The cached flow network
// is kept; only the arc cost changes on the next Solve.
func (s *System) SetWeight(id int, w float64) {
	checkWeight(w)
	s.cons[id].w = w
}

// AddObjective adds the term coeff·(r(plus) − r(minus)) to the
// maximized objective and returns the term's ID for later
// SetObjectiveCoeff updates.  Coefficients must be non-negative (the
// paper's C_i > 0); zero-coefficient terms are kept so IDs stay stable
// across coefficient updates.
func (s *System) AddObjective(plus, minus int, coeff float64) int {
	if plus < 0 || plus >= s.n || minus < 0 || minus >= s.n {
		panic(fmt.Sprintf("dcs: AddObjective(%d,%d) out of range [0,%d)", plus, minus, s.n))
	}
	checkCoeff(coeff)
	s.obj = append(s.obj, objTerm{plus, minus, coeff})
	s.topoVersion++
	return len(s.obj) - 1
}

// SetObjectiveCoeff updates the coefficient of objective term id in
// place (endpoints unchanged).
func (s *System) SetObjectiveCoeff(id int, coeff float64) {
	checkCoeff(coeff)
	s.obj[id].coeff = coeff
}

func checkWeight(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		panic("dcs: non-finite constraint weight")
	}
}

func checkCoeff(c float64) {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic("dcs: objective coefficient must be finite and non-negative")
	}
}

// Pin forces r(v) = 0 in the solution.
func (s *System) Pin(v int) {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("dcs: Pin(%d) out of range [0,%d)", v, s.n))
	}
	s.pinned = append(s.pinned, v)
	s.topoVersion++
}

// Options controls integerization and the flow backend. Zero values
// select the defaults.
type Options struct {
	// CostScale multiplies constraint weights before rounding to int64.
	// Default 1e6 (the paper: "by choosing appropriate powers of 10
	// arbitrary accuracy can be maintained").
	CostScale float64
	// SupplyScale multiplies objective coefficients before rounding.
	// Default 1e4.
	SupplyScale float64
	// Engine selects the min-cost-flow backend by mcmf registry name
	// ("ssp", "dial", "costscaling", "cspar", "parallel").  Empty
	// keeps the solver's current engine (the mcmf default on a fresh
	// network).  Switching engines between Solve calls keeps the
	// cached network and its warm state.
	Engine string
	// Calibrate, when non-empty, replaces the fixed Engine choice with
	// a startup probe: the first Solve on a freshly built network times
	// one cold solve per listed candidate (mcmf.CalibrateEngines) and
	// keeps the fastest; subsequent Solves reuse the winner (Engine is
	// ignored while Calibrate is set).  FlowEngineName reports the
	// winner.  The probe picks on wall time, so repeated runs may keep
	// different — equally optimal — backends; pin Engine instead when
	// the exact solution trajectory must be reproducible.
	Calibrate []string
	// Parallelism is the worker budget handed to parallelism-aware
	// flow engines (0 = GOMAXPROCS at solve time).  It never changes
	// results — the parallel backend is bit-identical to serial.
	Parallelism int
	// Deadline, when non-zero, aborts flow solves running past it with
	// mcmf.ErrBudgetExhausted (sampled at the engines' poll points).
	Deadline time.Time
	// WorkBudget, when positive, caps the cumulative flow work (in
	// mcmf poll operations) across every solve on the cached network;
	// exceeding it returns mcmf.ErrBudgetExhausted.
	WorkBudget int64
	// EngineFallback enables graceful degradation in the flow solver:
	// a failed engine (panic, price-range refusal) is replaced by the
	// ssp reference engine and the solve retried there, recording the
	// failure (FlowEngineFailures).  internal/core enables this for
	// the sizing pipeline; direct users opt in.
	EngineFallback bool
}

func (o Options) withDefaults() Options {
	if o.CostScale == 0 {
		o.CostScale = 1e6
	}
	if o.SupplyScale == 0 {
		o.SupplyScale = 1e4
	}
	return o
}

// Solution of a System.
type Solution struct {
	R         []float64 // optimal r, pinned entries exactly 0
	Objective float64   // Σ coeff·(r(plus) − r(minus)) at the optimum
	FlowCost  float64   // dual objective (scaled units), for diagnostics
	Arcs      int       // size of the flow instance
}

// ensureFlow returns the cached flow network, rebuilding it only when
// the topology changed since the last build.  Costs, capacities and
// supplies are diffed in by Solve on every call, so the returned
// network only needs correct arcs.
func (s *System) ensureFlow() *mcmf.Solver {
	if s.flow != nil && s.builtVersion == s.topoVersion {
		return s.flow
	}
	ground := s.n
	f := mcmf.New(s.n + 1)
	s.consArc = s.consArc[:0]
	for _, c := range s.cons {
		s.consArc = append(s.consArc, f.AddArc(c.u, c.v, 0, 0))
	}
	s.pinArc = s.pinArc[:0]
	for _, v := range s.pinned {
		// r(v) = r(ground): zero-cost arcs both ways.
		s.pinArc = append(s.pinArc, [2]int{
			f.AddArc(v, ground, 0, 0),
			f.AddArc(ground, v, 0, 0),
		})
	}
	s.flow = f
	s.builtVersion = s.topoVersion
	s.builds++
	// Fresh network: nothing is priced yet, everything below starts
	// from the full-solve path (and a calibrated engine choice must be
	// re-probed on the new topology).
	s.priced = false
	s.calibrated = false
	s.degraded = false
	s.capBound = 0
	if cap(s.lastCost) < len(s.cons) {
		s.lastCost = make([]int64, len(s.cons))
	}
	s.lastCost = s.lastCost[:len(s.cons)]
	s.pending = s.pending[:0]
	numArcs := len(s.cons) + 2*len(s.pinned)
	if cap(s.pendingIn) < numArcs {
		s.pendingIn = make([]bool, numArcs)
	}
	s.pendingIn = s.pendingIn[:numArcs]
	for i := range s.pendingIn {
		s.pendingIn[i] = false
	}
	return f
}

// FlowEngineName reports the mcmf backend the cached network uses
// ("" before the first Solve).
func (s *System) FlowEngineName() string {
	if s.flow == nil {
		return ""
	}
	return s.flow.EngineName()
}

// FlowEngineStats reports the cached network's engine counters — the
// observable record of how many Solve calls ran incrementally
// (Stats.Resolves) versus from scratch.
func (s *System) FlowEngineStats() mcmf.Stats {
	if s.flow == nil {
		return mcmf.Stats{}
	}
	return s.flow.EngineStats()
}

// LastChangedArcs reports how many arc costs the most recent Solve
// actually re-priced into the flow network — the locality measure of
// a warm re-solve.  A resize seeded from a nearby previous optimum
// perturbs few constraint weights, so its first D-phase shows a small
// changed set here where a cold-seeded resize re-prices broadly.
func (s *System) LastChangedArcs() int { return s.lastChanged }

// FlowWorkDone reports the cached network's cumulative armed flow
// work (mcmf poll operations).  Long-lived callers running many
// solves with per-call work budgets add this base to their per-call
// allowance, because Options.WorkBudget caps the solver's cumulative
// counter, not one call.
func (s *System) FlowWorkDone() int64 {
	if s.flow == nil {
		return 0
	}
	return s.flow.WorkDone()
}

// FlowEngineFailures reports how many times a flow engine failed and
// the solver degraded to ssp (0 without Options.EngineFallback).
func (s *System) FlowEngineFailures() int {
	if s.flow == nil {
		return 0
	}
	return s.flow.EngineFailures()
}

// Solve maps the system to its min-cost-flow dual, solves it, verifies
// optimality certificates, and returns the optimal r.  Repeated calls
// reuse the cached network (updating costs, capacities and supplies in
// place) as long as no constraints, objectives or pins were added in
// between.  The returned Solution is owned by the System and rewritten
// by the next Solve; callers needing a snapshot must copy it.
func (s *System) Solve(opt Options) (*Solution, error) {
	return s.SolveCtx(context.Background(), opt)
}

// SolveCtx is Solve with cancellation: ctx is polled inside the flow
// engines' inner loops (and the degenerate feasibility path), so a
// cancellation mid-solve returns mcmf.ErrCanceled within one poll
// granule and leaves the cached network reusable — the next SolveCtx
// behaves as if the canceled call never ran.
func (s *System) SolveCtx(ctx context.Context, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	ground := s.n

	var totalSupply int64
	for _, t := range s.obj {
		totalSupply += int64(math.Round(t.coeff * opt.SupplyScale))
	}
	if totalSupply == 0 {
		// Degenerate objective: any feasible point is optimal.  Solve the
		// pure feasibility problem with Bellman–Ford on the constraint
		// graph (edge v→u of weight w per constraint r_u − r_v ≤ w).
		r, err := s.feasiblePoint(ctx)
		if err != nil {
			return nil, err
		}
		s.sol = Solution{R: r}
		return &s.sol, nil
	}

	f := s.ensureFlow()
	if len(opt.Calibrate) == 0 && opt.Engine != "" && !s.degraded {
		if err := f.SetEngine(opt.Engine); err != nil {
			return nil, err
		}
	}
	f.SetParallelism(opt.Parallelism)
	f.SetContext(ctx)
	f.SetDeadline(opt.Deadline)
	f.SetWorkBudget(opt.WorkBudget)
	f.SetEngineFallback(opt.EngineFallback)
	failures := f.EngineFailures()
	defer func() {
		if f.EngineFailures() > failures {
			s.degraded = true
		}
	}()

	// Supplies: zero, then accumulate the integerized objective terms
	// (mcmf diffs them against the last routed configuration itself).
	for v := 0; v <= s.n; v++ {
		f.SetSupply(v, 0)
	}
	for _, t := range s.obj {
		c := int64(math.Round(t.coeff * opt.SupplyScale))
		if c == 0 {
			continue
		}
		f.AddSupply(t.plus, c)
		f.AddSupply(t.minus, -c)
	}

	// Uncapacitated arcs: cap at a stable doubling bound ≥ total supply
	// (an optimal flow needs no more on any arc when no negative cycles
	// exist).  Keeping the bound fixed while the supply wobbles between
	// iterations keeps capacities out of the changed set.
	changed := s.changed[:0]
	if totalSupply > s.capBound {
		s.capBound = 1024
		for s.capBound < totalSupply {
			s.capBound *= 2
		}
		for _, a := range s.consArc {
			f.UpdateCapacity(a, s.capBound)
			changed = append(changed, int32(a))
		}
		for _, pa := range s.pinArc {
			f.UpdateCapacity(pa[0], s.capBound)
			f.UpdateCapacity(pa[1], s.capBound)
			changed = append(changed, int32(pa[0]), int32(pa[1]))
		}
	}
	for i, c := range s.cons {
		// Floor (not round) the scaled weight: the integerized feasible
		// region is then a subset of the real one, so the recovered r
		// satisfies every original constraint exactly.  This keeps the
		// D-phase causality constraints (edge slack ≥ 0) safe.
		ic := int64(math.Floor(c.w * opt.CostScale))
		if !s.priced || ic != s.lastCost[i] {
			f.SetCost(s.consArc[i], ic)
			s.lastCost[i] = ic
			changed = append(changed, int32(s.consArc[i]))
		}
	}
	s.changed = changed // retain grown capacity
	s.priced = true
	// Merge this call's diffs into the arcs still pending from solves
	// that never completed (canceled, budget-exhausted or failed): the
	// network already holds all of those costs, the engine's optimum
	// prices none of them.
	for _, a := range changed {
		if !s.pendingIn[a] {
			s.pendingIn[a] = true
			s.pending = append(s.pending, a)
		}
	}
	s.lastChanged = len(s.pending)
	clearPending := func() {
		for _, a := range s.pending {
			s.pendingIn[a] = false
		}
		s.pending = s.pending[:0]
	}

	// Incremental re-flow with the exact changed-arc set; the first
	// solve on a fresh network (or after a failed one) falls back to a
	// full solve inside the engine.  When calibrated engine selection
	// is requested, that first solve is the calibration probe instead:
	// every candidate gets a timed cold solve on the just-priced
	// instance and the winner stays installed for the re-solves.
	if len(opt.Calibrate) > 0 && !s.calibrated {
		if _, err := f.CalibrateEngines(opt.Calibrate); err != nil {
			return nil, mapFlowErr(err)
		}
		s.calibrated = true
	} else if _, err := f.ResolveChanged(s.pending); err != nil {
		return nil, mapFlowErr(err)
	}
	clearPending()
	sol, err := s.recover(f, opt, ground)
	if err == nil {
		return sol, nil
	}
	if !errors.Is(err, errRecoveredInfeasible) {
		// Certificate or strong-duality failures are genuine solver
		// defects — propagate them rather than masking them behind a
		// silent (and permanently slower) full re-solve.
		return nil, err
	}
	// An infeasible recovered r means the constraint system itself is
	// infeasible: the incremental re-flow prices configured negative
	// cycles away instead of detecting them (see mcmf resolve.go), so
	// the cycle surfaces here rather than as mcmf.ErrNegativeCycle.
	// Re-solve from clean residuals, which restores the detection
	// contract (a truly infeasible system now returns ErrInfeasible).
	f.Reset()
	if _, ferr := f.Solve(); ferr != nil {
		return nil, mapFlowErr(ferr)
	}
	return s.recover(f, opt, ground)
}

// errRecoveredInfeasible tags a recovered r that violates a
// constraint — the one recover() failure the warm-resolve path is
// allowed to retry from clean residuals (it is how an infeasible
// system manifests after an incremental re-flow).
var errRecoveredInfeasible = errors.New("dcs: recovered solution infeasible")

// mapFlowErr translates mcmf solve errors to the dcs sentinels.
func mapFlowErr(err error) error {
	switch {
	case errors.Is(err, mcmf.ErrNegativeCycle):
		return ErrInfeasible
	case errors.Is(err, mcmf.ErrInfeasible):
		// Dual infeasible == primal unbounded.
		return ErrUnbounded
	default:
		return err
	}
}

// recover extracts and certifies the solution from a solved flow
// network: optimality certificate, r from the potentials, primal
// feasibility, and strong duality.
func (s *System) recover(f *mcmf.Solver, opt Options, ground int) (*Solution, error) {
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("dcs: flow certificate failed: %w", err)
	}

	// r(v) = −(pot(v) − pot(ground)) / CostScale.
	base := f.Potential(ground)
	if cap(s.sol.R) < s.n {
		s.sol.R = make([]float64, s.n)
	}
	r := s.sol.R[:s.n]
	for v := 0; v < s.n; v++ {
		r[v] = -float64(f.Potential(v)-base) / opt.CostScale
	}
	for _, v := range s.pinned {
		r[v] = 0 // exact (tied to ground)
	}
	if err := s.checkFeasible(r); err != nil {
		return nil, fmt.Errorf("%w: %v", errRecoveredInfeasible, err)
	}

	sol := &s.sol
	*sol = Solution{
		R:        r,
		FlowCost: f.TotalCost(),
		Arcs:     len(s.cons) + 2*len(s.pinned),
	}
	for _, t := range s.obj {
		sol.Objective += t.coeff * (r[t.plus] - r[t.minus])
	}
	// Strong-duality certificate in scaled units:
	//   Σ c_int · r_int  ==  flow cost.
	var primal float64
	for _, t := range s.obj {
		c := math.Round(t.coeff * opt.SupplyScale)
		primal += c * (-(float64(f.Potential(t.plus) - f.Potential(t.minus))))
	}
	if !closeRel(primal, sol.FlowCost, 1e-6) {
		return nil, fmt.Errorf("dcs: strong duality violated: primal %g vs dual %g", primal, sol.FlowCost)
	}
	return sol, nil
}

// feasiblePoint returns any r satisfying all constraints and pins, or
// ErrInfeasible. Standard difference-constraint solution: shortest
// distances from a virtual source (plus zero-weight ties between pinned
// variables), then a shift so pinned entries are exactly zero.
func (s *System) feasiblePoint(ctx context.Context) ([]float64, error) {
	type edge struct {
		from, to int
		w        float64
	}
	var edges []edge
	for _, c := range s.cons {
		edges = append(edges, edge{c.v, c.u, c.w})
	}
	if len(s.pinned) > 1 {
		// Star of zero-weight ties through the first pin (forces equality).
		p0 := s.pinned[0]
		for _, q := range s.pinned[1:] {
			edges = append(edges, edge{p0, q, 0}, edge{q, p0, 0})
		}
	}
	dist := make([]float64, s.n) // virtual source at distance 0 to all
	for round := 0; round < s.n; round++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, mcmf.ErrCanceled
		}
		changed := false
		for _, e := range edges {
			if nd := dist[e.from] + e.w; nd < dist[e.to]-1e-12 {
				dist[e.to] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if round == s.n-1 {
			return nil, ErrInfeasible
		}
	}
	if len(s.pinned) > 0 {
		base := dist[s.pinned[0]]
		for i := range dist {
			dist[i] -= base
		}
		for _, p := range s.pinned {
			dist[p] = 0
		}
	}
	if err := s.checkFeasible(dist); err != nil {
		return nil, ErrInfeasible
	}
	return dist, nil
}

// checkFeasible verifies every constraint at r. Because constraint
// weights are floored during integerization, solutions are feasible in
// real units too; the tolerance only absorbs float arithmetic fuzz.
func (s *System) checkFeasible(r []float64) error {
	const tol = 1e-9
	for _, c := range s.cons {
		slack := c.w - (r[c.u] - r[c.v])
		lim := tol * (1 + math.Abs(c.w))
		if slack < -lim {
			return fmt.Errorf("dcs: constraint r(%d)-r(%d) <= %g violated by %g", c.u, c.v, c.w, -slack)
		}
	}
	return nil
}

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*(1+m)
}
