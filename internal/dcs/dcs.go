// Package dcs solves the D-phase linear program of MINFLOTRANSIT:
//
//	maximize   Σ objective terms  c·(r(p) − r(m))
//	subject to r(u) − r(v) ≤ w(u,v)          (difference constraints)
//	           r(v) = 0 for pinned v          (PIs and the dummy sink O)
//
// via its dual, a minimum-cost network flow (paper §2.3.1, ref [14]).
//
// Each difference constraint becomes an uncapacitated arc u→v of cost w;
// each objective term contributes supply +c at p and demand −c at m
// (balance is preserved by construction, mirroring the paper's
// Σ C_i·(r(Dmy(i)) − r(i)) objective).  Pinned variables are tied to a
// ground node with a pair of zero-cost constraints.  The optimal r is
// recovered from the node potentials of the flow solver, and strong
// duality (primal objective == dual flow cost) is checked before
// returning, so every solution is certified optimal.
//
// A System separates build-once topology from per-iteration data.  The
// constraint endpoints, objective endpoints and pins define the flow
// network, which is built once and cached (arc IDs recorded per
// constraint); SetWeight and SetObjectiveCoeff update costs and
// supplies in place, so the D/W iteration of internal/core re-solves
// the same network dozens of times without reconstructing it — each
// re-solve also warm-starts the flow solver from the previous duals.
//
// Costs and supplies are integerized by scaling (the paper's
// "multiply by a power of 10 and round" step); Options selects the
// scales.
package dcs

import (
	"errors"
	"fmt"
	"math"

	"minflo/internal/mcmf"
)

// ErrInfeasible is returned when the constraint system has no solution
// (a negative-weight cycle in the constraint graph).
var ErrInfeasible = errors.New("dcs: constraint system infeasible (negative cycle)")

// ErrUnbounded is returned when the objective can be improved without
// bound (should not occur for well-formed D-phase instances, where r=0
// is feasible and all displacement windows are finite).
var ErrUnbounded = errors.New("dcs: objective unbounded")

type constraint struct {
	u, v int
	w    float64
}

type objTerm struct {
	plus, minus int
	coeff       float64
}

// System accumulates a difference-constraint LP and owns the cached
// min-cost-flow network its Solve calls reuse.
type System struct {
	n      int
	cons   []constraint
	obj    []objTerm
	pinned []int

	// Cached flow network.  Valid while builtVersion == topoVersion;
	// adding constraints, objectives or pins bumps topoVersion and
	// forces a rebuild on the next Solve.
	flow         *mcmf.Solver
	consArc      []int    // flow arc ID per constraint
	pinArc       [][2]int // flow arc pair per pin
	topoVersion  int
	builtVersion int
	builds       int

	// sol is the reused Solution storage: Solve rewrites it in place so
	// steady-state re-solves allocate nothing.
	sol Solution
}

// NewSystem creates a system over n variables r(0..n-1).
func NewSystem(n int) *System {
	return &System{n: n, builtVersion: -1}
}

// NumVars returns the number of variables.
func (s *System) NumVars() int { return s.n }

// NumConstraints returns the number of difference constraints added.
func (s *System) NumConstraints() int { return len(s.cons) }

// NumObjectives returns the number of objective terms added.
func (s *System) NumObjectives() int { return len(s.obj) }

// Builds returns how many times the flow network has been constructed —
// a correctly reused System reports 1 no matter how many Solve calls it
// served (asserted by the core optimizer tests).
func (s *System) Builds() int { return s.builds }

// AddConstraint adds r(u) − r(v) ≤ w and returns the constraint's ID
// for later SetWeight updates.
func (s *System) AddConstraint(u, v int, w float64) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic(fmt.Sprintf("dcs: AddConstraint(%d,%d) out of range [0,%d)", u, v, s.n))
	}
	checkWeight(w)
	s.cons = append(s.cons, constraint{u, v, w})
	s.topoVersion++
	return len(s.cons) - 1
}

// SetWeight updates the right-hand side of constraint id in place:
// r(u) − r(v) ≤ w with the original endpoints.  The cached flow network
// is kept; only the arc cost changes on the next Solve.
func (s *System) SetWeight(id int, w float64) {
	checkWeight(w)
	s.cons[id].w = w
}

// AddObjective adds the term coeff·(r(plus) − r(minus)) to the
// maximized objective and returns the term's ID for later
// SetObjectiveCoeff updates.  Coefficients must be non-negative (the
// paper's C_i > 0); zero-coefficient terms are kept so IDs stay stable
// across coefficient updates.
func (s *System) AddObjective(plus, minus int, coeff float64) int {
	if plus < 0 || plus >= s.n || minus < 0 || minus >= s.n {
		panic(fmt.Sprintf("dcs: AddObjective(%d,%d) out of range [0,%d)", plus, minus, s.n))
	}
	checkCoeff(coeff)
	s.obj = append(s.obj, objTerm{plus, minus, coeff})
	s.topoVersion++
	return len(s.obj) - 1
}

// SetObjectiveCoeff updates the coefficient of objective term id in
// place (endpoints unchanged).
func (s *System) SetObjectiveCoeff(id int, coeff float64) {
	checkCoeff(coeff)
	s.obj[id].coeff = coeff
}

func checkWeight(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		panic("dcs: non-finite constraint weight")
	}
}

func checkCoeff(c float64) {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic("dcs: objective coefficient must be finite and non-negative")
	}
}

// Pin forces r(v) = 0 in the solution.
func (s *System) Pin(v int) {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("dcs: Pin(%d) out of range [0,%d)", v, s.n))
	}
	s.pinned = append(s.pinned, v)
	s.topoVersion++
}

// Options controls integerization. Zero values select the defaults.
type Options struct {
	// CostScale multiplies constraint weights before rounding to int64.
	// Default 1e6 (the paper: "by choosing appropriate powers of 10
	// arbitrary accuracy can be maintained").
	CostScale float64
	// SupplyScale multiplies objective coefficients before rounding.
	// Default 1e4.
	SupplyScale float64
}

func (o Options) withDefaults() Options {
	if o.CostScale == 0 {
		o.CostScale = 1e6
	}
	if o.SupplyScale == 0 {
		o.SupplyScale = 1e4
	}
	return o
}

// Solution of a System.
type Solution struct {
	R         []float64 // optimal r, pinned entries exactly 0
	Objective float64   // Σ coeff·(r(plus) − r(minus)) at the optimum
	FlowCost  float64   // dual objective (scaled units), for diagnostics
	Arcs      int       // size of the flow instance
}

// ensureFlow returns the cached flow network, rebuilding it only when
// the topology changed since the last build.  Costs, capacities and
// supplies are set by Solve on every call, so the returned network only
// needs correct arcs.
func (s *System) ensureFlow() *mcmf.Solver {
	if s.flow != nil && s.builtVersion == s.topoVersion {
		s.flow.Reset()
		return s.flow
	}
	ground := s.n
	f := mcmf.New(s.n + 1)
	s.consArc = s.consArc[:0]
	for _, c := range s.cons {
		s.consArc = append(s.consArc, f.AddArc(c.u, c.v, 0, 0))
	}
	s.pinArc = s.pinArc[:0]
	for _, v := range s.pinned {
		// r(v) = r(ground): zero-cost arcs both ways.
		s.pinArc = append(s.pinArc, [2]int{
			f.AddArc(v, ground, 0, 0),
			f.AddArc(ground, v, 0, 0),
		})
	}
	s.flow = f
	s.builtVersion = s.topoVersion
	s.builds++
	return f
}

// Solve maps the system to its min-cost-flow dual, solves it, verifies
// optimality certificates, and returns the optimal r.  Repeated calls
// reuse the cached network (updating costs, capacities and supplies in
// place) as long as no constraints, objectives or pins were added in
// between.  The returned Solution is owned by the System and rewritten
// by the next Solve; callers needing a snapshot must copy it.
func (s *System) Solve(opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	ground := s.n

	var totalSupply int64
	for _, t := range s.obj {
		totalSupply += int64(math.Round(t.coeff * opt.SupplyScale))
	}
	if totalSupply == 0 {
		// Degenerate objective: any feasible point is optimal.  Solve the
		// pure feasibility problem with Bellman–Ford on the constraint
		// graph (edge v→u of weight w per constraint r_u − r_v ≤ w).
		r, err := s.feasiblePoint()
		if err != nil {
			return nil, err
		}
		s.sol = Solution{R: r}
		return &s.sol, nil
	}

	f := s.ensureFlow()

	// Supplies: zero, then accumulate the integerized objective terms.
	for v := 0; v <= s.n; v++ {
		f.SetSupply(v, 0)
	}
	for _, t := range s.obj {
		c := int64(math.Round(t.coeff * opt.SupplyScale))
		if c == 0 {
			continue
		}
		f.AddSupply(t.plus, c)
		f.AddSupply(t.minus, -c)
	}

	// Uncapacitated arcs: cap at total supply (an optimal flow needs no
	// more on any arc when no negative cycles exist).
	capAll := totalSupply
	for i, c := range s.cons {
		// Floor (not round) the scaled weight: the integerized feasible
		// region is then a subset of the real one, so the recovered r
		// satisfies every original constraint exactly.  This keeps the
		// D-phase causality constraints (edge slack ≥ 0) safe.
		f.SetCost(s.consArc[i], int64(math.Floor(c.w*opt.CostScale)))
		f.SetCapacity(s.consArc[i], capAll)
	}
	for _, pa := range s.pinArc {
		f.SetCapacity(pa[0], capAll)
		f.SetCapacity(pa[1], capAll)
	}

	if _, err := f.Solve(); err != nil {
		switch {
		case errors.Is(err, mcmf.ErrNegativeCycle):
			return nil, ErrInfeasible
		case errors.Is(err, mcmf.ErrInfeasible):
			// Dual infeasible == primal unbounded.
			return nil, ErrUnbounded
		default:
			return nil, err
		}
	}
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("dcs: flow certificate failed: %w", err)
	}

	// r(v) = −(pot(v) − pot(ground)) / CostScale.
	base := f.Potential(ground)
	if cap(s.sol.R) < s.n {
		s.sol.R = make([]float64, s.n)
	}
	r := s.sol.R[:s.n]
	for v := 0; v < s.n; v++ {
		r[v] = -float64(f.Potential(v)-base) / opt.CostScale
	}
	for _, v := range s.pinned {
		r[v] = 0 // exact (tied to ground)
	}
	if err := s.checkFeasible(r); err != nil {
		return nil, fmt.Errorf("dcs: recovered solution infeasible: %w", err)
	}

	sol := &s.sol
	*sol = Solution{
		R:        r,
		FlowCost: f.TotalCost(),
		Arcs:     len(s.cons) + 2*len(s.pinned),
	}
	for _, t := range s.obj {
		sol.Objective += t.coeff * (r[t.plus] - r[t.minus])
	}
	// Strong-duality certificate in scaled units:
	//   Σ c_int · r_int  ==  flow cost.
	var primal float64
	for _, t := range s.obj {
		c := math.Round(t.coeff * opt.SupplyScale)
		primal += c * (-(float64(f.Potential(t.plus) - f.Potential(t.minus))))
	}
	if !closeRel(primal, sol.FlowCost, 1e-6) {
		return nil, fmt.Errorf("dcs: strong duality violated: primal %g vs dual %g", primal, sol.FlowCost)
	}
	return sol, nil
}

// feasiblePoint returns any r satisfying all constraints and pins, or
// ErrInfeasible. Standard difference-constraint solution: shortest
// distances from a virtual source (plus zero-weight ties between pinned
// variables), then a shift so pinned entries are exactly zero.
func (s *System) feasiblePoint() ([]float64, error) {
	type edge struct {
		from, to int
		w        float64
	}
	var edges []edge
	for _, c := range s.cons {
		edges = append(edges, edge{c.v, c.u, c.w})
	}
	if len(s.pinned) > 1 {
		// Star of zero-weight ties through the first pin (forces equality).
		p0 := s.pinned[0]
		for _, q := range s.pinned[1:] {
			edges = append(edges, edge{p0, q, 0}, edge{q, p0, 0})
		}
	}
	dist := make([]float64, s.n) // virtual source at distance 0 to all
	for round := 0; round < s.n; round++ {
		changed := false
		for _, e := range edges {
			if nd := dist[e.from] + e.w; nd < dist[e.to]-1e-12 {
				dist[e.to] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if round == s.n-1 {
			return nil, ErrInfeasible
		}
	}
	if len(s.pinned) > 0 {
		base := dist[s.pinned[0]]
		for i := range dist {
			dist[i] -= base
		}
		for _, p := range s.pinned {
			dist[p] = 0
		}
	}
	if err := s.checkFeasible(dist); err != nil {
		return nil, ErrInfeasible
	}
	return dist, nil
}

// checkFeasible verifies every constraint at r. Because constraint
// weights are floored during integerization, solutions are feasible in
// real units too; the tolerance only absorbs float arithmetic fuzz.
func (s *System) checkFeasible(r []float64) error {
	const tol = 1e-9
	for _, c := range s.cons {
		slack := c.w - (r[c.u] - r[c.v])
		lim := tol * (1 + math.Abs(c.w))
		if slack < -lim {
			return fmt.Errorf("dcs: constraint r(%d)-r(%d) <= %g violated by %g", c.u, c.v, c.w, -slack)
		}
	}
	return nil
}

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*(1+m)
}
