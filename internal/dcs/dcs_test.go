package dcs

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleTermSimple(t *testing.T) {
	// maximize r1 - r0, s.t. r1 - r0 <= 5, r0 pinned.
	s := NewSystem(2)
	s.AddConstraint(1, 0, 5)
	s.AddObjective(1, 0, 1)
	s.Pin(0)
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.R[0] != 0 {
		t.Fatalf("pinned r0 = %v", sol.R[0])
	}
	if math.Abs(sol.R[1]-5) > 1e-6 {
		t.Fatalf("r1 = %v, want 5", sol.R[1])
	}
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
}

func TestCompetingTerms(t *testing.T) {
	// Chain: r2-r1 <= 1, r1-r0 <= 2, r2-r0 <= 2 (tighter than 3).
	// maximize 1*(r2-r0): bound is min(2, 1+2)=2.
	s := NewSystem(3)
	s.AddConstraint(2, 1, 1)
	s.AddConstraint(1, 0, 2)
	s.AddConstraint(2, 0, 2)
	s.AddObjective(2, 0, 1)
	s.Pin(0)
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestTradeoffWeighted(t *testing.T) {
	// Two terms share a budget: r1-r0 <= 4 and r2-r1 <= 0, r2-r0 <= 4.
	// maximize 3*(r1-r0) + 1*(r0-r2):
	// raising r1 to 4 earns 12; r2 >= ... r2 can go very negative? It is
	// constrained only by r2-... nothing bounds r0-r2, so term 2 is
	// unbounded unless we add r0-r2 <= 3. Expect 12 + 3.
	s := NewSystem(3)
	s.AddConstraint(1, 0, 4)
	s.AddConstraint(0, 2, 3)
	s.AddObjective(1, 0, 3)
	s.AddObjective(0, 2, 1)
	s.Pin(0)
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-15) > 1e-6 {
		t.Fatalf("objective = %v, want 15", sol.Objective)
	}
	if math.Abs(sol.R[1]-4) > 1e-6 || math.Abs(sol.R[2]+3) > 1e-6 {
		t.Fatalf("r = %v", sol.R)
	}
}

func TestUnboundedDetected(t *testing.T) {
	s := NewSystem(2)
	// No constraint bounds r1 from above.
	s.AddObjective(1, 0, 1)
	s.Pin(0)
	if _, err := s.Solve(Options{}); err != ErrUnbounded {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// r1 - r0 <= -1 and r0 - r1 <= -1: negative cycle.
	s := NewSystem(2)
	s.AddConstraint(1, 0, -1)
	s.AddConstraint(0, 1, -1)
	s.AddObjective(1, 0, 1)
	sol, err := s.Solve(Options{})
	if err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v (sol=%v)", err, sol)
	}
}

func TestZeroObjective(t *testing.T) {
	s := NewSystem(2)
	s.AddConstraint(1, 0, 5)
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.R[0] != 0 || sol.R[1] != 0 {
		t.Fatalf("zero objective should return r = 0, got %v", sol.R)
	}
}

func TestFractionalWeightsFloored(t *testing.T) {
	// Constraint weight 2.7 with CostScale 10 floors to 2.7 -> 27/10.
	s := NewSystem(2)
	s.AddConstraint(1, 0, 2.7)
	s.AddObjective(1, 0, 1)
	s.Pin(0)
	sol, err := s.Solve(Options{CostScale: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.R[1] > 2.7+1e-9 {
		t.Fatalf("r1 = %v exceeds constraint", sol.R[1])
	}
	if sol.R[1] < 2.7-0.11 {
		t.Fatalf("r1 = %v lost more than one quantum", sol.R[1])
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	s := NewSystem(2)
	for _, f := range []func(){
		func() { s.AddConstraint(0, 5, 1) },
		func() { s.AddConstraint(0, 1, math.NaN()) },
		func() { s.AddObjective(0, 1, -2) },
		func() { s.AddObjective(9, 0, 1) },
		func() { s.Pin(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestReuseMatchesFresh drives the build-once/update-in-place path the
// D/W iteration uses: one System re-solved with updated weights and
// coefficients must agree with a fresh System built from the same data,
// and must build its flow network exactly once.
func TestReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	type conSpec struct{ u, v int }
	type objSpec struct{ p, m int }
	var cs []conSpec
	var os []objSpec
	reused := NewSystem(n)
	reused.Pin(0)
	for v := 1; v < n; v++ {
		cs = append(cs, conSpec{v, 0}, conSpec{0, v})
	}
	for i := 0; i < 10; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			cs = append(cs, conSpec{u, v})
		}
	}
	for i := 0; i < 4; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			os = append(os, objSpec{u, v})
		}
	}
	conID := make([]int, len(cs))
	objID := make([]int, len(os))
	for i, c := range cs {
		conID[i] = reused.AddConstraint(c.u, c.v, 0)
	}
	for i, o := range os {
		objID[i] = reused.AddObjective(o.p, o.m, 0)
	}

	for iter := 0; iter < 25; iter++ {
		ws := make([]float64, len(cs))
		coeffs := make([]float64, len(os))
		for i := range ws {
			ws[i] = rng.Float64() * 8
		}
		for i := range coeffs {
			coeffs[i] = rng.Float64() * 3
		}
		for i, id := range conID {
			reused.SetWeight(id, ws[i])
		}
		for i, id := range objID {
			reused.SetObjectiveCoeff(id, coeffs[i])
		}

		fresh := NewSystem(n)
		fresh.Pin(0)
		for i, c := range cs {
			fresh.AddConstraint(c.u, c.v, ws[i])
		}
		for i, o := range os {
			fresh.AddObjective(o.p, o.m, coeffs[i])
		}

		got, gotErr := reused.Solve(Options{})
		want, wantErr := fresh.Solve(Options{})
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("iter %d: reused err %v, fresh err %v", iter, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("iter %d: objective %v != fresh %v", iter, got.Objective, want.Objective)
		}
		// Optimal r need not be unique, but the reused system's r must
		// satisfy every constraint at the current weights.
		for i, c := range cs {
			if got.R[c.u]-got.R[c.v] > ws[i]+1e-9 {
				t.Fatalf("iter %d: reused r violates constraint %d: r(%d)-r(%d)=%v > %v",
					iter, i, c.u, c.v, got.R[c.u]-got.R[c.v], ws[i])
			}
		}
	}
	if b := reused.Builds(); b != 1 {
		t.Fatalf("reused system built the network %d times, want 1", b)
	}
}

// TestTopologyChangeRebuilds: adding a constraint after a Solve must
// invalidate the cached network.
func TestTopologyChangeRebuilds(t *testing.T) {
	s := NewSystem(3)
	s.Pin(0)
	s.AddConstraint(1, 0, 5)
	s.AddObjective(1, 0, 1)
	sol, err := s.Solve(Options{})
	if err != nil || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("first solve: %v, %v", sol, err)
	}
	// New tighter constraint via a new variable path.
	s.AddConstraint(1, 2, 1)
	s.AddConstraint(2, 0, 2)
	sol, err = s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective after topology change = %v, want 3", sol.Objective)
	}
	if b := s.Builds(); b != 2 {
		t.Fatalf("builds = %d, want 2", b)
	}
}

// bruteForce maximizes the objective over integer lattice points in
// [-B, B]^n by exhaustive search (tiny n only).
func bruteForce(s *System, B int) (best float64, feasibleExists bool) {
	n := s.n
	r := make([]float64, n)
	best = math.Inf(-1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, p := range s.pinned {
				if r[p] != 0 {
					return
				}
			}
			for _, c := range s.cons {
				if r[c.u]-r[c.v] > c.w+1e-9 {
					return
				}
			}
			feasibleExists = true
			obj := 0.0
			for _, t := range s.obj {
				obj += t.coeff * (r[t.plus] - r[t.minus])
			}
			if obj > best {
				best = obj
			}
			return
		}
		for v := -B; v <= B; v++ {
			r[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return best, feasibleExists
}

// Property: on random small integer systems, Solve matches brute force.
func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2..4 variables
		s := NewSystem(n)
		s.Pin(0)
		// Ensure bounded: box every variable within [-3, 3] of r0.
		for v := 1; v < n; v++ {
			s.AddConstraint(v, 0, 3)
			s.AddConstraint(0, v, 3)
		}
		for i := 0; i < rng.Intn(5); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.AddConstraint(u, v, float64(rng.Intn(7)-2))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.AddObjective(u, v, float64(1+rng.Intn(4)))
		}
		want, feasible := bruteForce(s, 3)
		sol, err := s.Solve(Options{CostScale: 1, SupplyScale: 1})
		if !feasible {
			return err == ErrInfeasible
		}
		if err != nil {
			// Degenerate objective (all terms cancelled) is fine.
			return false
		}
		// Brute force is restricted to the [-3,3] lattice; the LP optimum
		// over integer weights is integral and attained at a lattice
		// point within the box constraints, so values must agree.
		return math.Abs(sol.Objective-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 250}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions always satisfy every constraint exactly (floored
// integerization guarantees real-unit feasibility).
func TestQuickAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := NewSystem(n)
		s.Pin(0)
		for v := 1; v < n; v++ {
			s.AddConstraint(v, 0, rng.Float64()*10)
			s.AddConstraint(0, v, rng.Float64()*10)
		}
		for i := 0; i < rng.Intn(8); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.AddConstraint(u, v, rng.Float64()*6)
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.AddObjective(u, v, rng.Float64()*3)
		}
		sol, err := s.Solve(Options{})
		if err != nil {
			return err == ErrInfeasible
		}
		for _, c := range s.cons {
			if sol.R[c.u]-sol.R[c.v] > c.w+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalResolvePath asserts the delta-tracking Update path:
// re-solves on a cached network must go through mcmf's incremental
// ResolveChanged (not a from-scratch solve), for every selectable
// engine, and unchanged weights must produce an empty changed set
// (observable as a resolve that does no augmentation work).
func TestIncrementalResolvePath(t *testing.T) {
	for _, engine := range []string{"", "ssp", "dial"} {
		engine := engine
		t.Run("engine="+engine, func(t *testing.T) {
			s := NewSystem(4)
			s.Pin(0)
			w01 := s.AddConstraint(1, 0, 5)
			s.AddConstraint(0, 1, 5)
			s.AddConstraint(2, 1, 3)
			s.AddConstraint(1, 2, 3)
			s.AddConstraint(3, 2, 2)
			s.AddConstraint(2, 3, 2)
			s.AddObjective(1, 3, 1.5)
			s.AddObjective(3, 0, 0.5)
			opt := Options{Engine: engine}
			if _, err := s.Solve(opt); err != nil {
				t.Fatal(err)
			}
			if engine != "" && s.FlowEngineName() != engine {
				t.Fatalf("engine = %q, want %q", s.FlowEngineName(), engine)
			}
			base := s.FlowEngineStats()
			// Weight updates: the re-solve must run incrementally.
			s.SetWeight(w01, 4)
			sol, err := s.Solve(opt)
			if err != nil {
				t.Fatal(err)
			}
			st := s.FlowEngineStats()
			if st.Resolves != base.Resolves+1 {
				t.Fatalf("stats after weight update: %+v (base %+v), want one more resolve", st, base)
			}
			if st.Solves != base.Solves {
				t.Fatalf("weight update triggered a full solve: %+v", st)
			}
			if s.Builds() != 1 {
				t.Fatalf("network rebuilt: %d builds", s.Builds())
			}
			// Cross-check against a fresh system with the same data.
			f := NewSystem(4)
			f.Pin(0)
			f.AddConstraint(1, 0, 4)
			f.AddConstraint(0, 1, 5)
			f.AddConstraint(2, 1, 3)
			f.AddConstraint(1, 2, 3)
			f.AddConstraint(3, 2, 2)
			f.AddConstraint(2, 3, 2)
			f.AddObjective(1, 3, 1.5)
			f.AddObjective(3, 0, 0.5)
			want, err := f.Solve(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Objective != want.Objective {
				t.Fatalf("incremental objective %v != fresh %v", sol.Objective, want.Objective)
			}
			for v := range sol.R {
				if sol.R[v] != want.R[v] {
					t.Fatalf("r[%d]: incremental %v != fresh %v", v, sol.R[v], want.R[v])
				}
			}
			// No-op re-solve: nothing changed, still a (trivial) resolve.
			aug := s.FlowEngineStats().Augmentations
			if _, err := s.Solve(opt); err != nil {
				t.Fatal(err)
			}
			st = s.FlowEngineStats()
			if st.Resolves != base.Resolves+2 || st.Augmentations != aug {
				t.Fatalf("no-op re-solve: %+v (augmentations were %d), want trivial resolve", st, aug)
			}
		})
	}
}

// TestInfeasibleAfterWarmResolve pins the ErrInfeasible contract on
// the incremental path: a constraint system made infeasible *between*
// solves (the re-flow prices negative cycles away instead of
// detecting them) must still return the documented sentinel, via the
// clean-residual retry.
func TestInfeasibleAfterWarmResolve(t *testing.T) {
	s := NewSystem(2)
	s.Pin(0)
	w01 := s.AddConstraint(0, 1, 5)
	s.AddConstraint(1, 0, 5)
	s.AddObjective(0, 1, 1)
	if _, err := s.Solve(Options{}); err != nil {
		t.Fatal(err)
	}
	// r0 − r1 ≤ −6 together with r1 − r0 ≤ 5 is a negative cycle.
	s.SetWeight(w01, -6)
	_, err := s.Solve(Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("warm re-solve on infeasible system: err = %v, want ErrInfeasible", err)
	}
	// And a repaired system must solve again.
	s.SetWeight(w01, 5)
	if _, err := s.Solve(Options{}); err != nil {
		t.Fatalf("repaired system: %v", err)
	}
}
