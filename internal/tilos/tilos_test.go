package tilos

import (
	"errors"
	"testing"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/sta"
	"minflo/internal/tech"
)

func mkChainProblem(t *testing.T, n int) (*dag.Problem, float64) {
	t.Helper()
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.InverterChain(n), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		t.Fatal(err)
	}
	return p, tm.CP
}

func TestMeetsTarget(t *testing.T) {
	p, dmin := mkChainProblem(t, 12)
	for _, frac := range []float64{0.95, 0.8, 0.6} {
		r, err := Size(p, frac*dmin, nil, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if r.CP > frac*dmin {
			t.Fatalf("frac %.2f: CP %g > target %g", frac, r.CP, frac*dmin)
		}
		for i, x := range r.X {
			if x < p.MinSize || x > p.MaxSize {
				t.Fatalf("size[%d] = %g out of bounds", i, x)
			}
		}
	}
}

func TestAlreadyMet(t *testing.T) {
	p, dmin := mkChainProblem(t, 8)
	r, err := Size(p, dmin*1.01, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Moves != 0 {
		t.Fatalf("moves %d for an already-met target", r.Moves)
	}
	if r.Area != p.MinAreaValue() {
		t.Fatalf("area %g, want minimum %g", r.Area, p.MinAreaValue())
	}
}

func TestInfeasibleTarget(t *testing.T) {
	p, dmin := mkChainProblem(t, 8)
	_, err := Size(p, 0.001*dmin, nil, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestTighterTargetsCostMoreArea(t *testing.T) {
	p, dmin := mkChainProblem(t, 12)
	var prev float64
	for i, frac := range []float64{0.95, 0.85, 0.75, 0.65} {
		r, err := Size(p, frac*dmin, nil, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if i > 0 && r.Area < prev-1e-9 {
			t.Fatalf("area not monotone: %.2f·Dmin costs %g < %g", frac, r.Area, prev)
		}
		prev = r.Area
	}
}

func TestBumpValidation(t *testing.T) {
	p, dmin := mkChainProblem(t, 4)
	if _, err := Size(p, dmin, nil, Options{Bump: 0.9}); err == nil {
		t.Fatal("bump < 1 accepted")
	}
}

func TestSmallerBumpFinerArea(t *testing.T) {
	// A smaller bump factor overshoots less, so the final area should
	// not be (meaningfully) larger.
	p, dmin := mkChainProblem(t, 12)
	coarse, err := Size(p, 0.7*dmin, nil, Options{Bump: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Size(p, 0.7*dmin, nil, Options{Bump: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Area > coarse.Area*1.02 {
		t.Fatalf("fine bump area %g way above coarse %g", fine.Area, coarse.Area)
	}
}

func TestWarmStart(t *testing.T) {
	p, dmin := mkChainProblem(t, 10)
	first, err := Size(p, 0.8*dmin, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from the previous solution with the same target
	// should need no further moves.
	again, err := Size(p, 0.8*dmin, first.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Moves != 0 {
		t.Fatalf("warm start still made %d moves", again.Moves)
	}
}

func TestMoveBudget(t *testing.T) {
	p, dmin := mkChainProblem(t, 12)
	_, err := Size(p, 0.5*dmin, nil, Options{MaxMoves: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}

func TestC17AllSpecs(t *testing.T) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C17(), m)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	for _, frac := range []float64{0.9, 0.7, 0.5, 0.45} {
		r, err := Size(p, frac*tm.CP, nil, Options{})
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if r.CP > frac*tm.CP {
			t.Fatalf("target missed at %.2f", frac)
		}
	}
}
