// Package tilos implements the TILOS sizing heuristic of Fishburn and
// Dunlop ([1], as described in [15]) — the paper's baseline and the
// initial-guess engine for MINFLOTRANSIT.
//
// Starting from a minimum-sized circuit, TILOS repeatedly finds the
// critical path, computes for every vertex on it the sensitivity (delay
// reduction per unit area) of bumping that vertex's size by a constant
// factor (1.1 in the paper), applies the single best bump, and repeats
// until the timing target is met or no bump helps.
package tilos

import (
	"errors"
	"fmt"

	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/sta"
)

// ErrInfeasible is returned when the target cannot be met: the critical
// path no longer improves even with the best bump available.
var ErrInfeasible = errors.New("tilos: delay target unreachable")

// Options control the heuristic.
type Options struct {
	Bump     float64 // upsizing factor per move (default 1.1, as in §3)
	MaxMoves int     // move budget (default 200·n)
}

// Result reports the sizing outcome.
type Result struct {
	X     []float64
	CP    float64
	Area  float64
	Moves int
}

// Size runs TILOS on problem p toward critical-path target t, starting
// from sizes x0 (pass nil for minimum sizes).
func Size(p *dag.Problem, t float64, x0 []float64, opt Options) (*Result, error) {
	opt, x, err := prepare(p, x0, opt)
	if err != nil {
		return nil, err
	}
	arr, err := sta.NewArrivals(p.G, p.Delays(x))
	if err != nil {
		return nil, err
	}
	return run(p, t, x, opt, arr)
}

// SizeWith is Size running on a caller-owned arrivals engine over p.G
// instead of building one: arr is bulk-reseeded to x0's delays (via
// dbuf, a scratch of length p.G.N(); nil allocates one) and left at
// the result's delays.  This is the warm-repair path of core.Session —
// a trust-region-seeded resize whose previous optimum misses the new
// target repairs it with a handful of TILOS moves from the prior
// sizes, skipping both the minimum-size restart and the arrival-engine
// rebuild.  The result is bit-identical to Size(p, t, x0, opt).
func SizeWith(p *dag.Problem, t float64, x0 []float64, opt Options, arr *sta.Arrivals, dbuf []float64) (*Result, error) {
	opt, x, err := prepare(p, x0, opt)
	if err != nil {
		return nil, err
	}
	if len(dbuf) != p.G.N() {
		dbuf = make([]float64, p.G.N())
	}
	if err := arr.Reseed(p.DelaysInto(dbuf, x)); err != nil {
		return nil, err
	}
	return run(p, t, x, opt, arr)
}

// prepare validates options and copies the start point.
func prepare(p *dag.Problem, x0 []float64, opt Options) (Options, []float64, error) {
	if opt.Bump == 0 {
		opt.Bump = 1.1
	}
	if opt.Bump <= 1 {
		return opt, nil, fmt.Errorf("tilos: bump factor %g must exceed 1", opt.Bump)
	}
	if opt.MaxMoves == 0 {
		opt.MaxMoves = 200 * p.NumSizable
	}
	var x []float64
	if x0 == nil {
		x = p.InitialSizes()
	} else {
		x = append([]float64(nil), x0...)
	}
	return opt, x, nil
}

// run is the shared greedy loop: arr must already hold the arrival
// state of sizes x.
func run(p *dag.Problem, t float64, x []float64, opt Options, arr *sta.Arrivals) (*Result, error) {
	// The CSR transpose gives, per vertex v, the vertices whose delay
	// mentions x_v (the coefficient coupling, NOT graph adjacency: at
	// transistor level pull-up and pull-down roots load each other
	// through the output node without sharing an edge) — no per-call
	// affected-list construction needed.
	csr := p.CSR()
	changed := make([]int, 0, 8)
	newDelays := make([]float64, 0, 8)
	var path []int // reused across moves

	moves := 0
	for {
		cp := arr.CP()
		if cp <= t {
			return &Result{X: x, CP: cp, Area: p.Area(x), Moves: moves}, nil
		}
		if moves >= opt.MaxMoves {
			return nil, fmt.Errorf("%w: move budget exhausted at CP %g (target %g)", ErrInfeasible, cp, t)
		}
		path = arr.AppendCriticalPath(path[:0])
		best, bestSens := -1, 0.0
		for pi, v := range path {
			if v >= p.NumSizable || x[v] >= p.MaxSize {
				continue
			}
			nx := x[v] * opt.Bump
			if nx > p.MaxSize {
				nx = p.MaxSize
			}
			// Delay change along the critical path: own delay improves
			// (stronger drive), the path predecessor's worsens (heavier
			// load).  As in TILOS, off-path fanins are ignored — the
			// next iteration's timing pass accounts for any new critical
			// path.
			delta := deltaOwn(csr, x, v, nx)
			if pi > 0 {
				if u := path[pi-1]; u < p.NumSizable {
					delta += deltaLoad(csr, x, u, v, nx)
				}
			}
			dArea := p.AreaW[v] * (nx - x[v])
			if dArea <= 0 {
				continue
			}
			sens := -delta / dArea
			if sens > bestSens {
				bestSens = sens
				best = v
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("%w: no improving move at CP %g (target %g)", ErrInfeasible, cp, t)
		}
		nx := x[best] * opt.Bump
		if nx > p.MaxSize {
			nx = p.MaxSize
		}
		x[best] = nx
		moves++
		// Incremental re-timing: the bump changes best's own delay and
		// the delay of every vertex whose load mentions x_best.
		changed = append(changed[:0], best)
		newDelays = append(newDelays[:0], csr.Delay(best, x[best], x))
		rows, _ := csr.Incoming(best)
		for _, u := range rows {
			changed = append(changed, int(u))
			newDelays = append(newDelays, csr.Delay(int(u), x[u], x))
		}
		arr.SetDelays(changed, newDelays)
	}
}

// deltaOwn returns delay(v) at size nx minus delay(v) at x[v].
func deltaOwn(csr *delay.CSR, x []float64, v int, nx float64) float64 {
	load := csr.LoadAt(v, x)
	return load/nx - load/x[v]
}

// deltaLoad returns the change in delay(u) when vertex v (a fanout of
// u) grows from x[v] to nx.
func deltaLoad(csr *delay.CSR, x []float64, u, v int, nx float64) float64 {
	cols, vals := csr.Row(u)
	var a float64
	for k := range cols {
		if int(cols[k]) == v {
			a += vals[k]
		}
	}
	return a * (nx - x[v]) / x[u]
}
