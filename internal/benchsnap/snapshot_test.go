package benchsnap

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: minflo
cpu: Example CPU @ 2.00GHz
BenchmarkMCMF/fresh-8         	     100	  11039022 ns/op	 1474707 B/op	   12182 allocs/op
BenchmarkMCMF/warm-8          	     150	   7039022 ns/op	       0 B/op	       0 allocs/op
BenchmarkSTA-8                	    2000	    628702 ns/op	  271373 B/op	      17 allocs/op
BenchmarkTable1/c432-8        	       1	1318478778 ns/op	       31.96 saved%	 4343 area
PASS
ok  	minflo	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	rs, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4", len(rs))
	}
	if rs[0].Name != "BenchmarkMCMF/fresh" {
		t.Errorf("name = %q (proc suffix not stripped?)", rs[0].Name)
	}
	if rs[0].Iters != 100 || rs[0].NsPerOp != 11039022 || rs[0].AllocsPerOp != 12182 {
		t.Errorf("unexpected first row: %+v", rs[0])
	}
	if rs[1].AllocsPerOp != 0 || rs[1].BytesPerOp != 0 {
		t.Errorf("warm row should have zero allocs: %+v", rs[1])
	}
	if got := rs[3].Metrics["saved%"]; got != 31.96 {
		t.Errorf("custom metric saved%% = %v, want 31.96", got)
	}
	if got := rs[3].Metrics["area"]; got != 4343 {
		t.Errorf("custom metric area = %v, want 4343", got)
	}
}

func TestParseBenchOutputNoBenchmem(t *testing.T) {
	rs, err := ParseBenchOutput(strings.NewReader("BenchmarkX-4\t10\t123 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].BytesPerOp != -1 || rs[0].AllocsPerOp != -1 {
		t.Fatalf("want sentinel -1 for missing benchmem columns, got %+v", rs)
	}
}

func TestParseBenchOutputMalformed(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX-4\tnotanumber\t123 ns/op\n")); err == nil {
		t.Fatal("want error for bad iteration count")
	}
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX-4\t10\t123 ns/op extra\n")); err == nil {
		t.Fatal("want error for odd value/unit pairing")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rs, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Date: "2026-07-29", GoVersion: "go1.24.0", Note: "test", Results: rs}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != snap.Date || back.GoVersion != snap.GoVersion || len(back.Results) != len(snap.Results) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	r := back.Lookup("BenchmarkMCMF/warm")
	if r == nil || r.NsPerOp != 7039022 {
		t.Fatalf("Lookup after round trip: %+v", r)
	}
	if back.Lookup("BenchmarkNope") != nil {
		t.Fatal("Lookup of missing name should be nil")
	}
	// Results must come back sorted by name (stable diffs).
	for i := 1; i < len(back.Results); i++ {
		if back.Results[i-1].Name > back.Results[i].Name {
			t.Fatalf("results not sorted: %q > %q", back.Results[i-1].Name, back.Results[i].Name)
		}
	}
}
