// Benchmark snapshots: a small, dependency-free format for recording
// the repo's performance trajectory across PRs.
//
// A Snapshot is the parsed form of `go test -bench -benchmem` output
// (ns/op, B/op, allocs/op plus any custom ReportMetric columns) stamped
// with the date and Go version.  cmd/mkbench -snapshot runs the
// benchmarks and writes one as BENCH_<date>.json at the repo root;
// EXPERIMENTS.md records how each snapshot was produced and what the
// numbers mean.  Future PRs compare against the last committed snapshot
// instead of folklore.
package benchsnap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line of `go test -bench -benchmem`.
type BenchResult struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// (BenchmarkMCMF/warm-8 -> BenchmarkMCMF/warm).
	Name string `json:"name"`
	// Iters is the measured iteration count (the b.N column).
	Iters int64 `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// columns; Bytes/Allocs are -1 when -benchmem was not in effect.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any custom b.ReportMetric columns (saved%, iters, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is a dated set of benchmark results.
type Snapshot struct {
	Date      string        `json:"date"`       // YYYY-MM-DD
	GoVersion string        `json:"go_version"` // runtime.Version() of the run
	Note      string        `json:"note,omitempty"`
	Results   []BenchResult `json:"results"`
}

// ParseBenchOutput extracts benchmark lines from `go test -bench`
// output.  Non-benchmark lines (goos/pkg headers, PASS, ok) are
// skipped; malformed benchmark lines are an error.
func ParseBenchOutput(r io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []BenchResult
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		res := BenchResult{
			Name:        stripProcSuffix(fields[0]),
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: bad iteration count in %q", line)
		}
		res.Iters = iters
		// Remaining fields come in "<value> <unit>" pairs.
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("bench: odd value/unit pairing in %q", line)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripProcSuffix removes the trailing -<GOMAXPROCS> from a benchmark
// name (only the final numeric dash segment; sub-benchmark names keep
// their dashes).
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// WriteJSON emits the snapshot as stable, human-diffable JSON (results
// sorted by name, two-space indent, trailing newline).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	sorted := append([]BenchResult(nil), s.Results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	cp := *s
	cp.Results = sorted
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Lookup returns the result with the given name, or nil.
func (s *Snapshot) Lookup(name string) *BenchResult {
	for i := range s.Results {
		if s.Results[i].Name == name {
			return &s.Results[i]
		}
	}
	return nil
}
