package benchsnap

import (
	"math"
	"strings"
	"testing"
)

func snap(results ...BenchResult) *Snapshot {
	return &Snapshot{Date: "2026-07-29", Results: results}
}

func TestCompareMatchesByName(t *testing.T) {
	old := snap(
		BenchResult{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10},
		BenchResult{Name: "BenchmarkGone", NsPerOp: 5, AllocsPerOp: -1},
	)
	new := snap(
		BenchResult{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 10},
		BenchResult{Name: "BenchmarkNew", NsPerOp: 7, AllocsPerOp: -1},
	)
	deltas, onlyOld, onlyNew := Compare(old, new)
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkA" {
		t.Fatalf("deltas = %+v", deltas)
	}
	if math.Abs(deltas[0].NsPct-50) > 1e-9 {
		t.Fatalf("NsPct = %g, want 50", deltas[0].NsPct)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestRegressedThreshold(t *testing.T) {
	for _, tc := range []struct {
		d    Delta
		want bool
	}{
		{Delta{NsPct: 14.9}, false},
		{Delta{NsPct: 15.1}, true},
		{Delta{NsPct: -40}, false},
		// Alloc regression alone trips the gate when measured on both
		// sides — against the tight AllocThresholdPct, not the (possibly
		// loose) ns/op threshold.
		{Delta{NsPct: 0, OldAllocs: 100, NewAllocs: 200, AllocsPct: 100}, true},
		{Delta{NsPct: 0, OldAllocs: 100, NewAllocs: 106, AllocsPct: 6}, true},
		{Delta{NsPct: 0, OldAllocs: 100, NewAllocs: 104, AllocsPct: 4}, false},
		// Unmeasured allocs (−1) never trip it.
		{Delta{NsPct: 0, OldAllocs: -1, NewAllocs: 50, AllocsPct: 0}, false},
		// Losing a 0-allocs guarantee always trips it.
		{Delta{NsPct: 0, OldAllocs: 0, NewAllocs: 1, AllocsPct: 0}, true},
		{Delta{NsPct: 0, OldAllocs: 0, NewAllocs: 0, AllocsPct: 0}, false},
	} {
		if got := tc.d.Regressed(15); got != tc.want {
			t.Fatalf("Regressed(%+v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestWriteComparisonCountsRegressions(t *testing.T) {
	old := snap(
		BenchResult{Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 4},
		BenchResult{Name: "BenchmarkSlow", NsPerOp: 100, AllocsPerOp: 4},
	)
	new := snap(
		BenchResult{Name: "BenchmarkFast", NsPerOp: 90, AllocsPerOp: 4},
		BenchResult{Name: "BenchmarkSlow", NsPerOp: 200, AllocsPerOp: 4},
	)
	var sb strings.Builder
	if got := WriteComparison(&sb, old, new, 15, false); got != 1 {
		t.Fatalf("regressions = %d, want 1; output:\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("missing regression marker:\n%s", sb.String())
	}
}

// TestWriteComparisonMissingBenchmarkFails: a benchmark present in the
// baseline but absent from the new snapshot is a per-benchmark error
// that fails the gate — a renamed or deleted benchmark must not slip
// through silently.  -allow-missing downgrades it to a note.
func TestWriteComparisonMissingBenchmarkFails(t *testing.T) {
	old := snap(
		BenchResult{Name: "BenchmarkKept", NsPerOp: 100, AllocsPerOp: 4},
		BenchResult{Name: "BenchmarkGone", NsPerOp: 100, AllocsPerOp: 4},
		BenchResult{Name: "BenchmarkAlsoGone", NsPerOp: 50, AllocsPerOp: 0},
	)
	new := snap(
		BenchResult{Name: "BenchmarkKept", NsPerOp: 100, AllocsPerOp: 4},
	)
	var sb strings.Builder
	if got := WriteComparison(&sb, old, new, 15, false); got != 2 {
		t.Fatalf("failures = %d, want 2 (one per missing benchmark); output:\n%s", got, sb.String())
	}
	out := sb.String()
	for _, name := range []string{"BenchmarkGone", "BenchmarkAlsoGone"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing per-benchmark error for %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "MISSING from new snapshot") {
		t.Fatalf("missing error marker:\n%s", out)
	}

	sb.Reset()
	if got := WriteComparison(&sb, old, new, 15, true); got != 0 {
		t.Fatalf("failures with allow-missing = %d, want 0; output:\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "ignored: -allow-missing") {
		t.Fatalf("missing allow-missing note:\n%s", sb.String())
	}
}

func TestGeoMeanNsRatio(t *testing.T) {
	old := snap(
		BenchResult{Name: "BenchmarkA", NsPerOp: 100},
		BenchResult{Name: "BenchmarkB", NsPerOp: 100},
	)
	new := snap(
		BenchResult{Name: "BenchmarkA", NsPerOp: 50},
		BenchResult{Name: "BenchmarkB", NsPerOp: 200},
	)
	// Ratios 0.5 and 2.0 → geometric mean 1.0.
	if r := GeoMeanNsRatio(old, new); math.Abs(r-1) > 1e-12 {
		t.Fatalf("geomean = %g, want 1", r)
	}
}
