package benchsnap

import (
	"fmt"
	"io"
	"math"
)

// Delta is the comparison of one benchmark across two snapshots.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	NsPct                float64 // 100·(new−old)/old
	OldAllocs, NewAllocs float64 // −1 when -benchmem was off
	AllocsPct            float64
}

// pct returns the relative change in percent, treating a zero or
// unmeasured (−1) baseline as no change.
func pct(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// Compare matches benchmarks by name and returns one Delta per
// benchmark present in both snapshots, in the new snapshot's order.
// onlyOld/onlyNew list the unmatched names — a renamed or deleted
// benchmark should be visible, not silently dropped.
func Compare(old, new *Snapshot) (deltas []Delta, onlyOld, onlyNew []string) {
	for i := range new.Results {
		nr := &new.Results[i]
		or := old.Lookup(nr.Name)
		if or == nil {
			onlyNew = append(onlyNew, nr.Name)
			continue
		}
		deltas = append(deltas, Delta{
			Name:      nr.Name,
			OldNs:     or.NsPerOp,
			NewNs:     nr.NsPerOp,
			NsPct:     pct(or.NsPerOp, nr.NsPerOp),
			OldAllocs: or.AllocsPerOp,
			NewAllocs: nr.AllocsPerOp,
			AllocsPct: pct(or.AllocsPerOp, nr.AllocsPerOp),
		})
	}
	for i := range old.Results {
		if new.Lookup(old.Results[i].Name) == nil {
			onlyOld = append(onlyOld, old.Results[i].Name)
		}
	}
	return deltas, onlyOld, onlyNew
}

// AllocThresholdPct is the regression threshold for allocs/op.  Unlike
// ns/op — which needs a loose, hardware-noise-sized threshold when the
// baseline was recorded on a different machine — allocation counts are
// exact and hardware-independent, so the gate holds them tight
// regardless of the caller's ns/op threshold.
const AllocThresholdPct = 5

// Regressed reports whether the delta exceeds the regression threshold
// (in percent) on ns/op, or AllocThresholdPct on allocs/op when both
// sides measured allocations.  Time below the threshold and any
// improvement never count.  A benchmark that was allocation-free and
// now allocates is always a regression — hard-won 0 allocs/op
// guarantees (warm mcmf re-solves, the W-phase round) must not
// silently erode.
func (d *Delta) Regressed(nsThresholdPct float64) bool {
	if d.NsPct > nsThresholdPct {
		return true
	}
	if d.OldAllocs >= 0 && d.NewAllocs >= 0 {
		if d.AllocsPct > AllocThresholdPct {
			return true
		}
		if d.OldAllocs == 0 && d.NewAllocs > 0 {
			return true
		}
	}
	return false
}

// WriteComparison prints a per-benchmark delta table to w and returns
// the number of failures: regressions beyond thresholdPct, plus —
// unless allowMissing — one per baseline benchmark absent from the
// new snapshot.  A missing benchmark is an error, not an omission: a
// renamed or deleted benchmark silently skipping the gate is exactly
// how a regression ships, so each one is reported on its own line.
// allowMissing exists for intentionally disjoint snapshots (e.g.
// diffing a micro-benchmark run against a full-suite baseline).
func WriteComparison(w io.Writer, old, new *Snapshot, thresholdPct float64, allowMissing bool) int {
	deltas, onlyOld, onlyNew := Compare(old, new)
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "allocs", "Δallocs")
	failures := 0
	for i := range deltas {
		d := &deltas[i]
		mark := ""
		if d.Regressed(thresholdPct) {
			mark = "  << REGRESSION"
			failures++
		}
		allocs := "-"
		dAllocs := "-"
		if d.OldAllocs >= 0 && d.NewAllocs >= 0 {
			allocs = fmt.Sprintf("%.0f→%.0f", d.OldAllocs, d.NewAllocs)
			dAllocs = fmt.Sprintf("%+.1f%%", d.AllocsPct)
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%% %10s %8s%s\n",
			d.Name, d.OldNs, d.NewNs, d.NsPct, allocs, dAllocs, mark)
	}
	for _, n := range onlyOld {
		if allowMissing {
			fmt.Fprintf(w, "%-44s only in old snapshot (ignored: -allow-missing)\n", n)
			continue
		}
		fmt.Fprintf(w, "%-44s MISSING from new snapshot  << ERROR\n", n)
		failures++
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "%-44s only in new snapshot\n", n)
	}
	if failures > 0 {
		fmt.Fprintf(w, "%d benchmark(s) failed the gate (>%.0f%% ns/op, >%d%% allocs/op, or missing from the new snapshot)\n",
			failures, thresholdPct, AllocThresholdPct)
	}
	return failures
}

// GeoMeanNsRatio returns the geometric-mean new/old ns/op ratio over
// the matched benchmarks (1.0 = no change), a single scalar for the
// snapshot-over-snapshot trajectory in EXPERIMENTS.md.
func GeoMeanNsRatio(old, new *Snapshot) float64 {
	deltas, _, _ := Compare(old, new)
	sum, n := 0.0, 0
	for i := range deltas {
		if deltas[i].OldNs > 0 && deltas[i].NewNs > 0 {
			sum += math.Log(deltas[i].NewNs / deltas[i].OldNs)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}
