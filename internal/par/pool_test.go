package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolForEachCoversAllParts(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		var mask atomic.Int64
		var count atomic.Int32
		p.ForEach(func(part int) {
			if part < 0 || part >= workers {
				t.Errorf("workers %d: part %d out of range", workers, part)
			}
			mask.Or(1 << part)
			count.Add(1)
		})
		if int(count.Load()) != workers {
			t.Fatalf("workers %d: %d invocations", workers, count.Load())
		}
		if mask.Load() != (1<<workers)-1 {
			t.Fatalf("workers %d: parts covered %b", workers, mask.Load())
		}
		// Reusable across calls, and the barrier orders writes.
		sum := make([]int, workers)
		for round := 0; round < 100; round++ {
			p.ForEach(func(part int) { sum[part]++ })
		}
		for part, v := range sum {
			if v != 100 {
				t.Fatalf("workers %d part %d ran %d rounds, want 100", workers, part, v)
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	ran := false
	p.ForEach(func(part int) { ran = part == 0 })
	if !ran {
		t.Fatal("nil pool did not run part 0 inline")
	}
	p.Close()
}
