// Package par provides the small fixed-size worker pool behind the
// optimizer's intra-run parallelism (the W-phase level sweeps and the
// D-phase sensitivity solves).
//
// The design constraint is barrier cost, not throughput: a sizing run
// crosses a dependency-level barrier hundreds of times per solve, so
// workers must be persistent goroutines parked on a channel (one spawn
// per pool, microsecond wake-ups) rather than spawned per region.  The
// pool deliberately has no work queue — ForEach hands every worker one
// statically numbered part and the caller decides how to map parts to
// work, which keeps partitioning deterministic and allocation-free at
// the call site.
//
// A nil *Pool is valid everywhere and means "serial": Workers reports
// 1 and ForEach runs inline, so solvers can hold an optional pool
// without branching.
package par

import "sync"

// Pool is a fixed-size worker pool with a ForEach barrier.
type Pool struct {
	workers int
	task    chan call
	wg      sync.WaitGroup
	closed  bool
}

type call struct {
	fn   func(part int)
	part int
}

// New returns a pool of the given worker count.  Counts below 2 need
// no goroutines at all (ForEach runs inline); otherwise workers−1
// helper goroutines are spawned and parked until Close.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.task = make(chan call)
		for i := 0; i < workers-1; i++ {
			go func() {
				for c := range p.task {
					c.fn(c.part)
					p.wg.Done()
				}
			}()
		}
	}
	return p
}

// Workers returns the part count ForEach will invoke (1 for a nil or
// serial pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(part) for every part in [0, Workers()), part 0 on
// the calling goroutine, and returns when all parts have completed —
// a full barrier, so writes made by any part happen-before ForEach
// returns.
func (p *Pool) ForEach(fn func(part int)) {
	if p == nil || p.workers == 1 {
		fn(0)
		return
	}
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		p.task <- call{fn, w}
	}
	fn(0)
	p.wg.Wait()
}

// Close releases the worker goroutines.  The pool must be idle; a
// closed pool must not be used again.  Closing a nil or serial pool
// is a no-op.
func (p *Pool) Close() {
	if p == nil || p.task == nil || p.closed {
		return
	}
	p.closed = true
	close(p.task)
}
