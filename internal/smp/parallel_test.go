package smp

import (
	"math/rand"
	"testing"

	"minflo/internal/delay"
	"minflo/internal/par"
)

// mkWideInstance builds a layered coefficient set wide enough to cross
// the level-parallel floor: `layers`×`width` vertices, each coupling
// to a few vertices of the next layer, plus (optionally) mutually
// coupled same-layer pairs forming 2-vertex SCC blocks — the
// transistor-level shape.
func mkWideInstance(rng *rand.Rand, layers, width int, blocks bool) ([]delay.Coeffs, []float64) {
	n := layers * width
	ks := make([]delay.Coeffs, n)
	for v := 0; v < n; v++ {
		ks[v].Self = rng.Float64() * 2
		ks[v].Const = rng.Float64() * 10
		l := v / width
		if l+1 < layers {
			for k := 0; k < 1+rng.Intn(3); k++ {
				j := (l+1)*width + rng.Intn(width)
				ks[v].Terms = append(ks[v].Terms, delay.Term{J: j, A: rng.Float64() * 2})
			}
		}
		// Weak mutual coupling with the in-layer neighbour: v and v+1
		// become one SCC block (contractive, so the fixed point exists).
		if blocks && v%width%2 == 0 && v+1 < (l+1)*width {
			ks[v].Terms = append(ks[v].Terms, delay.Term{J: v + 1, A: 0.15 * rng.Float64()})
			ks[v+1].Terms = append(ks[v+1].Terms, delay.Term{J: v, A: 0.15 * rng.Float64()})
		}
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = ks[i].Self + 1 + rng.Float64()*8
	}
	return ks, d
}

// TestParallelSweepMatchesSerialBitwise is the W-phase determinism
// gate: the level-parallel sweep at worker counts 2, 4 and 8 must
// reproduce the serial sweep bit for bit — same X, same sweep count,
// same clamp set — on instances wide enough that the parallel path
// actually engages (asserted via the CSR level width).
func TestParallelSweepMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		blocks := trial%2 == 1
		ks, d := mkWideInstance(rng, 3+rng.Intn(4), 2*delay.LevelParallelFloor+rng.Intn(200), blocks)
		csr := delay.NewCSR(ks)
		if csr.MaxLevelWidth() < delay.LevelParallelFloor {
			t.Fatalf("trial %d: max level width %d below the parallel floor — bad generator", trial, csr.MaxLevelWidth())
		}
		lo, hi := 1.0, 4+rng.Float64()*60

		serial := NewSolver(csr)
		xs := make([]float64, len(ks))
		want, wantErr := serial.SolveInto(xs, d, lo, hi, Options{})
		if wantErr != nil {
			t.Fatalf("trial %d: serial: %v", trial, wantErr)
		}

		for _, workers := range []int{2, 4, 8} {
			pool := par.New(workers)
			ps := NewSolver(csr)
			ps.SetParallel(pool)
			xp := make([]float64, len(ks))
			got, err := ps.SolveInto(xp, d, lo, hi, Options{})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if got.Sweeps != want.Sweeps {
				t.Fatalf("trial %d workers %d: %d sweeps, serial %d", trial, workers, got.Sweeps, want.Sweeps)
			}
			for i := range want.X {
				if got.X[i] != want.X[i] {
					t.Fatalf("trial %d workers %d: x[%d] = %v, serial %v", trial, workers, i, got.X[i], want.X[i])
				}
			}
			if len(got.Clamped) != len(want.Clamped) {
				t.Fatalf("trial %d workers %d: clamp set %v, serial %v", trial, workers, got.Clamped, want.Clamped)
			}
			for k := range want.Clamped {
				if got.Clamped[k] != want.Clamped[k] {
					t.Fatalf("trial %d workers %d: clamp set %v, serial %v", trial, workers, got.Clamped, want.Clamped)
				}
			}
			pool.Close()
		}
	}
}

// TestParallelSweepZeroCouplingHazard pins the LevelParallelSafe
// guard: a zero-coefficient cross-block term whose endpoints violate
// the level order carries no dependency (the level partition ignores
// it) but is still read by LoadAt, so the parallel sweep must fall
// back to serial — same results, no data race (this test runs under
// the CI -race job).
func TestParallelSweepZeroCouplingHazard(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ks, d := mkWideInstance(rng, 4, 2*delay.LevelParallelFloor, false)
	// Zero term from a vertex in the last layer back to one in the
	// first: blockOf(src) > blockOf(dst) in dependency terms is not
	// guaranteed, but levels certainly do not strictly increase for a
	// backward reference, so the CSR must flag the hazard.
	n := len(ks)
	ks[n-1].Terms = append(ks[n-1].Terms, delay.Term{J: 0, A: 0})
	csr := delay.NewCSR(ks)
	if csr.LevelParallelSafe() {
		t.Fatal("hazardous zero coupling not detected")
	}
	if csr.MaxLevelWidth() < delay.LevelParallelFloor {
		t.Fatalf("instance too narrow (%d) to prove the fallback", csr.MaxLevelWidth())
	}

	serial := NewSolver(csr)
	xs := make([]float64, n)
	want, err := serial.SolveInto(xs, d, 1, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := par.New(4)
	defer pool.Close()
	ps := NewSolver(csr)
	ps.SetParallel(pool)
	xp := make([]float64, n)
	got, err := ps.SolveInto(xp, d, 1, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweeps != want.Sweeps {
		t.Fatalf("%d sweeps, serial %d", got.Sweeps, want.Sweeps)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("x[%d] = %v, serial %v", i, got.X[i], want.X[i])
		}
	}
}
