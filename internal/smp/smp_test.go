package smp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/delay"
)

func TestSingleVertexExact(t *testing.T) {
	// x ≥ (b)/(d − self); with b=6, d=4, self=1 → x = 2.
	ks := []delay.Coeffs{{Self: 1, Const: 6}}
	r, err := Solve(ks, []float64{4}, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-9 {
		t.Fatalf("x = %v", r.X)
	}
	if err := Verify(ks, []float64{4}, 1, 100, r, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundWins(t *testing.T) {
	// Loose budget: the bound (x ≥ 0.1) is below lo → x = lo.
	ks := []delay.Coeffs{{Self: 1, Const: 1}}
	r, err := Solve(ks, []float64{11}, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 1 {
		t.Fatalf("x = %v, want lower bound 1", r.X)
	}
}

func TestClampDetection(t *testing.T) {
	// Budget needs x = 200 > hi = 100: clamped, delay exceeds budget.
	ks := []delay.Coeffs{{Self: 1, Const: 200}}
	r, err := Solve(ks, []float64{2}, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 100 {
		t.Fatalf("x = %v, want clamp at 100", r.X)
	}
	if len(r.Clamped) != 1 || r.Clamped[0] != 0 {
		t.Fatalf("clamped = %v", r.Clamped)
	}
	if err := Verify(ks, []float64{2}, 1, 100, r, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestChainPropagation(t *testing.T) {
	// Vertex 0 loads vertex 1: tightening 1's budget grows x1 which
	// grows x0's requirement.
	ks := []delay.Coeffs{
		{Self: 1, Terms: []delay.Term{{J: 1, A: 1}}, Const: 1},
		{Self: 1, Const: 8},
	}
	// d1 = 3 → x1 = 8/2 = 4; d0 = 2 → x0 = (4+1)/1 = 5.
	r, err := Solve(ks, []float64{2, 3}, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[1]-4) > 1e-9 || math.Abs(r.X[0]-5) > 1e-9 {
		t.Fatalf("x = %v", r.X)
	}
	if r.Sweeps > 3 {
		t.Fatalf("chain should converge in one ordered sweep, took %d", r.Sweeps)
	}
}

func TestBudgetBelowIntrinsicRejected(t *testing.T) {
	ks := []delay.Coeffs{{Self: 5, Const: 1}}
	if _, err := Solve(ks, []float64{5}, 1, 100, Options{}); err == nil {
		t.Fatal("budget at intrinsic accepted")
	}
}

func TestCyclicCouplingConverges(t *testing.T) {
	// Mutually loading pair (transistor-sizing block): x0 needs x1 and
	// vice versa; contraction requires the coupling/budget ratio < 1.
	ks := []delay.Coeffs{
		{Self: 1, Terms: []delay.Term{{J: 1, A: 0.5}}, Const: 4},
		{Self: 1, Terms: []delay.Term{{J: 0, A: 0.5}}, Const: 4},
	}
	d := []float64{3, 3} // denominators 2: x = (4 + 0.5·x')/2
	r, err := Solve(ks, d, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed point: x = (4 + 0.5x)/2 → 2x = 4 + 0.5x → x = 8/3.
	want := 8.0 / 3.0
	if math.Abs(r.X[0]-want) > 1e-6 || math.Abs(r.X[1]-want) > 1e-6 {
		t.Fatalf("x = %v, want %g", r.X, want)
	}
	if err := Verify(ks, d, 1, 100, r, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func mkRandomAcyclic(rng *rand.Rand, n int) []delay.Coeffs {
	ks := make([]delay.Coeffs, n)
	for i := 0; i < n; i++ {
		ks[i].Self = rng.Float64() * 2
		ks[i].Const = rng.Float64() * 10
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				ks[i].Terms = append(ks[i].Terms, delay.Term{J: j, A: rng.Float64() * 3})
			}
		}
	}
	return ks
}

// Property: the solution is feasible and minimal (each coordinate is at
// the lower bound, tight on its constraint, or clamped at hi).
func TestQuickLeastFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		ks := mkRandomAcyclic(rng, n)
		d := make([]float64, n)
		for i := range d {
			d[i] = ks[i].Self + 0.5 + rng.Float64()*8
		}
		r, err := Solve(ks, d, 1, 64, Options{})
		if err != nil {
			return false
		}
		return Verify(ks, d, 1, 64, r, 1e-8) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any feasible point dominates the least fixed point
// coordinatewise.  Check against a perturbed feasible solution.
func TestQuickMinimalityAgainstFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		ks := mkRandomAcyclic(rng, n)
		d := make([]float64, n)
		for i := range d {
			d[i] = ks[i].Self + 1 + rng.Float64()*5
		}
		r, err := Solve(ks, d, 1, 1e9, Options{})
		if err != nil {
			return false
		}
		// Build a feasible point by inflating the LFP, then check the
		// LFP is below it everywhere.
		y := make([]float64, n)
		for i := range y {
			y[i] = r.X[i] * (1 + rng.Float64())
		}
		// Inflation keeps feasibility only if constraints stay satisfied;
		// re-project y upward until feasible.
		for sweep := 0; sweep < 2*n+4; sweep++ {
			for i := n - 1; i >= 0; i-- {
				need := ks[i].LoadAt(y) / (d[i] - ks[i].Self)
				if y[i] < need {
					y[i] = need
				}
			}
		}
		for i := range y {
			if r.X[i] > y[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatch(t *testing.T) {
	ks := []delay.Coeffs{{Self: 1, Const: 1}}
	if _, err := Solve(ks, []float64{1, 2}, 1, 10, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
