package smp

import (
	"math"
	"math/rand"
	"testing"

	"minflo/internal/delay"
	"minflo/internal/graph"
)

// referenceSolve is the pre-CSR W-phase solver, kept verbatim (modulo
// naming) as the oracle for the equivalence tests: it rebuilds the
// dependency graph and sweep order per call and collects clamped
// vertices into a fresh slice.  The CSR-based Solver must reproduce its
// results bit for bit.
func referenceSolve(coeffs []delay.Coeffs, d []float64, lo, hi float64, opt Options) (*Result, error) {
	n := len(coeffs)
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 4*n + 64
	}
	denom := make([]float64, n)
	for i := range coeffs {
		denom[i] = d[i] - coeffs[i].Self
		if denom[i] <= 0 || math.IsNaN(denom[i]) {
			return nil, ErrNoConvergence // signal only; exact error text untested
		}
	}
	dep := graph.New(n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				dep.AddEdge(i, t.J)
			}
		}
	}
	groups := dep.CondensationOrder()
	order := make([]int, 0, n)
	for gi := len(groups) - 1; gi >= 0; gi-- {
		order = append(order, groups[gi]...)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = lo
	}
	res := &Result{X: x}
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		maxDelta := 0.0
		for _, i := range order {
			need := coeffs[i].LoadAt(x) / denom[i]
			nx := need
			if nx < lo {
				nx = lo
			}
			if nx > hi {
				nx = hi
			}
			if nx > x[i] {
				if nx-x[i] > maxDelta {
					maxDelta = nx - x[i]
				}
				x[i] = nx
			}
		}
		if maxDelta <= opt.Tol {
			for i := range coeffs {
				if need := coeffs[i].LoadAt(x) / denom[i]; need > hi*(1+1e-12) {
					res.Clamped = append(res.Clamped, i)
				}
			}
			return res, nil
		}
	}
	return nil, ErrNoConvergence
}

// mkEquivInstance builds a random coefficient set: mostly acyclic
// (gate-level shape) with optional small mutually-coupled blocks
// (transistor-level shape), plus budgets guaranteed above intrinsic.
func mkEquivInstance(rng *rand.Rand, blocks bool) ([]delay.Coeffs, []float64) {
	n := 2 + rng.Intn(24)
	ks := make([]delay.Coeffs, n)
	for i := 0; i < n; i++ {
		ks[i].Self = rng.Float64() * 2
		ks[i].Const = rng.Float64() * 10
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				ks[i].Terms = append(ks[i].Terms, delay.Term{J: j, A: rng.Float64() * 3})
			}
		}
		// Small backward couplings create 2–3 vertex SCC blocks; keep
		// them weakly coupled so the fixed point stays contractive.
		if blocks && i > 0 && rng.Intn(4) == 0 {
			ks[i].Terms = append(ks[i].Terms, delay.Term{J: i - 1, A: 0.2 * rng.Float64()})
		}
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = ks[i].Self + 0.5 + rng.Float64()*8
	}
	return ks, d
}

// TestCSRSolverMatchesReferenceBitwise runs ~100 random gate- and
// transistor-shaped instances through the persistent CSR solver and the
// pre-refactor reference and demands bit-identical output: same X,
// same clamp set, same sweep count.
func TestCSRSolverMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 110; trial++ {
		blocks := trial%2 == 1
		ks, d := mkEquivInstance(rng, blocks)
		lo, hi := 1.0, 4+rng.Float64()*60

		want, wantErr := referenceSolve(ks, d, lo, hi, Options{})

		s := NewSolver(delay.NewCSR(ks))
		x := make([]float64, len(ks))
		// Solve twice through the same solver: the second call reuses all
		// scratch and must still match.
		for pass := 0; pass < 2; pass++ {
			got, gotErr := s.SolveInto(x, d, lo, hi, Options{})
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d pass %d: err %v, reference err %v", trial, pass, gotErr, wantErr)
			}
			if gotErr != nil {
				break
			}
			if got.Sweeps != want.Sweeps {
				t.Fatalf("trial %d pass %d: %d sweeps, reference %d", trial, pass, got.Sweeps, want.Sweeps)
			}
			for i := range want.X {
				if got.X[i] != want.X[i] {
					t.Fatalf("trial %d pass %d: x[%d] = %v, reference %v (diff %g)",
						trial, pass, i, got.X[i], want.X[i], got.X[i]-want.X[i])
				}
			}
			if len(got.Clamped) != len(want.Clamped) {
				t.Fatalf("trial %d pass %d: clamp set %v, reference %v", trial, pass, got.Clamped, want.Clamped)
			}
			for k := range want.Clamped {
				if got.Clamped[k] != want.Clamped[k] {
					t.Fatalf("trial %d pass %d: clamp set %v, reference %v", trial, pass, got.Clamped, want.Clamped)
				}
			}
		}
	}
}

// TestSolveIntoZeroAlloc asserts the persistent-solver contract
// directly at the smp layer.
func TestSolveIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ks, d := mkEquivInstance(rng, true)
	s := NewSolver(delay.NewCSR(ks))
	x := make([]float64, len(ks))
	if _, err := s.SolveInto(x, d, 1, 100, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SolveInto(x, d, 1, 100, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocates %.1f objects per call, want 0", allocs)
	}
}
