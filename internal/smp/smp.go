// Package smp solves the W-phase Simple Monotonic Program
// (paper §2.3.2, eq. 11):
//
//	minimize   Σ w_i·x_i
//	subject to delay(i) ≤ d_i       i.e.  x_i ≥ (Σ a_ij x_j + b_i)/(d_i − a_ii)
//	           lo ≤ x_i ≤ hi
//
// Because every right-hand side is monotone non-decreasing in every
// x_j, the feasible set is closed under pointwise minimum and the
// unique minimal solution is the least fixed point of
//
//	x ← clamp( (A·x + b) ⊘ (d − diag(A)) ).
//
// A Solver iterates Gauss–Seidel sweeps in dependency order (exact in
// one sweep for acyclic dependencies, as in gate sizing; geometric for
// the small intra-gate blocks of transistor sizing), matching the
// O(|V|·|E|) worst case of the constraint-relaxation procedure in the
// paper's reference [10].  The coupling structure and sweep order come
// from a shared delay.CSR built once per problem; SolveInto re-solves
// for new budgets with zero heap allocations (the optimizer's W-phase
// runs dozens of times per problem), using an epoch-stamped clamp set
// instead of per-call maps.
package smp

import (
	"errors"
	"fmt"
	"math"

	"minflo/internal/delay"
	"minflo/internal/par"
)

// ErrNoConvergence is returned when the relaxation does not reach a
// fixed point within the sweep budget.
var ErrNoConvergence = errors.New("smp: relaxation did not converge")

// Result of a W-phase solve.
type Result struct {
	X []float64
	// Clamped lists the vertices whose constraint required a size above
	// hi; their budgets are unattainable and their delay exceeds d_i.
	Clamped []int
	// Sweeps is the number of Gauss–Seidel sweeps performed.
	Sweeps int
}

// Options configure the solver. Zero values select defaults.
type Options struct {
	Tol       float64 // convergence tolerance on size change (default 1e-9)
	MaxSweeps int     // sweep budget (default 4·n + 64)
}

// Solver is the persistent W-phase engine for one coefficient set: the
// dependency order is taken from the CSR's build-once condensation and
// all sweep scratch is owned by the Solver, so repeated SolveInto calls
// allocate nothing.
type Solver struct {
	csr   *delay.CSR
	denom []float64 // d_i − a_ii, rewritten per solve

	// Epoch-stamped clamp membership (the PR-1 mcmf scratch trick): a
	// vertex is clamped in the current solve iff inClamp[i] == epoch,
	// so no per-call map or O(n) clear is needed.
	inClamp []uint32
	epoch   uint32

	clamped []int // reused Result.Clamped storage
	res     Result

	// Optional worker pool (nil = serial): wide dependency levels are
	// swept level-parallel, merging per-part deltas deterministically.
	pool      *par.Pool
	partDelta []float64
}

// NewSolver builds a persistent solver over the coupling structure.
func NewSolver(csr *delay.CSR) *Solver {
	n := csr.N()
	return &Solver{
		csr:     csr,
		denom:   make([]float64, n),
		inClamp: make([]uint32, n),
	}
}

// SetParallel attaches a worker pool: sweeps run level-parallel over
// the CSR's independence structure (each dependency level's blocks
// split across the pool), which is bit-identical to the serial sweep —
// every vertex reads only values from strictly deeper levels (written
// before the level barrier) and from its own block (same worker), so
// the computed fixed point does not depend on scheduling.  A nil pool
// restores the serial sweep.
func (s *Solver) SetParallel(pool *par.Pool) {
	s.pool = pool
	if w := pool.Workers(); w > 1 && len(s.partDelta) < w {
		s.partDelta = make([]float64, w)
	}
}

// sweepBlock relaxes every vertex of block b once (in block order) and
// returns the updated maximum size delta — the shared inner body of
// the serial and parallel sweeps.
func (s *Solver) sweepBlock(b int, x []float64, lo, hi, maxDelta float64) float64 {
	csr := s.csr
	denom := s.denom
	for _, vi := range csr.Block(b) {
		i := int(vi)
		need := csr.LoadAt(i, x) / denom[i]
		nx := need
		if nx < lo {
			nx = lo
		}
		if nx > hi {
			nx = hi
		}
		if nx > x[i] { // least fixed point: sizes only grow from lo
			if nx-x[i] > maxDelta {
				maxDelta = nx - x[i]
			}
			x[i] = nx
		}
	}
	return maxDelta
}

// SolveInto computes the least fixed point for budgets d and writes it
// into x (length N). The returned Result aliases x and solver-owned
// scratch; it is valid until the next SolveInto call. Steady-state
// calls perform no heap allocations.
func (s *Solver) SolveInto(x, d []float64, lo, hi float64, opt Options) (*Result, error) {
	csr := s.csr
	n := csr.N()
	if len(d) != n {
		return nil, fmt.Errorf("smp: budget vector length %d != %d", len(d), n)
	}
	if len(x) != n {
		return nil, fmt.Errorf("smp: solution vector length %d != %d", len(x), n)
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 4*n + 64
	}
	denom := s.denom
	for i := 0; i < n; i++ {
		denom[i] = d[i] - csr.Self[i]
		if denom[i] <= 0 || math.IsNaN(denom[i]) {
			return nil, fmt.Errorf("smp: budget %g at vertex %d below intrinsic delay %g",
				d[i], i, csr.Self[i])
		}
	}

	for i := range x {
		x[i] = lo
	}
	s.epoch++
	s.clamped = s.clamped[:0]
	res := &s.res
	*res = Result{X: x}
	// Sweep order: dependencies first.  x_i needs x_j for couplings
	// i→j, so blocks run in reverse condensation order (sinks of the
	// dependency graph first).  With a pool attached, wide levels of
	// independent blocks are swept concurrently instead — same values,
	// see SetParallel.
	nb := csr.NumBlocks()
	workers := s.pool.Workers()
	parallel := workers > 1 && csr.MaxLevelWidth() >= delay.LevelParallelFloor &&
		csr.LevelParallelSafe()
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		maxDelta := 0.0
		if parallel {
			for l := csr.NumLevels() - 1; l >= 0; l-- {
				blocks := csr.LevelBlocks(l)
				if len(blocks) < delay.LevelParallelFloor {
					for _, b := range blocks {
						maxDelta = s.sweepBlock(int(b), x, lo, hi, maxDelta)
					}
					continue
				}
				s.pool.ForEach(func(part int) {
					md := 0.0
					plo, phi := len(blocks)*part/workers, len(blocks)*(part+1)/workers
					for _, b := range blocks[plo:phi] {
						md = s.sweepBlock(int(b), x, lo, hi, md)
					}
					s.partDelta[part] = md
				})
				for _, md := range s.partDelta[:workers] {
					if md > maxDelta {
						maxDelta = md
					}
				}
			}
		} else {
			for b := nb - 1; b >= 0; b-- {
				maxDelta = s.sweepBlock(b, x, lo, hi, maxDelta)
			}
		}
		if maxDelta <= opt.Tol {
			// Converged; collect clamped vertices.
			for i := 0; i < n; i++ {
				if need := csr.LoadAt(i, x) / denom[i]; need > hi*(1+1e-12) {
					s.inClamp[i] = s.epoch
					s.clamped = append(s.clamped, i)
				}
			}
			res.Clamped = s.clamped
			return res, nil
		}
	}
	return nil, ErrNoConvergence
}

// Verify checks a result against the constraints: every unclamped
// vertex meets its budget, and minimality holds (each x_i is either at
// the lower bound or tight against its constraint/upper bound).  It
// relies on the clamp epoch of the solve that produced r, so call it
// before the next SolveInto.
func (s *Solver) Verify(d []float64, lo, hi float64, r *Result, eps float64) error {
	csr := s.csr
	for i := 0; i < csr.N(); i++ {
		di := csr.Delay(i, r.X[i], r.X)
		if s.inClamp[i] != s.epoch && di > d[i]*(1+eps)+eps {
			return fmt.Errorf("smp: vertex %d delay %g exceeds budget %g", i, di, d[i])
		}
		xi := r.X[i]
		if xi < lo-eps || xi > hi+eps {
			return fmt.Errorf("smp: vertex %d size %g outside [%g,%g]", i, xi, lo, hi)
		}
		need := csr.LoadAt(i, r.X) / (d[i] - csr.Self[i])
		slackLo := xi - lo
		tight := math.Abs(xi-need) <= eps*(1+need) || math.Abs(xi-hi) <= eps
		if slackLo > eps && !tight {
			return fmt.Errorf("smp: vertex %d not minimal: x=%g, bound=%g", i, xi, need)
		}
	}
	return nil
}

// Solve computes the least fixed point with a throwaway Solver. d are
// per-vertex delay budgets; lo/hi are the global size bounds.  Code on
// the optimizer's hot path should hold a Solver and use SolveInto.
func Solve(coeffs []delay.Coeffs, d []float64, lo, hi float64, opt Options) (*Result, error) {
	s := NewSolver(delay.NewCSR(coeffs))
	r, err := s.SolveInto(make([]float64, len(coeffs)), d, lo, hi, opt)
	if err != nil {
		return nil, err
	}
	out := *r // detach from solver scratch
	return &out, nil
}

// Verify checks the result of a package-level Solve.
func Verify(coeffs []delay.Coeffs, d []float64, lo, hi float64, r *Result, eps float64) error {
	csr := delay.NewCSR(coeffs)
	s := &Solver{csr: csr, inClamp: make([]uint32, csr.N()), epoch: 1}
	for _, i := range r.Clamped {
		s.inClamp[i] = s.epoch
	}
	return s.Verify(d, lo, hi, r, eps)
}
