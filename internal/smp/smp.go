// Package smp solves the W-phase Simple Monotonic Program
// (paper §2.3.2, eq. 11):
//
//	minimize   Σ w_i·x_i
//	subject to delay(i) ≤ d_i       i.e.  x_i ≥ (Σ a_ij x_j + b_i)/(d_i − a_ii)
//	           lo ≤ x_i ≤ hi
//
// Because every right-hand side is monotone non-decreasing in every
// x_j, the feasible set is closed under pointwise minimum and the
// unique minimal solution is the least fixed point of
//
//	x ← clamp( (A·x + b) ⊘ (d − diag(A)) ).
//
// Solve iterates Gauss–Seidel sweeps in dependency order (exact in one
// sweep for acyclic dependencies, as in gate sizing; geometric for the
// small intra-gate blocks of transistor sizing), matching the
// O(|V|·|E|) worst case of the constraint-relaxation procedure in the
// paper's reference [10].
package smp

import (
	"errors"
	"fmt"
	"math"

	"minflo/internal/delay"
	"minflo/internal/graph"
)

// ErrNoConvergence is returned when the relaxation does not reach a
// fixed point within the sweep budget.
var ErrNoConvergence = errors.New("smp: relaxation did not converge")

// Result of a W-phase solve.
type Result struct {
	X []float64
	// Clamped lists the vertices whose constraint required a size above
	// hi; their budgets are unattainable and their delay exceeds d_i.
	Clamped []int
	// Sweeps is the number of Gauss–Seidel sweeps performed.
	Sweeps int
}

// Options configure the solver. Zero values select defaults.
type Options struct {
	Tol       float64 // convergence tolerance on size change (default 1e-9)
	MaxSweeps int     // sweep budget (default 4·n + 64)
}

// Solve computes the least fixed point. d are per-vertex delay budgets;
// lo/hi are the global size bounds.
func Solve(coeffs []delay.Coeffs, d []float64, lo, hi float64, opt Options) (*Result, error) {
	n := len(coeffs)
	if len(d) != n {
		return nil, fmt.Errorf("smp: budget vector length %d != %d", len(d), n)
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 4*n + 64
	}
	denom := make([]float64, n)
	for i := range coeffs {
		denom[i] = d[i] - coeffs[i].Self
		if denom[i] <= 0 || math.IsNaN(denom[i]) {
			return nil, fmt.Errorf("smp: budget %g at vertex %d below intrinsic delay %g",
				d[i], i, coeffs[i].Self)
		}
	}

	// Sweep order: dependencies first.  x_i needs x_j for terms (i→j in
	// the dependency graph), so we process the condensation in reverse
	// topological order (sinks of the dependency graph first).
	dep := graph.New(n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				dep.AddEdge(i, t.J)
			}
		}
	}
	groups := dep.CondensationOrder()
	order := make([]int, 0, n)
	for gi := len(groups) - 1; gi >= 0; gi-- {
		order = append(order, groups[gi]...)
	}

	x := make([]float64, n)
	for i := range x {
		x[i] = lo
	}
	res := &Result{X: x}
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		maxDelta := 0.0
		for _, i := range order {
			need := coeffs[i].LoadAt(x) / denom[i]
			nx := need
			if nx < lo {
				nx = lo
			}
			if nx > hi {
				nx = hi
			}
			if nx > x[i] { // least fixed point: sizes only grow from lo
				if nx-x[i] > maxDelta {
					maxDelta = nx - x[i]
				}
				x[i] = nx
			}
		}
		if maxDelta <= opt.Tol {
			// Converged; collect clamped vertices.
			for i := range coeffs {
				if need := coeffs[i].LoadAt(x) / denom[i]; need > hi*(1+1e-12) {
					res.Clamped = append(res.Clamped, i)
				}
			}
			return res, nil
		}
	}
	return nil, ErrNoConvergence
}

// Verify checks the result against the constraints: every unclamped
// vertex meets its budget, and minimality holds (each x_i is either at
// the lower bound or tight against its constraint/upper bound).
func Verify(coeffs []delay.Coeffs, d []float64, lo, hi float64, r *Result, eps float64) error {
	clamped := make(map[int]bool, len(r.Clamped))
	for _, i := range r.Clamped {
		clamped[i] = true
	}
	for i := range coeffs {
		di := coeffs[i].Delay(r.X[i], r.X)
		if !clamped[i] && di > d[i]*(1+eps)+eps {
			return fmt.Errorf("smp: vertex %d delay %g exceeds budget %g", i, di, d[i])
		}
		xi := r.X[i]
		if xi < lo-eps || xi > hi+eps {
			return fmt.Errorf("smp: vertex %d size %g outside [%g,%g]", i, xi, lo, hi)
		}
		need := coeffs[i].LoadAt(r.X) / (d[i] - coeffs[i].Self)
		slackLo := xi - lo
		tight := math.Abs(xi-need) <= eps*(1+need) || math.Abs(xi-hi) <= eps
		if slackLo > eps && !tight {
			return fmt.Errorf("smp: vertex %d not minimal: x=%g, bound=%g", i, xi, need)
		}
	}
	return nil
}
