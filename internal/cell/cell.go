// Package cell defines the static-CMOS standard-cell library: logic
// function, equivalent-inverter sizing factors (for gate sizing, the
// mode the paper evaluates), and series/parallel transistor topologies
// (for true transistor sizing, paper §2.1).
//
// The equivalent-inverter factors follow the logical-effort convention:
// a gate of size x presents input capacitance g·Cg·x per pin, drives
// through worst-case resistance ρ·R/x, and carries parasitic output
// capacitance p·Cd·x.
package cell

import "fmt"

// Kind enumerates the library cells.
type Kind int

// Library cells. AND/OR/XNOR forms are included so ISCAS85 .bench
// netlists map 1:1 onto library cells.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nand3
	Nand4
	Nor2
	Nor3
	Nor4
	And2
	And3
	And4
	Or2
	Or3
	Or4
	Xor2
	Xnor2
	Aoi21 // !(a·b + c)
	Oai21 // !((a+b)·c)
	numKinds
)

// NumKinds is the number of defined cell kinds.
const NumKinds = int(numKinds)

// NetOp is a node type in a series/parallel transistor network.
type NetOp int

const (
	// Leaf is a single transistor gated by an input pin.
	Leaf NetOp = iota
	// Series composes children output-side first: child 0 is nearest the
	// gate output, the last child is nearest the supply rail.
	Series
	// Parallel composes children side by side.
	Parallel
)

// Network is a series/parallel transistor network (pull-up or
// pull-down half of a static CMOS gate).
type Network struct {
	Op   NetOp
	Pin  int // valid when Op == Leaf: which input gates this transistor
	Kids []*Network
}

// leaf, series, parallel are concise constructors for library topology.
func leaf(pin int) *Network           { return &Network{Op: Leaf, Pin: pin} }
func series(k ...*Network) *Network   { return &Network{Op: Series, Kids: k} }
func parallel(k ...*Network) *Network { return &Network{Op: Parallel, Kids: k} }

// CountTransistors returns the number of transistors in the network.
func (n *Network) CountTransistors() int {
	if n == nil {
		return 0
	}
	if n.Op == Leaf {
		return 1
	}
	total := 0
	for _, k := range n.Kids {
		total += k.CountTransistors()
	}
	return total
}

// MaxDepth returns the longest series chain (stack height) in the
// network — the factor that degrades drive strength.
func (n *Network) MaxDepth() int {
	if n == nil {
		return 0
	}
	switch n.Op {
	case Leaf:
		return 1
	case Series:
		d := 0
		for _, k := range n.Kids {
			d += k.MaxDepth()
		}
		return d
	default: // Parallel
		d := 0
		for _, k := range n.Kids {
			if kd := k.MaxDepth(); kd > d {
				d = kd
			}
		}
		return d
	}
}

// Cell describes one library element.
type Cell struct {
	Kind      Kind
	Name      string
	NumInputs int

	// Equivalent-inverter factors (logical-effort style).
	Drive     float64 // ρ: worst-case output resistance multiplier
	InputCap  float64 // g: input capacitance multiplier per pin
	Parasitic float64 // p: self-load (diffusion) multiplier

	// UnitArea is the summed unit transistor width at size 1 — the area
	// contribution of the gate is UnitArea·x (the paper's Σ x_i over the
	// gate's transistors, all scaling together in gate sizing).
	UnitArea float64

	// Pulldown/Pullup are the NMOS and PMOS networks for transistor-level
	// sizing.  Composite cells (AND/OR/XOR/XNOR/BUF) are physically two
	// stages; their topology is the final inverting stage, which carries
	// the output load — adequate for the DAG construction, while the
	// equivalent-inverter factors absorb the first stage.
	Pulldown, Pullup *Network

	// Eval computes the logic function (used by functional equivalence
	// tests of generators and the .bench round trip).
	Eval func(in []bool) bool
}

var lib [numKinds]Cell

// invertingStack builds the NAND-style topologies: k series NMOS,
// k parallel PMOS (or the dual for NOR).
func nandNets(k int) (pd, pu *Network) {
	sn := make([]*Network, k)
	pp := make([]*Network, k)
	for i := 0; i < k; i++ {
		// Pin k-1 is conventionally nearest the output in the stack.
		sn[i] = leaf(k - 1 - i)
		pp[i] = leaf(i)
	}
	return series(sn...), parallel(pp...)
}

func norNets(k int) (pd, pu *Network) {
	pp := make([]*Network, k)
	sn := make([]*Network, k)
	for i := 0; i < k; i++ {
		pp[i] = leaf(i)
		sn[i] = leaf(k - 1 - i)
	}
	return parallel(pp...), series(sn...)
}

func all(in []bool) bool {
	for _, b := range in {
		if !b {
			return false
		}
	}
	return true
}

func any(in []bool) bool {
	for _, b := range in {
		if b {
			return true
		}
	}
	return false
}

func init() {
	invPD, invPU := nandNets(1)

	lib[Inv] = Cell{Name: "INV", NumInputs: 1, Drive: 1, InputCap: 1, Parasitic: 1, UnitArea: 3,
		Pulldown: invPD, Pullup: invPU,
		Eval: func(in []bool) bool { return !in[0] }}
	bufPD, bufPU := nandNets(1)
	lib[Buf] = Cell{Name: "BUF", NumInputs: 1, Drive: 1, InputCap: 1, Parasitic: 2, UnitArea: 6,
		Pulldown: bufPD, Pullup: bufPU,
		Eval: func(in []bool) bool { return in[0] }}

	nandSpec := []struct {
		kind Kind
		k    int
	}{{Nand2, 2}, {Nand3, 3}, {Nand4, 4}}
	for _, s := range nandSpec {
		pd, pu := nandNets(s.k)
		k := float64(s.k)
		lib[s.kind] = Cell{
			Name: fmt.Sprintf("NAND%d", s.k), NumInputs: s.k,
			Drive: k, InputCap: (k + 2) / 3, Parasitic: k,
			UnitArea: 3 * k,
			Pulldown: pd, Pullup: pu,
			Eval: func(in []bool) bool { return !all(in) },
		}
	}
	norSpec := []struct {
		kind Kind
		k    int
	}{{Nor2, 2}, {Nor3, 3}, {Nor4, 4}}
	for _, s := range norSpec {
		pd, pu := norNets(s.k)
		k := float64(s.k)
		lib[s.kind] = Cell{
			Name: fmt.Sprintf("NOR%d", s.k), NumInputs: s.k,
			Drive: 2 * k, InputCap: (2*k + 1) / 3, Parasitic: k,
			UnitArea: 3 * k,
			Pulldown: pd, Pullup: pu,
			Eval: func(in []bool) bool { return !any(in) },
		}
	}

	// Composite (two-stage) cells: NAND/NOR first stage + inverter.
	andSpec := []struct {
		kind Kind
		k    int
	}{{And2, 2}, {And3, 3}, {And4, 4}}
	for _, s := range andSpec {
		pd, pu := nandNets(1) // output stage is the inverter
		k := float64(s.k)
		lib[s.kind] = Cell{
			Name: fmt.Sprintf("AND%d", s.k), NumInputs: s.k,
			Drive: 1.25, InputCap: (k + 2) / 3, Parasitic: k + 1,
			UnitArea: 3*k + 3,
			Pulldown: pd, Pullup: pu,
			Eval: all,
		}
	}
	orSpec := []struct {
		kind Kind
		k    int
	}{{Or2, 2}, {Or3, 3}, {Or4, 4}}
	for _, s := range orSpec {
		pd, pu := nandNets(1)
		k := float64(s.k)
		lib[s.kind] = Cell{
			Name: fmt.Sprintf("OR%d", s.k), NumInputs: s.k,
			Drive: 1.25, InputCap: (2*k + 1) / 3, Parasitic: k + 1,
			UnitArea: 3*k + 3,
			Pulldown: pd, Pullup: pu,
			Eval: any,
		}
	}

	// XOR2/XNOR2: transmission-style complexity approximated with the
	// standard logical-effort numbers (g = 4, p = 4).
	xorPD := parallel(series(leaf(0), leaf(1)), series(leaf(0), leaf(1)))
	xorPU := parallel(series(leaf(0), leaf(1)), series(leaf(0), leaf(1)))
	lib[Xor2] = Cell{Name: "XOR2", NumInputs: 2, Drive: 2, InputCap: 4, Parasitic: 4,
		UnitArea: 12, Pulldown: xorPD, Pullup: xorPU,
		Eval: func(in []bool) bool { return in[0] != in[1] }}
	lib[Xnor2] = Cell{Name: "XNOR2", NumInputs: 2, Drive: 2, InputCap: 4, Parasitic: 4,
		UnitArea: 12, Pulldown: xorPD, Pullup: xorPU,
		Eval: func(in []bool) bool { return in[0] == in[1] }}

	// AOI21: pulldown = (a·b) ∥ c, pullup = (a ∥ b) · c.
	lib[Aoi21] = Cell{Name: "AOI21", NumInputs: 3,
		Drive: 2, InputCap: 5.0 / 3.0, Parasitic: 2.5, UnitArea: 9,
		Pulldown: parallel(series(leaf(0), leaf(1)), leaf(2)),
		Pullup:   series(parallel(leaf(0), leaf(1)), leaf(2)),
		Eval:     func(in []bool) bool { return !((in[0] && in[1]) || in[2]) }}
	// OAI21: pulldown = (a ∥ b) · c, pullup = (a·b) ∥ c.
	lib[Oai21] = Cell{Name: "OAI21", NumInputs: 3,
		Drive: 2, InputCap: 5.0 / 3.0, Parasitic: 2.5, UnitArea: 9,
		Pulldown: series(parallel(leaf(0), leaf(1)), leaf(2)),
		Pullup:   parallel(series(leaf(0), leaf(1)), leaf(2)),
		Eval:     func(in []bool) bool { return !((in[0] || in[1]) && in[2]) }}

	for k := Kind(0); k < numKinds; k++ {
		lib[k].Kind = k
	}
}

// Get returns the library cell of the given kind.
func Get(k Kind) *Cell {
	if k < 0 || k >= numKinds {
		panic(fmt.Sprintf("cell: unknown kind %d", k))
	}
	return &lib[k]
}

// String returns the cell's library name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return lib[k].Name
}

// ByName resolves a library name ("NAND2", "INV", ...) to its Kind.
func ByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if lib[k].Name == name {
			return k, true
		}
	}
	return 0, false
}

// NandFor returns the NAND cell with the given fan-in (2..4).
func NandFor(fanin int) (Kind, bool) {
	switch fanin {
	case 2:
		return Nand2, true
	case 3:
		return Nand3, true
	case 4:
		return Nand4, true
	}
	return 0, false
}

// NorFor returns the NOR cell with the given fan-in (2..4).
func NorFor(fanin int) (Kind, bool) {
	switch fanin {
	case 2:
		return Nor2, true
	case 3:
		return Nor3, true
	case 4:
		return Nor4, true
	}
	return 0, false
}

// AndFor and OrFor mirror NandFor/NorFor for the composite cells.
func AndFor(fanin int) (Kind, bool) {
	switch fanin {
	case 2:
		return And2, true
	case 3:
		return And3, true
	case 4:
		return And4, true
	}
	return 0, false
}

// OrFor returns the OR cell with the given fan-in (2..4).
func OrFor(fanin int) (Kind, bool) {
	switch fanin {
	case 2:
		return Or2, true
	case 3:
		return Or3, true
	case 4:
		return Or4, true
	}
	return 0, false
}
