package cell

import "testing"

func TestLibraryComplete(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		c := Get(k)
		if c.Name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if c.NumInputs < 1 || c.NumInputs > 4 {
			t.Fatalf("%s: implausible input count %d", c.Name, c.NumInputs)
		}
		if c.Drive <= 0 || c.InputCap <= 0 || c.Parasitic <= 0 || c.UnitArea <= 0 {
			t.Fatalf("%s: non-positive sizing factor", c.Name)
		}
		if c.Pulldown == nil || c.Pullup == nil {
			t.Fatalf("%s: missing transistor networks", c.Name)
		}
		if c.Eval == nil {
			t.Fatalf("%s: missing logic function", c.Name)
		}
		if c.Kind != k {
			t.Fatalf("%s: Kind backlink wrong", c.Name)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		got, ok := ByName(k.String())
		if !ok || got != k {
			t.Fatalf("ByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ByName("BOGUS9"); ok {
		t.Fatal("ByName accepted a bogus cell")
	}
}

func TestLogicFunctions(t *testing.T) {
	cases := []struct {
		kind Kind
		in   []bool
		want bool
	}{
		{Inv, []bool{true}, false},
		{Inv, []bool{false}, true},
		{Buf, []bool{true}, true},
		{Nand2, []bool{true, true}, false},
		{Nand2, []bool{true, false}, true},
		{Nand3, []bool{true, true, true}, false},
		{Nand4, []bool{true, true, true, false}, true},
		{Nor2, []bool{false, false}, true},
		{Nor2, []bool{true, false}, false},
		{Nor4, []bool{false, false, false, false}, true},
		{And3, []bool{true, true, true}, true},
		{And3, []bool{true, false, true}, false},
		{Or2, []bool{false, true}, true},
		{Or3, []bool{false, false, false}, false},
		{Xor2, []bool{true, false}, true},
		{Xor2, []bool{true, true}, false},
		{Xnor2, []bool{true, true}, true},
		{Aoi21, []bool{true, true, false}, false},
		{Aoi21, []bool{false, true, false}, true},
		{Oai21, []bool{false, false, true}, true},
		{Oai21, []bool{true, false, true}, false},
	}
	for _, c := range cases {
		if got := Get(c.kind).Eval(c.in); got != c.want {
			t.Errorf("%s%v = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestTransistorCounts(t *testing.T) {
	// Single-stage static CMOS gates: pulldown and pullup each hold one
	// transistor per input.
	for _, k := range []Kind{Inv, Nand2, Nand3, Nand4, Nor2, Nor3, Nor4} {
		c := Get(k)
		if got := c.Pulldown.CountTransistors(); got != c.NumInputs {
			t.Errorf("%s pulldown has %d transistors, want %d", c.Name, got, c.NumInputs)
		}
		if got := c.Pullup.CountTransistors(); got != c.NumInputs {
			t.Errorf("%s pullup has %d transistors, want %d", c.Name, got, c.NumInputs)
		}
	}
}

func TestStackDepths(t *testing.T) {
	// NAND stacks NMOS in series; NOR stacks PMOS.
	cases := []struct {
		kind   Kind
		pd, pu int
	}{
		{Inv, 1, 1},
		{Nand2, 2, 1},
		{Nand3, 3, 1},
		{Nand4, 4, 1},
		{Nor2, 1, 2},
		{Nor3, 1, 3},
		{Nor4, 1, 4},
		{Aoi21, 2, 2},
		{Oai21, 2, 2},
	}
	for _, c := range cases {
		cc := Get(c.kind)
		if got := cc.Pulldown.MaxDepth(); got != c.pd {
			t.Errorf("%s pulldown depth %d, want %d", cc.Name, got, c.pd)
		}
		if got := cc.Pullup.MaxDepth(); got != c.pu {
			t.Errorf("%s pullup depth %d, want %d", cc.Name, got, c.pu)
		}
	}
}

func TestDriveGrowsWithStack(t *testing.T) {
	if !(Get(Nand2).Drive < Get(Nand3).Drive && Get(Nand3).Drive < Get(Nand4).Drive) {
		t.Error("NAND drive factors not monotone in fan-in")
	}
	if !(Get(Nor2).Drive < Get(Nor3).Drive && Get(Nor3).Drive < Get(Nor4).Drive) {
		t.Error("NOR drive factors not monotone in fan-in")
	}
	// NOR pays the PMOS mobility penalty: worse drive than same-width NAND.
	if Get(Nor2).Drive <= Get(Nand2).Drive {
		t.Error("NOR2 should have weaker drive than NAND2")
	}
}

func TestSelectorHelpers(t *testing.T) {
	for fanin := 2; fanin <= 4; fanin++ {
		if k, ok := NandFor(fanin); !ok || Get(k).NumInputs != fanin {
			t.Errorf("NandFor(%d) broken", fanin)
		}
		if k, ok := NorFor(fanin); !ok || Get(k).NumInputs != fanin {
			t.Errorf("NorFor(%d) broken", fanin)
		}
		if k, ok := AndFor(fanin); !ok || Get(k).NumInputs != fanin {
			t.Errorf("AndFor(%d) broken", fanin)
		}
		if k, ok := OrFor(fanin); !ok || Get(k).NumInputs != fanin {
			t.Errorf("OrFor(%d) broken", fanin)
		}
	}
	if _, ok := NandFor(5); ok {
		t.Error("NandFor(5) should fail")
	}
	if _, ok := AndFor(1); ok {
		t.Error("AndFor(1) should fail")
	}
}

func TestGetPanicsOnBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Get(Kind(99))
}

func TestKindStringBadValue(t *testing.T) {
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Fatalf("got %q", s)
	}
}
