package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"minflo/internal/fault"
)

// TestServeEditLifecycle drives the edit endpoint end to end: a value
// batch patches warm state and moves later answers, a structural batch
// rebuilds, stats/info counters track, and a rejected batch is atomic
// (the session answers bit-identically to an untouched twin).
func TestServeEditLifecycle(t *testing.T) {
	srv, _, c := newTestServer(t, Config{})
	ctx := context.Background()

	sub := submitCircuit(t, c, "e1", "adder16")
	submitCircuit(t, c, "twin", "adder16") // never edited
	T := 0.6 * sub.MinDelayPS

	// Value edit: extra load on a near-output gate (a small forward
	// cone, well under the default 0.25 budget — gate 0 would cover
	// most of the adder and correctly trip the fallback instead).
	lg := sub.NumGates - 1
	er, err := c.Edit(ctx, "e1", &EditRequest{Edits: []EditOp{{Op: "load", Gate: lg, LoadFF: 25}}})
	if err != nil {
		t.Fatal(err)
	}
	if er.Structural || er.Rebuilt || er.Fallback {
		t.Fatalf("value edit misreported: %+v", er)
	}
	if er.ChangedRows == 0 || er.ConeGates == 0 || er.CPPS <= 0 || er.MemBytes <= 0 {
		t.Fatalf("edit response lacks metadata: %+v", er)
	}

	q1, err := c.Query(ctx, "e1", &QueryRequest{TargetPS: T})
	if err != nil || q1.Error != nil {
		t.Fatalf("post-edit query: %v %+v", err, q1)
	}
	qt, err := c.Query(ctx, "twin", &QueryRequest{TargetPS: T})
	if err != nil {
		t.Fatal(err)
	}
	if q1.Area == qt.Area && q1.CPPS == qt.CPPS {
		t.Fatal("25 fF extra load did not move the answer")
	}

	// Rejected batch (valid load before an unknown cell): 400, atomic.
	_, err = c.Edit(ctx, "e1", &EditRequest{Edits: []EditOp{
		{Op: "load", Gate: 1, LoadFF: 9},
		{Op: "retype", Gate: 2, Cell: "NO_SUCH_CELL"},
	}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeBadRequest {
		t.Fatalf("bad batch: %v", err)
	}
	for _, bad := range []EditRequest{
		{},
		{Edits: []EditOp{{Op: "resize", Gate: 0}}},
		{Edits: []EditOp{{Op: "rewire", Gate: 1, Pin: 0, Driver: "no_such_signal"}}},
		{Edits: []EditOp{{Op: "load", Gate: 0, LoadFF: -2}}},
	} {
		if _, err := c.Edit(ctx, "e1", &bad); !errors.As(err, &apiErr) || apiErr.Body.Code != CodeBadRequest {
			t.Fatalf("bad edit %+v: %v", bad, err)
		}
	}
	if _, err := c.Edit(ctx, "nope", &EditRequest{Edits: []EditOp{{Op: "load", Gate: 0}}}); !errors.As(err, &apiErr) || apiErr.Body.Code != CodeNotFound {
		t.Fatalf("edit on unknown session: %v", err)
	}

	// The rejected batches left no trace: undo the accepted load and
	// the session must answer bit-identically to the untouched twin.
	if _, err := c.Edit(ctx, "e1", &EditRequest{Edits: []EditOp{{Op: "load", Gate: lg, LoadFF: 0}}}); err != nil {
		t.Fatal(err)
	}
	q2, err := c.Query(ctx, "e1", &QueryRequest{TargetPS: 0.55 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	qt2, err := c.Query(ctx, "twin", &QueryRequest{TargetPS: 0.55 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Area != qt2.Area || q2.CPPS != qt2.CPPS || q2.Iterations != qt2.Iterations {
		t.Fatalf("rejected batches perturbed the session: %+v vs twin %+v", q2, qt2)
	}

	info, err := c.Info(ctx, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Edits != 2 {
		t.Fatalf("info edits %d, want 2 (rejected batches must not count)", info.Edits)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Edits != 2 || st.EditFallbacks != 0 {
		t.Fatalf("stats edits %d/%d, want 2/0", st.Edits, st.EditFallbacks)
	}
	if srv.edits.Load() != 2 {
		t.Fatalf("server counter %d", srv.edits.Load())
	}
}

// TestServeEditQuarantineReplay proves the edit log is part of the
// session history a quarantine rebuild replays: after an accepted edit
// and a crash, the rebuilt generation answers the post-edit query
// bit-identically — and differently from a never-edited control.
func TestServeEditQuarantineReplay(t *testing.T) {
	srv, _, c := newTestServer(t, Config{NoEngineFallback: true})
	ctx := context.Background()

	sub, err := c.Submit(ctx, &SubmitRequest{ID: "eq", Circuit: "adder16", FlowEngine: "fault"})
	if err != nil {
		t.Fatal(err)
	}
	T := 0.6 * sub.MinDelayPS
	fault.Reset()

	if _, err := c.Edit(ctx, "eq", &EditRequest{Edits: []EditOp{{Op: "load", Gate: 3, LoadFF: 30}}}); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Query(ctx, "eq", &QueryRequest{TargetPS: T})
	if err != nil || ref.Error != nil {
		t.Fatalf("post-edit reference: %v %+v", err, ref)
	}

	// Crash the next solve; the session quarantines.
	fault.SetPlan(fault.Plan{Mode: fault.Panic, Op: 20})
	defer fault.Reset()
	_, _ = c.Query(ctx, "eq", &QueryRequest{TargetPS: 0.5 * sub.MinDelayPS})
	fault.Reset()
	if info, _ := c.Info(ctx, "eq"); !info.Quarantined {
		t.Fatal("session not quarantined")
	}

	// The rebuild parses the pristine netlist and replays the edit log:
	// the first query of the new generation answers exactly like the
	// first post-edit query of the old one.
	q2, err := c.Query(ctx, "eq", &QueryRequest{TargetPS: T})
	if err != nil || q2.Error != nil {
		t.Fatalf("post-rebuild query: %v %+v", err, q2)
	}
	if q2.Generation != ref.Generation+1 || q2.Seq != 1 {
		t.Fatalf("generation bookkeeping: %+v", q2)
	}
	if q2.Area != ref.Area || q2.CPPS != ref.CPPS || q2.Iterations != ref.Iterations {
		t.Fatalf("rebuilt session lost the edit: %+v vs %+v", q2, ref)
	}
	// A never-edited control must answer differently (the edit is real).
	ctl, err := c.Submit(ctx, &SubmitRequest{ID: "ctl", Circuit: "adder16"})
	if err != nil {
		t.Fatal(err)
	}
	qc, err := c.Query(ctx, "ctl", &QueryRequest{TargetPS: 0.6 * ctl.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if qc.Area == q2.Area && qc.CPPS == q2.CPPS {
		t.Fatal("edited and pristine sessions answered identically")
	}
	// Replay must not re-count the batch in the server stats.
	if got := srv.edits.Load(); got != 1 {
		t.Fatalf("edit counter %d after replay, want 1", got)
	}
}

// TestServeEditStructural exercises a rewire through the wire format.
func TestServeEditStructural(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	// c17 gate 3 is G19 with pin 0 driven by G11, whose other fanout
	// (G16) keeps it alive after the rewire to PI G1.
	if _, err := c.Submit(ctx, &SubmitRequest{ID: "s", Circuit: "c17"}); err != nil {
		t.Fatal(err)
	}
	er, err := c.Edit(ctx, "s", &EditRequest{Edits: []EditOp{{Op: "rewire", Gate: 3, Pin: 0, Driver: "G1"}}})
	if err != nil {
		t.Fatalf("structural edit: %v", err)
	}
	if !er.Structural || !er.Rebuilt {
		t.Fatalf("rewire misreported: %+v", er)
	}
	q, err := c.Query(ctx, "s", &QueryRequest{TargetPS: er.CPPS * 0.8})
	if err != nil || q.Error != nil {
		t.Fatalf("post-rewire query: %v %+v", err, q)
	}
}

// TestServeEditEpochScopesCoalescing: admitting an edit bumps the
// session's epoch so identical queries before and after it use
// different singleflight keys.
func TestServeEditEpochScopesCoalescing(t *testing.T) {
	srv, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	submitCircuit(t, c, "ep", "c17")

	srv.mu.Lock()
	e0 := srv.sessions["ep"].epoch
	srv.mu.Unlock()
	if _, err := c.Edit(ctx, "ep", &EditRequest{Edits: []EditOp{{Op: "load", Gate: 0, LoadFF: 3}}}); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	e1 := srv.sessions["ep"].epoch
	srv.mu.Unlock()
	if e1 != e0+1 {
		t.Fatalf("epoch %d -> %d, want +1", e0, e1)
	}
}

// TestCanonicalQueryLastWins is the regression for the coalescing-key
// bug: duplicate gate entries must collapse to their final (applied)
// value, so bodies that end in the same state share a key and bodies
// that end differently never do.
func TestCanonicalQueryLastWins(t *testing.T) {
	a := canonicalQuery(&QueryRequest{TargetPS: 100, AreaWeights: []AreaWeight{{Gate: 1, Weight: 5}, {Gate: 1, Weight: 2}}})
	b := canonicalQuery(&QueryRequest{TargetPS: 100, AreaWeights: []AreaWeight{{Gate: 1, Weight: 2}}})
	if a != b {
		t.Fatalf("last-wins collapse: %q != %q", a, b)
	}
	cq := canonicalQuery(&QueryRequest{TargetPS: 100, AreaWeights: []AreaWeight{{Gate: 1, Weight: 5}}})
	if a == cq {
		t.Fatalf("distinct final weights share a key: %q", a)
	}
	// Order independence across distinct gates.
	d1 := canonicalQuery(&QueryRequest{TargetPS: 100, AreaWeights: []AreaWeight{{Gate: 2, Weight: 3}, {Gate: 1, Weight: 4}}})
	d2 := canonicalQuery(&QueryRequest{TargetPS: 100, AreaWeights: []AreaWeight{{Gate: 1, Weight: 4}, {Gate: 2, Weight: 3}}})
	if d1 != d2 {
		t.Fatalf("gate order changed the key: %q vs %q", d1, d2)
	}
}

// TestParseRetryAfter is the regression for the client's Retry-After
// parsing: both RFC 9110 forms must be understood.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("seconds form: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty: %v", d)
	}
	if d := parseRetryAfter("-5"); d != 0 {
		t.Fatalf("negative seconds: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 90*time.Second {
		t.Fatalf("HTTP-date form: %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past HTTP-date: %v", d)
	}
}

// TestClientHonorsHTTPDateRetryAfter: the retry loop must wait out an
// HTTP-date Retry-After the same way it waits out delay-seconds.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var last atomic.Int64
	var gapOK atomic.Bool
	gapOK.Store(true)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && n <= 2 {
			if time.Duration(now-prev) < 900*time.Millisecond {
				gapOK.Store(false)
			}
		}
		if n == 1 {
			// Two seconds out: HTTP-dates carry whole-second precision,
			// so a one-second hint can round down to nearly zero.
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			writeJSON(w, http.StatusTooManyRequests, &ErrorBody{Code: CodeOverloaded, Message: "busy"})
			return
		}
		writeJSON(w, http.StatusOK, &StatsResponse{Sessions: 3})
	}))
	defer hs.Close()

	c := NewClient(hs.URL, hs.Client())
	c.BaseDelay = time.Millisecond // the header must dominate the backoff
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 3 || calls.Load() != 2 {
		t.Fatalf("retry loop: %+v calls=%d", st, calls.Load())
	}
	if !gapOK.Load() {
		t.Fatal("client retried before the HTTP-date Retry-After elapsed")
	}
}
