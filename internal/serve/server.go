// Package serve is minflod: a hardened HTTP/JSON daemon that keeps
// sizing sessions warm.  A client submits a netlist once (POST
// /v1/sessions), then streams queries against it (POST
// /v1/sessions/{id}/query) — new delay targets, what-if cost changes,
// re-sizes — answered from warm solver state: the flow network is
// built once per session generation and every later query is served by
// incremental re-flow (mcmf ResolveChanged) instead of a cold solve.
//
// Robustness machinery, in the order a request meets it:
//
//   - Admission control: a global pending-work cap and bounded
//     per-session queues.  Either full → 429 with Retry-After; the
//     server never grows an unbounded backlog.
//   - Serialization: each session has one worker goroutine owning its
//     solver state; same-session requests serialize, distinct sessions
//     run concurrently under a global in-flight cap.
//   - Budgets: per-request wall-clock and flow-work budgets funnel
//     into the PR-6 abort machinery; an exhausted budget returns the
//     best-so-far sizing marked partial.
//   - Memory: every session's footprint is estimated after each query
//     (core.Session.MemoryBytes); crossing the high watermark evicts
//     idle sessions in LRU order until under the low watermark.
//     Evicted ids answer 404 — re-submit to rebuild.
//   - Panic barrier: a crash inside a solve quarantines that session
//     and answers 500; the next query rebuilds it cold (a fresh
//     generation).  The process stays up and other sessions are
//     untouched.
//   - Graceful shutdown: Shutdown stops admitting (readyz → 503),
//     lets in-flight and queued work finish, and cancels the base
//     context at the drain deadline so stragglers come back fast with
//     partial answers.
//
// Performance machinery on top of that:
//
//   - Trust-region warm seeding (Config.TrustRegion, minflod
//     -trust-region, default 0.05): a query whose target moved at most
//     δ relative to the session's previous clean answer starts from
//     that converged sizing instead of a TILOS re-seed; the response's
//     "seed" field reports which path answered ("warm"/"tilos") and
//     SeedFallback flags an attempted seed that fell back.  Zero keeps
//     the PR-7 cold-seed behavior.
//   - Singleflight coalescing: identical concurrent queries (same
//     canonicalized body) against one session are solved once; the
//     followers receive the same answer marked "coalesced": true and
//     bypass the pending cap.
//   - Per-session parallelism: a submit may request an intra-solve
//     worker budget; the grant is clamped to the daemon-wide cap and
//     echoed in the submit response.
//
// Determinism contract: within one session generation (between cold
// builds), answers are a deterministic function of the query sequence
// — a serial twin replaying the same sequence answers bit-identically.
// Trust-region seeding keeps that contract (the seeding decision and
// the seed itself are functions of the query history, never wall
// time) but renegotiates the cross-session one: a seeded answer may
// drift boundedly from what a fresh session would return for the same
// single query.  See core.Session's package documentation for the
// drift bound.
package serve

import (
	"bytes"
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minflo"
	"minflo/internal/delay"
	"minflo/internal/tech"
)

// Config parameterizes a Server.  The zero value serves with safe
// defaults (serial solves, ssp engine, 1 GiB memory watermark).
type Config struct {
	// Engine is the default D-phase flow backend for sessions that do
	// not pin one ("ssp" when empty — deterministic and robust; "auto"
	// would calibrate per problem at the cost of reproducibility).
	Engine string
	// Parallelism is the per-solve worker budget (default 1: serving
	// throughput comes from session-level concurrency, not intra-solve
	// parallelism).
	Parallelism int
	// MaxInFlight caps concurrently executing solves (default
	// GOMAXPROCS).
	MaxInFlight int
	// MaxPending caps globally admitted-but-unfinished jobs; beyond it
	// requests get 429 (default 64).
	MaxPending int
	// QueueDepth bounds each session's request queue; beyond it
	// requests get 429 (default 8).
	QueueDepth int
	// MemHighBytes is the eviction trigger (default 1 GiB); when the
	// summed session footprint crosses it, idle sessions are evicted
	// LRU-first until under MemLowBytes (default 3/4 of high).
	MemHighBytes int64
	MemLowBytes  int64
	// DrainTimeout bounds Shutdown when its context has no deadline
	// (default 5s).
	DrainTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 (default 1s).
	RetryAfter time.Duration
	// NoEngineFallback disables the flow layer's ssp fallback so
	// engine failures surface and exercise the quarantine path (fault
	// drills; default false).
	NoEngineFallback bool
	// TrustRegion enables trust-region warm seeding on every session
	// (core.Options.TrustRegion): a query whose target moved at most
	// this relative amount from the session's previous clean answer is
	// solved from that answer instead of a TILOS restart.  0 (the
	// default) keeps the per-query cold-seed contract; the daemon
	// enables it with -trust-region.
	TrustRegion float64
	// EditConeBudget bounds how much of a circuit an edit batch (POST
	// /v1/sessions/{id}/edit) may invalidate while keeping the warm
	// seed: when the edit's forward timing cone exceeds this fraction
	// of the gates, the session drops its trust-region seed and
	// rebuilds the solver scratch cold (counted in
	// edit_fallbacks_total).  0 uses the core default (0.25); negative
	// disables the fallback.
	EditConeBudget float64
	// EditConeResize enables cone-local re-sizing on every session
	// (core.Options.EditConeResize, minflod -edit-cone-resize): a query
	// inside the trust region that follows a value-only edit batch is
	// answered from a cone-scoped subproblem against frozen boundary
	// arrivals instead of the full netlist; reconciliation re-times the
	// whole graph and falls back to the full warm path when the frozen
	// boundary lied (cone_fallbacks_total).  Requires TrustRegion > 0 to
	// have any effect.
	EditConeResize bool
}

func (c Config) withDefaults() Config {
	if c.Engine == "" {
		c.Engine = "ssp"
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MemHighBytes <= 0 {
		c.MemHighBytes = 1 << 30
	}
	if c.MemLowBytes <= 0 || c.MemLowBytes > c.MemHighBytes {
		c.MemLowBytes = c.MemHighBytes / 4 * 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the minflod state: the warm-session cache plus every
// admission/accounting counter.  Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg   Config
	model *delay.Model

	baseCtx    context.Context // canceled at the drain deadline
	baseCancel context.CancelFunc
	drainCh    chan struct{} // closed when Shutdown begins
	runSem     chan struct{} // global in-flight execution slots
	wg         sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session
	lru      *list.List // front = most recently used
	memBytes int64
	pending  int
	draining bool
	nextID   uint64

	queries       atomic.Int64
	rejected      atomic.Int64
	evictions     atomic.Int64
	quarantines   atomic.Int64
	rebuilds      atomic.Int64
	seeded        atomic.Int64
	seedFallbacks atomic.Int64
	coalesced     atomic.Int64
	edits         atomic.Int64
	editFallbacks atomic.Int64
	coneResizes   atomic.Int64
	coneFallbacks atomic.Int64
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine != "auto" && !validEngine(cfg.Engine) {
		return nil, fmt.Errorf("serve: unknown flow engine %q", cfg.Engine)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		model:      delay.NewModel(tech.Default013()),
		baseCtx:    ctx,
		baseCancel: cancel,
		drainCh:    make(chan struct{}),
		runSem:     make(chan struct{}, cfg.MaxInFlight),
		sessions:   make(map[string]*session),
		lru:        list.New(),
	}, nil
}

func validEngine(name string) bool {
	for _, n := range minflo.FlowEngines() {
		if n == name {
			return true
		}
	}
	return false
}

// buildCircuit parses a submit request's netlist.  Called on every
// cold build, including quarantine rebuilds — parsing afresh
// guarantees a rebuilt generation starts from pristine state (the
// worker then replays the session's edit log on top, see buildCore).
func (srv *Server) buildCircuit(src SubmitRequest) (*minflo.Circuit, error) {
	switch {
	case src.Circuit != "" && src.Bench != "":
		return nil, fmt.Errorf("serve: set exactly one of circuit and bench")
	case src.Circuit != "":
		return minflo.CircuitByName(src.Circuit)
	case src.Bench != "":
		name := src.Name
		if name == "" {
			name = "inline"
		}
		return minflo.ParseBench(strings.NewReader(src.Bench), name)
	default:
		return nil, fmt.Errorf("serve: set exactly one of circuit and bench")
	}
}

// Handler returns the daemon's HTTP routes.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", srv.handleSubmit)
	mux.HandleFunc("POST /v1/sessions/{id}/query", srv.handleQuery)
	mux.HandleFunc("POST /v1/sessions/{id}/edit", srv.handleEdit)
	mux.HandleFunc("GET /v1/sessions/{id}", srv.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.handleDelete)
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	mux.HandleFunc("GET /readyz", srv.handleReadyz)
	mux.HandleFunc("GET /stats", srv.handleStats)
	return mux
}

// bufPool recycles the JSON encode/decode buffers across requests —
// the serving layer's share of the per-request allocation budget
// (BenchmarkServeSubmit gates it).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// readJSON slurps the request body through a pooled buffer and
// unmarshals it (a streaming Decoder would allocate its read buffer
// per request).
func readJSON(r *http.Request, dst any) error {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), dst)
}

func (srv *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(srv.cfg.RetryAfter.Seconds()+0.999)))
	}
	writeJSON(w, status, &ErrorBody{Code: code, Message: msg})
}

// handleSubmit creates (or replaces) a session.  The expensive cold
// build runs on the session's worker under the in-flight cap, so a
// burst of submits cannot stampede the CPU past admission control.
func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := readJSON(r, &req); err != nil {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.FlowEngine != "" && req.FlowEngine != "auto" && !validEngine(req.FlowEngine) {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("unknown flow engine %q", req.FlowEngine))
		return
	}

	j := &job{kind: jobBuild, ctx: r.Context(), resp: make(chan jobReply, 1)}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	if srv.pending >= srv.cfg.MaxPending {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusTooManyRequests, CodeOverloaded, "global pending cap reached")
		return
	}
	id := req.ID
	if id == "" {
		srv.nextID++
		id = fmt.Sprintf("s-%d-%s", srv.nextID, randSuffix())
	}
	// Replacing an existing id retires the old session: its worker
	// answers any queued work with 404 and closes the solver state.
	if old, ok := srv.sessions[id]; ok {
		srv.retireLocked(old)
	}
	req.ID = id
	s := &session{
		id:       id,
		srv:      srv,
		src:      req,
		queue:    make(chan *job, srv.cfg.QueueDepth),
		inflight: make(map[string]*job),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.elem = srv.lru.PushFront(s)
	srv.sessions[id] = s
	srv.pending++
	s.queued++
	s.queue <- j // cannot fill: fresh queue, depth ≥ 1
	srv.wg.Add(1)
	srv.mu.Unlock()

	go s.run()
	srv.await(w, r, j.resp)
}

// handleQuery admits a query into the session's queue.  An identical
// query already queued (same canonical body) is not enqueued again:
// the request attaches to the in-flight job (singleflight) and shares
// its answer, consuming no queue slot and running no solve of its own.
func (srv *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req QueryRequest
	if err := readJSON(r, &req); err != nil {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	if !(req.TargetPS > 0) {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, "target_ps must be positive")
		return
	}

	base := canonicalQuery(&req)
	j := &job{kind: jobQuery, req: req, ctx: r.Context(), resp: make(chan jobReply, 1)}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	s, ok := srv.sessions[id]
	if !ok {
		srv.mu.Unlock()
		srv.writeError(w, http.StatusNotFound, CodeNotFound, "no such session (evicted or never created — re-submit)")
		return
	}
	// The coalescing key is scoped to the session's edit epoch: a query
	// admitted after an edit must not ride a twin queued before it —
	// they answer against different netlists.
	key := fmt.Sprintf("e%d;%s", s.epoch, base)
	j.key = key
	if prev, ok := s.inflight[key]; ok && !prev.started {
		// Coalesce: ride the queued twin.  Attach is only legal while
		// the job has not started (the worker freezes the follower list
		// under srv.mu when it picks the job up).
		ch := make(chan jobReply, 1)
		prev.followers = append(prev.followers, ch)
		srv.lru.MoveToFront(s.elem)
		srv.mu.Unlock()
		srv.queries.Add(1)
		srv.coalesced.Add(1)
		srv.await(w, r, ch)
		return
	}
	if srv.pending >= srv.cfg.MaxPending {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusTooManyRequests, CodeOverloaded, "global pending cap reached")
		return
	}
	select {
	case s.queue <- j:
		srv.pending++
		s.queued++
		s.queries++
		s.inflight[key] = j
		srv.lru.MoveToFront(s.elem)
		srv.mu.Unlock()
	default:
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusTooManyRequests, CodeOverloaded, "session queue full")
		return
	}
	srv.queries.Add(1)
	srv.await(w, r, j.resp)
}

// canonicalQuery maps a query body to its coalescing key: bit-exact
// target and budgets, want_sizes, and the area-weight edits with
// duplicate gates collapsed to their last occurrence (last-wins — the
// semantics the session applies) and then sorted by gate, so two
// requests that set the same final weights get the same key no matter
// how their duplicate entries were ordered.
func canonicalQuery(q *QueryRequest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%x;b=%d;f=%d;s=%t", math.Float64bits(q.TargetPS), q.BudgetMS, q.FlowWorkBudget, q.WantSizes)
	if len(q.AreaWeights) > 0 {
		aw := make([]AreaWeight, 0, len(q.AreaWeights))
		for i := len(q.AreaWeights) - 1; i >= 0; i-- {
			a := q.AreaWeights[i]
			dup := false
			for _, kept := range aw {
				if kept.Gate == a.Gate {
					dup = true
					break
				}
			}
			if !dup {
				aw = append(aw, a)
			}
		}
		sort.Slice(aw, func(i, j int) bool { return aw[i].Gate < aw[j].Gate })
		for _, a := range aw {
			fmt.Fprintf(&b, ";%d=%x", a.Gate, math.Float64bits(a.Weight))
		}
	}
	return b.String()
}

// handleEdit admits a netlist edit batch into the session's queue.
// Edits never coalesce (each one mutates state) and they bump the
// session's edit epoch at admission time, so queries admitted after
// the edit cannot share an answer with identical queries queued before
// it.
func (srv *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EditRequest
	if err := readJSON(r, &req); err != nil {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Edits) == 0 {
		srv.writeError(w, http.StatusBadRequest, CodeBadRequest, "empty edit batch")
		return
	}

	j := &job{kind: jobEdit, edit: req, ctx: r.Context(), resp: make(chan jobReply, 1)}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	s, ok := srv.sessions[id]
	if !ok {
		srv.mu.Unlock()
		srv.writeError(w, http.StatusNotFound, CodeNotFound, "no such session (evicted or never created — re-submit)")
		return
	}
	if srv.pending >= srv.cfg.MaxPending {
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusTooManyRequests, CodeOverloaded, "global pending cap reached")
		return
	}
	select {
	case s.queue <- j:
		srv.pending++
		s.queued++
		s.epoch++
		srv.lru.MoveToFront(s.elem)
		srv.mu.Unlock()
	default:
		srv.mu.Unlock()
		srv.rejected.Add(1)
		srv.writeError(w, http.StatusTooManyRequests, CodeOverloaded, "session queue full")
		return
	}
	srv.await(w, r, j.resp)
}

// await relays the worker's reply.  The reply channel is buffered, so
// a worker never blocks on a gone client; if the client disconnects
// first, the merged context inside the solve aborts it promptly and
// the buffered reply is dropped.
func (srv *Server) await(w http.ResponseWriter, r *http.Request, resp <-chan jobReply) {
	select {
	case rep := <-resp:
		if rep.status == http.StatusTooManyRequests || rep.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(srv.cfg.RetryAfter.Seconds()+0.999)))
		}
		writeJSON(w, rep.status, rep.body)
	case <-r.Context().Done():
		// Client walked away; the worker will still finish (fast — the
		// solve sees the canceled context) and drop the reply into the
		// buffer.  Nothing useful to write.
	}
}

func (srv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s, ok := srv.sessions[id]
	if !ok {
		srv.mu.Unlock()
		srv.writeError(w, http.StatusNotFound, CodeNotFound, "no such session")
		return
	}
	info := &SessionInfo{
		ID:          s.id,
		Generation:  s.gen,
		NumGates:    s.numGates,
		MemBytes:    s.memBytes,
		Queries:     s.queries,
		Edits:       s.editsDone,
		Queued:      s.queued,
		Quarantined: s.quarantined,
	}
	srv.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s, ok := srv.sessions[id]
	if ok {
		srv.retireLocked(s)
	}
	srv.mu.Unlock()
	if !ok {
		srv.writeError(w, http.StatusNotFound, CodeNotFound, "no such session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (srv *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	draining := srv.draining
	srv.mu.Unlock()
	if draining {
		srv.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	st := &StatsResponse{
		Sessions:      len(srv.sessions),
		MemBytes:      srv.memBytes,
		MemHigh:       srv.cfg.MemHighBytes,
		InFlight:      len(srv.runSem),
		Pending:       int64(srv.pending),
		Queries:       srv.queries.Load(),
		Rejected:      srv.rejected.Load(),
		Evictions:     srv.evictions.Load(),
		Quarantines:   srv.quarantines.Load(),
		Rebuilds:      srv.rebuilds.Load(),
		Seeded:        srv.seeded.Load(),
		SeedFallbacks: srv.seedFallbacks.Load(),
		Coalesced:     srv.coalesced.Load(),
		Edits:         srv.edits.Load(),
		EditFallbacks: srv.editFallbacks.Load(),
		ConeResizes:   srv.coneResizes.Load(),
		ConeFallbacks: srv.coneFallbacks.Load(),
		Draining:      srv.draining,
	}
	srv.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// retireLocked removes a session from the cache and signals its worker
// to wind down.  Callers hold srv.mu.
func (srv *Server) retireLocked(s *session) {
	if s.deleted {
		return
	}
	s.deleted = true
	delete(srv.sessions, s.id)
	srv.lru.Remove(s.elem)
	srv.memBytes -= s.memBytes
	s.memBytes = 0
	close(s.quit)
}

// jobDone is the worker's completion hook: pending bookkeeping plus —
// for jobs that actually ran — watermark enforcement.
func (srv *Server) jobDone(s *session, ran bool) {
	srv.mu.Lock()
	srv.pending--
	if ran {
		s.busy = false
		srv.evictLocked()
	}
	srv.mu.Unlock()
}

// accountMem refreshes this session's byte estimate (worker context;
// called after builds and queries while the state is quiescent).
func (srv *Server) accountMem(s *session) {
	est := int64(0)
	if s.core != nil {
		est = s.core.MemoryBytes()
	}
	est += s.stateBytes() // retained source, replay history, snapshot
	srv.mu.Lock()
	if !s.deleted {
		srv.memBytes += est - s.memBytes
		s.memBytes = est
	}
	srv.mu.Unlock()
}

// evictLocked enforces the memory watermark: while the summed session
// footprint exceeds the high mark, idle sessions (no queued work, not
// executing) are evicted in LRU order until under the low mark.
// Callers hold srv.mu.
func (srv *Server) evictLocked() {
	if srv.memBytes <= srv.cfg.MemHighBytes {
		return
	}
	for e := srv.lru.Back(); e != nil && srv.memBytes > srv.cfg.MemLowBytes; {
		prev := e.Prev()
		s := e.Value.(*session)
		if !s.busy && s.queued == 0 {
			srv.retireLocked(s)
			srv.evictions.Add(1)
		}
		e = prev
	}
}

// Shutdown drains the server: admission stops (readyz answers 503),
// every already-admitted job runs to completion, and when ctx (or the
// configured DrainTimeout) expires the base context is canceled so
// still-running solves return their best-so-far partial answers.
// Shutdown returns once every session worker has exited.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		srv.wg.Wait()
		return nil
	}
	srv.draining = true
	close(srv.drainCh)
	srv.mu.Unlock()

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, srv.cfg.DrainTimeout)
		defer cancel()
	}
	stop := context.AfterFunc(ctx, srv.baseCancel)
	defer stop()

	srv.wg.Wait()
	srv.baseCancel()
	return nil
}

func randSuffix() string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
