package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minflo/internal/fault"
)

// waitStats polls /stats until cond holds (the serve path has no
// synchronous hooks to latch onto; the counters are the observable).
func waitStats(t *testing.T, c *Client, what string, cond func(*StatsResponse) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := c.Stats(context.Background()); err == nil && cond(st) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeTrustRegionSeedField: with the trust region enabled, the
// per-query seed provenance reaches the wire — cold anchor answers
// "tilos", a small refinement answers "warm" — and the stats counters
// record the seeded total.
func TestServeTrustRegionSeedField(t *testing.T) {
	_, _, c := newTestServer(t, Config{TrustRegion: 0.05})
	sub := submitCircuit(t, c, "tr", "adder16")

	q0, err := c.Query(context.Background(), "tr", &QueryRequest{TargetPS: 0.6 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if q0.Seed != "tilos" {
		t.Fatalf("anchor Seed = %q, want tilos", q0.Seed)
	}
	q1, err := c.Query(context.Background(), "tr", &QueryRequest{TargetPS: 0.601 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if q1.Seed != "warm" {
		t.Fatalf("refinement Seed = %q, want warm", q1.Seed)
	}
	if q1.CPPS > 0.601*sub.MinDelayPS*(1+1e-9) {
		t.Fatalf("seeded answer CP %g violates target", q1.CPPS)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeded != 1 {
		t.Fatalf("stats seeded_total = %d, want 1", st.Seeded)
	}
	// A jump far beyond δ goes cold again, without a fallback (the
	// policy never armed).
	q2, err := c.Query(context.Background(), "tr", &QueryRequest{TargetPS: 0.75 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Seed != "tilos" || q2.SeedFallback {
		t.Fatalf("jump query Seed = %q fallback = %v, want cold/no-fallback", q2.Seed, q2.SeedFallback)
	}
}

// TestServeCoalescing: identical queries arriving while their twin is
// still queued are answered by one solve — the singleflight path.  A
// blocked solve holds the worker so the burst deterministically lands
// behind one queued job.
func TestServeCoalescing(t *testing.T) {
	_, hs, c := newTestServer(t, Config{MaxInFlight: 1})
	sub, err := c.Submit(context.Background(), &SubmitRequest{ID: "a", Circuit: "adder16", FlowEngine: "fault"})
	if err != nil {
		t.Fatal(err)
	}

	// Park the worker inside a first, distinct query.
	release := make(chan struct{})
	fault.SetPlan(fault.Plan{Mode: fault.Cancel, Op: 1, OnCancel: func() { <-release }})
	defer fault.Reset()
	var blocker sync.WaitGroup
	blocker.Add(1)
	go func() {
		defer blocker.Done()
		_, _ = c.Query(context.Background(), "a", &QueryRequest{TargetPS: 0.55 * sub.MinDelayPS})
	}()

	// Wait until the blocker is executing (busy worker, empty queue).
	waitStats(t, c, "blocker to start executing", func(st *StatsResponse) bool { return st.InFlight >= 1 })

	// Three byte-identical queries: the first enqueues, the other two
	// must attach to it instead of consuming queue slots.
	const n = 3
	body := fmt.Sprintf(`{"target_ps": %g}`, 0.6*sub.MinDelayPS)
	var wg sync.WaitGroup
	var coalesced, solved atomic.Int64
	seqs := make([]int, n)
	areas := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/sessions/a/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			var qr QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Error(err)
				return
			}
			seqs[i] = qr.Seq
			areas[i] = qr.Area
			if qr.Coalesced {
				coalesced.Add(1)
			} else {
				solved.Add(1)
			}
		}(i)
	}
	// All four queries admitted (1 blocker + 1 queued + 2 attached) —
	// only then release, so the attach window is deterministic.
	waitStats(t, c, "burst admission", func(st *StatsResponse) bool { return st.Queries >= 4 })
	close(release)
	wg.Wait()
	blocker.Wait()

	if solved.Load() != 1 || coalesced.Load() != n-1 {
		t.Fatalf("solved=%d coalesced=%d, want 1/%d", solved.Load(), coalesced.Load(), n-1)
	}
	for i := 1; i < n; i++ {
		if seqs[i] != seqs[0] || areas[i] != areas[0] {
			t.Fatalf("coalesced replies diverged: seq %v area %v", seqs, areas)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("stats coalesced_total = %d, want %d", st.Coalesced, n-1)
	}
}

// TestServeParallelismClamp: the submit body's parallelism request is
// granted up to the daemon cap and reported back.
func TestServeParallelismClamp(t *testing.T) {
	_, _, c := newTestServer(t, Config{Parallelism: 2})
	for _, tc := range []struct {
		req, want int
	}{
		{0, 2}, // default: the server's budget
		{1, 1}, // below cap: honored
		{8, 2}, // above cap: clamped
	} {
		sub, err := c.Submit(context.Background(), &SubmitRequest{
			ID: "p", Circuit: "c17", Parallelism: tc.req,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sub.Parallelism != tc.want {
			t.Fatalf("requested parallelism %d: granted %d, want %d", tc.req, sub.Parallelism, tc.want)
		}
	}
}
