package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"minflo/internal/cell"
	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/sta"
)

// jobKind selects what a session worker does with a queued job.
type jobKind int

const (
	jobBuild jobKind = iota // cold-build the solver state (submit path)
	jobQuery                // answer a sizing query from warm state
	jobEdit                 // apply a netlist edit batch to warm state
)

// job is one unit of admitted work.  The handler goroutine that
// enqueued it waits on resp (buffered: the worker never blocks on a
// client that walked away).
type job struct {
	kind jobKind
	req  QueryRequest
	edit EditRequest     // jobEdit payload
	ctx  context.Context // request context (client disconnect)
	resp chan jobReply

	// Singleflight state, guarded by srv.mu until started is set (the
	// worker freezes the follower list when it picks the job up; after
	// that no attach is legal and the worker reads without the lock).
	key       string // canonical query body ("" for build jobs)
	started   bool
	followers []chan jobReply // coalesced identical requests
}

type jobReply struct {
	status int
	body   any
}

// session is one warm solving context.  The worker goroutine owns the
// core.Session exclusively — requests to the same session serialize
// through the queue, so the solver state never sees concurrent access;
// distinct sessions run concurrently up to the server's in-flight cap.
type session struct {
	id  string
	srv *Server
	src SubmitRequest // retained verbatim for quarantine rebuilds

	queue chan *job
	quit  chan struct{} // closed on delete/evict/replace
	done  chan struct{} // closed when the worker exits

	// inflight indexes queued (not yet started) query jobs by their
	// canonical body, guarded by srv.mu — the singleflight map an
	// identical concurrent query coalesces through.
	inflight map[string]*job

	// Worker-owned (no locking needed).
	core     *core.Session
	numGates int
	dmin     float64
	gen      int
	seq      int
	par      int // granted intra-solve worker budget
	// eco is the session's editable netlist wrapper (owned by the
	// core.Session); editLog records every accepted edit batch so a
	// quarantine rebuild replays the session's netlist history — the
	// "deterministic given session history" contract covers edits.
	eco     *dag.Eco
	editLog [][]dag.Edit

	// Shared with the server, guarded by srv.mu.
	elem      *list.Element // LRU position
	memBytes  int64
	queries   int64
	editsDone int64
	queued    int
	// epoch counts admitted edit batches; it scopes the query
	// coalescing keys so a query admitted after an edit never rides a
	// twin queued before it (see Server.handleEdit).
	epoch       int
	busy        bool
	deleted     bool
	quarantined bool
}

// buildCore constructs the problem and warm solver state from the
// retained submit request.  Called by the worker on the build job and
// again on every quarantine rebuild — each build parses the netlist
// afresh so a rebuilt generation starts from pristine state (sticky
// what-if weights are per-generation and cleared here).
func (s *session) buildCore() error {
	ckt, err := s.srv.buildCircuit(s.src)
	if err != nil {
		return err
	}
	eco, err := dag.NewEco(ckt, s.srv.model)
	if err != nil {
		return err
	}
	p := eco.P
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return err
	}
	engine := s.src.FlowEngine
	if engine == "" {
		engine = s.srv.cfg.Engine
	}
	// Per-session worker budget: the requested parallelism clamped to
	// the daemon cap (-j), so one heavy session cannot monopolize the
	// machine's workers.
	s.par = s.src.Parallelism
	if s.par <= 0 || s.par > s.srv.cfg.Parallelism {
		s.par = s.srv.cfg.Parallelism
	}
	cs, err := core.NewEcoSession(eco, core.Options{
		FlowEngine:       engine,
		Parallelism:      s.par,
		NoEngineFallback: s.srv.cfg.NoEngineFallback,
		TrustRegion:      s.srv.cfg.TrustRegion,
		EditConeBudget:   s.srv.cfg.EditConeBudget,
	})
	if err != nil {
		return err
	}
	// A quarantine rebuild parses the source afresh, then replays the
	// session's accepted edit batches in order: the rebuilt generation's
	// netlist state is the deterministic product of the session history,
	// not the pristine submit.  Replay failures are impossible for
	// batches that validated once against the same history — treat one
	// as a build failure (fail loud, not with silently dropped edits).
	for i, batch := range s.editLog {
		if _, rerr := cs.ApplyEdits(batch); rerr != nil {
			cs.Close()
			return fmt.Errorf("edit-log replay (batch %d): %w", i, rerr)
		}
	}
	s.core = cs
	s.eco = eco
	s.numGates = p.NumSizable
	s.dmin = tm.CP
	s.seq = 0
	return nil
}

// run is the worker loop.  It exits when the session is deleted,
// evicted, or the server drains; on every exit path it answers all
// still-queued jobs and closes the solver state.
func (s *session) run() {
	defer s.srv.wg.Done()
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			s.drainQueue(http.StatusNotFound, CodeNotFound, "session deleted")
			s.shutdown()
			return
		case <-s.srv.drainCh:
			// Finish everything already admitted — the drain deadline
			// cancels the base context, so long solves come back fast
			// with partial answers — then exit.
			for {
				select {
				case j := <-s.queue:
					s.serve(j)
				default:
					s.shutdown()
					return
				}
			}
		case j := <-s.queue:
			s.serve(j)
		}
	}
}

func (s *session) shutdown() {
	if s.core != nil {
		s.core.Close()
		s.core = nil
	}
}

// drainQueue answers every queued job (and its coalesced followers)
// with a terminal error.
func (s *session) drainQueue(status int, code, msg string) {
	for {
		select {
		case j := <-s.queue:
			s.claim(j)
			rep := jobReply{status, &ErrorBody{Code: code, Message: msg}}
			j.resp <- rep
			for _, ch := range j.followers {
				ch <- rep
			}
			s.srv.jobDone(s, false)
		default:
			return
		}
	}
}

// claim marks a dequeued job started under srv.mu, freezing its
// follower list (no further coalesced attach) and dropping it from the
// singleflight index.
func (s *session) claim(j *job) {
	s.srv.mu.Lock()
	j.started = true
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.srv.mu.Unlock()
}

// serve runs one job under the global in-flight cap and the panic
// barrier, then reports completion to the server (memory accounting,
// watermark eviction, pending bookkeeping).
func (s *session) serve(j *job) {
	s.srv.runSem <- struct{}{}
	s.srv.mu.Lock()
	s.busy = true
	s.queued--
	j.started = true
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.srv.mu.Unlock()

	rep := s.handle(j)
	j.resp <- rep
	// Fan the answer out to coalesced identical requests (list frozen
	// when started was set above).  Each follower gets its own struct
	// so the Coalesced mark never mutates the primary's body.
	for _, ch := range j.followers {
		if qr, ok := rep.body.(*QueryResponse); ok {
			cp := *qr
			cp.Coalesced = true
			ch <- jobReply{rep.status, &cp}
		} else {
			ch <- rep
		}
	}

	<-s.srv.runSem
	s.srv.jobDone(s, true)
}

// handle dispatches one job.  The deferred recover is the per-session
// panic barrier: a crash anywhere in the solve quarantines this
// session (cold rebuild on its next query) and answers 500 — it never
// takes the process down or poisons other sessions.
func (s *session) handle(j *job) (rep jobReply) {
	defer func() {
		if r := recover(); r != nil {
			s.setQuarantined(true)
			rep = jobReply{http.StatusInternalServerError, &ErrorBody{
				Code:    CodeEngineFailed,
				Message: fmt.Sprintf("solve crashed (session quarantined, will rebuild cold): %v", r),
			}}
		}
	}()
	switch j.kind {
	case jobBuild:
		return s.handleBuild()
	case jobEdit:
		return s.handleEdit(j)
	default:
		return s.handleQuery(j)
	}
}

func (s *session) handleBuild() jobReply {
	if err := s.buildCore(); err != nil {
		return jobReply{statusForBuildErr(err), &ErrorBody{Code: codeForBuildErr(err), Message: err.Error()}}
	}
	s.srv.accountMem(s)
	return jobReply{http.StatusOK, &SubmitResponse{
		ID:          s.id,
		Generation:  s.gen,
		NumGates:    s.numGates,
		MemBytes:    s.core.MemoryBytes(),
		MinDelayPS:  s.dmin,
		Parallelism: s.par,
	}}
}

func (s *session) handleQuery(j *job) jobReply {
	// A quarantined (or never-built) session rebuilds cold first; the
	// new generation starts a fresh deterministic query sequence.
	if s.core == nil || s.getQuarantined() {
		s.shutdown()
		if err := s.buildCore(); err != nil {
			return jobReply{http.StatusInternalServerError, &ErrorBody{
				Code: CodeInternal, Message: "rebuild failed: " + err.Error(),
			}}
		}
		s.gen++
		s.setQuarantined(false)
		s.srv.rebuilds.Add(1)
	}

	req := &j.req
	if len(req.AreaWeights) > 0 {
		// Atomic batch: the whole weight list is validated before any
		// entry is applied, so a rejected query leaves the session
		// bit-identical to never having received it (a half-applied
		// sticky batch would silently skew every later answer).
		gates := make([]int, len(req.AreaWeights))
		ws := make([]float64, len(req.AreaWeights))
		for i, aw := range req.AreaWeights {
			gates[i], ws[i] = aw.Gate, aw.Weight
		}
		if err := s.core.SetAreaWeights(gates, ws); err != nil {
			return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
		}
	}

	// Cancellation funnel: the solve stops on whichever fires first —
	// client disconnect (request context), server drain deadline (base
	// context), or the per-request wall-clock budget (inside Resize).
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(s.srv.baseCtx, cancel)
	defer stop()

	warm := s.seq > 0
	s.seq++
	res, err := s.core.Resize(ctx, req.TargetPS, core.Budgets{
		Budget:         time.Duration(req.BudgetMS) * time.Millisecond,
		FlowWorkBudget: req.FlowWorkBudget,
	})
	s.srv.accountMem(s)

	resp := &QueryResponse{ID: s.id, Generation: s.gen, Seq: s.seq, Warm: warm}
	if res != nil {
		resp.Area = res.Area
		resp.CPPS = res.CP
		resp.Iterations = res.Iterations
		resp.Partial = res.Partial
		resp.Seed = res.Seed
		resp.SeedFallback = res.SeedFallback
		if res.Seed == core.SeedWarm {
			s.srv.seeded.Add(1)
		}
		if res.SeedFallback {
			s.srv.seedFallbacks.Add(1)
		}
		if req.WantSizes {
			resp.Sizes = res.X
		}
	}
	if err == nil {
		return jobReply{http.StatusOK, resp}
	}

	code, status := codeForSolveErr(err)
	if code == CodeEngineFailed {
		// The engine died and fallback was off (or exhausted): the warm
		// state is no longer trustworthy.  Quarantine; the next query
		// rebuilds cold.
		s.setQuarantined(true)
		s.srv.quarantines.Add(1)
	}
	if res != nil && res.Partial {
		// Best-so-far partial answer: 200 with the error attached,
		// mirroring MinflotransitCtx's (sizing, err) contract.
		resp.Error = &ErrorBody{Code: code, Message: err.Error()}
		return jobReply{http.StatusOK, resp}
	}
	// No partial to soften it: a bare error envelope (the only body
	// shape clients see on non-2xx statuses).
	return jobReply{status, &ErrorBody{Code: code, Message: err.Error()}}
}

// handleEdit applies one admitted edit batch to the warm state.  The
// quarantine-rebuild prologue mirrors handleQuery's: a quarantined (or
// never-built) session rebuilds cold — replaying the prior edit log —
// before the new batch lands on top.
func (s *session) handleEdit(j *job) jobReply {
	if s.core == nil || s.getQuarantined() {
		s.shutdown()
		if err := s.buildCore(); err != nil {
			return jobReply{http.StatusInternalServerError, &ErrorBody{
				Code: CodeInternal, Message: "rebuild failed: " + err.Error(),
			}}
		}
		s.gen++
		s.setQuarantined(false)
		s.srv.rebuilds.Add(1)
	}

	edits, err := s.translateEdits(&j.edit)
	if err != nil {
		return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
	}
	rep, err := s.core.ApplyEdits(edits)
	if err != nil {
		// Rejected batches are atomic: the session is bit-identical to
		// never having received this request, so nothing to log.
		return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
	}
	// The accepted batch joins the session history; a later quarantine
	// rebuild replays it (without re-counting it in the server stats).
	s.editLog = append(s.editLog, edits)
	s.srv.edits.Add(1)
	if rep.Fallback {
		s.srv.editFallbacks.Add(1)
	}
	s.srv.mu.Lock()
	s.editsDone++
	s.srv.mu.Unlock()
	s.srv.accountMem(s)
	return jobReply{http.StatusOK, &EditResponse{
		ID:          s.id,
		Generation:  s.gen,
		Structural:  rep.Structural,
		Rebuilt:     rep.Rebuilt,
		Fallback:    rep.Fallback,
		SeedKept:    rep.SeedKept,
		ConeGates:   rep.ConeGates,
		ConeFrac:    rep.ConeFrac,
		ChangedRows: rep.ChangedRows,
		CPPS:        rep.CP,
		MemBytes:    s.core.MemoryBytes(),
	}}
}

// translateEdits maps the wire batch onto typed dag edits.  Name
// resolution — cell names, driver signals — happens here against the
// session's current netlist; index, arity, and cycle validation is
// core.ApplyEdits's job (and is atomic there).
func (s *session) translateEdits(req *EditRequest) ([]dag.Edit, error) {
	out := make([]dag.Edit, len(req.Edits))
	for i, e := range req.Edits {
		d := dag.Edit{Gate: e.Gate}
		switch e.Op {
		case "retype":
			k, ok := cell.ByName(e.Cell)
			if !ok {
				return nil, fmt.Errorf("edit %d: unknown cell %q", i, e.Cell)
			}
			d.Op, d.Cell = dag.EditRetype, k
		case "load":
			d.Op, d.LoadFF = dag.EditLoad, e.LoadFF
		case "rewire":
			ref, ok := s.eco.C.Lookup(e.Driver)
			if !ok {
				return nil, fmt.Errorf("edit %d: unknown driver signal %q", i, e.Driver)
			}
			d.Op, d.Pin, d.Driver = dag.EditRewire, e.Pin, ref
		default:
			return nil, fmt.Errorf("edit %d: unknown op %q (want retype, load, or rewire)", i, e.Op)
		}
		out[i] = d
	}
	return out, nil
}

func (s *session) setQuarantined(v bool) {
	s.srv.mu.Lock()
	s.quarantined = v
	s.srv.mu.Unlock()
}

func (s *session) getQuarantined() bool {
	s.srv.mu.Lock()
	defer s.srv.mu.Unlock()
	return s.quarantined
}

// codeForSolveErr maps the core error taxonomy onto wire codes and the
// status used when no partial result softens the failure.
func codeForSolveErr(err error) (code string, status int) {
	switch {
	case errors.Is(err, core.ErrCanceled):
		return CodeCanceled, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrBudgetExhausted):
		return CodeBudgetExhausted, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrEngineFailed):
		return CodeEngineFailed, http.StatusInternalServerError
	case errors.Is(err, core.ErrInfeasible):
		return CodeInfeasible, http.StatusUnprocessableEntity
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// Build failures — unknown circuit names, parse errors, bad engine
// names — are all caller mistakes.
func statusForBuildErr(err error) int { return http.StatusBadRequest }

func codeForBuildErr(err error) string { return CodeBadRequest }
