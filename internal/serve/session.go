package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/sta"
)

// jobKind selects what a session worker does with a queued job.
type jobKind int

const (
	jobBuild jobKind = iota // cold-build the solver state (submit path)
	jobQuery                // answer a sizing query from warm state
	jobEdit                 // apply a netlist edit batch to warm state
)

// job is one unit of admitted work.  The handler goroutine that
// enqueued it waits on resp (buffered: the worker never blocks on a
// client that walked away).
type job struct {
	kind jobKind
	req  QueryRequest
	edit EditRequest     // jobEdit payload
	ctx  context.Context // request context (client disconnect)
	resp chan jobReply

	// Singleflight state, guarded by srv.mu until started is set (the
	// worker freezes the follower list when it picks the job up; after
	// that no attach is legal and the worker reads without the lock).
	key       string // canonical query body ("" for build jobs)
	started   bool
	followers []chan jobReply // coalesced identical requests
}

type jobReply struct {
	status int
	body   any
}

// session is one warm solving context.  The worker goroutine owns the
// core.Session exclusively — requests to the same session serialize
// through the queue, so the solver state never sees concurrent access;
// distinct sessions run concurrently up to the server's in-flight cap.
type session struct {
	id  string
	srv *Server
	src SubmitRequest // retained verbatim for quarantine rebuilds

	queue chan *job
	quit  chan struct{} // closed on delete/evict/replace
	done  chan struct{} // closed when the worker exits

	// inflight indexes queued (not yet started) query jobs by their
	// canonical body, guarded by srv.mu — the singleflight map an
	// identical concurrent query coalesces through.
	inflight map[string]*job

	// Worker-owned (no locking needed).
	core     *core.Session
	numGates int
	dmin     float64
	gen      int
	seq      int
	par      int // granted intra-solve worker budget
	// eco is the session's editable netlist wrapper (owned by the
	// core.Session); history records every accepted state-mutating
	// batch — netlist edits AND sticky what-if weight batches, in
	// arrival order — so a quarantine rebuild replays the session's
	// full served history (the "deterministic given session history"
	// contract covers both; replaying only the edits, as this layer
	// once did, made a post-panic session silently diverge from a
	// never-quarantined twin whenever weights had been set).  snap,
	// when non-nil, is the netlist state an accepted structural batch
	// produced: the history prefix up to it is compacted away and
	// rebuilds start from the snapshot instead of the pristine source
	// (a structural rebuild resets sticky weights, so nothing before
	// the snapshot needs replay — see dag.NewEcoWithExtra's exactness
	// contract).
	eco     *dag.Eco
	history []historyEntry
	snap    *netSnapshot

	// Shared with the server, guarded by srv.mu.
	elem      *list.Element // LRU position
	memBytes  int64
	queries   int64
	editsDone int64
	queued    int
	// epoch counts admitted edit batches; it scopes the query
	// coalescing keys so a query admitted after an edit never rides a
	// twin queued before it (see Server.handleEdit).
	epoch       int
	busy        bool
	deleted     bool
	quarantined bool
}

// historyEntry is one accepted state-mutating request of the session's
// replayable history: a sticky what-if weight batch (gates/ws) or a
// netlist edit batch (edits).  Exactly one side is set.
type historyEntry struct {
	gates []int
	ws    []float64
	edits []dag.Edit
}

// netSnapshot captures the netlist state after an accepted structural
// batch: the edited circuit and its extra-load ledger.  Rebuilds start
// here instead of re-parsing the pristine source and replaying the
// whole history (the circuit is cloned on use — the snapshot itself is
// never handed to an Eco, which would own and mutate it).
type netSnapshot struct {
	c     *circuit.Circuit
	extra []float64
}

// buildCore constructs the problem and warm solver state from the
// retained submit request (or the compacted snapshot).  Called by the
// worker on the build job and again on every quarantine rebuild — each
// build starts from pristine state and replays the session's accepted
// weight and edit batches in order, so the rebuilt generation's state
// is the deterministic product of the session history.
func (s *session) buildCore() error {
	var eco *dag.Eco
	if s.snap != nil {
		var err error
		eco, err = dag.NewEcoWithExtra(s.snap.c.Clone(), s.srv.model, s.snap.extra)
		if err != nil {
			return err
		}
	} else {
		ckt, err := s.srv.buildCircuit(s.src)
		if err != nil {
			return err
		}
		if eco, err = dag.NewEco(ckt, s.srv.model); err != nil {
			return err
		}
	}
	p := eco.P
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return err
	}
	engine := s.src.FlowEngine
	if engine == "" {
		engine = s.srv.cfg.Engine
	}
	// Per-session worker budget: the requested parallelism clamped to
	// the daemon cap (-j), so one heavy session cannot monopolize the
	// machine's workers.
	s.par = s.src.Parallelism
	if s.par <= 0 || s.par > s.srv.cfg.Parallelism {
		s.par = s.srv.cfg.Parallelism
	}
	cs, err := core.NewEcoSession(eco, core.Options{
		FlowEngine:       engine,
		Parallelism:      s.par,
		NoEngineFallback: s.srv.cfg.NoEngineFallback,
		TrustRegion:      s.srv.cfg.TrustRegion,
		EditConeBudget:   s.srv.cfg.EditConeBudget,
		EditConeResize:   s.srv.cfg.EditConeResize,
	})
	if err != nil {
		return err
	}
	// Replay the session's accepted history — weight batches and edit
	// batches, in arrival order.  Replay failures are impossible for
	// batches that validated once against the same history — treat one
	// as a build failure (fail loud, not with silently dropped state).
	for i, h := range s.history {
		var rerr error
		if h.edits != nil {
			_, rerr = cs.ApplyEdits(h.edits)
		} else {
			rerr = cs.SetAreaWeights(h.gates, h.ws)
		}
		if rerr != nil {
			cs.Close()
			return fmt.Errorf("history replay (batch %d): %w", i, rerr)
		}
	}
	s.core = cs
	s.eco = eco
	s.numGates = cs.NumSizable()
	s.dmin = tm.CP
	s.seq = 0
	return nil
}

// stateBytes estimates the serve-layer session state that
// core.MemoryBytes cannot see: the replayable history ledger, the
// compaction snapshot, and the retained submit source.  Without it the
// history grows unbounded and invisibly to the LRU watermarks.
func (s *session) stateBytes() int64 {
	const (
		editBytes  = 96 // dag.Edit struct
		entryBytes = 96 // historyEntry + slice headers + growth slack
		gateBytes  = 96 // circuit.Gate + name + pins, amortized
	)
	b := int64(len(s.src.Bench)+len(s.src.Circuit)+len(s.src.ID)) + 4096
	for _, h := range s.history {
		b += entryBytes + int64(len(h.gates))*8 + int64(len(h.ws))*8
		b += int64(len(h.edits)) * editBytes
		for _, e := range h.edits {
			b += int64(len(e.Name)) + int64(len(e.Ins))*16
		}
	}
	if s.snap != nil {
		b += int64(s.snap.c.NumGates())*gateBytes + int64(len(s.snap.extra))*8
	}
	return b
}

// run is the worker loop.  It exits when the session is deleted,
// evicted, or the server drains; on every exit path it answers all
// still-queued jobs and closes the solver state.
func (s *session) run() {
	defer s.srv.wg.Done()
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			s.drainQueue(http.StatusNotFound, CodeNotFound, "session deleted")
			s.shutdown()
			return
		case <-s.srv.drainCh:
			// Finish everything already admitted — the drain deadline
			// cancels the base context, so long solves come back fast
			// with partial answers — then exit.
			for {
				select {
				case j := <-s.queue:
					s.serve(j)
				default:
					s.shutdown()
					return
				}
			}
		case j := <-s.queue:
			s.serve(j)
		}
	}
}

func (s *session) shutdown() {
	if s.core != nil {
		s.core.Close()
		s.core = nil
	}
}

// drainQueue answers every queued job (and its coalesced followers)
// with a terminal error.
func (s *session) drainQueue(status int, code, msg string) {
	for {
		select {
		case j := <-s.queue:
			s.claim(j)
			rep := jobReply{status, &ErrorBody{Code: code, Message: msg}}
			j.resp <- rep
			for _, ch := range j.followers {
				ch <- rep
			}
			s.srv.jobDone(s, false)
		default:
			return
		}
	}
}

// claim marks a dequeued job started under srv.mu, freezing its
// follower list (no further coalesced attach) and dropping it from the
// singleflight index.
func (s *session) claim(j *job) {
	s.srv.mu.Lock()
	j.started = true
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.srv.mu.Unlock()
}

// serve runs one job under the global in-flight cap and the panic
// barrier, then reports completion to the server (memory accounting,
// watermark eviction, pending bookkeeping).
func (s *session) serve(j *job) {
	s.srv.runSem <- struct{}{}
	s.srv.mu.Lock()
	s.busy = true
	s.queued--
	j.started = true
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.srv.mu.Unlock()

	rep := s.handle(j)
	j.resp <- rep
	// Fan the answer out to coalesced identical requests (list frozen
	// when started was set above).  Each follower gets its own struct
	// so the Coalesced mark never mutates the primary's body.
	for _, ch := range j.followers {
		if qr, ok := rep.body.(*QueryResponse); ok {
			cp := *qr
			cp.Coalesced = true
			ch <- jobReply{rep.status, &cp}
		} else {
			ch <- rep
		}
	}

	<-s.srv.runSem
	s.srv.jobDone(s, true)
}

// handle dispatches one job.  The deferred recover is the per-session
// panic barrier: a crash anywhere in the solve quarantines this
// session (cold rebuild on its next query) and answers 500 — it never
// takes the process down or poisons other sessions.
func (s *session) handle(j *job) (rep jobReply) {
	defer func() {
		if r := recover(); r != nil {
			s.setQuarantined(true)
			rep = jobReply{http.StatusInternalServerError, &ErrorBody{
				Code:    CodeEngineFailed,
				Message: fmt.Sprintf("solve crashed (session quarantined, will rebuild cold): %v", r),
			}}
		}
	}()
	switch j.kind {
	case jobBuild:
		return s.handleBuild()
	case jobEdit:
		return s.handleEdit(j)
	default:
		return s.handleQuery(j)
	}
}

func (s *session) handleBuild() jobReply {
	if err := s.buildCore(); err != nil {
		return jobReply{statusForBuildErr(err), &ErrorBody{Code: codeForBuildErr(err), Message: err.Error()}}
	}
	s.srv.accountMem(s)
	return jobReply{http.StatusOK, &SubmitResponse{
		ID:          s.id,
		Generation:  s.gen,
		NumGates:    s.numGates,
		MemBytes:    s.core.MemoryBytes(),
		MinDelayPS:  s.dmin,
		Parallelism: s.par,
	}}
}

func (s *session) handleQuery(j *job) jobReply {
	// A quarantined (or never-built) session rebuilds cold first; the
	// new generation starts a fresh deterministic query sequence.
	if s.core == nil || s.getQuarantined() {
		s.shutdown()
		if err := s.buildCore(); err != nil {
			return jobReply{http.StatusInternalServerError, &ErrorBody{
				Code: CodeInternal, Message: "rebuild failed: " + err.Error(),
			}}
		}
		s.gen++
		s.setQuarantined(false)
		s.srv.rebuilds.Add(1)
	}

	req := &j.req
	if len(req.AreaWeights) > 0 {
		// Atomic batch: the whole weight list is validated before any
		// entry is applied, so a rejected query leaves the session
		// bit-identical to never having received it (a half-applied
		// sticky batch would silently skew every later answer).
		gates := make([]int, len(req.AreaWeights))
		ws := make([]float64, len(req.AreaWeights))
		for i, aw := range req.AreaWeights {
			gates[i], ws[i] = aw.Gate, aw.Weight
		}
		if err := s.core.SetAreaWeights(gates, ws); err != nil {
			return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
		}
		// Accepted sticky weights join the replayable history — a
		// quarantine rebuild must re-apply them after the edit replay
		// or the rebuilt generation diverges from a never-quarantined
		// twin.  Recorded even if the solve below fails: stickiness is
		// not conditional on the query's outcome.
		s.history = append(s.history, historyEntry{gates: gates, ws: ws})
	}

	// Cancellation funnel: the solve stops on whichever fires first —
	// client disconnect (request context), server drain deadline (base
	// context), or the per-request wall-clock budget (inside Resize).
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(s.srv.baseCtx, cancel)
	defer stop()

	warm := s.seq > 0
	s.seq++
	coneN, coneF := s.core.ConeResizes(), s.core.ConeFallbacks()
	res, err := s.core.Resize(ctx, req.TargetPS, core.Budgets{
		Budget:         time.Duration(req.BudgetMS) * time.Millisecond,
		FlowWorkBudget: req.FlowWorkBudget,
	})
	s.srv.accountMem(s)
	if d := s.core.ConeResizes() - coneN; d > 0 {
		s.srv.coneResizes.Add(int64(d))
	}
	coneFellBack := s.core.ConeFallbacks() > coneF
	if coneFellBack {
		s.srv.coneFallbacks.Add(int64(s.core.ConeFallbacks() - coneF))
	}

	resp := &QueryResponse{ID: s.id, Generation: s.gen, Seq: s.seq, Warm: warm, ConeFallback: coneFellBack}
	if res != nil {
		resp.Area = res.Area
		resp.CPPS = res.CP
		resp.Iterations = res.Iterations
		resp.Partial = res.Partial
		resp.Seed = res.Seed
		resp.SeedFallback = res.SeedFallback
		resp.ConeGates = res.ConeGates
		if res.Seed == core.SeedWarm {
			s.srv.seeded.Add(1)
		}
		if res.SeedFallback {
			s.srv.seedFallbacks.Add(1)
		}
		if req.WantSizes {
			resp.Sizes = res.X
		}
	}
	if err == nil {
		return jobReply{http.StatusOK, resp}
	}

	code, status := codeForSolveErr(err)
	if code == CodeEngineFailed {
		// The engine died and fallback was off (or exhausted): the warm
		// state is no longer trustworthy.  Quarantine; the next query
		// rebuilds cold.
		s.setQuarantined(true)
		s.srv.quarantines.Add(1)
	}
	if res != nil && res.Partial {
		// Best-so-far partial answer: 200 with the error attached,
		// mirroring MinflotransitCtx's (sizing, err) contract.
		resp.Error = &ErrorBody{Code: code, Message: err.Error()}
		return jobReply{http.StatusOK, resp}
	}
	// No partial to soften it: a bare error envelope (the only body
	// shape clients see on non-2xx statuses).
	return jobReply{status, &ErrorBody{Code: code, Message: err.Error()}}
}

// handleEdit applies one admitted edit batch to the warm state.  The
// quarantine-rebuild prologue mirrors handleQuery's: a quarantined (or
// never-built) session rebuilds cold — replaying the prior edit log —
// before the new batch lands on top.
func (s *session) handleEdit(j *job) jobReply {
	if s.core == nil || s.getQuarantined() {
		s.shutdown()
		if err := s.buildCore(); err != nil {
			return jobReply{http.StatusInternalServerError, &ErrorBody{
				Code: CodeInternal, Message: "rebuild failed: " + err.Error(),
			}}
		}
		s.gen++
		s.setQuarantined(false)
		s.srv.rebuilds.Add(1)
	}

	edits, err := s.translateEdits(&j.edit)
	if err != nil {
		return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
	}
	rep, err := s.core.ApplyEdits(edits)
	if err != nil {
		// Rejected batches are atomic: the session is bit-identical to
		// never having received this request, so nothing to log.
		return jobReply{http.StatusBadRequest, &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
	}
	// The accepted batch joins the session history; a later quarantine
	// rebuild replays it (without re-counting it in the server stats).
	// A structural batch compacts instead: the rebuild it just ran
	// resets sticky weights and dag guarantees the rebuilt netlist is
	// bit-reproducible from (circuit, extra-load) alone, so the whole
	// prefix — this batch included — collapses into one snapshot.
	if rep.Structural {
		s.snap = &netSnapshot{
			c:     s.eco.C.Clone(),
			extra: append([]float64(nil), s.eco.Extra...),
		}
		s.history = s.history[:0]
	} else {
		s.history = append(s.history, historyEntry{edits: edits})
	}
	if rep.GateSetChanged {
		s.numGates = s.core.NumSizable()
	}
	s.srv.edits.Add(1)
	if rep.Fallback {
		s.srv.editFallbacks.Add(1)
	}
	s.srv.mu.Lock()
	s.editsDone++
	s.srv.mu.Unlock()
	s.srv.accountMem(s)
	return jobReply{http.StatusOK, &EditResponse{
		ID:                s.id,
		Generation:        s.gen,
		Structural:        rep.Structural,
		Rebuilt:           rep.Rebuilt,
		Fallback:          rep.Fallback,
		SeedKept:          rep.SeedKept,
		GateSetChanged:    rep.GateSetChanged,
		NumGates:          s.core.NumSizable(),
		ConeGates:         rep.ConeGates,
		ConeFrac:          rep.ConeFrac,
		ChangedRows:       rep.ChangedRows,
		ConeResizePending: rep.ConeResizePending,
		CPPS:              rep.CP,
		MemBytes:          s.core.MemoryBytes(),
	}}
}

// translateEdits maps the wire batch onto typed dag edits.  Name
// resolution — cell names, driver signals — happens here against the
// session's current netlist; index, arity, cycle and liveness
// validation is core.ApplyEdits's job (and is atomic there).
//
// Gate-set batches need the resolution to track the batch: an "add" is
// referenceable by name before the gate exists in the resident
// netlist, and a "remove" shifts every higher gate index down by one
// for the rest of the batch — so driver names resolve against a
// simulated index space, not the pre-batch one.
func (s *session) translateEdits(req *EditRequest) ([]dag.Edit, error) {
	// gateAt maps current gate names to their index as of this point in
	// the batch; built lazily, only batches containing adds or removes
	// pay for it.
	var gateAt map[string]int
	simulated := func() {
		if gateAt != nil {
			return
		}
		gateAt = make(map[string]int, s.eco.C.NumGates())
		for gi := range s.eco.C.Gates {
			gateAt[s.eco.C.Gates[gi].Name] = gi
		}
	}
	numGates := s.eco.C.NumGates()
	lookup := func(name string) (circuit.Ref, bool) {
		if gateAt != nil {
			if gi, ok := gateAt[name]; ok {
				return circuit.GateRef(gi), true
			}
			// Not a live gate: only a PI resolution is still valid (a
			// pre-batch gate ref would carry a stale index).
			if ref, ok := s.eco.C.Lookup(name); ok && ref.Kind == circuit.RefPI {
				return ref, true
			}
			return circuit.Ref{}, false
		}
		return s.eco.C.Lookup(name)
	}
	out := make([]dag.Edit, len(req.Edits))
	for i, e := range req.Edits {
		d := dag.Edit{Gate: e.Gate}
		switch e.Op {
		case "retype":
			k, ok := cell.ByName(e.Cell)
			if !ok {
				return nil, fmt.Errorf("edit %d: unknown cell %q", i, e.Cell)
			}
			d.Op, d.Cell = dag.EditRetype, k
		case "load":
			d.Op, d.LoadFF = dag.EditLoad, e.LoadFF
		case "rewire":
			ref, ok := lookup(e.Driver)
			if !ok {
				return nil, fmt.Errorf("edit %d: unknown driver signal %q", i, e.Driver)
			}
			d.Op, d.Pin, d.Driver = dag.EditRewire, e.Pin, ref
		case "add":
			simulated()
			k, ok := cell.ByName(e.Cell)
			if !ok {
				return nil, fmt.Errorf("edit %d: unknown cell %q", i, e.Cell)
			}
			ins := make([]circuit.Ref, len(e.Inputs))
			for pin, nm := range e.Inputs {
				ref, ok := lookup(nm)
				if !ok {
					return nil, fmt.Errorf("edit %d: add %q pin %d: unknown driver signal %q", i, e.Name, pin, nm)
				}
				ins[pin] = ref
			}
			d.Op, d.Cell, d.Name, d.Ins, d.PO = dag.EditAdd, k, e.Name, ins, e.PO
			gateAt[e.Name] = numGates
			numGates++
		case "remove":
			simulated()
			if e.Gate < 0 || e.Gate >= numGates {
				return nil, fmt.Errorf("edit %d: remove gate %d out of range [0,%d)", i, e.Gate, numGates)
			}
			d.Op = dag.EditRemove
			for nm, gi := range gateAt {
				switch {
				case gi == e.Gate:
					delete(gateAt, nm)
				case gi > e.Gate:
					gateAt[nm] = gi - 1
				}
			}
			numGates--
		default:
			return nil, fmt.Errorf("edit %d: unknown op %q (want retype, load, rewire, add, or remove)", i, e.Op)
		}
		out[i] = d
	}
	return out, nil
}

func (s *session) setQuarantined(v bool) {
	s.srv.mu.Lock()
	s.quarantined = v
	s.srv.mu.Unlock()
}

func (s *session) getQuarantined() bool {
	s.srv.mu.Lock()
	defer s.srv.mu.Unlock()
	return s.quarantined
}

// codeForSolveErr maps the core error taxonomy onto wire codes and the
// status used when no partial result softens the failure.
func codeForSolveErr(err error) (code string, status int) {
	switch {
	case errors.Is(err, core.ErrCanceled):
		return CodeCanceled, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrBudgetExhausted):
		return CodeBudgetExhausted, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrEngineFailed):
		return CodeEngineFailed, http.StatusInternalServerError
	case errors.Is(err, core.ErrInfeasible):
		return CodeInfeasible, http.StatusUnprocessableEntity
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// Build failures — unknown circuit names, parse errors, bad engine
// names — are all caller mistakes.
func statusForBuildErr(err error) int { return http.StatusBadRequest }

func codeForBuildErr(err error) string { return CodeBadRequest }
