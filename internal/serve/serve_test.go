package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minflo/internal/fault"
)

// newTestServer spins up a Server on httptest with the given config
// and registers shutdown cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		hs.Close()
	})
	c := NewClient(hs.URL, hs.Client())
	return srv, hs, c
}

func submitCircuit(t *testing.T, c *Client, id, circuit string) *SubmitResponse {
	t.Helper()
	sub, err := c.Submit(context.Background(), &SubmitRequest{ID: id, Circuit: circuit})
	if err != nil {
		t.Fatalf("submit %s: %v", circuit, err)
	}
	return sub
}

func TestServeSubmitQueryLifecycle(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()

	sub := submitCircuit(t, c, "a16", "adder16")
	if sub.ID != "a16" || sub.Generation != 0 {
		t.Fatalf("submit response: %+v", sub)
	}
	if sub.NumGates <= 0 || sub.MemBytes <= 0 || sub.MinDelayPS <= 0 {
		t.Fatalf("submit response lacks metadata: %+v", sub)
	}

	// First query is cold, later queries are warm; seq counts within
	// the generation.
	targets := []float64{0.6, 0.5, 0.75}
	for i, spec := range targets {
		q, err := c.Query(ctx, "a16", &QueryRequest{TargetPS: spec * sub.MinDelayPS, WantSizes: i == 0})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if q.Error != nil || q.Partial {
			t.Fatalf("query %d not clean: %+v", i, q)
		}
		if q.Seq != i+1 || q.Generation != 0 {
			t.Fatalf("query %d seq/gen: %+v", i, q)
		}
		if q.Warm != (i > 0) {
			t.Fatalf("query %d warm=%v", i, q.Warm)
		}
		if q.CPPS > spec*sub.MinDelayPS*(1+1e-9) {
			t.Fatalf("query %d misses target: CP %.6g > %.6g", i, q.CPPS, spec*sub.MinDelayPS)
		}
		if i == 0 && len(q.Sizes) != sub.NumGates {
			t.Fatalf("want_sizes returned %d sizes, want %d", len(q.Sizes), sub.NumGates)
		}
		if i > 0 && q.Sizes != nil {
			t.Fatalf("sizes returned without want_sizes")
		}
	}

	info, err := c.Info(ctx, "a16")
	if err != nil {
		t.Fatal(err)
	}
	if info.Queries != int64(len(targets)) || info.Quarantined {
		t.Fatalf("info: %+v", info)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.MemBytes <= 0 || st.Queries < int64(len(targets)) {
		t.Fatalf("stats: %+v", st)
	}

	if err := c.Delete(ctx, "a16"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(ctx, "a16", &QueryRequest{TargetPS: sub.MinDelayPS})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeNotFound {
		t.Fatalf("query after delete: %v", err)
	}
}

func TestServeInfeasibleAndBadRequests(t *testing.T) {
	_, hs, c := newTestServer(t, Config{})
	ctx := context.Background()
	sub := submitCircuit(t, c, "c", "c17")

	// Target below Dmin·(min possible speedup) — pick something absurd.
	_, err := c.Query(ctx, "c", &QueryRequest{TargetPS: sub.MinDelayPS * 1e-6})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeInfeasible || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible target: %v", err)
	}

	// Unknown circuit, missing netlist, bad engine, bad target.
	if _, err := c.Submit(ctx, &SubmitRequest{Circuit: "nope9999"}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	if _, err := c.Submit(ctx, &SubmitRequest{}); err == nil {
		t.Fatal("empty submit accepted")
	}
	if _, err := c.Submit(ctx, &SubmitRequest{Circuit: "c17", FlowEngine: "warp"}); err == nil {
		t.Fatal("bad engine accepted")
	}
	if _, err := c.Query(ctx, "c", &QueryRequest{TargetPS: -1}); err == nil {
		t.Fatal("negative target accepted")
	}

	// Raw malformed JSON.
	resp, err := http.Post(hs.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", resp.StatusCode)
	}
}

func TestServeBenchSubmission(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	const benchText = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	sub, err := c.Submit(ctx, &SubmitRequest{ID: "inline", Bench: benchText, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Query(ctx, "inline", &QueryRequest{TargetPS: 0.7 * sub.MinDelayPS})
	if err != nil {
		t.Fatal(err)
	}
	if q.Error != nil || q.CPPS > 0.7*sub.MinDelayPS*(1+1e-9) {
		t.Fatalf("inline bench query: %+v", q)
	}
}

// TestServeOverload drives more work than the tiny admission limits
// allow and checks the excess is refused with 429 + Retry-After —
// bounded queues, no silent backlog.  The in-flight solve is pinned
// mid-run via the fault engine's callback hook so admission pressure
// is deterministic, not a race against solve speed.
func TestServeOverload(t *testing.T) {
	_, hs, c := newTestServer(t, Config{
		MaxInFlight: 1,
		MaxPending:  2,
		QueueDepth:  1,
	})
	sub, err := c.Submit(context.Background(), &SubmitRequest{ID: "a", Circuit: "adder16", FlowEngine: "fault"})
	if err != nil {
		t.Fatal(err)
	}

	// Every solve parks at its first poll operation until released, so
	// the two admitted jobs (1 executing + 1 queued) hold their
	// pending slots for the whole burst.
	release := make(chan struct{})
	fault.SetPlan(fault.Plan{Mode: fault.Cancel, Op: 1, OnCancel: func() { <-release }})
	defer fault.Reset()

	const burst = 8
	var rejected, retryAfterSeen, completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct targets per request: identical bodies would ride
			// the singleflight path instead of pressuring admission.
			body := fmt.Sprintf(`{"target_ps": %g}`, (0.5+float64(i)*1e-6)*sub.MinDelayPS)
			resp, err := http.Post(hs.URL+"/v1/sessions/a/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					retryAfterSeen.Add(1)
				}
				var eb ErrorBody
				if json.NewDecoder(resp.Body).Decode(&eb) != nil || eb.Code != CodeOverloaded {
					t.Errorf("429 body: %+v", eb)
				}
			case http.StatusOK:
				completed.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}

	// Exactly burst-2 rejections: the blocked solve guarantees neither
	// admitted slot frees before the burst is fully refused.
	deadline := time.Now().Add(10 * time.Second)
	for rejected.Load() < burst-2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if rejected.Load() != burst-2 || completed.Load() != 2 {
		t.Fatalf("rejected=%d completed=%d, want %d/2", rejected.Load(), completed.Load(), burst-2)
	}
	if retryAfterSeen.Load() != rejected.Load() {
		t.Fatalf("Retry-After missing on some 429s (%d/%d)", retryAfterSeen.Load(), rejected.Load())
	}
	if st, _ := c.Stats(context.Background()); st.Rejected < int64(burst-2) {
		t.Fatalf("stats.rejected = %d", st.Rejected)
	}
}

// TestServeQuarantineRebuild injects an engine panic (fallback off),
// checks the session is quarantined — process stays up — and that the
// next query transparently rebuilds a fresh generation that answers
// like a cold session.
func TestServeQuarantineRebuild(t *testing.T) {
	srv, _, c := newTestServer(t, Config{NoEngineFallback: true})
	ctx := context.Background()

	sub, err := c.Submit(ctx, &SubmitRequest{ID: "f", Circuit: "adder16", FlowEngine: "fault"})
	if err != nil {
		t.Fatal(err)
	}
	T := 0.6 * sub.MinDelayPS

	// Clean run first (plan None) to have a reference answer.
	fault.Reset()
	ref, err := c.Query(ctx, "f", &QueryRequest{TargetPS: T})
	if err != nil || ref.Error != nil {
		t.Fatalf("reference query: %v %+v", err, ref)
	}

	// Arm a panic mid-solve and fire.
	fault.SetPlan(fault.Plan{Mode: fault.Panic, Op: 20})
	defer fault.Reset()
	q, err := c.Query(ctx, "f", &QueryRequest{TargetPS: 0.5 * sub.MinDelayPS})
	fault.Reset()
	if err != nil {
		// No partial available: terminal 500 engine_failed.
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeEngineFailed {
			t.Fatalf("injected panic surfaced as: %v", err)
		}
	} else {
		// Partial came back attached to the engine_failed error.
		if q.Error == nil || q.Error.Code != CodeEngineFailed {
			t.Fatalf("injected panic answered: %+v", q)
		}
	}

	info, err := c.Info(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Quarantined {
		t.Fatal("session not quarantined after engine failure")
	}
	if srv.quarantines.Load() == 0 {
		t.Fatal("quarantine counter did not move")
	}

	// Next query rebuilds cold: new generation, seq restarts, answer
	// matches the pre-crash reference bit-for-bit (same first query of
	// a fresh generation).
	q2, err := c.Query(ctx, "f", &QueryRequest{TargetPS: T})
	if err != nil || q2.Error != nil {
		t.Fatalf("post-quarantine query: %v %+v", err, q2)
	}
	if q2.Generation != ref.Generation+1 || q2.Seq != 1 || q2.Warm {
		t.Fatalf("rebuild generation bookkeeping: %+v", q2)
	}
	if q2.Area != ref.Area || q2.CPPS != ref.CPPS || q2.Iterations != ref.Iterations {
		t.Fatalf("rebuilt session diverged from cold reference: %+v vs %+v", q2, ref)
	}
	if srv.rebuilds.Load() == 0 {
		t.Fatal("rebuild counter did not move")
	}
	if info2, _ := c.Info(ctx, "f"); info2.Quarantined {
		t.Fatal("session still quarantined after rebuild")
	}
}

// TestServeDrainReturnsPartial starts a long query, then shuts the
// server down with a short drain deadline: the in-flight query must
// come back with a best-so-far partial answer, and post-drain requests
// must see 503 draining.
func TestServeDrainReturnsPartial(t *testing.T) {
	srv, hs, c := newTestServer(t, Config{DrainTimeout: 300 * time.Millisecond})
	ctx := context.Background()
	sub := submitCircuit(t, c, "m", "mult8")

	type ans struct {
		q   *QueryResponse
		err error
	}
	done := make(chan ans, 1)
	go func() {
		// Tight target on the multiplier: plenty of D/W iterations to
		// be mid-flight when the drain deadline lands.
		q, err := c.Query(ctx, "m", &QueryRequest{TargetPS: 0.4 * sub.MinDelayPS})
		done <- ans{q, err}
	}()

	// Let the solve get going, then drain.
	time.Sleep(50 * time.Millisecond)
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	a := <-done
	if a.err != nil {
		t.Fatalf("drained query failed outright: %v", a.err)
	}
	// Either the solve finished inside the drain window (clean answer)
	// or it was cut at the deadline (partial with canceled error) —
	// both are graceful; a hang or a 500 is not.
	if a.q.Error != nil {
		if a.q.Error.Code != CodeCanceled && a.q.Error.Code != CodeBudgetExhausted {
			t.Fatalf("drained query error: %+v", a.q.Error)
		}
		if !a.q.Partial || a.q.Area <= 0 {
			t.Fatalf("drained query lost its partial answer: %+v", a.q)
		}
	}

	// The server no longer admits work.
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}
	resp2, err := http.Post(hs.URL+"/v1/sessions", "application/json", strings.NewReader(`{"circuit":"c17"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d", resp2.StatusCode)
	}
	// healthz stays 200: the process is alive, just not ready.
	resp3, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %d", resp3.StatusCode)
	}
}

// TestServePerRequestBudget checks the flow-work budget funnels into
// the warm session and returns partials without poisoning later
// queries.
func TestServePerRequestBudget(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	sub := submitCircuit(t, c, "b", "adder16")

	q, err := c.Query(ctx, "b", &QueryRequest{TargetPS: 0.5 * sub.MinDelayPS, FlowWorkBudget: 1})
	if err != nil {
		// No partial: acceptable only as budget_exhausted.
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeBudgetExhausted {
			t.Fatalf("starved query: %v", err)
		}
	} else if q.Error == nil || q.Error.Code != CodeBudgetExhausted || !q.Partial {
		t.Fatalf("starved query answered cleanly: %+v", q)
	}

	// A later generous query on the same session succeeds.
	q2, err := c.Query(ctx, "b", &QueryRequest{TargetPS: 0.6 * sub.MinDelayPS})
	if err != nil || q2.Error != nil {
		t.Fatalf("query after starved one: %v %+v", err, q2)
	}
}

// TestClientBackoffHonorsRetryAfter exercises the client retry loop
// against a scripted server: two 429s with Retry-After then success.
func TestClientBackoffHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gapOK atomic.Bool
	gapOK.Store(true)
	var last atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && n <= 3 {
			if time.Duration(now-prev) < time.Second {
				gapOK.Store(false)
			}
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, &ErrorBody{Code: CodeOverloaded, Message: "busy"})
			return
		}
		writeJSON(w, http.StatusOK, &StatsResponse{Sessions: 7})
	}))
	defer hs.Close()

	c := NewClient(hs.URL, hs.Client())
	c.BaseDelay = time.Millisecond // Retry-After must dominate
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 7 || calls.Load() != 3 {
		t.Fatalf("retry loop: stats=%+v calls=%d", st, calls.Load())
	}
	if !gapOK.Load() {
		t.Fatal("client retried faster than Retry-After allowed")
	}

	// Exhaustion: a server that always 429s must not spin forever.
	calls.Store(0)
	c2 := NewClient(hs.URL, hs.Client())
	c2.MaxRetries = 2
	c2.BaseDelay = time.Millisecond
	hs2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusTooManyRequests, &ErrorBody{Code: CodeOverloaded})
	}))
	defer hs2.Close()
	c2.base = hs2.URL
	if _, err := c2.Stats(context.Background()); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("always-429 server: %v", err)
	}

	// Terminal errors are NOT retried.
	hs3 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusNotFound, &ErrorBody{Code: CodeNotFound})
	}))
	defer hs3.Close()
	c3 := NewClient(hs3.URL, hs3.Client())
	calls.Store(0)
	var apiErr *APIError
	if _, err := c3.Info(context.Background(), "x"); !errors.As(err, &apiErr) || apiErr.Body.Code != CodeNotFound {
		t.Fatalf("404: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried %d times", calls.Load())
	}
}

// TestServeEvictionRebuild fills a tiny memory budget with sessions,
// checks LRU eviction kicks in, and that a re-submitted evicted
// session answers bit-identically to its pre-eviction cold self.
func TestServeEvictionRebuild(t *testing.T) {
	// mult8 sessions weigh ~hundreds of KB; a low watermark forces
	// eviction after a handful.
	srv, _, c := newTestServer(t, Config{
		MemHighBytes: 1 << 20,
		MemLowBytes:  1 << 19,
	})
	ctx := context.Background()

	sub, err := c.Submit(ctx, &SubmitRequest{ID: "victim", Circuit: "adder16"})
	if err != nil {
		t.Fatal(err)
	}
	T := 0.6 * sub.MinDelayPS
	ref, err := c.Query(ctx, "victim", &QueryRequest{TargetPS: T, WantSizes: true})
	if err != nil || ref.Error != nil {
		t.Fatalf("reference query: %v %+v", err, ref)
	}

	// Pile on LRU-fresher sessions until the victim is evicted.
	evicted := false
	for i := 0; i < 12 && !evicted; i++ {
		id := fmt.Sprintf("filler-%d", i)
		if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: "mult8"}); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
		if _, err := c.Query(ctx, id, &QueryRequest{TargetPS: 0.8 * sub.MinDelayPS * 40}); err != nil {
			// Filler answers don't matter; only the memory pressure does.
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("filler query %d: %v", i, err)
			}
		}
		if _, err := c.Info(ctx, "victim"); err != nil {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("victim never evicted (mem=%d, evictions=%d)", func() int64 {
			st, _ := c.Stats(ctx)
			return st.MemBytes
		}(), srv.evictions.Load())
	}
	if srv.evictions.Load() == 0 {
		t.Fatal("eviction counter did not move")
	}

	// Re-submit and replay: the first query of the rebuilt session is
	// cold, so it must match the original cold answer bit-for-bit.
	sub2, err := c.Submit(ctx, &SubmitRequest{ID: "victim", Circuit: "adder16"})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.MinDelayPS != sub.MinDelayPS {
		t.Fatalf("rebuilt Dmin drifted: %.17g vs %.17g", sub2.MinDelayPS, sub.MinDelayPS)
	}
	re, err := c.Query(ctx, "victim", &QueryRequest{TargetPS: T, WantSizes: true})
	if err != nil || re.Error != nil {
		t.Fatalf("rebuilt query: %v %+v", err, re)
	}
	if re.Area != ref.Area || re.CPPS != ref.CPPS || re.Iterations != ref.Iterations {
		t.Fatalf("rebuilt session diverged: %+v vs %+v", re, ref)
	}
	if len(re.Sizes) != len(ref.Sizes) {
		t.Fatalf("size vectors differ in length")
	}
	for i := range re.Sizes {
		if re.Sizes[i] != ref.Sizes[i] {
			t.Fatalf("rebuilt sizes diverge at %d: %.17g vs %.17g", i, re.Sizes[i], ref.Sizes[i])
		}
	}
}
