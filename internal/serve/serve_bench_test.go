package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchPost drives the handler directly (no sockets): the measured
// path is decode → admission → worker solve → encode, which is what
// the alloc-regression gate protects.
func benchPost(b *testing.B, h http.Handler, path, body string) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: %d %s", path, rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServeSubmit measures the cold path: session creation with a
// full problem build per request (each iteration submits a fresh id).
func BenchmarkServeSubmit(b *testing.B) {
	srv, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"id":"bench-%d","circuit":"adder16"}`, i)
		benchPost(b, h, "/v1/sessions", body)
	}
}

// BenchmarkServeWarmQuery measures the warm path the daemon exists
// for: repeated sizing queries against one live session, served by
// incremental re-flow.  Two alternating targets keep the changed-arc
// sets realistic (identical consecutive targets would short-circuit
// the cost diff).
func BenchmarkServeWarmQuery(b *testing.B) {
	srv, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	rec := benchPost(b, h, "/v1/sessions", `{"id":"warm","circuit":"adder16"}`)
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		b.Fatal(err)
	}
	targets := [2]string{
		fmt.Sprintf(`{"target_ps": %g}`, 0.6*sub.MinDelayPS),
		fmt.Sprintf(`{"target_ps": %g}`, 0.55*sub.MinDelayPS),
	}
	// Warm both targets up front so every timed iteration is a pure
	// warm re-query.
	benchPost(b, h, "/v1/sessions/warm/query", targets[0])
	benchPost(b, h, "/v1/sessions/warm/query", targets[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, "/v1/sessions/warm/query", targets[i%2])
	}
}

// BenchmarkServeWarmSeededQuery measures the trust-region path: small
// refinement queries (±0.3% target moves) answered from the previous
// converged sizing instead of a TILOS re-seed.  The CI gate on this
// benchmark is the tentpole's perf contract.
func BenchmarkServeWarmSeededQuery(b *testing.B) {
	srv, err := New(Config{TrustRegion: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	rec := benchPost(b, h, "/v1/sessions", `{"id":"seed","circuit":"adder16"}`)
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		b.Fatal(err)
	}
	targets := [2]string{
		fmt.Sprintf(`{"target_ps": %g}`, 0.600*sub.MinDelayPS),
		fmt.Sprintf(`{"target_ps": %g}`, 0.604*sub.MinDelayPS),
	}
	// The anchor solve plus one of each target: every timed iteration
	// is inside the trust region of its predecessor.
	benchPost(b, h, "/v1/sessions/seed/query", targets[0])
	benchPost(b, h, "/v1/sessions/seed/query", targets[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := benchPost(b, h, "/v1/sessions/seed/query", targets[i%2])
		if i == 0 {
			var q QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
				b.Fatal(err)
			}
			if q.Seed != "warm" {
				b.Fatalf("benchmark not exercising the seeded path: seed=%q", q.Seed)
			}
		}
	}
}
