package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/fault"
)

// soakEntry is one accepted state-advancing request, recorded for twin
// replay: a clean query (possibly carrying a sticky area-weight batch)
// or a value-only edit batch (edits non-nil; the other fields unused).
type soakEntry struct {
	seq     int
	target  float64
	weights []AreaWeight
	area    float64
	cp      float64
	iters   int
	sizes   []float64
	edits   []EditOp
}

// soakLog accumulates, per (session id, submit epoch), the contiguous
// prefix of clean completed queries in generation 0 of that epoch.
// Recording for an epoch stops at the first non-clean outcome (abort,
// partial, cancellation, engine failure): from there on the warm state
// has advanced by a partially-completed query, so later answers are no
// longer a function of the recorded sequence alone.  A re-submit opens
// a new epoch and recording resumes.
type soakLog struct {
	mu      sync.Mutex
	entries map[string][]soakEntry // key: id@epoch
}

func (l *soakLog) add(key string, e soakEntry) {
	l.mu.Lock()
	l.entries[key] = append(l.entries[key], e)
	l.mu.Unlock()
}

// TestServeSoak is the ISSUE's acceptance drill: N concurrent clients
// × M sessions under -race, with mid-request cancellations, per-call
// budget aborts, deletes, eviction under a small memory budget, and
// one injected engine panic.  The server must stay up through all of
// it, the quarantined session must rebuild, and every recorded clean
// query must be bit-identical to a serial twin session replaying the
// same sequence.
func TestServeSoak(t *testing.T) {
	// Size the memory watermark off a real measurement so eviction
	// pressure is guaranteed regardless of platform word sizes: the
	// budget fits only a few of the soak's sessions.
	probe, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := probe.buildCircuit(SubmitRequest{Circuit: "adder16"})
	if err != nil {
		t.Fatal(err)
	}
	eco, err := dag.NewEco(ckt, probe.model)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := core.NewEcoSession(eco, core.Options{FlowEngine: "ssp", Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	oneSession := cs.MemoryBytes()
	cs.Close()

	srv, err := New(Config{
		NoEngineFallback: true, // surface the injected panic to the quarantine path
		MaxPending:       16,
		QueueDepth:       2,
		MemHighBytes:     4 * oneSession,
		MemLowBytes:      3 * oneSession,
		DrainTimeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const (
		clients    = 3
		perClient  = 2  // sessions per client (not shared across clients)
		opsPerSess = 12 // queries per session per soak pass
	)
	circuits := []string{"adder16", "adder8", "c17"}
	specs := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75}

	log := &soakLog{entries: make(map[string][]soakEntry)}
	var circuitOf sync.Map // id -> circuit name, for twin rebuilds

	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			c := NewClient(hs.URL, hs.Client())
			c.BaseDelay = 5 * time.Millisecond
			ctx := context.Background()

			type sessState struct {
				id        string
				circuit   string
				epoch     int
				recording bool
				dmin      float64
				gates     int
			}
			sessions := make([]*sessState, perClient)
			submit := func(s *sessState) bool {
				sub, err := c.Submit(ctx, &SubmitRequest{ID: s.id, Circuit: s.circuit})
				if err != nil {
					t.Errorf("client %d submit %s: %v", ci, s.id, err)
					return false
				}
				s.epoch++
				s.recording = true
				s.dmin = sub.MinDelayPS
				s.gates = sub.NumGates
				circuitOf.Store(s.id, s.circuit)
				return true
			}
			for si := range sessions {
				s := &sessState{
					id:      fmt.Sprintf("c%d-s%d", ci, si),
					circuit: circuits[(ci*perClient+si)%len(circuits)],
				}
				if !submit(s) {
					return
				}
				sessions[si] = s
			}

			for op := 0; op < opsPerSess*perClient; op++ {
				s := sessions[rng.Intn(perClient)]
				roll := rng.Float64()
				switch {
				case roll < 0.06:
					// Delete, then immediately re-submit (new epoch).
					if err := c.Delete(ctx, s.id); err != nil {
						var apiErr *APIError
						if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeNotFound {
							t.Errorf("client %d delete %s: %v", ci, s.id, err)
						}
					}
					if !submit(s) {
						return
					}
				case roll < 0.16:
					// Mid-request cancellation: a deadline so short the
					// solve is aborted in flight.  Whatever happened
					// server-side, the state may have advanced — stop
					// recording this epoch.
					qctx, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
					_, _ = c.Query(qctx, s.id, &QueryRequest{TargetPS: 0.5 * s.dmin})
					cancel()
					s.recording = false
				case roll < 0.26:
					// Starved flow-work budget: a partial answer.
					q, err := c.Query(ctx, s.id, &QueryRequest{TargetPS: 0.5 * s.dmin, FlowWorkBudget: 1})
					if err == nil && q.Error == nil {
						t.Errorf("client %d: 1-op budget completed cleanly", ci)
					}
					s.recording = false
				case roll < 0.36:
					// Value-only netlist edit: session history the twin
					// must replay in order, interleaved with the queries.
					ops := []EditOp{{Op: "load", Gate: rng.Intn(s.gates), LoadFF: 2 * rng.Float64()}}
					er, err := c.Edit(ctx, s.id, &EditRequest{Edits: ops})
					if err != nil {
						var apiErr *APIError
						if errors.As(err, &apiErr) && apiErr.Body.Code == CodeNotFound {
							if !submit(s) {
								return
							}
							continue
						}
						t.Errorf("client %d edit %s: %v", ci, s.id, err)
						continue
					}
					if s.recording && er.Generation == 0 {
						log.add(fmt.Sprintf("%s@%d", s.id, s.epoch), soakEntry{edits: ops})
					} else if er.Generation != 0 {
						s.recording = false
					}
				default:
					spec := specs[rng.Intn(len(specs))]
					// A third of the queries carry sticky area-weight
					// batches — state a quarantine rebuild must replay.
					var aws []AreaWeight
					if rng.Float64() < 0.35 {
						for k := 1 + rng.Intn(2); k > 0; k-- {
							aws = append(aws, AreaWeight{Gate: rng.Intn(s.gates), Weight: 0.5 + 2.5*rng.Float64()})
						}
					}
					q, err := c.Query(ctx, s.id, &QueryRequest{TargetPS: spec * s.dmin, WantSizes: true, AreaWeights: aws})
					if err != nil {
						var apiErr *APIError
						if errors.As(err, &apiErr) && apiErr.Body.Code == CodeNotFound {
							// Evicted under memory pressure: rebuild.
							if !submit(s) {
								return
							}
							continue
						}
						if errors.As(err, &apiErr) && apiErr.Body.Code == CodeInfeasible {
							// Accumulated load edits pushed this target out
							// of reach; the failed attempt still applied
							// the sticky weights, so stop recording.
							s.recording = false
							continue
						}
						t.Errorf("client %d query %s: %v", ci, s.id, err)
						continue
					}
					if q.Error != nil || q.Partial {
						s.recording = false
						continue
					}
					if q.CPPS > spec*s.dmin*(1+1e-9) {
						t.Errorf("client %d: %s answer misses target: %.6g > %.6g", ci, s.id, q.CPPS, spec*s.dmin)
					}
					if s.recording && q.Generation == 0 {
						log.add(fmt.Sprintf("%s@%d", s.id, s.epoch), soakEntry{
							seq: q.Seq, target: spec * s.dmin, weights: aws,
							area: q.Area, cp: q.CPPS, iters: q.Iterations, sizes: q.Sizes,
						})
					} else if q.Generation != 0 {
						s.recording = false
					}
				}
			}
		}(ci)
	}

	// The fault drill runs beside the soak traffic: a dedicated
	// session on the fault engine takes an injected panic, quarantines,
	// and rebuilds — while every other session keeps answering.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		c := NewClient(hs.URL, hs.Client())
		submit := func() *SubmitResponse {
			sub, err := c.Submit(ctx, &SubmitRequest{ID: "drill", Circuit: "adder16", FlowEngine: "fault"})
			if err != nil {
				t.Errorf("drill submit: %v", err)
				return nil
			}
			return sub
		}
		// The drill session can be evicted between any two of its HTTP
		// calls (it idles while other sessions pile on memory), so
		// every step resubmits on 404 and tries again.
		query := func(target float64) (*QueryResponse, error) {
			for attempt := 0; ; attempt++ {
				q, err := c.Query(ctx, "drill", &QueryRequest{TargetPS: target})
				var apiErr *APIError
				if errors.As(err, &apiErr) && apiErr.Body.Code == CodeNotFound && attempt < 10 {
					if submit() == nil {
						return nil, err
					}
					continue
				}
				return q, err
			}
		}
		sub := submit()
		if sub == nil {
			return
		}
		ref, err := query(0.6 * sub.MinDelayPS)
		if err != nil || ref.Error != nil {
			t.Errorf("drill reference query: %v %+v", err, ref)
			return
		}
		// Keep injecting until the panic lands on the drill session (an
		// eviction between arming and querying rebuilds it cold and the
		// panic may fire on a solve that answers 404 instead).
		quarantined := false
		for attempt := 0; attempt < 10 && !quarantined; attempt++ {
			fault.SetPlan(fault.Plan{Mode: fault.Panic, Op: 20})
			q, err := query(0.5 * sub.MinDelayPS)
			fault.Reset()
			if err != nil {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Body.Code != CodeEngineFailed {
					t.Errorf("drill panic surfaced as: %v", err)
					return
				}
				quarantined = true
			} else if q.Error != nil && q.Error.Code == CodeEngineFailed {
				quarantined = true
			}
		}
		if !quarantined {
			t.Error("drill never quarantined its session")
			return
		}
		// The rebuilt generation's first query is cold, so it answers
		// the reference target exactly like the original cold build.
		q2, err := query(0.6 * sub.MinDelayPS)
		if err != nil || q2.Error != nil {
			t.Errorf("drill post-rebuild query: %v %+v", err, q2)
			return
		}
		if q2.Area != ref.Area || q2.CPPS != ref.CPPS || q2.Iterations != ref.Iterations {
			t.Errorf("drill rebuilt generation diverged: %+v vs %+v", q2, ref)
		}
	}()

	wg.Wait()
	fault.Reset()

	// The process survived everything; check the drills actually ran.
	c := NewClient(hs.URL, hs.Client())
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantines < 1 {
		t.Error("soak never quarantined a session")
	}
	if st.Evictions < 1 {
		t.Errorf("soak never evicted under MemHigh=%d (mem=%d)", 4*oneSession, st.MemBytes)
	}
	if st.Queries < clients*perClient {
		t.Errorf("suspiciously few queries served: %d", st.Queries)
	}
	if st.MemBytes > 4*oneSession+oneSession/2 {
		t.Errorf("resting memory %d above watermark %d", st.MemBytes, 4*oneSession)
	}

	// Twin replay: every recorded epoch's clean-query prefix must be
	// bit-identical on a fresh serial session replaying it.
	verified := 0
	for key, entries := range log.entries {
		at := strings.LastIndexByte(key, '@')
		if at < 0 {
			t.Fatalf("bad key %q", key)
		}
		id := key[:at]
		cname, ok := circuitOf.Load(id)
		if !ok {
			t.Fatalf("no circuit recorded for %q", id)
		}
		tc, err := srv.buildCircuit(SubmitRequest{Circuit: cname.(string)})
		if err != nil {
			t.Fatal(err)
		}
		teco, err := dag.NewEco(tc, srv.model)
		if err != nil {
			t.Fatal(err)
		}
		twin, err := core.NewEcoSession(teco, core.Options{FlowEngine: "ssp", Parallelism: 1, NoEngineFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		qseq := 0
		for _, e := range entries {
			if e.edits != nil {
				batch := make([]dag.Edit, len(e.edits))
				for k, op := range e.edits {
					batch[k] = dag.Edit{Op: dag.EditLoad, Gate: op.Gate, LoadFF: op.LoadFF}
				}
				if _, err := twin.ApplyEdits(batch); err != nil {
					t.Fatalf("%s twin edit replay: %v", key, err)
				}
				continue
			}
			qseq++
			if e.seq != qseq {
				t.Fatalf("%s: recorded seqs not a contiguous prefix: %d at %d", key, e.seq, qseq)
			}
			if len(e.weights) > 0 {
				gates := make([]int, len(e.weights))
				ws := make([]float64, len(e.weights))
				for k, aw := range e.weights {
					gates[k], ws[k] = aw.Gate, aw.Weight
				}
				if err := twin.SetAreaWeights(gates, ws); err != nil {
					t.Fatalf("%s twin weight replay: %v", key, err)
				}
			}
			res, err := twin.Resize(context.Background(), e.target, core.Budgets{})
			if err != nil {
				t.Fatalf("%s twin seq %d: %v", key, e.seq, err)
			}
			if res.Area != e.area || res.CP != e.cp || res.Iterations != e.iters {
				t.Fatalf("%s seq %d diverged from twin: server (%.17g, %.17g, %d) vs twin (%.17g, %.17g, %d)",
					key, e.seq, e.area, e.cp, e.iters, res.Area, res.CP, res.Iterations)
			}
			for g := range e.sizes {
				if e.sizes[g] != res.X[g] {
					t.Fatalf("%s seq %d size[%d] diverged: %.17g vs %.17g", key, e.seq, g, e.sizes[g], res.X[g])
				}
			}
			verified++
		}
		twin.Close()
	}
	if verified < clients*perClient {
		t.Errorf("only %d clean queries twin-verified — soak mix too hostile", verified)
	}
	t.Logf("soak: %d queries served, %d twin-verified bit-identical, %d evictions, %d quarantines, %d rebuilds",
		st.Queries, verified, st.Evictions, st.Quarantines, st.Rebuilds)

	// Graceful shutdown with traffic done: drains cleanly.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}
