package serve

import (
	"context"
	"errors"
	"testing"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/fault"
)

// TestServeQuarantineReplayMixedHistory is the regression for the
// serve layer's rebuild state loss: the replayable session history
// holds sticky what-if weight batches interleaved with netlist edits —
// including a structural gate-set batch, which compacts the prefix
// into a snapshot — and a quarantine rebuild must reproduce all of it.
// The oracle is a never-quarantined serial twin built the way the
// rebuild is specified to behave: a fresh session replaying the
// accepted state mutations in order (edit, weights, edit, weights)
// with no intervening solves, then queried at the same target.  The
// rebuilt generation's first answer must be bit-identical to it.
func TestServeQuarantineReplayMixedHistory(t *testing.T) {
	srv, _, c := newTestServer(t, Config{NoEngineFallback: true})
	ctx := context.Background()

	sub, err := c.Submit(ctx, &SubmitRequest{ID: "mx", Circuit: "adder16", FlowEngine: "fault"})
	if err != nil {
		t.Fatal(err)
	}
	fault.Reset()

	T1, T2, T3 := 0.6*sub.MinDelayPS, 0.65*sub.MinDelayPS, 0.62*sub.MinDelayPS
	w1g, w1w := []int{5}, []float64{5}
	w2g, w2w := []int{9, 17}, []float64{4, 3}

	// The served history: value edit, weighted query, structural
	// gate-set edit (snapshot compaction; by the structural-rebuild
	// contract it also resets the sticky w1), weighted query.
	if _, err := c.Edit(ctx, "mx", &EditRequest{Edits: []EditOp{{Op: "load", Gate: 3, LoadFF: 30}}}); err != nil {
		t.Fatal(err)
	}
	if q, err := c.Query(ctx, "mx", &QueryRequest{TargetPS: T1, AreaWeights: []AreaWeight{{Gate: 5, Weight: 5}}}); err != nil || q.Error != nil {
		t.Fatalf("weighted query: %v %+v", err, q)
	}
	er, err := c.Edit(ctx, "mx", &EditRequest{Edits: []EditOp{
		{Op: "add", Name: "mxinv", Cell: "INV", Inputs: []string{"a0"}, PO: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !er.Structural || !er.GateSetChanged || er.NumGates != sub.NumGates+1 {
		t.Fatalf("gate-set edit misreported: %+v", er)
	}
	if q, err := c.Query(ctx, "mx", &QueryRequest{TargetPS: T2, AreaWeights: []AreaWeight{{Gate: 9, Weight: 4}, {Gate: 17, Weight: 3}}}); err != nil || q.Error != nil {
		t.Fatalf("post-snapshot query: %v %+v", err, q)
	}

	// Crash the next solve; the session quarantines.
	fault.SetPlan(fault.Plan{Mode: fault.Panic, Op: 20})
	defer fault.Reset()
	_, _ = c.Query(ctx, "mx", &QueryRequest{TargetPS: 0.5 * sub.MinDelayPS})
	fault.Reset()
	if info, _ := c.Info(ctx, "mx"); !info.Quarantined {
		t.Fatal("session not quarantined")
	}

	// The rebuild starts from the gate-set snapshot and replays the w2
	// batch recorded after it.
	q3, err := c.Query(ctx, "mx", &QueryRequest{TargetPS: T3, WantSizes: true})
	if err != nil || q3.Error != nil {
		t.Fatalf("post-rebuild query: %v %+v", err, q3)
	}
	if q3.Generation != 1 || q3.Seq != 1 {
		t.Fatalf("generation bookkeeping: %+v", q3)
	}

	// Serial twin: the uncompacted replay (pristine netlist, then e1,
	// w1, e2, w2 in arrival order).  Bit-identity here proves both the
	// weight-ledger replay and the snapshot compaction exact.
	mkTwin := func(withW2 bool) *core.Result {
		t.Helper()
		tc, err := srv.buildCircuit(SubmitRequest{Circuit: "adder16"})
		if err != nil {
			t.Fatal(err)
		}
		a0, ok := tc.Lookup("a0")
		if !ok {
			t.Fatal("no PI a0")
		}
		teco, err := dag.NewEco(tc, srv.model)
		if err != nil {
			t.Fatal(err)
		}
		twin, err := core.NewEcoSession(teco, core.Options{FlowEngine: "fault", Parallelism: 1, NoEngineFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		defer twin.Close()
		if _, err := twin.ApplyEdits([]dag.Edit{{Op: dag.EditLoad, Gate: 3, LoadFF: 30}}); err != nil {
			t.Fatal(err)
		}
		if err := twin.SetAreaWeights(w1g, w1w); err != nil {
			t.Fatal(err)
		}
		if _, err := twin.ApplyEdits([]dag.Edit{{Op: dag.EditAdd, Name: "mxinv", Cell: cell.Inv, Ins: []circuit.Ref{a0}, PO: true}}); err != nil {
			t.Fatal(err)
		}
		if withW2 {
			if err := twin.SetAreaWeights(w2g, w2w); err != nil {
				t.Fatal(err)
			}
		}
		res, err := twin.Resize(ctx, T3, core.Budgets{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mkTwin(true)
	if q3.Area != ref.Area || q3.CPPS != ref.CP || q3.Iterations != ref.Iterations {
		t.Fatalf("rebuilt session diverged from serial twin: (%.17g, %.17g, %d) vs (%.17g, %.17g, %d)",
			q3.Area, q3.CPPS, q3.Iterations, ref.Area, ref.CP, ref.Iterations)
	}
	for i := range q3.Sizes {
		if q3.Sizes[i] != ref.X[i] {
			t.Fatalf("size[%d] diverged after rebuild: %.17g vs %.17g", i, q3.Sizes[i], ref.X[i])
		}
	}
	// The weight ledger must be load-bearing: the same twin minus the
	// post-snapshot weights answers differently, so the agreement above
	// is not vacuous (the old code dropped exactly those weights on
	// rebuild).
	ctl := mkTwin(false)
	if ref.Area == ctl.Area && ref.Iterations == ctl.Iterations {
		t.Fatal("weight replay not load-bearing: answers match the weight-free control")
	}
	// Replay must not re-count the batches in the server stats.
	if got := srv.edits.Load(); got != 2 {
		t.Fatalf("edit counter %d after rebuild, want 2", got)
	}
}

// TestServeEditGateSet drives "add" and "remove" through the wire
// format: in-batch name resolution (an add referenced before it exists
// in the resident netlist), index shifting after a mid-batch remove,
// rejection atomicity, and the gate-count bookkeeping.
func TestServeEditGateSet(t *testing.T) {
	srv, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	sub := submitCircuit(t, c, "gs", "c17")

	// B1: insert an inverter buffering G11 into G19's pin 0.  The
	// rewire names "xinv" before the gate exists in the resident
	// netlist — resolution must track the batch.
	er, err := c.Edit(ctx, "gs", &EditRequest{Edits: []EditOp{
		{Op: "add", Name: "xinv", Cell: "INV", Inputs: []string{"G11"}},
		{Op: "rewire", Gate: 3, Pin: 0, Driver: "xinv"},
	}})
	if err != nil {
		t.Fatalf("add batch: %v", err)
	}
	if !er.Structural || !er.GateSetChanged || er.NumGates != sub.NumGates+1 {
		t.Fatalf("add batch misreported: %+v", er)
	}
	T := 0.9 * er.CPPS
	q1, err := c.Query(ctx, "gs", &QueryRequest{TargetPS: T, WantSizes: true})
	if err != nil || q1.Error != nil {
		t.Fatalf("post-add query: %v %+v", err, q1)
	}

	// Rejected batches: every one answers 400 and leaves no trace.
	var apiErr *APIError
	for _, bad := range []EditRequest{
		{Edits: []EditOp{{Op: "remove", Gate: 1}}},                                                  // G11 is live (drives G16)
		{Edits: []EditOp{{Op: "remove", Gate: 99}}},                                                 // out of range
		{Edits: []EditOp{{Op: "add", Name: "y", Cell: "INV", Inputs: []string{"no_such"}}}},         // unknown driver
		{Edits: []EditOp{{Op: "add", Name: "xinv", Cell: "INV", Inputs: []string{"G1"}, PO: true}}}, // duplicate name
		{Edits: []EditOp{{Op: "add", Name: "dangle", Cell: "INV", Inputs: []string{"G1"}}}},         // drives nothing
		{Edits: []EditOp{{Op: "add", Name: "y", Cell: "NO_SUCH", Inputs: []string{"G1"}, PO: true}}},
		// A removed gate's name must stop resolving for the rest of the
		// batch (a pre-batch ref would carry a stale index).
		{Edits: []EditOp{
			{Op: "rewire", Gate: 3, Pin: 0, Driver: "G11"},
			{Op: "remove", Gate: 6},
			{Op: "rewire", Gate: 3, Pin: 0, Driver: "xinv"},
		}},
	} {
		if _, err := c.Edit(ctx, "gs", &bad); !errors.As(err, &apiErr) || apiErr.Body.Code != CodeBadRequest {
			t.Fatalf("bad gate-set batch %+v: %v", bad, err)
		}
	}
	// Atomicity witness: with the trust region off a query is a pure
	// function of the netlist state, so the same target answers
	// bit-identically to the pre-rejection reference.
	q2, err := c.Query(ctx, "gs", &QueryRequest{TargetPS: T, WantSizes: true})
	if err != nil || q2.Error != nil {
		t.Fatalf("post-rejection query: %v %+v", err, q2)
	}
	if q2.Area != q1.Area || q2.CPPS != q1.CPPS || q2.Iterations != q1.Iterations {
		t.Fatalf("rejected batches perturbed the session: %+v vs %+v", q2, q1)
	}

	// B2: retarget G22's pin 0 onto xinv, which kills G10; remove it
	// (index 0 — every other index shifts down) and land a load on
	// xinv's post-shift index in the same batch.
	er2, err := c.Edit(ctx, "gs", &EditRequest{Edits: []EditOp{
		{Op: "rewire", Gate: 4, Pin: 0, Driver: "xinv"},
		{Op: "remove", Gate: 0},
		{Op: "load", Gate: 5, LoadFF: 2},
	}})
	if err != nil {
		t.Fatalf("remove batch: %v", err)
	}
	if !er2.GateSetChanged || er2.NumGates != sub.NumGates {
		t.Fatalf("remove batch misreported: %+v", er2)
	}

	// B3: detach xinv from both consumers (post-shift indices: G19=2,
	// G22=3, xinv=5) and remove it.
	er3, err := c.Edit(ctx, "gs", &EditRequest{Edits: []EditOp{
		{Op: "rewire", Gate: 3, Pin: 0, Driver: "G11"},
		{Op: "rewire", Gate: 2, Pin: 0, Driver: "G11"},
		{Op: "remove", Gate: 5},
	}})
	if err != nil {
		t.Fatalf("detach batch: %v", err)
	}
	if !er3.GateSetChanged || er3.NumGates != sub.NumGates-1 {
		t.Fatalf("detach batch misreported: %+v", er3)
	}
	q4, err := c.Query(ctx, "gs", &QueryRequest{TargetPS: 0.9 * er3.CPPS})
	if err != nil || q4.Error != nil {
		t.Fatalf("final query: %v %+v", err, q4)
	}
	if q4.CPPS > 0.9*er3.CPPS*(1+1e-9) {
		t.Fatalf("final answer misses target: %.6g > %.6g", q4.CPPS, 0.9*er3.CPPS)
	}

	info, err := c.Info(ctx, "gs")
	if err != nil {
		t.Fatal(err)
	}
	if info.Edits != 3 || info.NumGates != sub.NumGates-1 {
		t.Fatalf("info after gate-set edits: %+v", info)
	}
	if srv.edits.Load() != 3 {
		t.Fatalf("server edit counter %d, want 3 (rejected batches must not count)", srv.edits.Load())
	}
}

// TestServeEvictionHistoryGrowth: the replayable history ledger is
// session state the watermarks must see.  A session whose solver
// footprint fits comfortably under MemHigh must still be evicted when
// its accumulated edit history alone crosses the watermark (the old
// accounting charged only the solver state and the retained bench
// source, so history grew unbounded and invisibly).
func TestServeEvictionHistoryGrowth(t *testing.T) {
	// Measure one warm c17 session so the watermark can be set just
	// above the solver state: only serve-layer history can cross it.
	probe, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := probe.buildCircuit(SubmitRequest{Circuit: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	eco, err := dag.NewEco(ckt, probe.model)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := core.NewEcoSession(eco, core.Options{FlowEngine: "ssp", Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	one := cs.MemoryBytes()
	cs.Close()

	srv, _, c := newTestServer(t, Config{
		MemHighBytes: one + 24<<10,
		MemLowBytes:  one + 12<<10,
	})
	ctx := context.Background()
	submitCircuit(t, c, "hist", "c17")

	evicted := false
	var lastCore int64
	for i := 0; i < 400 && !evicted; i++ {
		er, err := c.Edit(ctx, "hist", &EditRequest{Edits: []EditOp{
			{Op: "load", Gate: i % 6, LoadFF: float64(i%7) / 2},
		}})
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Body.Code == CodeNotFound {
				evicted = true
				break
			}
			t.Fatalf("edit %d: %v", i, err)
		}
		lastCore = er.MemBytes
	}
	if !evicted {
		st, _ := c.Stats(ctx)
		t.Fatalf("history growth never crossed the watermark (mem=%d high=%d)", st.MemBytes, one+24<<10)
	}
	// The solver footprint stayed put — the history, not the core
	// state, is what crossed the watermark.
	if lastCore > one+12<<10 {
		t.Fatalf("core footprint grew to %d (one session = %d): the eviction was not history-driven", lastCore, one)
	}
	if srv.evictions.Load() == 0 {
		t.Fatal("eviction counter did not move")
	}
}
