package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client talks to a minflod server with bounded retries: 429
// (overloaded) and 503 (draining/starting) responses — plus transport
// errors — are retried with exponential backoff and jitter, honoring
// the server's Retry-After hint when one is present.  Terminal
// answers (2xx, 4xx other than 429, 500) pass straight through.
type Client struct {
	base string
	http *http.Client

	// MaxRetries bounds retry attempts per call (default 6).
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 50ms); each
	// retry doubles it up to MaxDelay (default 2s) and adds up to 50%
	// jitter.  A Retry-After header overrides the computed delay when
	// it is longer.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:7317").  hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:       base,
		http:       hc,
		MaxRetries: 6,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// APIError is a terminal error answer from the server.
type APIError struct {
	Status int
	Body   ErrorBody
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %s (%d): %s", e.Body.Code, e.Status, e.Body.Message)
}

// ErrRetriesExhausted wraps the last retriable failure after
// MaxRetries attempts.
var ErrRetriesExhausted = errors.New("serve: retries exhausted")

// Submit creates (or replaces) a session.
func (c *Client) Submit(ctx context.Context, req *SubmitRequest) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.call(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Query asks a session for a sizing.  A partial answer (the run was
// cut short but a best-so-far sizing exists) returns resp.Partial set
// and resp.Error describing the stop — with a nil Go error.
func (c *Client) Query(ctx context.Context, id string, req *QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	path := "/v1/sessions/" + id + "/query"
	if err := c.call(ctx, http.MethodPost, path, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Edit applies a netlist edit batch to the session atomically: a
// non-nil error means the whole batch was rejected and the session is
// bit-identical to never having received it.
func (c *Client) Edit(ctx context.Context, id string, req *EditRequest) (*EditResponse, error) {
	var resp EditResponse
	path := "/v1/sessions/" + id + "/edit"
	if err := c.call(ctx, http.MethodPost, path, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Info fetches session metadata.
func (c *Client) Info(ctx context.Context, id string) (*SessionInfo, error) {
	var resp SessionInfo
	if err := c.call(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delete evicts a session.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Stats fetches server counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.call(ctx, http.MethodGet, "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call runs one logical request through the retry loop.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, hint, err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err() // caller gave up; don't spin
		}
		if status != 0 && !retriableStatus(status) {
			return err // terminal answer (404, 422, 500, decode failure)
		}
		lastErr = err
		if attempt >= c.MaxRetries {
			return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, attempt+1, lastErr)
		}
		d := c.backoff(attempt)
		if hint > d {
			d = hint
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// once performs a single HTTP exchange.  For error statuses it decodes
// the envelope and leaves it in the returned error (via the caller's
// lastErr); retriable statuses (429/503) return with err set so the
// loop records the reason.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (status int, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, 0, err // transport error: retriable
	}
	defer resp.Body.Close()

	retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode >= 400 {
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		apiErr := &APIError{Status: resp.StatusCode, Body: eb}
		return resp.StatusCode, retryAfter, apiErr
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("serve: decode response: %w", derr)
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// parseRetryAfter understands both RFC 9110 forms of the header:
// delay-seconds ("3") and an HTTP-date ("Fri, 08 Aug 2026 09:00:00
// GMT").  Unparseable or past values yield 0 (fall back to backoff);
// minflod itself sends delay-seconds, but proxies in front of it
// commonly rewrite the header to a date.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func retriableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable || status == 0
}

// backoff computes attempt n's delay: BaseDelay·2ⁿ capped at
// MaxDelay, plus up to 50% jitter so synchronized clients desynchronize.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.BaseDelay << uint(attempt)
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + j
}
