package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"
)

// TestServeLatencyReport measures the serving latency distributions
// quoted in EXPERIMENTS.md ("Serving").  It is a measurement, not an
// assertion — run it explicitly with:
//
//	MINFLOD_LATENCY=1 go test -run TestServeLatencyReport -v ./internal/serve
//
// Single client, serial requests (Parallelism 1, MaxInFlight 1): the
// honest single-core numbers, no pipelining flattery.  The warm and
// cold columns answer the identical query mix (alternating 0.6/0.55
// ·Dmin targets) so the comparison isolates what warm state buys.
func TestServeLatencyReport(t *testing.T) {
	if os.Getenv("MINFLOD_LATENCY") == "" {
		t.Skip("set MINFLOD_LATENCY=1 to run the latency measurement")
	}
	srv, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL, hs.Client())
	ctx := context.Background()

	report := func(label string, lat []time.Duration) time.Duration {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		qps := float64(len(lat)) / sum.Seconds()
		p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
		fmt.Printf("%-34s n=%3d  qps=%7.1f  p50=%8.2fms  p99=%8.2fms\n",
			label, len(lat), qps,
			float64(p(0.50).Microseconds())/1000, float64(p(0.99).Microseconds())/1000)
		return p(0.50)
	}

	for _, circuit := range []string{"adder16", "mult8"} {
		sub, err := c.Submit(ctx, &SubmitRequest{ID: "probe-" + circuit, Circuit: circuit})
		if err != nil {
			t.Fatal(err)
		}
		specs := [2]float64{0.6, 0.55}

		// Submit only: session creation (parse, problem build, STA) —
		// the fixed cost a session amortizes over its queries.
		const nSubmit = 100
		lat := make([]time.Duration, 0, nSubmit)
		for i := 0; i < nSubmit; i++ {
			id := fmt.Sprintf("cold-%d", i)
			t0 := time.Now()
			if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: circuit}); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
			if err := c.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		report("submit only        ("+circuit+")", lat)

		// Cold submit+query: a fresh session for every ask.
		const nCold = 40
		lat = lat[:0]
		for i := 0; i < nCold; i++ {
			id := fmt.Sprintf("coldq-%d", i)
			t0 := time.Now()
			if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: circuit}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Query(ctx, id, &QueryRequest{TargetPS: specs[i%2] * sub.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
			if err := c.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		report("cold submit+query  ("+circuit+")", lat)

		// Warm queries: one live session, same target mix.
		for _, s := range specs {
			if _, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: s * sub.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
		}
		const nWarm = 40
		lat = lat[:0]
		for i := 0; i < nWarm; i++ {
			t0 := time.Now()
			q, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: specs[i%2] * sub.MinDelayPS})
			if err != nil || q.Error != nil {
				t.Fatalf("warm query %d: %v %+v", i, err, q)
			}
			lat = append(lat, time.Since(t0))
		}
		report("warm query         ("+circuit+")", lat)
	}

	// --- Trust-region warm seeding ----------------------------------
	// The refinement workload the trust region exists for: a client
	// sweeping targets within ±0.7% of its previous ask.  The seeded
	// server answers from the prior converged sizing; the baselines are
	// a cold submit+query per ask and a warm-but-unseeded session (the
	// TrustRegion-off behavior, TILOS re-seed every query).
	srvTR, err := New(Config{MaxInFlight: 1, TrustRegion: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	hsTR := httptest.NewServer(srvTR.Handler())
	defer hsTR.Close()
	cTR := NewClient(hsTR.URL, hsTR.Client())

	refine := []float64{0.600, 0.602, 0.598, 0.601, 0.599, 0.603, 0.597, 0.604, 0.596}
	for _, circuit := range []string{"adder16", "mult8"} {
		sub, err := cTR.Submit(ctx, &SubmitRequest{ID: "tr-" + circuit, Circuit: circuit})
		if err != nil {
			t.Fatal(err)
		}

		// Cold submit+query per refinement ask.
		const nColdR = 20
		lat := make([]time.Duration, 0, 64)
		for i := 0; i < nColdR; i++ {
			id := fmt.Sprintf("coldr-%d", i)
			t0 := time.Now()
			if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: circuit}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Query(ctx, id, &QueryRequest{TargetPS: refine[i%len(refine)] * sub.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
			if err := c.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		coldP50 := report("cold submit+query  (refine "+circuit+")", lat)

		// Warm, seeding off: the PR-7 answer to the same mix.
		const nRefine = 40
		if _, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: refine[0] * sub.MinDelayPS}); err != nil {
			t.Fatal(err)
		}
		lat = lat[:0]
		for i := 0; i < nRefine; i++ {
			t0 := time.Now()
			q, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: refine[(i+1)%len(refine)] * sub.MinDelayPS})
			if err != nil || q.Error != nil {
				t.Fatalf("unseeded refine query %d: %v %+v", i, err, q)
			}
			lat = append(lat, time.Since(t0))
		}
		report("warm unseeded      (refine "+circuit+")", lat)

		// Warm with the trust region: every query after the anchor must
		// actually ride the seed.
		if _, err := cTR.Query(ctx, "tr-"+circuit, &QueryRequest{TargetPS: refine[0] * sub.MinDelayPS}); err != nil {
			t.Fatal(err)
		}
		lat = lat[:0]
		for i := 0; i < nRefine; i++ {
			t0 := time.Now()
			q, err := cTR.Query(ctx, "tr-"+circuit, &QueryRequest{TargetPS: refine[(i+1)%len(refine)] * sub.MinDelayPS})
			if err != nil || q.Error != nil {
				t.Fatalf("seeded refine query %d: %v %+v", i, err, q)
			}
			if q.Seed != "warm" {
				t.Fatalf("refine query %d answered from %q, want warm seed (fallback=%v)", i, q.Seed, q.SeedFallback)
			}
			lat = append(lat, time.Since(t0))
		}
		seedP50 := report("warm seeded        (refine "+circuit+")", lat)

		ratio := float64(coldP50) / float64(seedP50)
		fmt.Printf("%-34s p50 speedup vs cold: %.1fx\n", "warm seeded        ("+circuit+")", ratio)
		if ratio < 1.5 {
			t.Errorf("%s: warm-seeded p50 only %.2fx faster than cold submit+query, want >= 1.5x", circuit, ratio)
		}
	}

	// --- δ-sweep -----------------------------------------------------
	// How far can the target move before seeding stops paying?  A
	// deliberately generous trust region accepts every step; the step
	// size sweeps from refinement-scale to re-target-scale.  The p50s
	// justify the daemon default δ=0.05.
	srvSw, err := New(Config{MaxInFlight: 1, TrustRegion: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hsSw := httptest.NewServer(srvSw.Handler())
	defer hsSw.Close()
	cSw := NewClient(hsSw.URL, hsSw.Client())
	subSw, err := cSw.Submit(ctx, &SubmitRequest{ID: "sweep", Circuit: "adder16"})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []float64{0.002, 0.01, 0.02, 0.05, 0.10, 0.20} {
		targets := [2]float64{0.6 * (1 - step/2), 0.6 * (1 + step/2)}
		for _, s := range targets { // prime both endpoints
			if _, err := cSw.Query(ctx, "sweep", &QueryRequest{TargetPS: s * subSw.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
		}
		const nStep = 20
		lat := make([]time.Duration, 0, nStep)
		seeded := 0
		for i := 0; i < nStep; i++ {
			t0 := time.Now()
			q, err := cSw.Query(ctx, "sweep", &QueryRequest{TargetPS: targets[i%2] * subSw.MinDelayPS})
			if err != nil || q.Error != nil {
				t.Fatalf("sweep step %g query %d: %v %+v", step, i, err, q)
			}
			if q.Seed == "warm" {
				seeded++
			}
			lat = append(lat, time.Since(t0))
		}
		report(fmt.Sprintf("δ-sweep step=%4.1f%% seeded=%2d/20", step*100, seeded), lat)
	}
}
