package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"
)

// TestServeLatencyReport measures the serving latency distributions
// quoted in EXPERIMENTS.md ("Serving").  It is a measurement, not an
// assertion — run it explicitly with:
//
//	MINFLOD_LATENCY=1 go test -run TestServeLatencyReport -v ./internal/serve
//
// Single client, serial requests (Parallelism 1, MaxInFlight 1): the
// honest single-core numbers, no pipelining flattery.  The warm and
// cold columns answer the identical query mix (alternating 0.6/0.55
// ·Dmin targets) so the comparison isolates what warm state buys.
func TestServeLatencyReport(t *testing.T) {
	if os.Getenv("MINFLOD_LATENCY") == "" {
		t.Skip("set MINFLOD_LATENCY=1 to run the latency measurement")
	}
	srv, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL, hs.Client())
	ctx := context.Background()

	report := func(label string, lat []time.Duration) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		qps := float64(len(lat)) / sum.Seconds()
		p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
		fmt.Printf("%-34s n=%3d  qps=%7.1f  p50=%8.2fms  p99=%8.2fms\n",
			label, len(lat), qps,
			float64(p(0.50).Microseconds())/1000, float64(p(0.99).Microseconds())/1000)
	}

	for _, circuit := range []string{"adder16", "mult8"} {
		sub, err := c.Submit(ctx, &SubmitRequest{ID: "probe-" + circuit, Circuit: circuit})
		if err != nil {
			t.Fatal(err)
		}
		specs := [2]float64{0.6, 0.55}

		// Submit only: session creation (parse, problem build, STA) —
		// the fixed cost a session amortizes over its queries.
		const nSubmit = 100
		lat := make([]time.Duration, 0, nSubmit)
		for i := 0; i < nSubmit; i++ {
			id := fmt.Sprintf("cold-%d", i)
			t0 := time.Now()
			if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: circuit}); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
			if err := c.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		report("submit only        ("+circuit+")", lat)

		// Cold submit+query: a fresh session for every ask.
		const nCold = 40
		lat = lat[:0]
		for i := 0; i < nCold; i++ {
			id := fmt.Sprintf("coldq-%d", i)
			t0 := time.Now()
			if _, err := c.Submit(ctx, &SubmitRequest{ID: id, Circuit: circuit}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Query(ctx, id, &QueryRequest{TargetPS: specs[i%2] * sub.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
			if err := c.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		report("cold submit+query  ("+circuit+")", lat)

		// Warm queries: one live session, same target mix.
		for _, s := range specs {
			if _, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: s * sub.MinDelayPS}); err != nil {
				t.Fatal(err)
			}
		}
		const nWarm = 40
		lat = lat[:0]
		for i := 0; i < nWarm; i++ {
			t0 := time.Now()
			q, err := c.Query(ctx, "probe-"+circuit, &QueryRequest{TargetPS: specs[i%2] * sub.MinDelayPS})
			if err != nil || q.Error != nil {
				t.Fatalf("warm query %d: %v %+v", i, err, q)
			}
			lat = append(lat, time.Since(t0))
		}
		report("warm query         ("+circuit+")", lat)
	}
}
