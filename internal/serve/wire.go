// Wire types for the minflod HTTP/JSON protocol.
//
// Every error response is an ErrorBody envelope; overload (429) and
// drain (503) responses carry a Retry-After header with a whole-second
// hint.  A query that aborts mid-run but still has a best-so-far
// sizing answers 200 with Result.Partial set AND Error describing why
// it stopped — callers must treat (result, error both present) as
// "partial answer", mirroring the library's MinflotransitCtx contract.
package serve

// Error codes carried in ErrorBody.Code.  They refine the HTTP status:
// a client switching on behavior should use the code, not the status.
const (
	// CodeBadRequest: malformed JSON, unknown circuit, bad target.  400.
	CodeBadRequest = "bad_request"
	// CodeNotFound: no session with that id (never created, deleted,
	// or evicted under memory pressure — re-submit to rebuild).  404.
	CodeNotFound = "not_found"
	// CodeOverloaded: the per-session queue or the global pending cap
	// is full.  429 with Retry-After.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down and admits no new
	// work.  503 with Retry-After.
	CodeDraining = "draining"
	// CodeInfeasible: no sizing can meet the delay target.  422.
	CodeInfeasible = "infeasible"
	// CodeCanceled: the run was cut short by cancellation (client
	// disconnect or drain deadline).  200 when a partial sizing
	// exists, 504 otherwise.
	CodeCanceled = "canceled"
	// CodeBudgetExhausted: the per-request wall-clock or flow-work
	// budget ran out.  200 when a partial sizing exists, 504 otherwise.
	CodeBudgetExhausted = "budget_exhausted"
	// CodeEngineFailed: the flow engine crashed and the failure was
	// not recovered; the session is quarantined and will be rebuilt
	// cold on its next query.  500.
	CodeEngineFailed = "engine_failed"
	// CodeInternal: any other server-side failure.  500.
	CodeInternal = "internal"
)

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// SubmitRequest creates (or replaces) a session from a netlist.
// Exactly one of Circuit or Bench must be set.
type SubmitRequest struct {
	// ID names the session; empty lets the server assign one.
	ID string `json:"id,omitempty"`
	// Circuit is a Table 1 benchmark name (adder32, c432, mult8, ...).
	Circuit string `json:"circuit,omitempty"`
	// Bench is an ISCAS85 .bench netlist, inline.
	Bench string `json:"bench,omitempty"`
	// Name labels a Bench netlist (diagnostics only).
	Name string `json:"name,omitempty"`
	// FlowEngine pins the D-phase backend for this session ("" uses
	// the server default; "auto" calibrates per problem).
	FlowEngine string `json:"flow_engine,omitempty"`
	// Parallelism requests an intra-solve worker budget for this
	// session.  0 uses the server default; anything above the daemon's
	// cap (-j) is clamped to it, so one heavy session cannot
	// monopolize the shared worker pool.  The response reports the
	// granted value.
	Parallelism int `json:"parallelism,omitempty"`
}

// SubmitResponse describes the created session.
type SubmitResponse struct {
	ID string `json:"id"`
	// Generation counts cold builds of this session's solver state; it
	// starts at 0 and increments on every quarantine rebuild.  Answers
	// are a deterministic function of the query sequence within one
	// generation.
	Generation int   `json:"generation"`
	NumGates   int   `json:"num_gates"`
	MemBytes   int64 `json:"mem_bytes"`
	// MinDelayPS is Dmin, the critical path with every gate at minimum
	// size — targets below this are infeasible.
	MinDelayPS float64 `json:"min_delay_ps"`
	// Parallelism is the granted intra-solve worker budget (the
	// requested value clamped to the daemon cap).
	Parallelism int `json:"parallelism"`
}

// AreaWeight is a what-if cost override applied before the query runs
// and left in place for the rest of the session (resend with weight 1
// to undo).
type AreaWeight struct {
	Gate   int     `json:"gate"`
	Weight float64 `json:"weight"`
}

// QueryRequest asks the warm session for a sizing at a new target.
type QueryRequest struct {
	// TargetPS is the delay target in picoseconds.
	TargetPS float64 `json:"target_ps"`
	// BudgetMS, when positive, bounds this query's wall clock in
	// milliseconds; exceeding it returns the best-so-far partial.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// FlowWorkBudget, when positive, caps this query's D-phase flow
	// work in mcmf poll operations.
	FlowWorkBudget int64 `json:"flow_work_budget,omitempty"`
	// AreaWeights applies sticky what-if cost overrides first.
	AreaWeights []AreaWeight `json:"area_weights,omitempty"`
	// WantSizes includes the per-gate sizes in the response (they can
	// dwarf the rest of the payload on large circuits).
	WantSizes bool `json:"want_sizes,omitempty"`
}

// QueryResponse is the sizing answer.  When Error is non-nil the run
// stopped early; Partial reports whether Area/CP/Sizes still hold the
// best sizing reached before the stop.
type QueryResponse struct {
	ID         string    `json:"id"`
	Generation int       `json:"generation"`
	Seq        int       `json:"seq"` // 1-based query index within the generation
	Area       float64   `json:"area"`
	CPPS       float64   `json:"cp_ps"`
	Iterations int       `json:"iterations"`
	Partial    bool      `json:"partial,omitempty"`
	Sizes      []float64 `json:"sizes,omitempty"`
	// Warm reports whether the answer came from warm solver state
	// (false on the first query of a generation).
	Warm bool `json:"warm"`
	// Seed is the solve's start-point provenance: "tilos" for the cold
	// path, "warm" for a trust-region-seeded resize answered from the
	// session's previous converged sizing (see the -trust-region flag
	// and core.Options.TrustRegion).
	Seed string `json:"seed,omitempty"`
	// SeedFallback marks a cold answer whose trust-region seed was
	// attempted and abandoned (repair failure or iteration blowout).
	SeedFallback bool `json:"seed_fallback,omitempty"`
	// Coalesced marks a reply served by another in-flight identical
	// query against the same session (the singleflight path): this
	// request consumed no queue slot and ran no solve of its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// ConeGates reports, for a cone-answered query (seed "cone"), how
	// many sizable gates the cone subproblem covered; ConeFallback marks
	// a query that attempted the cone path but fell back to the full
	// warm re-size (boundary reconciliation failed twice, or the cone
	// grew past half the circuit).  See the -edit-cone-resize flag.
	ConeGates    int        `json:"cone_gates,omitempty"`
	ConeFallback bool       `json:"cone_fallback,omitempty"`
	Error        *ErrorBody `json:"error,omitempty"`
}

// EditOp is one typed netlist edit of an edit batch.
type EditOp struct {
	// Op selects the edit: "retype" (cell/drive-strength swap of equal
	// arity), "load" (set the extra fixed output load), "rewire"
	// (reconnect one input pin to a new driver signal), "add"
	// (instantiate a new gate), or "remove" (delete a dead gate).
	Op string `json:"op"`
	// Gate indexes the edited gate (the sizing-vertex index reported by
	// sizes/weights APIs).  Ignored for "add".
	Gate int `json:"gate"`
	// Cell names the library cell for "retype" and "add" (e.g. "NAND2",
	// "INV"); for "retype" it must have the gate's current input count.
	Cell string `json:"cell,omitempty"`
	// LoadFF is the new extra fixed output load in fF for "load".  It
	// is absolute state, not a delta — resend 0 to restore the pristine
	// load.
	LoadFF float64 `json:"load_ff,omitempty"`
	// Pin and Driver identify the rewired input for "rewire": the pin
	// index and the new driver signal's name (a PI or gate output).
	Pin    int    `json:"pin,omitempty"`
	Driver string `json:"driver,omitempty"`
	// Name, Inputs and PO define an added gate for "add": its (unique)
	// output signal name, the driver signal names feeding its pins, and
	// whether the output is a primary output.  Later edits in the same
	// batch may reference the new gate by Name or by its index (the
	// gate count at that point in the batch).  "remove" demands a dead
	// gate — detach its readers first, in the same batch; gate indices
	// above it shift down by one for the rest of the batch.
	Name   string   `json:"name,omitempty"`
	Inputs []string `json:"inputs,omitempty"`
	PO     bool     `json:"po,omitempty"`
}

// EditRequest applies a batch of netlist edits to a warm session
// atomically: the whole batch is validated first, and a rejected batch
// (400) leaves the session bit-identical to never having received it.
type EditRequest struct {
	Edits []EditOp `json:"edits"`
}

// EditResponse reports what an accepted edit batch invalidated.
type EditResponse struct {
	ID         string `json:"id"`
	Generation int    `json:"generation"`
	// Structural marks a batch containing a rewire (the timing DAG
	// changed); Rebuilt marks batches that rebuilt the D-phase solver
	// state (every structural batch, plus cone-budget fallbacks).
	Structural bool `json:"structural"`
	Rebuilt    bool `json:"rebuilt"`
	// Fallback marks a batch whose timing cone exceeded the
	// -edit-cone-budget fraction: the warm seed was dropped and the
	// next query runs the cold path.  SeedKept is the complement view —
	// whether the trust-region seed survived the batch.
	Fallback bool `json:"fallback,omitempty"`
	SeedKept bool `json:"seed_kept"`
	// GateSetChanged marks a batch containing adds or removes: gate
	// indices were remapped, resident sizes and the warm seed are void,
	// and NumGates reports the new gate count.
	GateSetChanged bool `json:"gate_set_changed,omitempty"`
	NumGates       int  `json:"num_gates"`
	// ConeGates / ConeFrac measure the forward timing cone of the edit
	// (the gates whose arrivals can move); ChangedRows counts the delay
	// rows recomputed.
	ConeGates   int     `json:"cone_gates"`
	ConeFrac    float64 `json:"cone_frac"`
	ChangedRows int     `json:"changed_rows"`
	// ConeResizePending reports that the batch armed a cone-local
	// re-size (the -edit-cone-resize flag): the next in-trust-region
	// query will be answered from the cone subproblem around the edit.
	ConeResizePending bool `json:"cone_resize_pending,omitempty"`
	// CPPS is the post-edit critical path at the session's current
	// sizes (previous converged answer, or minimum sizes).
	CPPS     float64 `json:"cp_ps"`
	MemBytes int64   `json:"mem_bytes"`
}

// SessionInfo is the GET /v1/sessions/{id} body.
type SessionInfo struct {
	ID          string `json:"id"`
	Generation  int    `json:"generation"`
	NumGates    int    `json:"num_gates"`
	MemBytes    int64  `json:"mem_bytes"`
	Queries     int64  `json:"queries"`
	Edits       int64  `json:"edits"`
	Queued      int    `json:"queued"`
	Quarantined bool   `json:"quarantined"`
	FlowEngine  string `json:"flow_engine,omitempty"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Sessions    int   `json:"sessions"`
	MemBytes    int64 `json:"mem_bytes"`
	MemHigh     int64 `json:"mem_high_bytes"`
	InFlight    int   `json:"in_flight"`
	Pending     int64 `json:"pending"`
	Queries     int64 `json:"queries_total"`
	Rejected    int64 `json:"rejected_total"`
	Evictions   int64 `json:"evictions_total"`
	Quarantines int64 `json:"quarantines_total"`
	Rebuilds    int64 `json:"rebuilds_total"`
	// Seeded / SeedFallbacks count trust-region warm-seeded answers
	// and abandoned seed attempts across all sessions; Coalesced
	// counts replies served by another identical in-flight query.
	Seeded        int64 `json:"seeded_total"`
	SeedFallbacks int64 `json:"seed_fallbacks_total"`
	Coalesced     int64 `json:"coalesced_total"`
	// Edits counts accepted edit batches; EditFallbacks those whose
	// timing cone exceeded the budget and dropped the warm seed.
	Edits         int64 `json:"edits_total"`
	EditFallbacks int64 `json:"edit_fallbacks_total"`
	// ConeResizes counts queries answered from a cone-scoped subproblem
	// (-edit-cone-resize); ConeFallbacks those that attempted the cone
	// path and fell back to the full warm re-size.
	ConeResizes   int64 `json:"cone_resizes_total"`
	ConeFallbacks int64 `json:"cone_fallbacks_total"`
	Draining      bool  `json:"draining"`
}
