package tech

import "testing"

func TestDefaultValidates(t *testing.T) {
	if err := Default013().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero RUnit", func(p *Params) { p.RUnit = 0 }},
		{"negative RUnit", func(p *Params) { p.RUnit = -1 }},
		{"zero PMOSRatio", func(p *Params) { p.PMOSRatio = 0 }},
		{"zero CGate", func(p *Params) { p.CGate = 0 }},
		{"negative CDiff", func(p *Params) { p.CDiff = -0.1 }},
		{"negative CWire", func(p *Params) { p.CWire = -2 }},
		{"zero MinSize", func(p *Params) { p.MinSize = 0 }},
		{"Max below Min", func(p *Params) { p.MaxSize = 0.5 }},
	}
	for _, c := range cases {
		p := Default013()
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFO4Positive(t *testing.T) {
	p := Default013()
	if p.FO4() <= 0 {
		t.Fatalf("FO4 = %g", p.FO4())
	}
	if p.Tau() <= 0 {
		t.Fatalf("Tau = %g", p.Tau())
	}
	// FO4 must exceed tau (four gate loads plus parasitic).
	if p.FO4() <= p.Tau() {
		t.Fatalf("FO4 %g not above tau %g", p.FO4(), p.Tau())
	}
}
