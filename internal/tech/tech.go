// Package tech holds the technology parameters of the target process.
//
// The paper simulates a 0.13 µm-class process with parameters from [16].
// The exact silicon numbers are not public; what the experiments depend
// on is the *structure* of the model — drive resistance inversely
// proportional to device width, gate/diffusion capacitance proportional
// to width, plus fixed wire capacitance — and plausible relative
// magnitudes.  Units: kΩ for resistance, fF for capacitance, so R·C is
// in picoseconds.
package tech

import (
	"errors"
	"fmt"
)

// Params is a process description used by the delay model.
type Params struct {
	// RUnit is the drive resistance of a unit-width NMOS transistor; the
	// resistance of a width-x device is RUnit/x.  (kΩ)
	RUnit float64
	// PMOSRatio scales NMOS resistance to PMOS resistance (hole vs.
	// electron mobility); a unit PMOS has resistance RUnit*PMOSRatio.
	PMOSRatio float64
	// CGate is the gate capacitance per unit transistor width. (fF)
	CGate float64
	// CDiff is the drain/source diffusion capacitance per unit width. (fF)
	CDiff float64
	// CWire is the fixed wiring capacitance charged to each fanout
	// connection (the paper's D/E terms). (fF)
	CWire float64
	// MinSize and MaxSize bound transistor sizes (paper eq. 1).
	MinSize, MaxSize float64
}

// Default013 returns the default 0.13 µm-class parameter set used by all
// experiments.  See DESIGN.md §4 for the substitution note.
func Default013() Params {
	return Params{
		RUnit:     8.0, // kΩ for a minimum-width NMOS
		PMOSRatio: 2.0, // PMOS ~2x resistive at equal width
		CGate:     1.5, // fF per unit width
		CDiff:     0.6, // fF per unit width
		CWire:     8.0, // fF per fanout connection (wire dominates at min size)
		MinSize:   1.0,
		MaxSize:   128.0,
	}
}

// Validate checks the parameter set for physical plausibility.
func (p Params) Validate() error {
	switch {
	case p.RUnit <= 0:
		return errors.New("tech: RUnit must be positive")
	case p.PMOSRatio <= 0:
		return errors.New("tech: PMOSRatio must be positive")
	case p.CGate <= 0:
		return errors.New("tech: CGate must be positive")
	case p.CDiff < 0:
		return errors.New("tech: CDiff must be non-negative")
	case p.CWire < 0:
		return errors.New("tech: CWire must be non-negative")
	case p.MinSize <= 0:
		return errors.New("tech: MinSize must be positive")
	case p.MaxSize < p.MinSize:
		return fmt.Errorf("tech: MaxSize %g < MinSize %g", p.MaxSize, p.MinSize)
	}
	return nil
}

// FO4 returns the delay of a fanout-of-4 inverter in this process — a
// convenient unit for reporting circuit delays.
func (p Params) FO4() float64 {
	// R * (self diffusion + 4x gate load), inverter with unit size.
	return p.RUnit * (p.CDiff + 4*p.CGate)
}

// Tau returns the basic RC time constant RUnit*CGate.
func (p Params) Tau() float64 { return p.RUnit * p.CGate }
