// Package lin provides the (block-)triangular linear algebra of the
// D-phase setup (paper §2.3, eq. 6–7).
//
// With D = diag(delay(i)) and A the non-negative coupling matrix of the
// simple monotonic decomposition, the system (D−A)X = B is (block)
// upper triangular in a topological numbering of the dependency graph
// (i → j when a_ij ≠ 0).  For gate sizing the blocks are single
// vertices; for transistor sizing, mutually-loading devices inside one
// gate form small blocks (hence the SCC machinery).
//
// The first-order area sensitivity of a budget change ΔD is
//
//	Δ(wᵀX) ≈ −Σ_i C_i·ΔD_i,   C_i = x_i·y_i,  (D−A)ᵀ y = w,
//
// with w the area weights.  Because A is non-negative and nilpotent
// across blocks, y > 0, hence every C_i > 0 — the solvers verify this.
//
// A Solver binds to a shared delay.CSR (couplings, transpose, SCC
// blocks, in-block positions — all built once per problem) and re-solves
// through the *Into methods with zero heap allocations: the dense SCC
// blocks are factored by an in-place flat-array LU instead of per-call
// [][]float64 matrices, and block membership comes from the CSR's
// precomputed index instead of a per-call map.
package lin

import (
	"fmt"
	"math"

	"minflo/internal/delay"
	"minflo/internal/par"
)

// blockScratch is one worker's dense-block workspace: M is maxBlock²
// flat row-major, rhs/sol are maxBlock long.
type blockScratch struct {
	m   []float64
	rhs []float64
	sol []float64
}

func newBlockScratch(mb int) blockScratch {
	return blockScratch{
		m:   make([]float64, mb*mb),
		rhs: make([]float64, mb),
		sol: make([]float64, mb),
	}
}

// Solver is the persistent (block-)triangular engine for one
// coefficient set.
type Solver struct {
	csr    *delay.CSR
	diag   []float64 // d_i − a_ii, rewritten per solve
	solved []bool    // defensive dependency-order check, cleared per solve

	scr blockScratch // serial dense-block scratch

	y []float64 // dual scratch for SensitivitiesInto

	// Optional worker pool (nil = serial): the transpose solve runs
	// level-parallel with one blockScratch per part, plus a per-part
	// error slot so order violations surface deterministically.
	pool    *par.Pool
	partScr []blockScratch
	partErr []error
}

// NewSolver builds a persistent solver over the coupling structure.
func NewSolver(csr *delay.CSR) *Solver {
	n := csr.N()
	return &Solver{
		csr:    csr,
		diag:   make([]float64, n),
		solved: make([]bool, n),
		scr:    newBlockScratch(csr.MaxBlock()),
		y:      make([]float64, n),
	}
}

// SetParallel attaches a worker pool: SolveTransposeInto processes
// each dependency level's blocks concurrently, one dense scratch per
// worker.  Bit-identical to the serial solve — a block reads only y
// values of strictly earlier levels (complete before the level
// barrier) and writes only its own vertices, and the dense LU runs
// the same arithmetic on a private scratch.  A nil pool restores the
// serial path.
func (s *Solver) SetParallel(pool *par.Pool) {
	s.pool = pool
	if w := pool.Workers(); w > 1 && len(s.partScr) < w {
		mb := s.csr.MaxBlock()
		for len(s.partScr) < w {
			s.partScr = append(s.partScr, newBlockScratch(mb))
		}
		s.partErr = make([]error, w)
	}
}

// SensitivitiesInto computes C_i = x_i·y_i where (D−A)ᵀ y = w, writing
// into c (length N). d must be the delay budgets (d_i > a_ii required),
// x the current sizes, w the area weights.
func (s *Solver) SensitivitiesInto(c, x, d, w []float64) error {
	n := s.csr.N()
	if len(c) != n || len(x) != n || len(d) != n || len(w) != n {
		return fmt.Errorf("lin: length mismatch")
	}
	if err := s.SolveTransposeInto(s.y, d, w); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if s.y[i] <= 0 {
			return fmt.Errorf("lin: non-positive dual y[%d] = %g (model invariant broken)", i, s.y[i])
		}
		c[i] = x[i] * s.y[i]
	}
	return nil
}

// SolveTransposeInto solves (D−A)ᵀ y = w into y by block-forward
// substitution over the SCC condensation.
//
// Row j of the transpose system reads
//
//	(d_j − a_jj)·y_j − Σ_{i : a_ij ≠ 0, i≠j} a_ij·y_i = w_j .
//
// y_j therefore needs y_i for the vertices i whose delay mentions x_j —
// the *predecessors* of j in the dependency graph — so blocks are
// processed in condensation order, reading the precomputed transpose.
func (s *Solver) SolveTransposeInto(y, d, w []float64) error {
	csr := s.csr
	n := csr.N()
	if len(y) != n || len(d) != n || len(w) != n {
		return fmt.Errorf("lin: length mismatch")
	}
	diag := s.diag
	for j := 0; j < n; j++ {
		diag[j] = d[j] - csr.Self[j]
		if diag[j] <= 0 || math.IsNaN(diag[j]) {
			return fmt.Errorf("lin: budget %g at vertex %d does not exceed intrinsic delay %g",
				d[j], j, csr.Self[j])
		}
		s.solved[j] = false
	}
	workers := s.pool.Workers()
	// Unlike the smp sweep, this path needs no LevelParallelSafe guard:
	// it reads cross-block values only through csr.Incoming, which the
	// CSR builds from non-zero couplings exclusively.
	if workers > 1 && csr.MaxLevelWidth() >= delay.LevelParallelFloor {
		// Level-parallel: every block of a level depends only on
		// earlier levels, so a level's blocks solve concurrently and
		// the barrier between levels preserves dependency order.
		for l := 0; l < csr.NumLevels(); l++ {
			blocks := csr.LevelBlocks(l)
			if len(blocks) < delay.LevelParallelFloor {
				for _, b := range blocks {
					if err := s.transposeBlock(int(b), y, w, &s.scr); err != nil {
						return err
					}
				}
				continue
			}
			s.pool.ForEach(func(part int) {
				plo, phi := len(blocks)*part/workers, len(blocks)*(part+1)/workers
				scr := &s.partScr[part]
				var err error
				for _, b := range blocks[plo:phi] {
					if err = s.transposeBlock(int(b), y, w, scr); err != nil {
						break
					}
				}
				s.partErr[part] = err
			})
			for _, err := range s.partErr[:workers] {
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	for b := 0; b < csr.NumBlocks(); b++ {
		if err := s.transposeBlock(b, y, w, &s.scr); err != nil {
			return err
		}
	}
	return nil
}

// transposeBlock solves block b of the transpose system into y — the
// shared per-block body of the serial and level-parallel drivers.
// Dense blocks run on the caller-supplied scratch so concurrent parts
// never share workspace.
func (s *Solver) transposeBlock(b int, y, w []float64, scr *blockScratch) error {
	csr := s.csr
	diag := s.diag
	grp := csr.Block(b)
	if len(grp) == 1 {
		j := int(grp[0])
		rhs := w[j]
		rows, vals := csr.Incoming(j)
		for k := range rows {
			i := int(rows[k])
			if !s.solved[i] {
				return fmt.Errorf("lin: dependency order violated at %d<-%d", j, i)
			}
			rhs += vals[k] * y[i]
		}
		y[j] = rhs / diag[j]
		s.solved[j] = true
		return nil
	}
	// Dense block solve for the SCC {grp}: off-block terms use
	// already-solved y values; in-block terms form the matrix.
	m := len(grp)
	M, rhs := scr.m[:m*m], scr.rhs[:m]
	for i := range M {
		M[i] = 0
	}
	for k, ji := range grp {
		j := int(ji)
		M[k*m+k] = diag[j]
		rhs[k] = w[j]
		rows, vals := csr.Incoming(j)
		for t := range rows {
			i := int(rows[t])
			if csr.BlockOf(i) == b {
				M[k*m+csr.PosInBlock(i)] -= vals[t]
			} else {
				if !s.solved[i] {
					return fmt.Errorf("lin: block dependency order violated at %d<-%d", j, i)
				}
				rhs[k] += vals[t] * y[i]
			}
		}
	}
	if err := gaussFlat(M, rhs, scr.sol[:m], m); err != nil {
		return err
	}
	for k, ji := range grp {
		y[ji] = scr.sol[k]
		s.solved[ji] = true
	}
	return nil
}

// SolveForwardInto solves (D−A)X = B (the paper's eq. 6) into x by
// block-backward substitution — used by tests and tools to
// cross-validate the decomposition: plugging the returned X back into
// the delay model must reproduce d.
func (s *Solver) SolveForwardInto(x, d, b []float64) error {
	csr := s.csr
	n := csr.N()
	if len(x) != n || len(d) != n || len(b) != n {
		return fmt.Errorf("lin: length mismatch")
	}
	diag := s.diag
	for j := 0; j < n; j++ {
		diag[j] = d[j] - csr.Self[j]
		if diag[j] <= 0 {
			return fmt.Errorf("lin: budget at vertex %d does not exceed intrinsic delay", j)
		}
		s.solved[j] = false
	}
	// Row i: (d_i − a_ii)x_i − Σ a_ij x_j = b_i; x_i needs successors
	// x_j, so process condensation blocks in reverse order.
	for bi := csr.NumBlocks() - 1; bi >= 0; bi-- {
		grp := csr.Block(bi)
		if len(grp) == 1 {
			i := int(grp[0])
			rhs := b[i]
			cols, vals := csr.Row(i)
			for k := range cols {
				j := int(cols[k])
				if j == i {
					continue
				}
				if !s.solved[j] {
					return fmt.Errorf("lin: forward order violated at %d->%d", i, j)
				}
				rhs += vals[k] * x[j]
			}
			x[i] = rhs / diag[i]
			s.solved[i] = true
			continue
		}
		m := len(grp)
		M, rhs := s.scr.m[:m*m], s.scr.rhs[:m]
		for k := range M {
			M[k] = 0
		}
		for k, ii := range grp {
			i := int(ii)
			M[k*m+k] = diag[i]
			rhs[k] = b[i]
			cols, vals := csr.Row(i)
			for t := range cols {
				j := int(cols[t])
				if j == i {
					continue
				}
				if csr.BlockOf(j) == bi {
					M[k*m+csr.PosInBlock(j)] -= vals[t]
				} else {
					if !s.solved[j] {
						return fmt.Errorf("lin: forward block order violated at %d->%d", i, j)
					}
					rhs[k] += vals[t] * x[j]
				}
			}
		}
		if err := gaussFlat(M, rhs, s.scr.sol[:m], m); err != nil {
			return err
		}
		for k, ii := range grp {
			x[ii] = s.scr.sol[k]
			s.solved[ii] = true
		}
	}
	return nil
}

// gaussFlat solves the n×n row-major system M·x = b in place (M and b
// are destroyed) with partial pivoting, writing the solution into x.
// The arithmetic matches the historical [][]float64 implementation
// operation for operation, so results are bit-identical.
func gaussFlat(M, b, x []float64, n int) error {
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r*n+col]) > math.Abs(M[p*n+col]) {
				p = r
			}
		}
		if math.Abs(M[p*n+col]) < 1e-300 {
			return fmt.Errorf("lin: singular block matrix")
		}
		if p != col {
			for c := 0; c < n; c++ {
				M[col*n+c], M[p*n+c] = M[p*n+c], M[col*n+c]
			}
			b[col], b[p] = b[p], b[col]
		}
		inv := 1 / M[col*n+col]
		for r := col + 1; r < n; r++ {
			f := M[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r*n+c] -= f * M[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= M[r*n+c] * x[c]
		}
		x[r] = s / M[r*n+r]
	}
	return nil
}

// Sensitivities computes C_i = x_i·y_i with a throwaway Solver.  Code
// on the optimizer's hot path should hold a Solver and use
// SensitivitiesInto.
func Sensitivities(coeffs []delay.Coeffs, x, d, w []float64) ([]float64, error) {
	n := len(coeffs)
	if len(x) != n || len(d) != n || len(w) != n {
		return nil, fmt.Errorf("lin: length mismatch")
	}
	c := make([]float64, n)
	if err := NewSolver(delay.NewCSR(coeffs)).SensitivitiesInto(c, x, d, w); err != nil {
		return nil, err
	}
	return c, nil
}

// SolveTranspose solves (D−A)ᵀ y = w with a throwaway Solver.
func SolveTranspose(coeffs []delay.Coeffs, d, w []float64) ([]float64, error) {
	y := make([]float64, len(coeffs))
	if err := NewSolver(delay.NewCSR(coeffs)).SolveTransposeInto(y, d, w); err != nil {
		return nil, err
	}
	return y, nil
}

// SolveForward solves (D−A)X = B with a throwaway Solver.
func SolveForward(coeffs []delay.Coeffs, d, b []float64) ([]float64, error) {
	x := make([]float64, len(coeffs))
	if err := NewSolver(delay.NewCSR(coeffs)).SolveForwardInto(x, d, b); err != nil {
		return nil, err
	}
	return x, nil
}
