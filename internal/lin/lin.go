// Package lin provides the (block-)triangular linear algebra of the
// D-phase setup (paper §2.3, eq. 6–7).
//
// With D = diag(delay(i)) and A the non-negative coupling matrix of the
// simple monotonic decomposition, the system (D−A)X = B is (block)
// upper triangular in a topological numbering of the dependency graph
// (i → j when a_ij ≠ 0).  For gate sizing the blocks are single
// vertices; for transistor sizing, mutually-loading devices inside one
// gate form small blocks (hence the SCC machinery).
//
// The first-order area sensitivity of a budget change ΔD is
//
//	Δ(wᵀX) ≈ −Σ_i C_i·ΔD_i,   C_i = x_i·y_i,  (D−A)ᵀ y = w,
//
// with w the area weights.  Because A is non-negative and nilpotent
// across blocks, y > 0, hence every C_i > 0 — Solve verifies this.
package lin

import (
	"fmt"
	"math"

	"minflo/internal/delay"
	"minflo/internal/graph"
)

// inc records one incoming coupling: vertex i's delay mentions x_j with
// coefficient a (an entry a_ij of A, indexed by column j).
type inc struct {
	i int
	a float64
}

// depGraph builds the dependency graph: edge i→j when a_ij ≠ 0.
func depGraph(coeffs []delay.Coeffs) *graph.Digraph {
	g := graph.New(len(coeffs))
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.A != 0 && t.J != i {
				g.AddEdge(i, t.J)
			}
		}
	}
	return g
}

// Sensitivities computes C_i = x_i·y_i where (D−A)ᵀ y = w.
// d must be the delay budgets (d_i > a_ii required), x the current
// sizes, w the area weights.
func Sensitivities(coeffs []delay.Coeffs, x, d, w []float64) ([]float64, error) {
	n := len(coeffs)
	if len(x) != n || len(d) != n || len(w) != n {
		return nil, fmt.Errorf("lin: length mismatch")
	}
	y, err := SolveTranspose(coeffs, d, w)
	if err != nil {
		return nil, err
	}
	c := make([]float64, n)
	for i := range c {
		if y[i] <= 0 {
			return nil, fmt.Errorf("lin: non-positive dual y[%d] = %g (model invariant broken)", i, y[i])
		}
		c[i] = x[i] * y[i]
	}
	return c, nil
}

// SolveTranspose solves (D−A)ᵀ y = w by block-forward substitution over
// the SCC condensation of the dependency graph.
//
// Row j of the transpose system reads
//
//	(d_j − a_jj)·y_j − Σ_{i : a_ij ≠ 0, i≠j} a_ij·y_i = w_j .
//
// y_j therefore needs y_i for the vertices i whose delay mentions x_j —
// the *predecessors* of j in the dependency graph — so blocks are
// processed in condensation order.
func SolveTranspose(coeffs []delay.Coeffs, d, w []float64) ([]float64, error) {
	n := len(coeffs)
	// incoming[j] lists (i, a_ij) pairs.
	incoming := make([][]inc, n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J == i || t.A == 0 {
				continue
			}
			incoming[t.J] = append(incoming[t.J], inc{i, t.A})
		}
	}
	diag := make([]float64, n)
	for j := range coeffs {
		diag[j] = d[j] - coeffs[j].Self
		if diag[j] <= 0 || math.IsNaN(diag[j]) {
			return nil, fmt.Errorf("lin: budget %g at vertex %d does not exceed intrinsic delay %g",
				d[j], j, coeffs[j].Self)
		}
	}

	dep := depGraph(coeffs)
	groups := dep.CondensationOrder()
	y := make([]float64, n)
	solved := make([]bool, n)
	for _, grp := range groups {
		if len(grp) == 1 {
			j := grp[0]
			rhs := w[j]
			for _, in := range incoming[j] {
				if in.i == j {
					continue
				}
				if !solved[in.i] {
					return nil, fmt.Errorf("lin: dependency order violated at %d<-%d", j, in.i)
				}
				rhs += in.a * y[in.i]
			}
			y[j] = rhs / diag[j]
			solved[j] = true
			continue
		}
		// Dense block solve for the SCC {grp}.
		if err := solveBlock(grp, incoming, diag, w, y, solved); err != nil {
			return nil, err
		}
		for _, j := range grp {
			solved[j] = true
		}
	}
	return y, nil
}

// solveBlock solves the dense sub-system for one SCC. Off-block terms
// use already-solved y values; in-block terms form the matrix.
func solveBlock(grp []int, incoming [][]inc, diag, w, y []float64, solved []bool) error {
	m := len(grp)
	pos := make(map[int]int, m)
	for k, j := range grp {
		pos[j] = k
	}
	// Build M·yb = rhs.
	M := make([][]float64, m)
	rhs := make([]float64, m)
	for k, j := range grp {
		M[k] = make([]float64, m)
		M[k][k] = diag[j]
		rhs[k] = w[j]
		for _, in := range incoming[j] {
			if kk, inBlock := pos[in.i]; inBlock {
				M[k][kk] -= in.a
			} else {
				if !solved[in.i] {
					return fmt.Errorf("lin: block dependency order violated at %d<-%d", j, in.i)
				}
				rhs[k] += in.a * y[in.i]
			}
		}
	}
	sol, err := gauss(M, rhs)
	if err != nil {
		return err
	}
	for k, j := range grp {
		y[j] = sol[k]
	}
	return nil
}

// gauss solves a small dense linear system with partial pivoting.
func gauss(M [][]float64, b []float64) ([]float64, error) {
	n := len(M)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[p][col]) {
				p = r
			}
		}
		if math.Abs(M[p][col]) < 1e-300 {
			return nil, fmt.Errorf("lin: singular block matrix")
		}
		M[col], M[p] = M[p], M[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / M[col][col]
		for r := col + 1; r < n; r++ {
			f := M[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= M[r][c] * x[c]
		}
		x[r] = s / M[r][r]
	}
	return x, nil
}

// SolveForward solves (D−A)X = B (the paper's eq. 6) by block-backward
// substitution — used by tests to cross-validate the decomposition:
// plugging the returned X back into the delay model must reproduce d.
func SolveForward(coeffs []delay.Coeffs, d, b []float64) ([]float64, error) {
	n := len(coeffs)
	diag := make([]float64, n)
	for j := range coeffs {
		diag[j] = d[j] - coeffs[j].Self
		if diag[j] <= 0 {
			return nil, fmt.Errorf("lin: budget at vertex %d does not exceed intrinsic delay", j)
		}
	}
	dep := depGraph(coeffs)
	groups := dep.CondensationOrder()
	x := make([]float64, n)
	solved := make([]bool, n)
	// Row i: (d_i − a_ii)x_i − Σ a_ij x_j = b_i; x_i needs successors x_j,
	// so process condensation groups in reverse order.
	for gi := len(groups) - 1; gi >= 0; gi-- {
		grp := groups[gi]
		if len(grp) == 1 {
			i := grp[0]
			rhs := b[i]
			for _, t := range coeffs[i].Terms {
				if t.J == i {
					continue
				}
				if !solved[t.J] {
					return nil, fmt.Errorf("lin: forward order violated at %d->%d", i, t.J)
				}
				rhs += t.A * x[t.J]
			}
			x[i] = rhs / diag[i]
			solved[i] = true
			continue
		}
		m := len(grp)
		pos := make(map[int]int, m)
		for k, j := range grp {
			pos[j] = k
		}
		M := make([][]float64, m)
		rhs := make([]float64, m)
		for k, i := range grp {
			M[k] = make([]float64, m)
			M[k][k] = diag[i]
			rhs[k] = b[i]
			for _, t := range coeffs[i].Terms {
				if t.J == i {
					continue
				}
				if kk, in := pos[t.J]; in {
					M[k][kk] -= t.A
				} else {
					if !solved[t.J] {
						return nil, fmt.Errorf("lin: forward block order violated at %d->%d", i, t.J)
					}
					rhs[k] += t.A * x[t.J]
				}
			}
		}
		sol, err := gauss(M, rhs)
		if err != nil {
			return nil, err
		}
		for k, i := range grp {
			x[i] = sol[k]
			solved[i] = true
		}
	}
	return x, nil
}
