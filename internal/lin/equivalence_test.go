package lin

import (
	"math"
	"math/rand"
	"testing"

	"minflo/internal/delay"
	"minflo/internal/graph"
)

// This file keeps the pre-CSR solvers — per-call incoming lists, a
// per-block position map and [][]float64 Gaussian elimination — as the
// oracle for the equivalence tests.  The persistent CSR Solver must
// reproduce them bit for bit on random gate- and transistor-shaped
// instances.

type refInc struct {
	i int
	a float64
}

func refDepGraph(coeffs []delay.Coeffs) *graph.Digraph {
	g := graph.New(len(coeffs))
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.A != 0 && t.J != i {
				g.AddEdge(i, t.J)
			}
		}
	}
	return g
}

func refGauss(M [][]float64, b []float64) ([]float64, bool) {
	n := len(M)
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[p][col]) {
				p = r
			}
		}
		if math.Abs(M[p][col]) < 1e-300 {
			return nil, false
		}
		M[col], M[p] = M[p], M[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / M[col][col]
		for r := col + 1; r < n; r++ {
			f := M[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= M[r][c] * x[c]
		}
		x[r] = s / M[r][r]
	}
	return x, true
}

func refSolveTranspose(coeffs []delay.Coeffs, d, w []float64) ([]float64, bool) {
	n := len(coeffs)
	incoming := make([][]refInc, n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J == i || t.A == 0 {
				continue
			}
			incoming[t.J] = append(incoming[t.J], refInc{i, t.A})
		}
	}
	diag := make([]float64, n)
	for j := range coeffs {
		diag[j] = d[j] - coeffs[j].Self
		if diag[j] <= 0 || math.IsNaN(diag[j]) {
			return nil, false
		}
	}
	groups := refDepGraph(coeffs).CondensationOrder()
	y := make([]float64, n)
	for _, grp := range groups {
		if len(grp) == 1 {
			j := grp[0]
			rhs := w[j]
			for _, in := range incoming[j] {
				rhs += in.a * y[in.i]
			}
			y[j] = rhs / diag[j]
			continue
		}
		m := len(grp)
		pos := make(map[int]int, m)
		for k, j := range grp {
			pos[j] = k
		}
		M := make([][]float64, m)
		rhs := make([]float64, m)
		for k, j := range grp {
			M[k] = make([]float64, m)
			M[k][k] = diag[j]
			rhs[k] = w[j]
			for _, in := range incoming[j] {
				if kk, inBlock := pos[in.i]; inBlock {
					M[k][kk] -= in.a
				} else {
					rhs[k] += in.a * y[in.i]
				}
			}
		}
		sol, ok := refGauss(M, rhs)
		if !ok {
			return nil, false
		}
		for k, j := range grp {
			y[j] = sol[k]
		}
	}
	return y, true
}

func refSolveForward(coeffs []delay.Coeffs, d, b []float64) ([]float64, bool) {
	n := len(coeffs)
	diag := make([]float64, n)
	for j := range coeffs {
		diag[j] = d[j] - coeffs[j].Self
		if diag[j] <= 0 {
			return nil, false
		}
	}
	groups := refDepGraph(coeffs).CondensationOrder()
	x := make([]float64, n)
	for gi := len(groups) - 1; gi >= 0; gi-- {
		grp := groups[gi]
		if len(grp) == 1 {
			i := grp[0]
			rhs := b[i]
			for _, t := range coeffs[i].Terms {
				if t.J == i {
					continue
				}
				rhs += t.A * x[t.J]
			}
			x[i] = rhs / diag[i]
			continue
		}
		m := len(grp)
		pos := make(map[int]int, m)
		for k, j := range grp {
			pos[j] = k
		}
		M := make([][]float64, m)
		rhs := make([]float64, m)
		for k, i := range grp {
			M[k] = make([]float64, m)
			M[k][k] = diag[i]
			rhs[k] = b[i]
			for _, t := range coeffs[i].Terms {
				if t.J == i {
					continue
				}
				if kk, in := pos[t.J]; in {
					M[k][kk] -= t.A
				} else {
					rhs[k] += t.A * x[t.J]
				}
			}
		}
		sol, ok := refGauss(M, rhs)
		if !ok {
			return nil, false
		}
		for k, i := range grp {
			x[i] = sol[k]
		}
	}
	return x, true
}

// mkLinInstance builds a random coefficient set with optional SCC
// blocks plus budgets, weights and right-hand sides.
func mkLinInstance(rng *rand.Rand, blocks bool) (ks []delay.Coeffs, d, w []float64) {
	n := 2 + rng.Intn(24)
	ks = make([]delay.Coeffs, n)
	base := 0
	for base < n {
		size := 1
		if blocks && rng.Intn(3) == 0 {
			size = 2 + rng.Intn(2)
			if base+size > n {
				size = n - base
			}
		}
		for i := 0; i < size; i++ {
			ks[base+i].Self = rng.Float64()
			ks[base+i].Const = rng.Float64()
			for j := 0; j < size; j++ {
				if i != j && rng.Intn(2) == 0 {
					ks[base+i].Terms = append(ks[base+i].Terms,
						delay.Term{J: base + j, A: 0.2 * rng.Float64()})
				}
			}
			for j := base + size; j < n; j++ {
				if rng.Intn(4) == 0 {
					ks[base+i].Terms = append(ks[base+i].Terms,
						delay.Term{J: j, A: rng.Float64() * 2})
				}
			}
		}
		base += size
	}
	d = make([]float64, n)
	w = make([]float64, n)
	for i := range d {
		d[i] = ks[i].Self + 0.5 + rng.Float64()*5
		w[i] = 0.5 + rng.Float64()*5
	}
	return ks, d, w
}

// TestCSRLinMatchesReferenceBitwise runs ~100 random instances through
// the persistent CSR solver and the pre-refactor reference path and
// demands bit-identical transpose and forward solutions.
func TestCSRLinMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 110; trial++ {
		blocks := trial%2 == 1
		ks, d, w := mkLinInstance(rng, blocks)
		n := len(ks)
		s := NewSolver(delay.NewCSR(ks))

		wantY, okY := refSolveTranspose(ks, d, w)
		y := make([]float64, n)
		// Two passes: the second reuses all scratch and must still match.
		for pass := 0; pass < 2; pass++ {
			err := s.SolveTransposeInto(y, d, w)
			if (err == nil) != okY {
				t.Fatalf("trial %d pass %d: transpose err %v, reference ok=%v", trial, pass, err, okY)
			}
			if err != nil {
				break
			}
			for i := range wantY {
				if y[i] != wantY[i] {
					t.Fatalf("trial %d pass %d: y[%d] = %v, reference %v (diff %g)",
						trial, pass, i, y[i], wantY[i], y[i]-wantY[i])
				}
			}
		}

		wantX, okX := refSolveForward(ks, d, w)
		x := make([]float64, n)
		for pass := 0; pass < 2; pass++ {
			err := s.SolveForwardInto(x, d, w)
			if (err == nil) != okX {
				t.Fatalf("trial %d pass %d: forward err %v, reference ok=%v", trial, pass, err, okX)
			}
			if err != nil {
				break
			}
			for i := range wantX {
				if x[i] != wantX[i] {
					t.Fatalf("trial %d pass %d: x[%d] = %v, reference %v (diff %g)",
						trial, pass, i, x[i], wantX[i], x[i]-wantX[i])
				}
			}
		}
	}
}

// TestSolveIntoZeroAllocLin asserts the persistent-solver contract at
// the lin layer, including the dense-block LU path.
func TestSolveIntoZeroAllocLin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ks []delay.Coeffs
	var d, w []float64
	for {
		ks, d, w = mkLinInstance(rng, true)
		if delay.NewCSR(ks).MaxBlock() >= 2 {
			break
		}
	}
	s := NewSolver(delay.NewCSR(ks))
	n := len(ks)
	y := make([]float64, n)
	c := make([]float64, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + rng.Float64()
	}
	if err := s.SolveTransposeInto(y, d, w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.SolveTransposeInto(y, d, w); err != nil {
			t.Fatal(err)
		}
		if err := s.SolveForwardInto(x, d, w); err != nil {
			t.Fatal(err)
		}
		if err := s.SensitivitiesInto(c, x, d, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("lin *Into solvers allocate %.1f objects per call, want 0", allocs)
	}
}
