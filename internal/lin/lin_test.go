package lin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/delay"
)

// chainCoeffs builds an acyclic 3-vertex chain: 0 loads 1 loads 2.
func chainCoeffs() []delay.Coeffs {
	return []delay.Coeffs{
		{Self: 1, Terms: []delay.Term{{J: 1, A: 2}}, Const: 3},
		{Self: 1, Terms: []delay.Term{{J: 2, A: 2}}, Const: 3},
		{Self: 1, Const: 5},
	}
}

func TestSolveForwardRoundTrip(t *testing.T) {
	// Pick sizes, evaluate delays, then recover the sizes from the
	// delays via eq. (6): (D−A)X = B.
	ks := chainCoeffs()
	x := []float64{2, 3, 4}
	d := delay.Delays(ks, x)
	b := make([]float64, len(ks))
	for i := range ks {
		b[i] = ks[i].Const
	}
	got, err := SolveForward(ks, d, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], x[i])
		}
	}
}

func TestSolveTransposeByHand(t *testing.T) {
	// Two vertices: 0 couples to 1 with a=2; budgets make diagonals 2, 4.
	ks := []delay.Coeffs{
		{Self: 1, Terms: []delay.Term{{J: 1, A: 2}}},
		{Self: 1},
	}
	d := []float64{3, 5} // diag = d - self = 2, 4
	w := []float64{1, 1}
	// Transpose system: 2·y0 = 1 → y0 = 0.5; 4·y1 − 2·y0 = 1 → y1 = 0.5.
	y, err := SolveTranspose(ks, d, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 1e-12 || math.Abs(y[1]-0.5) > 1e-12 {
		t.Fatalf("y = %v", y)
	}
}

func TestSensitivitiesPositive(t *testing.T) {
	ks := chainCoeffs()
	x := []float64{2, 3, 4}
	d := delay.Delays(ks, x)
	w := []float64{3, 3, 3}
	C, err := Sensitivities(ks, x, d, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range C {
		if c <= 0 {
			t.Fatalf("C[%d] = %g", i, c)
		}
	}
}

func TestBudgetBelowIntrinsicRejected(t *testing.T) {
	ks := []delay.Coeffs{{Self: 5, Const: 1}}
	if _, err := SolveTranspose(ks, []float64{4}, []float64{1}); err == nil {
		t.Fatal("budget below intrinsic accepted")
	}
	if _, err := SolveForward(ks, []float64{5}, []float64{1}); err == nil {
		t.Fatal("budget equal to intrinsic accepted")
	}
}

// denseSolve is an independent reference: builds (D−A)ᵀ as a dense
// matrix and solves with Gaussian elimination.
func denseSolveTranspose(ks []delay.Coeffs, d, w []float64) []float64 {
	n := len(ks)
	M := make([][]float64, n)
	for j := 0; j < n; j++ {
		M[j] = make([]float64, n)
		M[j][j] = d[j] - ks[j].Self
	}
	for i := range ks {
		for _, t := range ks[i].Terms {
			if t.J != i {
				M[t.J][i] -= t.A // transpose: row j, column i
			}
		}
	}
	b := append([]float64(nil), w...)
	// Plain Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[p][col]) {
				p = r
			}
		}
		M[col], M[p] = M[p], M[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < n; r++ {
			f := M[r][col] / M[col][col]
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	y := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= M[r][c] * y[c]
		}
		y[r] = s / M[r][r]
	}
	return y
}

// Property: the SCC block solver matches the dense reference on random
// DAG-structured coefficient sets.
func TestQuickTransposeMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		ks := make([]delay.Coeffs, n)
		for i := 0; i < n; i++ {
			ks[i].Self = rng.Float64()
			ks[i].Const = rng.Float64()
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					ks[i].Terms = append(ks[i].Terms, delay.Term{J: j, A: rng.Float64() * 2})
				}
			}
		}
		d := make([]float64, n)
		w := make([]float64, n)
		for i := range d {
			d[i] = ks[i].Self + 0.5 + rng.Float64()*5
			w[i] = 1 + rng.Float64()*5
		}
		got, err := SolveTranspose(ks, d, w)
		if err != nil {
			return false
		}
		want := denseSolveTranspose(ks, d, w)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with cyclic (intra-gate style) couplings the block solver
// still matches the dense reference — the transistor-sizing case where
// (D−A) is only *block* triangular.
func TestQuickBlockTransposeMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBlocks := 1 + rng.Intn(4)
		var ks []delay.Coeffs
		base := 0
		for bl := 0; bl < nBlocks; bl++ {
			size := 1 + rng.Intn(3)
			for i := 0; i < size; i++ {
				ks = append(ks, delay.Coeffs{Self: rng.Float64()})
			}
			for i := 0; i < size; i++ {
				for j := 0; j < size; j++ {
					if i != j && rng.Intn(2) == 0 {
						ks[base+i].Terms = append(ks[base+i].Terms,
							delay.Term{J: base + j, A: 0.2 * rng.Float64()})
					}
				}
				// forward coupling to the next block
				if bl+1 < nBlocks && rng.Intn(2) == 0 {
					ks[base+i].Terms = append(ks[base+i].Terms,
						delay.Term{J: base + size, A: rng.Float64()})
				}
			}
			base += size
		}
		n := len(ks)
		// Fix dangling forward couplings past the end.
		for i := range ks {
			valid := ks[i].Terms[:0]
			for _, t := range ks[i].Terms {
				if t.J < n {
					valid = append(valid, t)
				}
			}
			ks[i].Terms = valid
		}
		d := make([]float64, n)
		w := make([]float64, n)
		for i := range d {
			d[i] = ks[i].Self + 1 + rng.Float64()*5
			w[i] = 1 + rng.Float64()*3
		}
		got, err := SolveTranspose(ks, d, w)
		if err != nil {
			return false
		}
		want := denseSolveTranspose(ks, d, w)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatch(t *testing.T) {
	ks := chainCoeffs()
	if _, err := Sensitivities(ks, []float64{1}, []float64{1, 1, 1}, []float64{1, 1, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSolveForwardBlockCyclic(t *testing.T) {
	// Two mutually loading vertices (an intra-gate block): the forward
	// solve must recover the sizes from the delays through the dense
	// block path.
	ks := []delay.Coeffs{
		{Self: 0.5, Terms: []delay.Term{{J: 1, A: 0.4}}, Const: 2},
		{Self: 0.5, Terms: []delay.Term{{J: 0, A: 0.3}}, Const: 3},
	}
	x := []float64{2.5, 1.5}
	d := delay.Delays(ks, x)
	b := []float64{ks[0].Const, ks[1].Const}
	got, err := SolveForward(ks, d, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], x[i])
		}
	}
}

// Property: forward-solve round trip on random DAG coefficient sets:
// delays evaluated at x, then solved back, must reproduce x.
func TestQuickForwardRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		ks := make([]delay.Coeffs, n)
		for i := 0; i < n; i++ {
			ks[i].Self = rng.Float64()
			ks[i].Const = 0.5 + rng.Float64()*4
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					ks[i].Terms = append(ks[i].Terms, delay.Term{J: j, A: rng.Float64()})
				}
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 1 + rng.Float64()*10
		}
		d := delay.Delays(ks, x)
		b := make([]float64, n)
		for i := range b {
			b[i] = ks[i].Const
		}
		got, err := SolveForward(ks, d, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6*(1+x[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
