package lin

import (
	"math/rand"
	"testing"

	"minflo/internal/delay"
	"minflo/internal/par"
)

// mkWideInstance mirrors the smp parallel-test generator: a layered
// coefficient set wide enough to cross the level-parallel floor, with
// optional 2-vertex SCC blocks (dense-block path).
func mkWideInstance(rng *rand.Rand, layers, width int, blocks bool) ([]delay.Coeffs, []float64, []float64) {
	n := layers * width
	ks := make([]delay.Coeffs, n)
	for v := 0; v < n; v++ {
		ks[v].Self = rng.Float64() * 2
		ks[v].Const = rng.Float64() * 10
		l := v / width
		if l+1 < layers {
			for k := 0; k < 1+rng.Intn(3); k++ {
				j := (l+1)*width + rng.Intn(width)
				ks[v].Terms = append(ks[v].Terms, delay.Term{J: j, A: rng.Float64() * 2})
			}
		}
		if blocks && v%width%2 == 0 && v+1 < (l+1)*width {
			ks[v].Terms = append(ks[v].Terms, delay.Term{J: v + 1, A: 0.15 * rng.Float64()})
			ks[v+1].Terms = append(ks[v+1].Terms, delay.Term{J: v, A: 0.15 * rng.Float64()})
		}
	}
	d := make([]float64, n)
	w := make([]float64, n)
	for i := range d {
		d[i] = ks[i].Self + 1 + rng.Float64()*8
		w[i] = 0.5 + rng.Float64()*3
	}
	return ks, d, w
}

// TestParallelTransposeMatchesSerialBitwise is the sensitivity-solve
// determinism gate: the level-parallel transpose solve (and the
// sensitivities derived from it) at worker counts 2, 4 and 8 must be
// bit-identical to the serial solve.
func TestParallelTransposeMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		blocks := trial%2 == 1
		ks, d, w := mkWideInstance(rng, 3+rng.Intn(4), 2*delay.LevelParallelFloor+rng.Intn(200), blocks)
		csr := delay.NewCSR(ks)
		if csr.MaxLevelWidth() < delay.LevelParallelFloor {
			t.Fatalf("trial %d: max level width %d below the parallel floor — bad generator", trial, csr.MaxLevelWidth())
		}
		n := len(ks)
		x := make([]float64, n)
		for i := range x {
			x[i] = 1 + rng.Float64()*5
		}

		serial := NewSolver(csr)
		wantY := make([]float64, n)
		if err := serial.SolveTransposeInto(wantY, d, w); err != nil {
			t.Fatalf("trial %d: serial transpose: %v", trial, err)
		}
		wantC := make([]float64, n)
		if err := serial.SensitivitiesInto(wantC, x, d, w); err != nil {
			t.Fatalf("trial %d: serial sensitivities: %v", trial, err)
		}

		for _, workers := range []int{2, 4, 8} {
			pool := par.New(workers)
			ps := NewSolver(csr)
			ps.SetParallel(pool)
			gotY := make([]float64, n)
			if err := ps.SolveTransposeInto(gotY, d, w); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range wantY {
				if gotY[i] != wantY[i] {
					t.Fatalf("trial %d workers %d: y[%d] = %v, serial %v", trial, workers, i, gotY[i], wantY[i])
				}
			}
			gotC := make([]float64, n)
			if err := ps.SensitivitiesInto(gotC, x, d, w); err != nil {
				t.Fatalf("trial %d workers %d: sensitivities: %v", trial, workers, err)
			}
			for i := range wantC {
				if gotC[i] != wantC[i] {
					t.Fatalf("trial %d workers %d: c[%d] = %v, serial %v", trial, workers, i, gotC[i], wantC[i])
				}
			}
			pool.Close()
		}
	}
}
