// Package gen generates the benchmark circuits used by the experiments.
//
// The paper evaluates on the ISCAS85 suite plus 32–256 bit ripple-carry
// adders.  The ISCAS85 netlist files are not redistributable inside this
// repository, so gen builds structurally faithful synthetic equivalents:
// the same circuit families (ECC/XOR trees, priority/interrupt control,
// ALUs, a 16×16 array multiplier, a redundant adder/comparator) at
// comparable gate counts, logic depths and reconvergence profiles.  Real
// ISCAS85 files can be loaded through internal/bench instead at any
// time.  See DESIGN.md §4 for the substitution rationale and
// EXPERIMENTS.md for the realized gate counts.
package gen

import (
	"fmt"
	"math/rand"

	"minflo/internal/cell"
	"minflo/internal/circuit"
)

// FAStyle selects the gate decomposition of a full adder.
type FAStyle int

const (
	// FAXor is the compact mapping: 2 XOR2 + 3 NAND2 (5 gates/bit).
	FAXor FAStyle = iota
	// FANand is the classic 9×NAND2 full adder.
	FANand
	// FABuffered is FANand with a buffered sum (2 inverters) and a
	// doubly-repeated carry (4 inverters): 15 gates/bit, so 32 bits →
	// 480 gates and 256 bits → 3840 gates, matching the paper's adder
	// rows exactly.
	FABuffered
)

// builder wraps a circuit with auto-numbered gate names.
type builder struct {
	c *circuit.Circuit
	n int
}

func (x *builder) gate(kind cell.Kind, ins ...circuit.Ref) circuit.Ref {
	x.n++
	return x.c.AddGate(fmt.Sprintf("g%d", x.n), kind, ins...)
}

// xorNand builds a⊕b out of four NAND2 gates.
func (x *builder) xorNand(a, b circuit.Ref) circuit.Ref {
	u1 := x.gate(cell.Nand2, a, b)
	u2 := x.gate(cell.Nand2, a, u1)
	u3 := x.gate(cell.Nand2, b, u1)
	return x.gate(cell.Nand2, u2, u3)
}

// xor emits either a library XOR2 or its 4-NAND expansion.
func (x *builder) xor(a, b circuit.Ref, expand bool) circuit.Ref {
	if expand {
		return x.xorNand(a, b)
	}
	return x.gate(cell.Xor2, a, b)
}

// fullAdder returns (sum, carry) in the chosen style.
func (x *builder) fullAdder(a, b, cin circuit.Ref, style FAStyle) (sum, cout circuit.Ref) {
	switch style {
	case FAXor:
		x1 := x.gate(cell.Xor2, a, b)
		sum = x.gate(cell.Xor2, x1, cin)
		n1 := x.gate(cell.Nand2, a, b)
		n2 := x.gate(cell.Nand2, x1, cin)
		cout = x.gate(cell.Nand2, n1, n2)
	case FANand:
		m1 := x.gate(cell.Nand2, a, b)
		m2 := x.gate(cell.Nand2, a, m1)
		m3 := x.gate(cell.Nand2, b, m1)
		x1 := x.gate(cell.Nand2, m2, m3) // a ⊕ b
		m4 := x.gate(cell.Nand2, x1, cin)
		m5 := x.gate(cell.Nand2, x1, m4)
		m6 := x.gate(cell.Nand2, cin, m4)
		sum = x.gate(cell.Nand2, m5, m6)
		cout = x.gate(cell.Nand2, m4, m1)
	case FABuffered:
		s, cy := x.fullAdder(a, b, cin, FANand)
		sum = x.gate(cell.Inv, x.gate(cell.Inv, s))
		cy = x.gate(cell.Inv, x.gate(cell.Inv, cy))
		cout = x.gate(cell.Inv, x.gate(cell.Inv, cy))
	default:
		panic("gen: unknown FA style")
	}
	return sum, cout
}

// halfAdder returns (sum, carry): 4-NAND XOR plus NAND+INV carry.
func (x *builder) halfAdder(a, b circuit.Ref) (sum, cout circuit.Ref) {
	n := x.gate(cell.Nand2, a, b)
	m2 := x.gate(cell.Nand2, a, n)
	m3 := x.gate(cell.Nand2, b, n)
	sum = x.gate(cell.Nand2, m2, m3)
	cout = x.gate(cell.Inv, n)
	return sum, cout
}

// andTree reduces refs with AND2/3/4 cells to a single signal.
func (x *builder) andTree(refs []circuit.Ref) circuit.Ref {
	return x.reduceTree(refs, cell.AndFor)
}

// orTree reduces refs with OR2/3/4 cells to a single signal.
func (x *builder) orTree(refs []circuit.Ref) circuit.Ref {
	return x.reduceTree(refs, cell.OrFor)
}

func (x *builder) reduceTree(refs []circuit.Ref, pick func(int) (cell.Kind, bool)) circuit.Ref {
	if len(refs) == 0 {
		panic("gen: empty reduction")
	}
	for len(refs) > 1 {
		var next []circuit.Ref
		for i := 0; i < len(refs); {
			k := 4
			if rem := len(refs) - i; rem < k {
				k = rem
			}
			if k == 1 {
				next = append(next, refs[i])
				i++
				continue
			}
			kind, ok := pick(k)
			if !ok {
				panic("gen: reduction fanin unavailable")
			}
			next = append(next, x.gate(kind, refs[i:i+k]...))
			i += k
		}
		refs = next
	}
	return refs[0]
}

// xorTree reduces refs pairwise with XOR gates.
func (x *builder) xorTree(refs []circuit.Ref, expand bool) circuit.Ref {
	if len(refs) == 0 {
		panic("gen: empty xor tree")
	}
	for len(refs) > 1 {
		var next []circuit.Ref
		for i := 0; i+1 < len(refs); i += 2 {
			next = append(next, x.xor(refs[i], refs[i+1], expand))
		}
		if len(refs)%2 == 1 {
			next = append(next, refs[len(refs)-1])
		}
		refs = next
	}
	return refs[0]
}

// mux2 selects b when s else a: !( !(a·!s) · !(b·s) ) built from NANDs.
func (x *builder) mux2(a, b, s circuit.Ref) circuit.Ref {
	ns := x.gate(cell.Inv, s)
	t1 := x.gate(cell.Nand2, a, ns)
	t2 := x.gate(cell.Nand2, b, s)
	return x.gate(cell.Nand2, t1, t2)
}

// --- Benchmark circuits ---------------------------------------------------

// C17 builds the 6-NAND ISCAS c17 circuit (the published netlist).
func C17() *circuit.Circuit {
	c := circuit.New("c17")
	g1 := c.AddPI("G1")
	g2 := c.AddPI("G2")
	g3 := c.AddPI("G3")
	g6 := c.AddPI("G6")
	g7 := c.AddPI("G7")
	g10 := c.AddGate("G10", cell.Nand2, g1, g3)
	g11 := c.AddGate("G11", cell.Nand2, g3, g6)
	g16 := c.AddGate("G16", cell.Nand2, g2, g11)
	g19 := c.AddGate("G19", cell.Nand2, g11, g7)
	g22 := c.AddGate("G22", cell.Nand2, g10, g16)
	g23 := c.AddGate("G23", cell.Nand2, g16, g19)
	c.MarkPO(g22)
	c.MarkPO(g23)
	return c
}

// InverterChain builds a chain of n inverters — the minimal sizing
// smoke-test workload.
func InverterChain(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("chain%d", n))
	x := &builder{c: c}
	r := c.AddPI("in")
	for i := 0; i < n; i++ {
		r = x.gate(cell.Inv, r)
	}
	c.MarkPO(r)
	return c
}

// Fork builds the paper's Example 1 topology: gate A fans out to gates B
// and C, both feeding primary outputs.  TILOS's greedy sensitivity
// ordering keeps bumping B and C; the globally better move is sizing A.
func Fork() *circuit.Circuit {
	c := circuit.New("example1-fork")
	in1 := c.AddPI("in1")
	in2 := c.AddPI("in2")
	a := c.AddGate("A", cell.Nand2, in1, in2)
	bg := c.AddGate("B", cell.Nand2, a, in2)
	cg := c.AddGate("C", cell.Nand2, a, in1)
	c.MarkPO(bg)
	c.MarkPO(cg)
	return c
}

// RippleAdder builds a width-bit ripple-carry adder in the given style.
// FABuffered at 32 bits yields exactly 480 gates (the paper's adder32).
func RippleAdder(width int, style FAStyle) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("adder%d", width))
	x := &builder{c: c}
	carry := c.AddPI("cin")
	type pair struct{ a, b circuit.Ref }
	ins := make([]pair, width)
	for i := 0; i < width; i++ {
		ins[i] = pair{c.AddPI(fmt.Sprintf("a%d", i)), c.AddPI(fmt.Sprintf("b%d", i))}
	}
	for i := 0; i < width; i++ {
		var sum circuit.Ref
		sum, carry = x.fullAdder(ins[i].a, ins[i].b, carry, style)
		c.MarkPO(sum)
	}
	c.MarkPO(carry)
	return c
}

// ArrayMultiplier builds an n×n column-compression array multiplier —
// the c6288 structural stand-in at n=16 (~2.3k gates, the same massive
// path reconvergence through the adder array the paper calls out).
// Product bit k is the fully reduced column k.
func ArrayMultiplier(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("mult%dx%d", n, n))
	x := &builder{c: c}
	a := make([]circuit.Ref, n)
	b := make([]circuit.Ref, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddPI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddPI(fmt.Sprintf("b%d", i))
	}
	cols := make([][]circuit.Ref, 2*n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], x.gate(cell.And2, a[j], b[i]))
		}
	}
	for k := 0; k <= 2*n; k++ {
		for len(cols[k]) > 2 {
			m := len(cols[k])
			s, cy := x.fullAdder(cols[k][m-3], cols[k][m-2], cols[k][m-1], FANand)
			cols[k] = append(cols[k][:m-3], s)
			cols[k+1] = append(cols[k+1], cy)
		}
		if len(cols[k]) == 2 {
			s, cy := x.halfAdder(cols[k][0], cols[k][1])
			cols[k] = []circuit.Ref{s}
			cols[k+1] = append(cols[k+1], cy)
		}
		if len(cols[k]) == 1 {
			c.MarkPO(cols[k][0])
		}
	}
	return c
}

// ECCOptions parameterizes the error-correcting-code circuits (the
// c499/c1355/c1908 family).
type ECCOptions struct {
	DataBits  int  // message width
	Syndromes int  // number of parity trees
	ExpandXor bool // expand XOR2 into 4 NAND2 (c1355 is c499 expanded)
	Detect    bool // add double-error-detect logic (SEC/DED, c1908-like)
	Buffered  bool // buffer corrected outputs (adds 2 INV per data bit)
}

// ECC builds a single-error-correcting circuit: overlapping parity
// (syndrome) XOR trees over the data bits, a per-bit syndrome-match
// decoder, and output correction XORs.  Overlapping parity groups give
// the heavy fanin reconvergence characteristic of c499/c1355/c1908.
func ECC(name string, o ECCOptions) *circuit.Circuit {
	c := circuit.New(name)
	x := &builder{c: c}
	data := make([]circuit.Ref, o.DataBits)
	for i := range data {
		data[i] = c.AddPI(fmt.Sprintf("d%d", i))
	}
	checks := make([]circuit.Ref, o.Syndromes)
	for k := range checks {
		checks[k] = c.AddPI(fmt.Sprintf("p%d", k))
	}
	// Group membership: data bit i is in parity group k iff bit (k mod B)
	// of (i+1) is set, rotated by k/B so the eight groups overlap but
	// differ.  Every bit lands in roughly half the groups.
	bits := 1
	for 1<<bits < o.DataBits+1 {
		bits++
	}
	inGroup := func(i, k int) bool {
		code := i + 1
		s := (k / bits) % bits
		rot := ((code >> s) | (code << (bits - s))) & (1<<bits - 1)
		return (rot>>(k%bits))&1 == 1
	}
	syn := make([]circuit.Ref, o.Syndromes)
	nsyn := make([]circuit.Ref, o.Syndromes)
	haveNsyn := make([]bool, o.Syndromes)
	for k := 0; k < o.Syndromes; k++ {
		members := []circuit.Ref{checks[k]}
		for i := 0; i < o.DataBits; i++ {
			if inGroup(i, k) {
				members = append(members, data[i])
			}
		}
		syn[k] = x.xorTree(members, o.ExpandXor)
	}
	negSyn := func(k int) circuit.Ref {
		if !haveNsyn[k] {
			nsyn[k] = x.gate(cell.Inv, syn[k])
			haveNsyn[k] = true
		}
		return nsyn[k]
	}
	// Per-bit decode: match when the syndrome pattern equals the bit's
	// group signature.
	for i := 0; i < o.DataBits; i++ {
		terms := make([]circuit.Ref, o.Syndromes)
		for k := 0; k < o.Syndromes; k++ {
			if inGroup(i, k) {
				terms[k] = syn[k]
			} else {
				terms[k] = negSyn(k)
			}
		}
		match := x.andTree(terms)
		corrected := x.xor(data[i], match, o.ExpandXor)
		if o.Buffered {
			corrected = x.gate(cell.Inv, x.gate(cell.Inv, corrected))
		}
		c.MarkPO(corrected)
	}
	if o.Detect {
		// Double-error detect: any syndrome active while overall parity
		// (tree over all data+checks) is clean.
		anySyn := x.orTree(syn)
		overall := x.xorTree(append(append([]circuit.Ref{}, data...), checks...), o.ExpandXor)
		nOverall := x.gate(cell.Inv, overall)
		ded := x.gate(cell.And2, anySyn, nOverall)
		c.MarkPO(ded)
		c.MarkPO(anySyn)
	}
	return c
}

// C499 builds the c499 stand-in: 32-bit SEC, XOR2 library cells.
func C499() *circuit.Circuit {
	return ECC("c499s", ECCOptions{DataBits: 32, Syndromes: 6})
}

// C1355 builds the c1355 stand-in: the same function as c499 with every
// XOR2 expanded into four NAND2 gates, as in the real suite.
func C1355() *circuit.Circuit {
	return ECC("c1355s", ECCOptions{DataBits: 32, Syndromes: 6, ExpandXor: true})
}

// C1908 builds the c1908 stand-in: 16-bit SEC/DED with expanded XORs and
// buffered outputs.
func C1908() *circuit.Circuit {
	return ECC("c1908s", ECCOptions{DataBits: 33, Syndromes: 8, ExpandXor: true, Detect: true, Buffered: true})
}

// InterruptController builds the c432 stand-in: `channels` request lines
// in banks of 9 with bank-priority and within-bank priority resolution
// (the real c432 is a 27-channel interrupt controller).
func InterruptController(channels int) *circuit.Circuit {
	c := circuit.New("c432s")
	x := &builder{c: c}
	req := make([]circuit.Ref, channels)
	en := make([]circuit.Ref, channels)
	for i := range req {
		req[i] = c.AddPI(fmt.Sprintf("req%d", i))
	}
	for i := range en {
		en[i] = c.AddPI(fmt.Sprintf("en%d", i))
	}
	const bankSize = 9
	var bankActive []circuit.Ref
	var granted []circuit.Ref
	for b := 0; b*bankSize < channels; b++ {
		lo := b * bankSize
		hi := lo + bankSize
		if hi > channels {
			hi = channels
		}
		// Gated requests.
		gated := make([]circuit.Ref, hi-lo)
		for i := lo; i < hi; i++ {
			gated[i-lo] = x.gate(cell.And2, req[i], en[i])
		}
		// Within-bank priority: grant_i = gated_i AND NOT(any earlier).
		prefix := gated[0]
		grants := []circuit.Ref{gated[0]}
		for i := 1; i < len(gated); i++ {
			blocked := x.gate(cell.Inv, prefix)
			grants = append(grants, x.gate(cell.And2, gated[i], blocked))
			if i+1 < len(gated) {
				prefix = x.gate(cell.Or2, prefix, gated[i])
			}
		}
		bankActive = append(bankActive, x.orTree(gated))
		granted = append(granted, grants...)
	}
	// Bank priority masks lower banks.
	for bi := 1; bi < len(bankActive); bi++ {
		higher := x.orTree(bankActive[:bi])
		nh := x.gate(cell.Inv, higher)
		for i := bi * bankSize; i < (bi+1)*bankSize && i < len(granted); i++ {
			granted[i] = x.gate(cell.And2, granted[i], nh)
		}
	}
	// Encode the granted channel number.
	bits := 1
	for 1<<bits < channels {
		bits++
	}
	for bit := 0; bit < bits; bit++ {
		var terms []circuit.Ref
		for i := 0; i < channels; i++ {
			if (i>>bit)&1 == 1 {
				terms = append(terms, granted[i])
			}
		}
		c.MarkPO(x.orTree(terms))
	}
	c.MarkPO(x.orTree(bankActive)) // "interrupt pending"
	return c
}

// ALUOptions parameterizes the ALU family (c880/c2670/c3540/c5315
// stand-ins).
type ALUOptions struct {
	Width      int
	Functions  int  // 2, 4 or 8 selectable functions
	WithParity bool // parity tree over the result
	WithCmp    bool // magnitude comparator against operand B
	WithSub    bool // subtract support: B conditionally inverted per bit
	WithZero   bool // zero-detect flag over the result
	WithShift  bool // third mux level selecting a shifted result
	Buffered   bool // two-inverter buffers on the A operand
	Lanes      int  // replicated datapath lanes (≥1)
}

// ALU builds an adder/logic datapath with function multiplexers — the
// structural family of the ISCAS85 ALU/control circuits.
func ALU(name string, o ALUOptions) *circuit.Circuit {
	if o.Lanes < 1 {
		o.Lanes = 1
	}
	c := circuit.New(name)
	x := &builder{c: c}
	a := make([]circuit.Ref, o.Width)
	b := make([]circuit.Ref, o.Width)
	for i := 0; i < o.Width; i++ {
		a[i] = c.AddPI(fmt.Sprintf("a%d", i))
		b[i] = c.AddPI(fmt.Sprintf("b%d", i))
	}
	selBits := 1
	for 1<<selBits < o.Functions {
		selBits++
	}
	sel := make([]circuit.Ref, selBits)
	for s := range sel {
		sel[s] = c.AddPI(fmt.Sprintf("sel%d", s))
	}
	cin := c.AddPI("cin")
	var subSel circuit.Ref
	if o.WithSub {
		subSel = c.AddPI("sub")
	}

	for lane := 0; lane < o.Lanes; lane++ {
		carry := cin
		aOp := a
		if o.Buffered {
			aOp = make([]circuit.Ref, o.Width)
			for i := range a {
				aOp[i] = x.gate(cell.Inv, x.gate(cell.Inv, a[i]))
			}
		}
		bOp := b
		if o.WithSub {
			// b ⊕ sub: conditional inversion for subtraction.
			bOp = make([]circuit.Ref, o.Width)
			for i := range b {
				bOp[i] = x.xorNand(b[i], subSel)
			}
		}
		var result []circuit.Ref
		for i := 0; i < o.Width; i++ {
			// Arithmetic: full adder.
			var sum circuit.Ref
			sum, carry = x.fullAdder(aOp[i], bOp[i], carry, FANand)
			// Logic unit.
			andv := x.gate(cell.And2, aOp[i], bOp[i])
			// Function mux (2 levels of mux2).
			m0 := x.mux2(sum, andv, sel[0])
			var out circuit.Ref
			if o.Functions > 2 && selBits > 1 {
				orv := x.gate(cell.Or2, aOp[i], bOp[i])
				xorv := x.xorNand(aOp[i], bOp[i])
				m1 := x.mux2(orv, xorv, sel[0])
				out = x.mux2(m0, m1, sel[1])
			} else {
				out = m0
			}
			if o.WithShift {
				// Shift function: select the neighbouring result bit.
				prev := out
				if i > 0 {
					prev = result[i-1]
				}
				out = x.mux2(out, prev, sel[selBits-1])
			}
			result = append(result, out)
			c.MarkPO(out)
		}
		c.MarkPO(carry)
		if o.WithZero {
			c.MarkPO(x.gate(cell.Inv, x.orTree(result)))
		}
		if o.WithParity {
			c.MarkPO(x.xorTree(result, true))
		}
		if o.WithCmp {
			// result == B comparator plus a greater-than ripple.
			eqs := make([]circuit.Ref, o.Width)
			gt := x.gate(cell.And2, result[0], x.gate(cell.Inv, b[0]))
			for i := 0; i < o.Width; i++ {
				eqs[i] = x.gate(cell.Xnor2, result[i], b[i])
				if i > 0 {
					bi := x.gate(cell.And2, result[i], x.gate(cell.Inv, b[i]))
					gt = x.mux2(gt, bi, x.gate(cell.Inv, eqs[i]))
				}
			}
			c.MarkPO(x.andTree(eqs))
			c.MarkPO(gt)
		}
	}
	return c
}

// C880 builds the c880 stand-in (8-bit 4-function ALU with subtract,
// zero flag and comparator).
func C880() *circuit.Circuit {
	return ALU("c880s", ALUOptions{Width: 8, Functions: 4, WithParity: true, WithCmp: true,
		WithSub: true, WithZero: true, Buffered: true})
}

// C2670 builds the c2670 stand-in (12-bit ALU, two lanes, comparator
// and parity — ALU-plus-control scale).
func C2670() *circuit.Circuit {
	return ALU("c2670s", ALUOptions{Width: 12, Functions: 4, WithParity: true, WithCmp: true,
		WithSub: true, WithZero: true, Buffered: true, Lanes: 2})
}

// C3540 builds the c3540 stand-in (16-bit ALU with shifter, two lanes).
func C3540() *circuit.Circuit {
	return ALU("c3540s", ALUOptions{Width: 16, Functions: 4, WithParity: true, WithCmp: true,
		WithSub: true, WithZero: true, WithShift: true, Buffered: true, Lanes: 2})
}

// C5315 builds the c5315 stand-in (16-bit ALU with shifter, three lanes).
func C5315() *circuit.Circuit {
	return ALU("c5315s", ALUOptions{Width: 16, Functions: 4, WithParity: true, WithCmp: true,
		WithSub: true, WithZero: true, WithShift: true, Buffered: true, Lanes: 3})
}

// C6288 builds the c6288 stand-in (16×16 array multiplier).
func C6288() *circuit.Circuit { return ArrayMultiplier(16) }

// C7552 builds the c7552 stand-in: a triplicated 32-bit add/subtract
// datapath with cross-lane comparators and parity checking (the real
// c7552 is a 32-bit adder/comparator with error checking).
func C7552() *circuit.Circuit {
	c := circuit.New("c7552s")
	x := &builder{c: c}
	const width = 32
	const lanes = 3
	a := make([]circuit.Ref, width)
	b := make([]circuit.Ref, width)
	for i := 0; i < width; i++ {
		a[i] = c.AddPI(fmt.Sprintf("a%d", i))
		b[i] = c.AddPI(fmt.Sprintf("b%d", i))
	}
	cin := c.AddPI("cin")
	one := c.AddPI("bin") // borrow-in for the subtract path
	sums := make([][]circuit.Ref, lanes)
	diffs := make([][]circuit.Ref, lanes)
	for l := 0; l < lanes; l++ {
		carry := cin
		sums[l] = make([]circuit.Ref, width)
		for i := 0; i < width; i++ {
			sums[l][i], carry = x.fullAdder(a[i], b[i], carry, FABuffered)
		}
		c.MarkPO(carry)
		// Subtract path: a + !b + bin.
		borrow := one
		diffs[l] = make([]circuit.Ref, width)
		for i := 0; i < width; i++ {
			nb := x.gate(cell.Inv, b[i])
			diffs[l][i], borrow = x.fullAdder(a[i], nb, borrow, FABuffered)
		}
		c.MarkPO(borrow)
	}
	// Cross-lane comparators on both paths.
	for pair := 0; pair < 2; pair++ {
		eqs := make([]circuit.Ref, 0, 2*width)
		for i := 0; i < width; i++ {
			eqs = append(eqs, x.gate(cell.Xnor2, sums[pair][i], sums[pair+1][i]))
			eqs = append(eqs, x.gate(cell.Xnor2, diffs[pair][i], diffs[pair+1][i]))
		}
		c.MarkPO(x.andTree(eqs))
	}
	// Results (lane 0) and parities.
	for i := 0; i < width; i++ {
		c.MarkPO(sums[0][i])
		c.MarkPO(diffs[0][i])
	}
	c.MarkPO(x.xorTree(sums[0], true))
	c.MarkPO(x.xorTree(diffs[0], true))
	return c
}

// C432 builds the c432 stand-in (27-channel interrupt controller).
func C432() *circuit.Circuit { return InterruptController(27) }

// Mesh builds a rows×cols grid of NAND2 gates: gate (r,c) is driven by
// its upper neighbour (r−1,c) and left neighbour (r,c−1), with primary
// inputs feeding the top row and left column; the right column and
// bottom row are primary outputs.  The mesh is the deep, regular,
// locally-coupled scaling workload (depth rows+cols, every interior
// gate fanning out twice): Mesh(175,175) is ~30k gates, Mesh(320,320)
// is ~102k — the §3 run-time-growth claim well beyond ISCAS85 sizes.
func Mesh(rows, cols int) *circuit.Circuit {
	if rows < 1 || cols < 1 {
		panic("gen: mesh needs positive dimensions")
	}
	c := circuit.New(fmt.Sprintf("mesh%dx%d", rows, cols))
	x := &builder{c: c}
	top := make([]circuit.Ref, cols)
	for j := range top {
		top[j] = c.AddPI(fmt.Sprintf("t%d", j))
	}
	left := make([]circuit.Ref, rows)
	for i := range left {
		left[i] = c.AddPI(fmt.Sprintf("l%d", i))
	}
	prevRow := make([]circuit.Ref, cols)
	row := make([]circuit.Ref, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			up := top[j]
			if i > 0 {
				up = prevRow[j]
			}
			lf := left[i]
			if j > 0 {
				lf = row[j-1]
			}
			row[j] = x.gate(cell.Nand2, up, lf)
		}
		if i == rows-1 {
			for j := 0; j < cols; j++ {
				c.MarkPO(row[j])
			}
		} else {
			c.MarkPO(row[cols-1])
		}
		prevRow, row = row, prevRow
	}
	return c
}

// BalancedTree builds a complete binary NAND tree over `leaves` primary
// inputs (leaves−1 gates, depth ⌈log2 leaves⌉) — the wide, shallow
// counterpart of Mesh for the scaling suite: BalancedTree(32768) is
// ~33k gates at depth 15, BalancedTree(1<<17) is ~131k.
func BalancedTree(leaves int) *circuit.Circuit {
	if leaves < 2 {
		panic("gen: tree needs at least two leaves")
	}
	c := circuit.New(fmt.Sprintf("tree%d", leaves))
	x := &builder{c: c}
	level := make([]circuit.Ref, leaves)
	for i := range level {
		level[i] = c.AddPI(fmt.Sprintf("i%d", i))
	}
	for len(level) > 1 {
		var next []circuit.Ref
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, x.gate(cell.Nand2, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	c.MarkPO(level[0])
	return c
}

// RandomLogic builds a pseudo-random DAG of small cells for property
// tests: nPIs inputs, nGates gates, every gate's inputs drawn from
// earlier signals, all sinks marked as POs.
func RandomLogic(nPIs, nGates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("rand%d_%d", nGates, seed))
	x := &builder{c: c}
	var pool []circuit.Ref
	for i := 0; i < nPIs; i++ {
		pool = append(pool, c.AddPI(fmt.Sprintf("i%d", i)))
	}
	kinds := []cell.Kind{cell.Nand2, cell.Nor2, cell.Inv, cell.And2, cell.Or2, cell.Xor2, cell.Nand3, cell.Nor3}
	for g := 0; g < nGates; g++ {
		k := kinds[rng.Intn(len(kinds))]
		need := cellInputs(k)
		ins := make([]circuit.Ref, need)
		for i := range ins {
			ins[i] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, x.gate(k, ins...))
	}
	// Mark every undriven signal as a PO.
	used := make(map[circuit.Ref]bool)
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Ins {
			used[in] = true
		}
	}
	marked := 0
	for gi := range c.Gates {
		r := circuit.GateRef(gi)
		if !used[r] {
			c.MarkPO(r)
			marked++
		}
	}
	if marked == 0 {
		c.MarkPO(circuit.GateRef(len(c.Gates) - 1))
	}
	return c
}

func cellInputs(k cell.Kind) int { return cell.Get(k).NumInputs }

// Suite returns the full Table-1 benchmark list in paper order.
func Suite() []*circuit.Circuit {
	return []*circuit.Circuit{
		RippleAdder(32, FABuffered),
		RippleAdder(256, FABuffered),
		C432(),
		C499(),
		C880(),
		C1355(),
		C1908(),
		C2670(),
		C3540(),
		C5315(),
		C6288(),
		C7552(),
	}
}
