package gen

import (
	"math/rand"
	"testing"

	"minflo/internal/circuit"
)

// evalAdder drives the adder with integers and checks the sum.
func evalAdder(t *testing.T, c *circuit.Circuit, width int, a, b uint64, cin bool) {
	t.Helper()
	in := make([]bool, c.NumPIs())
	// PI order: cin, then a0,b0,a1,b1,...
	in[0] = cin
	for i := 0; i < width; i++ {
		in[1+2*i] = a>>i&1 == 1
		in[2+2*i] = b>>i&1 == 1
	}
	out, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	// PO order: sum0..sum_{w-1}, carry.
	want := a + b
	if cin {
		want++
	}
	for i := 0; i < width; i++ {
		if out[i] != (want>>i&1 == 1) {
			t.Fatalf("adder%d(%d,%d,%v): sum bit %d wrong", width, a, b, cin, i)
		}
	}
	if out[width] != (want>>width&1 == 1) {
		t.Fatalf("adder%d(%d,%d,%v): carry wrong", width, a, b, cin)
	}
}

func TestRippleAdderFunctional(t *testing.T) {
	for _, style := range []FAStyle{FAXor, FANand, FABuffered} {
		c := RippleAdder(8, style)
		if err := c.Validate(); err != nil {
			t.Fatalf("style %d: %v", style, err)
		}
		rng := rand.New(rand.NewSource(int64(style)))
		for trial := 0; trial < 64; trial++ {
			a := uint64(rng.Intn(256))
			b := uint64(rng.Intn(256))
			evalAdder(t, c, 8, a, b, rng.Intn(2) == 1)
		}
	}
}

func TestRippleAdderPaperGateCounts(t *testing.T) {
	// Table 1 reports 480 gates for adder32 and 3840 for adder256; the
	// FABuffered decomposition reproduces both exactly.
	if got := RippleAdder(32, FABuffered).NumGates(); got != 480 {
		t.Errorf("adder32: %d gates, want 480", got)
	}
	if got := RippleAdder(256, FABuffered).NumGates(); got != 3840 {
		t.Errorf("adder256: %d gates, want 3840", got)
	}
}

func TestArrayMultiplierFunctional(t *testing.T) {
	const n = 4
	c := ArrayMultiplier(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a>>i&1 == 1   // a0..a3 first
				in[n+i] = b>>i&1 == 1 // then b0..b3
			}
			out, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			want := a * b
			if len(out) < 2*n-1 {
				t.Fatalf("only %d product bits", len(out))
			}
			var got uint64
			for i, bit := range out {
				if bit {
					got |= 1 << i
				}
			}
			if got != want {
				t.Fatalf("%d*%d = %d, circuit says %d", a, b, want, got)
			}
		}
	}
}

func TestArrayMultiplierInputOrder(t *testing.T) {
	c := ArrayMultiplier(4)
	// PI names must be a0..a3 then b0..b3 for the functional test's
	// indexing to stay meaningful.
	wantNames := []string{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	for i, w := range wantNames {
		if c.PIs[i] != w {
			t.Fatalf("PI %d is %q, want %q", i, c.PIs[i], w)
		}
	}
}

func TestC17Functional(t *testing.T) {
	c := C17()
	// Published c17 truth: G22 = NAND(G10,G16), ... spot-check a few.
	cases := []struct {
		in  [5]bool // G1 G2 G3 G6 G7
		g22 bool
		g23 bool
	}{
		// Worked by hand from the published netlist.
		{[5]bool{false, false, false, false, false}, false, false},
		{[5]bool{true, true, true, true, true}, true, false},
		{[5]bool{true, false, true, false, false}, true, false},
		{[5]bool{false, true, false, true, false}, true, true},
		{[5]bool{false, false, true, true, true}, false, false},
	}
	for _, tc := range cases {
		out, err := c.Evaluate(tc.in[:])
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.g22 || out[1] != tc.g23 {
			t.Errorf("c17%v = %v, want [%v %v]", tc.in, out, tc.g22, tc.g23)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	// Gate counts must stay within 10% of the paper's Table 1 column.
	targets := map[string]int{
		"adder32":   480,
		"adder256":  3840,
		"c432s":     160,
		"c499s":     202,
		"c880s":     383,
		"c1355s":    546,
		"c1908s":    880,
		"c2670s":    1193,
		"c3540s":    1669,
		"c5315s":    2307,
		"mult16x16": 2416,
		"c7552s":    3512,
	}
	suite := Suite()
	if len(suite) != 12 {
		t.Fatalf("suite has %d circuits, want 12", len(suite))
	}
	for _, c := range suite {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		target, ok := targets[c.Name]
		if !ok {
			t.Errorf("unexpected suite member %q", c.Name)
			continue
		}
		got := c.NumGates()
		dev := float64(got-target) / float64(target)
		if dev < -0.10 || dev > 0.10 {
			t.Errorf("%s: %d gates vs target %d (%.0f%% off)", c.Name, got, target, 100*dev)
		}
		// No dangling gates: every gate drives something.
		fan, po := c.Fanouts()
		for gi := range c.Gates {
			if len(fan[gi])+po[gi] == 0 {
				t.Errorf("%s: gate %q dangles", c.Name, c.Gates[gi].Name)
			}
		}
	}
}

func TestEccCorrectsSingleBitErrors(t *testing.T) {
	// The SEC stand-in must actually correct any single data-bit flip
	// when the check bits are consistent (encode = compute syndromes of
	// clean data with check inputs at the tree parity).
	o := ECCOptions{DataBits: 8, Syndromes: 5}
	c := ECC("ecc8", o)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		data := make([]bool, o.DataBits)
		for i := range data {
			data[i] = rng.Intn(2) == 1
		}
		// Compute consistent check bits: parity of each group.
		checks := make([]bool, o.Syndromes)
		for k := range checks {
			// Mirror the generator's group function via brute force: a
			// check bit that zeroes the syndrome tree.
			checks[k] = groupParity(c, data, k, o)
		}
		// No-error case: outputs must equal data.
		in := append(append([]bool{}, data...), checks...)
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < o.DataBits; i++ {
			if out[i] != data[i] {
				t.Fatalf("clean word corrupted at bit %d", i)
			}
		}
		// Single-bit error must be corrected.
		flip := rng.Intn(o.DataBits)
		bad := append([]bool{}, data...)
		bad[flip] = !bad[flip]
		in = append(append([]bool{}, bad...), checks...)
		out, err = c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < o.DataBits; i++ {
			if out[i] != data[i] {
				t.Fatalf("flip at %d not corrected (bit %d wrong)", flip, i)
			}
		}
	}
}

// groupParity extracts the generator's group membership by flipping
// data bits one at a time against an all-false baseline.
func groupParity(c *circuit.Circuit, data []bool, k int, o ECCOptions) bool {
	par := false
	for i := 0; i < o.DataBits; i++ {
		if data[i] && bitInGroup(c, i, k, o) {
			par = !par
		}
	}
	return par
}

// bitInGroup probes membership: flip data bit i with checks all-false
// and see whether syndrome... membership is deterministic, mirror the
// generator's formula directly instead.
func bitInGroup(_ *circuit.Circuit, i, k int, o ECCOptions) bool {
	bits := 1
	for 1<<bits < o.DataBits+1 {
		bits++
	}
	code := i + 1
	s := (k / bits) % bits
	rot := ((code >> s) | (code << (bits - s))) & (1<<bits - 1)
	return (rot>>(k%bits))&1 == 1
}

func TestInterruptControllerPriority(t *testing.T) {
	c := InterruptController(27)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// All enables on, single request on channel 5: encoded outputs must
	// spell 5 and "pending" must be high.
	in := make([]bool, c.NumPIs())
	for i := 27; i < 54; i++ {
		in[i] = true // enables
	}
	in[5] = true
	out, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	bits := len(out) - 1
	var got int
	for b := 0; b < bits; b++ {
		if out[b] {
			got |= 1 << b
		}
	}
	if got != 5 {
		t.Fatalf("encoded channel %d, want 5 (out=%v)", got, out)
	}
	if !out[bits] {
		t.Fatal("pending flag low")
	}
	// No requests: everything low.
	for i := range in[:27] {
		in[i] = false
	}
	out, _ = c.Evaluate(in)
	for i, b := range out {
		if b {
			t.Fatalf("output %d high with no requests", i)
		}
	}
}

func TestRandomLogicValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := RandomLogic(5, 50, seed)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fan, po := c.Fanouts()
		for gi := range c.Gates {
			if len(fan[gi])+po[gi] == 0 {
				t.Fatalf("seed %d: dangling gate", seed)
			}
		}
	}
}

func TestInverterChain(t *testing.T) {
	c := InverterChain(5)
	out, err := c.Evaluate([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false { // odd chain inverts
		t.Fatal("chain5(true) should be false")
	}
	if c.NumGates() != 5 {
		t.Fatalf("chain has %d gates", c.NumGates())
	}
}

func TestForkShape(t *testing.T) {
	c := Fork()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	fan, _ := c.Fanouts()
	if len(fan[0]) != 2 {
		t.Fatalf("gate A should drive two gates, drives %d", len(fan[0]))
	}
}

func TestC7552AdderLanesFunctional(t *testing.T) {
	// The c7552 stand-in's first sum lane must compute a+b+cin; the
	// first diff lane a+~b+bin.
	c := C7552()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		a := rng.Uint64() & 0xFFFFFFFF
		b := rng.Uint64() & 0xFFFFFFFF
		in := make([]bool, c.NumPIs())
		// PI order is interleaved: a0, b0, a1, b1, ..., then cin, bin.
		for i := 0; i < 32; i++ {
			in[2*i] = a>>i&1 == 1
			in[2*i+1] = b>>i&1 == 1
		}
		// cin = 0, bin = 1 (so diff = a - b in two's complement).
		in[65] = true
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		// PO order: per lane (sum carry, diff borrow) ×3, comparators ×2,
		// then 32×(sum bit, diff bit), then 2 parity bits.
		// Find the interleaved result bits at offset 8.
		base := 8
		var sum, diff uint64
		for i := 0; i < 32; i++ {
			if out[base+2*i] {
				sum |= 1 << i
			}
			if out[base+2*i+1] {
				diff |= 1 << i
			}
		}
		wantSum := (a + b) & 0xFFFFFFFF
		wantDiff := (a - b) & 0xFFFFFFFF
		if sum != wantSum {
			t.Fatalf("sum lane: %x + %x = %x, got %x", a, b, wantSum, sum)
		}
		if diff != wantDiff {
			t.Fatalf("diff lane: %x - %x = %x, got %x", a, b, wantDiff, diff)
		}
		// Cross-lane comparators must agree (identical lanes).
		if !out[6] || !out[7] {
			t.Fatal("cross-lane comparators disagree on identical lanes")
		}
	}
}

func TestMeshShape(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{1, 1}, {3, 5}, {20, 20}} {
		m := Mesh(tc.r, tc.c)
		if err := m.Validate(); err != nil {
			t.Fatalf("mesh %dx%d: %v", tc.r, tc.c, err)
		}
		st, err := m.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Gates != tc.r*tc.c {
			t.Fatalf("mesh %dx%d: %d gates", tc.r, tc.c, st.Gates)
		}
		if st.PIs != tc.r+tc.c {
			t.Fatalf("mesh %dx%d: %d PIs, want %d", tc.r, tc.c, st.PIs, tc.r+tc.c)
		}
		// Depth: the longest up/left chain touches every row and column.
		if st.Levels != tc.r+tc.c-1 {
			t.Fatalf("mesh %dx%d: depth %d, want %d", tc.r, tc.c, st.Levels, tc.r+tc.c-1)
		}
	}
}

func TestMeshFunctional(t *testing.T) {
	// 2x2 NAND mesh, hand-evaluated.
	m := Mesh(2, 2)
	// PIs: t0,t1 (top), l0,l1 (left).
	nand := func(a, b bool) bool { return !(a && b) }
	for bits := 0; bits < 16; bits++ {
		t0 := bits&1 == 1
		t1 := bits&2 == 2
		l0 := bits&4 == 4
		l1 := bits&8 == 8
		// Gate (i,j) = NAND(up, left): up is top[j] / the gate above,
		// left is left[i] / the gate to the left.
		g00 := nand(t0, l0)
		g01 := nand(t1, g00)
		g10 := nand(g00, l1)
		g11 := nand(g01, g10)
		out, err := m.Evaluate([]bool{t0, t1, l0, l1})
		if err != nil {
			t.Fatal(err)
		}
		// POs: row0 right col (g01), then bottom row g10, g11.
		want := []bool{g01, g10, g11}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("mesh2x2 bits=%04b: PO %d = %v, want %v", bits, i, out[i], want[i])
			}
		}
	}
}

func TestBalancedTreeShape(t *testing.T) {
	for _, leaves := range []int{2, 3, 8, 100, 1024} {
		c := BalancedTree(leaves)
		if err := c.Validate(); err != nil {
			t.Fatalf("tree %d: %v", leaves, err)
		}
		st, err := c.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Gates != leaves-1 {
			t.Fatalf("tree %d: %d gates, want %d", leaves, st.Gates, leaves-1)
		}
		if st.POs != 1 {
			t.Fatalf("tree %d: %d POs", leaves, st.POs)
		}
	}
}

func TestScalingGeneratorsReachTargetSizes(t *testing.T) {
	// The scaling suite must reach 30k and 100k+ gates.
	if st, _ := Mesh(175, 175).ComputeStats(); st.Gates < 30000 {
		t.Fatalf("Mesh(175,175) only %d gates", st.Gates)
	}
	if st, _ := Mesh(320, 320).ComputeStats(); st.Gates < 100000 {
		t.Fatalf("Mesh(320,320) only %d gates", st.Gates)
	}
	if st, _ := BalancedTree(1 << 15).ComputeStats(); st.Gates < 30000 {
		t.Fatalf("BalancedTree(32768) only %d gates", st.Gates)
	}
}
