// Incremental arrival-time maintenance.  TILOS re-times the circuit
// after every single bump; a full forward/backward analysis per move
// makes the baseline superlinear.  Arrivals maintains only the forward
// quantities (AT, finish times, CP) and repropagates from the changed
// vertices in topological order, which is all the greedy needs: the
// target check uses CP, path extraction uses AT, and sensitivities are
// local.
package sta

import (
	"fmt"

	"minflo/internal/graph"
)

// Arrivals tracks arrival times under point updates to vertex delays.
type Arrivals struct {
	g      *graph.Digraph
	d      []float64
	at     []float64
	finish []float64 // at + d
	pos    []int     // topological position per vertex
	order  []int     // topological order (Reseed's full forward pass)

	// Flattened CSR adjacency (avoids edge-struct copies on the hot
	// path and per-vertex slice growth at construction): the fanins of
	// v are predIdx[predPtr[v]:predPtr[v+1]], fanouts likewise.
	predPtr, predIdx []int32
	succPtr, succIdx []int32

	// worklist state
	pq     workHeap
	inWork []bool
}

// NewArrivals runs the initial forward pass.
func NewArrivals(g *graph.Digraph, d []float64) (*Arrivals, error) {
	if len(d) != g.N() {
		return nil, fmt.Errorf("sta: delay vector length %d != %d vertices", len(d), g.N())
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	a := &Arrivals{
		g:      g,
		d:      append([]float64(nil), d...),
		at:     make([]float64, g.N()),
		finish: make([]float64, g.N()),
		pos:    make([]int, g.N()),
		inWork: make([]bool, g.N()),
	}
	// CSR adjacency by counting sort over the edge list; iterating
	// edges in insertion order lands each vertex's neighbours in the
	// same per-vertex order the slice-of-slices construction produced.
	n := g.N()
	edges := g.Edges()
	a.predPtr = make([]int32, n+1)
	a.succPtr = make([]int32, n+1)
	for i := range edges {
		a.predPtr[edges[i].To+1]++
		a.succPtr[edges[i].From+1]++
	}
	for v := 0; v < n; v++ {
		a.predPtr[v+1] += a.predPtr[v]
		a.succPtr[v+1] += a.succPtr[v]
	}
	a.predIdx = make([]int32, len(edges))
	a.succIdx = make([]int32, len(edges))
	pc := append([]int32(nil), a.predPtr[:n]...)
	sc := append([]int32(nil), a.succPtr[:n]...)
	for i := range edges {
		e := &edges[i]
		a.predIdx[pc[e.To]] = int32(e.From)
		pc[e.To]++
		a.succIdx[sc[e.From]] = int32(e.To)
		sc[e.From]++
	}
	for i, v := range order {
		a.pos[v] = i
	}
	a.order = order
	for _, v := range order {
		a.recomputeAT(v)
	}
	return a, nil
}

// Reseed replaces every vertex delay with d and recomputes the full
// forward pass in place — the bulk form of SetDelays for callers that
// jump the engine to an externally-seeded sizing (a warm session
// restarting from a previous optimum) without rebuilding the engine.
// The resulting arrival state is bit-identical to NewArrivals(g, d).
func (a *Arrivals) Reseed(d []float64) error {
	if len(d) != a.g.N() {
		return fmt.Errorf("sta: Reseed delay vector length %d != %d vertices", len(d), a.g.N())
	}
	copy(a.d, d)
	for _, v := range a.order {
		a.recomputeAT(v)
	}
	return nil
}

// AT returns the arrival time at v's input.
func (a *Arrivals) AT(v int) float64 { return a.at[v] }

// ATSlice exposes the arrival array (read-only for callers).
func (a *Arrivals) ATSlice() []float64 { return a.at }

// Delay returns the current delay of v.
func (a *Arrivals) Delay(v int) float64 { return a.d[v] }

// Finish returns the finish time AT(v)+delay(v) — the arrival a fanout
// of v sees.  Cone extraction freezes these as boundary arrivals.
func (a *Arrivals) Finish(v int) float64 { return a.finish[v] }

// FinishSlice exposes the finish array (read-only for callers).
func (a *Arrivals) FinishSlice() []float64 { return a.finish }

// DelaySlice exposes the delay array (read-only for callers).
func (a *Arrivals) DelaySlice() []float64 { return a.d }

// CP returns the critical-path delay max(AT+delay).
func (a *Arrivals) CP() float64 {
	best := 0.0
	for _, f := range a.finish {
		if f > best {
			best = f
		}
	}
	return best
}

// recomputeAT refreshes at/finish for v from its fanins.
func (a *Arrivals) recomputeAT(v int) {
	at := 0.0
	for _, u := range a.predIdx[a.predPtr[v]:a.predPtr[v+1]] {
		if f := a.finish[u]; f > at {
			at = f
		}
	}
	a.at[v] = at
	a.finish[v] = at + a.d[v]
}

// workHeap is a hand-rolled binary min-heap of vertices keyed by
// topological position (no interface boxing — this sits on TILOS's
// innermost loop).
type workHeap struct {
	items []int
	pos   []int
}

func (h *workHeap) push(v int) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pos[h.items[p]] <= h.pos[h.items[i]] {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *workHeap) pop() int {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.pos[h.items[l]] < h.pos[h.items[m]] {
			m = l
		}
		if r < last && h.pos[h.items[r]] < h.pos[h.items[m]] {
			m = r
		}
		if m == i {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}

// SetDelays updates the delays of the listed vertices and repropagates
// arrival times downstream.  Processing strictly in topological order
// guarantees each affected vertex is recomputed exactly once.
func (a *Arrivals) SetDelays(vs []int, newD []float64) {
	if a.pq.pos == nil {
		a.pq.pos = a.pos
	}
	for i, v := range vs {
		if a.d[v] == newD[i] {
			continue
		}
		a.d[v] = newD[i]
		a.enqueue(v)
	}
	for len(a.pq.items) > 0 {
		v := a.pq.pop()
		a.inWork[v] = false
		oldFinish := a.finish[v]
		at := 0.0
		for _, u := range a.predIdx[a.predPtr[v]:a.predPtr[v+1]] {
			if f := a.finish[u]; f > at {
				at = f
			}
		}
		a.at[v] = at
		a.finish[v] = at + a.d[v]
		if a.finish[v] != oldFinish {
			for _, w := range a.succIdx[a.succPtr[v]:a.succPtr[v+1]] {
				a.enqueue(int(w))
			}
		}
	}
}

func (a *Arrivals) enqueue(v int) {
	if !a.inWork[v] {
		a.inWork[v] = true
		a.pq.push(v)
	}
}

// CriticalPathInc extracts one critical path using the maintained
// arrival times (source to the vertex attaining CP).
func (a *Arrivals) CriticalPathInc() []int {
	return a.AppendCriticalPath(nil)
}

// AppendCriticalPath appends one critical path (source to the vertex
// attaining CP) to dst and returns it — the allocation-free variant for
// callers that extract a path per move (TILOS) and can reuse a buffer.
func (a *Arrivals) AppendCriticalPath(dst []int) []int {
	cp := a.CP()
	end := -1
	for v := 0; v < a.g.N(); v++ {
		if a.finish[v] >= cp-1e-12 {
			end = v
			break
		}
	}
	if end == -1 {
		return dst
	}
	base := len(dst)
	rev := dst
	v := end
	for {
		rev = append(rev, v)
		if a.g.InDegree(v) == 0 {
			break
		}
		next := -1
		for _, e := range a.g.In(v) {
			u := a.g.Edge(e).From
			if a.finish[u] >= a.at[v]-1e-12 {
				next = u
				break
			}
		}
		if next == -1 {
			break
		}
		v = next
	}
	for i, j := base, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
