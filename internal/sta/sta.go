// Package sta implements static timing analysis on the sizing DAG:
// arrival times, required times, vertex slacks, edge slacks and the
// critical path, exactly as defined in the paper's equation (8).
package sta

import (
	"context"
	"fmt"
	"math"

	"minflo/internal/graph"
)

// Timing holds the analysis results for one delay assignment.
type Timing struct {
	// AT[v] is the arrival time at v's input (max over fanin of
	// AT(u)+delay(u); 0 at sources).
	AT []float64
	// RT[v] is the required time (CP − delay(v) at sinks, else
	// min over fanout of RT(w) − delay(v)).
	RT []float64
	// Slack[v] = RT[v] − AT[v].
	Slack []float64
	// EdgeSlack[e] = RT(to) − AT(from) − delay(from).
	EdgeSlack []float64
	// CP is the critical-path delay max_v(AT+delay).
	CP float64
}

// Analyze runs forward/backward timing over the DAG with per-vertex
// delays d. Sources (in-degree 0) arrive at time zero.
//
// For repeated analyses over one graph (the optimizer's D/W loop), use
// an Analyzer: it computes the topological order once and reuses the
// Timing buffers across calls.
func Analyze(g *graph.Digraph, d []float64) (*Timing, error) {
	a, err := NewAnalyzer(g)
	if err != nil {
		return nil, err
	}
	return a.Analyze(d)
}

// Analyzer performs repeated full timing analyses over a fixed graph,
// amortizing the topological sort and the result allocations: after
// construction, Analyze allocates nothing.
type Analyzer struct {
	g     *graph.Digraph
	order []int
	t     Timing
}

// NewAnalyzer topologically orders g once and preallocates the Timing
// buffers.
func NewAnalyzer(g *graph.Digraph) (*Analyzer, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	n := g.N()
	return &Analyzer{
		g:     g,
		order: order,
		t: Timing{
			AT:        make([]float64, n),
			RT:        make([]float64, n),
			Slack:     make([]float64, n),
			EdgeSlack: make([]float64, g.M()),
		},
	}, nil
}

// Analyze runs forward/backward timing with per-vertex delays d.  The
// returned Timing is owned by the Analyzer and overwritten by the next
// call; callers needing a snapshot must copy it.
func (a *Analyzer) Analyze(d []float64) (*Timing, error) {
	return a.AnalyzeCtx(nil, d)
}

// AnalyzeCtx is Analyze with cancellation: ctx is checked before each
// of the two passes (each pass is a single O(V+E) sweep, so that is
// the natural granularity) and a canceled context returns ctx.Err()
// with the Analyzer reusable.  A nil (or uncancelable) ctx adds no
// overhead beyond one branch per pass.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, d []float64) (*Timing, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: %w", err)
		}
	}
	g := a.g
	if len(d) != g.N() {
		return nil, fmt.Errorf("sta: delay vector length %d != %d vertices", len(d), g.N())
	}
	order := a.order
	n := g.N()
	t := &a.t
	t.CP = 0
	for _, v := range order {
		at := 0.0
		for _, e := range g.In(v) {
			u := g.Edge(e).From
			if a := t.AT[u] + d[u]; a > at {
				at = a
			}
		}
		t.AT[v] = at
		if fin := at + d[v]; fin > t.CP {
			t.CP = fin
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: %w", err)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		rt := math.Inf(1)
		if g.OutDegree(v) == 0 {
			rt = t.CP - d[v]
		}
		for _, e := range g.Out(v) {
			w := g.Edge(e).To
			if r := t.RT[w] - d[v]; r < rt {
				rt = r
			}
		}
		t.RT[v] = rt
	}
	for v := 0; v < n; v++ {
		t.Slack[v] = t.RT[v] - t.AT[v]
	}
	for _, e := range g.Edges() {
		t.EdgeSlack[e.ID] = t.RT[e.To] - t.AT[e.From] - d[e.From]
	}
	return t, nil
}

// Safe reports whether the circuit is "safe" in the paper's sense:
// every vertex slack and every edge slack is non-negative (within eps).
func (t *Timing) Safe(eps float64) bool {
	for _, s := range t.Slack {
		if s < -eps {
			return false
		}
	}
	for _, s := range t.EdgeSlack {
		if s < -eps {
			return false
		}
	}
	return true
}

// CriticalPath returns one maximal-delay path as a vertex sequence
// (source to sink), following tight arrival-time edges.
func CriticalPath(g *graph.Digraph, d []float64, t *Timing) []int {
	// Find the endpoint: vertex with AT+delay == CP.
	end := -1
	for v := 0; v < g.N(); v++ {
		if t.AT[v]+d[v] >= t.CP-1e-12 {
			end = v
			break
		}
	}
	if end == -1 {
		return nil
	}
	var rev []int
	v := end
	for {
		rev = append(rev, v)
		if g.InDegree(v) == 0 {
			break
		}
		next := -1
		for _, e := range g.In(v) {
			u := g.Edge(e).From
			if t.AT[u]+d[u] >= t.AT[v]-1e-12 {
				next = u
				break
			}
		}
		if next == -1 {
			break
		}
		v = next
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
