package sta

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"minflo/internal/graph"
)

// diamond: 0 -> {1,2} -> 3 with delays 1, 5, 2, 1.
func diamond() (*graph.Digraph, []float64) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g, []float64{1, 5, 2, 1}
}

func TestAnalyzeDiamond(t *testing.T) {
	g, d := diamond()
	tm, err := Analyze(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CP != 7 { // 0(1) -> 1(5) -> 3(1)
		t.Fatalf("CP = %g", tm.CP)
	}
	wantAT := []float64{0, 1, 1, 6}
	wantRT := []float64{0, 1, 4, 6}
	wantSL := []float64{0, 0, 3, 0}
	for v := 0; v < 4; v++ {
		if tm.AT[v] != wantAT[v] || tm.RT[v] != wantRT[v] || tm.Slack[v] != wantSL[v] {
			t.Fatalf("vertex %d: AT=%g RT=%g SL=%g", v, tm.AT[v], tm.RT[v], tm.Slack[v])
		}
	}
	// Edge slacks: the off-critical edges carry the slack.
	// e0: 0->1: RT(1)-AT(0)-d(0) = 1-0-1 = 0 (critical)
	// e1: 0->2: 4-0-1 = 3
	// e2: 1->3: 6-1-5 = 0 (critical)
	// e3: 2->3: 6-1-2 = 3
	want := []float64{0, 3, 0, 3}
	for e := range want {
		if tm.EdgeSlack[e] != want[e] {
			t.Fatalf("edge %d slack %g, want %g", e, tm.EdgeSlack[e], want[e])
		}
	}
	if !tm.Safe(1e-12) {
		t.Fatal("diamond should be safe")
	}
}

func TestAnalyzeLengthMismatch(t *testing.T) {
	g, _ := diamond()
	if _, err := Analyze(g, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestAnalyzeCycle(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := Analyze(g, []float64{1, 1}); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g, d := diamond()
	tm, _ := Analyze(g, d)
	path := CriticalPath(g, d, tm)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 3 {
		t.Fatalf("critical path %v", path)
	}
}

func randomDAG(rng *rand.Rand, n int) (*graph.Digraph, []float64) {
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(u, v)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(1 + rng.Intn(9))
	}
	return g, d
}

// Property: CP equals the vertex-weighted longest path in the graph.
func TestQuickCPMatchesLongestPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 2+rng.Intn(30))
		tm, err := Analyze(g, d)
		if err != nil {
			return false
		}
		_, best, err := g.LongestPath(d)
		if err != nil {
			return false
		}
		return math.Abs(tm.CP-best) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: slack identities — slack(v) = RT−AT ≥ 0 and every edge
// slack is ≥ 0 (a freshly analyzed circuit is always safe); a vertex on
// some critical path has zero slack.
func TestQuickSlackInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 2+rng.Intn(30))
		tm, err := Analyze(g, d)
		if err != nil {
			return false
		}
		if !tm.Safe(1e-12) {
			return false
		}
		zero := false
		for v := 0; v < g.N(); v++ {
			if math.Abs(tm.Slack[v]) < 1e-12 {
				zero = true
			}
		}
		return zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path is a real path, starts at a source, ends
// at a sink, and its vertex delays sum to CP.
func TestQuickCriticalPathSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 2+rng.Intn(25))
		tm, err := Analyze(g, d)
		if err != nil {
			return false
		}
		path := CriticalPath(g, d, tm)
		if len(path) == 0 {
			return false
		}
		if g.InDegree(path[0]) != 0 {
			return false
		}
		sum := 0.0
		for i, v := range path {
			sum += d[v]
			if i+1 < len(path) {
				// consecutive vertices must be connected
				ok := false
				for _, e := range g.Out(v) {
					if g.Edge(e).To == path[i+1] {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return math.Abs(sum-tm.CP) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSafeDetectsViolation(t *testing.T) {
	tm := &Timing{Slack: []float64{0.5, -0.1}, EdgeSlack: nil}
	if tm.Safe(1e-12) {
		t.Fatal("negative slack accepted")
	}
	tm = &Timing{Slack: []float64{0.5}, EdgeSlack: []float64{-1}}
	if tm.Safe(1e-12) {
		t.Fatal("negative edge slack accepted")
	}
}

func TestReport(t *testing.T) {
	g, d := diamond()
	tm, _ := Analyze(g, d)
	r := NewReport(g, d, tm, 10)
	if r.CP != 7 || r.WNS != 0 {
		t.Fatalf("report CP=%g WNS=%g", r.CP, r.WNS)
	}
	if len(r.Path) != 3 {
		t.Fatalf("path %v", r.Path)
	}
	var buf strings.Builder
	r.Write(&buf, d, func(v int) string { return fmt.Sprintf("v%d", v) })
	out := buf.String()
	if !strings.Contains(out, "critical path: 7.0") || !strings.Contains(out, "target 10.0 met") {
		t.Fatalf("report output:\n%s", out)
	}
	if !strings.Contains(out, "slack histogram") {
		t.Fatalf("missing histogram:\n%s", out)
	}
	// Violated target.
	r2 := NewReport(g, d, tm, 5)
	if r2.WNS != -2 {
		t.Fatalf("WNS = %g, want -2", r2.WNS)
	}
	buf.Reset()
	r2.Write(&buf, d, func(v int) string { return "x" })
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Fatal("violation not flagged")
	}
}

func TestReportUniformSlack(t *testing.T) {
	// A pure chain has zero slack everywhere: single histogram bucket.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := []float64{1, 1, 1}
	tm, _ := Analyze(g, d)
	r := NewReport(g, d, tm, 0)
	if len(r.Histogram) != 1 || r.Histogram[0].Count != 3 {
		t.Fatalf("histogram %+v", r.Histogram)
	}
}
