// Timing reports: human-readable critical-path and slack summaries in
// the style of industrial STA tools.
package sta

import (
	"fmt"
	"io"
	"math"
	"sort"

	"minflo/internal/graph"
)

// Report summarizes one timing analysis for presentation.
type Report struct {
	CP        float64
	Target    float64 // 0 when no target was supplied
	WNS       float64 // worst negative slack vs Target (0 when met)
	Path      []int   // one critical path (vertex ids)
	Histogram []HistBin
}

// HistBin is one slack-histogram bucket.
type HistBin struct {
	Lo, Hi float64
	Count  int
}

// NewReport builds a report from an analysis; target may be 0.
func NewReport(g *graph.Digraph, d []float64, t *Timing, target float64) *Report {
	r := &Report{CP: t.CP, Target: target, Path: CriticalPath(g, d, t)}
	if target > 0 && t.CP > target {
		r.WNS = target - t.CP
	}
	// Slack histogram over vertices with non-zero delay (real elements).
	var slacks []float64
	for v := 0; v < g.N(); v++ {
		if d[v] > 0 {
			slacks = append(slacks, t.Slack[v])
		}
	}
	if len(slacks) == 0 {
		return r
	}
	sort.Float64s(slacks)
	lo, hi := slacks[0], slacks[len(slacks)-1]
	const bins = 8
	width := (hi - lo) / bins
	if width <= 0 {
		r.Histogram = []HistBin{{Lo: lo, Hi: hi, Count: len(slacks)}}
		return r
	}
	r.Histogram = make([]HistBin, bins)
	for b := 0; b < bins; b++ {
		r.Histogram[b] = HistBin{Lo: lo + float64(b)*width, Hi: lo + float64(b+1)*width}
	}
	for _, s := range slacks {
		b := int((s - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		r.Histogram[b].Count++
	}
	return r
}

// Write renders the report with vertex labels supplied by name.
func (r *Report) Write(w io.Writer, d []float64, name func(v int) string) {
	fmt.Fprintf(w, "critical path: %.1f ps", r.CP)
	if r.Target > 0 {
		if r.WNS < 0 {
			fmt.Fprintf(w, "  (target %.1f VIOLATED, WNS %.1f)", r.Target, r.WNS)
		} else {
			fmt.Fprintf(w, "  (target %.1f met, margin %.1f)", r.Target, r.Target-r.CP)
		}
	}
	fmt.Fprintln(w)
	if len(r.Path) > 0 {
		fmt.Fprintln(w, "path:")
		at := 0.0
		for _, v := range r.Path {
			if d[v] == 0 {
				continue
			}
			at += d[v]
			fmt.Fprintf(w, "  %-24s +%8.1f  @%9.1f\n", name(v), d[v], at)
		}
	}
	if len(r.Histogram) > 0 {
		fmt.Fprintln(w, "slack histogram:")
		max := 0
		for _, b := range r.Histogram {
			if b.Count > max {
				max = b.Count
			}
		}
		for _, b := range r.Histogram {
			bar := ""
			if max > 0 {
				n := int(math.Round(40 * float64(b.Count) / float64(max)))
				for i := 0; i < n; i++ {
					bar += "#"
				}
			}
			fmt.Fprintf(w, "  [%9.1f, %9.1f) %5d %s\n", b.Lo, b.Hi, b.Count, bar)
		}
	}
}
