package sta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/graph"
)

func TestArrivalsMatchesAnalyzeInitially(t *testing.T) {
	g, d := diamond()
	a, err := NewArrivals(g, d)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := Analyze(g, d)
	for v := 0; v < g.N(); v++ {
		if a.AT(v) != tm.AT[v] {
			t.Fatalf("AT(%d) = %g, want %g", v, a.AT(v), tm.AT[v])
		}
	}
	if a.CP() != tm.CP {
		t.Fatalf("CP %g != %g", a.CP(), tm.CP)
	}
}

func TestArrivalsPointUpdate(t *testing.T) {
	g, d := diamond()
	a, _ := NewArrivals(g, d)
	// Speed up vertex 1 (the critical one): 5 -> 1.
	a.SetDelays([]int{1}, []float64{1})
	d[1] = 1
	tm, _ := Analyze(g, d)
	for v := 0; v < g.N(); v++ {
		if a.AT(v) != tm.AT[v] {
			t.Fatalf("after update AT(%d) = %g, want %g", v, a.AT(v), tm.AT[v])
		}
	}
	if a.CP() != tm.CP {
		t.Fatalf("after update CP %g != %g", a.CP(), tm.CP)
	}
}

func TestArrivalsLengthMismatch(t *testing.T) {
	g, _ := diamond()
	if _, err := NewArrivals(g, []float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestArrivalsCycle(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := NewArrivals(g, []float64{1, 1}); err == nil {
		t.Fatal("expected cycle error")
	}
}

// Property: after an arbitrary sequence of random delay updates, the
// incremental state matches a from-scratch analysis exactly.
func TestQuickIncrementalMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(u, v)
		}
		d := make([]float64, n)
		for i := range d {
			d[i] = float64(1 + rng.Intn(9))
		}
		a, err := NewArrivals(g, d)
		if err != nil {
			return false
		}
		for round := 0; round < 12; round++ {
			// Batch of 1-3 random updates.
			k := 1 + rng.Intn(3)
			vs := make([]int, k)
			nd := make([]float64, k)
			for i := 0; i < k; i++ {
				vs[i] = rng.Intn(n)
				nd[i] = float64(rng.Intn(12))
				d[vs[i]] = nd[i]
			}
			// Duplicate updates in one batch are allowed; last wins in d,
			// so make the batch consistent with d.
			for i := 0; i < k; i++ {
				nd[i] = d[vs[i]]
			}
			a.SetDelays(vs, nd)
			tm, err := Analyze(g, d)
			if err != nil {
				return false
			}
			for v := 0; v < n; v++ {
				if math.Abs(a.AT(v)-tm.AT[v]) > 1e-12 {
					return false
				}
			}
			if math.Abs(a.CP()-tm.CP) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the incremental critical path is a real path achieving CP.
func TestQuickIncrementalCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(u, v)
		}
		d := make([]float64, n)
		for i := range d {
			d[i] = float64(1 + rng.Intn(9))
		}
		a, err := NewArrivals(g, d)
		if err != nil {
			return false
		}
		// A few updates first.
		for i := 0; i < 5; i++ {
			v := rng.Intn(n)
			nd := float64(rng.Intn(12))
			d[v] = nd
			a.SetDelays([]int{v}, []float64{nd})
		}
		path := a.CriticalPathInc()
		if len(path) == 0 {
			return false
		}
		sum := 0.0
		for _, v := range path {
			sum += d[v]
		}
		return math.Abs(sum-a.CP()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(u, v)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(1 + rng.Intn(9))
	}
	a, err := NewArrivals(g, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := rng.Intn(n)
		nd := float64(1 + rng.Intn(12))
		a.SetDelays([]int{v}, []float64{nd})
	}
}
