package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // {0,1,2} strongly connected
	g.AddEdge(2, 3) // {3} alone
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle split: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Fatalf("vertex 3 merged into the cycle: %v", comp)
	}
	// Edge 2->3 crosses components: Tarjan numbering has comp[2] > comp[3].
	if comp[2] <= comp[3] {
		t.Fatalf("component numbering not reverse-topological: %v", comp)
	}
}

func TestSCCAllSingletons(t *testing.T) {
	g := New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	_, n := g.SCC()
	if n != 5 {
		t.Fatalf("DAG should have %d singleton components, got %d", 5, n)
	}
}

func TestCondensationOrderRespectsEdges(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // block A = {0,1}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2) // block B = {2,3}
	g.AddEdge(3, 4)
	g.AddEdge(5, 0) // {5} upstream of A
	groups := g.CondensationOrder()
	pos := make(map[int]int)
	for gi, grp := range groups {
		for _, v := range grp {
			pos[v] = gi
		}
	}
	for _, e := range g.Edges() {
		if pos[e.From] > pos[e.To] {
			t.Fatalf("edge %d->%d violates condensation order", e.From, e.To)
		}
	}
	if pos[0] != pos[1] || pos[2] != pos[3] {
		t.Fatal("blocks split")
	}
	if pos[5] > pos[0] {
		t.Fatal("upstream singleton ordered after its successor block")
	}
}

// Property: on random digraphs (cycles allowed), (1) two vertices share
// a component iff they reach each other, and (2) condensation order
// respects all edges.
func TestQuickSCCCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		comp, _ := g.SCC()
		for u := 0; u < n; u++ {
			fwd := g.Reachable([]int{u})
			back := g.CoReachable([]int{u})
			for v := 0; v < n; v++ {
				sameComp := comp[u] == comp[v]
				mutual := fwd[v] && back[v]
				if sameComp != mutual {
					return false
				}
			}
		}
		groups := g.CondensationOrder()
		pos := make([]int, n)
		for gi, grp := range groups {
			for _, v := range grp {
				pos[v] = gi
			}
		}
		for _, e := range g.Edges() {
			if pos[e.From] > pos[e.To] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInAdjacency(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 2)
	e2 := g.AddEdge(1, 2)
	in := g.In(2)
	if len(in) != 2 || in[0] != e1 || in[1] != e2 {
		t.Fatalf("In(2) = %v", in)
	}
}
