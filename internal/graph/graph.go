// Package graph provides the directed-graph substrate used by every other
// layer of the sizer: adjacency storage, topological ordering, DAG
// validation, reachability and longest-path computations.
//
// Vertices are dense integer IDs in [0, N).  Edges carry an integer ID so
// higher layers (delay balancing, the D-phase flow reduction) can attach
// per-edge attributes in parallel slices.
package graph

import (
	"errors"
	"fmt"
)

// ErrCycle is returned by operations that require a DAG when the graph
// contains a directed cycle.
var ErrCycle = errors.New("graph: directed cycle detected")

// Edge is a directed edge u -> v with a dense ID assigned at insertion.
type Edge struct {
	ID   int
	From int
	To   int
}

// Digraph is a mutable directed graph over dense vertex IDs.
// The zero value is an empty graph; use AddVertex/AddEdge to build it.
type Digraph struct {
	out   [][]int // vertex -> edge IDs leaving it
	in    [][]int // vertex -> edge IDs entering it
	edges []Edge
}

// New returns a digraph with n vertices and no edges.
func New(n int) *Digraph {
	return &Digraph{
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Digraph) M() int { return len(g.edges) }

// AddVertex appends a new vertex and returns its ID.
func (g *Digraph) AddVertex() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// Reserve preallocates adjacency storage for a graph that will receive
// at most m edges, with outDeg/inDeg per-vertex upper bounds (entries
// beyond the bound still work — that vertex's list just reallocates).
// The per-vertex lists are carved out of two shared backing arrays, so
// bulk construction performs O(1) allocations instead of O(n)
// slice-growth reallocations — the hot path of building sizing DAGs
// and their D-phase augmentations (see internal/dag).
func (g *Digraph) Reserve(outDeg, inDeg []int32, m int) {
	if len(outDeg) != len(g.out) || len(inDeg) != len(g.in) {
		panic(fmt.Sprintf("graph: Reserve degree slices (%d,%d) != vertex count %d",
			len(outDeg), len(inDeg), len(g.out)))
	}
	if cap(g.edges) < m {
		edges := make([]Edge, len(g.edges), m)
		copy(edges, g.edges)
		g.edges = edges
	}
	var totOut, totIn int32
	for v := range outDeg {
		totOut += outDeg[v]
		totIn += inDeg[v]
	}
	outBack := make([]int, totOut)
	inBack := make([]int, totIn)
	var po, pi int32
	for v := range g.out {
		no, ni := po+outDeg[v], pi+inDeg[v]
		g.out[v] = append(outBack[po:po:no], g.out[v]...)
		g.in[v] = append(inBack[pi:pi:ni], g.in[v]...)
		po, pi = no, ni
	}
}

// AddEdge inserts the edge u -> v and returns its ID.
// Parallel edges and self-loops are permitted at this layer; DAG users
// reject self-loops via Validate or TopoOrder.
func (g *Digraph) AddEdge(u, v int) int {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, len(g.out)))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: u, To: v})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	return id
}

// Edge returns the edge with the given ID.
func (g *Digraph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the underlying edge slice. Callers must not mutate it.
func (g *Digraph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving u. Callers must not mutate it.
func (g *Digraph) Out(u int) []int { return g.out[u] }

// In returns the IDs of edges entering v. Callers must not mutate it.
func (g *Digraph) In(v int) []int { return g.in[v] }

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of edges entering v.
func (g *Digraph) InDegree(v int) int { return len(g.in[v]) }

// Succ appends the successor vertices of u to dst and returns it.
func (g *Digraph) Succ(dst []int, u int) []int {
	for _, e := range g.out[u] {
		dst = append(dst, g.edges[e].To)
	}
	return dst
}

// Pred appends the predecessor vertices of v to dst and returns it.
func (g *Digraph) Pred(dst []int, v int) []int {
	for _, e := range g.in[v] {
		dst = append(dst, g.edges[e].From)
	}
	return dst
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		out:   make([][]int, len(g.out)),
		in:    make([][]int, len(g.in)),
		edges: append([]Edge(nil), g.edges...),
	}
	for i := range g.out {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c
}

// TopoOrder returns a topological ordering of the vertices (Kahn's
// algorithm). It returns ErrCycle if the graph is not a DAG.
func (g *Digraph) TopoOrder() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, u)
		for _, e := range g.out[u] {
			w := g.edges[e].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Sources returns all vertices with in-degree zero.
func (g *Digraph) Sources() []int {
	var s []int
	for v := 0; v < g.N(); v++ {
		if len(g.in[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns all vertices with out-degree zero.
func (g *Digraph) Sinks() []int {
	var s []int
	for v := 0; v < g.N(); v++ {
		if len(g.out[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// LongestPath computes, for a DAG with non-negative vertex weights w,
// the maximum over all paths of the sum of vertex weights, and returns
// per-vertex "distance to end of longest path starting here" values.
// It is the core of critical-path analysis and is exposed here so graph
// property tests can cross-check the STA layer.
func (g *Digraph) LongestPath(w []float64) (dist []float64, best float64, err error) {
	if len(w) != g.N() {
		return nil, 0, fmt.Errorf("graph: weight slice length %d != vertex count %d", len(w), g.N())
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist = make([]float64, g.N())
	// Process in reverse topological order: dist[u] = w[u] + max dist[succ].
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		d := 0.0
		for _, e := range g.out[u] {
			v := g.edges[e].To
			if dist[v] > d {
				d = dist[v]
			}
		}
		dist[u] = w[u] + d
	}
	for _, d := range dist {
		if d > best {
			best = d
		}
	}
	return dist, best, nil
}

// Reachable returns the set of vertices reachable from any seed,
// following edges forward, as a boolean mask.
func (g *Digraph) Reachable(seeds []int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), seeds...)
	for _, s := range stack {
		seen[s] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			v := g.edges[e].To
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CoReachable returns the set of vertices from which any seed is
// reachable (edges followed backward), as a boolean mask.
func (g *Digraph) CoReachable(seeds []int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), seeds...)
	for _, s := range stack {
		seen[s] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[u] {
			v := g.edges[e].From
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Validate performs structural sanity checks used by failure-injection
// tests: it rejects self-loops and verifies in/out adjacency consistency.
func (g *Digraph) Validate() error {
	for _, e := range g.edges {
		if e.From == e.To {
			return fmt.Errorf("graph: self-loop on vertex %d", e.From)
		}
	}
	var count int
	for v := 0; v < g.N(); v++ {
		count += len(g.out[v])
	}
	if count != len(g.edges) {
		return fmt.Errorf("graph: adjacency count %d != edge count %d", count, len(g.edges))
	}
	return nil
}
