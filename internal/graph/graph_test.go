package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkChain(n int) *Digraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	order, err := g.TopoOrder()
	if err != nil || len(order) != 0 {
		t.Fatalf("topo of empty graph: %v, %v", order, err)
	}
}

func TestAddVertexAndEdge(t *testing.T) {
	g := New(2)
	v := g.AddVertex()
	if v != 2 || g.N() != 3 {
		t.Fatalf("AddVertex returned %d, N=%d", v, g.N())
	}
	e := g.AddEdge(0, 2)
	if e != 0 {
		t.Fatalf("first edge ID = %d", e)
	}
	if got := g.Edge(e); got.From != 0 || got.To != 2 {
		t.Fatalf("edge content %+v", got)
	}
	if g.OutDegree(0) != 1 || g.InDegree(2) != 1 {
		t.Fatalf("degrees wrong: out(0)=%d in(2)=%d", g.OutDegree(0), g.InDegree(2))
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range AddEdge")
		}
	}()
	New(1).AddEdge(0, 5)
}

func TestTopoOrderChain(t *testing.T) {
	g := mkChain(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violates order", e.From, e.To)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	if g.IsDAG() {
		t.Fatal("cycle graph reported as DAG")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	src, snk := g.Sources(), g.Sinks()
	if len(src) != 2 || src[0] != 0 || src[1] != 1 {
		t.Fatalf("sources %v", src)
	}
	if len(snk) != 1 || snk[0] != 3 {
		t.Fatalf("sinks %v", snk)
	}
}

func TestSuccPred(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	succ := g.Succ(nil, 0)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Fatalf("succ(0) = %v", succ)
	}
	pred := g.Pred(nil, 2)
	if len(pred) != 2 || pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("pred(2) = %v", pred)
	}
}

func TestLongestPathDiamond(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3 with weights 1, 5, 2, 1.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	dist, best, err := g.LongestPath([]float64{1, 5, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if best != 7 { // 0(1) -> 1(5) -> 3(1)
		t.Fatalf("longest = %v, want 7", best)
	}
	if dist[0] != 7 || dist[1] != 6 || dist[2] != 3 || dist[3] != 1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestLongestPathBadWeights(t *testing.T) {
	g := mkChain(3)
	if _, _, err := g.LongestPath([]float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestLongestPathCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, _, err := g.LongestPath([]float64{1, 1}); err != ErrCycle {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	seen := g.Reachable([]int{0})
	want := []bool{true, true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("reachable mask %v", seen)
		}
	}
	co := g.CoReachable([]int{2})
	wantCo := []bool{true, true, true, false, false}
	for i := range wantCo {
		if co[i] != wantCo[i] {
			t.Fatalf("coreachable mask %v", co)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mkChain(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.M() == c.M() {
		t.Fatal("clone shares edge storage")
	}
	if g.OutDegree(0) != 1 || c.OutDegree(0) != 2 {
		t.Fatalf("degree leak: g=%d c=%d", g.OutDegree(0), c.OutDegree(0))
	}
}

func TestValidateSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(1, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestValidateOK(t *testing.T) {
	if err := mkChain(10).Validate(); err != nil {
		t.Fatal(err)
	}
}

// randomDAG builds a DAG by only adding edges from lower to higher IDs.
func randomDAG(rng *rand.Rand, n, m int) *Digraph {
	g := New(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(u, v)
	}
	return g
}

// Property: TopoOrder of a randomly built DAG always respects all edges.
func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(3*n))
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LongestPath dist satisfies Bellman optimality on the DAG:
// dist[u] = w[u] + max(0, max_{u->v} dist[v]).
func TestQuickLongestPathBellman(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomDAG(rng, n, rng.Intn(3*n))
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(rng.Intn(100))
		}
		dist, best, err := g.LongestPath(w)
		if err != nil {
			return false
		}
		maxd := 0.0
		for u := 0; u < n; u++ {
			d := 0.0
			for _, e := range g.Out(u) {
				v := g.Edge(e).To
				if dist[v] > d {
					d = dist[v]
				}
			}
			if dist[u] != w[u]+d {
				return false
			}
			if dist[u] > maxd {
				maxd = dist[u]
			}
		}
		return best == maxd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reachable ∘ CoReachable symmetry — v is reachable from u iff
// u is co-reachable from v.
func TestQuickReachSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomDAG(rng, n, rng.Intn(2*n))
		u := rng.Intn(n)
		fwd := g.Reachable([]int{u})
		for v := 0; v < n; v++ {
			back := g.CoReachable([]int{v})
			if fwd[v] != back[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 5000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
