package graph

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative).  It returns comp (vertex -> component ID) and the number
// of components.  Component IDs are in reverse topological order of the
// condensation: if there is an edge u->v across components then
// comp[u] > comp[v].
func (g *Digraph) SCC() (comp []int, n int) {
	const unvisited = -1
	nv := g.N()
	comp = make([]int, nv)
	index := make([]int, nv)
	low := make([]int, nv)
	onStack := make([]bool, nv)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ei int // next out-edge index to process
	}
	var call []frame
	for root := 0; root < nv; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < g.OutDegree(v) {
				e := g.Out(v)[f.ei]
				f.ei++
				w := g.Edge(e).To
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-process v.
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = n
					if w == v {
						break
					}
				}
				n++
			}
		}
	}
	return comp, n
}

// CondensationOrder returns the vertices grouped by SCC in topological
// order of the condensation (every group's dependencies appear in
// earlier groups, following edge direction).
func (g *Digraph) CondensationOrder() [][]int {
	comp, n := g.SCC()
	// Bucket-fill the groups out of one backing array.  Appending into
	// n per-component slices would allocate once per component — on a
	// DAG that is one allocation per vertex, and this runs on every
	// problem build.
	starts := make([]int, n+1)
	for _, c := range comp {
		starts[c+1]++
	}
	for i := 0; i < n; i++ {
		starts[i+1] += starts[i]
	}
	backing := make([]int, g.N())
	fill := make([]int, n)
	copy(fill, starts[:n])
	for v := 0; v < g.N(); v++ {
		c := comp[v]
		backing[fill[c]] = v
		fill[c]++
	}
	// Tarjan emits components in reverse topological order; emit the
	// groups reversed (full slice expressions keep them independent).
	groups := make([][]int, n)
	for i := 0; i < n; i++ {
		groups[n-1-i] = backing[starts[i]:starts[i+1]:starts[i+1]]
	}
	return groups
}
