// Package delay implements the Elmore delay model in the simple
// monotonic decomposition the sizer requires (paper §2.1, eq. 4–5):
//
//	delay(i)·x_i  =  a_ii·x_i + Σ_{j≠i} a_ij·x_j + b_i
//
// so delay(i) = a_ii + (Σ a_ij x_j + b_i)/x_i, with every coefficient
// non-negative: a_ii is the intrinsic (self-load) term, a_ij couples the
// sizes of neighbouring devices (fanout gate loads, and for transistor
// sizing also stack diffusion caps), and b_i collects the fixed wire and
// primary-output loads.  This is exactly Definition 1's g(x_i)·q(·)
// shape: g = 1/x_i monotone decreasing, q monotone increasing.
package delay

import (
	"fmt"
	"math"
	"sync"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/tech"
)

// Term is one cross coupling a_ij·x_j in a vertex's delay.
type Term struct {
	J int     // index of the coupled sizing variable
	A float64 // non-negative coefficient
}

// Coeffs holds the simple monotonic projection of one vertex's delay.
type Coeffs struct {
	Self  float64 // a_ii: intrinsic delay, independent of sizes
	Terms []Term  // a_ij couplings (j ≠ i)
	Const float64 // b_i: fixed load term
}

// Delay evaluates delay(i) at own size xi and neighbour sizes x.
func (c *Coeffs) Delay(xi float64, x []float64) float64 {
	s := c.Const
	for _, t := range c.Terms {
		s += t.A * x[t.J]
	}
	return c.Self + s/xi
}

// LoadAt returns Σ a_ij·x_j + b_i — the x-dependent numerator.
func (c *Coeffs) LoadAt(x []float64) float64 {
	s := c.Const
	for _, t := range c.Terms {
		s += t.A * x[t.J]
	}
	return s
}

// FloorAt returns the smallest achievable delay at the current
// neighbour sizes: the vertex at maxSize driving today's load.
func (c *Coeffs) FloorAt(x []float64, maxSize float64) float64 {
	return c.Self + c.LoadAt(x)/maxSize
}

// Validate checks the non-negativity invariants of the decomposition.
func (c *Coeffs) Validate() error {
	if c.Self < 0 || math.IsNaN(c.Self) {
		return fmt.Errorf("delay: negative self term %g", c.Self)
	}
	if c.Const < 0 || math.IsNaN(c.Const) {
		return fmt.Errorf("delay: negative const term %g", c.Const)
	}
	for _, t := range c.Terms {
		if t.A < 0 || math.IsNaN(t.A) {
			return fmt.Errorf("delay: negative coupling a[%d] = %g", t.J, t.A)
		}
	}
	return nil
}

// Model binds technology parameters to load assumptions.
type Model struct {
	Tech   tech.Params
	POLoad float64 // capacitance on each primary output (fF)
}

// NewModel returns a model over params with a default primary-output
// load of eight unit gate caps.
func NewModel(p tech.Params) *Model {
	return &Model{Tech: p, POLoad: 8 * p.CGate}
}

// coeffScratch is the reusable multiplicity scratch of GateCoeffs,
// pooled so repeated problem construction (table sweeps, benchmark
// loops) reuses the buffers instead of reallocating per gate.
// Invariant: mult is all zeros between gates and between GateCoeffs
// calls — the emission loop re-zeroes every entry it counted — so a
// pooled scratch needs no clearing.  stamp[h] == gi (with fresh
// scratch forced to -1) marks mult[h] as already counted for the gate
// currently being processed; it is belt-and-braces over that
// invariant, not a substitute for it.
type coeffScratch struct {
	mult  []int32 // driven-pin count per fanout gate of the current gate
	stamp []int32 // stamp[h] == current gate index marks mult[h] live
}

var coeffPool = sync.Pool{New: func() any { return new(coeffScratch) }}

// sized returns the scratch arrays at length n with every stamp
// guaranteed stale (a fresh or regrown scratch is forced to -1; a
// reused one relies on the mult-rezeroing invariant above).
func (sc *coeffScratch) sized(n int) (mult, stamp []int32) {
	if cap(sc.mult) < n {
		sc.mult = make([]int32, n)
		sc.stamp = make([]int32, n)
	}
	mult, stamp = sc.mult[:n], sc.stamp[:n]
	if len(stamp) > 0 && stamp[0] == 0 {
		// A fresh (or smaller-capacity) scratch: force all stamps stale.
		for i := range stamp {
			stamp[i] = -1
		}
	}
	return mult, stamp
}

// gateCoeffInto computes gate gi's coefficients — the one shared inner
// computation of GateCoeffs and GateCoeff, so the ECO edit path's
// recomputed rows are bit-identical to a fresh build's.  fo is gi's
// fanout pin list (gate indices, one entry per driven pin), po the
// number of primary outputs it drives, and extraFF additional fixed
// load on its output in fF (the ECO load-edit state; adding a float
// zero is a bitwise no-op, so pristine builds pass 0).  Coupling terms
// are appended to arena; the returned Coeffs aliases its tail.
func (m *Model) gateCoeffInto(c *circuit.Circuit, gi int, fo []int32, po int32, extraFF float64, mult, stamp []int32, arena []Term) (Coeffs, []Term) {
	cc := cell.Get(c.Gates[gi].Kind)
	r := m.Tech.RUnit * cc.Drive
	k := Coeffs{
		Self:  r * m.Tech.CDiff * cc.Parasitic,
		Const: r * (m.Tech.CWire*float64(len(fo)+int(po)) + m.POLoad*float64(po) + extraFF),
	}
	// Couplings: one term per fanout gate, weighted by how many of its
	// pins this gate drives.
	for _, h := range fo {
		if stamp[h] != int32(gi) {
			stamp[h] = int32(gi)
			mult[h] = 0
		}
		mult[h]++
	}
	base := len(arena)
	for _, h := range fo {
		if mult[h] == 0 {
			continue // already emitted
		}
		hc := cell.Get(c.Gates[h].Kind)
		arena = append(arena, Term{J: int(h), A: r * m.Tech.CGate * hc.InputCap * float64(mult[h])})
		mult[h] = 0
	}
	k.Terms = arena[base:len(arena):len(arena)]
	return k, arena
}

// GateCoeff recomputes the coefficients of the single gate gi at the
// circuit's current state: fo is its fanout pin list (the
// FanoutsCSR slice for gi), po its driven primary-output count, and
// extraFF the extra fixed output load in fF (0 for a pristine
// netlist).  The result is bit-identical to entry gi of GateCoeffs at
// the same netlist state — both run gateCoeffInto — which is what lets
// the ECO edit path patch rows in place instead of rebuilding.  The
// returned Terms are freshly allocated (never shared with an arena).
func (m *Model) GateCoeff(c *circuit.Circuit, gi int, fo []int32, po int32, extraFF float64) (Coeffs, error) {
	if err := m.Tech.Validate(); err != nil {
		return Coeffs{}, err
	}
	sc := coeffPool.Get().(*coeffScratch)
	mult, stamp := sc.sized(c.NumGates())
	k, _ := m.gateCoeffInto(c, gi, fo, po, extraFF, mult, stamp, nil)
	coeffPool.Put(sc)
	if err := k.Validate(); err != nil {
		return Coeffs{}, fmt.Errorf("gate %q: %w", c.Gates[gi].Name, err)
	}
	return k, nil
}

// GateCoeffs derives the equivalent-inverter Elmore coefficients for
// every gate (gate sizing: one sizing variable per gate; paper §3 runs
// all experiments in this mode).
//
//	delay(g) = ρ_g·R·Cd·p_g  +  ρ_g·R·(Σ_fanout Cg·g_h·x_h + Cwire·k + POLoad·m)/x_g
//
// The coupling terms of all gates share one arena slice, and the
// per-gate multiplicity count runs on pooled stamp arrays instead of a
// map per gate, so construction costs O(1) allocations per circuit
// rather than O(gates).
func (m *Model) GateCoeffs(c *circuit.Circuit) ([]Coeffs, error) {
	if err := m.Tech.Validate(); err != nil {
		return nil, err
	}
	fanPtr, fanIdx, poCount := c.FanoutsCSR()
	n := c.NumGates()
	out := make([]Coeffs, n)
	arena := make([]Term, 0, len(fanIdx)) // distinct terms ≤ driven pins
	sc := coeffPool.Get().(*coeffScratch)
	mult, stamp := sc.sized(n)
	for gi := range c.Gates {
		fo := fanIdx[fanPtr[gi]:fanPtr[gi+1]]
		var k Coeffs
		k, arena = m.gateCoeffInto(c, gi, fo, poCount[gi], 0, mult, stamp, arena)
		if err := k.Validate(); err != nil {
			coeffPool.Put(sc)
			return nil, fmt.Errorf("gate %q: %w", c.Gates[gi].Name, err)
		}
		out[gi] = k
	}
	coeffPool.Put(sc)
	return out, nil
}

// Delays evaluates all gate delays for the size vector x.
func Delays(coeffs []Coeffs, x []float64) []float64 {
	d := make([]float64, len(coeffs))
	for i := range coeffs {
		d[i] = coeffs[i].Delay(x[i], x)
	}
	return d
}
