// Package delay implements the Elmore delay model in the simple
// monotonic decomposition the sizer requires (paper §2.1, eq. 4–5):
//
//	delay(i)·x_i  =  a_ii·x_i + Σ_{j≠i} a_ij·x_j + b_i
//
// so delay(i) = a_ii + (Σ a_ij x_j + b_i)/x_i, with every coefficient
// non-negative: a_ii is the intrinsic (self-load) term, a_ij couples the
// sizes of neighbouring devices (fanout gate loads, and for transistor
// sizing also stack diffusion caps), and b_i collects the fixed wire and
// primary-output loads.  This is exactly Definition 1's g(x_i)·q(·)
// shape: g = 1/x_i monotone decreasing, q monotone increasing.
package delay

import (
	"fmt"
	"math"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/tech"
)

// Term is one cross coupling a_ij·x_j in a vertex's delay.
type Term struct {
	J int     // index of the coupled sizing variable
	A float64 // non-negative coefficient
}

// Coeffs holds the simple monotonic projection of one vertex's delay.
type Coeffs struct {
	Self  float64 // a_ii: intrinsic delay, independent of sizes
	Terms []Term  // a_ij couplings (j ≠ i)
	Const float64 // b_i: fixed load term
}

// Delay evaluates delay(i) at own size xi and neighbour sizes x.
func (c *Coeffs) Delay(xi float64, x []float64) float64 {
	s := c.Const
	for _, t := range c.Terms {
		s += t.A * x[t.J]
	}
	return c.Self + s/xi
}

// LoadAt returns Σ a_ij·x_j + b_i — the x-dependent numerator.
func (c *Coeffs) LoadAt(x []float64) float64 {
	s := c.Const
	for _, t := range c.Terms {
		s += t.A * x[t.J]
	}
	return s
}

// FloorAt returns the smallest achievable delay at the current
// neighbour sizes: the vertex at maxSize driving today's load.
func (c *Coeffs) FloorAt(x []float64, maxSize float64) float64 {
	return c.Self + c.LoadAt(x)/maxSize
}

// Validate checks the non-negativity invariants of the decomposition.
func (c *Coeffs) Validate() error {
	if c.Self < 0 || math.IsNaN(c.Self) {
		return fmt.Errorf("delay: negative self term %g", c.Self)
	}
	if c.Const < 0 || math.IsNaN(c.Const) {
		return fmt.Errorf("delay: negative const term %g", c.Const)
	}
	for _, t := range c.Terms {
		if t.A < 0 || math.IsNaN(t.A) {
			return fmt.Errorf("delay: negative coupling a[%d] = %g", t.J, t.A)
		}
	}
	return nil
}

// Model binds technology parameters to load assumptions.
type Model struct {
	Tech   tech.Params
	POLoad float64 // capacitance on each primary output (fF)
}

// NewModel returns a model over params with a default primary-output
// load of eight unit gate caps.
func NewModel(p tech.Params) *Model {
	return &Model{Tech: p, POLoad: 8 * p.CGate}
}

// GateCoeffs derives the equivalent-inverter Elmore coefficients for
// every gate (gate sizing: one sizing variable per gate; paper §3 runs
// all experiments in this mode).
//
//	delay(g) = ρ_g·R·Cd·p_g  +  ρ_g·R·(Σ_fanout Cg·g_h·x_h + Cwire·k + POLoad·m)/x_g
func (m *Model) GateCoeffs(c *circuit.Circuit) ([]Coeffs, error) {
	if err := m.Tech.Validate(); err != nil {
		return nil, err
	}
	fan, poCount := c.Fanouts()
	out := make([]Coeffs, c.NumGates())
	for gi := range c.Gates {
		g := &c.Gates[gi]
		cc := cell.Get(g.Kind)
		r := m.Tech.RUnit * cc.Drive
		k := Coeffs{
			Self:  r * m.Tech.CDiff * cc.Parasitic,
			Const: r * (m.Tech.CWire*float64(len(fan[gi])+poCount[gi]) + m.POLoad*float64(poCount[gi])),
		}
		// Couplings: one term per fanout gate, weighted by how many of
		// its pins this gate drives.
		mult := make(map[int]int)
		for _, h := range fan[gi] {
			mult[h]++
		}
		for _, h := range fan[gi] {
			if mult[h] == 0 {
				continue // already emitted
			}
			hc := cell.Get(c.Gates[h].Kind)
			k.Terms = append(k.Terms, Term{J: h, A: r * m.Tech.CGate * hc.InputCap * float64(mult[h])})
			mult[h] = 0
		}
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("gate %q: %w", g.Name, err)
		}
		out[gi] = k
	}
	return out, nil
}

// Delays evaluates all gate delays for the size vector x.
func Delays(coeffs []Coeffs, x []float64) []float64 {
	d := make([]float64, len(coeffs))
	for i := range coeffs {
		d[i] = coeffs[i].Delay(x[i], x)
	}
	return d
}
