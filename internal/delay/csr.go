// The flattened (CSR) form of a simple-monotonic coefficient set.
//
// A []Coeffs is convenient to build but expensive to traverse: every
// solver that walks it (dag.Delays, the W-phase SMP relaxation, the
// D-phase sensitivity solves, TILOS's incremental retiming) either
// chases per-vertex Term slices or rebuilds its own view — incoming
// adjacency, dependency order, SCC blocks — from scratch on every call.
// CSR flattens the coupling matrix A once into row-ptr/col/val arrays,
// precomputes the transpose (incoming couplings, the access pattern of
// SolveTranspose), and caches the dependency topology (SCC condensation
// order, block membership, in-block positions) that both smp and lin
// need, so per-iteration work is pure array traversal with zero
// allocation.
//
// Traversal order is kept exactly equal to the []Coeffs paths (row
// terms in Terms order, incoming entries in ascending row order, blocks
// in graph.CondensationOrder order) so results are bit-identical to the
// unflattened reference implementations — asserted by the equivalence
// tests in smp and lin.
package delay

import (
	"minflo/internal/graph"
)

// CSR is the compressed-sparse-row form of the coupling matrix A of a
// coefficient set, with its transpose and dependency topology.
type CSR struct {
	n int

	// Self[i] = a_ii and Const[i] = b_i, hoisted out of the rows.
	Self  []float64
	Const []float64

	// Row storage: all Terms of vertex i, original order, at
	// [rowPtr[i], rowPtr[i+1]).
	rowPtr []int32
	col    []int32
	val    []float64

	// Transpose storage: the couplings (i, a_ij) incoming to column j
	// (only j ≠ i, a ≠ 0 entries), ordered by ascending i, at
	// [tPtr[j], tPtr[j+1]).
	tPtr []int32
	tRow []int32
	tVal []float64

	// Dependency topology: the SCC condensation of the graph with an
	// edge i→j per coupling a_ij (j ≠ i, a ≠ 0), in topological order.
	// Block b holds vertices blockVert[blockPtr[b]:blockPtr[b+1]].
	blockPtr  []int32
	blockVert []int32
	// blockOf[v] is v's block; posInBlock[v] its index inside the block
	// (the build-once replacement for the per-solve pos map of the
	// dense block solvers).
	blockOf    []int32
	posInBlock []int32
	maxBlock   int

	// Level partition of the blocks: level l groups the blocks at
	// condensation depth l (longest path over cross-block couplings),
	// so blocks inside one level have no couplings between them — the
	// independence structure the parallel W-phase and sensitivity
	// sweeps schedule on.  Level l holds the block indices
	// levelBlock[levelPtr[l]:levelPtr[l+1]], ascending; levels are
	// ordered dependency-first (for every coupling i→j,
	// level(block(i)) < level(block(j))).
	levelPtr   []int32
	levelBlock []int32
	maxWidth   int
	// levelSafe reports that *every* stored cross-block term — the
	// zero-coefficient ones included — goes from a strictly lower to a
	// strictly higher level.  The level partition itself only orders
	// the real (non-zero) couplings, but LoadAt walks all stored
	// terms, so a zero-valued term whose endpoints share a level would
	// make one parallel sweep worker read x[j] while another writes
	// it: value-irrelevant (0·x adds nothing for finite x) yet still a
	// data race.  When false, the level-parallel solvers fall back to
	// their serial sweeps.
	levelSafe bool
}

// NewCSR flattens coeffs. The input is not retained.
func NewCSR(coeffs []Coeffs) *CSR {
	n := len(coeffs)
	c := &CSR{
		n:      n,
		Self:   make([]float64, n),
		Const:  make([]float64, n),
		rowPtr: make([]int32, n+1),
	}
	nnz := 0
	coupled := 0 // j ≠ i, a ≠ 0 entries (transpose size)
	for i := range coeffs {
		nnz += len(coeffs[i].Terms)
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				coupled++
			}
		}
	}
	c.col = make([]int32, nnz)
	c.val = make([]float64, nnz)
	pos := int32(0)
	for i := range coeffs {
		c.Self[i] = coeffs[i].Self
		c.Const[i] = coeffs[i].Const
		c.rowPtr[i] = pos
		for _, t := range coeffs[i].Terms {
			c.col[pos] = int32(t.J)
			c.val[pos] = t.A
			pos++
		}
	}
	c.rowPtr[n] = pos

	// Transpose by counting sort over columns; iterating rows in
	// ascending order lands each column's entries in ascending row
	// order — the same order lin's incoming lists were appended in.
	c.tPtr = make([]int32, n+1)
	c.tRow = make([]int32, coupled)
	c.tVal = make([]float64, coupled)
	counts := make([]int32, n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				counts[t.J]++
			}
		}
	}
	for j := 0; j < n; j++ {
		c.tPtr[j+1] = c.tPtr[j] + counts[j]
	}
	cursor := append([]int32(nil), c.tPtr[:n]...)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				k := cursor[t.J]
				c.tRow[k] = int32(i)
				c.tVal[k] = t.A
				cursor[t.J] = k + 1
			}
		}
	}

	// Dependency topology via the same digraph smp and lin used to
	// build per call.  Degrees are known (counts is the transpose
	// histogram), so the adjacency is reserved exactly.
	dep := graph.New(n)
	depOut := make([]int32, n)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				depOut[i]++
			}
		}
	}
	dep.Reserve(depOut, counts, coupled)
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J != i && t.A != 0 {
				dep.AddEdge(i, t.J)
			}
		}
	}
	groups := dep.CondensationOrder()
	c.blockPtr = make([]int32, len(groups)+1)
	c.blockVert = make([]int32, 0, n)
	c.blockOf = make([]int32, n)
	c.posInBlock = make([]int32, n)
	for b, grp := range groups {
		c.blockPtr[b] = int32(len(c.blockVert))
		for k, v := range grp {
			c.blockVert = append(c.blockVert, int32(v))
			c.blockOf[v] = int32(b)
			c.posInBlock[v] = int32(k)
		}
		if len(grp) > c.maxBlock {
			c.maxBlock = len(grp)
		}
	}
	c.blockPtr[len(groups)] = int32(len(c.blockVert))

	// Level partition: depth of a block is the longest coupling path
	// reaching it.  Cross-block couplings always point from a lower to
	// a higher block index (condensation order), so one ascending pass
	// finalizes each block's depth before propagating it.
	nb := len(groups)
	depth := make([]int32, nb)
	maxDepth := int32(0)
	for b := 0; b < nb; b++ {
		for _, vi := range c.blockVert[c.blockPtr[b]:c.blockPtr[b+1]] {
			i := int(vi)
			lo, hi := c.rowPtr[i], c.rowPtr[i+1]
			for k := lo; k < hi; k++ {
				if c.val[k] == 0 {
					continue // not a dependency (mirrors the dep graph)
				}
				bj := c.blockOf[c.col[k]]
				if int(bj) != b && depth[b]+1 > depth[bj] {
					depth[bj] = depth[b] + 1
					if depth[bj] > maxDepth {
						maxDepth = depth[bj]
					}
				}
			}
		}
	}
	levels := int(maxDepth) + 1
	width := make([]int32, levels)
	for _, d := range depth {
		width[d]++
	}
	c.levelPtr = make([]int32, levels+1)
	for l := 0; l < levels; l++ {
		c.levelPtr[l+1] = c.levelPtr[l] + width[l]
		if int(width[l]) > c.maxWidth {
			c.maxWidth = int(width[l])
		}
	}
	c.levelBlock = make([]int32, nb)
	lcur := append([]int32(nil), c.levelPtr[:levels]...)
	for b := 0; b < nb; b++ { // ascending b keeps blocks sorted per level
		l := depth[b]
		c.levelBlock[lcur[l]] = int32(b)
		lcur[l]++
	}
	// Safety scan for the parallel sweeps: zero-coefficient terms were
	// (correctly) excluded from the dependency graph and the depth
	// propagation above, but LoadAt still reads their x entries, so
	// they must respect the level order too (see levelSafe).
	c.levelSafe = true
	for i := range coeffs {
		for _, t := range coeffs[i].Terms {
			if t.J == i || t.A != 0 {
				continue
			}
			bi, bj := c.blockOf[i], c.blockOf[t.J]
			if bi != bj && depth[bi] >= depth[bj] {
				c.levelSafe = false
			}
		}
	}
	return c
}

// PatchRow overwrites the stored values of row i — Self, Const and the
// coupling coefficients — from k, keeping the sparsity pattern.  The
// transpose and the block/level partitions index the nonzero structure,
// so the patch is only legal when k has the same term count, the same
// column order, and the same zero/nonzero pattern as the stored row;
// PatchRow reports false with the CSR untouched otherwise, and the
// caller rebuilds via NewCSR.  Value-only ECO edits (retype, load)
// always preserve the pattern — every circuit coupling coefficient is
// strictly positive — so in practice false means a structural edit.
func (c *CSR) PatchRow(i int, k *Coeffs) bool {
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	if len(k.Terms) != int(hi-lo) {
		return false
	}
	for t, idx := 0, lo; idx < hi; t, idx = t+1, idx+1 {
		tm := k.Terms[t]
		if int32(tm.J) != c.col[idx] || (tm.A == 0) != (c.val[idx] == 0) {
			return false
		}
	}
	c.Self[i] = k.Self
	c.Const[i] = k.Const
	for t, idx := 0, lo; idx < hi; t, idx = t+1, idx+1 {
		tm := k.Terms[t]
		c.val[idx] = tm.A
		if tm.J != i && tm.A != 0 {
			c.setTranspose(int32(i), int32(tm.J), tm.A)
		}
	}
	return true
}

// setTranspose writes value a at transpose entry (row i, column j),
// located by binary search over the column's ascending row list.  The
// entry exists whenever the pattern checks of PatchRow passed.
func (c *CSR) setTranspose(i, j int32, a float64) {
	lo, hi := c.tPtr[j], c.tPtr[j+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.tRow[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.tVal[lo] = a
}

// N returns the number of vertices (matrix dimension).
func (c *CSR) N() int { return c.n }

// NNZ returns the number of stored coupling entries.
func (c *CSR) NNZ() int { return len(c.col) }

// Row returns the couplings of vertex i's delay: column indices and
// coefficients, in the original Terms order. Callers must not mutate.
func (c *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	return c.col[lo:hi], c.val[lo:hi]
}

// Incoming returns the couplings entering column j — the vertices i
// whose delay mentions x_j, with a_ij — in ascending i order.
// Callers must not mutate.
func (c *CSR) Incoming(j int) ([]int32, []float64) {
	lo, hi := c.tPtr[j], c.tPtr[j+1]
	return c.tRow[lo:hi], c.tVal[lo:hi]
}

// NumBlocks returns the number of SCC blocks of the dependency graph.
func (c *CSR) NumBlocks() int { return len(c.blockPtr) - 1 }

// Block returns the vertices of block b (topological condensation
// order: dependencies of b live in blocks < b). Callers must not mutate.
func (c *CSR) Block(b int) []int32 {
	return c.blockVert[c.blockPtr[b]:c.blockPtr[b+1]]
}

// BlockOf returns the block index of vertex v.
func (c *CSR) BlockOf(v int) int { return int(c.blockOf[v]) }

// PosInBlock returns v's index within its block.
func (c *CSR) PosInBlock(v int) int { return int(c.posInBlock[v]) }

// MaxBlock returns the largest block size (1 for acyclic couplings).
func (c *CSR) MaxBlock() int { return c.maxBlock }

// NumLevels returns the number of dependency levels: groups of blocks
// at equal condensation depth, with no couplings inside a group.
func (c *CSR) NumLevels() int { return len(c.levelPtr) - 1 }

// LevelBlocks returns the block indices of level l in ascending
// order.  For every coupling i→j across blocks, block(i)'s level is
// strictly below block(j)'s, so the blocks of one level can be solved
// concurrently once all later (smp sweep) or earlier (transpose
// solve) levels are done.  Callers must not mutate.
func (c *CSR) LevelBlocks(l int) []int32 {
	return c.levelBlock[c.levelPtr[l]:c.levelPtr[l+1]]
}

// MaxLevelWidth returns the largest level size in blocks — the
// available W-phase parallelism of this coupling structure.
func (c *CSR) MaxLevelWidth() int { return c.maxWidth }

// LevelParallelSafe reports whether the level partition covers every
// stored term's read footprint — including zero-coefficient terms,
// which carry no dependency but are still read by LoadAt.  The
// level-parallel sweeps require it (they fall back to serial when
// false); the circuit constructors never emit hazardous zero terms,
// so this is a defensive guard for hand-built coefficient sets.
func (c *CSR) LevelParallelSafe() bool { return c.levelSafe }

// LevelParallelFloor is the shared per-level parallel floor of the
// level-scheduled solvers (smp sweeps, lin transpose solves): levels
// with fewer independent blocks run inline, because a worker-pool
// barrier costs more than solving a narrow level serially.  One
// constant so the two solvers always engage at the same width; tune
// from multi-core measurements (ROADMAP).
const LevelParallelFloor = 128

// LoadAt returns Σ a_ij·x_j + b_i — the x-dependent numerator of
// delay(i) (bit-identical to Coeffs.LoadAt).
func (c *CSR) LoadAt(i int, x []float64) float64 {
	s := c.Const[i]
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		s += c.val[k] * x[c.col[k]]
	}
	return s
}

// Delay evaluates delay(i) at own size xi and neighbour sizes x.
func (c *CSR) Delay(i int, xi float64, x []float64) float64 {
	return c.Self[i] + c.LoadAt(i, x)/xi
}

// FloorAt returns the smallest achievable delay at the current
// neighbour sizes: the vertex at maxSize driving today's load.
func (c *CSR) FloorAt(i int, x []float64, maxSize float64) float64 {
	return c.Self[i] + c.LoadAt(i, x)/maxSize
}

// DelaysInto fills d[0:N()] with the per-vertex delays at sizes x and
// returns d (entries past N(), if any, are untouched).
func (c *CSR) DelaysInto(d, x []float64) []float64 {
	for i := 0; i < c.n; i++ {
		d[i] = c.Delay(i, x[i], x)
	}
	return d
}
