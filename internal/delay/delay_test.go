package delay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/tech"
)

// chain2 builds inv1 -> inv2 -> PO.
func chain2() *circuit.Circuit {
	c := circuit.New("chain2")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Inv, a)
	g2 := c.AddGate("g2", cell.Inv, g1)
	c.MarkPO(g2)
	return c
}

func TestGateCoeffsByHand(t *testing.T) {
	p := tech.Default013()
	m := NewModel(p)
	c := chain2()
	ks, err := m.GateCoeffs(c)
	if err != nil {
		t.Fatal(err)
	}
	inv := cell.Get(cell.Inv)
	r := p.RUnit * inv.Drive

	// g1 drives g2 (one fanout, no PO): Self = R·Cd·p, one coupling to
	// g2 of R·Cg·g, Const = R·Cwire.
	k1 := ks[0]
	if k1.Self != r*p.CDiff*inv.Parasitic {
		t.Errorf("g1 Self = %g", k1.Self)
	}
	if len(k1.Terms) != 1 || k1.Terms[0].J != 1 {
		t.Fatalf("g1 terms %v", k1.Terms)
	}
	if k1.Terms[0].A != r*p.CGate*inv.InputCap {
		t.Errorf("g1 coupling = %g", k1.Terms[0].A)
	}
	if k1.Const != r*p.CWire {
		t.Errorf("g1 const = %g", k1.Const)
	}

	// g2 drives only the PO: no couplings, Const includes POLoad+wire.
	k2 := ks[1]
	if len(k2.Terms) != 0 {
		t.Fatalf("g2 terms %v", k2.Terms)
	}
	if k2.Const != r*(p.CWire+m.POLoad) {
		t.Errorf("g2 const = %g, want %g", k2.Const, r*(p.CWire+m.POLoad))
	}

	// Closed form: delay(g1) at x=(2,3).
	x := []float64{2, 3}
	want := k1.Self + (k1.Terms[0].A*3+k1.Const)/2
	if got := ks[0].Delay(2, x); got != want {
		t.Errorf("delay(g1) = %g, want %g", got, want)
	}
	ds := Delays(ks, x)
	if ds[0] != want {
		t.Errorf("Delays[0] = %g, want %g", ds[0], want)
	}
}

func TestPinMultiplicity(t *testing.T) {
	// A gate feeding both inputs of a NAND2 must count the load twice.
	c := circuit.New("dup")
	a := c.AddPI("a")
	g1 := c.AddGate("g1", cell.Inv, a)
	g2 := c.AddGate("g2", cell.Nand2, g1, g1)
	c.MarkPO(g2)
	m := NewModel(tech.Default013())
	ks, err := m.GateCoeffs(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks[0].Terms) != 1 {
		t.Fatalf("expected merged term, got %v", ks[0].Terms)
	}
	p := tech.Default013()
	single := p.RUnit * cell.Get(cell.Inv).Drive * p.CGate * cell.Get(cell.Nand2).InputCap
	if ks[0].Terms[0].A != 2*single {
		t.Errorf("coupling %g, want doubled %g", ks[0].Terms[0].A, 2*single)
	}
}

func TestMonotonicity(t *testing.T) {
	// Simple monotonic functional shape: delay decreasing in own size,
	// non-decreasing in every neighbour size.
	m := NewModel(tech.Default013())
	c := chain2()
	ks, _ := m.GateCoeffs(c)
	f := func(x1, x2 uint8) bool {
		a := 1 + float64(x1%60)
		b := 1 + float64(x2%60)
		base := ks[0].Delay(a, []float64{a, b})
		dOwn := ks[0].Delay(a+1, []float64{a + 1, b})
		dLoad := ks[0].Delay(a, []float64{a, b + 1})
		return dOwn < base && dLoad >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloorAtIsLowerBound(t *testing.T) {
	m := NewModel(tech.Default013())
	c := chain2()
	ks, _ := m.GateCoeffs(c)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		x := []float64{1 + rng.Float64()*127, 1 + rng.Float64()*127}
		for i := range ks {
			if fl := ks[i].FloorAt(x, 128); fl > ks[i].Delay(x[i], x)+1e-12 {
				t.Fatalf("floor %g above actual delay %g", fl, ks[i].Delay(x[i], x))
			}
		}
	}
}

func TestValidateCatchesNegative(t *testing.T) {
	k := Coeffs{Self: -1}
	if err := k.Validate(); err == nil {
		t.Error("negative Self accepted")
	}
	k = Coeffs{Const: -1}
	if err := k.Validate(); err == nil {
		t.Error("negative Const accepted")
	}
	k = Coeffs{Terms: []Term{{J: 0, A: -2}}}
	if err := k.Validate(); err == nil {
		t.Error("negative coupling accepted")
	}
}

func TestBadTechRejected(t *testing.T) {
	p := tech.Default013()
	p.RUnit = -4
	m := &Model{Tech: p}
	if _, err := m.GateCoeffs(chain2()); err == nil {
		t.Fatal("invalid tech accepted")
	}
}
