package delay

import (
	"math"
	"math/rand"
	"testing"
)

// randomCoeffs builds a coefficient set with acyclic couplings plus a
// few mutually-coupled (block) pairs, some zero-A and duplicate terms.
func randomCoeffs(rng *rand.Rand, n int) []Coeffs {
	ks := make([]Coeffs, n)
	for i := 0; i < n; i++ {
		ks[i].Self = rng.Float64()
		ks[i].Const = rng.Float64() * 5
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				a := rng.Float64() * 2
				if rng.Intn(8) == 0 {
					a = 0 // exercise zero-coefficient filtering
				}
				ks[i].Terms = append(ks[i].Terms, Term{J: j, A: a})
			}
		}
		// Occasional back edge to create a 2-cycle block.
		if i > 0 && rng.Intn(5) == 0 {
			ks[i].Terms = append(ks[i].Terms, Term{J: i - 1, A: 0.1 * rng.Float64()})
		}
	}
	return ks
}

func TestCSRMatchesCoeffsEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		ks := randomCoeffs(rng, n)
		csr := NewCSR(ks)
		x := make([]float64, n)
		for i := range x {
			x[i] = 1 + rng.Float64()*9
		}
		for i := 0; i < n; i++ {
			// Bit-identical, not merely close: same summation order.
			if got, want := csr.LoadAt(i, x), ks[i].LoadAt(x); got != want {
				t.Fatalf("trial %d: LoadAt(%d) = %v, want %v", trial, i, got, want)
			}
			if got, want := csr.Delay(i, x[i], x), ks[i].Delay(x[i], x); got != want {
				t.Fatalf("trial %d: Delay(%d) = %v, want %v", trial, i, got, want)
			}
			if got, want := csr.FloorAt(i, x, 16), ks[i].FloorAt(x, 16); got != want {
				t.Fatalf("trial %d: FloorAt(%d) = %v, want %v", trial, i, got, want)
			}
		}
		d := csr.DelaysInto(make([]float64, n), x)
		want := Delays(ks, x)
		for i := range d {
			if d[i] != want[i] {
				t.Fatalf("trial %d: DelaysInto[%d] = %v, want %v", trial, i, d[i], want[i])
			}
		}
	}
}

func TestCSRTransposeIsExactTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		ks := randomCoeffs(rng, n)
		csr := NewCSR(ks)
		// Rebuild incoming lists the way lin.SolveTranspose used to.
		type inc struct {
			i int
			a float64
		}
		incoming := make([][]inc, n)
		for i := range ks {
			for _, tm := range ks[i].Terms {
				if tm.J == i || tm.A == 0 {
					continue
				}
				incoming[tm.J] = append(incoming[tm.J], inc{i, tm.A})
			}
		}
		for j := 0; j < n; j++ {
			rows, vals := csr.Incoming(j)
			if len(rows) != len(incoming[j]) {
				t.Fatalf("trial %d: column %d has %d entries, want %d", trial, j, len(rows), len(incoming[j]))
			}
			for k := range rows {
				if int(rows[k]) != incoming[j][k].i || vals[k] != incoming[j][k].a {
					t.Fatalf("trial %d: column %d entry %d = (%d,%g), want (%d,%g)",
						trial, j, k, rows[k], vals[k], incoming[j][k].i, incoming[j][k].a)
				}
			}
		}
	}
}

func TestCSRBlocksTopologicalAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		ks := randomCoeffs(rng, n)
		csr := NewCSR(ks)
		seen := make([]bool, n)
		count := 0
		maxBlock := 0
		for b := 0; b < csr.NumBlocks(); b++ {
			blk := csr.Block(b)
			if len(blk) > maxBlock {
				maxBlock = len(blk)
			}
			for k, v := range blk {
				if seen[v] {
					t.Fatalf("trial %d: vertex %d in two blocks", trial, v)
				}
				seen[v] = true
				count++
				if csr.BlockOf(int(v)) != b || csr.PosInBlock(int(v)) != k {
					t.Fatalf("trial %d: membership index wrong for vertex %d", trial, v)
				}
			}
		}
		if count != n {
			t.Fatalf("trial %d: blocks cover %d of %d vertices", trial, count, n)
		}
		if maxBlock != csr.MaxBlock() {
			t.Fatalf("trial %d: MaxBlock %d, observed %d", trial, csr.MaxBlock(), maxBlock)
		}
		// Topological: an edge i→j (vertex i's delay mentions x_j) never
		// points into an earlier block — blocks are in condensation order.
		for i := 0; i < n; i++ {
			cols, vals := csr.Row(i)
			for k := range cols {
				j := int(cols[k])
				if j == i || vals[k] == 0 {
					continue
				}
				if csr.BlockOf(j) < csr.BlockOf(i) {
					t.Fatalf("trial %d: edge %d→%d goes backwards in condensation order", trial, i, j)
				}
			}
		}
	}
}

func TestCSREmptyAndSingle(t *testing.T) {
	c := NewCSR(nil)
	if c.N() != 0 || c.NumBlocks() != 0 || c.NNZ() != 0 {
		t.Fatal("empty CSR malformed")
	}
	c = NewCSR([]Coeffs{{Self: 2, Const: 3}})
	if c.N() != 1 || c.MaxBlock() != 1 {
		t.Fatal("single-vertex CSR malformed")
	}
	if d := c.Delay(0, 2, []float64{2}); math.Abs(d-3.5) > 1e-15 {
		t.Fatalf("delay = %g, want 3.5", d)
	}
}

// TestCSRLevels pins the level-partition invariants the parallel
// sweeps schedule on: the levels partition the blocks, blocks are
// ascending within a level, and every real coupling i→j across blocks
// goes from a strictly lower to a strictly higher level (so one
// level's blocks are mutually independent).
func TestCSRLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(60)
		ks := randomCoeffs(rng, n)
		c := NewCSR(ks)

		levelOf := make([]int, c.NumBlocks())
		seen := 0
		maxWidth := 0
		for l := 0; l < c.NumLevels(); l++ {
			blocks := c.LevelBlocks(l)
			if len(blocks) > maxWidth {
				maxWidth = len(blocks)
			}
			for k, b := range blocks {
				if k > 0 && blocks[k-1] >= b {
					t.Fatalf("trial %d: level %d blocks not ascending: %v", trial, l, blocks)
				}
				levelOf[b] = l
				seen++
			}
		}
		if seen != c.NumBlocks() {
			t.Fatalf("trial %d: levels cover %d blocks, want %d", trial, seen, c.NumBlocks())
		}
		if maxWidth != c.MaxLevelWidth() {
			t.Fatalf("trial %d: MaxLevelWidth %d, recomputed %d", trial, c.MaxLevelWidth(), maxWidth)
		}
		for i := range ks {
			for _, tm := range ks[i].Terms {
				if tm.J == i || tm.A == 0 {
					continue
				}
				bi, bj := c.BlockOf(i), c.BlockOf(tm.J)
				if bi == bj {
					continue
				}
				if levelOf[bi] >= levelOf[bj] {
					t.Fatalf("trial %d: coupling %d→%d crosses levels %d→%d (want strictly increasing)",
						trial, i, tm.J, levelOf[bi], levelOf[bj])
				}
			}
		}
	}
}
