package mcmf

import (
	"math/rand"
	"testing"
)

// The flowState capture/diff scaffolding these tests use moved to
// conformance_test.go, where it is shared by the whole cross-engine
// conformance suite.

// TestParallelEngineMatchesSSPExact is the engine-level bit-equality
// gate of the parallel backend: on grid and random instances large
// enough to engage real speculation, the "parallel" engine at worker
// budgets 1, 2, 4 and 8 must reproduce the "ssp" engine exactly —
// same cost, same per-arc flows, same node potentials, same
// augmentation and visited counts — through a fresh solve and a
// sequence of incremental ResolveChanged rounds.
func TestParallelEngineMatchesSSPExact(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		ref := NewGridInstance(12, 24, seed)
		refCost, err := ref.Solve()
		if err != nil {
			t.Fatalf("seed %d: ssp solve: %v", seed, err)
		}
		want := captureState(ref, refCost)
		refStats := ref.EngineStats()

		for _, par := range []int{1, 2, 4, 8} {
			inst := NewGridInstance(12, 24, seed)
			inst.SetParallelism(par)
			if err := inst.SetEngine("parallel"); err != nil {
				t.Fatal(err)
			}
			cost, err := inst.Solve()
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			diffState(t, "solve", want, captureState(inst, cost))
			if err := inst.Verify(); err != nil {
				t.Fatalf("seed %d par %d: certificate: %v", seed, par, err)
			}
			st := inst.EngineStats()
			if st.Augmentations != refStats.Augmentations || st.Visited != refStats.Visited {
				t.Fatalf("seed %d par %d: work counters (aug %d, visited %d) != ssp (aug %d, visited %d)",
					seed, par, st.Augmentations, st.Visited, refStats.Augmentations, refStats.Visited)
			}
			if par > 1 && st.SpecCommits == 0 {
				t.Fatalf("seed %d par %d: no speculative commits — the parallel path never engaged", seed, par)
			}
		}
	}
}

// TestParallelEngineResolveMatchesSSP drives both engines through the
// same random mutation rounds via ResolveChanged and requires exact
// state agreement after every round — the incremental path of the
// parallel engine must replay ssp's repairs bit-for-bit, including
// the work-estimate gate decisions (both solvers learn the same EWMA
// averages because they measure identical runs).
func TestParallelEngineResolveMatchesSSP(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := buildRandomFeasible(rand.New(rand.NewSource(seed)), false)
		b := buildRandomFeasible(rand.New(rand.NewSource(seed)), false)
		b.SetParallelism(4)
		if err := b.SetEngine("parallel"); err != nil {
			t.Fatal(err)
		}
		costA, errA := a.Solve()
		costB, errB := b.Solve()
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: ssp err %v, parallel err %v", seed, errA, errB)
		}
		diffState(t, "initial", captureState(a, costA), captureState(b, costB))

		mrng := rand.New(rand.NewSource(seed + 1000))
		for round := 0; round < 6; round++ {
			changed := mutateRandom(mrng, a, false)
			// Mirror the exact mutations onto b.
			for id := 0; id < a.NumArcs(); id++ {
				b.SetCost(id, a.Cost(id))
				b.UpdateCapacity(id, a.Capacity(id))
			}
			for v := 0; v < a.N(); v++ {
				b.SetSupply(v, a.Supply(v))
			}
			costA, errA = a.ResolveChanged(changed)
			costB, errB = b.ResolveChanged(changed)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d round %d: ssp err %v, parallel err %v", seed, round, errA, errB)
			}
			if errA != nil {
				continue
			}
			diffState(t, "resolve", captureState(a, costA), captureState(b, costB))
			sa, sb := a.EngineStats(), b.EngineStats()
			if sa.Resolves != sb.Resolves || sa.FullFallbacks != sb.FullFallbacks {
				t.Fatalf("seed %d round %d: gate paths diverged: ssp %+v vs parallel %+v",
					seed, round, sa, sb)
			}
		}
	}
}

// TestParallelDeterministicAcrossWorkers pins the determinism
// contract directly: the same instance solved at different worker
// budgets (and therefore different speculation round sizes and
// schedules) must produce byte-identical flows and potentials.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	var ref flowState
	var refStats Stats
	for i, par := range []int{1, 2, 3, 4, 8, 16} {
		inst := NewGridInstance(20, 32, 99)
		inst.SetParallelism(par)
		if err := inst.SetEngine("parallel"); err != nil {
			t.Fatal(err)
		}
		cost, err := inst.Solve()
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		got := captureState(inst, cost)
		st := inst.EngineStats()
		if i == 0 {
			ref, refStats = got, st
			continue
		}
		diffState(t, "workers", ref, got)
		if st.Augmentations != refStats.Augmentations || st.Visited != refStats.Visited {
			t.Fatalf("par %d: work counters (aug %d, visited %d) != par 1 (aug %d, visited %d)",
				par, st.Augmentations, st.Visited, refStats.Augmentations, refStats.Visited)
		}
	}
}

// FuzzParallelSize drives the parallel engine with fuzzer-chosen
// mutation sequences over feasible base instances — including the
// degenerate shapes from the resolve suite (capacities cut to zero,
// supply shifted onto a disconnected node) — and cross-checks every
// step against a fresh serial solve of the same configuration.
func FuzzParallelSize(f *testing.F) {
	// Seeds covering the resolve_test degenerates: zero-capacity cuts
	// (op byte 2) and supply shifts onto the isolated node (op 3).
	f.Add([]byte{0x01, 0x20, 0x13}, int64(1), uint8(4))
	f.Add([]byte{0x02, 0x02, 0x00, 0x05, 0x02, 0x01}, int64(3), uint8(2)) // zero-capacity rounds
	f.Add([]byte{0x03, 0x00, 0x07, 0x03, 0x01, 0x02}, int64(5), uint8(8)) // disconnected-supply rounds
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17}, int64(42), uint8(3))
	f.Fuzz(func(t *testing.T, deltas []byte, seed int64, par uint8) {
		rng := rand.New(rand.NewSource(seed))
		s := buildRandomFeasible(rng, false)
		iso := s.AddNode() // disconnected: no arcs ever touch it
		s.SetParallelism(int(par%9) + 1)
		if err := s.SetEngine("parallel"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		narcs := s.NumArcs()
		var changed []int32
		for i := 0; i+2 < len(deltas); i += 3 {
			id := int(deltas[i]) % narcs
			switch deltas[i+1] % 4 {
			case 0:
				s.SetCost(id, int64(deltas[i+2]))
				changed = append(changed, int32(id))
			case 1:
				s.UpdateCapacity(id, int64(deltas[i+2])*4)
				changed = append(changed, int32(id))
			case 2: // zero-capacity degenerate
				s.UpdateCapacity(id, 0)
				changed = append(changed, int32(id))
			default: // shift supply onto the disconnected node
				amt := int64(deltas[i+2] % 8)
				v := int(deltas[i+2]) % s.N()
				if v == iso {
					v = 0
				}
				s.AddSupply(iso, amt)
				s.AddSupply(v, -amt)
			}
		}
		gotCost, gotErr := s.ResolveChanged(changed)
		wantCost, wantErr := freshTwin(s).Solve()
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parallel resolve err %v, fresh err %v", gotErr, wantErr)
		}
		if gotErr == nil {
			if gotCost != wantCost {
				t.Fatalf("parallel resolve cost %v != fresh cost %v", gotCost, wantCost)
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("certificate: %v", err)
			}
		}
	})
}
