package mcmf

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// The freshTwin/mutateRandom scaffolding and the random
// resolve-vs-fresh property gate moved to conformance_test.go
// (TestConformanceResolve), which runs them for every registered
// engine.  This file keeps the resolve tests that pin engine-specific
// behaviour: exact fallback/no-fallback gate outcomes and the dial
// overflow machinery.

// TestResolveDisconnectedSupply covers the degenerate network the
// property test can't hit reliably: supply on a node with no arcs at
// all.  Resolve and fresh solve must both report infeasibility, and a
// later repair through Resolve must succeed again.
func TestResolveDisconnectedSupply(t *testing.T) {
	s := New(4) // node 3 is isolated
	a01 := s.AddArc(0, 1, 10, 2)
	s.AddArc(1, 2, 10, 2)
	s.SetSupply(0, 3)
	s.SetSupply(2, -3)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	// Shift the demand onto the isolated node: infeasible.
	s.SetSupply(2, 0)
	s.SetSupply(3, -3)
	if _, err := s.ResolveChanged(nil); err != ErrInfeasible {
		t.Fatalf("resolve on disconnected demand: err=%v, want ErrInfeasible", err)
	}
	if _, err := freshTwin(s).Solve(); err != ErrInfeasible {
		t.Fatalf("fresh on disconnected demand: err=%v, want ErrInfeasible", err)
	}
	// Repair the supplies; the next Resolve falls back to a full solve
	// (the failed attempt invalidated the flow) and must succeed.
	s.SetSupply(2, -3)
	s.SetSupply(3, 0)
	cost, err := s.ResolveChanged(nil)
	if err != nil || cost != 12 {
		t.Fatalf("repaired resolve: cost=%v err=%v, want 12", cost, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if st := s.EngineStats(); st.FullFallbacks == 0 {
		t.Fatal("expected the post-failure resolve to fall back to a full solve")
	}
	_ = a01
}

// TestResolveZeroCapacityReroute pins the drain-and-reroute behaviour:
// cutting the capacity of a flow-carrying arc to zero must reroute its
// flow over the remaining (more expensive) path.
func TestResolveZeroCapacityReroute(t *testing.T) {
	s := New(3)
	cheapA := s.AddArc(0, 1, 10, 1)
	cheapB := s.AddArc(1, 2, 10, 1)
	direct := s.AddArc(0, 2, 10, 9)
	s.SetSupply(0, 4)
	s.SetSupply(2, -4)
	if cost, err := s.Solve(); err != nil || cost != 8 {
		t.Fatalf("initial: cost=%v err=%v, want 8", cost, err)
	}
	s.UpdateCapacity(cheapB, 0)
	cost, err := s.ResolveChanged([]int32{int32(cheapB)})
	if err != nil || cost != 36 {
		t.Fatalf("after cut: cost=%v err=%v, want 36", cost, err)
	}
	if s.Flow(direct) != 4 || s.Flow(cheapA) != 0 || s.Flow(cheapB) != 0 {
		t.Fatalf("flows %d/%d/%d, want 0/0/4 rerouted onto the direct arc",
			s.Flow(cheapA), s.Flow(cheapB), s.Flow(direct))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if st := s.EngineStats(); st.Resolves != 1 {
		t.Fatalf("stats report %d resolves, want 1 (no fallback)", st.Resolves)
	}
}

// FuzzResolveDeltas drives ResolveChanged with fuzzer-chosen delta
// sequences over a fixed feasible base instance; every step must match
// a fresh solve on the mutated configuration exactly.
func FuzzResolveDeltas(f *testing.F) {
	f.Add([]byte{0x01, 0x20, 0x13}, int64(1))
	f.Add([]byte{0xff, 0x00, 0x7a, 0x31, 0x02, 0x9c}, int64(7))
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17}, int64(42))
	f.Fuzz(func(t *testing.T, deltas []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		s := buildRandomFeasible(rng, false)
		if err := s.SetEngine("dial"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		var changed []int32
		narcs := s.NumArcs()
		for i := 0; i+2 < len(deltas); i += 3 {
			id := int(deltas[i]) % narcs
			switch deltas[i+1] % 3 {
			case 0:
				s.SetCost(id, int64(deltas[i+2]))
			case 1:
				s.UpdateCapacity(id, int64(deltas[i+2])*4)
			default:
				s.UpdateCapacity(id, 0)
			}
			changed = append(changed, int32(id))
		}
		gotCost, gotErr := s.ResolveChanged(changed)
		wantCost, wantErr := freshTwin(s).Solve()
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("resolve err %v, fresh err %v", gotErr, wantErr)
		}
		if gotErr == nil && gotCost != wantCost {
			t.Fatalf("resolve cost %v != fresh cost %v", gotCost, wantCost)
		}
		if gotErr == nil {
			if err := s.Verify(); err != nil {
				t.Fatalf("certificate: %v", err)
			}
		}
	})
}

// BenchmarkDPhaseResolve measures the acceptance criterion of the
// incremental re-flow: a steady-state D-phase-shaped loop that mutates
// a small batch of arc costs per iteration, re-solved three ways —
// "warmfull" (Reset + full Solve from warm potentials, the previous
// best path), and "resolve" via the incremental drain-and-reroute on
// both SSP engines.
func BenchmarkDPhaseResolve(b *testing.B) {
	const batch = 24
	mkSchedule := func(s *Solver) ([]int32, []int64) {
		rng := rand.New(rand.NewSource(11))
		ids := make([]int32, 256*batch)
		costs := make([]int64, len(ids))
		for i := range ids {
			ids[i] = int32(rng.Intn(s.NumArcs()))
			costs[i] = int64(rng.Intn(1000))
		}
		return ids, costs
	}
	b.Run("warmfull", func(b *testing.B) {
		s := NewGridInstance(40, 25, 7)
		ids, costs := mkSchedule(s)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (i % 256) * batch
			for k := 0; k < batch; k++ {
				s.SetCost(int(ids[off+k]), costs[off+k])
			}
			s.Reset()
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, engine := range []string{"ssp", "dial"} {
		engine := engine
		b.Run("resolve/"+engine, func(b *testing.B) {
			s := NewGridInstance(40, 25, 7)
			ids, costs := mkSchedule(s)
			if err := s.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i % 256) * batch
				for k := 0; k < batch; k++ {
					s.SetCost(int(ids[off+k]), costs[off+k])
				}
				if _, err := s.ResolveChanged(ids[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPhaseResolveArmed is the poll-hook overhead gate: the
// resolve loop of BenchmarkDPhaseResolve with every abort source armed
// (live context, wall-clock deadline, work budget) but never firing.
// Comparing its resolve/<engine> rows against BenchmarkDPhaseResolve's
// measures the full cost of cancellation support on the hot path —
// the robustness contract requires <2% and zero extra allocations.
func BenchmarkDPhaseResolveArmed(b *testing.B) {
	const batch = 24
	mkSchedule := func(s *Solver) ([]int32, []int64) {
		rng := rand.New(rand.NewSource(11))
		ids := make([]int32, 256*batch)
		costs := make([]int64, len(ids))
		for i := range ids {
			ids[i] = int32(rng.Intn(s.NumArcs()))
			costs[i] = int64(rng.Intn(1000))
		}
		return ids, costs
	}
	for _, engine := range []string{"ssp", "dial"} {
		engine := engine
		b.Run("resolve/"+engine, func(b *testing.B) {
			s := NewGridInstance(40, 25, 7)
			ids, costs := mkSchedule(s)
			if err := s.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			s.SetContext(ctx)
			s.SetDeadline(time.Now().Add(24 * time.Hour))
			s.SetWorkBudget(1 << 60)
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i % 256) * batch
				for k := 0; k < batch; k++ {
					s.SetCost(int(ids[off+k]), costs[off+k])
				}
				if _, err := s.ResolveChanged(ids[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDialOverflowHorizon pins the dial engine's overflow discipline
// (regression: an unsettled node whose tentative distance equals the
// scan position at a rebase was dropped as settled, making a feasible
// instance report ErrInfeasible).  Arc costs sit exactly at and just
// below the bucket-ring horizon so the only route to the deficit goes
// through an overflow entry.
func TestDialOverflowHorizon(t *testing.T) {
	build := func() *Solver {
		s := New(4)
		s.AddArc(0, 1, 10, dialRing-1) // dead end keeps the ring busy up to the horizon
		s.AddArc(0, 2, 10, dialRing)   // the real route overflows the ring
		s.AddArc(2, 3, 10, 0)
		s.SetSupply(0, 1)
		s.SetSupply(3, -1)
		return s
	}
	want, err := build().Solve() // ssp reference
	if err != nil {
		t.Fatal(err)
	}
	d := build()
	if err := d.SetEngine("dial"); err != nil {
		t.Fatal(err)
	}
	got, err := d.Solve()
	if err != nil {
		t.Fatalf("dial on feasible horizon instance: %v", err)
	}
	if got != want {
		t.Fatalf("dial cost %v != ssp cost %v", got, want)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDialHugeCostsMatchSSP drives the overflow/merge machinery hard:
// random feasible instances with costs scaled far beyond the bucket
// ring must solve to exactly the ssp optimum (the D-phase integerizes
// at 1e6, so megascale reduced costs are the production shape).
func TestDialHugeCostsMatchSSP(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := buildRandomFeasible(rng, false)
		scale := int64(1 + rng.Intn(5000))
		for id := 0; id < a.NumArcs(); id++ {
			a.SetCost(id, a.Cost(id)*scale)
		}
		b := freshTwin(a)
		if err := b.SetEngine("dial"); err != nil {
			t.Fatal(err)
		}
		want, err1 := a.Solve()
		got, err2 := b.Solve()
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: ssp err %v, dial err %v", seed, err1, err2)
		}
		if got != want {
			t.Fatalf("seed %d (scale %d): dial cost %v != ssp cost %v", seed, scale, got, want)
		}
		if err := b.Verify(); err != nil {
			t.Fatalf("seed %d: dial certificate: %v", seed, err)
		}
		// And again through the incremental path after a delta batch.
		changed := mutateRandom(rng, b, false)
		for _, id := range changed {
			b.SetCost(int(id), b.Cost(int(id))*scale)
		}
		for i := 0; i < a.NumArcs(); i++ {
			a.SetCost(i, b.Cost(i))
			a.UpdateCapacity(i, b.Capacity(i))
		}
		for v := 0; v < a.N(); v++ {
			a.SetSupply(v, b.Supply(v))
		}
		gotR, err2 := b.ResolveChanged(changed)
		wantR, err1 := a.Solve()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: resolve err %v, fresh err %v", seed, err2, err1)
		}
		if err1 == nil && gotR != wantR {
			t.Fatalf("seed %d: dial resolve cost %v != ssp cost %v", seed, gotR, wantR)
		}
	}
}
