package mcmf

import "math/rand"

// NewGridInstance builds a D-phase-shaped benchmark instance: a layered
// DAG with backbone arcs guaranteeing feasibility, random cross arcs,
// supplies on the first layer and balancing demands on the last.  It is
// the shared workload of BenchmarkMCMF (package minflo), the in-package
// solver benchmarks, and the Solve/SolveCostScaling equivalence tests,
// so engine comparisons and the BENCH_*.json perf trajectory all
// measure the same shape of problem the D-phase produces.
func NewGridInstance(layers, width int, seed int64) *Solver {
	rng := rand.New(rand.NewSource(seed))
	n := layers * width
	s := New(n)
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			u := l*width + i
			// Backbone arcs guarantee feasibility regardless of the
			// random extras: straight ahead and one lane over.
			s.AddArc(u, (l+1)*width+i, 1_000_000, 900)
			s.AddArc(u, (l+1)*width+(i+1)%width, 1_000_000, 900)
			for k := 0; k < 3; k++ {
				v := (l+1)*width + rng.Intn(width)
				s.AddArc(u, v, 1_000_000, int64(rng.Intn(1000)))
			}
		}
	}
	for i := 0; i < width; i++ {
		s.SetSupply(i, int64(10+rng.Intn(50)))
	}
	tot := int64(0)
	for i := 0; i < width; i++ {
		tot += s.Supply(i)
	}
	for i := 0; i < width; i++ {
		v := (layers-1)*width + i
		share := tot / int64(width)
		s.SetSupply(v, -share)
		tot -= share
	}
	s.AddSupply((layers-1)*width, -tot)
	return s
}
