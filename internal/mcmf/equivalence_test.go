package mcmf

import (
	"fmt"
	"testing"
)

// The cross-engine random equivalence gate and its buildRandomFeasible
// scaffolding moved to conformance_test.go (TestConformanceRandom),
// where every registered engine runs the full table-driven suite.

// TestEnginesAgreeGrid cross-checks all backends on the exact layered
// D-phase grid instances the benchmarks use.
func TestEnginesAgreeGrid(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		layers := 6 + int(seed)
		width := 4 + int(seed)%5
		var ref float64
		for i, name := range EngineNames() {
			inst := NewGridInstance(layers, width, seed)
			if err := inst.SetEngine(name); err != nil {
				t.Fatal(err)
			}
			cost, err := inst.Solve()
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("seed %d: %s certificate: %v", seed, name, err)
			}
			if i == 0 {
				ref = cost
			} else if cost != ref {
				t.Fatalf("seed %d: %s cost %v != %v", seed, name, cost, ref)
			}
		}
	}
}

// TestOneSolverBothEngines runs both engines on one instance object:
// SolveCostScaling starts from the unsolved residual configuration
// regardless of a prior Solve, so the costs must match.
func TestOneSolverBothEngines(t *testing.T) {
	s := NewGridInstance(12, 8, 3)
	costSSP, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	costCS, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if costSSP != costCS {
		t.Fatalf("same-object engines disagree: %v vs %v", costSSP, costCS)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFlowEngines compares every registered backend on identical
// D-phase-shaped instances of growing size — "fresh" builds and solves
// (the per-problem cost), "warm" re-solves one network through the
// Reset warm-start path (the per-iteration cost).  Recorded in
// BENCH_*.json via cmd/mkbench -snapshot; the measured crossover
// points are documented in EXPERIMENTS.md.
func BenchmarkFlowEngines(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{10, 10}, {40, 25}, {80, 50}} {
		name := fmt.Sprintf("%dx%d", size.layers, size.width)
		for _, engine := range EngineNames() {
			engine := engine
			b.Run(engine+"/"+name+"/fresh", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := NewGridInstance(size.layers, size.width, 7)
					if err := s.SetEngine(engine); err != nil {
						b.Fatal(err)
					}
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(engine+"/"+name+"/warm", func(b *testing.B) {
				s := NewGridInstance(size.layers, size.width, 7)
				if err := s.SetEngine(engine); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Reset()
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
