package mcmf

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomFeasible constructs a random feasible instance: a
// high-capacity backbone chain 0→1→…→n−1 (bidirectional when all costs
// are non-negative) guarantees every supply/demand pair can route;
// random extra arcs (DAG-oriented when negative costs are allowed, so
// no negative cycles arise) create alternative routes the two engines
// must price identically.  The backbone occupies the lowest arc IDs:
// n−1 forward arcs, then n−1 reverse arcs unless negativeCosts (a
// reverse chain next to negative forward arcs could close a negative
// cycle, so there supply is always placed upstream of its demand).
func buildRandomFeasible(rng *rand.Rand, negativeCosts bool) *Solver {
	n := 4 + rng.Intn(37)
	s := New(n)
	for v := 0; v+1 < n; v++ {
		s.AddArc(v, v+1, 1_000_000, int64(rng.Intn(20)))
	}
	if !negativeCosts {
		for v := 0; v+1 < n; v++ {
			s.AddArc(v+1, v, 1_000_000, int64(rng.Intn(20)))
		}
	}
	m := n + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		lo := 0
		if negativeCosts {
			// DAG orientation only: negative arcs cannot close a cycle.
			if u > v {
				u, v = v, u
			}
			lo = -5
		}
		s.AddArc(u, v, int64(1+rng.Intn(200)), int64(lo+rng.Intn(60)))
	}
	for k := 0; k < 1+rng.Intn(5); k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if negativeCosts && a > b {
			a, b = b, a // forward-only backbone: route supply downstream
		}
		amt := int64(1 + rng.Intn(40))
		s.AddSupply(a, amt)
		s.AddSupply(b, -amt)
	}
	return s
}

// TestEnginesAgreeRandom is the cross-engine equivalence gate: on
// ≥100 randomized D-phase-shaped instances, every registered backend
// ("ssp" successive shortest paths, "dial" bucket-queue SSP,
// "costscaling" Goldberg–Tarjan) must find the same optimal cost on
// an identical twin instance, and each must pass the self-certifying
// Verify.
func TestEnginesAgreeRandom(t *testing.T) {
	engines := EngineNames()
	if len(engines) < 3 {
		t.Fatalf("expected ≥3 registered engines, have %v", engines)
	}
	count := 0
	for seed := int64(0); seed < 110; seed++ {
		negative := seed%3 == 0
		costs := make(map[string]float64, len(engines))
		for _, name := range engines {
			rng := rand.New(rand.NewSource(seed)) // identical twin per engine
			inst := buildRandomFeasible(rng, negative)
			if err := inst.SetEngine(name); err != nil {
				t.Fatal(err)
			}
			cost, err := inst.Solve()
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("seed %d: %s certificate: %v", seed, name, err)
			}
			if st := inst.EngineStats(); st.Solves != 1 {
				t.Fatalf("seed %d: %s reports %d solves, want 1", seed, name, st.Solves)
			}
			costs[name] = cost
		}
		ref := costs[engines[0]]
		for _, name := range engines[1:] {
			if costs[name] != ref {
				t.Fatalf("seed %d: optimal costs disagree: %s %v vs %s %v",
					seed, engines[0], ref, name, costs[name])
			}
		}
		count++
	}
	if count < 100 {
		t.Fatalf("only %d instances exercised, want >= 100", count)
	}
}

// TestEnginesAgreeGrid cross-checks all backends on the exact layered
// D-phase grid instances the benchmarks use.
func TestEnginesAgreeGrid(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		layers := 6 + int(seed)
		width := 4 + int(seed)%5
		var ref float64
		for i, name := range EngineNames() {
			inst := NewGridInstance(layers, width, seed)
			if err := inst.SetEngine(name); err != nil {
				t.Fatal(err)
			}
			cost, err := inst.Solve()
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("seed %d: %s certificate: %v", seed, name, err)
			}
			if i == 0 {
				ref = cost
			} else if cost != ref {
				t.Fatalf("seed %d: %s cost %v != %v", seed, name, cost, ref)
			}
		}
	}
}

// TestOneSolverBothEngines runs both engines on one instance object:
// SolveCostScaling starts from the unsolved residual configuration
// regardless of a prior Solve, so the costs must match.
func TestOneSolverBothEngines(t *testing.T) {
	s := NewGridInstance(12, 8, 3)
	costSSP, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	costCS, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if costSSP != costCS {
		t.Fatalf("same-object engines disagree: %v vs %v", costSSP, costCS)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFlowEngines compares every registered backend on identical
// D-phase-shaped instances of growing size — "fresh" builds and solves
// (the per-problem cost), "warm" re-solves one network through the
// Reset warm-start path (the per-iteration cost).  Recorded in
// BENCH_*.json via cmd/mkbench -snapshot; the measured crossover
// points are documented in EXPERIMENTS.md.
func BenchmarkFlowEngines(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{10, 10}, {40, 25}, {80, 50}} {
		name := fmt.Sprintf("%dx%d", size.layers, size.width)
		for _, engine := range EngineNames() {
			engine := engine
			b.Run(engine+"/"+name+"/fresh", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := NewGridInstance(size.layers, size.width, 7)
					if err := s.SetEngine(engine); err != nil {
						b.Fatal(err)
					}
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(engine+"/"+name+"/warm", func(b *testing.B) {
				s := NewGridInstance(size.layers, size.width, 7)
				if err := s.SetEngine(engine); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Reset()
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
