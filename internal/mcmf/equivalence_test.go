package mcmf

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomFeasible constructs a random feasible instance: a
// high-capacity backbone chain 0→1→…→n−1 (bidirectional when all costs
// are non-negative) guarantees every supply/demand pair can route;
// random extra arcs (DAG-oriented when negative costs are allowed, so
// no negative cycles arise) create alternative routes the two engines
// must price identically.  The backbone occupies the lowest arc IDs:
// n−1 forward arcs, then n−1 reverse arcs unless negativeCosts (a
// reverse chain next to negative forward arcs could close a negative
// cycle, so there supply is always placed upstream of its demand).
func buildRandomFeasible(rng *rand.Rand, negativeCosts bool) *Solver {
	n := 4 + rng.Intn(37)
	s := New(n)
	for v := 0; v+1 < n; v++ {
		s.AddArc(v, v+1, 1_000_000, int64(rng.Intn(20)))
	}
	if !negativeCosts {
		for v := 0; v+1 < n; v++ {
			s.AddArc(v+1, v, 1_000_000, int64(rng.Intn(20)))
		}
	}
	m := n + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		lo := 0
		if negativeCosts {
			// DAG orientation only: negative arcs cannot close a cycle.
			if u > v {
				u, v = v, u
			}
			lo = -5
		}
		s.AddArc(u, v, int64(1+rng.Intn(200)), int64(lo+rng.Intn(60)))
	}
	for k := 0; k < 1+rng.Intn(5); k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if negativeCosts && a > b {
			a, b = b, a // forward-only backbone: route supply downstream
		}
		amt := int64(1 + rng.Intn(40))
		s.AddSupply(a, amt)
		s.AddSupply(b, -amt)
	}
	return s
}

// TestEnginesAgreeRandom is the cross-engine equivalence gate promised
// by the costscaling doc comment: on ≥100 randomized D-phase-shaped
// instances, Solve (successive shortest paths) and SolveCostScaling
// (Goldberg–Tarjan) must find the same optimal cost and both must pass
// the self-certifying Verify.
func TestEnginesAgreeRandom(t *testing.T) {
	count := 0
	for seed := int64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		negative := seed%3 == 0
		a := buildRandomFeasible(rng, negative)
		rng = rand.New(rand.NewSource(seed)) // identical twin
		b := buildRandomFeasible(rng, negative)

		costSSP, err := a.Solve()
		if err != nil {
			t.Fatalf("seed %d: ssp: %v", seed, err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("seed %d: ssp certificate: %v", seed, err)
		}
		costCS, err := b.SolveCostScaling()
		if err != nil {
			t.Fatalf("seed %d: cost-scaling: %v", seed, err)
		}
		if err := b.Verify(); err != nil {
			t.Fatalf("seed %d: cost-scaling certificate: %v", seed, err)
		}
		if costSSP != costCS {
			t.Fatalf("seed %d: optimal costs disagree: ssp %v vs cost-scaling %v", seed, costSSP, costCS)
		}
		count++
	}
	if count < 100 {
		t.Fatalf("only %d instances exercised, want >= 100", count)
	}
}

// TestEnginesAgreeGrid cross-checks the engines on the exact layered
// instances the benchmarks use.
func TestEnginesAgreeGrid(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		layers := 6 + int(seed)
		width := 4 + int(seed)%5
		a := NewGridInstance(layers, width, seed)
		b := NewGridInstance(layers, width, seed)
		costSSP, err := a.Solve()
		if err != nil {
			t.Fatalf("seed %d: ssp: %v", seed, err)
		}
		costCS, err := b.SolveCostScaling()
		if err != nil {
			t.Fatalf("seed %d: cost-scaling: %v", seed, err)
		}
		if costSSP != costCS {
			t.Fatalf("seed %d: %v != %v", seed, costSSP, costCS)
		}
		if err := a.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := b.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOneSolverBothEngines runs both engines on one instance object:
// SolveCostScaling starts from the unsolved residual configuration
// regardless of a prior Solve, so the costs must match.
func TestOneSolverBothEngines(t *testing.T) {
	s := NewGridInstance(12, 8, 3)
	costSSP, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	costCS, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if costSSP != costCS {
		t.Fatalf("same-object engines disagree: %v vs %v", costSSP, costCS)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFlowEngines compares the two engines on D-phase-shaped
// instances of growing size (the comparison the costscaling doc comment
// promises; recorded in BENCH_*.json via cmd/mkbench -snapshot).
func BenchmarkFlowEngines(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{10, 10}, {40, 25}} {
		name := fmt.Sprintf("%dx%d", size.layers, size.width)
		b.Run("ssp/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewGridInstance(size.layers, size.width, 7)
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("costscaling/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewGridInstance(size.layers, size.width, 7)
				if _, err := s.SolveCostScaling(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
