// Dial/bucket-queue successive shortest paths.
//
// The D-phase instances this package serves have two properties the
// general heap Dijkstra cannot exploit: reduced costs along the paths
// actually travelled are small non-negative integers (warm-started
// potentials absorb the raw cost magnitude, concentrating reduced
// costs near zero), and the searches stop at the first deficit node,
// so settled distances stay tiny.  Dial's algorithm replaces the
// O(log n) heap with a ring of FIFO buckets indexed by distance
// modulo the ring size: push is O(1), pop scans the ring forward.
//
// Individual arcs can still carry huge reduced costs (slack window
// constraints integerized at 1e6 keep megascale costs even after
// warm-starting), so the ring cannot be sized to the maximum arc
// weight the way textbook Dial is.  Instead the ring size is fixed
// and relaxations that land beyond the ring horizon go to an
// unsorted overflow list; when the ring drains, the search rebases:
// settled overflow entries are dropped, the minimum pending distance
// becomes the new scan position, and entries within the new horizon
// move into the ring.  Warm searches never rebase — they terminate
// within a few buckets — while cold searches with many megascale
// distances burn a bounded rebase budget and then fall back to the
// heap for that augmentation (counted in Stats.DialFallbacks).
package mcmf

import "math/bits"

// dialRing is the fixed bucket count.  It bounds the distance window
// the ring represents: relaxations within [d, d+dialRing) of the scan
// position are O(1) bucket pushes, anything farther overflows.
const dialRing = 4096

type dialEngine struct {
	engineCore
	pf dialFinder

	// Saved adaptive back-off for abort rollback (attemptStateKeeper):
	// an aborted attempt may have advanced skip/skipLen, which decides
	// heap-vs-bucket searches — and with them tie-breaking — on the
	// next solve, so bit-identical twins require restoring them.
	savedSkip    int
	savedSkipLen int
}

func (e *dialEngine) Name() string { return "dial" }

// SaveAttemptState / RestoreAttemptState roll the adaptive heap
// back-off across aborted attempts (see abort.go).
func (e *dialEngine) SaveAttemptState() {
	e.savedSkip, e.savedSkipLen = e.pf.skip, e.pf.skipLen
}

func (e *dialEngine) RestoreAttemptState() {
	e.pf.skip, e.pf.skipLen = e.savedSkip, e.savedSkipLen
}

func (e *dialEngine) Solve(s *Solver) (float64, error) {
	e.pf.st = &e.st
	return solveSSPFull(s, &e.pf, &e.st)
}

func (e *dialEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	e.pf.st = &e.st
	return resolveSSP(s, changed, &e.pf, &e.st, e.Solve)
}

// dialMaxRebases bounds how often one search may rebase before
// falling back to the heap.  Warm searches terminate without rebasing
// at all, so a handful of rebases is already a sign the frontier
// lives at heap-shaped distances.
const dialMaxRebases = 8

// dialMaxSkip caps the adaptive back-off (in searches skipped).
const dialMaxSkip = 256

// ovEntry is one overflow entry: a node plus the tentative distance it
// was pushed at, so stale entries (the node has since improved) are
// detectable without a settled marker.
type ovEntry struct {
	d int64
	v int32
}

// dialFinder is the bucket-queue pathFinder with overflow handling and
// heap fallback.
type dialFinder struct {
	st       *Stats
	buckets  [dialRing][]int32     // distance ring, index = dist mod dialRing
	mask     [dialRing / 64]uint64 // occupancy bitmap: which buckets are nonempty
	used     []int32               // ring indices holding entries (for O(used) flush)
	overflow []ovEntry             // entries whose tentative dist lies beyond the horizon
	ovMin    int64                 // min stored distance in overflow (inf when empty)
	pending  int                   // entries currently in the ring

	// Adaptive back-off: after a fallback the next skip searches run
	// directly on the heap (doubling up to dialMaxSkip while fallbacks
	// persist), so heap-shaped solve phases pay almost no dial tax;
	// a successful bucket search resets the back-off.
	skip    int
	skipLen int
}

// dialSeedCap is the initial per-bucket capacity carved out of one
// shared backing array: buckets grow individually past it, but the
// common case — a few entries per touched bucket — never allocates,
// where nil buckets would each pay several growth reallocations
// (measured as the dominant allocator of a sizing run).
const dialSeedCap = 8

func (f *dialFinder) shortestPath(s *Solver, src int32, excess []int64) (int32, int64) {
	if f.skip > 0 {
		f.skip--
		return heapFinder{}.shortestPath(s, src, excess)
	}
	if f.buckets[0] == nil {
		backing := make([]int32, dialRing*dialSeedCap)
		for i := range f.buckets {
			lo := i * dialSeedCap
			f.buckets[i] = backing[lo : lo : lo+dialSeedCap]
		}
	}
	target, dt, ok := f.dialSearch(s, src, excess)
	if !ok {
		// The rebase budget ran out (a cold search spreading over a
		// huge distance range): redo this augmentation on the heap and
		// back off.
		f.st.DialFallbacks++
		f.skipLen = min(2*f.skipLen+1, dialMaxSkip)
		f.skip = f.skipLen
		return heapFinder{}.shortestPath(s, src, excess)
	}
	f.skipLen = 0
	return target, dt
}

// dialSearch is the bucket-queue Dijkstra.  ok is false when the
// search exceeded its merge budget (the caller retries on the heap).
//
// Queue discipline: the ring holds tentative distances in
// [d, d+dialRing); farther relaxations go to the overflow list with
// their push-time distance, and ovMin tracks the smallest of them.
// The scan NEVER advances past ovMin — when the next occupied ring
// bucket lies beyond it (or the ring is empty), the overflow is
// merged first: stale entries (node since improved) are dropped,
// entries inside the new window move into the ring, and the rest stay
// with a recomputed ovMin.  This keeps strict Dijkstra order: no node
// is ever settled at a distance above an unsettled tentative one, so
// overflow entries can never be orphaned behind the scan position.
func (f *dialFinder) dialSearch(s *Solver, src int32, excess []int64) (target int32, dt int64, ok bool) {
	s.ss.begin()
	s.ss.touch(src)
	s.ss.dist[src] = 0
	f.push(0, src)
	f.ovMin = inf
	d := int64(0)
	// Every merge rescans the overflow list, so a search whose
	// frontier lives mostly beyond the horizon degenerates to
	// O(merges·overflow); the budget hands such searches to the heap
	// after a few attempts.
	budget := dialMaxRebases
	for {
		next := int64(inf)
		if f.pending > 0 {
			next = f.nextOccupied(d)
		}
		if f.ovMin < next {
			// The nearest pending distance lives in the overflow:
			// merge before advancing the scan past it.
			budget--
			if budget < 0 {
				f.flush()
				return -1, 0, false
			}
			d = f.mergeOverflow(s, f.ovMin)
			continue
		}
		if f.pending == 0 {
			f.flush()
			return -1, 0, true // frontier exhausted: no deficit reachable
		}
		d = next
		b := &f.buckets[d%dialRing]
		// Drain the bucket FIFO (including entries appended while it
		// drains).  Order matters enormously for the early exit: FIFO
		// explores the zero-reduced-cost region breadth-first and
		// reaches the (typically adjacent) deficit node after a
		// neighbourhood-sized scan, where LIFO would walk the entire
		// region depth-first before surfacing it.
		for k := 0; k < len(*b); k++ {
			u := (*b)[k]
			f.pending--
			if s.ss.dist[u] != d {
				continue // stale entry (node improved to a smaller distance)
			}
			if excess[u] < 0 {
				f.flush()
				return u, d, true
			}
			pu := s.pot[u]
			for _, ai := range s.arcsOf(int(u)) {
				a := &s.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				v := a.to
				rc := a.cost + pu - s.pot[v]
				if rc < 0 {
					rc = 0 // see heapFinder: tie artifacts after early exit
				}
				if s.ss.stamp[v] != s.ss.epoch {
					s.ss.touch(v)
				}
				if nd := d + rc; nd < s.ss.dist[v] {
					s.ss.dist[v] = nd
					s.ss.prevArc[v] = ai
					if nd-d < dialRing {
						f.push(nd, v)
					} else {
						f.overflow = append(f.overflow, ovEntry{d: nd, v: v})
						if nd < f.ovMin {
							f.ovMin = nd
						}
					}
				}
			}
		}
		*b = (*b)[:0]
		i := d % dialRing
		f.mask[i>>6] &^= 1 << (i & 63) // bucket drained
		d++
	}
}

// mergeOverflow rebases the scan at base (= the overflow minimum):
// stale entries are dropped, live entries within [base, base+dialRing)
// move into the ring, the rest stay and ovMin is recomputed.  Every
// ring entry already exceeds base (the caller only merges when the
// next occupied bucket is beyond ovMin) and sits below the previous
// scan position + dialRing ≤ base + dialRing, so the re-based window
// cannot collide modulo the ring size.  Returns the new scan position.
func (f *dialFinder) mergeOverflow(s *Solver, base int64) int64 {
	kept := f.overflow[:0]
	f.ovMin = inf
	for _, e := range f.overflow {
		if s.ss.dist[e.v] != e.d {
			continue // stale: the node improved into the ring meanwhile
		}
		if e.d-base < dialRing {
			f.push(e.d, e.v)
		} else {
			kept = append(kept, e)
			if e.d < f.ovMin {
				f.ovMin = e.d
			}
		}
	}
	f.overflow = kept
	return base
}

// nextOccupied returns the smallest distance ≥ d whose bucket holds an
// entry.  The caller guarantees pending > 0, so a set bit exists
// within the ring window [d, d+dialRing).
func (f *dialFinder) nextOccupied(d int64) int64 {
	start := int(d % dialRing)
	w, b := start>>6, start&63
	if rest := f.mask[w] >> b; rest != 0 {
		return d + int64(bits.TrailingZeros64(rest))
	}
	for off := 1; off <= len(f.mask); off++ {
		word := f.mask[(w+off)%len(f.mask)]
		if word != 0 {
			idx := ((w+off)%len(f.mask))<<6 + bits.TrailingZeros64(word)
			return d + int64((idx-start+dialRing)%dialRing)
		}
	}
	return d // unreachable with pending > 0
}

func (f *dialFinder) push(d int64, v int32) {
	i := d % dialRing
	if len(f.buckets[i]) == 0 {
		f.used = append(f.used, int32(i))
	}
	f.buckets[i] = append(f.buckets[i], v)
	f.mask[i>>6] |= 1 << (i & 63)
	f.pending++
}

// flush empties every touched bucket and the overflow list (early
// exits leave entries behind; the queue must be clean for the next
// search).
func (f *dialFinder) flush() {
	for _, i := range f.used {
		f.buckets[i] = f.buckets[i][:0]
		f.mask[i>>6] &^= 1 << (i & 63)
	}
	f.used = f.used[:0]
	f.overflow = f.overflow[:0]
	f.ovMin = inf
	f.pending = 0
}
