// The "parallel" engine: successive shortest paths with speculative
// concurrent searches committed in the exact serial ("ssp") order —
// bit-identical to the serial backend at every worker budget.
//
// SSP augmentations look inherently sequential — every augmentation
// rewrites residuals and potentials that the next search reads — but
// the D-phase instances this package serves route many supplies whose
// shortest-path searches settle small neighbourhoods (warm-start
// potentials concentrate reduced costs near zero, and every search
// stops at the first deficit node).  That makes optimistic concurrency
// the natural shape:
//
//  1. Speculate: the next K pending sources (in the exact order the
//     serial loop would drain them) are searched concurrently by a
//     worker pool.  During this phase nothing mutates the network —
//     each worker owns a private searchScratch and reads the shared
//     residual arcs, potentials and excess vector.
//  2. Commit: the main goroutine replays the serial drain order.  A
//     speculative result whose read footprint is untouched by the
//     commits before it is applied as-is through the same
//     applyAugmentation path the serial loop uses; an invalidated one
//     is recomputed serially on the spot.  Extra augmentations for a
//     source that is not drained by its first one run serially too.
//
// Validation is sign-precise, not footprint-precise: a search never
// reads residual capacity magnitudes (the bottleneck is recomputed
// from live capacities at commit time), so a commit invalidates a
// speculation only where it changed what a search can actually
// observe — a potential, a residual arc appearing or vanishing, or a
// deficit being fully served.
//
// Because commits happen in the serial order with the serial commit
// code against live state, the engine's flows, potentials, costs,
// augmentation and visited counts are bit-identical to "ssp" at every
// worker budget (asserted by TestParallelEngineMatchesSSPExact and
// the core determinism suite).  Worker count, round size and
// scheduling affect only the SpecCommits/SpecWasted counters, never
// the result.
//
// The serial commit order is also the engine's measured limit: warm
// D-phase searches are short *because* each commit's potential
// updates prepare its successor's search, and that information flow
// caps how many speculations survive (see EXPERIMENTS.md "Intra-run
// parallelism" for measured hit rates; a de-clustered commit order
// was tried and lifts the hit rate to ~96% — while inflating total
// search work ~50×, which is why bit-compatibility with the serial
// order is also the right performance choice).
//
// Below parMinSources pending sources (or a worker budget of 1) the
// engine runs the plain serial loop: speculation costs one goroutine
// barrier per round, which only pays for itself when there is real
// fan-out to hide.
package mcmf

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parMinSources is the speculation floor: augmentation runs with
// fewer pending sources run the plain serial loop.
const parMinSources = 8

// parMaxSlots caps the speculation round size.  Each slot owns a full
// searchScratch (16 bytes per network node), so the cap bounds
// scratch memory at parMaxSlots·16·n bytes while still letting small
// worker budgets speculate a few rounds ahead.
const parMaxSlots = 32

type parEngine struct {
	engineCore

	slots []*searchScratch // speculation scratches, slot i ↔ batch[i]
	res   []specResult     // search results per slot

	// Epoch-stamped commit write-set: dirty[v] == dirtyEp when a
	// commit in the current speculation round changed something a
	// search could observe at v.
	dirty   []uint32
	dirtyEp uint32

	batch []int32 // sources of the in-flight speculation round
}

type specResult struct {
	target int32
	dt     int64
}

func (e *parEngine) Name() string { return "parallel" }

func (e *parEngine) Solve(s *Solver) (float64, error) {
	if err := s.beginSolve(&e.st); err != nil {
		return 0, err
	}
	excess := s.excess[:s.n]
	copy(excess, s.supply)
	// See solveSSPFull: residuals are dirty and unrepairable from the
	// first augmentation until markSolved re-certifies them.
	s.flowDirty = true
	s.repairable = false
	mark := e.st
	if err := e.augment(s, excess); err != nil {
		return 0, err
	}
	s.markSolved()
	e.st.Solves++
	s.noteFullRun(mark, e.st)
	return s.TotalCost(), nil
}

func (e *parEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	excess, fallback, err := s.resolvePrep(changed)
	if err != nil {
		return 0, err
	}
	if fallback {
		e.st.FullFallbacks++
		return e.Solve(s)
	}
	mark := e.st
	if err := e.augment(s, excess); err != nil {
		return 0, err
	}
	s.markSolved()
	e.st.Resolves++
	s.noteResolveRun(mark, e.st)
	return s.TotalCost(), nil
}

// workers resolves the effective worker budget for this solve.
func (e *parEngine) workers(s *Solver) int {
	if s.par > 0 {
		return s.par
	}
	return runtime.GOMAXPROCS(0)
}

// augment routes every positive excess to a deficit node, committing
// augmentations in exactly the serial augmentAll order.
func (e *parEngine) augment(s *Solver, excess []int64) error {
	workers := e.workers(s)
	// Collect sources exactly like the serial loop (ascending v).
	srcs := s.sources[:0]
	for v := 0; v < s.n; v++ {
		if excess[v] > 0 {
			srcs = append(srcs, int32(v))
		}
	}
	s.sources = srcs
	if workers <= 1 || len(srcs) < parMinSources {
		// Serial floor: identical to ssp by construction.
		return s.augmentAll(excess, heapFinder{}, &e.st)
	}

	n := s.n
	slots := 4 * workers
	if slots > parMaxSlots {
		slots = parMaxSlots
	}
	for len(e.slots) < slots {
		e.slots = append(e.slots, &searchScratch{})
	}
	for _, sc := range e.slots[:slots] {
		sc.ensure(n)
	}
	if len(e.res) < slots {
		e.res = make([]specResult, slots)
	}
	if len(e.dirty) < n {
		e.dirty = make([]uint32, n)
		e.dirtyEp = 0
	}

	// Helper pool for the speculation phases, one spawn per augment
	// call: helpers park on kick between rounds and exit when it
	// closes.  Per-call spawning is deliberate — engines have no
	// Close hook, so persistent helpers would leak with their Solver;
	// the cost (workers−1 goroutine starts and one channel per
	// D-phase solve, microseconds against a millisecond-scale solve)
	// is pinned by the CI parallel gate's allocation budgets.  The
	// commit goroutine participates in every round, so helpers beyond
	// slots-1 would never find work.
	helpers := workers - 1
	if helpers > slots-1 {
		helpers = slots - 1
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int32
		kick = make(chan struct{})
	)
	for i := 0; i < helpers; i++ {
		go func() {
			for range kick {
				e.specWork(s, excess, &next)
				wg.Done()
			}
		}()
	}
	defer close(kick)

	stack := srcs
	for {
		// Abort granularity: one speculation round (the serial floor
		// above polls per augmentation inside augmentAll instead).
		// Only this goroutine polls — helpers never touch the funnel.
		if err := s.pollAbort(); err != nil {
			return err
		}
		// Trim drained sources off the top (a source's excess only
		// ever shrinks through its own commits, so a pending source
		// stays positive until its turn — the trim only removes
		// sources this loop drained itself).
		for len(stack) > 0 && excess[stack[len(stack)-1]] <= 0 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil // all supplies routed
		}

		k := slots
		if k > len(stack) {
			k = len(stack)
		}
		batch := stack[len(stack)-k:]

		// Speculation phase: slot i searches batch[i].  The network is
		// frozen — workers write only their own scratch and result slot.
		e.batch = batch
		next.Store(0)
		launch := helpers
		if launch > k-1 {
			launch = k - 1
		}
		wg.Add(launch)
		for i := 0; i < launch; i++ {
			kick <- struct{}{}
		}
		e.specWork(s, excess, &next)
		wg.Wait()

		// Commit phase: replay the serial order (stack top first).
		e.dirtyEp++
		if e.dirtyEp == 0 { // uint32 wraparound: invalidate all stamps
			for i := range e.dirty {
				e.dirty[i] = 0
			}
			e.dirtyEp = 1
		}
		for i := k - 1; i >= 0; i-- {
			src := batch[i]
			specFresh := true
			for excess[src] > 0 {
				sc := &s.ss
				var target int32
				var dt int64
				if specFresh && e.specValid(e.slots[i]) {
					sc = e.slots[i]
					target, dt = e.res[i].target, e.res[i].dt
					e.st.SpecCommits++
				} else {
					if specFresh {
						e.st.SpecWasted++
					}
					target, dt = dijkstraHeap(s, sc, src, excess)
				}
				specFresh = false
				if target == -1 {
					return ErrInfeasible
				}
				e.st.Augmentations++
				e.st.Visited += int64(len(sc.visited))
				bott := s.applyAugmentation(sc, src, target, dt, excess)
				// Stamp only what the commit changed as a search sees
				// it (see the package comment): potentials of settled
				// nodes below dt; path arcs whose residual membership
				// flipped — forward capacity exhausted, or a reverse
				// residual springing into existence the first time
				// flow uses the arc; and the target when its deficit
				// was fully served.  Capacity changes that stay
				// positive and the source's shrinking excess are
				// invisible to searches and stay unstamped.
				for _, v := range sc.visited {
					if sc.dist[v] < dt {
						e.dirty[v] = e.dirtyEp
					}
				}
				if excess[target] == 0 {
					e.dirty[target] = e.dirtyEp
				}
				for v := target; v != src; {
					ai := sc.prevArc[v]
					u := s.arcs[ai^1].to
					if s.arcs[ai].cap == 0 || s.arcs[ai^1].cap == bott {
						e.dirty[v] = e.dirtyEp
						e.dirty[u] = e.dirtyEp
					}
					v = u
				}
			}
		}
		stack = stack[:len(stack)-k]
	}
}

// specWork drains speculation tasks: each task i searches e.batch[i]
// into slot i.  Shared solver state is read-only here.
func (e *parEngine) specWork(s *Solver, excess []int64, next *atomic.Int32) {
	for {
		i := int(next.Add(1)) - 1
		if i >= len(e.batch) {
			return
		}
		t, dt := dijkstraHeap(s, e.slots[i], e.batch[i], excess)
		e.res[i] = specResult{target: t, dt: dt}
	}
}

// specValid reports whether a speculative search is still exact: no
// node it touched was observably written by a commit earlier in this
// round.
func (e *parEngine) specValid(sc *searchScratch) bool {
	for _, v := range sc.visited {
		if e.dirty[v] == e.dirtyEp {
			return false
		}
	}
	return true
}
