// Engine architecture: the Solver struct (mcmf.go) is the shared
// residual-network state core — arc storage in forward/backward pairs,
// supplies, the CSR adjacency index, node potentials and the
// epoch-stamped scratch — while the algorithms that drive it to
// optimality live behind the Engine interface.  Three backends are
// registered:
//
//	"ssp"         successive shortest paths, heap Dijkstra (the default)
//	"dial"        successive shortest paths, Dial bucket-queue Dijkstra
//	              (exploits the small reduced costs of warm-started
//	              D-phase instances; falls back to the heap per
//	              augmentation when distances outgrow the bucket ring)
//	"costscaling" Goldberg–Tarjan cost-scaling push-relabel, serial
//	              LIFO discharge (costscaling.go over scalingcore.go)
//	"cspar"       cost scaling with a bulk-synchronous parallel
//	              discharge: per ε-phase super-steps plan push/relabel
//	              operations against frozen prices across the worker
//	              pool and apply them in fixed vertex-index order —
//	              bit-identical at every Solver.SetParallelism worker
//	              count (cspar.go)
//	"parallel"    successive shortest paths with speculative concurrent
//	              searches committed in serial order — bit-identical to
//	              "ssp" at every Solver.SetParallelism worker count
//	              (parallel.go)
//
// Engines are cheap per-Solver objects: a factory from the registry
// owns only algorithm-local scratch (the dial bucket ring, the heap)
// and counters, so switching engines mid-life keeps all network state
// — flow, potentials, warm-start validity — intact.
//
// Solve computes a minimum-cost flow from the configured instance
// state.  Resolve is the incremental path: given the set of arc IDs
// whose cost or capacity changed since the last successful solve, it
// repairs the existing optimal flow (drain-and-reroute on the residual
// graph, see resolve.go) instead of rerouting every supply from
// scratch.  Engines that cannot re-flow incrementally (cost-scaling)
// fall back to a full Solve and say so in their Stats.
package mcmf

import (
	"fmt"
	"sort"
	"sync"
)

// Stats counts the work an engine performed over its lifetime.  All
// counters are cumulative; Solver.EngineStats exposes them.
type Stats struct {
	// Solves and Resolves count successful full and incremental runs.
	Solves   int
	Resolves int
	// Augmentations counts shortest-path augmentations (SSP engines).
	Augmentations int64
	// BellmanFords counts potential (re)builds — zero on a pure
	// warm-start trajectory.
	BellmanFords int
	// DialFallbacks counts augmentations the dial engine handed to the
	// heap because a reduced cost outgrew the bucket ring.
	DialFallbacks int64
	// FullFallbacks counts Resolve calls that ran a full Solve instead
	// (no prior flow, topology changed, or the engine cannot re-flow).
	FullFallbacks int
	// Visited counts the nodes touched by shortest-path searches
	// (SSP engines) — the work measure behind the EWMA resolve gate.
	Visited int64
	// SpecCommits / SpecWasted count speculative searches the parallel
	// engine committed as-is versus discarded because an earlier commit
	// in the same round invalidated their read set.  Unlike the
	// counters above these depend on the worker budget (more workers =
	// bigger speculation rounds), never on the result.
	SpecCommits int64
	SpecWasted  int64
}

// engineCore is the Stats bookkeeping every built-in engine embeds:
// the counter storage, its accessor, and the per-problem work-counter
// reset hooked into Solver.Reset (so back-to-back problems on a reused
// solver report per-problem numbers for the work counters while the
// lifetime counters — Solves, Resolves, fallbacks — stay cumulative).
type engineCore struct {
	st Stats
}

func (e *engineCore) Stats() Stats { return e.st }

// ResetWorkCounters zeroes the per-problem work counters
// (Visited/SpecCommits/SpecWasted).  Solver.Reset calls this on the
// active engine; lifetime counters are untouched.
func (e *engineCore) ResetWorkCounters() {
	e.st.Visited = 0
	e.st.SpecCommits = 0
	e.st.SpecWasted = 0
}

// workCounterResetter is the optional interface Solver.Reset uses to
// clear per-problem work counters; externally registered engines may
// implement it too.
type workCounterResetter interface{ ResetWorkCounters() }

// Engine is a min-cost-flow algorithm over a Solver's network state.
// Implementations keep only algorithm-local scratch: all instance
// state (arcs, residuals, supplies, potentials) lives on the Solver,
// so engines are interchangeable mid-life.
type Engine interface {
	// Name returns the registry name of the backend.
	Name() string
	// Solve computes a minimum-cost feasible flow from the instance
	// state, routing every supply.  Same contract as Solver.Solve.
	Solve(s *Solver) (float64, error)
	// Resolve incrementally repairs the previous optimal flow after
	// the listed arcs changed cost and/or capacity (and supplies moved
	// arbitrarily).  The changed set must include every arc whose cost
	// or capacity was mutated since the last successful Solve/Resolve;
	// supplies are diffed automatically.  Falls back to Solve when no
	// reusable flow exists.
	Resolve(s *Solver, changed []int32) (float64, error)
	// Stats reports cumulative work counters.
	Stats() Stats
}

// engineFactories is the backend registry, guarded by engineMu: the
// built-in backends register from init, but test binaries register at
// runtime (internal/fault's "fault" wrapper) while server sessions may
// be instantiating engines concurrently, so reads and writes must
// synchronize (TestRegistryConcurrentAccess drives this under -race).
var (
	engineMu        sync.RWMutex
	engineFactories = map[string]func() Engine{}
)

// Register adds an engine factory under name.  Registering a duplicate
// name panics — backends are package-level singleton names.  Safe for
// concurrent use with NewEngine/EngineNames/ValidEngine.
func Register(name string, factory func() Engine) {
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineFactories[name]; dup {
		panic(fmt.Sprintf("mcmf: engine %q registered twice", name))
	}
	engineFactories[name] = factory
}

// unregister removes a backend from the registry.  Test-only: the race
// test registers throwaway names and must not leave them behind for
// the conformance suites (which enumerate EngineNames dynamically).
func unregister(name string) {
	engineMu.Lock()
	defer engineMu.Unlock()
	delete(engineFactories, name)
}

// NewEngine instantiates a registered backend by name.
func NewEngine(name string) (Engine, error) {
	engineMu.RLock()
	f, ok := engineFactories[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mcmf: unknown engine %q (have %v)", name, EngineNames())
	}
	return f(), nil
}

// EngineNames lists the registered backends in sorted order.
func EngineNames() []string {
	engineMu.RLock()
	names := make([]string, 0, len(engineFactories))
	for n := range engineFactories {
		names = append(names, n)
	}
	engineMu.RUnlock()
	sort.Strings(names)
	return names
}

// ValidEngine reports whether name is a registered backend.
func ValidEngine(name string) bool {
	engineMu.RLock()
	defer engineMu.RUnlock()
	_, ok := engineFactories[name]
	return ok
}

func init() {
	Register("ssp", func() Engine { return &sspEngine{} })
	Register("dial", func() Engine { return &dialEngine{} })
	Register("costscaling", func() Engine { return &costScalingEngine{} })
	Register("cspar", func() Engine { return &csparEngine{} })
	Register("parallel", func() Engine { return &parEngine{} })
}

// SetEngine switches the solver to the named backend.  Network state
// (flow, potentials, warm-start validity) is untouched, so engines can
// be swapped between solves; only algorithm scratch is re-created.
// Switching to the name already in use is a no-op.
func (s *Solver) SetEngine(name string) error {
	if s.eng != nil && s.eng.Name() == name {
		return nil
	}
	e, err := NewEngine(name)
	if err != nil {
		return err
	}
	s.eng = e
	return nil
}

// EngineName returns the name of the active backend ("ssp" until
// SetEngine is called).
func (s *Solver) EngineName() string { return s.engine().Name() }

// EngineStats returns the active backend's cumulative work counters.
func (s *Solver) EngineStats() Stats { return s.engine().Stats() }

// engine returns the active backend, lazily defaulting to "ssp".
func (s *Solver) engine() Engine {
	if s.eng == nil {
		s.eng = &sspEngine{}
	}
	return s.eng
}
