// The "cspar" engine: bulk-synchronous parallel cost scaling.
//
// PR 4 measured why speculative SSP parallelism stalls on warm D-phase
// solves: the serial commit order carries potential information, so
// only ~8% of speculative searches survive (EXPERIMENTS.md "Intra-run
// parallelism").  Cost scaling sidesteps the coupling structurally —
// within one ε-phase, push/relabel operations on distinct active
// vertices read a price function that no concurrent operation needs to
// update, so the inner loop is naturally parallel and order-
// insensitive.  This driver exploits that with a bulk-synchronous
// super-step schedule over the shared ε-scaling core (scalingcore.go):
//
//  1. Plan: the active vertices are partitioned by index into
//     contiguous chunks across the internal/par pool.  Each worker
//     runs a full local discharge per vertex against the frozen prices
//     (nothing writes shared prices, residuals or excesses during this
//     phase): pushes along admissible arcs — consuming residual
//     capacity in a private per-worker ledger — interleaved with
//     relabels (price refinement) of the vertex's own working price,
//     until the vertex's frozen excess is spent or its local residual
//     arcs are exhausted.  The resulting operation list is the plan.
//  2. Merge: the main goroutine applies all plans in ascending
//     vertex-index order, revalidating each operation against live
//     state: a push applies only while its arc is still admissible
//     (an earlier relabel of its head in the same merge can retire
//     it) and clamped to live residual capacity and excess; a relabel
//     is raised to the floor bound contributed by residual arcs that
//     earlier pushes in the same merge created at the vertex.  Every
//     applied operation is therefore a legal sequential push/relabel,
//     so ε-optimality and termination follow from the serial theory.
//
// Plans depend only on the frozen pre-step state and the merge order
// is fixed, so results are bit-identical at every worker budget —
// worker count moves plan computation between goroutines, never the
// outcome (pinned by the conformance suite's worker-budget matrix).
//
// Like the other engines, cspar serves ResolveChanged incrementally:
// the exact potentials a full solve recovers double as warm duals, so
// the shared drain-and-reroute repair runs on them directly, falling
// back to a full bulk-synchronous solve when the solver's EWMA
// work-estimate gate prefers one (scalingcore.go documents why a
// refinement-pass repair was measured and rejected).
package mcmf

import (
	"runtime"
	"slices"

	"minflo/internal/par"
)

// csparParFloor is the fan-out floor: super-steps with fewer active
// vertices plan inline — a pool barrier only pays for itself when
// there is real per-step work to split.  The threshold affects only
// where plans are computed, never their content.
const csparParFloor = 64

// csparPlanOp is one planned operation: a push (ai ≥ 0) of amt along
// arc ai, or a relabel (ai == -1) of v to price amt (relabelNone when
// the plan phase saw no residual arc at all).
type csparPlanOp struct {
	amt int64
	v   int32
	ai  int32
}

// csparWorker is one plan worker's private scratch: the operation
// buffer and the epoch-stamped consumed-capacity ledger that lets a
// local discharge saturate an arc and not re-push it after a relabel
// rescans the arc list.
type csparWorker struct {
	plan     []csparPlanOp
	consumed []uint32 // stamp per arc: == epoch when locally saturated
	epoch    uint32
}

type csparEngine struct {
	engineCore
	sc scalingState

	workers []*csparWorker // slot i plans chunk i of the active set

	// floorVal[v] is the relabel floor accumulated during the current
	// merge: the price-refinement bound contributed by residual arcs
	// that earlier pushes in this merge created at v.  Epoch-stamped so
	// per-step reset is O(1).
	floorVal   []int64
	floorStamp []uint32
	floorEp    uint32

	// Active-set double buffer plus the newly activated push targets of
	// one merge (activeStamp marks membership in the current step).
	activeBuf   []int32
	spareBuf    []int32
	added       []int32
	activeStamp []uint32
	activeEp    uint32
}

func (e *csparEngine) Name() string { return "cspar" }

// budget resolves the effective worker budget for this solve.
func (e *csparEngine) budget(s *Solver) int {
	if s.par > 0 {
		return s.par
	}
	return runtime.GOMAXPROCS(0)
}

func (e *csparEngine) Solve(s *Solver) (float64, error) {
	pool, done := e.acquirePool(s)
	defer done()
	return e.solveFull(s, pool)
}

func (e *csparEngine) solveFull(s *Solver, pool *par.Pool) (float64, error) {
	mark := e.st
	cost, err := solveScalingFull(s, &e.sc, &e.st, func(excess []int64) error {
		return e.refineBSP(s, excess, pool)
	})
	if err == nil {
		e.st.Solves++
		s.noteFullRun(mark, e.st)
	}
	return cost, err
}

// Resolve repairs the previous optimal flow incrementally: the exact
// potentials finishScaling recovered double as warm duals, so the
// shared SSP drain-and-reroute serves the repair — serially, whatever
// the worker budget, which keeps the budget-independence contract
// trivially intact (see scalingcore.go on why a refinement-pass
// repair was measured and rejected).  A full bulk-synchronous solve
// backs it up when the work-estimate gate prefers one.
func (e *csparEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	return resolveSSP(s, changed, heapFinder{}, &e.st, e.Solve)
}

// acquirePool returns the worker pool for one solve and its release
// func.  Worker budget 1 runs with a nil pool (par's serial contract)
// and spawns nothing, preserving the serial path's zero-overhead
// property.  Per-solve pooling is deliberate — engines have no Close
// hook, so persistent workers would leak with their Solver; the cost
// (workers−1 goroutine starts per D-phase solve) matches the
// "parallel" engine's documented trade-off.
func (e *csparEngine) acquirePool(s *Solver) (*par.Pool, func()) {
	w := e.budget(s)
	if w <= 1 {
		return nil, func() {}
	}
	p := par.New(w)
	return p, p.Close
}

// refineBSP discharges all active vertices at sc.eps with the
// bulk-synchronous super-step schedule described in the package
// comment.
func (e *csparEngine) refineBSP(s *Solver, excess []int64, pool *par.Pool) error {
	sc := &e.sc
	n := s.n
	sc.saturate(s, excess)
	e.ensure(s, pool.Workers())
	active := e.activeBuf[:0]
	for v := 0; v < n; v++ {
		if excess[v] > 0 {
			active = append(active, int32(v))
		}
	}
	parts := pool.Workers()
	ops := 0
	// The active-set double buffer ping-pongs between activeBuf and
	// spareBuf below, leaving e.activeBuf stale mid-loop; park the
	// current buffer back on exit — every exit — so the two fields
	// never alias on a reused engine after an error return.
	defer func() { e.activeBuf = active[:0] }()
	for len(active) > 0 {
		if err := s.pollAbort(); err != nil {
			return err
		}
		// Stamp current membership (added-target dedup in the merge).
		e.activeEp++
		if e.activeEp == 0 {
			for i := range e.activeStamp {
				e.activeStamp[i] = 0
			}
			e.activeEp = 1
		}
		for _, v := range active {
			e.activeStamp[v] = e.activeEp
		}

		// Plan phase: frozen prices/residuals/excesses, chunked by
		// vertex index.  Chunk boundaries affect only which goroutine
		// computes a plan, never the plan itself.
		nchunks := parts
		if parts == 1 || len(active) < csparParFloor {
			nchunks = 1
			e.planChunk(s, excess, active, 0, 1)
		} else {
			pool.ForEach(func(part int) {
				e.planChunk(s, excess, active, part, parts)
			})
		}
		e.st.Visited += int64(len(active))

		// Merge phase: apply plans in ascending vertex-index order.
		e.added = e.added[:0]
		planned, err := e.merge(s, excess, nchunks)
		if err != nil {
			return err
		}
		ops += planned
		if ops > sc.maxOps {
			return ErrInfeasible
		}

		// Next active set: surviving members of the current one (still
		// ascending) merged with the freshly activated push targets.
		next := e.spareBuf[:0]
		slices.Sort(e.added)
		ai, bi := 0, 0
		for ai < len(active) || bi < len(e.added) {
			var v int32
			switch {
			case ai == len(active):
				v = e.added[bi]
				bi++
			case bi == len(e.added):
				v = active[ai]
				ai++
			case active[ai] < e.added[bi]:
				v = active[ai]
				ai++
			default:
				v = e.added[bi]
				bi++
			}
			if excess[v] > 0 {
				next = append(next, v)
			}
		}
		e.spareBuf = active[:0] // ping-pong: the drained buffer is the next spare
		active = next
	}
	return nil
}

// ensure sizes the per-solve scratch: worker slots, the relabel floor
// and the active-set stamps.
func (e *csparEngine) ensure(s *Solver, parts int) {
	n := s.n
	if cap(e.floorVal) < n {
		e.floorVal = make([]int64, n)
		e.floorStamp = make([]uint32, n)
		e.floorEp = 0
		e.activeStamp = make([]uint32, n)
		e.activeEp = 0
	}
	e.floorVal = e.floorVal[:n]
	e.floorStamp = e.floorStamp[:n]
	e.activeStamp = e.activeStamp[:n]
	for len(e.workers) < parts {
		e.workers = append(e.workers, &csparWorker{})
	}
	for _, w := range e.workers[:parts] {
		if len(w.consumed) < len(s.arcs) {
			w.consumed = make([]uint32, len(s.arcs))
			w.epoch = 0
		}
	}
}

// planChunk plans chunk c of parts over the frozen state: a full local
// discharge per active vertex in the chunk (see the package comment).
func (e *csparEngine) planChunk(s *Solver, excess []int64, active []int32, c, parts int) {
	w := e.workers[c]
	per := (len(active) + parts - 1) / parts
	lo := c * per
	hi := lo + per
	if lo > len(active) {
		lo = len(active)
	}
	if hi > len(active) {
		hi = len(active)
	}
	buf := w.plan[:0]
	for _, v := range active[lo:hi] {
		buf = e.planVertex(s, w, buf, v, excess[v])
	}
	w.plan = buf
}

// planVertex runs one local discharge of v against the frozen state:
// pushes consume capacity in the worker's private ledger, relabels
// move only the private working price.  The discharge ends when the
// frozen excess is spent or no unconsumed residual arc remains (the
// leftover waits for the next super-step); a vertex with no residual
// arc at all plans the relabelNone sentinel, which the merge converts
// to ErrInfeasible unless the floor saved it.
func (e *csparEngine) planVertex(s *Solver, w *csparWorker, buf []csparPlanOp, v int32, remaining int64) []csparPlanOp {
	sc := &e.sc
	w.epoch++
	if w.epoch == 0 {
		for i := range w.consumed {
			w.consumed[i] = 0
		}
		w.epoch = 1
	}
	p := sc.pot[v]
	start, end := s.csrStart[v], s.csrStart[v+1]
	cur := start
	planned := false
	for remaining > 0 {
		if cur >= end {
			// Relabel against the frozen neighbor prices, over the
			// locally still-residual arcs.
			best := int64(relabelNone)
			has := false
			for _, ai := range s.csrArc[start:end] {
				if s.arcs[ai].cap <= 0 || w.consumed[ai] == w.epoch {
					continue
				}
				has = true
				if nv := sc.pot[s.arcs[ai].to] - sc.cost[ai] - sc.eps; nv > best {
					best = nv
				}
			}
			if !has {
				if !planned {
					buf = append(buf, csparPlanOp{amt: relabelNone, v: v, ai: -1})
				}
				return buf // locally exhausted: leftover waits
			}
			buf = append(buf, csparPlanOp{amt: best, v: v, ai: -1})
			planned = true
			p = best
			cur = start
			continue
		}
		ai := s.csrArc[cur]
		a := &s.arcs[ai]
		if a.cap > 0 && w.consumed[ai] != w.epoch && sc.cost[ai]+p-sc.pot[a.to] < 0 {
			amt := remaining
			if a.cap < amt {
				amt = a.cap
			}
			buf = append(buf, csparPlanOp{amt: amt, v: v, ai: ai})
			planned = true
			remaining -= amt
			if amt == a.cap {
				w.consumed[ai] = w.epoch
			}
		} else {
			cur++
		}
	}
	return buf
}

// merge applies the planned operations in ascending vertex-index order
// (chunk order concatenates to the active order), revalidating each
// against live state.  It returns the number of planned operations
// (the guard currency) and collects freshly activated push targets in
// e.added.
func (e *csparEngine) merge(s *Solver, excess []int64, nchunks int) (int, error) {
	sc := &e.sc
	e.floorEp++
	if e.floorEp == 0 { // uint32 wraparound: invalidate all stamps
		for i := range e.floorStamp {
			e.floorStamp[i] = 0
		}
		e.floorEp = 1
	}
	ep := e.floorEp
	planned := 0
	for c := 0; c < nchunks; c++ {
		plan := e.workers[c].plan
		planned += len(plan)
		for _, op := range plan {
			v := op.v
			if op.ai >= 0 {
				// Push: the arc must still be admissible (an earlier
				// relabel of its head in this merge may have re-priced
				// it, or a raised floor may have kept v's own price
				// higher than planned) and is clamped to live capacity
				// and excess.
				a := &s.arcs[op.ai]
				if a.cap <= 0 || excess[v] <= 0 {
					continue
				}
				if sc.cost[op.ai]+sc.pot[v]-sc.pot[a.to] >= 0 {
					// Retired by an earlier relabel of its head.  The plan
					// assumed this arc would leave the residual graph, so
					// v's later planned relabels never priced it; keep
					// them legal by raising v's floor to this arc's bound.
					if cand := sc.pot[a.to] - sc.cost[op.ai] - sc.eps; e.floorStamp[v] != ep || cand > e.floorVal[v] {
						e.floorStamp[v] = ep
						e.floorVal[v] = cand
					}
					continue
				}
				amt := op.amt
				if a.cap < amt {
					amt = a.cap
				}
				if excess[v] < amt {
					amt = excess[v]
				}
				to := a.to
				if excess[to] <= 0 && excess[to]+amt > 0 && e.activeStamp[to] != e.activeEp {
					e.added = append(e.added, to)
					e.activeStamp[to] = e.activeEp
				}
				excess[v] -= amt
				excess[to] += amt
				a.cap -= amt
				s.arcs[op.ai^1].cap += amt
				// The reverse residual arc (to→v, cost −cost[ai]) may be
				// new: record its price-refinement bound so later
				// relabels of the head in this same merge stay legal.
				if cand := sc.pot[v] + sc.cost[op.ai] - sc.eps; e.floorStamp[to] != ep || cand > e.floorVal[to] {
					e.floorStamp[to] = ep
					e.floorVal[to] = cand
				}
				continue
			}
			// Relabel: admissible arcs never appear between the freeze
			// and v's turn (prices only drop, and residual arcs created
			// by earlier pushes price positive), so the plan stays
			// legal; it is only raised to the floor contributed by those
			// new residual arcs.
			if excess[v] <= 0 {
				continue
			}
			val := op.amt
			if e.floorStamp[v] == ep && e.floorVal[v] > val {
				val = e.floorVal[v]
			}
			if val == relabelNone {
				return planned, ErrInfeasible // no residual arc: excess trapped
			}
			if val < priceFloor {
				return planned, ErrPriceRange
			}
			if val < sc.pot[v] {
				sc.pot[v] = val
			}
		}
	}
	return planned, nil
}
