// Package mcmf implements a minimum-cost network-flow solver for the
// transshipment form used by MINFLOTRANSIT's D-phase:
//
//	minimize   Σ_a cost(a)·f(a)
//	subject to Σ_{a out of v} f(a) − Σ_{a into v} f(a) = supply(v)   ∀v
//	           0 ≤ f(a) ≤ cap(a)                                      ∀a
//
// The algorithm is successive shortest paths with node potentials:
// potentials are initialized with Bellman–Ford (arc costs may be
// negative), after which every augmentation uses Dijkstra on reduced
// costs.  At optimality the node potentials are the dual variables of
// the flow LP, which is exactly what the D-phase needs (the FSDU
// displacement r is read off the potentials; see internal/dcs).
//
// The solver is self-certifying: Verify re-checks conservation, bounds
// and reduced-cost optimality after every Solve.
package mcmf

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Errors returned by Solve.
var (
	ErrUnbalanced    = errors.New("mcmf: node supplies do not sum to zero")
	ErrInfeasible    = errors.New("mcmf: no feasible flow (insufficient capacity)")
	ErrNegativeCycle = errors.New("mcmf: negative-cost cycle with positive capacity (unbounded dual)")
)

const inf = math.MaxInt64 / 4

// arc is stored in the forward/backward residual pair convention:
// arcs[i] and arcs[i^1] are mutual inverses.
type arc struct {
	to   int
	cap  int64 // remaining residual capacity
	cost int64
}

// Solver holds a min-cost flow instance. Build with New, AddArc and
// SetSupply, then call Solve once.
type Solver struct {
	n      int
	arcs   []arc
	adj    [][]int32 // node -> indices into arcs
	supply []int64
	pot    []int64 // node potentials (valid after Solve)
	orig   []int64 // original capacity per public arc (index = arcID)
	solved bool
}

// New returns a solver over n nodes with no arcs and zero supplies.
func New(n int) *Solver {
	return &Solver{
		n:      n,
		adj:    make([][]int32, n),
		supply: make([]int64, n),
	}
}

// N returns the number of nodes.
func (s *Solver) N() int { return s.n }

// AddNode appends a node with zero supply and returns its index.
func (s *Solver) AddNode() int {
	s.adj = append(s.adj, nil)
	s.supply = append(s.supply, 0)
	s.n++
	return s.n - 1
}

// SetSupply sets the net supply of node v. Positive values are sources
// (flow leaves v), negative values are demands.
func (s *Solver) SetSupply(v int, b int64) { s.supply[v] = b }

// AddSupply adds to the net supply of node v.
func (s *Solver) AddSupply(v int, b int64) { s.supply[v] += b }

// Supply returns the configured supply of node v.
func (s *Solver) Supply(v int) int64 { return s.supply[v] }

// AddArc adds a directed arc u->v with the given capacity and per-unit
// cost and returns its arc ID.  Capacities must be non-negative; costs
// may be negative.
func (s *Solver) AddArc(u, v int, capacity, cost int64) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic(fmt.Sprintf("mcmf: AddArc(%d,%d) out of range [0,%d)", u, v, s.n))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(s.orig)
	s.orig = append(s.orig, capacity)
	s.adj[u] = append(s.adj[u], int32(len(s.arcs)))
	s.arcs = append(s.arcs, arc{to: v, cap: capacity, cost: cost})
	s.adj[v] = append(s.adj[v], int32(len(s.arcs)))
	s.arcs = append(s.arcs, arc{to: u, cap: 0, cost: -cost})
	return id
}

// Flow returns the flow routed on the arc with the given ID.
// Valid after Solve.
func (s *Solver) Flow(arcID int) int64 {
	return s.arcs[2*arcID+1].cap // reverse residual capacity == flow
}

// Potential returns the optimal dual potential of node v after Solve.
// Potentials are normalized so that reduced costs
// cost(a) + pot(from) − pot(to) are ≥ 0 on all arcs with residual
// capacity.  The LP dual variable of the difference-constraint system is
// −Potential(v) (see internal/dcs).
func (s *Solver) Potential(v int) int64 { return s.pot[v] }

// TotalCost returns Σ cost·flow as a float64 (the product can exceed
// int64 on heavily scaled instances).
func (s *Solver) TotalCost() float64 {
	var t float64
	for i := 0; i < len(s.arcs); i += 2 {
		f := s.arcs[i+1].cap
		t += float64(s.arcs[i].cost) * float64(f)
	}
	return t
}

// bellmanFord initializes potentials with shortest distances from a
// virtual super-source attached to every node at distance 0.  Detects
// negative cycles reachable through positive-residual arcs.
func (s *Solver) bellmanFord() error {
	dist := s.pot
	for i := range dist {
		dist[i] = 0
	}
	// At most n rounds; if the n-th round still relaxes, there is a
	// negative cycle.
	for round := 0; round < s.n; round++ {
		changed := false
		for u := 0; u < s.n; u++ {
			du := dist[u]
			for _, ai := range s.adj[u] {
				a := &s.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := du + a.cost; nd < dist[a.to] {
					dist[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return ErrNegativeCycle
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	dist int64
	node int
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve computes a minimum-cost feasible flow. It returns the total cost
// (as float64; see TotalCost) or an error if the instance is unbalanced,
// infeasible, or contains a negative-cost cycle of positive capacity.
func (s *Solver) Solve() (float64, error) {
	var sum int64
	for _, b := range s.supply {
		sum += b
	}
	if sum != 0 {
		return 0, ErrUnbalanced
	}
	s.pot = make([]int64, s.n)
	if err := s.bellmanFord(); err != nil {
		return 0, err
	}

	excess := append([]int64(nil), s.supply...)
	var sources, sinksLeft []int
	for v, b := range excess {
		if b > 0 {
			sources = append(sources, v)
		} else if b < 0 {
			sinksLeft = append(sinksLeft, v)
		}
	}
	_ = sinksLeft

	dist := make([]int64, s.n)
	prevArc := make([]int32, s.n)
	inHeap := make([]bool, s.n)

	for {
		// Pick any node with positive excess.
		var src = -1
		for len(sources) > 0 {
			v := sources[len(sources)-1]
			if excess[v] > 0 {
				src = v
				break
			}
			sources = sources[:len(sources)-1]
		}
		if src == -1 {
			break // all supplies routed
		}

		// Dijkstra on reduced costs from src to the nearest node with
		// negative excess.
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
			inHeap[i] = false
		}
		dist[src] = 0
		h := pq{{0, src}}
		var target = -1
		for len(h) > 0 {
			it := heap.Pop(&h).(pqItem)
			u := it.node
			if it.dist > dist[u] {
				continue
			}
			if excess[u] < 0 && target == -1 {
				target = u
				// Keep settling nodes at equal distance is unnecessary;
				// stop at the first deficit node for speed.
				break
			}
			du := dist[u]
			for _, ai := range s.adj[u] {
				a := &s.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				rc := a.cost + s.pot[u] - s.pot[a.to]
				if rc < 0 {
					// Should not happen with valid potentials; clamp
					// defensively (can arise from ties after early exit).
					rc = 0
				}
				if nd := du + rc; nd < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = ai
					heap.Push(&h, pqItem{nd, a.to})
				}
			}
		}
		if target == -1 {
			return 0, ErrInfeasible
		}
		// Update potentials: only nodes that were settled (dist < inf)
		// get dist added; unsettled nodes get the target distance so
		// future reduced costs stay non-negative.
		dt := dist[target]
		for v := 0; v < s.n; v++ {
			if dist[v] < dt {
				s.pot[v] += dist[v]
			} else {
				s.pot[v] += dt
			}
		}
		// Bottleneck along the path.
		bott := excess[src]
		if -excess[target] < bott {
			bott = -excess[target]
		}
		for v := target; v != src; {
			ai := prevArc[v]
			if s.arcs[ai].cap < bott {
				bott = s.arcs[ai].cap
			}
			v = s.arcs[ai^1].to
		}
		// Augment.
		for v := target; v != src; {
			ai := prevArc[v]
			s.arcs[ai].cap -= bott
			s.arcs[ai^1].cap += bott
			v = s.arcs[ai^1].to
		}
		excess[src] -= bott
		excess[target] += bott
	}
	s.solved = true
	return s.TotalCost(), nil
}

// Verify re-derives the optimality conditions from scratch:
//  1. capacity bounds: 0 ≤ f ≤ cap on every arc,
//  2. conservation: net outflow equals supply at every node,
//  3. reduced-cost optimality: cost + pot(u) − pot(v) ≥ 0 for every
//     residual arc.
//
// A nil return certifies the flow is optimal (LP duality).
func (s *Solver) Verify() error {
	if !s.solved {
		return errors.New("mcmf: Verify before Solve")
	}
	net := make([]int64, s.n)
	for id := range s.orig {
		f := s.Flow(id)
		if f < 0 || f > s.orig[id] {
			return fmt.Errorf("mcmf: arc %d flow %d outside [0,%d]", id, f, s.orig[id])
		}
		fwd := s.arcs[2*id]
		u := s.arcs[2*id+1].to
		net[u] += f
		net[fwd.to] -= f
	}
	for v := 0; v < s.n; v++ {
		if net[v] != s.supply[v] {
			return fmt.Errorf("mcmf: node %d net outflow %d != supply %d", v, net[v], s.supply[v])
		}
	}
	for u := 0; u < s.n; u++ {
		for _, ai := range s.adj[u] {
			a := s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			if rc := a.cost + s.pot[u] - s.pot[a.to]; rc < 0 {
				return fmt.Errorf("mcmf: residual arc %d->%d has negative reduced cost %d", u, a.to, rc)
			}
		}
	}
	return nil
}
