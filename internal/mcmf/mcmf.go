// Package mcmf implements a minimum-cost network-flow solver for the
// transshipment form used by MINFLOTRANSIT's D-phase:
//
//	minimize   Σ_a cost(a)·f(a)
//	subject to Σ_{a out of v} f(a) − Σ_{a into v} f(a) = supply(v)   ∀v
//	           0 ≤ f(a) ≤ cap(a)                                      ∀a
//
// The algorithm is successive shortest paths with node potentials:
// potentials are initialized with Bellman–Ford (arc costs may be
// negative), after which every augmentation uses Dijkstra on reduced
// costs.  At optimality the node potentials are the dual variables of
// the flow LP, which is exactly what the D-phase needs (the FSDU
// displacement r is read off the potentials; see internal/dcs).
//
// The solver is built for repeated solves on a fixed topology — the
// D/W iteration of internal/core solves the same constraint network
// dozens of times with updated costs and supplies:
//
//   - adjacency is a CSR-style arc index (flat csrStart/csrArc arrays)
//     built once per topology, not a slice-of-slices;
//   - the Dijkstra priority queue is an inline index-based 4-ary heap
//     on int64 keys (no container/heap interface boxing);
//   - per-augmentation dist/prevArc scratch is epoch-stamped instead of
//     O(n)-reset, and the potential update touches only settled nodes;
//   - Reset, SetCost, SetCapacity and SetSupply mutate an instance in
//     place, and a warm re-solve skips Bellman–Ford entirely when the
//     previous potentials still certify non-negative reduced costs
//     (falling back to a potential-seeded Bellman–Ford otherwise).
//
// After the first Solve on a topology, re-solves allocate nothing.
//
// The Solver struct itself is only the residual-network state core.
// The algorithms that drive it live behind the Engine interface
// (engine.go) with five registered backends — "ssp" (successive
// shortest paths, heap Dijkstra; the default), "dial" (SSP with a
// Dial bucket-queue Dijkstra), "parallel" (speculative concurrent
// SSP, bit-identical to "ssp"), "costscaling" (Goldberg–Tarjan,
// serial discharge) and "cspar" (cost scaling with a bulk-synchronous
// parallel discharge, bit-identical at every worker budget) —
// selectable per instance with SetEngine, or picked by timing one
// solve per candidate with CalibrateEngines.  Beyond full solves,
// every engine offers ResolveChanged: an incremental re-flow that
// repairs the previous optimal flow after a set of arcs changed cost
// or capacity, instead of rerouting every supply (resolve.go for the
// SSP family, resolveScaling in scalingcore.go for the scaling
// family).
//
// The solver is self-certifying: Verify re-checks conservation, bounds
// and reduced-cost optimality after every Solve.
package mcmf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Errors returned by Solve.
var (
	ErrUnbalanced    = errors.New("mcmf: node supplies do not sum to zero")
	ErrInfeasible    = errors.New("mcmf: no feasible flow (insufficient capacity)")
	ErrNegativeCycle = errors.New("mcmf: negative-cost cycle with positive capacity (unbounded dual)")
)

const inf = math.MaxInt64 / 4

// arc is stored in the forward/backward residual pair convention:
// arcs[i] and arcs[i^1] are mutual inverses.
type arc struct {
	cap  int64 // remaining residual capacity
	cost int64
	to   int32
}

// Solver holds a min-cost flow instance.  Build with New, AddArc and
// SetSupply, then call Solve.  For repeated solves on the same
// topology, mutate with Reset/SetCost/SetCapacity/SetSupply and call
// Solve again: arc arrays, the adjacency index and all scratch are
// reused, and prior potentials warm-start the next solve.
type Solver struct {
	n      int
	arcs   []arc
	supply []int64
	pot    []int64 // node potentials (valid after Solve)
	orig   []int64 // original capacity per public arc (index = arcID)
	routed []int64 // supplies routed by the last successful solve
	solved bool
	// repairable reports that the residual arrays hold exactly the flow
	// of the last successful solve (routing the supplies snapshotted in
	// routed) — the precondition of the incremental ResolveChanged
	// repair.  Unlike solved it survives cost/capacity/supply
	// mutations; it is cleared by Reset, by legacy SetCapacity (which
	// discards an arc's flow) and while a solve is mutating residuals.
	repairable bool
	eng        Engine // active backend; nil means the "ssp" default

	// CSR-style adjacency: arc indices of node u are
	// csrArc[csrStart[u]:csrStart[u+1]].  Rebuilt lazily when arcs or
	// nodes were added since the last Solve.
	csrStart  []int32
	csrArc    []int32
	topoDirty bool
	flowDirty bool // residuals carry a previous solve's flow

	// ss is the solver's own epoch-stamped Dijkstra scratch (the
	// serial search path; see search.go).  The parallel engine adds
	// private scratches of the same shape for speculative searches.
	ss      searchScratch
	excess  []int64
	sources []int32
	net     []int64 // Verify scratch (net outflow per node)

	// par is the worker budget for parallelism-aware engines
	// (SetParallelism); 0 means GOMAXPROCS at solve time.
	par int

	// Measured augmentation-cost averages feeding the ResolveChanged
	// work-estimate gate (resolve.go): exponential moving averages of
	// visited nodes per augmentation, kept separately for full solves
	// and incremental repairs.  Zero until the first run of each kind
	// seeds them (the gate falls back to a static estimate until then).
	ewmaFullVisits    float64
	ewmaResolveVisits float64

	// probeDeadline caps one calibration probe solve (calibrate.go):
	// engine inner loops poll pollAbort and abandon the solve with
	// errProbeBudget once a candidate has proven slower than the
	// incumbent.  Zero outside CalibrateEngines.
	probeDeadline time.Time
	probeTick     uint32

	// Abort sources and engine-degradation state (abort.go).  armed
	// caches whether any abort source is installed so the per-operation
	// pollAbort stays a single branch on the warm path.
	ctx        context.Context
	deadline   time.Time
	workBudget int64
	workDone   int64
	pollHook   func() error
	armed      bool
	fallbackOn bool
	att        attemptState

	engineFailures int
	lastFailure    error
}

// New returns a solver over n nodes with no arcs and zero supplies.
func New(n int) *Solver {
	return &Solver{
		n:         n,
		supply:    make([]int64, n),
		topoDirty: true,
	}
}

// N returns the number of nodes.
func (s *Solver) N() int { return s.n }

// NumArcs returns the number of public arcs added with AddArc.
func (s *Solver) NumArcs() int { return len(s.orig) }

// AddNode appends a node with zero supply and returns its index.
func (s *Solver) AddNode() int {
	s.supply = append(s.supply, 0)
	s.n++
	s.topoDirty = true
	s.solved = false
	return s.n - 1
}

// SetSupply sets the net supply of node v. Positive values are sources
// (flow leaves v), negative values are demands.
func (s *Solver) SetSupply(v int, b int64) {
	s.supply[v] = b
	s.solved = false
}

// AddSupply adds to the net supply of node v.
func (s *Solver) AddSupply(v int, b int64) {
	s.supply[v] += b
	s.solved = false
}

// Supply returns the configured supply of node v.
func (s *Solver) Supply(v int) int64 { return s.supply[v] }

// AddArc adds a directed arc u->v with the given capacity and per-unit
// cost and returns its arc ID.  Capacities must be non-negative; costs
// may be negative.
func (s *Solver) AddArc(u, v int, capacity, cost int64) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic(fmt.Sprintf("mcmf: AddArc(%d,%d) out of range [0,%d)", u, v, s.n))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(s.orig)
	s.orig = append(s.orig, capacity)
	s.arcs = append(s.arcs,
		arc{to: int32(v), cap: capacity, cost: cost},
		arc{to: int32(u), cap: 0, cost: -cost})
	s.topoDirty = true
	s.solved = false
	return id
}

// SetCost changes the per-unit cost of an existing arc in place.  The
// topology (and hence the adjacency index) is untouched, so a
// subsequent Solve reuses everything and warm-starts from the current
// potentials.
func (s *Solver) SetCost(arcID int, cost int64) {
	s.arcs[2*arcID].cost = cost
	s.arcs[2*arcID+1].cost = -cost
	s.solved = false
}

// Cost returns the per-unit cost of the arc with the given ID.
func (s *Solver) Cost(arcID int) int64 { return s.arcs[2*arcID].cost }

// SetCapacity changes the capacity of an existing arc in place and
// clears any flow routed on it (the residual state is restored to the
// unsolved configuration for that arc).
func (s *Solver) SetCapacity(arcID int, capacity int64) {
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	s.orig[arcID] = capacity
	s.arcs[2*arcID].cap = capacity
	s.arcs[2*arcID+1].cap = 0
	s.solved = false
	s.repairable = false // the arc's routed flow was just discarded
}

// UpdateCapacity changes the configured capacity of an existing arc
// without touching its residual state — the mutation path for the
// incremental ResolveChanged re-flow, which must receive the arc in
// its changed set and reconciles the residuals itself (drain and
// restore).  A full Solve reconciles too (it resets every residual),
// so staged capacities are never lost; the one invalid sequence is
// mutating capacities with UpdateCapacity and then reading Flow
// without an intervening solve.
func (s *Solver) UpdateCapacity(arcID int, capacity int64) {
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	s.orig[arcID] = capacity
	// Residuals no longer reflect the configuration: a full Solve must
	// reset them (ResolveChanged reconciles the changed arcs itself).
	s.flowDirty = true
	s.solved = false
}

// Capacity returns the configured capacity of the arc with the given ID.
func (s *Solver) Capacity(arcID int) int64 { return s.orig[arcID] }

// Reset restores every arc to its unsolved residual state (full forward
// capacity, no flow) so the instance can be solved again.  The
// topology, adjacency index, scratch arrays and node potentials are all
// kept: combined with SetCost/SetCapacity/SetSupply this is the
// warm-start path for repeated solves on one network.
//
// Calling Reset is optional: Solve clears a previous solve's flow by
// itself.  It exists for callers that want the restored residual state
// earlier (e.g. to inspect capacities between solves).
//
// Reset also zeroes the engine's per-problem work counters
// (Stats.Visited/SpecCommits/SpecWasted), so back-to-back problems on
// a reused solver report per-problem work instead of cumulative
// numbers; the lifetime counters (Solves, Resolves, fallbacks) are
// untouched.
func (s *Solver) Reset() {
	s.resetResiduals()
	s.flowDirty = false
	s.solved = false
	s.repairable = false
	if r, ok := s.eng.(workCounterResetter); ok {
		r.ResetWorkCounters()
	}
}

// resetResiduals restores residual capacities to the original
// configuration (also used by SolveCostScaling, which starts from the
// unsolved state regardless of prior solves).
func (s *Solver) resetResiduals() {
	for id, c := range s.orig {
		s.arcs[2*id].cap = c
		s.arcs[2*id+1].cap = 0
	}
}

// Flow returns the flow routed on the arc with the given ID.
// Valid after Solve.
func (s *Solver) Flow(arcID int) int64 {
	return s.arcs[2*arcID+1].cap // reverse residual capacity == flow
}

// Potential returns the optimal dual potential of node v after Solve.
// Potentials are normalized so that reduced costs
// cost(a) + pot(from) − pot(to) are ≥ 0 on all arcs with residual
// capacity.  The LP dual variable of the difference-constraint system is
// −Potential(v) (see internal/dcs).
func (s *Solver) Potential(v int) int64 { return s.pot[v] }

// TotalCost returns Σ cost·flow as a float64 (the product can exceed
// int64 on heavily scaled instances).
func (s *Solver) TotalCost() float64 {
	var t float64
	for i := 0; i < len(s.arcs); i += 2 {
		f := s.arcs[i+1].cap
		t += float64(s.arcs[i].cost) * float64(f)
	}
	return t
}

// prepare (re)builds the CSR adjacency index after topology changes and
// sizes the scratch arrays.  Prior potentials are preserved so warm
// starts survive arc additions; new nodes start at potential zero.
func (s *Solver) prepare() {
	if !s.topoDirty && len(s.csrStart) == s.n+1 {
		return
	}
	n := s.n
	if cap(s.csrStart) >= n+1 {
		s.csrStart = s.csrStart[:n+1]
		for i := range s.csrStart {
			s.csrStart[i] = 0
		}
	} else {
		s.csrStart = make([]int32, n+1)
	}
	// Origin of arcs[i] is the destination of its pair arcs[i^1].
	for i := range s.arcs {
		s.csrStart[s.arcs[i^1].to+1]++
	}
	for u := 0; u < n; u++ {
		s.csrStart[u+1] += s.csrStart[u]
	}
	if cap(s.csrArc) >= len(s.arcs) {
		s.csrArc = s.csrArc[:len(s.arcs)]
	} else {
		s.csrArc = make([]int32, len(s.arcs))
	}
	cursor := make([]int32, n)
	copy(cursor, s.csrStart[:n])
	for i := range s.arcs {
		u := s.arcs[i^1].to
		s.csrArc[cursor[u]] = int32(i)
		cursor[u]++
	}

	if len(s.pot) < n {
		pot := make([]int64, n)
		copy(pot, s.pot)
		s.pot = pot
	}
	s.ss.ensure(n)
	if len(s.excess) < n {
		s.excess = make([]int64, n)
	}
	s.topoDirty = false
}

// arcsOf returns the CSR slice of arc indices leaving u.
func (s *Solver) arcsOf(u int) []int32 {
	return s.csrArc[s.csrStart[u]:s.csrStart[u+1]]
}

// potentialsValid reports whether the current potentials certify
// non-negative reduced costs on every residual arc — the warm-start
// test that lets a re-solve on updated costs skip Bellman–Ford.
func (s *Solver) potentialsValid() bool {
	for u := 0; u < s.n; u++ {
		pu := s.pot[u]
		for _, ai := range s.arcsOf(u) {
			a := &s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			if a.cost+pu-s.pot[a.to] < 0 {
				return false
			}
		}
	}
	return true
}

// bellmanFord establishes valid potentials: non-negative reduced costs
// on every residual arc.  It relaxes to a fixpoint starting from the
// current potential values — zeros on a fresh instance (the classic
// virtual-super-source initialization), the previous solve's duals on a
// warm re-solve, where near-valid potentials converge in a round or
// two.  Any relaxation fixpoint is a valid potential function; a round
// that still relaxes after n iterations proves a negative cycle
// reachable through positive-residual arcs.
func (s *Solver) bellmanFord() error {
	dist := s.pot
	for round := 0; round < s.n; round++ {
		if err := s.pollAbort(); err != nil {
			return err
		}
		changed := false
		for u := 0; u < s.n; u++ {
			du := dist[u]
			for _, ai := range s.arcsOf(u) {
				a := &s.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := du + a.cost; nd < dist[a.to] {
					dist[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return ErrNegativeCycle
}

// SetParallelism sets the worker budget for parallelism-aware engines
// (the "parallel" backend): k workers, or GOMAXPROCS at solve time
// when k is 0.  Serial engines ignore it.  The setting never changes
// results — the parallel engine is bit-identical to "ssp" at every
// worker count — only how much concurrent speculation backs them.
func (s *Solver) SetParallelism(k int) {
	if k < 0 {
		k = 0
	}
	s.par = k
}

// Parallelism returns the configured worker budget (0 = GOMAXPROCS).
func (s *Solver) Parallelism() int { return s.par }

// Solve computes a minimum-cost feasible flow with the active engine
// (SetEngine; "ssp" by default). It returns the total cost (as
// float64; see TotalCost) or an error if the instance is unbalanced,
// infeasible, or contains a negative-cost cycle of positive capacity.
//
// Solve always prices the instance as configured: a previous solve's
// flow is cleared automatically (see Reset), so mutate-and-solve-again
// needs no explicit reset.  After the first solve on a topology the
// inner loop is allocation-free.
//
// With an abort source armed (SetContext, SetDeadline, SetWorkBudget,
// SetPollHook) the solve can additionally return ErrCanceled or
// ErrBudgetExhausted; the pre-solve state is restored, so a subsequent
// solve is bit-identical to one on a never-aborted twin.  Engine
// panics surface as ErrEngineFailed (or degrade to "ssp" with
// SetEngineFallback).  See abort.go.
func (s *Solver) Solve() (float64, error) {
	return s.runEngine(nil, false)
}

// ResolveChanged incrementally repairs the previous optimal flow with
// the active engine after the listed arcs changed cost and/or
// capacity: the changed arcs' flow is drained back to their endpoints
// and only the resulting imbalance (plus any supply deltas, which are
// detected automatically) is rerouted on the residual graph, instead
// of rerouting every supply from scratch.  changed must include every
// arc mutated with SetCost/UpdateCapacity since the last successful
// solve; listing unchanged arcs is allowed (they are drained and
// rerouted too, just wastefully).  Without a reusable previous flow —
// first solve, topology change, or an engine that cannot re-flow —
// it falls back to a full Solve.
//
// ResolveChanged honors the same abort sources and degradation
// contract as Solve (see abort.go): an aborted repair restores the
// pre-call state, including repairability of the previous flow.
func (s *Solver) ResolveChanged(changed []int32) (float64, error) {
	return s.runEngine(changed, true)
}

// beginSolve is the shared full-solve preamble: balance check, index
// and scratch preparation, residual reset after a prior solve, and
// potential validation (warm-start scan with Bellman–Ford fallback).
func (s *Solver) beginSolve(st *Stats) error {
	var sum int64
	for _, b := range s.supply {
		sum += b
	}
	if sum != 0 {
		return ErrUnbalanced
	}
	s.prepare()
	if s.flowDirty {
		s.resetResiduals()
		s.flowDirty = false
	}
	if !s.potentialsValid() {
		st.BellmanFords++
		if err := s.bellmanFord(); err != nil {
			return err
		}
	}
	return nil
}

// markSolved records a successful solve: the optimality flag and the
// routed-supply snapshot ResolveChanged diffs against.
func (s *Solver) markSolved() {
	s.solved = true
	s.repairable = true
	if cap(s.routed) < s.n {
		s.routed = make([]int64, s.n)
	}
	s.routed = s.routed[:s.n]
	copy(s.routed, s.supply)
}

// Verify re-derives the optimality conditions from scratch:
//  1. capacity bounds: 0 ≤ f ≤ cap on every arc,
//  2. conservation: net outflow equals supply at every node,
//  3. reduced-cost optimality: cost + pot(u) − pot(v) ≥ 0 for every
//     residual arc.
//
// A nil return certifies the flow is optimal (LP duality).
func (s *Solver) Verify() error {
	if !s.solved {
		return errors.New("mcmf: Verify before Solve")
	}
	if cap(s.net) < s.n {
		s.net = make([]int64, s.n)
	}
	net := s.net[:s.n]
	for i := range net {
		net[i] = 0
	}
	for id := range s.orig {
		f := s.Flow(id)
		if f < 0 || f > s.orig[id] {
			return fmt.Errorf("mcmf: arc %d flow %d outside [0,%d]", id, f, s.orig[id])
		}
		fwd := s.arcs[2*id]
		u := s.arcs[2*id+1].to
		net[u] += f
		net[fwd.to] -= f
	}
	for v := 0; v < s.n; v++ {
		if net[v] != s.supply[v] {
			return fmt.Errorf("mcmf: node %d net outflow %d != supply %d", v, net[v], s.supply[v])
		}
	}
	for u := 0; u < s.n; u++ {
		for _, ai := range s.arcsOf(u) {
			a := s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			if rc := a.cost + s.pot[u] - s.pot[a.to]; rc < 0 {
				return fmt.Errorf("mcmf: residual arc %d->%d has negative reduced cost %d", u, a.to, rc)
			}
		}
	}
	return nil
}

// heap4 is an inline 4-ary min-heap on int64 keys with int32 payloads
// — parallel arrays, no interface boxing, no container/heap.  A 4-ary
// layout halves the tree depth of a binary heap, trading slightly more
// sibling comparisons (all in one cache line) for fewer levels touched
// per sift, which wins on the pop-heavy Dijkstra workload.  Stale
// entries are handled by the caller via lazy deletion.
type heap4 struct {
	key  []int64
	node []int32
}

func (h *heap4) reset() {
	h.key = h.key[:0]
	h.node = h.node[:0]
}

func (h *heap4) empty() bool { return len(h.key) == 0 }

func (h *heap4) push(k int64, v int32) {
	h.key = append(h.key, k)
	h.node = append(h.node, v)
	i := len(h.key) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h.key[p] <= k {
			break
		}
		h.key[i], h.node[i] = h.key[p], h.node[p]
		i = p
	}
	h.key[i], h.node[i] = k, v
}

func (h *heap4) pop() (int64, int32) {
	k0, v0 := h.key[0], h.node[0]
	last := len(h.key) - 1
	k, v := h.key[last], h.node[last]
	h.key = h.key[:last]
	h.node = h.node[:last]
	if last > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			m := c
			end := c + 4
			if end > last {
				end = last
			}
			for j := c + 1; j < end; j++ {
				if h.key[j] < h.key[m] {
					m = j
				}
			}
			if h.key[m] >= k {
				break
			}
			h.key[i], h.node[i] = h.key[m], h.node[m]
			i = m
		}
		h.key[i], h.node[i] = k, v
	}
	return k0, v0
}
