// Startup engine calibration: instead of predicting which backend
// wins on a given problem from a hardwired size floor, time one
// representative solve per candidate on the instance itself and keep
// the fastest.  The D/W iteration re-solves the same network dozens
// of times, so a few extra cold solves up front amortize immediately;
// internal/dcs runs the probe once per freshly built network when the
// caller asks for calibrated engine selection (core's "auto" policy).
package mcmf

import (
	"errors"
	"time"
)

// errProbeBudget aborts a calibration probe solve whose wall-clock
// budget expired: the candidate has already proven slower than the
// incumbent, so finishing its solve would only make the probe cost
// unbounded (a cold cost-scaling solve can be minutes where dial
// takes milliseconds).  Checked inside the pollAbort funnel
// (abort.go); never escapes CalibrateEngines.
var errProbeBudget = errors.New("mcmf: calibration probe budget exhausted")

// setProbeDeadline installs (or, with the zero time, clears) the
// calibration probe budget and recaches the poll arming.
func (s *Solver) setProbeDeadline(t time.Time) {
	s.probeDeadline = t
	s.reArm()
}

// CalibrateEngines probes the candidate backends on the configured
// instance — each gets a cold solve (reset residuals, zeroed
// potentials) and is timed — then installs the fastest backend,
// leaving the solver in that winner's solved state, and returns its
// name.  Ties break toward the earlier candidate, so the candidate
// order encodes the caller's prior.  The first candidate runs to
// completion; every later one gets a wall-clock budget of about twice
// the best time so far and is abandoned mid-solve when it cannot win
// — the probe's total cost is therefore a small multiple of the
// winning engine's solve time, not the sum of all candidates'.
//
// A candidate whose solve fails or exceeds its budget is skipped
// (e.g. a scaling engine refusing with ErrPriceRange on an oversized
// instance); if every candidate fails, the first error is returned.
// Unknown candidate names are configuration errors and fail
// immediately.
//
// The winner is chosen on wall time, so repeated runs on a noisy host
// may pick different — equally optimal — backends; callers that need
// reproducible trajectories should pin an engine instead.
func (s *Solver) CalibrateEngines(candidates []string) (string, error) {
	if len(candidates) == 0 {
		return "", errors.New("mcmf: CalibrateEngines needs at least one candidate")
	}
	defer s.setProbeDeadline(time.Time{})
	// Probes must observe raw candidate errors: with degradation
	// active, a failing candidate would silently run (and be timed) as
	// ssp, distorting both the measurement and the skip-on-failure
	// policy.  Restore the caller's setting afterwards.
	defer func(on bool) { s.fallbackOn = on }(s.fallbackOn)
	s.fallbackOn = false
	// Probe solves must not leak their work measurements into the
	// resolve gate: Visited units are engine-family currency (Dijkstra
	// node visits vs cost-scaling discharges), so letting every
	// candidate update ewmaFullVisits would price the winner's later
	// gate decisions in a loser's units.  Snapshot, probe, restore,
	// and let only the winner's final solve seed the averages.
	ewmaFull, ewmaResolve := s.ewmaFullVisits, s.ewmaResolveVisits
	best := -1
	var bestD time.Duration
	var firstErr error
	for i, name := range candidates {
		if err := s.SetEngine(name); err != nil {
			return "", err
		}
		s.Reset()
		for v := range s.pot {
			s.pot[v] = 0
		}
		t0 := time.Now()
		if best >= 0 {
			s.setProbeDeadline(t0.Add(2*bestD + time.Millisecond))
		}
		_, err := s.Solve()
		s.setProbeDeadline(time.Time{})
		d := time.Since(t0)
		if err != nil {
			// A caller-level abort (canceled context, exhausted
			// budget) ends the calibration itself, not just this
			// candidate's probe.
			if isAbortErr(err) && !errors.Is(err, errProbeBudget) {
				return "", err
			}
			if firstErr == nil && err != errProbeBudget {
				firstErr = err
			}
			continue
		}
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return "", firstErr
	}
	// Re-establish the winner's solved state — always, so the caller
	// reads flows/potentials produced by the installed backend and the
	// restored averages are seeded by the winner's own run.
	winner := candidates[best]
	s.ewmaFullVisits, s.ewmaResolveVisits = ewmaFull, ewmaResolve
	if err := s.SetEngine(winner); err != nil {
		return "", err
	}
	s.Reset()
	for v := range s.pot {
		s.pot[v] = 0
	}
	if _, err := s.Solve(); err != nil {
		return "", err
	}
	return winner, nil
}
