package mcmf

import "testing"

// chainInstance builds a 10-node chain with three supply sources and a
// single sink — small enough to reason about the gate arithmetic
// exactly: srcs = 3, so the static heuristic (supply deltas weighted
// 64×) always hands supply-delta rounds to the full solve, while the
// measured gate prices them at one full-solve augmentation each.
func chainInstance() *Solver {
	s := New(10)
	for v := 0; v+1 < 10; v++ {
		s.AddArc(v, v+1, 1_000, 1)
	}
	s.SetSupply(0, 5)
	s.SetSupply(1, 7)
	s.SetSupply(2, 3)
	s.SetSupply(9, -15)
	return s
}

// TestResolveGateFallback pins the two regimes of the work-estimate
// gate.  Unseeded (no incremental run measured yet), the static
// heuristic applies: a supply-delta round estimates 64× per delta,
// exceeds the source count, and falls back to a warm full solve.
// Once an arc-repair round has seeded the measured average, the same
// supply-delta shape re-prices to ~one full-solve augmentation per
// delta — below the full solve's one-per-source — and goes
// incremental (the ROADMAP "smarter resolve gating" win).
func TestResolveGateFallback(t *testing.T) {
	s := chainInstance()
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.ewmaFullVisits <= 0 {
		t.Fatalf("full solve did not seed the full-cost average: %v", s.ewmaFullVisits)
	}
	if s.ewmaResolveVisits != 0 {
		t.Fatalf("resolve average seeded without a resolve: %v", s.ewmaResolveVisits)
	}

	// Round 1: pure supply delta, unseeded measured gate.  Static
	// estimate: 2 deltas × 64 = 128 > 3 sources → full fallback.
	s.AddSupply(0, -2)
	s.AddSupply(1, 2)
	if _, err := s.ResolveChanged(nil); err != nil {
		t.Fatal(err)
	}
	st := s.EngineStats()
	if st.FullFallbacks != 1 || st.Resolves != 0 {
		t.Fatalf("unseeded supply-delta round: %+v, want a full fallback and no resolve", st)
	}

	// Round 2: pure arc repair.  Static estimate: 1 ≤ 3 → incremental,
	// which seeds the measured resolve average.
	s.SetCost(4, 3)
	if _, err := s.ResolveChanged([]int32{4}); err != nil {
		t.Fatal(err)
	}
	st = s.EngineStats()
	if st.Resolves != 1 {
		t.Fatalf("arc-repair round: %+v, want one incremental resolve", st)
	}
	if s.ewmaResolveVisits <= 0 {
		t.Fatalf("incremental run did not seed the resolve average")
	}

	// Round 3: the same supply-delta shape as round 1, now with both
	// averages seeded.  Measured estimate: 2 deltas × fullVisits ≤
	// 3 sources × fullVisits → incremental, no fallback.
	s.AddSupply(0, 1)
	s.AddSupply(2, -1)
	if _, err := s.ResolveChanged(nil); err != nil {
		t.Fatal(err)
	}
	st = s.EngineStats()
	if st.Resolves != 2 || st.FullFallbacks != 1 {
		t.Fatalf("seeded supply-delta round: %+v, want it incremental (2 resolves, still 1 fallback)", st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}

	// The repaired flow must equal a fresh solve of the final
	// configuration (the gate only chooses a path, never a result).
	want, err := freshTwin(s).Solve()
	if err != nil {
		t.Fatal(err)
	}
	got := s.TotalCost()
	if got != want {
		t.Fatalf("final cost %v != fresh %v", got, want)
	}
}
