package mcmf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCostScalingTrivial(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 3)
	s.SetSupply(1, -3)
	a := s.AddArc(0, 1, 10, 7)
	cost, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 21 {
		t.Fatalf("cost = %v, want 21", cost)
	}
	if s.Flow(a) != 3 {
		t.Fatalf("flow = %d", s.Flow(a))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCostScalingChoosesCheaperPath(t *testing.T) {
	s := New(3)
	s.SetSupply(0, 4)
	s.SetSupply(1, -4)
	s.AddArc(0, 1, 10, 10)
	s.AddArc(0, 2, 10, 2)
	s.AddArc(2, 1, 10, 3)
	cost, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 20 {
		t.Fatalf("cost = %v, want 20", cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCostScalingInfeasible(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 10)
	s.SetSupply(1, -10)
	s.AddArc(0, 1, 3, 1)
	if _, err := s.SolveCostScaling(); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestCostScalingUnbalanced(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 5)
	if _, err := s.SolveCostScaling(); err != ErrUnbalanced {
		t.Fatalf("want ErrUnbalanced, got %v", err)
	}
}

func TestCostScalingNegativeArc(t *testing.T) {
	s := New(3)
	s.SetSupply(0, 2)
	s.SetSupply(2, -2)
	s.AddArc(0, 1, 5, -4)
	s.AddArc(1, 2, 5, 1)
	cost, err := s.SolveCostScaling()
	if err != nil {
		t.Fatal(err)
	}
	if cost != -6 {
		t.Fatalf("cost = %v, want -6", cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property: both engines find the same optimal cost on random feasible
// instances (SSP refuses negative cycles; skip those).
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(14)
		build := func() *Solver {
			rr := rand.New(rand.NewSource(seed))
			_ = rr
			s := New(n)
			r2 := rand.New(rand.NewSource(seed + 1))
			for i := 0; i < m; i++ {
				u, v := r2.Intn(n), r2.Intn(n)
				if u == v {
					continue
				}
				s.AddArc(u, v, int64(r2.Intn(9)), int64(r2.Intn(15)-3))
			}
			for k := 0; k < 2; k++ {
				a, b := r2.Intn(n), r2.Intn(n)
				if a != b {
					amt := int64(r2.Intn(4))
					s.AddSupply(a, amt)
					s.AddSupply(b, -amt)
				}
			}
			return s
		}
		s1 := build()
		c1, err1 := s1.Solve()
		s2 := build()
		c2, err2 := s2.SolveCostScaling()
		if err1 == ErrNegativeCycle {
			// SSP refuses; cost-scaling may legitimately solve it.
			return true
		}
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if err := s2.Verify(); err != nil {
			return false
		}
		return c1 == c2
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFlowEngines (the engine comparison this file's doc comment
// promises) lives in equivalence_test.go next to the equivalence gate,
// sharing the NewGridInstance workload with BenchmarkMCMF.
