// Cancellation-determinism conformance: canceling a solve at ANY poll
// point must leave the solver reusable — a subsequent fresh solve has
// to be bit-identical (flows, potentials, cost) to a twin that was
// never canceled.  This is the abort-safety contract of the
// snapshot/restore layer in abort.go, exercised per registered engine
// at randomized poll points for both full solves and incremental
// resolves.
package mcmf

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// countedRun measures how many times the abort funnel polls during one
// run of fn on s (the hook is removed afterwards).
func countedRun(s *Solver, fn func() (float64, error)) (polls int, cost float64, err error) {
	s.SetPollHook(func() error { polls++; return nil })
	defer s.SetPollHook(nil)
	cost, err = fn()
	return polls, cost, err
}

// cancelAtPoll runs fn with a context canceled at the nth poll (all
// abort plumbing is removed afterwards).
func cancelAtPoll(s *Solver, n int, fn func() (float64, error)) (float64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.SetContext(ctx)
	polls := 0
	s.SetPollHook(func() error {
		polls++
		if polls == n {
			cancel()
		}
		return nil
	})
	cost, err := fn()
	s.SetPollHook(nil)
	s.SetContext(nil)
	return cost, err
}

// cancelPoints picks the poll points to cancel at: always the first
// and the last, plus a few randomized interior ones.
func cancelPoints(rng *rand.Rand, polls, extra int) []int {
	points := []int{1, polls}
	for k := 0; k < extra; k++ {
		points = append(points, 1+rng.Intn(polls))
	}
	return points
}

// TestConformanceCancelAtPollPoints is the cancellation-determinism
// gate: per engine, solves canceled at randomized poll points must
// return ErrCanceled and leave the solver able to re-solve to a state
// bit-identical with a never-canceled twin's.
func TestConformanceCancelAtPollPoints(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(0); seed < 6; seed++ {
			// Reference: an identical twin solved without interference.
			ref := newEngineInstance(t, engine, seed, false, 1)
			polls, cost, err := countedRun(ref, ref.Solve)
			if err != nil {
				t.Fatalf("seed %d: reference solve: %v", seed, err)
			}
			if polls == 0 {
				t.Fatalf("seed %d: solve never polled — poll sites missing for %s", seed, engine)
			}
			want := captureState(ref, cost)

			rng := rand.New(rand.NewSource(1000 + seed))
			for _, n := range cancelPoints(rng, polls, 4) {
				s := newEngineInstance(t, engine, seed, false, 1)
				cost, err := cancelAtPoll(s, n, s.Solve)
				if err == nil {
					// The final poll can precede completion so closely
					// that the run finishes anyway; then the state must
					// already be the reference state.
					diffState(t, "uncanceled completion", want, captureState(s, cost))
					continue
				}
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("seed %d cancel@%d/%d: got %v, want ErrCanceled", seed, n, polls, err)
				}
				// The abort must have rolled the attempt back: re-solving
				// the untouched instance is bit-identical to the twin.
				cost, err = s.Solve()
				if err != nil {
					t.Fatalf("seed %d re-solve after cancel@%d: %v", seed, n, err)
				}
				diffState(t, "re-solve after cancel", want, captureState(s, cost))
			}
		}
	})
}

// TestConformanceCancelDuringResolve covers the incremental path: a
// canceled ResolveChanged must leave the warm state intact so retrying
// the same resolve matches a twin that was never canceled.
func TestConformanceCancelDuringResolve(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(0); seed < 4; seed++ {
			ref := newEngineInstance(t, engine, seed, false, 1)
			if _, err := ref.Solve(); err != nil {
				t.Fatalf("seed %d: warm solve: %v", seed, err)
			}
			changedRef := mutateRandom(rand.New(rand.NewSource(500+seed)), ref, false)
			polls, cost, err := countedRun(ref, func() (float64, error) { return ref.ResolveChanged(changedRef) })
			if err != nil {
				continue // the mutation batch made the instance infeasible
			}
			if polls == 0 {
				// A batch the engine absorbs without augmentation work
				// has no poll point to cancel at.
				continue
			}
			want := captureState(ref, cost)

			rng := rand.New(rand.NewSource(2000 + seed))
			for _, n := range cancelPoints(rng, polls, 3) {
				s := newEngineInstance(t, engine, seed, false, 1)
				if _, err := s.Solve(); err != nil {
					t.Fatalf("seed %d: warm solve: %v", seed, err)
				}
				changed := mutateRandom(rand.New(rand.NewSource(500+seed)), s, false)
				cost, err := cancelAtPoll(s, n, func() (float64, error) { return s.ResolveChanged(changed) })
				if err == nil {
					diffState(t, "uncanceled resolve", want, captureState(s, cost))
					continue
				}
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("seed %d cancel@%d/%d: got %v, want ErrCanceled", seed, n, polls, err)
				}
				cost, err = s.ResolveChanged(changed)
				if err != nil {
					t.Fatalf("seed %d re-resolve after cancel@%d: %v", seed, n, err)
				}
				diffState(t, "re-resolve after cancel", want, captureState(s, cost))
			}
		}
	})
}
