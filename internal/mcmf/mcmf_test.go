package mcmf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnbalanced(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 5)
	if _, err := s.Solve(); err != ErrUnbalanced {
		t.Fatalf("want ErrUnbalanced, got %v", err)
	}
}

func TestTrivialSingleArc(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 3)
	s.SetSupply(1, -3)
	a := s.AddArc(0, 1, 10, 7)
	cost, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 21 {
		t.Fatalf("cost = %v, want 21", cost)
	}
	if s.Flow(a) != 3 {
		t.Fatalf("flow = %d, want 3", s.Flow(a))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel routes 0->1: direct cost 10, via 2 cost 2+3=5.
	s := New(3)
	s.SetSupply(0, 4)
	s.SetSupply(1, -4)
	direct := s.AddArc(0, 1, 10, 10)
	l1 := s.AddArc(0, 2, 10, 2)
	l2 := s.AddArc(2, 1, 10, 3)
	cost, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 20 {
		t.Fatalf("cost = %v, want 20", cost)
	}
	if s.Flow(direct) != 0 || s.Flow(l1) != 4 || s.Flow(l2) != 4 {
		t.Fatalf("flows: direct=%d via=%d,%d", s.Flow(direct), s.Flow(l1), s.Flow(l2))
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	// Cheap path capacity 3, remainder must use expensive path.
	s := New(3)
	s.SetSupply(0, 5)
	s.SetSupply(1, -5)
	cheap1 := s.AddArc(0, 2, 3, 1)
	cheap2 := s.AddArc(2, 1, 3, 1)
	exp := s.AddArc(0, 1, 10, 10)
	cost, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3*2+2*10 {
		t.Fatalf("cost = %v, want 26", cost)
	}
	if s.Flow(cheap1) != 3 || s.Flow(cheap2) != 3 || s.Flow(exp) != 2 {
		t.Fatalf("flows %d %d %d", s.Flow(cheap1), s.Flow(cheap2), s.Flow(exp))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasibleNoPath(t *testing.T) {
	s := New(3)
	s.SetSupply(0, 1)
	s.SetSupply(2, -1)
	s.AddArc(0, 1, 5, 1) // no way to reach 2
	if _, err := s.Solve(); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestInfeasibleCapacity(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 10)
	s.SetSupply(1, -10)
	s.AddArc(0, 1, 3, 1)
	if _, err := s.Solve(); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestNegativeCostArc(t *testing.T) {
	// Negative arc on the only path: cost should go negative.
	s := New(3)
	s.SetSupply(0, 2)
	s.SetSupply(2, -2)
	s.AddArc(0, 1, 5, -4)
	s.AddArc(1, 2, 5, 1)
	cost, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2*(-4+1) {
		t.Fatalf("cost = %v, want -6", cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	s := New(3)
	s.SetSupply(0, 1)
	s.SetSupply(1, -1)
	s.AddArc(0, 1, 5, 1)
	s.AddArc(1, 2, 5, -3)
	s.AddArc(2, 1, 5, 1)
	if _, err := s.Solve(); err != ErrNegativeCycle {
		t.Fatalf("want ErrNegativeCycle, got %v", err)
	}
}

func TestZeroSupplySolves(t *testing.T) {
	s := New(3)
	s.AddArc(0, 1, 5, 1)
	cost, err := s.Solve()
	if err != nil || cost != 0 {
		t.Fatalf("cost=%v err=%v", cost, err)
	}
}

func TestMultipleSourcesSinks(t *testing.T) {
	// Two sources, two sinks; assignment-like instance.
	s := New(4)
	s.SetSupply(0, 2)
	s.SetSupply(1, 3)
	s.SetSupply(2, -4)
	s.SetSupply(3, -1)
	s.AddArc(0, 2, 10, 1)
	s.AddArc(0, 3, 10, 6)
	s.AddArc(1, 2, 10, 2)
	s.AddArc(1, 3, 10, 1)
	cost, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: 0->2 x2 (2), 1->2 x2 (4), 1->3 x1 (1) = 7.
	if cost != 7 {
		t.Fatalf("cost = %v, want 7", cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNode(t *testing.T) {
	s := New(1)
	v := s.AddNode()
	if v != 1 || s.N() != 2 {
		t.Fatalf("AddNode -> %d, N=%d", v, s.N())
	}
	s.SetSupply(0, 1)
	s.SetSupply(1, -1)
	s.AddArc(0, 1, 1, 0)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
}

// --- independent reference implementation: cycle canceling ---------------

type refArc struct {
	u, v      int
	cap, cost int64
	flow      int64
}

// refSolve computes a min-cost feasible flow by first finding any
// feasible flow (Bellman-Ford shortest augmenting paths on costs would
// bias it, so use plain BFS max-flow from a super source) and then
// canceling negative cycles with Bellman-Ford until none remain.
func refSolve(n int, arcs []refArc, supply []int64) (float64, bool) {
	// Super source S=n, super sink T=n+1.
	S, T := n, n+1
	type e struct {
		to        int
		cap, cost int64
		rev       int
	}
	adj := make([][]e, n+2)
	add := func(u, v int, cap, cost int64) {
		adj[u] = append(adj[u], e{v, cap, cost, len(adj[v])})
		adj[v] = append(adj[v], e{u, 0, -cost, len(adj[u]) - 1})
	}
	var need int64
	for i, a := range arcs {
		_ = i
		add(a.u, a.v, a.cap, a.cost)
	}
	for v, b := range supply {
		if b > 0 {
			add(S, v, b, 0)
			need += b
		} else if b < 0 {
			add(v, T, -b, 0)
		}
	}
	// BFS max flow S->T.
	var sent int64
	for {
		prev := make([]int, n+2)
		prevE := make([]int, n+2)
		for i := range prev {
			prev[i] = -1
		}
		queue := []int{S}
		prev[S] = S
		for len(queue) > 0 && prev[T] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i, ed := range adj[u] {
				if ed.cap > 0 && prev[ed.to] == -1 {
					prev[ed.to] = u
					prevE[ed.to] = i
					queue = append(queue, ed.to)
				}
			}
		}
		if prev[T] == -1 {
			break
		}
		bott := int64(1) << 60
		for v := T; v != S; v = prev[v] {
			ed := adj[prev[v]][prevE[v]]
			if ed.cap < bott {
				bott = ed.cap
			}
		}
		for v := T; v != S; v = prev[v] {
			adj[prev[v]][prevE[v]].cap -= bott
			rev := adj[prev[v]][prevE[v]].rev
			adj[v][rev].cap += bott
		}
		sent += bott
	}
	if sent != need {
		return 0, false // infeasible
	}
	// Cancel negative cycles (Bellman-Ford with predecessor walk).
	for iter := 0; iter < 10000; iter++ {
		dist := make([]int64, n+2)
		pe := make([][2]int, n+2) // (node, edge idx)
		for i := range pe {
			pe[i] = [2]int{-1, -1}
		}
		var x = -1
		for round := 0; round < n+2; round++ {
			x = -1
			for u := 0; u < n+2; u++ {
				for i, ed := range adj[u] {
					if ed.cap > 0 && dist[u]+ed.cost < dist[ed.to] {
						dist[ed.to] = dist[u] + ed.cost
						pe[ed.to] = [2]int{u, i}
						x = ed.to
					}
				}
			}
			if x == -1 {
				break
			}
		}
		if x == -1 {
			break
		}
		// Walk back n+2 steps to land on the cycle.
		for i := 0; i < n+2; i++ {
			x = pe[x][0]
		}
		// Collect cycle, find bottleneck.
		bott := int64(1) << 60
		v := x
		for {
			u, i := pe[v][0], pe[v][1]
			if adj[u][i].cap < bott {
				bott = adj[u][i].cap
			}
			v = u
			if v == x {
				break
			}
		}
		v = x
		for {
			u, i := pe[v][0], pe[v][1]
			adj[u][i].cap -= bott
			adj[adj[u][i].to][adj[u][i].rev].cap += bott
			v = u
			if v == x {
				break
			}
		}
	}
	// Total cost: sum over original arcs of flow*cost; flow equals the
	// consumed forward capacity.  Original arcs were inserted before the
	// supply arcs, in order, so replaying the per-node insertion cursor
	// locates each forward edge.
	var total float64
	pos := make([]int, n+2)
	for i, a := range arcs {
		_ = i
		ed := adj[a.u][pos[a.u]]
		flow := a.cap - ed.cap
		total += float64(flow) * float64(a.cost)
		pos[a.u]++
		pos[a.v]++ // reverse edge also consumed a slot at a.v
	}
	return total, true
}

// Property: on random feasible instances without negative arcs, the SSP
// solver matches the independent cycle-canceling reference.
func TestQuickMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(12)
		arcs := make([]refArc, 0, m)
		s := New(n)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			cap := int64(rng.Intn(8))
			cost := int64(rng.Intn(10))
			arcs = append(arcs, refArc{u: u, v: v, cap: cap, cost: cost})
			s.AddArc(u, v, cap, cost)
		}
		// Random balanced supplies with small magnitude.
		supply := make([]int64, n)
		for k := 0; k < 2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			amt := int64(rng.Intn(4))
			supply[a] += amt
			supply[b] -= amt
		}
		for v, b := range supply {
			s.SetSupply(v, b)
		}
		refCost, refOK := refSolve(n, arcs, supply)
		cost, err := s.Solve()
		if !refOK {
			return err != nil
		}
		if err != nil {
			return false
		}
		if err := s.Verify(); err != nil {
			return false
		}
		return cost == refCost
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Verify certificate always passes on solvable random DAG-like
// instances with negative costs allowed on forward arcs.
func TestQuickVerifyWithNegativeCosts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		s := New(n)
		// DAG arcs only (u<v): negative costs cannot form cycles.
		for i := 0; i < 3*n; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			s.AddArc(u, v, int64(1+rng.Intn(10)), int64(rng.Intn(21)-10))
		}
		amt := int64(1 + rng.Intn(3))
		s.SetSupply(0, amt)
		s.SetSupply(n-1, -amt)
		if _, err := s.Solve(); err != nil {
			return errIsInfeasible(err)
		}
		return s.Verify() == nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func errIsInfeasible(err error) bool { return err == ErrInfeasible }

func BenchmarkSolveGrid(b *testing.B) {
	// D-phase-shaped instance: layered DAG, supplies on layer boundaries
	// (the same workload as BenchmarkMCMF in package minflo).
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewGridInstance(40, 25, 7)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveGridWarm measures re-solves on a fixed topology through
// the Reset warm-start path — the shape of the D/W iteration loop.
// This must run allocation-free (asserted by TestWarmResolveAllocFree).
func BenchmarkSolveGridWarm(b *testing.B) {
	s := NewGridInstance(40, 25, 7)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
