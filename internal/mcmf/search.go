// Per-search Dijkstra state, factored out of the Solver so that one
// network can be searched by several workers at once: the residual
// arcs, potentials and excess vector are shared read-only during a
// search, while everything a search writes — tentative distances, the
// shortest-path tree, the epoch stamps and the heap — lives in a
// searchScratch.  The Solver owns one (its serial scratch, s.ss); the
// "parallel" engine keeps a pool of additional scratches for its
// speculative searches (parallel.go).
package mcmf

// searchScratch is the write-side state of one shortest-path search:
// epoch-stamped dist/prevArc entries (valid only when stamp matches
// epoch, so per-search reset is O(1) plus the nodes actually visited)
// and the inline 4-ary heap.
type searchScratch struct {
	dist    []int64
	prevArc []int32
	stamp   []uint32
	epoch   uint32
	visited []int32
	h       heap4
}

// ensure sizes the scratch for an n-node network, keeping existing
// stamps when already large enough.
func (sc *searchScratch) ensure(n int) {
	if len(sc.dist) < n {
		sc.dist = make([]int64, n)
		sc.prevArc = make([]int32, n)
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
}

// begin starts a fresh epoch for the stamped scratch.
func (sc *searchScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // uint32 wraparound: invalidate all stamps
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.visited = sc.visited[:0]
}

// touch stamps node v into the current epoch.
func (sc *searchScratch) touch(v int32) {
	sc.stamp[v] = sc.epoch
	sc.dist[v] = inf
	sc.prevArc[v] = -1
	sc.visited = append(sc.visited, v)
}

// dijkstraHeap runs one shortest-path search on reduced costs from src
// into sc — the classic SSP inner loop on the inline 4-ary heap.  It
// reads (and never writes) the solver's residual arcs, potentials and
// the excess vector, so concurrent searches with distinct scratches
// are safe as long as nobody mutates the network.  It fills
// sc.dist/sc.prevArc/sc.visited for the settled region and returns the
// first node with negative excess together with its distance, or
// target −1 when no deficit node is reachable.
func dijkstraHeap(s *Solver, sc *searchScratch, src int32, excess []int64) (int32, int64) {
	sc.begin()
	sc.touch(src)
	sc.dist[src] = 0
	sc.h.reset()
	sc.h.push(0, src)
	for !sc.h.empty() {
		d, u := sc.h.pop()
		if d > sc.dist[u] {
			continue // stale heap entry (lazy deletion)
		}
		if excess[u] < 0 {
			// Settling nodes at equal distance is unnecessary;
			// stop at the first deficit node for speed.
			return u, d
		}
		pu := s.pot[u]
		for _, ai := range s.arcsOf(int(u)) {
			a := &s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			v := a.to
			rc := a.cost + pu - s.pot[v]
			if rc < 0 {
				// Should not happen with valid potentials; clamp
				// defensively (can arise from ties after early exit).
				rc = 0
			}
			if sc.stamp[v] != sc.epoch {
				sc.touch(v)
			}
			if nd := d + rc; nd < sc.dist[v] {
				sc.dist[v] = nd
				sc.prevArc[v] = ai
				sc.h.push(nd, v)
			}
		}
	}
	return -1, 0
}

// applyAugmentation commits the augmentation described by a completed
// search (in sc) from src to target at shortest distance dt: the
// settled-only potential update, the bottleneck computation, the
// residual push, and the excess transfer.  It returns the bottleneck
// pushed.  This is the single commit path shared by the serial
// augmentation loop and the parallel engine, so a committed
// speculative search is bit-identical to a serially computed one.
// Note the bottleneck reads live residual capacities at commit time —
// a search result only pins the tree (prevArc), distances and the
// target, which is what makes speculative results commutable with
// capacity changes that never cross zero.
func (s *Solver) applyAugmentation(sc *searchScratch, src, target int32, dt int64, excess []int64) int64 {
	// Update potentials on settled nodes only: pot += dist − dt
	// (equivalent to the classic pot += min(dist, dt) up to a
	// uniform −dt shift, which leaves every reduced cost
	// unchanged).  Unvisited and unsettled nodes keep their
	// potentials, so the update is O(visited), not O(n).
	for _, v := range sc.visited {
		if d := sc.dist[v]; d < dt {
			s.pot[v] += d - dt
		}
	}
	// Bottleneck along the path.
	bott := excess[src]
	if -excess[target] < bott {
		bott = -excess[target]
	}
	for v := target; v != src; {
		ai := sc.prevArc[v]
		if s.arcs[ai].cap < bott {
			bott = s.arcs[ai].cap
		}
		v = s.arcs[ai^1].to
	}
	// Augment.
	for v := target; v != src; {
		ai := sc.prevArc[v]
		s.arcs[ai].cap -= bott
		s.arcs[ai^1].cap += bott
		v = s.arcs[ai^1].to
	}
	excess[src] -= bott
	excess[target] += bott
	return bott
}
