// Successive-shortest-paths machinery shared by the "ssp" and "dial"
// engines: the source-selection/augmentation loop is common, and the
// per-augmentation shortest-path search is pluggable (heap Dijkstra
// here, Dial bucket Dijkstra in dial.go).
package mcmf

// pathFinder runs one shortest-path search on reduced costs from src,
// filling s.dist/s.prevArc/s.visited for the settled region, and
// returns the first node with negative excess together with its
// distance, or target −1 when no deficit node is reachable.
type pathFinder interface {
	shortestPath(s *Solver, src int32, excess []int64) (target int32, dt int64)
}

// heapFinder is Dijkstra on the inline 4-ary heap — the classic SSP
// inner loop, and the fallback the dial engine reaches for when a
// reduced cost outgrows its bucket ring.
type heapFinder struct{}

func (heapFinder) shortestPath(s *Solver, src int32, excess []int64) (int32, int64) {
	s.beginEpoch()
	s.touch(src)
	s.dist[src] = 0
	s.h.reset()
	s.h.push(0, src)
	for !s.h.empty() {
		d, u := s.h.pop()
		if d > s.dist[u] {
			continue // stale heap entry (lazy deletion)
		}
		if excess[u] < 0 {
			// Settling nodes at equal distance is unnecessary;
			// stop at the first deficit node for speed.
			return u, d
		}
		pu := s.pot[u]
		for _, ai := range s.arcsOf(int(u)) {
			a := &s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			v := a.to
			rc := a.cost + pu - s.pot[v]
			if rc < 0 {
				// Should not happen with valid potentials; clamp
				// defensively (can arise from ties after early exit).
				rc = 0
			}
			if s.stamp[v] != s.epoch {
				s.touch(v)
			}
			if nd := d + rc; nd < s.dist[v] {
				s.dist[v] = nd
				s.prevArc[v] = ai
				s.h.push(nd, v)
			}
		}
	}
	return -1, 0
}

// beginEpoch starts a fresh epoch for the stamped Dijkstra scratch.
func (s *Solver) beginEpoch() {
	s.epoch++
	if s.epoch == 0 { // uint32 wraparound: invalidate all stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.visited = s.visited[:0]
}

// augmentAll routes every positive excess to a deficit node along
// reduced-cost shortest paths, updating potentials after each
// augmentation.  excess must be balanced (sums to zero); residuals are
// mutated in place.
func (s *Solver) augmentAll(excess []int64, pf pathFinder, st *Stats) error {
	srcs := s.sources[:0]
	for v := 0; v < s.n; v++ {
		if excess[v] > 0 {
			srcs = append(srcs, int32(v))
		}
	}
	s.sources = srcs // retain grown capacity for the next solve
	for {
		// Pick any node with positive excess.
		src := int32(-1)
		for len(srcs) > 0 {
			v := srcs[len(srcs)-1]
			if excess[v] > 0 {
				src = v
				break
			}
			srcs = srcs[:len(srcs)-1]
		}
		if src == -1 {
			break // all supplies routed
		}
		target, dt := pf.shortestPath(s, src, excess)
		if target == -1 {
			return ErrInfeasible
		}
		st.Augmentations++
		// Update potentials on settled nodes only: pot += dist − dt
		// (equivalent to the classic pot += min(dist, dt) up to a
		// uniform −dt shift, which leaves every reduced cost
		// unchanged).  Unvisited and unsettled nodes keep their
		// potentials, so the update is O(visited), not O(n).
		for _, v := range s.visited {
			if d := s.dist[v]; d < dt {
				s.pot[v] += d - dt
			}
		}
		// Bottleneck along the path.
		bott := excess[src]
		if -excess[target] < bott {
			bott = -excess[target]
		}
		for v := target; v != src; {
			ai := s.prevArc[v]
			if s.arcs[ai].cap < bott {
				bott = s.arcs[ai].cap
			}
			v = s.arcs[ai^1].to
		}
		// Augment.
		for v := target; v != src; {
			ai := s.prevArc[v]
			s.arcs[ai].cap -= bott
			s.arcs[ai^1].cap += bott
			v = s.arcs[ai^1].to
		}
		excess[src] -= bott
		excess[target] += bott
	}
	return nil
}

// sspEngine is successive shortest paths with the heap Dijkstra — the
// default backend, bit-identical to the pre-engine Solver.Solve.
type sspEngine struct {
	st Stats
}

func (e *sspEngine) Name() string { return "ssp" }

func (e *sspEngine) Stats() Stats { return e.st }

func (e *sspEngine) Solve(s *Solver) (float64, error) {
	return solveSSPFull(s, heapFinder{}, &e.st)
}

// solveSSPFull is the full solve shared by the SSP-family engines
// ("ssp" and "dial" differ only in their path finder): preamble,
// supply routing, and the solved-state bookkeeping.
func solveSSPFull(s *Solver, pf pathFinder, st *Stats) (float64, error) {
	if err := s.beginSolve(st); err != nil {
		return 0, err
	}
	excess := s.excess[:s.n]
	copy(excess, s.supply)
	// Augmentations mutate the residuals from here on; mark them dirty
	// up front so even an infeasible early return is cleaned up by the
	// next Solve, and unrepairable until markSolved certifies them.
	s.flowDirty = true
	s.repairable = false
	if err := s.augmentAll(excess, pf, st); err != nil {
		return 0, err
	}
	s.markSolved()
	st.Solves++
	return s.TotalCost(), nil
}

func (e *sspEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	return resolveSSP(s, changed, heapFinder{}, &e.st, e.Solve)
}
