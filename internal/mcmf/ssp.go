// Successive-shortest-paths machinery shared by the "ssp", "dial" and
// "parallel" engines: the source-selection/augmentation loop is
// common, and the per-augmentation shortest-path search is pluggable
// (heap Dijkstra in search.go, Dial bucket Dijkstra in dial.go,
// speculative concurrent heap searches in parallel.go).
package mcmf

// pathFinder runs one shortest-path search on reduced costs from src,
// filling the solver's own scratch (s.ss) for the settled region, and
// returns the first node with negative excess together with its
// distance, or target −1 when no deficit node is reachable.
type pathFinder interface {
	shortestPath(s *Solver, src int32, excess []int64) (target int32, dt int64)
}

// heapFinder is Dijkstra on the inline 4-ary heap — the classic SSP
// inner loop, and the fallback the dial engine reaches for when a
// reduced cost outgrows its bucket ring.
type heapFinder struct{}

func (heapFinder) shortestPath(s *Solver, src int32, excess []int64) (int32, int64) {
	return dijkstraHeap(s, &s.ss, src, excess)
}

// augmentAll routes every positive excess to a deficit node along
// reduced-cost shortest paths, updating potentials after each
// augmentation.  excess must be balanced (sums to zero); residuals are
// mutated in place.
func (s *Solver) augmentAll(excess []int64, pf pathFinder, st *Stats) error {
	srcs := s.sources[:0]
	for v := 0; v < s.n; v++ {
		if excess[v] > 0 {
			srcs = append(srcs, int32(v))
		}
	}
	s.sources = srcs // retain grown capacity for the next solve
	for {
		if err := s.pollAbort(); err != nil {
			return err
		}
		// Pick any node with positive excess.
		src := int32(-1)
		for len(srcs) > 0 {
			v := srcs[len(srcs)-1]
			if excess[v] > 0 {
				src = v
				break
			}
			srcs = srcs[:len(srcs)-1]
		}
		if src == -1 {
			break // all supplies routed
		}
		target, dt := pf.shortestPath(s, src, excess)
		if target == -1 {
			return ErrInfeasible
		}
		st.Augmentations++
		st.Visited += int64(len(s.ss.visited))
		s.applyAugmentation(&s.ss, src, target, dt, excess)
	}
	return nil
}

// sspEngine is successive shortest paths with the heap Dijkstra — the
// default backend, bit-identical to the pre-engine Solver.Solve.
type sspEngine struct {
	engineCore
}

func (e *sspEngine) Name() string { return "ssp" }

func (e *sspEngine) Solve(s *Solver) (float64, error) {
	return solveSSPFull(s, heapFinder{}, &e.st)
}

// solveSSPFull is the full solve shared by the SSP-family engines
// ("ssp" and "dial" differ only in their path finder): preamble,
// supply routing, and the solved-state bookkeeping.
func solveSSPFull(s *Solver, pf pathFinder, st *Stats) (float64, error) {
	if err := s.beginSolve(st); err != nil {
		return 0, err
	}
	excess := s.excess[:s.n]
	copy(excess, s.supply)
	// Augmentations mutate the residuals from here on; mark them dirty
	// up front so even an infeasible early return is cleaned up by the
	// next Solve, and unrepairable until markSolved certifies them.
	s.flowDirty = true
	s.repairable = false
	mark := *st
	if err := s.augmentAll(excess, pf, st); err != nil {
		return 0, err
	}
	s.markSolved()
	st.Solves++
	s.noteFullRun(mark, *st)
	return s.TotalCost(), nil
}

func (e *sspEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	return resolveSSP(s, changed, heapFinder{}, &e.st, e.Solve)
}
