package mcmf

import (
	"math/rand"
	"testing"
)

// TestResetResolveIdentical: Reset restores the unsolved state, so an
// untouched instance re-solves to the identical cost and flows.
func TestResetResolveIdentical(t *testing.T) {
	s := NewGridInstance(15, 10, 5)
	cost1, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]int64, s.NumArcs())
	for id := range flows {
		flows[id] = s.Flow(id)
	}
	s.Reset()
	cost2, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost1 != cost2 {
		t.Fatalf("re-solve cost %v != %v", cost2, cost1)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	for id := range flows {
		if got := s.Flow(id); got != flows[id] {
			t.Fatalf("arc %d flow %d != %d after deterministic re-solve", id, got, flows[id])
		}
	}
}

// TestResolveWithoutReset: Solve must clear the previous solve's flow
// by itself — mutate-and-solve-again without an explicit Reset is the
// documented warm-start pattern and must not double-route supplies.
func TestResolveWithoutReset(t *testing.T) {
	s := New(2)
	s.SetSupply(0, 1)
	s.SetSupply(1, -1)
	id := s.AddArc(0, 1, 10, 3)
	cost, err := s.Solve()
	if err != nil || cost != 3 {
		t.Fatalf("first solve: cost=%v err=%v", cost, err)
	}
	s.SetCost(id, 5)
	cost, err = s.Solve() // no Reset on purpose
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Fatalf("re-solve cost = %v, want 5 (stale flow not cleared?)", cost)
	}
	if got := s.Flow(id); got != 1 {
		t.Fatalf("flow = %d, want 1", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Same invariant after an infeasible attempt.
	s.SetSupply(0, 20)
	s.SetSupply(1, -20)
	if _, err := s.Solve(); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	s.SetSupply(0, 2)
	s.SetSupply(1, -2)
	cost, err = s.Solve()
	if err != nil || cost != 10 {
		t.Fatalf("solve after infeasible attempt: cost=%v err=%v", cost, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartMatchesFresh is the satellite acceptance test: solve,
// mutate supplies and costs in place, re-solve through the warm-start
// path, and the result must match a fresh solver built directly with
// the mutated instance data.
func TestWarmStartMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		warm := buildRandomFeasible(rng, false)
		if _, err := warm.Solve(); err != nil {
			t.Fatalf("seed %d: initial solve: %v", seed, err)
		}

		// Mutate: re-cost a third of the arcs, re-route some supply.
		n := warm.N()
		for id := 0; id < warm.NumArcs(); id++ {
			if rng.Intn(3) == 0 {
				warm.SetCost(id, int64(rng.Intn(80)))
			}
			if rng.Intn(7) == 0 {
				warm.SetCapacity(id, int64(1+rng.Intn(300)))
			}
		}
		// Backbone arcs (the first 2(n−1) IDs: forward then reverse
		// chain) keep feasibility; restore their capacity in case the
		// loop above shrank one.
		for id := 0; id < 2*(n-1); id++ {
			warm.SetCapacity(id, 1_000_000)
		}
		for k := 0; k < 3; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			amt := int64(rng.Intn(25))
			warm.AddSupply(a, amt)
			warm.AddSupply(b, -amt)
		}

		// Fresh twin with the mutated configuration.
		fresh := New(n)
		for v := 0; v < n; v++ {
			fresh.SetSupply(v, warm.Supply(v))
		}
		for id := 0; id < warm.NumArcs(); id++ {
			u := int(warm.arcs[2*id+1].to)
			v := int(warm.arcs[2*id].to)
			fresh.AddArc(u, v, warm.Capacity(id), warm.Cost(id))
		}

		warm.Reset()
		warmCost, warmErr := warm.Solve()
		freshCost, freshErr := fresh.Solve()
		if (warmErr == nil) != (freshErr == nil) {
			t.Fatalf("seed %d: warm err %v, fresh err %v", seed, warmErr, freshErr)
		}
		if warmErr != nil {
			continue
		}
		if warmCost != freshCost {
			t.Fatalf("seed %d: warm cost %v != fresh cost %v", seed, warmCost, freshCost)
		}
		if err := warm.Verify(); err != nil {
			t.Fatalf("seed %d: warm certificate: %v", seed, err)
		}
		if err := fresh.Verify(); err != nil {
			t.Fatalf("seed %d: fresh certificate: %v", seed, err)
		}
	}
}

// TestWarmStartNegativeCostUpdate drives the Bellman–Ford fallback: a
// cost update that invalidates the previous potentials (new negative
// reduced costs) must still re-solve correctly.
func TestWarmStartNegativeCostUpdate(t *testing.T) {
	s := New(3)
	s.SetSupply(0, 2)
	s.SetSupply(2, -2)
	direct := s.AddArc(0, 2, 10, 1)
	a1 := s.AddArc(0, 1, 10, 4)
	a2 := s.AddArc(1, 2, 10, 4)
	cost, err := s.Solve()
	if err != nil || cost != 2 {
		t.Fatalf("first solve: cost=%v err=%v", cost, err)
	}
	// Make the two-hop path strongly negative: old potentials are now
	// invalid and the warm validity scan must reject them.
	s.SetCost(a1, -6)
	s.SetCost(a2, -6)
	s.Reset()
	cost, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2*(-12) {
		t.Fatalf("cost = %v, want -24", cost)
	}
	if s.Flow(direct) != 0 || s.Flow(a1) != 2 || s.Flow(a2) != 2 {
		t.Fatalf("flows %d %d %d", s.Flow(direct), s.Flow(a1), s.Flow(a2))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartAfterTopologyChange: arcs added after a solve rebuild
// the adjacency index but keep prior potentials as a warm seed.
func TestWarmStartAfterTopologyChange(t *testing.T) {
	s := New(4)
	s.SetSupply(0, 3)
	s.SetSupply(3, -3)
	s.AddArc(0, 1, 10, 5)
	s.AddArc(1, 3, 10, 5)
	cost, err := s.Solve()
	if err != nil || cost != 30 {
		t.Fatalf("cost=%v err=%v", cost, err)
	}
	// A cheaper route through a new arc pair.
	s.AddArc(0, 2, 10, 1)
	s.AddArc(2, 3, 10, 1)
	s.Reset()
	cost, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 6 {
		t.Fatalf("cost = %v, want 6 via the new route", cost)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// And a new node on a cheaper detour.
	v := s.AddNode()
	s.AddArc(0, v, 10, 0)
	s.AddArc(v, 3, 10, 0)
	s.Reset()
	cost, err = s.Solve()
	if err != nil || cost != 0 {
		t.Fatalf("after AddNode: cost=%v err=%v", cost, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmResolveAllocFree asserts the acceptance criterion directly:
// after the first solve on a topology, Reset+Solve allocates nothing.
func TestWarmResolveAllocFree(t *testing.T) {
	s := NewGridInstance(20, 12, 9)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.Reset()
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Reset+Solve allocates %v objects/op, want 0", allocs)
	}
}

// TestWarmResolveWithCostUpdatesAllocFree: the D/W-iteration shape —
// cost updates between re-solves — must also stay allocation-free.
func TestWarmResolveWithCostUpdatesAllocFree(t *testing.T) {
	s := NewGridInstance(20, 12, 9)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	costs := make([]int64, s.NumArcs())
	for i := range costs {
		costs[i] = int64(rng.Intn(1000))
	}
	allocs := testing.AllocsPerRun(20, func() {
		for id := 0; id < s.NumArcs(); id += 5 {
			s.SetCost(id, costs[id])
		}
		s.Reset()
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm update+re-solve allocates %v objects/op, want 0", allocs)
	}
}
