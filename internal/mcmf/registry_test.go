// Registry concurrency: Register runs at test runtime (internal/fault
// registers its wrapper engine when a test binary imports it) while
// server sessions instantiate engines concurrently, so the registry
// map must synchronize reads against writes.  This test drives both
// sides at once and is meaningful under -race (it passes trivially
// without it).
package mcmf

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryConcurrentAccess(t *testing.T) {
	const (
		registrars = 4
		readers    = 4
		perWorker  = 50
	)
	names := make([]string, 0, registrars*perWorker)
	for w := 0; w < registrars; w++ {
		for i := 0; i < perWorker; i++ {
			names = append(names, fmt.Sprintf("racetest-%d-%d", w, i))
		}
	}
	// The throwaway names must not leak into the process-global
	// registry: the conformance suites enumerate EngineNames
	// dynamically and would run full equivalence rounds on every
	// leftover entry.
	defer func() {
		for _, n := range names {
			unregister(n)
		}
		for _, n := range names {
			if ValidEngine(n) {
				t.Fatalf("throwaway engine %q still registered after cleanup", n)
			}
		}
	}()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < registrars; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				// Factories hand out the reference backend so an
				// instantiated throwaway engine is a real engine.
				Register(fmt.Sprintf("racetest-%d-%d", w, i), func() Engine { return &sspEngine{} })
			}
		}(w)
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				// Instantiate a built-in by name while registrations are
				// in flight: this is the server-session path (every new
				// session news up an engine).
				e, err := NewEngine("ssp")
				if err != nil {
					errs <- err
					return
				}
				if e.Name() != "ssp" {
					errs <- fmt.Errorf("NewEngine(ssp).Name() = %q", e.Name())
					return
				}
				// And exercise the enumeration + validation readers.
				if len(EngineNames()) < 5 {
					errs <- fmt.Errorf("EngineNames() lost the built-ins: %v", EngineNames())
					return
				}
				if !ValidEngine("dial") {
					errs <- fmt.Errorf("ValidEngine(dial) = false mid-registration")
					return
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, n := range names {
		if !ValidEngine(n) {
			t.Fatalf("engine %q lost after concurrent registration", n)
		}
	}
}
