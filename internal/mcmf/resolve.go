// Incremental re-flow (drain-and-reroute), shared by the SSP engines.
//
// The D-phase solves the same network dozens of times with small cost
// and supply deltas between solves.  A warm full solve already skips
// Bellman–Ford, but it still resets every residual and reroutes the
// entire supply.  Resolve exploits the previous optimum instead:
//
//  1. the flow carried by each changed arc is drained back to its
//     endpoints (creating a local excess/deficit pair) and the arc's
//     residuals are restored to its configured capacity;
//  2. supply deltas against the last solved configuration are added to
//     the excess vector (so supply changes need no explicit
//     notification);
//  3. changed arcs whose new reduced cost is negative are saturated —
//     their full capacity is pushed, removing them from the residual
//     graph (their reverse arcs price positively by construction).
//     Unchanged arcs still satisfy reduced-cost optimality by the
//     previous certificate, so after this step the old potentials are
//     valid on the entire residual graph with no Bellman–Ford repair;
//  4. the resulting imbalance (typically a tiny fraction of the total
//     supply) is rerouted with ordinary shortest-path augmentations on
//     the residual graph — which may use reverse arcs, i.e. undo
//     earlier routing, so the repaired flow is exactly optimal for the
//     new configuration, not an approximation (certified by Verify,
//     asserted bit-equal to fresh solves by
//     TestResolveMatchesFreshRandom).
//
// One semantic difference from a full Solve: saturation prices
// negative-cost structures away instead of detecting them, so a
// configuration whose *configured* arcs close a negative-cost cycle of
// positive capacity re-flows to the true (finite, capacity-bounded)
// optimum rather than returning ErrNegativeCycle.  D-phase instances
// never contain such cycles (r = 0 is always feasible); callers that
// rely on the detection behaviour use Solve.
package mcmf

// resolveSSP implements Engine.Resolve for the SSP family.  full is
// the engine's own Solve, used when no repairable flow exists.
func resolveSSP(s *Solver, changed []int32, pf pathFinder, st *Stats, full func(*Solver) (float64, error)) (float64, error) {
	if !s.repairable || s.topoDirty {
		st.FullFallbacks++
		return full(s)
	}
	var sum int64
	for _, b := range s.supply {
		sum += b
	}
	if sum != 0 {
		return 0, ErrUnbalanced
	}
	// Work estimate: every drained flow-carrying arc, re-priced
	// negative arc and shifted supply seeds one excess/deficit pair,
	// i.e. roughly one shortest-path augmentation.  Arc repairs are
	// local — the drain leaves a deficit right at the arc's head — so
	// they cost about as much as one source in a warm full solve, but
	// supply deltas pair arbitrary nodes and their augmentations can
	// cross the whole network — measured ~40× the cost of a local
	// repair on wide/shallow DAGs — so they carry a heavy weight.  When the
	// estimated repair exceeds what the full solve needs (one
	// augmentation per source), hand over before touching any
	// residuals; iterations whose deltas quiesce come back to the
	// incremental path on their own.
	const supplyDeltaWeight = 64
	work, srcs := 0, 0
	for v := 0; v < s.n; v++ {
		if s.supply[v] > 0 {
			srcs++
		}
		if s.supply[v] != s.routed[v] {
			work += supplyDeltaWeight
		}
	}
	for _, id := range changed {
		fwd, rev := &s.arcs[2*id], &s.arcs[2*id+1]
		if rev.cap > 0 {
			work++
		} else if s.orig[id] > 0 && fwd.cost+s.pot[rev.to]-s.pot[fwd.to] < 0 {
			work++ // will saturate
		}
	}
	if work > srcs {
		st.FullFallbacks++
		return full(s)
	}
	// Supply deltas against the routed snapshot.
	excess := s.excess[:s.n]
	for v := 0; v < s.n; v++ {
		excess[v] = s.supply[v] - s.routed[v]
	}
	// The drain below and the augmentations after it mutate residuals:
	// until markSolved re-certifies them, the flow is neither optimal
	// nor repairable (a failed resolve leaves partial routing behind,
	// which the next solve resets and the next resolve must not trust).
	s.solved = false
	s.repairable = false
	// Drain the changed arcs and restore their configured capacity
	// (reconciling any staged UpdateCapacity), then re-price: an arc
	// whose new reduced cost is negative is saturated so it leaves the
	// residual graph.  Draining twice is harmless, so duplicate IDs in
	// changed are allowed (the saturation is skipped the second time
	// because the forward residual is already empty only when the arc
	// re-prices negative, and re-running it is idempotent).
	for _, id := range changed {
		fwd, rev := &s.arcs[2*id], &s.arcs[2*id+1]
		u, v := rev.to, fwd.to
		if f := rev.cap; f > 0 {
			excess[u] += f
			excess[v] -= f
		}
		fwd.cap = s.orig[id]
		rev.cap = 0
		if fwd.cap > 0 && fwd.cost+s.pot[u]-s.pot[v] < 0 {
			excess[u] -= fwd.cap
			excess[v] += fwd.cap
			rev.cap = fwd.cap
			fwd.cap = 0
		}
	}
	if err := s.augmentAll(excess, pf, st); err != nil {
		return 0, err
	}
	s.markSolved()
	st.Resolves++
	return s.TotalCost(), nil
}
