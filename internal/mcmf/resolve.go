// Incremental re-flow (drain-and-reroute), shared by the SSP engines.
//
// The D-phase solves the same network dozens of times with small cost
// and supply deltas between solves.  A warm full solve already skips
// Bellman–Ford, but it still resets every residual and reroutes the
// entire supply.  Resolve exploits the previous optimum instead:
//
//  1. the flow carried by each changed arc is drained back to its
//     endpoints (creating a local excess/deficit pair) and the arc's
//     residuals are restored to its configured capacity;
//  2. supply deltas against the last solved configuration are added to
//     the excess vector (so supply changes need no explicit
//     notification);
//  3. changed arcs whose new reduced cost is negative are saturated —
//     their full capacity is pushed, removing them from the residual
//     graph (their reverse arcs price positively by construction).
//     Unchanged arcs still satisfy reduced-cost optimality by the
//     previous certificate, so after this step the old potentials are
//     valid on the entire residual graph with no Bellman–Ford repair;
//  4. the resulting imbalance (typically a tiny fraction of the total
//     supply) is rerouted with ordinary shortest-path augmentations on
//     the residual graph — which may use reverse arcs, i.e. undo
//     earlier routing, so the repaired flow is exactly optimal for the
//     new configuration, not an approximation (certified by Verify,
//     asserted bit-equal to fresh solves by
//     TestResolveMatchesFreshRandom).
//
// One semantic difference from a full Solve: saturation prices
// negative-cost structures away instead of detecting them, so a
// configuration whose *configured* arcs close a negative-cost cycle of
// positive capacity re-flows to the true (finite, capacity-bounded)
// optimum rather than returning ErrNegativeCycle.  D-phase instances
// never contain such cycles (r = 0 is always feasible); callers that
// rely on the detection behaviour use Solve.
//
// # The work-estimate gate
//
// Re-flowing is not always cheaper: an iteration that moves many
// supplies (every D-phase round rewrites the objective coefficients)
// can cost more to repair than to re-solve warm.  The gate estimates
// both sides in "visited nodes" — the unit shortest-path searches are
// actually billed in — and hands over to the full solve when the
// repair estimate is larger.  Per-problem cost coefficients are
// learned online: every full run and every incremental run updates an
// exponential moving average of visited-nodes-per-augmentation on its
// side (Solver.ewmaFullVisits / ewmaResolveVisits), so the gate
// adapts to the network's real topology instead of a hardwired
// constant.  Until both averages are seeded the gate falls back to
// the static PR-3 heuristic (supply deltas weighted 64×, arc repairs
// 1×, against one augmentation per source) — pinned by
// TestResolveGateFallback.
package mcmf

// ewmaAlpha is the smoothing factor of the per-problem augmentation
// cost averages: a quarter of each run's fresh measurement, three
// quarters history — fast enough to track a mid-run regime change
// (e.g. the budget window collapsing), slow enough that one outlier
// round cannot flip the gate.
const ewmaAlpha = 0.25

// supplyDeltaWeight is the static gate's weight for a shifted supply:
// supply deltas pair arbitrary nodes and their augmentations can cross
// the whole network — measured ~40× the cost of a local arc repair on
// wide/shallow DAGs — so they carry a heavy weight until measured
// averages replace the estimate.
const supplyDeltaWeight = 64

// noteFullRun updates the full-solve cost average from one completed
// run: mark is the engine's counters before the run, now after.
func (s *Solver) noteFullRun(mark, now Stats) {
	s.ewmaFullVisits = ewmaUpdate(s.ewmaFullVisits, mark, now)
}

// noteResolveRun updates the incremental-repair cost average.
func (s *Solver) noteResolveRun(mark, now Stats) {
	s.ewmaResolveVisits = ewmaUpdate(s.ewmaResolveVisits, mark, now)
}

func ewmaUpdate(prev float64, mark, now Stats) float64 {
	augs := now.Augmentations - mark.Augmentations
	if augs <= 0 {
		return prev // nothing measured this run
	}
	sample := float64(now.Visited-mark.Visited) / float64(augs)
	if prev == 0 {
		return sample
	}
	return prev + ewmaAlpha*(sample-prev)
}

// resolveGate decides whether the incremental repair is worth running:
// it estimates the repair (one augmentation per drained flow-carrying
// arc, re-priced negative arc and shifted supply) against the warm
// full solve (one augmentation per source).  With seeded per-problem
// averages both sides are priced in measured visited nodes; otherwise
// the static heuristic applies.  Returns true to run incrementally.
func (s *Solver) resolveGate(changed []int32) bool {
	arcRepairs, supplyDeltas, srcs := 0, 0, 0
	for v := 0; v < s.n; v++ {
		if s.supply[v] > 0 {
			srcs++
		}
		if s.supply[v] != s.routed[v] {
			supplyDeltas++
		}
	}
	for _, id := range changed {
		fwd, rev := &s.arcs[2*id], &s.arcs[2*id+1]
		if rev.cap > 0 {
			arcRepairs++
		} else if s.orig[id] > 0 && fwd.cost+s.pot[rev.to]-s.pot[fwd.to] < 0 {
			arcRepairs++ // will saturate
		}
	}
	if s.ewmaFullVisits > 0 && s.ewmaResolveVisits > 0 {
		// Measured gate: arc repairs are local (the drain leaves the
		// deficit right at the arc's head) and bill at the measured
		// incremental rate; supply deltas pair arbitrary nodes, so
		// their reroutes look like full-solve augmentations.
		repair := float64(arcRepairs)*s.ewmaResolveVisits +
			float64(supplyDeltas)*s.ewmaFullVisits
		full := float64(srcs) * s.ewmaFullVisits
		return repair <= full
	}
	// Static fallback (the pre-measurement heuristic).
	return arcRepairs+supplyDeltaWeight*supplyDeltas <= srcs
}

// resolvePrep is the shared Resolve preamble: repairability and
// balance checks, the work-estimate gate, the supply diff and the
// drain-and-reprice of the changed arcs.  On success it returns the
// excess vector ready for augmentation; fallback=true means the
// caller must run its full Solve instead (counting the fallback).
// resolvePrep allocates nothing, preserving the warm zero-alloc
// guarantee of the serial engines.
func (s *Solver) resolvePrep(changed []int32) (excess []int64, fallback bool, err error) {
	if !s.repairable || s.topoDirty {
		return nil, true, nil
	}
	var sum int64
	for _, b := range s.supply {
		sum += b
	}
	if sum != 0 {
		return nil, false, ErrUnbalanced
	}
	// Hand over before touching any residuals when the estimated
	// repair exceeds the warm full solve; iterations whose deltas
	// quiesce come back to the incremental path on their own.
	if !s.resolveGate(changed) {
		return nil, true, nil
	}
	// Supply deltas against the routed snapshot.
	excess = s.excess[:s.n]
	for v := 0; v < s.n; v++ {
		excess[v] = s.supply[v] - s.routed[v]
	}
	// The drain below and the augmentations after it mutate residuals:
	// until markSolved re-certifies them, the flow is neither optimal
	// nor repairable (a failed resolve leaves partial routing behind,
	// which the next solve resets and the next resolve must not trust).
	s.solved = false
	s.repairable = false
	// Drain the changed arcs and restore their configured capacity
	// (reconciling any staged UpdateCapacity), then re-price: an arc
	// whose new reduced cost is negative is saturated so it leaves the
	// residual graph.  Draining twice is harmless, so duplicate IDs in
	// changed are allowed (the saturation is skipped the second time
	// because the forward residual is already empty only when the arc
	// re-prices negative, and re-running it is idempotent).
	for _, id := range changed {
		fwd, rev := &s.arcs[2*id], &s.arcs[2*id+1]
		u, v := rev.to, fwd.to
		if f := rev.cap; f > 0 {
			excess[u] += f
			excess[v] -= f
		}
		fwd.cap = s.orig[id]
		rev.cap = 0
		if fwd.cap > 0 && fwd.cost+s.pot[u]-s.pot[v] < 0 {
			excess[u] -= fwd.cap
			excess[v] += fwd.cap
			rev.cap = fwd.cap
			fwd.cap = 0
		}
	}
	return excess, false, nil
}

// resolveSSP implements Engine.Resolve for the SSP family.  full is
// the engine's own Solve, used when no repairable flow exists.
func resolveSSP(s *Solver, changed []int32, pf pathFinder, st *Stats, full func(*Solver) (float64, error)) (float64, error) {
	excess, fallback, err := s.resolvePrep(changed)
	if err != nil {
		return 0, err
	}
	if fallback {
		st.FullFallbacks++
		return full(s)
	}
	mark := *st
	if err := s.augmentAll(excess, pf, st); err != nil {
		return 0, err
	}
	s.markSolved()
	st.Resolves++
	s.noteResolveRun(mark, *st)
	return s.TotalCost(), nil
}
