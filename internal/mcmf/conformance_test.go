// Unified cross-engine conformance harness.
//
// Every registered engine runs the same table-driven suites — the
// 110-instance random equivalence suite, the warm-start suite, the
// incremental-resolve rounds, the degenerate shapes (zero-capacity
// cut, disconnected supply, zero total supply) and the worker-budget
// matrix {1,2,4,8} — so a new backend gets full coverage by
// registering, not by copying tests.  The scaffolding here (random
// instance builder, state capture/diff, fresh twins, random mutation
// batches) was previously duplicated across equivalence_test.go,
// parallel_test.go and resolve_test.go and is now shared.
//
// Equivalence levels: across *different* engines the guaranteed
// agreement is the optimal objective (min-cost flows are degenerate —
// equally optimal flows may differ per arc), each certified by
// Verify.  Within one engine, runs at different worker budgets must
// be bit-identical — flows, potentials, cost — which is the
// determinism contract of the parallelism-aware backends ("parallel",
// "cspar") and trivially holds for the serial ones.
package mcmf

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomFeasible constructs a random feasible instance: a
// high-capacity backbone chain 0→1→…→n−1 (bidirectional when all costs
// are non-negative) guarantees every supply/demand pair can route;
// random extra arcs (DAG-oriented when negative costs are allowed, so
// no negative cycles arise) create alternative routes the engines must
// price identically.  The backbone occupies the lowest arc IDs: n−1
// forward arcs, then n−1 reverse arcs unless negativeCosts (a reverse
// chain next to negative forward arcs could close a negative cycle, so
// there supply is always placed upstream of its demand).
func buildRandomFeasible(rng *rand.Rand, negativeCosts bool) *Solver {
	n := 4 + rng.Intn(37)
	s := New(n)
	for v := 0; v+1 < n; v++ {
		s.AddArc(v, v+1, 1_000_000, int64(rng.Intn(20)))
	}
	if !negativeCosts {
		for v := 0; v+1 < n; v++ {
			s.AddArc(v+1, v, 1_000_000, int64(rng.Intn(20)))
		}
	}
	m := n + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		lo := 0
		if negativeCosts {
			// DAG orientation only: negative arcs cannot close a cycle.
			if u > v {
				u, v = v, u
			}
			lo = -5
		}
		s.AddArc(u, v, int64(1+rng.Intn(200)), int64(lo+rng.Intn(60)))
	}
	for k := 0; k < 1+rng.Intn(5); k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if negativeCosts && a > b {
			a, b = b, a // forward-only backbone: route supply downstream
		}
		amt := int64(1 + rng.Intn(40))
		s.AddSupply(a, amt)
		s.AddSupply(b, -amt)
	}
	return s
}

// flowState captures everything a solve writes: per-arc flows, the
// node potentials and the optimal cost.
type flowState struct {
	cost  float64
	flows []int64
	pots  []int64
}

func captureState(s *Solver, cost float64) flowState {
	st := flowState{cost: cost}
	for id := 0; id < s.NumArcs(); id++ {
		st.flows = append(st.flows, s.Flow(id))
	}
	for v := 0; v < s.N(); v++ {
		st.pots = append(st.pots, s.Potential(v))
	}
	return st
}

func diffState(t *testing.T, tag string, want, got flowState) {
	t.Helper()
	if want.cost != got.cost {
		t.Fatalf("%s: cost %v != reference %v", tag, got.cost, want.cost)
	}
	for i := range want.flows {
		if want.flows[i] != got.flows[i] {
			t.Fatalf("%s: arc %d flow %d != reference %d", tag, i, got.flows[i], want.flows[i])
		}
	}
	for v := range want.pots {
		if want.pots[v] != got.pots[v] {
			t.Fatalf("%s: node %d potential %d != reference %d", tag, v, got.pots[v], want.pots[v])
		}
	}
}

// freshTwin builds a new solver with s's current configuration (arcs,
// configured capacities, costs, supplies) — the reference a resolved
// instance must match.
func freshTwin(s *Solver) *Solver {
	f := New(s.N())
	for v := 0; v < s.N(); v++ {
		f.SetSupply(v, s.Supply(v))
	}
	for id := 0; id < s.NumArcs(); id++ {
		u := int(s.arcs[2*id+1].to)
		v := int(s.arcs[2*id].to)
		f.AddArc(u, v, s.Capacity(id), s.Cost(id))
	}
	return f
}

// mutateRandom applies one random batch of arc-cost, arc-capacity and
// supply deltas to s and returns the changed arc IDs.
func mutateRandom(rng *rand.Rand, s *Solver, allowNegativeCosts bool) []int32 {
	var changed []int32
	narcs := s.NumArcs()
	for k := 0; k < 1+rng.Intn(6); k++ {
		id := rng.Intn(narcs)
		switch rng.Intn(3) {
		case 0:
			lo := 0
			if allowNegativeCosts {
				lo = -5
			}
			s.SetCost(id, int64(lo+rng.Intn(60)))
		case 1:
			s.UpdateCapacity(id, int64(rng.Intn(300)))
		default: // zero-capacity degenerate arc
			s.UpdateCapacity(id, 0)
		}
		changed = append(changed, int32(id))
	}
	// Supply deltas in balanced pairs (sometimes routing through the
	// same node, a no-op pair).
	for k := 0; k < rng.Intn(3); k++ {
		a, b := rng.Intn(s.N()), rng.Intn(s.N())
		amt := int64(rng.Intn(20))
		s.AddSupply(a, amt)
		s.AddSupply(b, -amt)
	}
	return changed
}

// conformanceBudgets is the worker-budget matrix every engine runs
// through (serial engines must ignore the setting; parallelism-aware
// ones must be bit-identical across it).
var conformanceBudgets = []int{1, 2, 4, 8}

// forEachEngine runs f as a subtest per registered engine.
func forEachEngine(t *testing.T, f func(t *testing.T, engine string)) {
	engines := EngineNames()
	if len(engines) < 5 {
		t.Fatalf("expected ≥5 registered engines, have %v", engines)
	}
	for _, name := range engines {
		name := name
		t.Run(name, func(t *testing.T) { f(t, name) })
	}
}

// newEngineInstance builds the seed's twin instance under the given
// engine and worker budget.
func newEngineInstance(t *testing.T, engine string, seed int64, negative bool, par int) *Solver {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst := buildRandomFeasible(rng, negative)
	inst.SetParallelism(par)
	if err := inst.SetEngine(engine); err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestConformanceRandom is the cross-engine equivalence gate: on 110
// randomized D-phase-shaped instances, every registered backend must
// find the same optimal cost as the "ssp" reference on an identical
// twin instance and pass the self-certifying Verify.
func TestConformanceRandom(t *testing.T) {
	const instances = 110
	ref := make([]float64, instances)
	for seed := int64(0); seed < instances; seed++ {
		inst := newEngineInstance(t, "ssp", seed, seed%3 == 0, 1)
		cost, err := inst.Solve()
		if err != nil {
			t.Fatalf("seed %d: ssp reference: %v", seed, err)
		}
		ref[seed] = cost
	}
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(0); seed < instances; seed++ {
			inst := newEngineInstance(t, engine, seed, seed%3 == 0, 1)
			cost, err := inst.Solve()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if cost != ref[seed] {
				t.Fatalf("seed %d: optimal cost %v != ssp reference %v", seed, cost, ref[seed])
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("seed %d: certificate: %v", seed, err)
			}
			if st := inst.EngineStats(); st.Solves != 1 {
				t.Fatalf("seed %d: %d solves reported, want 1", seed, st.Solves)
			}
		}
	})
}

// TestConformanceWarm is the warm-start suite: solve, mutate costs,
// capacities and supplies in place, re-solve through the Reset
// warm-start path, and the cost must match a fresh solver built from
// the mutated configuration.
func TestConformanceWarm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			warm := buildRandomFeasible(rng, false)
			if err := warm.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(); err != nil {
				t.Fatalf("seed %d: initial solve: %v", seed, err)
			}
			n := warm.N()
			for id := 0; id < warm.NumArcs(); id++ {
				if rng.Intn(3) == 0 {
					warm.SetCost(id, int64(rng.Intn(80)))
				}
			}
			for k := 0; k < 3; k++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				amt := int64(rng.Intn(25))
				warm.AddSupply(a, amt)
				warm.AddSupply(b, -amt)
			}
			fresh := freshTwin(warm)
			warm.Reset()
			warmCost, warmErr := warm.Solve()
			freshCost, freshErr := fresh.Solve()
			if (warmErr == nil) != (freshErr == nil) {
				t.Fatalf("seed %d: warm err %v, fresh err %v", seed, warmErr, freshErr)
			}
			if warmErr != nil {
				continue
			}
			if warmCost != freshCost {
				t.Fatalf("seed %d: warm cost %v != fresh cost %v", seed, warmCost, freshCost)
			}
			if err := warm.Verify(); err != nil {
				t.Fatalf("seed %d: warm certificate: %v", seed, err)
			}
		}
	})
}

// TestConformanceResolve drives every engine through random mutation
// rounds via ResolveChanged: each round must reach exactly the optimal
// cost of a fresh solve on the mutated configuration — including
// degenerate rounds where capacities drop to zero and the instance
// goes infeasible (both paths must agree on the error too).
func TestConformanceResolve(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			negative := seed%4 == 0
			s := buildRandomFeasible(rng, negative)
			if err := s.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Solve(); err != nil {
				t.Fatalf("seed %d: initial solve: %v", seed, err)
			}
			for round := 0; round < 8; round++ {
				// Keep the configured graph negative-cycle-free: new
				// negative costs only on instances whose arcs are all
				// DAG-oriented (see buildRandomFeasible).
				changed := mutateRandom(rng, s, negative)
				gotCost, gotErr := s.ResolveChanged(changed)
				wantCost, wantErr := freshTwin(s).Solve()
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d round %d: resolve err %v, fresh err %v",
						seed, round, gotErr, wantErr)
				}
				if gotErr != nil {
					continue // infeasible round: next resolve falls back
				}
				if gotCost != wantCost {
					t.Fatalf("seed %d round %d: resolve cost %v != fresh cost %v",
						seed, round, gotCost, wantCost)
				}
				if err := s.Verify(); err != nil {
					t.Fatalf("seed %d round %d: resolve certificate: %v", seed, round, err)
				}
			}
		}
	})
}

// TestConformanceDegenerate runs every engine through the fixed
// degenerate shapes that broke the PR-3 resolve work: a flow-carrying
// arc cut to zero capacity (must reroute), supply shifted onto a
// disconnected node (must report infeasible, then recover), and zero
// total supply (must route nothing at zero cost).
func TestConformanceDegenerate(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		t.Run("zerocap", func(t *testing.T) {
			s := New(3)
			cheapA := s.AddArc(0, 1, 10, 1)
			cheapB := s.AddArc(1, 2, 10, 1)
			direct := s.AddArc(0, 2, 10, 9)
			s.SetSupply(0, 4)
			s.SetSupply(2, -4)
			if err := s.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			if cost, err := s.Solve(); err != nil || cost != 8 {
				t.Fatalf("initial: cost=%v err=%v, want 8", cost, err)
			}
			s.UpdateCapacity(cheapB, 0)
			cost, err := s.ResolveChanged([]int32{int32(cheapB)})
			if err != nil || cost != 36 {
				t.Fatalf("after cut: cost=%v err=%v, want 36", cost, err)
			}
			if s.Flow(direct) != 4 || s.Flow(cheapA) != 0 || s.Flow(cheapB) != 0 {
				t.Fatalf("flows %d/%d/%d, want 0/0/4 rerouted onto the direct arc",
					s.Flow(cheapA), s.Flow(cheapB), s.Flow(direct))
			}
			if err := s.Verify(); err != nil {
				t.Fatal(err)
			}
		})
		t.Run("disconnected", func(t *testing.T) {
			s := New(4) // node 3 is isolated
			s.AddArc(0, 1, 10, 2)
			s.AddArc(1, 2, 10, 2)
			s.SetSupply(0, 3)
			s.SetSupply(2, -3)
			if err := s.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Solve(); err != nil {
				t.Fatal(err)
			}
			s.SetSupply(2, 0)
			s.SetSupply(3, -3)
			if _, err := s.ResolveChanged(nil); err != ErrInfeasible {
				t.Fatalf("resolve on disconnected demand: err=%v, want ErrInfeasible", err)
			}
			s.SetSupply(2, -3)
			s.SetSupply(3, 0)
			cost, err := s.ResolveChanged(nil)
			if err != nil || cost != 12 {
				t.Fatalf("repaired resolve: cost=%v err=%v, want 12", cost, err)
			}
			if err := s.Verify(); err != nil {
				t.Fatal(err)
			}
		})
		t.Run("zerosupply", func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := buildRandomFeasible(rng, true)
			for v := 0; v < s.N(); v++ {
				s.SetSupply(v, 0)
			}
			if err := s.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			cost, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if cost != 0 {
				t.Fatalf("zero total supply: cost %v, want 0 (no negative cycles configured)", cost)
			}
			if err := s.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	})
}

// TestConformanceWorkerBudgets pins the determinism contract on every
// engine: the same instance solved and incrementally resolved at
// worker budgets 1, 2, 4 and 8 must produce byte-identical flows,
// potentials and costs.  Serial engines must ignore the budget;
// "parallel" and "cspar" must neutralize it by construction.
func TestConformanceWorkerBudgets(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		for seed := int64(1); seed <= 6; seed++ {
			var ref flowState
			var refResolve flowState
			for i, par := range conformanceBudgets {
				inst := NewGridInstance(12, 24, seed)
				inst.SetParallelism(par)
				if err := inst.SetEngine(engine); err != nil {
					t.Fatal(err)
				}
				cost, err := inst.Solve()
				if err != nil {
					t.Fatalf("seed %d par %d: %v", seed, par, err)
				}
				got := captureState(inst, cost)
				// One incremental round on top: budget-independence must
				// survive the resolve path too.
				mrng := rand.New(rand.NewSource(seed + 500))
				changed := mutateRandom(mrng, inst, false)
				rcost, rerr := inst.ResolveChanged(changed)
				var rgot flowState
				if rerr == nil {
					rgot = captureState(inst, rcost)
					if err := inst.Verify(); err != nil {
						t.Fatalf("seed %d par %d: resolve certificate: %v", seed, par, err)
					}
				}
				if i == 0 {
					ref, refResolve = got, rgot
					continue
				}
				diffState(t, fmt.Sprintf("seed %d budget %d solve", seed, par), ref, got)
				if rerr == nil {
					diffState(t, fmt.Sprintf("seed %d budget %d resolve", seed, par), refResolve, rgot)
				}
			}
		}
	})
}

// TestConformanceStatsReset pins the Reset contract on every engine:
// per-problem work counters (Visited, SpecCommits, SpecWasted) are
// zeroed by Solver.Reset so back-to-back problems on a reused solver
// report per-problem work, while lifetime counters (Solves) keep
// accumulating.
func TestConformanceStatsReset(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine string) {
		s := NewGridInstance(8, 6, 3)
		s.SetParallelism(4)
		if err := s.SetEngine(engine); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		first := s.EngineStats()
		if first.Visited == 0 {
			t.Fatalf("first solve reports no visited work: %+v", first)
		}
		s.Reset()
		if st := s.EngineStats(); st.Visited != 0 || st.SpecCommits != 0 || st.SpecWasted != 0 {
			t.Fatalf("Reset did not clear per-problem work counters: %+v", st)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		second := s.EngineStats()
		// The re-solve warm-starts from the kept potentials, so it does
		// at most the first run's work; a cumulative leak would report
		// strictly more than the first run.
		if second.Visited == 0 || second.Visited > first.Visited {
			t.Fatalf("re-solve of the identical problem visited %d, first run %d — cumulative leak?",
				second.Visited, first.Visited)
		}
		if second.Solves != first.Solves+1 {
			t.Fatalf("lifetime Solves counter %d, want %d (must survive Reset)", second.Solves, first.Solves+1)
		}
	})
}

// FuzzEngineAgreement drives a fuzzer-chosen engine pair through an
// identical interleaved Solve/ResolveChanged call sequence over twin
// instances (plus an isolated node for disconnected-supply shapes) and
// asserts agreement at every step: identical objectives and error
// outcomes for any pair, and bit-identical flows for pairs that share
// a determinism contract (an engine against itself at different worker
// budgets, and "parallel" against "ssp").  The seed corpus covers the
// degenerates that broke the PR-3 resolve work: zero-capacity cuts and
// supply shifted onto a disconnected node.
func FuzzEngineAgreement(f *testing.F) {
	f.Add([]byte{0x01, 0x20, 0x13}, int64(1), uint8(4), uint8(1))
	f.Add([]byte{0x02, 0x02, 0x00, 0x05, 0x02, 0x01}, int64(3), uint8(2), uint8(7))  // zero-capacity rounds
	f.Add([]byte{0x03, 0x00, 0x07, 0x03, 0x01, 0x02}, int64(5), uint8(8), uint8(12)) // disconnected-supply rounds
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17}, int64(42), uint8(3), uint8(19))
	f.Fuzz(func(t *testing.T, deltas []byte, seed int64, pair uint8, pars uint8) {
		engines := EngineNames()
		nameA := engines[int(pair)%len(engines)]
		nameB := engines[(int(pair)/len(engines))%len(engines)]
		parA := int(pars)%4 + 1
		parB := int(pars/4)%4 + 1

		build := func(name string, par int) (*Solver, int) {
			rng := rand.New(rand.NewSource(seed))
			s := buildRandomFeasible(rng, false)
			iso := s.AddNode() // disconnected: no arcs ever touch it
			s.SetParallelism(par)
			if err := s.SetEngine(name); err != nil {
				t.Fatal(err)
			}
			return s, iso
		}
		a, isoA := build(nameA, parA)
		b, _ := build(nameB, parB)
		// Bit-level agreement holds within an engine's determinism
		// contract; across algorithm families only the objective is
		// pinned (optimal flows are degenerate).
		bitwise := nameA == nameB ||
			(nameA == "ssp" && nameB == "parallel") || (nameA == "parallel" && nameB == "ssp")

		check := func(step string, costA, costB float64, errA, errB error) {
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: %s err %v, %s err %v", step, nameA, errA, nameB, errB)
			}
			if errA != nil {
				return
			}
			if costA != costB {
				t.Fatalf("%s: %s cost %v != %s cost %v", step, nameA, costA, nameB, costB)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%s: %s certificate: %v", step, nameA, err)
			}
			if err := b.Verify(); err != nil {
				t.Fatalf("%s: %s certificate: %v", step, nameB, err)
			}
			if bitwise {
				diffState(t, step, captureState(a, costA), captureState(b, costB))
			}
		}

		costA, errA := a.Solve()
		costB, errB := b.Solve()
		check("initial solve", costA, costB, errA, errB)

		narcs := a.NumArcs()
		var changed []int32
		for i := 0; i+2 < len(deltas); i += 3 {
			id := int(deltas[i]) % narcs
			switch deltas[i+1] % 5 {
			case 0:
				a.SetCost(id, int64(deltas[i+2]))
				b.SetCost(id, int64(deltas[i+2]))
				changed = append(changed, int32(id))
			case 1:
				a.UpdateCapacity(id, int64(deltas[i+2])*4)
				b.UpdateCapacity(id, int64(deltas[i+2])*4)
				changed = append(changed, int32(id))
			case 2: // zero-capacity degenerate
				a.UpdateCapacity(id, 0)
				b.UpdateCapacity(id, 0)
				changed = append(changed, int32(id))
			case 3: // shift supply onto the disconnected node
				amt := int64(deltas[i+2] % 8)
				v := int(deltas[i+2]) % a.N()
				if v == isoA {
					v = 0
				}
				a.AddSupply(isoA, amt)
				a.AddSupply(v, -amt)
				b.AddSupply(isoA, amt)
				b.AddSupply(v, -amt)
			default: // interleave a full warm solve between resolves
				costA, errA = a.Solve()
				costB, errB = b.Solve()
				check(fmt.Sprintf("interleaved solve @%d", i), costA, costB, errA, errB)
				changed = changed[:0]
				continue
			}
			costA, errA = a.ResolveChanged(changed)
			costB, errB = b.ResolveChanged(changed)
			check(fmt.Sprintf("resolve @%d", i), costA, costB, errA, errB)
			changed = changed[:0]
		}
	})
}
