// Serial cost-scaling driver (Goldberg–Tarjan).  The paper's
// complexity claim for the D-phase — O(|V|·|E|·log log |V|) — comes
// from the scaling family of algorithms [9]; this engine provides the
// classic sequential variant so the flow engines can be compared on
// D-phase-shaped instances (BenchmarkFlowEngines) and cross-checked
// for equal optimal cost (the conformance suite).
//
// The ε-scaling machinery (scaled costs, admissibility, price
// refinement, the phase schedule, the warm-start resolve) lives in
// scalingcore.go and is shared with the bulk-synchronous "cspar"
// driver; this file contributes only the discharge strategy — the
// textbook sequential loop: a LIFO stack of active vertices, each
// discharged fully (push along admissible current arcs, relabel when
// the arc list is exhausted) before the next is popped.
package mcmf

// costScalingEngine adapts the serial cost-scaling driver to the
// Engine interface.
type costScalingEngine struct {
	engineCore
	sc scalingState
}

func (e *costScalingEngine) Name() string { return "costscaling" }

func (e *costScalingEngine) Solve(s *Solver) (float64, error) {
	mark := e.st
	cost, err := solveScalingFull(s, &e.sc, &e.st, func(excess []int64) error {
		return refineSerial(s, &e.sc, excess, &e.st)
	})
	if err == nil {
		e.st.Solves++
		s.noteFullRun(mark, e.st)
	}
	return cost, err
}

// Resolve repairs the previous optimal flow incrementally: the exact
// potentials finishScaling recovered double as warm duals, so the
// shared SSP drain-and-reroute serves the repair (see scalingcore.go
// on why a refinement-pass repair was measured and rejected), and a
// full cost-scaling solve backs it up when the work-estimate gate
// prefers one.
func (e *costScalingEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	return resolveSSP(s, changed, heapFinder{}, &e.st, e.Solve)
}

// SolveCostScaling computes a minimum-cost feasible flow with the
// serial cost-scaling push-relabel method.  It is interchangeable with
// Solve: same inputs, same optimality guarantees (Verify certifies the
// result; potentials are rescaled back to cost units).  It always runs
// the serial cost-scaling algorithm regardless of the engine
// configured with SetEngine (the "costscaling" engine is this
// algorithm behind the Engine interface).
func (s *Solver) SolveCostScaling() (float64, error) {
	var sc scalingState
	var st Stats
	return solveScalingFull(s, &sc, &st, func(excess []int64) error {
		return refineSerial(s, &sc, excess, &st)
	})
}

// refineSerial discharges all active vertices at sc.eps with the
// sequential LIFO strategy: saturate admissible arcs, then pop active
// vertices off a stack and discharge each fully, walking its
// current-arc cursor and relabelling (price refinement) when the
// cursor exhausts the arc list.  One Visited is billed per discharge
// — the work measure feeding the solver's EWMA resolve gate (see
// solveScalingFull on the gate's counter units).
func refineSerial(s *Solver, sc *scalingState, excess []int64, st *Stats) error {
	n := s.n
	sc.saturate(s, excess)
	active := sc.active[:0]
	for v := 0; v < n; v++ {
		sc.inActive[v] = false
		sc.cur[v] = s.csrStart[v]
		if excess[v] > 0 {
			sc.inActive[v] = true
			active = append(active, int32(v))
		}
	}
	guard := 0
	for len(active) > 0 {
		guard++
		if guard > sc.maxOps {
			sc.active = active[:0]
			return ErrInfeasible
		}
		if err := s.pollAbort(); err != nil {
			sc.active = active[:0]
			return err
		}
		v := active[len(active)-1]
		active = active[:len(active)-1]
		sc.inActive[v] = false
		st.Visited++
		// Discharge v fully.
		for excess[v] > 0 {
			if sc.cur[v] >= s.csrStart[v+1] {
				// Relabel: lower v's price just enough to create one
				// admissible arc.
				val, ok := sc.relabelValue(s, v)
				if !ok {
					sc.active = active[:0]
					return ErrInfeasible
				}
				if val < priceFloor {
					sc.active = active[:0]
					return ErrPriceRange
				}
				sc.pot[v] = val
				sc.cur[v] = s.csrStart[v]
				continue
			}
			ai := s.csrArc[sc.cur[v]]
			a := &s.arcs[ai]
			if a.cap > 0 && sc.cost[ai]+sc.pot[v]-sc.pot[a.to] < 0 {
				amt := excess[v]
				if a.cap < amt {
					amt = a.cap
				}
				excess[v] -= amt
				excess[a.to] += amt
				a.cap -= amt
				s.arcs[ai^1].cap += amt
				if to := a.to; !sc.inActive[to] && excess[to] > 0 {
					sc.inActive[to] = true
					active = append(active, to)
				}
			} else {
				sc.cur[v]++
			}
		}
	}
	sc.active = active[:0]
	return nil
}
