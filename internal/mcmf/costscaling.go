// Cost-scaling minimum-cost flow (Goldberg–Tarjan).  The paper's
// complexity claim for the D-phase — O(|V|·|E|·log log |V|) — comes
// from the scaling family of algorithms [9]; this file provides one so
// the flow engines can be compared on D-phase-shaped instances
// (BenchmarkFlowEngines in equivalence_test.go) and cross-checked for
// equal optimal cost (TestEnginesAgreeRandom).
//
// The algorithm maintains an ε-optimal pseudoflow: costs are scaled by
// (n+1) so that 1-optimality implies exact optimality for integer
// costs; each refine phase halves ε, saturates every negative-reduced-
// cost arc, and discharges active (positive-excess) vertices with
// push/relabel operations.
package mcmf

import "math"

// costScalingEngine adapts the cost-scaling solve to the Engine
// interface.  It has no incremental path: push-relabel refinement
// starts every solve from the unsolved residual configuration, so
// Resolve falls back to a full Solve (counted in Stats.FullFallbacks).
type costScalingEngine struct {
	st Stats
}

func (e *costScalingEngine) Name() string { return "costscaling" }

func (e *costScalingEngine) Stats() Stats { return e.st }

func (e *costScalingEngine) Solve(s *Solver) (float64, error) {
	cost, err := s.SolveCostScaling()
	if err == nil {
		e.st.Solves++
	}
	return cost, err
}

func (e *costScalingEngine) Resolve(s *Solver, changed []int32) (float64, error) {
	e.st.FullFallbacks++
	return e.Solve(s)
}

// SolveCostScaling computes a minimum-cost feasible flow with the
// cost-scaling push-relabel method.  It is interchangeable with Solve:
// same inputs, same optimality guarantees (Verify certifies the result;
// potentials are rescaled back to cost units).  It always runs the
// cost-scaling algorithm regardless of the engine configured with
// SetEngine (the "costscaling" engine is this method behind the
// Engine interface).
func (s *Solver) SolveCostScaling() (float64, error) {
	var sum int64
	for _, b := range s.supply {
		sum += b
	}
	if sum != 0 {
		return 0, ErrUnbalanced
	}
	s.prepare()
	n := s.n
	// Feasibility (capacity) check first: run a plain max-flow-style
	// check by attempting the scaling loop and verifying excesses clear;
	// negative cycles do not affect termination here (capacities bound
	// everything), so detect infeasibility at the end.

	// Scale costs by n+1 (ε-optimality with ε<1/(n+1)·scaled ⇒ optimal).
	alpha := int64(n + 1)
	cost := make([]int64, len(s.arcs))
	var maxC int64
	for i := range s.arcs {
		cost[i] = s.arcs[i].cost * alpha
		if c := cost[i]; c > maxC {
			maxC = c
		} else if -c > maxC {
			maxC = -c
		}
	}
	// Start from the unsolved residual configuration; refine phases
	// mutate it from here on.
	s.resetResiduals()
	s.flowDirty = true
	s.repairable = false
	pot := make([]int64, n) // scaled potentials
	excess := append([]int64(nil), s.supply...)

	eps := maxC
	if eps == 0 {
		eps = 1
	}
	active := make([]int32, 0, n)
	inActive := make([]bool, n)
	pushActive := func(v int32) {
		if !inActive[v] && excess[v] > 0 {
			inActive[v] = true
			active = append(active, v)
		}
	}

	// Current-arc pointers: absolute cursors into csrArc.
	cur := make([]int32, n)

	for {
		// --- refine(ε) ---
		// Saturate arcs with negative reduced cost.
		for v := 0; v < n; v++ {
			for _, ai := range s.arcsOf(v) {
				a := &s.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if cost[ai]+pot[v]-pot[a.to] < 0 {
					// push full residual
					excess[v] -= a.cap
					excess[a.to] += a.cap
					s.arcs[ai^1].cap += a.cap
					a.cap = 0
				}
			}
		}
		active = active[:0]
		for v := 0; v < n; v++ {
			inActive[v] = false
			cur[v] = s.csrStart[v]
			if excess[v] > 0 {
				inActive[v] = true
				active = append(active, int32(v))
			}
		}
		// Discharge loop.
		guard := 0
		maxOps := 40 * n * n * (bits64(maxC) + 2) // generous safety bound
		for len(active) > 0 {
			guard++
			if guard > maxOps {
				return 0, ErrInfeasible
			}
			v := active[len(active)-1]
			active = active[:len(active)-1]
			inActive[v] = false
			// Discharge v fully.
			for excess[v] > 0 {
				if cur[v] >= s.csrStart[v+1] {
					// Relabel: lower v's potential just enough to create
					// one admissible arc.
					best := int64(math.MinInt64)
					hasResidual := false
					for _, ai := range s.arcsOf(int(v)) {
						a := &s.arcs[ai]
						if a.cap <= 0 {
							continue
						}
						hasResidual = true
						if nv := pot[a.to] - cost[ai] - eps; nv > best {
							best = nv
						}
					}
					if !hasResidual {
						return 0, ErrInfeasible
					}
					pot[v] = best
					cur[v] = s.csrStart[v]
					continue
				}
				ai := s.csrArc[cur[v]]
				a := &s.arcs[ai]
				if a.cap > 0 && cost[ai]+pot[v]-pot[a.to] < 0 {
					amt := excess[v]
					if a.cap < amt {
						amt = a.cap
					}
					excess[v] -= amt
					excess[a.to] += amt
					a.cap -= amt
					s.arcs[ai^1].cap += amt
					pushActive(a.to)
				} else {
					cur[v]++
				}
			}
		}
		if eps == 1 {
			break
		}
		eps /= 2
		if eps < 1 {
			eps = 1
		}
	}

	// Check all excesses cleared (feasibility).
	for v := 0; v < n; v++ {
		if excess[v] != 0 {
			return 0, ErrInfeasible
		}
	}
	// The scaled potentials certify ε=1 optimality in scaled units,
	// which implies exact optimality of the flow; recompute exact
	// potentials in cost units with Bellman–Ford on the residual graph
	// for the Verify certificate (zero-seeded: the optimal residual
	// graph has no negative cycles).
	for i := 0; i < n; i++ {
		s.pot[i] = 0
	}
	if err := s.bellmanFord(); err != nil {
		return 0, err
	}
	s.markSolved()
	return s.TotalCost(), nil
}

func bits64(x int64) int {
	b := 0
	for x > 0 {
		x >>= 1
		b++
	}
	return b
}
