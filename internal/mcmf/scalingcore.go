// Shared ε-scaling core of the cost-scaling engines.
//
// Goldberg–Tarjan cost scaling maintains an ε-optimal pseudoflow:
// costs are scaled by α = n+1 so that 1-optimality in scaled units
// implies exact optimality for integer costs; each refine phase halves
// ε, saturates every negative-reduced-cost arc, and discharges active
// (positive-excess) vertices with push/relabel operations until no
// excess remains.
//
// This file holds everything the two drivers share — the scaled-cost
// setup with its price-range guard, the admissible-arc saturation
// sweep, the relabel (price refinement) computation, the ε phase
// schedule, and the exact-potential recovery — while the discharge
// strategy itself is the driver's choice:
//
//	costscaling.go  serial LIFO discharge (the classic sequential loop)
//	cspar.go        bulk-synchronous super-steps: all active vertices
//	                plan pushes/relabels against frozen prices (in
//	                parallel across the internal/par pool), then the
//	                plans are applied in fixed vertex-index order
//
// Both drivers share the same incremental path: the solver-level
// drain-and-reprice of resolvePrep leaves a residual graph whose
// exact potentials (the prior solve's duals) still certify
// non-negative reduced costs, and the local imbalance is rerouted
// with shortest-path augmentations on those warm potentials
// (resolveSSP) — not with a refinement pass.  The refinement-pass
// design was built and measured first: a single ε=1 pass from the
// scaled prior prices is exact but pseudo-polynomial in the cost
// magnitude (push/relabel digs price valleys in ε-sized steps across
// terrain integerized at 1e6 — measured 9.5 s per D-phase resolve
// round against 0.1 s for a warm full solve on grid40x25), and a full
// ε descent from maxC regains polynomiality but destroys the warm
// prices' locality (measured ~85% of a fresh solve's discharge work
// per round).  Shortest-path reroute on the kept prices does the same
// repair in microseconds and maintains exact potentials as it goes;
// see EXPERIMENTS.md "Cost-scaling resolve".
package mcmf

import "errors"

// ErrPriceRange is returned by the cost-scaling engines when the
// scaled costs (α·cost with α = n+1) would not fit int64, or when the
// price development during refinement reaches the runtime floor
// (priceFloor): rather than silently wrapping int64 arithmetic, the
// solve refuses.  The SSP-family engines have no such limit; the
// auto-calibration probe simply skips scaling candidates that report
// this.
var ErrPriceRange = errors.New("mcmf: cost magnitude exceeds the cost-scaling price range")

// priceFloor is the runtime price guard: prices start at zero and
// only decrease, and every reduced-cost test adds two prices to a
// scaled cost, so holding prices above −inf/2 (with scaled costs
// bounded by inf in prepare) keeps all arithmetic comfortably inside
// int64.  The worst-case a-priori bound (~3·n·ε_start) would reject
// most large warm instances that never come near the limit, so the
// guard is enforced where prices actually move — at relabels.
const priceFloor = -(inf / 2)

// relabelNone marks a relabel plan with no residual arc to price
// against — applied only if the merge phase finds none either, in
// which case the vertex's excess can never drain (ErrInfeasible).
// Real relabel candidates are bounded below by priceFloor − |cost| −
// ε ≥ −2.5·inf, so −3·inf can never collide with one.
const relabelNone = -3 * inf

// scalingState is the reusable scratch of one cost-scaling driver:
// scaled costs and prices plus the active-set bookkeeping.  Engines
// own one each (SolveCostScaling allocates a transient one), so all
// buffers survive between solves on a topology.
type scalingState struct {
	alpha int64   // cost scale α = n+1
	eps   int64   // current phase ε (scaled units)
	maxC  int64   // max |scaled cost|
	cost  []int64 // scaled arc costs, index-parallel to Solver.arcs
	pot   []int64 // scaled node prices
	cur   []int32 // current-arc cursors (serial discharge driver)
	// active/inActive implement the serial driver's LIFO stack and the
	// BSP driver's per-super-step active list.
	active   []int32
	inActive []bool
	maxOps   int // per-refine discharge guard
}

// prepare sizes the scratch for the solver's current topology and
// recomputes the scaled costs (arc costs may change between solves).
// It fails with ErrPriceRange when the price development could
// overflow int64.
func (sc *scalingState) prepare(s *Solver) error {
	n := s.n
	sc.alpha = int64(n + 1)
	var maxAbs int64
	for i := range s.arcs {
		c := s.arcs[i].cost
		if c < 0 {
			c = -c
		}
		if c > maxAbs {
			maxAbs = c
		}
	}
	// Scaled costs must fit the |cost| ≤ inf budget the price-floor
	// arithmetic assumes (see priceFloor); the floor itself is checked
	// at relabel time, where prices actually develop.
	if maxAbs > int64(inf)/sc.alpha {
		return ErrPriceRange
	}
	if cap(sc.cost) < len(s.arcs) {
		sc.cost = make([]int64, len(s.arcs))
	}
	sc.cost = sc.cost[:len(s.arcs)]
	sc.maxC = 0
	for i := range s.arcs {
		c := s.arcs[i].cost * sc.alpha
		sc.cost[i] = c
		if c < 0 {
			c = -c
		}
		if c > sc.maxC {
			sc.maxC = c
		}
	}
	if cap(sc.pot) < n {
		sc.pot = make([]int64, n)
		sc.cur = make([]int32, n)
		sc.inActive = make([]bool, n)
	}
	sc.pot = sc.pot[:n]
	sc.cur = sc.cur[:n]
	sc.inActive = sc.inActive[:n]
	sc.maxOps = 40 * n * n * (bits64(sc.maxC) + 2) // generous safety bound
	return nil
}

func bits64(x int64) int {
	b := 0
	for x > 0 {
		x >>= 1
		b++
	}
	return b
}

// saturate pushes full residual capacity along every arc with negative
// scaled reduced cost — the admissibility sweep opening each refine
// phase.  Deterministic: vertices ascending, arcs in CSR order.
func (sc *scalingState) saturate(s *Solver, excess []int64) {
	for v := 0; v < s.n; v++ {
		pv := sc.pot[v]
		for _, ai := range s.arcsOf(v) {
			a := &s.arcs[ai]
			if a.cap <= 0 {
				continue
			}
			if sc.cost[ai]+pv-sc.pot[a.to] < 0 {
				excess[v] -= a.cap
				excess[a.to] += a.cap
				s.arcs[ai^1].cap += a.cap
				a.cap = 0
			}
		}
	}
}

// relabelValue computes the price-refinement target of vertex v: the
// highest price at which some residual arc out of v becomes admissible,
// max over residual arcs of pot(to) − cost − ε.  ok is false when v has
// no residual arc at all (its excess can never drain).
func (sc *scalingState) relabelValue(s *Solver, v int32) (val int64, ok bool) {
	val = relabelNone
	for _, ai := range s.arcsOf(int(v)) {
		a := &s.arcs[ai]
		if a.cap <= 0 {
			continue
		}
		ok = true
		if nv := sc.pot[a.to] - sc.cost[ai] - sc.eps; nv > val {
			val = nv
		}
	}
	return val, ok
}

// phaseSchedule runs refine over the standard ε halving schedule from
// maxC down to 1.  refine discharges all active vertices at sc.eps.
func (sc *scalingState) phaseSchedule(refine func() error) error {
	eps := sc.maxC
	if eps == 0 {
		eps = 1
	}
	for {
		sc.eps = eps
		if err := refine(); err != nil {
			return err
		}
		if eps == 1 {
			return nil
		}
		eps /= 2
		if eps < 1 {
			eps = 1
		}
	}
}

// solveScalingFull is the full-solve skeleton shared by both drivers:
// balance check, scratch preparation, residual reset, zeroed prices,
// the ε phase schedule, and the finish (feasibility check, exact
// potentials, solved-state bookkeeping).
//
// Counter units: refine drivers bill one Visited per discharge
// operation, and the skeleton bills one Augmentation per supply
// source routed — so the solver's EWMA gate (ewmaFullVisits =
// visited/augmentations) prices a scaling full solve per source, the
// same currency the SSP engines use, and the shared resolve gate can
// weigh a Dijkstra repair against a scaling re-solve honestly.
func solveScalingFull(s *Solver, sc *scalingState, st *Stats, refine func(excess []int64) error) (float64, error) {
	var sum int64
	srcs := int64(0)
	for _, b := range s.supply {
		sum += b
		if b > 0 {
			srcs++
		}
	}
	if sum != 0 {
		return 0, ErrUnbalanced
	}
	s.prepare()
	if err := sc.prepare(s); err != nil {
		return 0, err
	}
	// Start from the unsolved residual configuration; refine phases
	// mutate it from here on.
	s.resetResiduals()
	s.flowDirty = true
	s.repairable = false
	for i := range sc.pot {
		sc.pot[i] = 0
	}
	if len(s.excess) < s.n {
		s.excess = make([]int64, s.n)
	}
	excess := s.excess[:s.n]
	copy(excess, s.supply)
	if err := sc.phaseSchedule(func() error { return refine(excess) }); err != nil {
		return 0, err
	}
	st.Augmentations += srcs
	return finishScaling(s, st, excess)
}

// finishScaling closes a scaling run: feasibility (all excesses
// cleared), exact potentials in cost units for the Verify certificate
// (zero-seeded Bellman–Ford on the optimal residual graph, which has
// no negative cycles), and the solved-state bookkeeping.  The exact
// potentials double as warm duals: they are what lets ResolveChanged
// repair the flow with shortest-path augmentations later.
func finishScaling(s *Solver, st *Stats, excess []int64) (float64, error) {
	for v := 0; v < s.n; v++ {
		if excess[v] != 0 {
			return 0, ErrInfeasible
		}
	}
	for i := 0; i < s.n; i++ {
		s.pot[i] = 0
	}
	st.BellmanFords++
	if err := s.bellmanFord(); err != nil {
		return 0, err
	}
	s.markSolved()
	return s.TotalCost(), nil
}
