// Cancellation, budgets and graceful engine degradation.
//
// Every engine inner loop polls Solver.pollAbort at its natural
// operation granularity — one shortest-path augmentation (ssp, dial),
// one Bellman–Ford round, one discharge (costscaling), one BSP
// super-step (cspar), one speculation round (parallel).  The poll
// generalizes the calibration probe's errProbeBudget mid-solve abort
// into a single abort funnel with four sources:
//
//   - a context.Context installed with SetContext (→ ErrCanceled),
//   - a wall-clock deadline installed with SetDeadline
//     (→ ErrBudgetExhausted),
//   - a cumulative flow-work budget installed with SetWorkBudget
//     (→ ErrBudgetExhausted),
//   - a test/fault poll hook installed with SetPollHook (returns
//     whatever the hook returns; internal/fault injects through it).
//
// When none of these is armed the poll is a single predictable branch
// on a cached bool — measured in BenchmarkDPhaseResolve (the warm
// paths stay allocation-free and within the CI benchmark gates).
//
// # Abort safety
//
// Solves mutate residual capacities and potentials in place, so an
// abort mid-solve would otherwise leave the Solver in a state whose
// next solve — while still correct — could follow a different
// (equally optimal) trajectory than a never-aborted twin.  To keep
// cancellation invisible, the engine wrapper snapshots the mutable
// solve state (residual capacities, potentials, the
// solved/repairable/flowDirty flags, and engine-adaptive state via
// attemptStateKeeper) before an attempt whenever an abort source is
// armed, and restores it when the attempt aborts.  A subsequent solve
// on the cancelled Solver is therefore bit-identical to one on a twin
// that was never cancelled (TestConformanceCancelAtPollPoints).  The
// snapshot buffers are reused across attempts, so the armed warm path
// stays allocation-free after the first solve.
//
// # Engine degradation
//
// Engine attempts additionally run under panic recovery: a panicking
// engine yields a typed ErrEngineFailed instead of crashing the
// process.  With SetEngineFallback(true) (internal/dcs enables this
// for the sizing pipeline) a failure-class error — a panic, a scaling
// engine's ErrPriceRange refusal, or a fault-injected error — restores
// the pre-attempt state, permanently degrades the Solver to the "ssp"
// reference engine, re-runs the attempt there, and records the
// failure (EngineFailures/LastEngineFailure; surfaced per-iteration in
// core.IterStats.FlowEngineFailures).  Abort-class errors (canceled,
// budget exhausted) and semantic errors (infeasible, unbalanced,
// negative cycle) never trigger fallback: retrying cannot change them.
package mcmf

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Abort and degradation errors.  ErrCanceled and ErrBudgetExhausted
// leave the Solver reusable with its pre-solve state restored;
// ErrEngineFailed wraps the panic value of a failed engine.
var (
	// ErrCanceled reports that the context installed with SetContext
	// was canceled at a poll point.
	ErrCanceled = errors.New("mcmf: solve canceled")
	// ErrBudgetExhausted reports that the wall-clock deadline
	// (SetDeadline) or the cumulative work budget (SetWorkBudget)
	// expired at a poll point.
	ErrBudgetExhausted = errors.New("mcmf: solve budget exhausted")
	// ErrEngineFailed wraps a panic recovered from an engine's
	// Solve/Resolve.
	ErrEngineFailed = errors.New("mcmf: engine failed")
)

// SetContext installs a cancellation context checked at every poll
// point; a canceled context aborts the running solve with ErrCanceled
// and restores the pre-solve state.  nil (or a context that can never
// be canceled, like context.Background) disarms the check.  The
// context persists across solves until replaced.
func (s *Solver) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancelable: keep the unarmed fast path
	}
	s.ctx = ctx
	s.reArm()
}

// SetDeadline installs a wall-clock deadline sampled at poll points;
// solves running past it abort with ErrBudgetExhausted.  The zero
// time disarms it.
func (s *Solver) SetDeadline(t time.Time) {
	s.deadline = t
	s.reArm()
}

// SetWorkBudget caps the cumulative abort-poll operations (roughly:
// augmentations, discharges and Bellman–Ford rounds) this Solver may
// spend over its remaining lifetime; solves that exceed it abort with
// ErrBudgetExhausted.  The budget is cumulative across solves — it
// bounds the total flow work of a D/W iteration sequence, not one
// solve.  0 disarms it.
func (s *Solver) SetWorkBudget(n int64) {
	if n < 0 {
		n = 0
	}
	s.workBudget = n
	s.reArm()
}

// WorkDone returns the cumulative poll operations counted while an
// abort source was armed (the currency SetWorkBudget is spent in).
func (s *Solver) WorkDone() int64 { return s.workDone }

// SetPollHook installs a hook called at every poll point; a non-nil
// return aborts the running solve with that error.  One hook owner at
// a time — internal/fault and the cancellation tests use it for
// deterministic mid-solve injection.  nil disarms it.
func (s *Solver) SetPollHook(h func() error) {
	s.pollHook = h
	s.reArm()
}

// SetEngineFallback enables graceful degradation: when the active
// engine fails (panic, price-range refusal, injected fault), the
// pre-attempt state is restored and the solve re-runs on the "ssp"
// reference engine, which stays installed.  Disabled by default so
// direct engine tests observe raw engine errors; internal/dcs enables
// it for the sizing pipeline.
func (s *Solver) SetEngineFallback(on bool) { s.fallbackOn = on }

// EngineFailures returns how many times an engine failed and the
// Solver degraded to "ssp" (see SetEngineFallback).
func (s *Solver) EngineFailures() int { return s.engineFailures }

// LastEngineFailure returns the wrapped error of the most recent
// engine failure that triggered degradation, or nil.
func (s *Solver) LastEngineFailure() error { return s.lastFailure }

// reArm recaches the armed flag after any abort-source change, keeping
// pollAbort's hot path a single branch.
func (s *Solver) reArm() {
	s.armed = s.ctx != nil || s.pollHook != nil || s.workBudget > 0 ||
		!s.deadline.IsZero() || !s.probeDeadline.IsZero()
}

// pollAbort is the abort funnel every engine inner loop polls.  It
// returns nil to continue, or the abort error to surface.  Unarmed it
// is one branch; armed it runs the hook and budget checks every call
// and samples the clock every 32nd call.
func (s *Solver) pollAbort() error {
	if !s.armed {
		return nil
	}
	return s.pollAbortArmed()
}

func (s *Solver) pollAbortArmed() error {
	if s.pollHook != nil {
		if err := s.pollHook(); err != nil {
			return err
		}
	}
	s.workDone++
	if s.workBudget > 0 && s.workDone > s.workBudget {
		return ErrBudgetExhausted
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		return ErrCanceled
	}
	s.probeTick++
	if s.probeTick&31 == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return ErrBudgetExhausted
		}
		if !s.probeDeadline.IsZero() && time.Now().After(s.probeDeadline) {
			return errProbeBudget
		}
	}
	return nil
}

// isAbortErr classifies the errors that abort a solve on behalf of the
// caller: restoring state is required, retrying on another engine is
// pointless.
func isAbortErr(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, errProbeBudget)
}

// isSemanticErr classifies the errors that describe the instance, not
// the engine: every engine would return the same verdict, so fallback
// never helps and the post-error state keeps its legacy semantics.
func isSemanticErr(err error) bool {
	return errors.Is(err, ErrInfeasible) || errors.Is(err, ErrUnbalanced) ||
		errors.Is(err, ErrNegativeCycle)
}

// attemptStateKeeper is the optional interface engines implement when
// they carry adaptive state a successful solve would have advanced
// differently than an aborted one (the dial engine's heap back-off).
// beginAttempt saves it, restoreAttempt rolls it back, keeping an
// aborted Solver bit-identical to a never-aborted twin.
type attemptStateKeeper interface {
	SaveAttemptState()
	RestoreAttemptState()
}

// attemptState snapshots the solve-mutable Solver state so an aborted
// or failed engine attempt can be rolled back exactly.  Costs,
// configured capacities, supplies and the routed snapshot are never
// mutated mid-solve and need no copy.
type attemptState struct {
	caps                          []int64 // residual capacity per residual arc
	pot                           []int64
	eng                           Engine // engine the snapshot was taken for (adaptive state)
	solved, repairable, flowDirty bool
	valid                         bool
}

// beginAttempt snapshots the pre-attempt state into reused buffers
// (allocation-free once warm).
func (s *Solver) beginAttempt(e Engine) {
	a := &s.att
	if cap(a.caps) < len(s.arcs) {
		a.caps = make([]int64, len(s.arcs))
	}
	a.caps = a.caps[:len(s.arcs)]
	for i := range s.arcs {
		a.caps[i] = s.arcs[i].cap
	}
	if cap(a.pot) < len(s.pot) {
		a.pot = make([]int64, len(s.pot))
	}
	a.pot = a.pot[:len(s.pot)]
	copy(a.pot, s.pot)
	a.solved, a.repairable, a.flowDirty = s.solved, s.repairable, s.flowDirty
	a.eng = e
	a.valid = true
	if k, ok := e.(attemptStateKeeper); ok {
		k.SaveAttemptState()
	}
}

// restoreAttempt rolls the Solver back to the last beginAttempt
// snapshot.
func (s *Solver) restoreAttempt() {
	a := &s.att
	if !a.valid {
		return
	}
	for i := range a.caps {
		s.arcs[i].cap = a.caps[i]
	}
	copy(s.pot, a.pot)
	for i := len(a.pot); i < len(s.pot); i++ {
		s.pot[i] = 0
	}
	s.solved, s.repairable, s.flowDirty = a.solved, a.repairable, a.flowDirty
	if k, ok := a.eng.(attemptStateKeeper); ok {
		k.RestoreAttemptState()
	}
}

// runEngine is the guarded engine dispatch behind Solver.Solve and
// Solver.ResolveChanged: snapshot when an abort source or fallback is
// in play, run the attempt under panic recovery, classify the error,
// and degrade to ssp on engine failure when enabled.
func (s *Solver) runEngine(changed []int32, resolve bool) (float64, error) {
	e := s.engine()
	guard := s.armed || s.fallbackOn
	if guard {
		s.beginAttempt(e)
	}
	cost, err := s.attempt(e, changed, resolve)
	if err == nil || !guard {
		return cost, err
	}
	if isAbortErr(err) {
		s.restoreAttempt()
		return 0, err
	}
	if isSemanticErr(err) {
		return 0, err
	}
	// Failure class: panic (ErrEngineFailed), scaling price-range
	// refusal, or an injected fault.
	s.restoreAttempt()
	if !s.fallbackOn || e.Name() == "ssp" {
		return 0, err
	}
	s.engineFailures++
	s.lastFailure = fmt.Errorf("mcmf: engine %q failed, degraded to ssp: %w", e.Name(), err)
	if serr := s.SetEngine("ssp"); serr != nil {
		return 0, err
	}
	cost, err = s.attempt(s.engine(), changed, resolve)
	if err != nil && isAbortErr(err) {
		s.restoreAttempt() // snapshot still holds the pre-attempt state
	}
	return cost, err
}

// attempt runs one engine call under panic recovery, converting a
// panicking engine into a typed ErrEngineFailed instead of crashing
// the process.
func (s *Solver) attempt(e Engine, changed []int32, resolve bool) (cost float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			cost = 0
			err = fmt.Errorf("%w: engine %q panicked: %v", ErrEngineFailed, e.Name(), r)
		}
	}()
	if resolve {
		return e.Resolve(s, changed)
	}
	return e.Solve(s)
}
